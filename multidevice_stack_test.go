package convgpu_test

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"convgpu"
)

// TestStackMultiDevice: a WithDevices stack serves containers across
// per-device scheduler cores through the same facade — placements
// rotate, per-device summaries account capacity separately, and the
// dump document carries the device table.
func TestStackMultiDevice(t *testing.T) {
	st := newStack(t,
		convgpu.WithDevices(2),
		convgpu.WithCapacity(convgpu.GiB),
		convgpu.WithPlacementPolicy("roundrobin"),
	)
	devs := st.Devices()
	if len(devs) != 2 {
		t.Fatalf("Devices() = %d entries, want 2", len(devs))
	}
	for i, d := range devs {
		if d.Index != i || d.Capacity != convgpu.GiB {
			t.Fatalf("device %d = %+v, want index %d capacity 1GiB", i, d, i)
		}
	}
	// Create (not Run): registration happens at create time, and the
	// placement must still be queryable while the container is live.
	for _, name := range []string{"job-0", "job-1"} {
		if _, err := st.Create(context.Background(), convgpu.RunOptions{
			Name:         name,
			Image:        convgpu.CUDAImage("app", ""),
			NvidiaMemory: 512 * convgpu.MiB,
			Program:      func(p *convgpu.Proc) error { return nil },
		}); err != nil {
			t.Fatal(err)
		}
	}
	d0, err := st.Placement("job-0")
	if err != nil {
		t.Fatal(err)
	}
	d1, err := st.Placement("job-1")
	if err != nil {
		t.Fatal(err)
	}
	if d0 != 0 || d1 != 1 {
		t.Fatalf("placements = %d, %d; want round-robin 0, 1", d0, d1)
	}
	if _, err := st.Placement("ghost"); err == nil {
		t.Fatal("placement of unknown container succeeded")
	}

	dump, err := st.Dump(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Devices []struct {
			Index    int   `json:"index"`
			Capacity int64 `json:"capacity"`
		} `json:"devices"`
	}
	if err := json.Unmarshal(dump, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Devices) != 2 {
		t.Fatalf("dump devices = %d entries, want 2", len(doc.Devices))
	}
}

// TestStackMultiDeviceOverCapacity: a limit no single device can hold
// is refused with the same sentinel as the single-device stack — the
// pool is per device, not the sum.
func TestStackMultiDeviceOverCapacity(t *testing.T) {
	st := newStack(t,
		convgpu.WithDevices(2),
		convgpu.WithCapacity(convgpu.GiB),
	)
	_, err := st.Run(context.Background(), convgpu.RunOptions{
		Name:         "big",
		Image:        convgpu.CUDAImage("app", ""),
		NvidiaMemory: 3 * convgpu.GiB / 2, // > 1 device, < the 2-device sum
		Program:      func(p *convgpu.Proc) error { return nil },
	})
	if !errors.Is(err, convgpu.ErrOverCapacity) {
		t.Fatalf("err = %v, want ErrOverCapacity", err)
	}
}
