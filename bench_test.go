// Benchmarks regenerating the paper's evaluation, one family per table
// and figure (run `go test -bench=. -benchmem`):
//
//	BenchmarkFig4*      per-API response time with/without ConVGPU
//	BenchmarkFig5*      container creation with/without ConVGPU
//	BenchmarkFig6*      MNIST end-to-end with/without ConVGPU
//	BenchmarkFig7*      Table IV finish-time runs per algorithm
//	BenchmarkFig8*      Table V suspension runs per algorithm
//	BenchmarkTableII*   wrapper interception dispatch cost
//	BenchmarkAblation*  transport and grant-semantics design choices
//	BenchmarkMultiGPU / BenchmarkCluster   future-work extensions
//
// Domain results (seconds of simulated time, suspension) are attached
// with b.ReportMetric; `go run ./cmd/convgpu-bench -exp all` renders the
// same experiments as paper-shaped tables.
package convgpu_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/container"
	"convgpu/internal/core"
	"convgpu/internal/cuda"
	"convgpu/internal/daemon"
	"convgpu/internal/gpu"
	"convgpu/internal/inproc"
	"convgpu/internal/ipc"
	"convgpu/internal/protocol"
	"convgpu/internal/sim"
	"convgpu/internal/workload"
	"convgpu/internal/wrapper"
)

// benchRig is the measured single-container path: latency-calibrated
// device, daemon over a real UNIX socket, wrapper module.
type benchRig struct {
	dev     *gpu.Device
	daemon  *daemon.Daemon
	ctl     *ipc.Client
	wrapCli *ipc.Client
	dir     string

	raw     *cuda.Runtime
	wrapped *wrapper.Module
}

func newBenchRig(b *testing.B, withLatency bool) *benchRig {
	b.Helper()
	r := &benchRig{}
	var opts []gpu.Option
	if withLatency {
		opts = append(opts, gpu.WithLatency(gpu.PaperLatency(), nil))
	}
	r.dev = gpu.New(gpu.K20m(), opts...)
	st, err := core.New(core.Config{Capacity: 5 * bytesize.GiB})
	if err != nil {
		b.Fatal(err)
	}
	r.dir = b.TempDir()
	r.daemon, err = daemon.Start(daemon.Config{BaseDir: r.dir, Core: st})
	if err != nil {
		b.Fatal(err)
	}
	r.ctl, err = ipc.Dial(r.daemon.ControlSocket())
	if err != nil {
		b.Fatal(err)
	}
	resp, err := r.ctl.Call(context.Background(), &protocol.Message{
		Type: protocol.TypeRegister, Container: "bench", Limit: int64(4 * bytesize.GiB),
	})
	if err != nil || !resp.OK {
		b.Fatalf("register: %v %v", resp, err)
	}
	r.wrapCli, err = ipc.Dial(filepath.Join(resp.SocketDir, wrapper.SocketFileName))
	if err != nil {
		b.Fatal(err)
	}
	r.raw = cuda.NewRuntime(r.dev, 1)
	r.wrapped = wrapper.New(cuda.NewRuntime(r.dev, 2), r.wrapCli, 2)
	b.Cleanup(func() {
		r.wrapCli.Close()
		r.ctl.Close()
		r.daemon.Close()
	})
	return r
}

// --- Fig. 4: per-API response time ---

func BenchmarkFig4MallocWithConVGPU(b *testing.B) {
	r := newBenchRig(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ptr, err := r.wrapped.Malloc(bytesize.MiB)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.wrapped.Free(ptr); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	r.wrapped.Flush()
}

func BenchmarkFig4MallocWithout(b *testing.B) {
	r := newBenchRig(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ptr, err := r.raw.Malloc(bytesize.MiB)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.raw.Free(ptr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4MallocManagedWithConVGPU(b *testing.B) {
	r := newBenchRig(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ptr, err := r.wrapped.MallocManaged(bytesize.MiB)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.wrapped.Free(ptr); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	r.wrapped.Flush()
}

func BenchmarkFig4MallocManagedWithout(b *testing.B) {
	r := newBenchRig(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ptr, err := r.raw.MallocManaged(bytesize.MiB)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.raw.Free(ptr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4MallocPitchWithConVGPU(b *testing.B) {
	r := newBenchRig(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ptr, _, err := r.wrapped.MallocPitch(1024, 64)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.wrapped.Free(ptr); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	r.wrapped.Flush()
}

func BenchmarkFig4MallocPitchWithout(b *testing.B) {
	r := newBenchRig(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ptr, _, err := r.raw.MallocPitch(1024, 64)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.raw.Free(ptr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4MallocPitchFirstCall measures the fresh-process case: the
// wrapper fetches device properties on the first pitched allocation.
func BenchmarkFig4MallocPitchFirstCall(b *testing.B) {
	r := newBenchRig(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mod := wrapper.New(cuda.NewRuntime(r.dev, 100+i), r.wrapCli, 100+i)
		ptr, _, err := mod.MallocPitch(1024, 64)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		mod.Free(ptr)
		mod.Flush()
		mod.UnregisterFatBinary()
		b.StartTimer()
	}
}

func BenchmarkFig4MemGetInfoWithConVGPU(b *testing.B) {
	r := newBenchRig(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.wrapped.MemGetInfo(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4MemGetInfoWithout(b *testing.B) {
	r := newBenchRig(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.raw.MemGetInfo(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 5: container creation ---

func benchCreate(b *testing.B, withConVGPU bool) {
	dev := gpu.New(gpu.K20m())
	eng, err := container.NewEngine(container.Config{Device: dev})
	if err != nil {
		b.Fatal(err)
	}
	prog := func(p *container.Proc) error { return nil }
	if !withConVGPU {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c, err := eng.Create(container.Spec{Program: prog})
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			eng.Remove(c.ID())
			b.StartTimer()
		}
		return
	}
	st, err := core.New(core.Config{Capacity: 5 * bytesize.GiB})
	if err != nil {
		b.Fatal(err)
	}
	d, err := daemon.Start(daemon.Config{BaseDir: b.TempDir(), Core: st})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	ctl, err := ipc.Dial(d.ControlSocket())
	if err != nil {
		b.Fatal(err)
	}
	defer ctl.Close()
	nv := newNVDocker(eng, ctl)
	img := container.Image{Name: "cuda", Labels: map[string]string{"com.nvidia.volumes.needed": "nvidia_driver"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := nv.Create(context.Background(), nvOptions(img, 256*bytesize.MiB, prog))
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		c.Start()
		c.Wait() // releases the registration via the exit hook
		eng.Remove(c.ID())
		b.StartTimer()
	}
}

func BenchmarkFig5CreateWithConVGPU(b *testing.B) { benchCreate(b, true) }
func BenchmarkFig5CreateWithout(b *testing.B)     { benchCreate(b, false) }

// --- Fig. 6: MNIST end-to-end ---

func benchMNIST(b *testing.B, withConVGPU bool) {
	r := newBenchRig(b, true)
	cfg := workload.MNISTConfig{
		Steps: 20, StepTime: 200 * time.Microsecond, BatchBytes: 256 * bytesize.KiB,
		ParamAllocs: 8, ParamBytes: 4 * bytesize.MiB, ReallocEvery: 10,
	}
	prog := workload.MNISTProgram(cfg)
	api := cuda.API(r.raw)
	if withConVGPU {
		api = r.wrapped
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := prog(&container.Proc{PID: 2, CUDA: api}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if withConVGPU {
		r.wrapped.Flush()
	}
}

func BenchmarkFig6MNISTWithConVGPU(b *testing.B) { benchMNIST(b, true) }
func BenchmarkFig6MNISTWithout(b *testing.B)     { benchMNIST(b, false) }

// --- Fig. 7 / Table IV and Fig. 8 / Table V: the scheduling sweep ---

func benchSweepRun(b *testing.B, alg string, persistent bool) {
	trace := workload.GenerateTrace(38, workload.DefaultSpacing, 20170712)
	var finish, suspended time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(trace, sim.Config{Algorithm: alg, AlgSeed: 1, PersistentGrants: persistent})
		if err != nil {
			b.Fatal(err)
		}
		finish = res.FinishTime
		suspended = res.AvgSuspended
	}
	b.ReportMetric(finish.Seconds(), "finish_s")
	b.ReportMetric(suspended.Seconds(), "avg_susp_s")
}

func BenchmarkFig7TableIV_FIFO(b *testing.B)      { benchSweepRun(b, core.AlgFIFO, false) }
func BenchmarkFig7TableIV_BestFit(b *testing.B)   { benchSweepRun(b, core.AlgBestFit, false) }
func BenchmarkFig7TableIV_RecentUse(b *testing.B) { benchSweepRun(b, core.AlgRecentUse, false) }
func BenchmarkFig7TableIV_Random(b *testing.B)    { benchSweepRun(b, core.AlgRandom, false) }

// Fig. 8 / Table V reports the suspension metric of the same runs; the
// dedicated benchmarks below run a heavier (26-container) point where
// the paper highlights the suspension divergence.
func benchSuspension(b *testing.B, alg string) {
	trace := workload.GenerateTrace(26, workload.DefaultSpacing, 20170712)
	var suspended time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(trace, sim.Config{Algorithm: alg, AlgSeed: 1})
		if err != nil {
			b.Fatal(err)
		}
		suspended = res.AvgSuspended
	}
	b.ReportMetric(suspended.Seconds(), "avg_susp_s")
}

func BenchmarkFig8TableV_FIFO(b *testing.B)      { benchSuspension(b, core.AlgFIFO) }
func BenchmarkFig8TableV_BestFit(b *testing.B)   { benchSuspension(b, core.AlgBestFit) }
func BenchmarkFig8TableV_RecentUse(b *testing.B) { benchSuspension(b, core.AlgRecentUse) }
func BenchmarkFig8TableV_Random(b *testing.B)    { benchSuspension(b, core.AlgRandom) }

// --- Table II: interception dispatch cost ---

// BenchmarkTableIIInterception measures the pure wrapper overhead with
// no transport and no device latency: the cost of the Table II hook
// logic itself.
func BenchmarkTableIIInterception(b *testing.B) {
	st, err := core.New(core.Config{Capacity: 5 * bytesize.GiB})
	if err != nil {
		b.Fatal(err)
	}
	hub := inproc.NewHub(st)
	if _, err := hub.Register("t", bytesize.GiB); err != nil {
		b.Fatal(err)
	}
	dev := gpu.New(gpu.K20m())
	mod := wrapper.New(cuda.NewRuntime(dev, 1), hub.Caller("t"), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ptr, err := mod.Malloc(4096)
		if err != nil {
			b.Fatal(err)
		}
		if err := mod.Free(ptr); err != nil {
			b.Fatal(err)
		}
		if i%256 == 255 {
			// Drain the fire-and-forget free reports so scheduler-side
			// usage does not outrun the frees in a tight loop.
			mod.Flush()
		}
	}
	b.StopTimer()
	mod.Flush()
}

// --- Ablations ---

func BenchmarkAblationGrantsReclaim(b *testing.B)    { benchSweepRun(b, core.AlgBestFit, false) }
func BenchmarkAblationGrantsPersistent(b *testing.B) { benchSweepRun(b, core.AlgBestFit, true) }

// --- Core scheduler micro-benchmarks ---

func BenchmarkCoreRequestAlloc(b *testing.B) {
	st, err := core.New(core.Config{Capacity: 1 << 40})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := st.Register("c", 1<<39); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := st.RequestAlloc("c", 1, 4096)
		if err != nil || res.Decision != core.Accept {
			b.Fatalf("%v %v", res, err)
		}
		addr := uint64(i + 1)
		if err := st.ConfirmAlloc("c", 1, addr, 4096); err != nil {
			b.Fatal(err)
		}
		if _, _, err := st.Free("c", 1, addr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoreRedistribute measures one close with many paused
// containers to redistribute across.
func BenchmarkCoreRedistribute(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, err := core.New(core.Config{Capacity: 1000 * bytesize.MiB, ContextOverhead: 1, Algorithm: core.BestFit{}})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := st.Register("holder", 900*bytesize.MiB); err != nil {
			b.Fatal(err)
		}
		if res, err := st.RequestAlloc("holder", 1, 899*bytesize.MiB); err != nil || res.Decision != core.Accept {
			b.Fatalf("%v %v", res, err)
		}
		for j := 0; j < 32; j++ {
			id := core.ContainerID("p" + string(rune('a'+j%26)) + string(rune('0'+j/26)))
			if _, err := st.Register(id, 500*bytesize.MiB); err != nil {
				b.Fatal(err)
			}
			if _, err := st.RequestAlloc(id, 100+j, 400*bytesize.MiB); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if _, _, err := st.Close("holder"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extensions ---

func BenchmarkMultiGPUPlacement(b *testing.B) {
	benchExtension(b, true)
}

func BenchmarkClusterPlacement(b *testing.B) {
	benchExtension(b, false)
}

func benchExtension(b *testing.B, multi bool) {
	trace := workload.GenerateTrace(32, workload.DefaultSpacing, 7)
	var finish time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var res sim.Result
		var err error
		if multi {
			res, err = runMultiGPU(trace, 2)
		} else {
			res, err = runCluster(trace, 2)
		}
		if err != nil {
			b.Fatal(err)
		}
		finish = res.FinishTime
	}
	b.ReportMetric(finish.Seconds(), "finish_s")
}

func TestMain(m *testing.M) {
	os.Exit(m.Run())
}
