package convgpu_test

import (
	"context"
	"fmt"
	"time"

	"convgpu"
)

// ExampleNew assembles a stack with functional options, starts it, and
// runs one container through the customized nvidia-docker.
func ExampleNew() {
	stack, err := convgpu.New(
		convgpu.WithCapacity(2*convgpu.GiB),
		convgpu.WithAlgorithm(convgpu.BestFit),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer stack.Close()

	ctx := context.Background()
	if err := stack.Start(ctx); err != nil {
		fmt.Println(err)
		return
	}

	c, err := stack.Run(ctx, convgpu.RunOptions{
		Name:         "job-1",
		Image:        convgpu.CUDAImage("cuda-app", ""),
		NvidiaMemory: 512 * convgpu.MiB,
		Program: func(p *convgpu.Proc) error {
			ptr, err := p.CUDA.Malloc(128 * convgpu.MiB)
			if err != nil {
				return err
			}
			return p.CUDA.Free(ptr)
		},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := c.Wait(); err != nil {
		fmt.Println(err)
		return
	}

	fmt.Println("algorithm:", stack.Algorithm())
	fmt.Println("pool free:", stack.PoolFree())
	// Output:
	// algorithm: bestfit
	// pool free: 2GiB
}

// ExampleStack_Observability reads the telemetry a stack gathers while
// it schedules: per-kind event counters and the causal event trace.
func ExampleStack_Observability() {
	stack, err := convgpu.New(convgpu.WithCapacity(1 * convgpu.GiB))
	if err != nil {
		fmt.Println(err)
		return
	}
	defer stack.Close()
	ctx := context.Background()
	if err := stack.Start(ctx); err != nil {
		fmt.Println(err)
		return
	}

	c, err := stack.Run(ctx, convgpu.RunOptions{
		Name:         "traced",
		Image:        convgpu.CUDAImage("cuda-app", ""),
		NvidiaMemory: 256 * convgpu.MiB,
		Program: func(p *convgpu.Proc) error {
			ptr, err := p.CUDA.Malloc(64 * convgpu.MiB)
			if err != nil {
				return err
			}
			return p.CUDA.Free(ptr)
		},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := c.Wait(); err != nil {
		fmt.Println(err)
		return
	}

	// The close signal arrives asynchronously after container exit;
	// poll the close counter rather than assuming it landed already.
	o := stack.Observability()
	deadline := time.Now().Add(5 * time.Second)
	for o.EventCounts()["close"] == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	counts := o.EventCounts()
	fmt.Println("registers:", counts["register"])
	fmt.Println("accepts:", counts["accept"])
	fmt.Println("closes:", counts["close"])
	for _, e := range o.Tracer().Events("traced") {
		fmt.Printf("%d %s\n", e.CSeq, e.Kind)
	}
	// Output:
	// registers: 1
	// accepts: 1
	// closes: 1
	// 1 register
	// 2 accept
	// 3 free
	// 4 procexit
	// 5 close
}
