package convgpu

import (
	"fmt"
	"strings"
	"time"

	"convgpu/internal/core"
	"convgpu/internal/gpu"
	"convgpu/internal/obs"
	"convgpu/internal/policy"
)

// Option configures a Stack built by New. Options replace the old
// positional Config wiring: each names exactly the knob it turns, the
// zero set gives the paper's defaults (5 GiB K20m, FIFO), and new knobs
// can land without breaking call sites.
type Option func(*stackConfig) error

// stackConfig collects the options before assembly.
type stackConfig struct {
	baseDir       string
	capacity      Size
	devices       int
	placement     string
	nodes         int
	nodeStrategy  string
	nodeHealth    time.Duration
	algorithm     string
	algorithmSeed int64
	gpuProps      *gpu.Properties
	latency       bool
	createLatency time.Duration

	lease       time.Duration
	callTimeout time.Duration

	obs           *obs.Observability
	traceCapacity int

	faultTolerant    bool
	persistentGrants bool
	eventLogSize     int
	jsonWire         bool

	tenants []core.Tenant

	walDir  string
	walSync string
}

// defaultStackConfig returns the paper's defaults.
func defaultStackConfig() stackConfig {
	return stackConfig{capacity: 5 * GiB, algorithm: FIFO}
}

// WithBaseDir hosts the scheduler's control socket and per-container
// directories under dir instead of a fresh temporary directory.
func WithBaseDir(dir string) Option {
	return func(c *stackConfig) error {
		if dir == "" {
			return fmt.Errorf("convgpu: WithBaseDir: empty directory")
		}
		c.baseDir = dir
		return nil
	}
}

// WithCapacity sets the schedulable GPU memory (default the K20m's
// 5 GiB).
func WithCapacity(size Size) Option {
	return func(c *stackConfig) error {
		if size <= 0 {
			return fmt.Errorf("convgpu: WithCapacity: non-positive size %v", size)
		}
		c.capacity = size
		return nil
	}
}

// WithDevices serves n GPUs from one stack: the scheduler becomes a
// multi-device backend (one core per device behind the same interface),
// a placement policy assigns each registering container a device, and
// WithCapacity is read per device. The default (n <= 1) keeps the
// paper's single-GPU stack, byte-identical on the wire.
func WithDevices(n int) Option {
	return func(c *stackConfig) error {
		if n < 1 {
			return fmt.Errorf("convgpu: WithDevices: need at least one device, got %d", n)
		}
		c.devices = n
		return nil
	}
}

// WithPlacementPolicy selects the device placement policy for a
// multi-device stack through the policy registry (round-robin,
// least-loaded, first-fit, best-fit, fragmentation-aware; default
// least-loaded). Ignored without WithDevices.
func WithPlacementPolicy(name string) Option {
	return func(c *stackConfig) error {
		if name == "" {
			return fmt.Errorf("convgpu: WithPlacementPolicy: empty name")
		}
		c.placement = name
		return nil
	}
}

// WithNodes serves an n-node cluster from one stack: each node carries
// WithDevices GPUs (one by default) of WithCapacity each, a Swarm-style
// strategy places each registering container on a node, and the
// membership layer (node states, drain/revive, failover) arbitrates
// which nodes accept work. The default (n <= 1) keeps the single-node
// stack.
func WithNodes(n int) Option {
	return func(c *stackConfig) error {
		if n < 1 {
			return fmt.Errorf("convgpu: WithNodes: need at least one node, got %d", n)
		}
		c.nodes = n
		return nil
	}
}

// WithNodeStrategy selects the node placement strategy for a cluster
// stack ("spread", "binpack", "random"; default spread). Ignored
// without WithNodes.
func WithNodeStrategy(name string) Option {
	return func(c *stackConfig) error {
		if name == "" {
			return fmt.Errorf("convgpu: WithNodeStrategy: empty name")
		}
		c.nodeStrategy = name
		return nil
	}
}

// WithNodeHealth starts the cluster's health-probe loop at the given
// interval when the stack starts: nodes that stop answering probes are
// marked suspect, then down — at which point their containers and
// parked allocation requests fail over to surviving nodes — and a down
// node whose probes recover is revived automatically. Zero (the
// default) leaves health management manual (DrainNode / ReviveNode).
// Ignored without WithNodes.
func WithNodeHealth(interval time.Duration) Option {
	return func(c *stackConfig) error {
		if interval < 0 {
			return fmt.Errorf("convgpu: WithNodeHealth: negative interval %v", interval)
		}
		c.nodeHealth = interval
		return nil
	}
}

// WithAlgorithm selects the redistribution algorithm by name (FIFO,
// BestFit, RecentUse, Random; default FIFO).
func WithAlgorithm(name string) Option {
	return func(c *stackConfig) error {
		if name == "" {
			return fmt.Errorf("convgpu: WithAlgorithm: empty name")
		}
		c.algorithm = name
		return nil
	}
}

// WithPolicy selects the wake-order policy through the unified policy
// registry: the paper's four algorithms by name or alias, plus the
// tenant-aware policies (FairShare, QuotaAware, Priority). Unknown
// names fail at option time with the full registry listing. WithPolicy
// and WithAlgorithm set the same knob; WithPolicy validates eagerly and
// accepts every registered alias.
func WithPolicy(name string) Option {
	return func(c *stackConfig) error {
		canonical, ok := policy.ResolveWake(name)
		if !ok {
			return fmt.Errorf("convgpu: WithPolicy: unknown policy %q (have %s)",
				name, strings.Join(policy.WakeNames(), "|"))
		}
		c.algorithm = canonical
		return nil
	}
}

// WithTenant provisions one named tenant on the stack's daemon
// (repeatable). Containers whose RunOptions carry the tenant's name
// register under these attributes: Weight orders the tenant under the
// fair-share policy, Priority under the priority policy (and entitles
// preemption of strictly lower priorities), Quota caps the tenant's
// summed grants per device, and Guarantee reserves pool memory while
// the tenant sits below it. The configured definition wins over
// attributes carried inline on the wire.
func WithTenant(t Tenant) Option {
	return func(c *stackConfig) error {
		if t.Name == "" {
			return fmt.Errorf("convgpu: WithTenant: tenant has no name")
		}
		for _, have := range c.tenants {
			if have.Name == t.Name {
				return fmt.Errorf("convgpu: WithTenant: tenant %q defined twice", t.Name)
			}
		}
		c.tenants = append(c.tenants, t)
		return nil
	}
}

// WithAlgorithmSeed seeds the Random algorithm deterministically.
func WithAlgorithmSeed(seed int64) Option {
	return func(c *stackConfig) error {
		c.algorithmSeed = seed
		return nil
	}
}

// WithGPU overrides the simulated device properties (default K20m).
// The device's total memory is set to the stack's capacity.
func WithGPU(props gpu.Properties) Option {
	return func(c *stackConfig) error {
		p := props
		c.gpuProps = &p
		return nil
	}
}

// WithLatency enables the Figure 4 latency calibration on the device,
// making CUDA calls consume realistic time.
func WithLatency() Option {
	return func(c *stackConfig) error {
		c.latency = true
		return nil
	}
}

// WithCreateLatency models the container runtime's creation cost
// (Fig. 5 uses ~0.4 s).
func WithCreateLatency(d time.Duration) Option {
	return func(c *stackConfig) error {
		if d < 0 {
			return fmt.Errorf("convgpu: WithCreateLatency: negative duration %v", d)
		}
		c.createLatency = d
		return nil
	}
}

// WithLease reaps container sessions silent for longer than d (no
// traffic, no heartbeat): a SIGKILLed container never sends a close
// signal, and without a lease its grant would be pinned forever. Zero
// (the default) disables leasing.
func WithLease(d time.Duration) Option {
	return func(c *stackConfig) error {
		if d < 0 {
			return fmt.Errorf("convgpu: WithLease: negative duration %v", d)
		}
		c.lease = d
		return nil
	}
}

// WithCallTimeout bounds each control-socket call (registration, close,
// introspection). Allocation requests are exempt by design — a
// suspended allocation legitimately blocks. Zero disables the bound;
// the per-call context passed to Run/Create still applies either way.
func WithCallTimeout(d time.Duration) Option {
	return func(c *stackConfig) error {
		if d < 0 {
			return fmt.Errorf("convgpu: WithCallTimeout: negative duration %v", d)
		}
		c.callTimeout = d
		return nil
	}
}

// WithObservability installs a caller-built telemetry bundle instead of
// the stack's default one — e.g. to share one registry across stacks.
// Observability is always on; this option only substitutes the sink.
func WithObservability(o *Observability) Option {
	return func(c *stackConfig) error {
		if o == nil {
			return fmt.Errorf("convgpu: WithObservability: nil bundle")
		}
		c.obs = o
		return nil
	}
}

// WithTraceCapacity sizes the event-trace ring of the stack's default
// observability bundle (obs.DefaultTraceCapacity when unset; negative
// disables trace retention). Ignored when WithObservability supplies a
// bundle, which carries its own ring.
func WithTraceCapacity(n int) Option {
	return func(c *stackConfig) error {
		c.traceCapacity = n
		return nil
	}
}

// WithFaultTolerant enables the rescue pass of the authors' prior
// fault-tolerant scheduler study (see core.Config.FaultTolerant).
func WithFaultTolerant() Option {
	return func(c *stackConfig) error {
		c.faultTolerant = true
		return nil
	}
}

// WithPersistentGrants keeps memory assigned to a container until it
// closes, never reclaiming paused containers' unused assignments (see
// core.Config.PersistentGrants for the trade-offs).
func WithPersistentGrants() Option {
	return func(c *stackConfig) error {
		c.persistentGrants = true
		return nil
	}
}

// WithEventLogSize sets the scheduler event-log ring capacity
// (core.DefaultEventLogSize when unset; negative disables retention).
func WithEventLogSize(n int) Option {
	return func(c *stackConfig) error {
		c.eventLogSize = n
		return nil
	}
}

// WithWAL makes the scheduler daemon's admission state durable in a
// write-ahead log under dir: every session-changing event (register,
// close, migrate, lease expiry, evict) is appended before it is
// acknowledged, and a restarted stack recovers by loading the newest
// snapshot and replaying the log tail instead of scanning per-container
// session.json files. Pre-WAL session.json records found on the first
// boot are imported one-time. The log syncs on every append unless
// WithWALSync relaxes the policy.
func WithWAL(dir string) Option {
	return func(c *stackConfig) error {
		if dir == "" {
			return fmt.Errorf("convgpu: WithWAL: empty directory")
		}
		c.walDir = dir
		return nil
	}
}

// WithWALSync sets the WAL fsync policy: "always" (default — every
// append durable before acknowledgement), "none" (leave syncing to the
// OS), or a duration like "50ms" (group commits, bounding loss to one
// window). Requires WithWAL.
func WithWALSync(policy string) Option {
	return func(c *stackConfig) error {
		if policy == "" {
			return fmt.Errorf("convgpu: WithWALSync: empty policy")
		}
		c.walSync = policy
		return nil
	}
}

// WithJSONWire pins the stack's control channel to the newline-JSON
// wire codec instead of negotiating the binary fast path — a debugging
// aid that makes every frame readable with socat/strace at the cost of
// the binary codec's latency win. The CONVGPU_WIRE_JSON environment
// variable forces the same process-wide without a code change.
func WithJSONWire() Option {
	return func(c *stackConfig) error {
		c.jsonWire = true
		return nil
	}
}
