package convgpu_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"convgpu"
)

// TestStackClusterNodes drives the node failure-domain surface through
// the facade: a multi-node stack reports membership over the control
// socket, drain/revive steer admission, and with every node drained a
// workload fails closed with ErrDaemonUnavailable.
func TestStackClusterNodes(t *testing.T) {
	st := newStack(t,
		convgpu.WithNodes(2),
		convgpu.WithCapacity(2*convgpu.GiB),
		convgpu.WithNodeHealth(time.Hour), // exercises start/stop of the health loop
	)
	ctx := context.Background()

	nodes, err := st.Nodes(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 || nodes[0].State != "up" || nodes[1].State != "up" {
		t.Fatalf("nodes = %+v, want 2 up", nodes)
	}

	runOne(t, st.Run, "c1")

	if err := st.DrainNode(ctx, 1); err != nil {
		t.Fatal(err)
	}
	nodes, err = st.Nodes(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if nodes[1].State != "draining" {
		t.Fatalf("node 1 after drain = %+v", nodes[1])
	}
	// One node still up: work proceeds.
	runOne(t, st.Run, "c2")

	// Both drained: admission fails closed, and the sentinel survives the
	// wire round trip.
	if err := st.DrainNode(ctx, 0); err != nil {
		t.Fatal(err)
	}
	_, err = st.Run(ctx, convgpu.RunOptions{
		Name:         "c3",
		Image:        convgpu.CUDAImage("app", ""),
		NvidiaMemory: 512 * convgpu.MiB,
		Program:      func(p *convgpu.Proc) error { return nil },
	})
	if !errors.Is(err, convgpu.ErrDaemonUnavailable) {
		t.Fatalf("run with all nodes draining: %v, want ErrDaemonUnavailable", err)
	}

	if err := st.ReviveNode(ctx, 0); err != nil {
		t.Fatal(err)
	}
	runOne(t, st.Run, "c4")

	// Unknown node index: refused with a plain error, not a panic.
	if err := st.DrainNode(ctx, 9); err == nil {
		t.Fatal("drain of unknown node succeeded")
	}
}

// TestStackNodeOptionsValidate pins the option validation errors.
func TestStackNodeOptionsValidate(t *testing.T) {
	if _, err := convgpu.New(convgpu.WithNodes(0)); err == nil {
		t.Fatal("WithNodes(0) accepted")
	}
	if _, err := convgpu.New(convgpu.WithNodeStrategy("")); err == nil {
		t.Fatal("empty strategy accepted")
	}
	if _, err := convgpu.New(convgpu.WithNodeStrategy("nope"), convgpu.WithNodes(2)); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if _, err := convgpu.New(convgpu.WithNodeHealth(-time.Second)); err == nil {
		t.Fatal("negative health interval accepted")
	}
}

// TestStackSingleNodeHasNoMembership: without WithNodes the membership
// verbs answer a plain error — the backend has no node surface.
func TestStackSingleNodeHasNoMembership(t *testing.T) {
	st := newStack(t, convgpu.WithCapacity(convgpu.GiB))
	if _, err := st.Nodes(context.Background()); err == nil {
		t.Fatal("Nodes succeeded on a single-node stack")
	}
}
