package convgpu_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"convgpu"

	"convgpu/internal/cuda"
)

// TestIntegrationConcurrentContainers hammers the full stack — real
// UNIX sockets, daemon, wrapper, simulated device — with many
// concurrent containers running randomized allocation workloads, and
// verifies that everything drains cleanly: scheduler invariants hold
// throughout, the pool returns to capacity, and the device ends empty.
func TestIntegrationConcurrentContainers(t *testing.T) {
	sys := newSystem(t, convgpu.Config{Capacity: 2 * convgpu.GiB})
	const waves = 3
	const perWave = 8

	for wave := 0; wave < waves; wave++ {
		var wg sync.WaitGroup
		errs := make(chan error, perWave)
		for i := 0; i < perWave; i++ {
			seed := int64(wave*100 + i)
			name := fmt.Sprintf("stress-%d-%d", wave, i)
			limit := convgpu.Size(128+rand.New(rand.NewSource(seed)).Intn(512)) * convgpu.MiB
			c, err := sys.Run(convgpu.RunOptions{
				Name:         name,
				Image:        convgpu.CUDAImage("stress", ""),
				NvidiaMemory: limit,
				Program:      randomAllocProgram(seed, limit),
			})
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func(c *convgpu.Container) {
				defer wg.Done()
				if err := c.Wait(); err != nil {
					errs <- fmt.Errorf("%s: %w", c.ID(), err)
				}
			}(c)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
		// After each wave the system must be fully drained.
		waitDrained(t, sys)
	}
}

// randomAllocProgram allocates, frees, leaks and re-allocates randomly
// within its limit; every decision is seeded so failures reproduce.
func randomAllocProgram(seed int64, limit convgpu.Size) convgpu.Program {
	return func(p *convgpu.Proc) error {
		rng := rand.New(rand.NewSource(seed))
		budget := limit - 66*convgpu.MiB // leave room for the context
		var live []cuda.DevPtr
		var used convgpu.Size
		for op := 0; op < 30; op++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(live))
				if err := p.CUDA.Free(live[i]); err != nil {
					return fmt.Errorf("free: %w", err)
				}
				live = append(live[:i], live[i+1:]...)
				continue
			}
			size := convgpu.Size(rng.Intn(int(budget/8))) + 1
			if used+size > budget {
				continue
			}
			ptr, err := p.CUDA.Malloc(size)
			if err != nil {
				return fmt.Errorf("malloc %v (used %v of %v): %w", size, used, budget, err)
			}
			used += size
			if rng.Intn(4) != 0 {
				live = append(live, ptr)
			} // else: leaked deliberately; procexit must clean it up
		}
		// Half the programs clean up, half rely on the implicit
		// __cudaUnregisterFatBinary teardown.
		if rng.Intn(2) == 0 {
			for _, ptr := range live {
				if err := p.CUDA.Free(ptr); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

func waitDrained(t *testing.T, sys *convgpu.System) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if sys.PoolFree() == sys.Device().Properties().TotalGlobalMem && sys.Device().Used() == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("system did not drain: pool=%v deviceUsed=%v snapshot=%+v",
				sys.PoolFree(), sys.Device().Used(), sys.Snapshot())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestIntegrationStoppedContainerCleansUp kills containers mid-flight
// (docker stop) — including one blocked in a suspended allocation — and
// verifies the close signal reclaims everything.
func TestIntegrationStoppedContainerCleansUp(t *testing.T) {
	sys := newSystem(t, convgpu.Config{Capacity: 1000 * convgpu.MiB})
	started := make(chan struct{})
	holder, err := sys.Run(convgpu.RunOptions{
		Name:         "holder",
		Image:        convgpu.CUDAImage("app", ""),
		NvidiaMemory: 700 * convgpu.MiB,
		Program: func(p *convgpu.Proc) error {
			if _, err := p.CUDA.Malloc(600 * convgpu.MiB); err != nil {
				return err
			}
			close(started)
			<-p.Ctx.Done() // runs until stopped, leaking its memory
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	// The waiter suspends on its allocation.
	waiter, err := sys.Run(convgpu.RunOptions{
		Name:         "waiter",
		Image:        convgpu.CUDAImage("app", ""),
		NvidiaMemory: 500 * convgpu.MiB,
		Program: func(p *convgpu.Proc) error {
			ptr, err := p.CUDA.Malloc(400 * convgpu.MiB)
			if err != nil {
				return err
			}
			return p.CUDA.Free(ptr)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the waiter is visibly suspended.
	deadline := time.Now().Add(5 * time.Second)
	for {
		suspended := false
		for _, info := range sys.Snapshot() {
			if info.ID == "waiter" && info.Suspended {
				suspended = true
			}
		}
		if suspended {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never suspended")
		}
		time.Sleep(time.Millisecond)
	}

	// docker stop the holder: its program is cancelled, the exit hook
	// delivers the close signal, and the waiter resumes.
	holder.Stop()
	if err := waiter.Wait(); err != nil {
		t.Fatalf("waiter failed after holder was stopped: %v", err)
	}
	waitDrained(t, sys)
}

// TestIntegrationStopSuspendedContainer stops a container that is
// itself blocked inside a suspended allocation: the close signal must
// cancel the parked request so the program unblocks and exits.
func TestIntegrationStopSuspendedContainer(t *testing.T) {
	sys := newSystem(t, convgpu.Config{Capacity: 1000 * convgpu.MiB})
	blocked := make(chan struct{})
	holder, err := sys.Run(convgpu.RunOptions{
		Name:         "holder",
		Image:        convgpu.CUDAImage("app", ""),
		NvidiaMemory: 700 * convgpu.MiB,
		Program: func(p *convgpu.Proc) error {
			if _, err := p.CUDA.Malloc(600 * convgpu.MiB); err != nil {
				return err
			}
			<-blocked
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	victim, err := sys.Run(convgpu.RunOptions{
		Name:         "victim",
		Image:        convgpu.CUDAImage("app", ""),
		NvidiaMemory: 500 * convgpu.MiB,
		Program: func(p *convgpu.Proc) error {
			// This suspends indefinitely; the error surfaces when the
			// container is closed underneath it.
			_, err := p.CUDA.Malloc(400 * convgpu.MiB)
			return err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := false
		for _, info := range sys.Snapshot() {
			if info.ID == "victim" && info.Suspended {
				s = true
			}
		}
		if s {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim never suspended")
		}
		time.Sleep(time.Millisecond)
	}
	// Simulate `docker stop victim` + the plugin's close: closing via
	// the scheduler cancels the parked allocation.
	victim.Stop()
	if err := victim.Wait(); err == nil {
		t.Log("victim exited cleanly (cancelled allocation surfaced as ctx cancellation)")
	}
	close(blocked)
	if err := holder.Wait(); err != nil {
		t.Fatal(err)
	}
	waitDrained(t, sys)
}

// TestIntegrationInvariantsUnderChurn interleaves registrations, runs
// and closes while checking scheduler invariants from a second
// goroutine the whole time.
func TestIntegrationInvariantsUnderChurn(t *testing.T) {
	sys := newSystem(t, convgpu.Config{Capacity: 2 * convgpu.GiB, Algorithm: convgpu.BestFit})
	stop := make(chan struct{})
	violations := make(chan string, 1)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Per-container invariants are atomic within one snapshot.
			// (The grants+pool==capacity invariant needs the core lock;
			// core.CheckInvariants covers it in the unit tests.)
			for _, info := range sys.Snapshot() {
				if info.Used > info.Grant || info.Grant > info.Limit {
					select {
					case violations <- fmt.Sprintf("invariant violated: %+v", info):
					default:
					}
				}
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				c, err := sys.Run(convgpu.RunOptions{
					Name:         fmt.Sprintf("churn-%d-%d", i, j),
					Image:        convgpu.CUDAImage("churn", ""),
					NvidiaMemory: 300 * convgpu.MiB,
					Program:      randomAllocProgram(int64(i*10+j), 300*convgpu.MiB),
				})
				if err != nil {
					t.Error(err)
					return
				}
				if err := c.Wait(); err != nil {
					t.Errorf("churn-%d-%d: %v", i, j, err)
				}
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	select {
	case v := <-violations:
		t.Fatal(v)
	default:
	}
	waitDrained(t, sys)
}
