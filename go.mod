module convgpu

go 1.22
