package convgpu_test

import (
	"sync"
	"testing"
	"time"

	"convgpu"
)

func newSystem(t *testing.T, cfg convgpu.Config) *convgpu.System {
	t.Helper()
	if cfg.BaseDir == "" {
		cfg.BaseDir = t.TempDir()
	}
	sys, err := convgpu.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	return sys
}

func TestParseSizeAndUnits(t *testing.T) {
	s, err := convgpu.ParseSize("512MiB")
	if err != nil || s != 512*convgpu.MiB {
		t.Fatalf("ParseSize = (%v,%v)", s, err)
	}
	if convgpu.GiB != 1024*convgpu.MiB || convgpu.MiB != 1024*convgpu.KiB {
		t.Fatal("unit constants inconsistent")
	}
}

func TestAlgorithmsList(t *testing.T) {
	algs := convgpu.Algorithms()
	if len(algs) != 4 || algs[0] != convgpu.FIFO || algs[1] != convgpu.BestFit {
		t.Fatalf("Algorithms() = %v", algs)
	}
}

func TestContainerTypesTableIII(t *testing.T) {
	types := convgpu.ContainerTypes()
	if len(types) != 6 {
		t.Fatalf("ContainerTypes() has %d entries", len(types))
	}
	if types[0].Name != "nano" || types[5].Name != "xlarge" {
		t.Fatalf("types = %v", types)
	}
}

func TestSystemRunQuickContainer(t *testing.T) {
	sys := newSystem(t, convgpu.Config{})
	var sawTotal convgpu.Size
	c, err := sys.Run(convgpu.RunOptions{
		Name:         "q1",
		Image:        convgpu.CUDAImage("app", ""),
		NvidiaMemory: 512 * convgpu.MiB,
		Program: func(p *convgpu.Proc) error {
			ptr, err := p.CUDA.Malloc(64 * convgpu.MiB)
			if err != nil {
				return err
			}
			_, total, err := p.CUDA.MemGetInfo()
			if err != nil {
				return err
			}
			sawTotal = total
			return p.CUDA.Free(ptr)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if sawTotal != 512*convgpu.MiB {
		t.Fatalf("container saw %v, want its 512MiB limit", sawTotal)
	}
	// Exit returned the grant.
	if sys.PoolFree() != 5*convgpu.GiB {
		t.Fatalf("pool = %v after exit", sys.PoolFree())
	}
	if sys.Device().Used() != 0 {
		t.Fatalf("device used = %v after exit", sys.Device().Used())
	}
}

func TestSystemLabelAndDefaultLimits(t *testing.T) {
	sys := newSystem(t, convgpu.Config{})
	check := func(img convgpu.Image, want convgpu.Size) {
		t.Helper()
		var total convgpu.Size
		c, err := sys.Run(convgpu.RunOptions{
			Image: img,
			Program: func(p *convgpu.Proc) error {
				_, tot, err := p.CUDA.MemGetInfo()
				total = tot
				return err
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		c.Wait()
		if total != want {
			t.Fatalf("image %v: saw %v, want %v", img.Name, total, want)
		}
	}
	check(convgpu.CUDAImage("labelled", "256MiB"), 256*convgpu.MiB)
	check(convgpu.CUDAImage("bare", ""), convgpu.DefaultMemoryLimit)
}

func TestSystemMultiTenantSuspension(t *testing.T) {
	sys := newSystem(t, convgpu.Config{Capacity: 1000 * convgpu.MiB})
	release := make(chan struct{})
	started := make(chan struct{})
	big, err := sys.Run(convgpu.RunOptions{
		Name:         "big",
		Image:        convgpu.CUDAImage("app", ""),
		NvidiaMemory: 700 * convgpu.MiB,
		Program: func(p *convgpu.Proc) error {
			ptr, err := p.CUDA.Malloc(600 * convgpu.MiB)
			if err != nil {
				return err
			}
			close(started)
			<-release
			return p.CUDA.Free(ptr)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	var mu sync.Mutex
	var order []string
	small, err := sys.Run(convgpu.RunOptions{
		Name:         "small",
		Image:        convgpu.CUDAImage("app", ""),
		NvidiaMemory: 500 * convgpu.MiB,
		Program: func(p *convgpu.Proc) error {
			// 400 MiB + 66 overhead exceeds the 300 MiB the scheduler
			// could grant while big holds 700: this call suspends until
			// big exits.
			ptr, err := p.CUDA.Malloc(400 * convgpu.MiB)
			if err != nil {
				return err
			}
			mu.Lock()
			order = append(order, "small-allocated")
			mu.Unlock()
			return p.CUDA.Free(ptr)
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Give the small container time to reach its suspended allocation.
	deadline := time.Now().Add(2 * time.Second)
	for {
		snap := sys.Snapshot()
		suspended := false
		for _, info := range snap {
			if info.ID == "small" && info.Suspended {
				suspended = true
			}
		}
		if suspended {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("small container never suspended")
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	order = append(order, "big-released")
	mu.Unlock()
	close(release)
	if err := big.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := small.Wait(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "big-released" || order[1] != "small-allocated" {
		t.Fatalf("order = %v, want big released before small allocated", order)
	}
}

func TestSystemSampleProgramThroughStack(t *testing.T) {
	sys := newSystem(t, convgpu.Config{})
	ct := convgpu.ContainerTypes()[0] // nano
	c, err := sys.Run(convgpu.RunOptions{
		Image:        convgpu.CUDAImage("sample", ""),
		NvidiaMemory: ct.GPUMemory,
		Program:      convgpu.SampleProgram(ct, 1e-9),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestSystemMNISTThroughStack(t *testing.T) {
	sys := newSystem(t, convgpu.Config{})
	c, err := sys.Run(convgpu.RunOptions{
		Image:        convgpu.CUDAImage("tf", ""),
		NvidiaMemory: convgpu.GiB,
		Program: convgpu.MNISTProgram(convgpu.MNISTConfig{
			Steps: 5, StepTime: time.Microsecond, BatchBytes: 4096,
			ParamAllocs: 4, ParamBytes: convgpu.MiB, ReallocEvery: 2,
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateFacade(t *testing.T) {
	trace := convgpu.GenerateTrace(6, 5*time.Second, 1)
	res, err := convgpu.Simulate(trace, convgpu.SimConfig{Algorithm: convgpu.BestFit})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinishTime <= 0 || len(res.Containers) != 6 {
		t.Fatalf("result = %+v", res)
	}
}

func TestDefaultSweepDimensions(t *testing.T) {
	s := convgpu.DefaultSweep()
	if len(s.Counts) != 18 || s.Counts[0] != 4 || s.Counts[17] != 38 {
		t.Fatalf("counts = %v", s.Counts)
	}
	if s.Reps != 6 || len(s.Algorithms) != 4 {
		t.Fatalf("sweep = %+v", s)
	}
}

func TestBadAlgorithmConfig(t *testing.T) {
	_, err := convgpu.NewSystem(convgpu.Config{BaseDir: t.TempDir(), Algorithm: "lru"})
	if err == nil {
		t.Fatal("bad algorithm accepted")
	}
}
