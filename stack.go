package convgpu

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sync"

	"convgpu/internal/admin"
	"convgpu/internal/asyncop"
	"convgpu/internal/cluster"
	"convgpu/internal/container"
	"convgpu/internal/core"
	"convgpu/internal/daemon"
	"convgpu/internal/gpu"
	"convgpu/internal/ipc"
	"convgpu/internal/multigpu"
	"convgpu/internal/nvdocker"
	"convgpu/internal/obs"
	"convgpu/internal/plugin"
	"convgpu/internal/policy"
	"convgpu/internal/protocol"
	"convgpu/internal/wal"
)

// Observability is the stack's runtime telemetry bundle: per-algorithm
// event counters, latency histograms, scrape-time gauges and the event
// trace ring. Reach it with Stack.Observability; serve it over HTTP
// with its Handler method.
type Observability = obs.Observability

// Operation is one admin-plane operation: a mutating verb (drain,
// revive, failover, compact, snapshot) submitted asynchronously and
// polled by ID until its status reaches completed or failed.
type Operation = asyncop.Operation

// SessionPage is one page of the daemon's session listing, ordered by
// container ID with a cursor for the next page.
type SessionPage = daemon.SessionPage

// SessionEntry is one registered session in a SessionPage.
type SessionEntry = daemon.SessionEntry

// WALStats reports the write-ahead log's counters (segments, sizes,
// sequences, sync totals).
type WALStats = wal.Stats

// Stack is the assembled ConVGPU middleware: simulated GPU + CUDA
// runtime, scheduler core, scheduler daemon over real UNIX sockets,
// container engine, volume plugin and the customized nvidia-docker.
//
// Build it with New, bring it up with Start, and launch containers with
// Run/Create. Every method that performs I/O takes a context as its
// first argument; cancellation propagates into the control channel's
// dial/backoff and per-call deadlines.
type Stack struct {
	cfg    stackConfig
	device *gpu.Device
	state  core.Scheduler
	clus   *cluster.Cluster // non-nil under WithNodes
	obs    *obs.Observability

	mu      sync.Mutex
	started bool
	closed  bool
	wal     *wal.Log
	daemon  *daemon.Daemon
	engine  *container.Engine
	plugin  *plugin.Plugin
	nv      *nvdocker.NVDocker
	ctl     *ipc.Reconnector
	tempdir string
}

// New assembles an unstarted Stack from functional options: the device,
// scheduler core and telemetry exist after New; sockets, directories
// and the daemon only after Start. Zero options give the paper's
// defaults (5 GiB K20m, FIFO redistribution).
func New(options ...Option) (*Stack, error) {
	cfg := defaultStackConfig()
	for _, o := range options {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.walSync != "" {
		if cfg.walDir == "" {
			return nil, fmt.Errorf("convgpu: WithWALSync requires WithWAL")
		}
		if _, _, err := wal.ParseSyncPolicy(cfg.walSync); err != nil {
			return nil, fmt.Errorf("convgpu: WithWALSync: %w", err)
		}
	}

	props := gpu.K20m()
	if cfg.gpuProps != nil {
		props = *cfg.gpuProps
	}
	props.TotalGlobalMem = cfg.capacity

	var gpuOpts []gpu.Option
	if cfg.latency {
		gpuOpts = append(gpuOpts, gpu.WithLatency(gpu.PaperLatency(), nil))
	}

	// Every wake-order and placement policy resolves through the unified
	// policy registry: legacy algorithm names yield the exact values
	// core.NewAlgorithm builds (byte-identical behavior), and the
	// tenant-aware policies are reached by the same Option surface.
	wakeFactory := func(seed int64) (core.Algorithm, error) {
		return policy.NewWake(cfg.algorithm, policy.Config{Seed: seed})
	}
	var state core.Scheduler
	var clus *cluster.Cluster
	if cfg.nodes > 1 {
		// Cluster stack: WithDevices GPUs per node behind a node
		// placement strategy and the membership/failover layer.
		strategyName := cfg.nodeStrategy
		if strategyName == "" {
			strategyName = cluster.StrategySpread
		}
		strat, err := cluster.NewStrategy(strategyName, cfg.algorithmSeed)
		if err != nil {
			return nil, err
		}
		gpus := cfg.devices
		if gpus < 1 {
			gpus = 1
		}
		devicePolicy := cfg.placement
		if devicePolicy == "" {
			devicePolicy = multigpu.PolicyLeastLoaded
		}
		clus, err = cluster.New(cluster.Config{
			Nodes:            cfg.nodes,
			GPUsPerNode:      gpus,
			CapacityPerGPU:   cfg.capacity,
			Algorithm:        cfg.algorithm,
			AlgorithmFactory: wakeFactory,
			AlgSeed:          cfg.algorithmSeed,
			DevicePolicyFactory: func() (multigpu.Policy, error) {
				return policy.NewPlace(devicePolicy, policy.Config{Seed: cfg.algorithmSeed})
			},
			Strategy: strat,
		})
		if err != nil {
			return nil, err
		}
		state = clus
	} else if cfg.devices > 1 {
		// Multi-device stack: one core per device behind a placement
		// policy, served through the same Scheduler interface.
		policyName := cfg.placement
		if policyName == "" {
			policyName = multigpu.PolicyLeastLoaded
		}
		pol, err := policy.NewPlace(policyName, policy.Config{Seed: cfg.algorithmSeed})
		if err != nil {
			return nil, err
		}
		state, err = multigpu.New(multigpu.Config{
			Devices:           cfg.devices,
			CapacityPerDevice: cfg.capacity,
			Algorithm:         cfg.algorithm,
			AlgorithmFactory:  wakeFactory,
			AlgSeed:           cfg.algorithmSeed,
			Policy:            pol,
			PersistentGrants:  cfg.persistentGrants,
		})
		if err != nil {
			return nil, err
		}
	} else {
		alg, err := policy.NewWake(cfg.algorithm, policy.Config{Seed: cfg.algorithmSeed})
		if err != nil {
			return nil, err
		}
		state, err = core.New(core.Config{
			Capacity:         cfg.capacity,
			Algorithm:        alg,
			FaultTolerant:    cfg.faultTolerant,
			PersistentGrants: cfg.persistentGrants,
			EventLogSize:     cfg.eventLogSize,
		})
		if err != nil {
			return nil, err
		}
	}

	o := cfg.obs
	if o == nil {
		o = obs.New(obs.Config{Algorithm: cfg.algorithm, TraceCapacity: cfg.traceCapacity})
	}

	return &Stack{
		cfg:    cfg,
		device: gpu.New(props, gpuOpts...),
		state:  state,
		clus:   clus,
		obs:    o,
	}, nil
}

// Start brings the stack up: base directory, scheduler daemon on its
// control socket, container engine, plugin and nvidia-docker wiring.
// The context bounds the initial control-channel dial. Start is
// idempotent once it has succeeded.
func (s *Stack) Start(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("convgpu: stack closed")
	}
	if s.started {
		return nil
	}

	baseDir := s.cfg.baseDir
	if baseDir == "" {
		dir, err := os.MkdirTemp("", "convgpu")
		if err != nil {
			return fmt.Errorf("convgpu: tempdir: %w", err)
		}
		s.tempdir = dir
		baseDir = dir
	}

	fail := func(err error) error {
		s.stopLocked()
		return err
	}

	if s.cfg.walDir != "" {
		mode, interval, err := wal.ParseSyncPolicy(s.cfg.walSync)
		if err != nil {
			return fail(fmt.Errorf("convgpu: wal sync policy: %w", err))
		}
		s.wal, err = wal.Open(wal.Options{Dir: s.cfg.walDir, Sync: mode, SyncInterval: interval})
		if err != nil {
			return fail(fmt.Errorf("convgpu: open wal: %w", err))
		}
	}

	var err error
	s.daemon, err = daemon.Start(daemon.Config{
		BaseDir: baseDir,
		Core:    s.state,
		Lease:   s.cfg.lease,
		Obs:     s.obs,
		WAL:     s.wal,
		Tenants: s.cfg.tenants,
	})
	if err != nil {
		return fail(err)
	}
	if s.clus != nil && s.cfg.nodeHealth > 0 {
		// A nil probe treats every node as healthy: the loop auto-revives
		// down nodes and keeps the obs gauges live, while drain/revive
		// stay manual verbs. Real deployments hook a liveness RPC here.
		if err := s.clus.StartHealth(cluster.HealthConfig{Interval: s.cfg.nodeHealth}); err != nil {
			return fail(err)
		}
	}
	s.engine, err = container.NewEngine(container.Config{
		Device:        s.device,
		CreateLatency: s.cfg.createLatency,
	})
	if err != nil {
		return fail(err)
	}
	// The control channel is a Reconnector: callers' contexts propagate
	// into its dial/backoff, WithCallTimeout bounds the non-blocking
	// message types, and its round trips/redials feed the telemetry.
	// Each published connection negotiates the binary fast-path codec
	// unless WithJSONWire (or CONVGPU_WIRE_JSON) pins it to JSON.
	wire := &ipc.WireStats{}
	ctl := ipc.NewReconnector(ipc.ReconnectConfig{
		Network:       "unix",
		Addr:          s.daemon.ControlSocket(),
		CallTimeout:   s.cfg.callTimeout,
		RTT:           s.obs.ControlRTT,
		Reconnects:    s.obs.Reconnects,
		Wire:          wire,
		DisableBinary: s.cfg.jsonWire,
	})
	s.ctl = ctl
	s.obs.BindWire("client", wire, func() int64 { return ctl.InFlight() })
	if _, err = s.ctl.Connect(ctx); err != nil {
		return fail(fmt.Errorf("convgpu: %w: %v", ErrDaemonUnavailable, err))
	}
	s.plugin = plugin.New(s.ctl)
	s.nv = nvdocker.New(s.engine, s.ctl, s.plugin)
	s.started = true
	return nil
}

// stopLocked tears down whatever Start brought up. Caller holds s.mu.
func (s *Stack) stopLocked() {
	if s.ctl != nil {
		s.ctl.Close()
		s.ctl = nil
	}
	if s.clus != nil {
		s.clus.StopHealth() // no-op when the loop never started
	}
	if s.daemon != nil {
		s.daemon.Close()
		s.daemon = nil
	}
	if s.wal != nil {
		// After the daemon: its shutdown may still append records.
		s.wal.Close()
		s.wal = nil
	}
	if s.tempdir != "" {
		os.RemoveAll(s.tempdir)
		s.tempdir = ""
	}
	s.started = false
}

// Close shuts the stack down: control channel, daemon, sockets, and the
// temporary base directory if the stack created one. Idempotent.
func (s *Stack) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.stopLocked()
	return nil
}

// runtime returns the started nvidia-docker wiring, or ErrNotStarted.
func (s *Stack) runtime() (*nvdocker.NVDocker, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.started {
		return nil, ErrNotStarted
	}
	return s.nv, nil
}

// Run launches a container through the customized nvidia-docker: the
// full paper flow (limit resolution, registration, wrapper injection,
// exit detection). The context bounds the scheduler registration.
func (s *Stack) Run(ctx context.Context, opts RunOptions) (*Container, error) {
	nv, err := s.runtime()
	if err != nil {
		return nil, err
	}
	return nv.Run(ctx, opts)
}

// Create is Run without starting the container.
func (s *Stack) Create(ctx context.Context, opts RunOptions) (*Container, error) {
	nv, err := s.runtime()
	if err != nil {
		return nil, err
	}
	return nv.Create(ctx, opts)
}

// Snapshot reports the scheduler's per-container state.
func (s *Stack) Snapshot() []SchedulerInfo { return s.state.Snapshot() }

// Events returns the scheduler's retained event log (registrations,
// accepts, suspensions, grants, closes, ...), oldest first.
func (s *Stack) Events() []SchedulerEvent { return s.state.Events() }

// PoolFree reports unassigned GPU memory.
func (s *Stack) PoolFree() Size { return s.state.PoolFree() }

// Algorithm returns the redistribution algorithm's name.
func (s *Stack) Algorithm() string { return s.state.AlgorithmName() }

// Devices reports a live summary of every device the stack serves: one
// entry for a default stack, one per device under WithDevices.
func (s *Stack) Devices() []DeviceInfo { return s.state.Devices() }

// Placement reports the device a registered container was assigned.
func (s *Stack) Placement(containerID string) (int, error) {
	return s.state.Placement(core.ContainerID(containerID))
}

// Device exposes the simulated GPU (e.g. for device-view assertions).
func (s *Stack) Device() *gpu.Device { return s.device }

// Observability exposes the stack's telemetry bundle: counters,
// histograms, gauges and the event trace.
func (s *Stack) Observability() *Observability { return s.obs }

// MetricsHandler returns an HTTP handler serving /metrics (Prometheus
// text), /stats, /trace, /debug/vars and /debug/pprof for this stack.
func (s *Stack) MetricsHandler() http.Handler { return s.obs.Handler() }

// ControlSocket returns the scheduler daemon's control socket path, or
// "" before Start.
func (s *Stack) ControlSocket() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.started {
		return ""
	}
	return s.daemon.ControlSocket()
}

// introspect performs one stats/trace/dump round trip on the control
// socket and returns the response's JSON payload.
func (s *Stack) introspect(ctx context.Context, typ protocol.Type, containerID string) ([]byte, error) {
	return s.callData(ctx, &protocol.Message{Type: typ, Container: containerID})
}

// callData performs one control-socket round trip and returns the
// response's JSON payload.
func (s *Stack) callData(ctx context.Context, msg *protocol.Message) ([]byte, error) {
	s.mu.Lock()
	ctl := s.ctl
	started := s.started
	s.mu.Unlock()
	if !started {
		return nil, ErrNotStarted
	}
	typ := msg.Type
	resp, err := ctl.Call(ctx, msg)
	if err != nil {
		return nil, fmt.Errorf("convgpu: %s: %w: %v", typ, ErrDaemonUnavailable, err)
	}
	if !resp.OK {
		e := fmt.Errorf("convgpu: %s: %s", typ, resp.Error)
		protocol.ReleaseMessage(resp)
		return nil, e
	}
	data := []byte(resp.Data)
	protocol.ReleaseMessage(resp)
	return data, nil
}

// nodeVerb performs one drain/revive round trip on the control socket.
func (s *Stack) nodeVerb(ctx context.Context, typ protocol.Type, node int) error {
	s.mu.Lock()
	ctl := s.ctl
	started := s.started
	s.mu.Unlock()
	if !started {
		return ErrNotStarted
	}
	resp, err := ctl.Call(ctx, &protocol.Message{Type: typ, Device: node})
	if err != nil {
		return fmt.Errorf("convgpu: %s: %w: %v", typ, ErrDaemonUnavailable, err)
	}
	defer protocol.ReleaseMessage(resp)
	if !resp.OK {
		if err := protocol.ErrFromCode(resp.Code); err != nil {
			return fmt.Errorf("convgpu: %s node %d: %w", typ, node, err)
		}
		return fmt.Errorf("convgpu: %s node %d: %s", typ, node, resp.Error)
	}
	return nil
}

// Nodes asks the live daemon for the cluster membership view — one
// NodeStatus per node with its state (up, suspect, down, draining),
// capacity, free memory and failover count. It requires a cluster stack
// (WithNodes); on a single-node stack the daemon answers with an error.
func (s *Stack) Nodes(ctx context.Context) ([]NodeStatus, error) {
	data, err := s.introspect(ctx, protocol.TypeNodes, "")
	if err != nil {
		return nil, err
	}
	var nodes []NodeStatus
	if err := json.Unmarshal(data, &nodes); err != nil {
		return nil, fmt.Errorf("convgpu: nodes: %w", err)
	}
	return nodes, nil
}

// Tenants asks the live daemon for the per-tenant usage rollup: one
// TenantUsage per named tenant with its configured attributes (weight,
// priority, quota, guarantee) and live scheduling state (containers,
// grants, usage, pending requests), sorted by name. Containers of the
// default tenant are not listed.
func (s *Stack) Tenants(ctx context.Context) ([]TenantUsage, error) {
	data, err := s.introspect(ctx, protocol.TypeTenants, "")
	if err != nil {
		return nil, err
	}
	var tenants []TenantUsage
	if err := json.Unmarshal(data, &tenants); err != nil {
		return nil, fmt.Errorf("convgpu: tenants: %w", err)
	}
	return tenants, nil
}

// DrainNode makes a cluster node refuse new containers while its
// existing grants complete — the graceful half of the failure-domain
// surface. Draining a node that is already down fails with ErrNodeDown.
func (s *Stack) DrainNode(ctx context.Context, node int) error {
	return s.nodeVerb(ctx, protocol.TypeDrain, node)
}

// ReviveNode returns a drained or down cluster node to service. A down
// node's slot holds a fresh, empty scheduler (installed at failover),
// so revival is indistinguishable from a clean boot.
func (s *Stack) ReviveNode(ctx context.Context, node int) error {
	return s.nodeVerb(ctx, protocol.TypeRevive, node)
}

// Stats asks the live daemon for its metric snapshot over the control
// socket and returns the JSON document (obs.StatsPayload).
func (s *Stack) Stats(ctx context.Context) ([]byte, error) {
	return s.introspect(ctx, protocol.TypeStats, "")
}

// Trace asks the live daemon for its retained event trace over the
// control socket (obs.TraceDump). An empty containerID returns every
// container's events. The daemon pages trace responses to fit the IPC
// frame bound; Trace follows the cursor until the ring is exhausted
// and returns the merged dump, so a trace longer than one frame is no
// longer silently truncated.
func (s *Stack) Trace(ctx context.Context, containerID string) ([]byte, error) {
	var merged obs.TraceDump
	first := true
	after := uint64(0)
	for {
		data, err := s.callData(ctx, &protocol.Message{Type: protocol.TypeTrace, Container: containerID, After: after})
		if err != nil {
			return nil, err
		}
		var page obs.TraceDump
		if err := json.Unmarshal(data, &page); err != nil {
			return nil, fmt.Errorf("convgpu: trace: %w", err)
		}
		if first {
			merged = page
			first = false
		} else {
			merged.Capacity, merged.Total, merged.Dropped = page.Capacity, page.Total, page.Dropped
			merged.Events = append(merged.Events, page.Events...)
		}
		if !page.More || len(page.Events) == 0 {
			break
		}
		after = page.Events[len(page.Events)-1].Seq
	}
	merged.NextAfter, merged.More = 0, false
	return json.Marshal(&merged)
}

// TracePage retrieves one bounded page of the event trace: up to limit
// events with Seq > after. The returned dump's next_after/more fields
// drive the next call — the building block Trace loops over.
func (s *Stack) TracePage(ctx context.Context, containerID string, after uint64, limit int) ([]byte, error) {
	return s.callData(ctx, &protocol.Message{Type: protocol.TypeTrace, Container: containerID, After: after, Size: int64(limit)})
}

// Sessions asks the live daemon for one page of its registered session
// listing, ordered by container ID: entries with ID > after, at most
// limit of them (0 = the daemon's page cap). With WithWAL the listing
// reads the durable folded state; otherwise the live core.
func (s *Stack) Sessions(ctx context.Context, after string, limit int) (SessionPage, error) {
	data, err := s.callData(ctx, &protocol.Message{Type: protocol.TypeSessions, Container: after, Size: int64(limit)})
	if err != nil {
		return SessionPage{}, err
	}
	var page SessionPage
	if err := json.Unmarshal(data, &page); err != nil {
		return SessionPage{}, fmt.Errorf("convgpu: sessions: %w", err)
	}
	return page, nil
}

// Operations asks the live daemon for its retained admin operations,
// newest first.
func (s *Stack) Operations(ctx context.Context) ([]Operation, error) {
	data, err := s.callData(ctx, &protocol.Message{Type: protocol.TypeOps})
	if err != nil {
		return nil, err
	}
	var ops []Operation
	if err := json.Unmarshal(data, &ops); err != nil {
		return nil, fmt.Errorf("convgpu: ops: %w", err)
	}
	return ops, nil
}

// Operation polls one admin operation by ID.
func (s *Stack) Operation(ctx context.Context, id string) (Operation, error) {
	data, err := s.callData(ctx, &protocol.Message{Type: protocol.TypeOps, Container: id})
	if err != nil {
		return Operation{}, err
	}
	var op Operation
	if err := json.Unmarshal(data, &op); err != nil {
		return Operation{}, fmt.Errorf("convgpu: ops: %w", err)
	}
	return op, nil
}

// WALStats reports the write-ahead log's counters; ok is false without
// WithWAL or before Start.
func (s *Stack) WALStats() (WALStats, bool) {
	s.mu.Lock()
	d := s.daemon
	s.mu.Unlock()
	if d == nil {
		return WALStats{}, false
	}
	return d.WALStats()
}

// AdminHandler returns the versioned HTTP admin plane for the running
// stack: read endpoints and async mutating verbs under /v1 (see
// internal/admin), with request-ID correlation and per-client
// throttling. It fronts the same daemon the control socket serves.
// Fails before Start.
func (s *Stack) AdminHandler() (http.Handler, error) {
	s.mu.Lock()
	d := s.daemon
	started := s.started
	s.mu.Unlock()
	if !started || d == nil {
		return nil, ErrNotStarted
	}
	return admin.New(admin.Config{Daemon: d})
}

// Dump asks the live daemon for a full state dump over the control
// socket: snapshot, metrics and trace in one JSON document.
func (s *Stack) Dump(ctx context.Context) ([]byte, error) {
	return s.introspect(ctx, protocol.TypeDump, "")
}
