// Policy benchmarks (run `make bench-policy`): the cost of the wake
// policy registry on the paths a policy can actually tax, measured per
// registered policy so a regression is attributable to one of them:
//
//	BenchmarkPolicyAdmit/<name>    steady-state within-grant
//	                               admit/confirm/free under two named
//	                               tenants — the fast path must stay flat
//	                               (and allocation-free) no matter which
//	                               policy is installed
//	BenchmarkPolicyPick/<name>     the pure wake decision over a fixed
//	                               64-candidate set — where the policies
//	                               genuinely differ
//	BenchmarkPolicyPreemption      one full preempt-admit cycle under the
//	                               priority policy: a high-priority
//	                               tenant's request reclaims an idle
//	                               low-priority grant and is admitted
//	BenchmarkPolicyHeteroPlace/<name>  the pure placement decision over a
//	                               fixed 16-device MIG-style
//	                               mixed-capacity summary, per placement
//	                               policy — where fragaware pays for its
//	                               capacity-argmin scan
//
// BENCH_policy.txt is the committed baseline `make benchdiff-policy`
// compares against; allocation counts are deterministic, so the strict
// gate gives them no slack.
package convgpu_test

import (
	"fmt"
	"testing"

	"convgpu/internal/bytesize"
	"convgpu/internal/core"
	"convgpu/internal/policy"
)

func benchTenant(name string, prio int) core.Tenant {
	return core.Tenant{Name: name, Weight: prio, Priority: prio}
}

// BenchmarkPolicyAdmit measures the steady-state admit cycle with two
// named tenants registered: every wake policy must leave the
// within-grant fast path untouched, so these numbers should be
// indistinguishable across policies (and a spread here means a policy
// leaked work onto the hot path).
func BenchmarkPolicyAdmit(b *testing.B) {
	for _, name := range policy.WakeNames() {
		b.Run(name, func(b *testing.B) {
			alg, err := policy.NewWake(name, policy.Config{Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			s, err := core.New(core.Config{
				Capacity: 4 * bytesize.GiB, ContextOverhead: 1, Algorithm: alg,
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.RegisterTenant("bench-a", 2*bytesize.GiB, benchTenant("gold", 8)); err != nil {
				b.Fatal(err)
			}
			if _, err := s.RegisterTenant("bench-b", 1*bytesize.GiB, benchTenant("bronze", 1)); err != nil {
				b.Fatal(err)
			}
			const size = 64 * bytesize.MiB
			// Prime the pid's context overhead so iterations are uniform.
			if _, err := s.RequestAlloc("bench-a", 1, size); err != nil {
				b.Fatal(err)
			}
			if err := s.ConfirmAlloc("bench-a", 1, 0x1, size); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := s.RequestAlloc("bench-a", 1, size)
				if err != nil || res.Decision != core.Accept {
					b.Fatalf("admit: %v %v", res.Decision, err)
				}
				addr := uint64(0x1000 + i)
				if err := s.ConfirmAlloc("bench-a", 1, addr, size); err != nil {
					b.Fatal(err)
				}
				if _, _, err := s.Free("bench-a", 1, addr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPolicyPick measures the bare wake decision: one Pick over a
// fixed 64-candidate set spanning four tenants with distinct weights,
// priorities, grants, and deficits. This is the only per-policy cost on
// the redistribution path, so it is the number the registry's policy
// authors budget against.
func BenchmarkPolicyPick(b *testing.B) {
	cands := make([]core.Candidate, 64)
	tenants := []string{"", "gold", "silver", "bronze"}
	for i := range cands {
		tn := tenants[i%len(tenants)]
		cands[i] = core.Candidate{
			ID:              core.ContainerID(fmt.Sprintf("c%d", i)),
			CreatedSeq:      uint64(i + 1),
			SuspendSeq:      uint64(64 - i),
			Deficit:         bytesize.Size(8+i%17) * bytesize.MiB,
			Tenant:          tn,
			TenantWeight:    1 + i%4,
			TenantPriority:  i % 5,
			TenantGrant:     bytesize.Size(64+i*3) * bytesize.MiB,
			TenantGuarantee: bytesize.Size(i%2) * 128 * bytesize.MiB,
		}
	}
	const pool = 512 * bytesize.MiB
	for _, name := range policy.WakeNames() {
		b.Run(name, func(b *testing.B) {
			alg, err := policy.NewWake(name, policy.Config{Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if k := alg.Pick(pool, cands); k < 0 || k >= len(cands) {
					b.Fatalf("pick returned %d", k)
				}
			}
		})
	}
}

// BenchmarkPolicyHeteroPlace measures the bare placement decision over
// a fixed 16-device heterogeneous summary mixing MIG-style instance
// sizes (5/10/20/40 GiB) at varying fill levels. Placement runs once
// per container registration — not per allocation — so wall time is
// informational; the allocation count is the budget: every registered
// placement policy must decide without allocating.
func BenchmarkPolicyHeteroPlace(b *testing.B) {
	caps := []bytesize.Size{5, 10, 20, 40}
	devs := make([]core.DeviceInfo, 16)
	for i := range devs {
		c := caps[i%len(caps)] * bytesize.GiB
		devs[i] = core.DeviceInfo{
			Index:      i,
			Capacity:   c,
			PoolFree:   c / bytesize.Size(i%3+1),
			Containers: i % 5,
		}
	}
	const limit = 4 * bytesize.GiB
	for _, name := range policy.PlaceNames() {
		b.Run(name, func(b *testing.B) {
			pol, err := policy.NewPlace(name, policy.Config{Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if k := pol.Place(limit, devs); k < 0 || k >= len(devs) {
					b.Fatalf("place returned %d", k)
				}
			}
		})
	}
}

// BenchmarkPolicyPreemption measures one full preempt-admit cycle: a
// low-priority tenant registers and absorbs the whole pool as idle
// grant, then a high-priority tenant's first allocation must reclaim it
// through the priority policy's Victims hook to be admitted. The cycle
// includes the registrations and closes needed to reset the device, so
// ns/op is the end-to-end latency of provisioning-through-preemption,
// not the bare reclaim.
func BenchmarkPolicyPreemption(b *testing.B) {
	alg, err := policy.NewWake(policy.WakePriority, policy.Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	s, err := core.New(core.Config{
		Capacity: 1 * bytesize.GiB, ContextOverhead: 1, Algorithm: alg,
	})
	if err != nil {
		b.Fatal(err)
	}
	lo := benchTenant("batch", 1)
	hi := benchTenant("interactive", 9)
	const size = 256 * bytesize.MiB
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The victim soaks up the full capacity as an idle grant...
		if _, err := s.RegisterTenant("victim", 1*bytesize.GiB, lo); err != nil {
			b.Fatal(err)
		}
		// ...so the preemptor registers with a zero grant and its first
		// request can only be admitted by reclaiming from the victim.
		if _, err := s.RegisterTenant("preemptor", 512*bytesize.MiB, hi); err != nil {
			b.Fatal(err)
		}
		res, err := s.RequestAlloc("preemptor", 1, size)
		if err != nil {
			b.Fatal(err)
		}
		if res.Decision != core.Accept {
			b.Fatalf("preempting request not admitted: %v", res.Decision)
		}
		if err := s.ConfirmAlloc("preemptor", 1, uint64(0x1000+i), size); err != nil {
			b.Fatal(err)
		}
		if _, _, err := s.Close("preemptor"); err != nil {
			b.Fatal(err)
		}
		if _, _, err := s.Close("victim"); err != nil {
			b.Fatal(err)
		}
	}
}
