// Hot-path benchmarks (run `make bench` or
// `go test -bench=BenchmarkHotPath -benchmem`): the steady-state accept
// path the paper's Fig. 4 overhead numbers hinge on, measured at three
// altitudes so a regression is attributable to one layer:
//
//	BenchmarkHotPathCodec*        JSON encode/decode of the fixed
//	                              alloc/response message shapes
//	BenchmarkHotPathBinary*       the same shapes through the negotiated
//	                              binary fast-path codec (0 allocs/op)
//	BenchmarkHotPathCore*         scheduler admit/confirm/free with no
//	                              transport (fast-path admit territory)
//	BenchmarkHotPathRouted*       the same cycle through the multi-device
//	                              routing plane (placement lookup + member
//	                              forward) — must stay 0 allocs/op
//	BenchmarkHotPathRoundTrip*    end-to-end over the daemon's real UNIX
//	                              socket, zero device latency
//
// CHANGES.md records the seed-vs-optimized numbers for these.
package convgpu_test

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"convgpu/internal/bytesize"
	"convgpu/internal/core"
	"convgpu/internal/ipc"
	"convgpu/internal/multigpu"
	"convgpu/internal/obs"
	"convgpu/internal/protocol"
)

// --- codec ---

func hotPathAllocMsg() *protocol.Message {
	return &protocol.Message{
		Type: protocol.TypeAlloc,
		Seq:  123456,
		PID:  41,
		Size: int64(4 * bytesize.MiB),
		API:  "cudaMalloc",
	}
}

func hotPathRespMsg() *protocol.Message {
	return &protocol.Message{
		Type:     protocol.TypeResponse,
		Seq:      123456,
		OK:       true,
		Decision: protocol.DecisionAccept,
	}
}

func BenchmarkHotPathCodecEncode(b *testing.B) {
	m := hotPathAllocMsg()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := protocol.Encode(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHotPathCodecDecode(b *testing.B) {
	line, err := protocol.Encode(hotPathRespMsg())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := protocol.Decode(line)
		if err != nil {
			b.Fatal(err)
		}
		protocol.ReleaseMessage(m)
	}
}

func BenchmarkHotPathCodecRoundTrip(b *testing.B) {
	m := hotPathAllocMsg()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		line, err := protocol.Encode(m)
		if err != nil {
			b.Fatal(err)
		}
		d, err := protocol.Decode(line)
		if err != nil {
			b.Fatal(err)
		}
		protocol.ReleaseMessage(d)
	}
}

// --- binary fast-path codec ---

func BenchmarkHotPathBinaryEncode(b *testing.B) {
	m := hotPathAllocMsg()
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, ok := protocol.AppendEncodeBinary(buf[:0], m)
		if !ok {
			b.Fatal("alloc message not binary-representable")
		}
		buf = out[:0]
	}
}

func BenchmarkHotPathBinaryDecode(b *testing.B) {
	frame, ok := protocol.AppendEncodeBinary(nil, hotPathRespMsg())
	if !ok {
		b.Fatal("response message not binary-representable")
	}
	var m protocol.Message
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op, n, seq, err := protocol.ParseBinaryHeader(frame[:protocol.BinaryHeaderSize])
		if err != nil {
			b.Fatal(err)
		}
		m.Reset()
		if err := protocol.DecodeBinaryInto(&m, op, seq, frame[protocol.BinaryHeaderSize:protocol.BinaryHeaderSize+n]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHotPathBinaryRoundTrip(b *testing.B) {
	req := hotPathAllocMsg()
	buf := make([]byte, 0, 256)
	var m protocol.Message
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame, ok := protocol.AppendEncodeBinary(buf[:0], req)
		if !ok {
			b.Fatal("not binary-representable")
		}
		op, n, seq, err := protocol.ParseBinaryHeader(frame[:protocol.BinaryHeaderSize])
		if err != nil {
			b.Fatal(err)
		}
		m.Reset()
		if err := protocol.DecodeBinaryInto(&m, op, seq, frame[protocol.BinaryHeaderSize:protocol.BinaryHeaderSize+n]); err != nil {
			b.Fatal(err)
		}
		buf = frame[:0]
	}
}

// --- core ---

// BenchmarkHotPathCoreAccept is the scheduler's steady-state cycle for a
// container far below its grant: accept, confirm, free, never a
// redistribution. Observability is bound, as in the real daemon: every
// event bumps a per-kind counter and lands in the trace ring, and the
// 0 allocs/op budget must hold with that on.
func BenchmarkHotPathCoreAccept(b *testing.B) {
	st, err := core.New(core.Config{Capacity: 1 << 40})
	if err != nil {
		b.Fatal(err)
	}
	obs.New(obs.Config{Algorithm: "fifo"}).BindCore(st)
	if _, err := st.Register("c", 1<<39); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := st.RequestAlloc("c", 1, 4096)
		if err != nil || res.Decision != core.Accept {
			b.Fatalf("%v %v", res, err)
		}
		addr := uint64(i + 1)
		if err := st.ConfirmAlloc("c", 1, addr, 4096); err != nil {
			b.Fatal(err)
		}
		if _, _, err := st.Free("c", 1, addr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotPathCoreAcceptParallel stresses scheduler lock contention:
// many containers, each its own goroutine, all in the steady-state cycle.
func BenchmarkHotPathCoreAcceptParallel(b *testing.B) {
	st, err := core.New(core.Config{Capacity: 1 << 44})
	if err != nil {
		b.Fatal(err)
	}
	obs.New(obs.Config{Algorithm: "fifo"}).BindCore(st)
	ids := make([]core.ContainerID, 16)
	for i := range ids {
		ids[i] = core.ContainerID("c" + string(rune('a'+i)))
		if _, err := st.Register(ids[i], 1<<39); err != nil {
			b.Fatal(err)
		}
	}
	var next int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := ids[int(atomicAdd(&next, 1))%len(ids)]
		addr := uint64(atomicAdd(&next, 1)) << 32
		for pb.Next() {
			addr++
			res, err := st.RequestAlloc(id, 1, 4096)
			if err != nil || res.Decision != core.Accept {
				b.Errorf("%v %v", res, err)
				return
			}
			if err := st.ConfirmAlloc(id, 1, addr, 4096); err != nil {
				b.Error(err)
				return
			}
			if _, _, err := st.Free(id, 1, addr); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// --- device routing ---

// newRoutedState builds a multi-device scheduler with one registered
// container, observability bound as in the real daemon.
func newRoutedState(b *testing.B, devices int) *multigpu.State {
	b.Helper()
	pol, err := multigpu.NewPolicy(multigpu.PolicyRoundRobin)
	if err != nil {
		b.Fatal(err)
	}
	st, err := multigpu.New(multigpu.Config{
		Devices:           devices,
		CapacityPerDevice: 1 << 40,
		Policy:            pol,
	})
	if err != nil {
		b.Fatal(err)
	}
	obs.New(obs.Config{Algorithm: "fifo"}).BindCore(st)
	if _, err := st.Register("c", 1<<39); err != nil {
		b.Fatal(err)
	}
	return st
}

// benchRoutedAccept runs the steady-state accept cycle through the
// routing plane: every operation resolves the container's placement and
// forwards to the owning device's core.
func benchRoutedAccept(b *testing.B, devices int) {
	st := newRoutedState(b, devices)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := st.RequestAlloc("c", 1, 4096)
		if err != nil || res.Decision != core.Accept {
			b.Fatalf("%v %v", res, err)
		}
		addr := uint64(i + 1)
		if err := st.ConfirmAlloc("c", 1, addr, 4096); err != nil {
			b.Fatal(err)
		}
		if _, _, err := st.Free("c", 1, addr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotPathRoutedAccept1Device is the single-device fast path
// served through the routing plane: the delta against
// BenchmarkHotPathCoreAccept is the pure cost of device routing, and
// the 0 allocs/op budget must hold unchanged.
func BenchmarkHotPathRoutedAccept1Device(b *testing.B) { benchRoutedAccept(b, 1) }

// BenchmarkHotPathRoutedAccept2Devices is the same cycle against a
// 2-device scheduler — placement lookup across a populated map, still
// 0 allocs/op.
func BenchmarkHotPathRoutedAccept2Devices(b *testing.B) { benchRoutedAccept(b, 2) }

// BenchmarkHotPathRoutedAccept64Devices scales the routing plane to 64
// member cores: with the admission core sharded, per-op cost must stay
// within 15% of the 1-device row — the backend count must not leak into
// the per-operation path.
func BenchmarkHotPathRoutedAccept64Devices(b *testing.B) { benchRoutedAccept(b, 64) }

// --- end to end ---

// hotPathRig is newBenchRig without device latency: what remains is pure
// middleware cost (codec + transport + scheduler).
func newHotPathRig(b *testing.B) *benchRig {
	return newBenchRig(b, false)
}

// negotiateBinary flips the rig's wrapper connection to the binary
// fast-path codec, failing the benchmark if the daemon does not speak
// it.
func negotiateBinary(b *testing.B, cli *ipc.Client) {
	b.Helper()
	ok, err := cli.NegotiateBinary(context.Background())
	if err != nil || !ok {
		b.Fatalf("binary negotiation failed: ok=%v err=%v", ok, err)
	}
}

// benchRoundTrip1RTT measures a single request/response round trip over
// the daemon's real UNIX socket — one meminfo query per iteration, the
// purest transport + dispatch cost. The binary variant is the
// sub-5µs/≤4-allocs budget row; the JSON variant is the fallback path's
// price for comparison.
func benchRoundTrip1RTT(b *testing.B, binary bool) {
	r := newHotPathRig(b)
	if binary {
		negotiateBinary(b, r.wrapCli)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := r.wrapCli.Call(ctx, &protocol.Message{Type: protocol.TypeMemInfo, PID: 2})
		if err != nil || !resp.OK {
			b.Fatalf("meminfo: %+v %v", resp, err)
		}
		protocol.ReleaseMessage(resp)
	}
}

func BenchmarkHotPathRoundTrip1RTTBinary(b *testing.B) { benchRoundTrip1RTT(b, true) }
func BenchmarkHotPathRoundTrip1RTTJSON(b *testing.B)   { benchRoundTrip1RTT(b, false) }

// BenchmarkHotPathRoundTripPipelined keeps 8 calls in flight on one
// binary connection — the shape the per-connection seq ring exists for.
// A sequential RTT pays four syscalls and two scheduler wakeups per
// call; with the pipeline full, the write coalescer batches frames and
// each wakeup drains several responses, so amortized per-call cost
// drops well under one synchronous RTT.
func BenchmarkHotPathRoundTripPipelined(b *testing.B) {
	const depth = 8
	r := newHotPathRig(b)
	negotiateBinary(b, r.wrapCli)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	errc := make(chan error, depth)
	for g := 0; g < depth; g++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				resp, err := r.wrapCli.Call(ctx, &protocol.Message{Type: protocol.TypeMemInfo, PID: 2})
				if err != nil || !resp.OK {
					errc <- fmt.Errorf("meminfo: %+v %v", resp, err)
					return
				}
				protocol.ReleaseMessage(resp)
			}
		}(b.N / depth)
	}
	wg.Wait()
	b.StopTimer()
	close(errc)
	for err := range errc {
		b.Fatal(err)
	}
}

// BenchmarkHotPathRoundTrip measures one accepted allocation round trip
// over the daemon's real UNIX socket: alloc (accept), confirm, free —
// three RTTs per iteration, on the negotiated binary codec.
func BenchmarkHotPathRoundTrip(b *testing.B) {
	r := newHotPathRig(b)
	negotiateBinary(b, r.wrapCli)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := r.wrapCli.Call(ctx, &protocol.Message{
			Type: protocol.TypeAlloc, PID: 2, Size: 4096, API: "cudaMalloc",
		})
		if err != nil || !resp.OK || resp.Decision != protocol.DecisionAccept {
			b.Fatalf("alloc: %+v %v", resp, err)
		}
		addr := uint64(i + 1)
		resp, err = r.wrapCli.Call(ctx, &protocol.Message{
			Type: protocol.TypeConfirm, PID: 2, Size: 4096, Addr: addr,
		})
		if err != nil || !resp.OK {
			b.Fatalf("confirm: %+v %v", resp, err)
		}
		resp, err = r.wrapCli.Call(ctx, &protocol.Message{
			Type: protocol.TypeFree, PID: 2, Addr: addr,
		})
		if err != nil || !resp.OK {
			b.Fatalf("free: %+v %v", resp, err)
		}
	}
}

// BenchmarkHotPathRoundTripParallel multiplexes concurrent allocation
// cycles over one connection — the several-blocked-processes shape the
// pipelined sequence numbers exist for, on the binary codec.
func BenchmarkHotPathRoundTripParallel(b *testing.B) {
	r := newHotPathRig(b)
	negotiateBinary(b, r.wrapCli)
	ctx := context.Background()
	var next int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		pid := 100 + int(atomicAdd(&next, 1))
		addr := uint64(pid) << 32
		for pb.Next() {
			addr++
			resp, err := r.wrapCli.Call(ctx, &protocol.Message{
				Type: protocol.TypeAlloc, PID: pid, Size: 4096, API: "cudaMalloc",
			})
			if err != nil || !resp.OK || resp.Decision != protocol.DecisionAccept {
				b.Errorf("alloc: %+v %v", resp, err)
				return
			}
			resp, err = r.wrapCli.Call(ctx, &protocol.Message{
				Type: protocol.TypeConfirm, PID: pid, Size: 4096, Addr: addr,
			})
			if err != nil || !resp.OK {
				b.Errorf("confirm: %+v %v", resp, err)
				return
			}
			resp, err = r.wrapCli.Call(ctx, &protocol.Message{
				Type: protocol.TypeFree, PID: pid, Addr: addr,
			})
			if err != nil || !resp.OK {
				b.Errorf("free: %+v %v", resp, err)
				return
			}
		}
	})
}

// BenchmarkHotPathWrappedMallocFree is the full wrapper-module cycle over
// the socket with zero device latency — the closest analogue of the
// paper's intercepted cudaMalloc cost with hardware time subtracted.
func BenchmarkHotPathWrappedMallocFree(b *testing.B) {
	r := newHotPathRig(b)
	negotiateBinary(b, r.wrapCli)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ptr, err := r.wrapped.Malloc(4096)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.wrapped.Free(ptr); err != nil {
			b.Fatal(err)
		}
		if i%256 == 255 {
			r.wrapped.Flush()
		}
	}
	b.StopTimer()
	r.wrapped.Flush()
}

func atomicAdd(p *int64, d int64) int64 { return atomic.AddInt64(p, d) }
