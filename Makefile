# Developer entry points. The repo is pure Go, standard library only;
# everything below is plain go-tool invocations.

GO ?= go

.PHONY: all build test vet check apicheck apigen race chaos bench clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

check: vet apicheck test

# apicheck guards the public facade: the exported API of package
# convgpu is dumped in normalized form (tools/apidump) and diffed
# against the committed golden file. A surface change fails the build
# until api/convgpu.txt is regenerated on purpose with `make apigen`.
apicheck:
	$(GO) run ./tools/apidump . | diff -u api/convgpu.txt - \
		|| { echo "apicheck: public API changed; review and run 'make apigen'"; exit 1; }

apigen:
	$(GO) run ./tools/apidump . > api/convgpu.txt

# race runs the full suite under the race detector — the hot path
# (pooled codec, coalesced writes, fast-path admit) is validated by
# dedicated concurrency stress tests that only bite with -race on —
# and then the full chaos sweep (see chaos below).
race:
	$(GO) test -race ./...
	$(MAKE) chaos

# chaos replays the full sweep of seeded fault schedules against the
# daemon↔wrapper stack under the race detector — both the single-device
# suite (TestChaos) and the 2-device suite (TestChaosMultiDevice, four
# containers round-robin across two overcommitted pools with per-device
# invariants): every connection drops,
# delays, corrupts, truncates, and hard-closes frames on a deterministic
# schedule while the scheduler's invariants are checked after every op.
# A failing seed N replays with:
#   go test -race -run 'TestChaos/seed=N$' ./internal/fault -chaos.seeds=120
CHAOS_SEEDS ?= 120
chaos:
	$(GO) test -race -run TestChaos -count=1 -timeout 25m ./internal/fault -chaos.seeds=$(CHAOS_SEEDS)

# bench runs the hot-path benchmark suite with allocation tracking and
# saves the results. BENCH_hotpath.json holds the go-test JSON stream
# (one event per line; benchstat-compatible text is in BENCH_hotpath.txt).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkHotPath' -benchmem -count=1 . | tee BENCH_hotpath.txt
	$(GO) test -run '^$$' -bench 'BenchmarkHotPath' -benchmem -count=1 -json . > BENCH_hotpath.json

clean:
	rm -f BENCH_hotpath.json BENCH_hotpath.txt
