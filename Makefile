# Developer entry points. The repo is pure Go, standard library only;
# everything below is plain go-tool invocations.

GO ?= go

.PHONY: all build test vet lint check apicheck apigen race chaos chaos-nodes \
	bench bench-all bench-recovery bench-policy bench-load benchdiff \
	benchdiff-policy clean model model-long policy fuzz-smoke cover \
	recovery-smoke load-smoke

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint is the static gate: go vet plus a gofmt cleanliness check (the
# repo is stdlib-only, so vet and gofmt are the whole toolchain — no
# external linters to vendor).
lint: vet
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "lint: files need gofmt:"; echo "$$out"; exit 1; \
	fi

check: lint apicheck test policy fuzz-smoke cover recovery-smoke load-smoke

# apicheck guards the public facade: the exported API of package
# convgpu is dumped in normalized form (tools/apidump) and diffed
# against the committed golden file. A surface change fails the build
# until api/convgpu.txt is regenerated on purpose with `make apigen`.
apicheck:
	$(GO) run ./tools/apidump . | diff -u api/convgpu.txt - \
		|| { echo "apicheck: public API changed; review and run 'make apigen'"; exit 1; }

apigen:
	$(GO) run ./tools/apidump . > api/convgpu.txt

# race runs the full suite under the race detector — the hot path
# (pooled codec, coalesced writes, fast-path admit) is validated by
# dedicated concurrency stress tests that only bite with -race on —
# and then the full chaos sweep (see chaos below).
race:
	$(GO) test -race ./...
	$(MAKE) chaos

# chaos replays the full sweep of seeded fault schedules against the
# daemon↔wrapper stack under the race detector — both the single-device
# suite (TestChaos) and the 2-device suite (TestChaosMultiDevice, four
# containers round-robin across two overcommitted pools with per-device
# invariants): every connection drops,
# delays, corrupts, truncates, and hard-closes frames on a deterministic
# schedule while the scheduler's invariants are checked after every op.
# A failing seed N replays with:
#   go test -race -run 'TestChaos/seed=N$' ./internal/fault -chaos.seeds=120
CHAOS_SEEDS ?= 120
chaos:
	$(GO) test -race -run TestChaos -count=1 -timeout 25m ./internal/fault -chaos.seeds=$(CHAOS_SEEDS)

# chaos-nodes is the node-scope sweep on its own: seeded schedules of
# node kills, stalls, partitions, flapping restarts, and drains against
# a live 2x2 cluster daemon under -race, with the suite-level goroutine
# leak check covering the health-probe loop. The plain `make chaos`
# regex already includes TestChaosNodeKill at its default seed count;
# this target runs more seeds. A failing seed N replays with:
#   go test -race -run 'TestChaosNodeKill/seed=N$' ./internal/fault -chaos.nodeseeds=$(CHAOS_NODE_SEEDS)
CHAOS_NODE_SEEDS ?= 24
chaos-nodes:
	$(GO) test -race -run TestChaosNodeKill -count=1 -timeout 25m ./internal/fault -chaos.nodeseeds=$(CHAOS_NODE_SEEDS)

# model runs the model-based conformance suite under the race detector:
# seeded op streams drive every algorithm on every topology (core,
# multigpu, cluster, and the full daemon+ipc wire path) in lockstep with
# the sequential reference model in internal/model, cross-checking full
# state after every op. A reported failure prints a shrunk minimal
# reproducer and the exact replay command (-model.seed pins one seed).
# CI runs this short sweep; model-long is the overnight setting.
MODEL_SEEDS ?= 8
MODEL_OPS ?= 500
model:
	$(GO) test -race -count=1 -timeout 15m ./internal/model -model.seeds=$(MODEL_SEEDS) -model.ops=$(MODEL_OPS)

model-long:
	$(MAKE) model MODEL_SEEDS=64 MODEL_OPS=2000

# policy is the conformance gate on the wake/placement policy registry:
# the registry's own unit tests (alias resolution, byte-identical legacy
# construction, ordering semantics of the tenant-aware policies, the
# preemption never-loses-a-ticket property), plus the tenant conformance
# and mutation-sensitivity sweeps that check every registered policy
# against the fairness/quota oracle in internal/model under -race.
policy:
	$(GO) test -race -count=1 ./internal/policy
	$(GO) test -race -count=1 -timeout 15m ./internal/model -run 'TestTenant|TestMutation' -model.seeds=$(MODEL_SEEDS) -model.ops=$(MODEL_OPS)

# fuzz-smoke gives each protocol fuzz target a short native-fuzzing
# budget on top of the committed seeds (which plain `go test` always
# replays). Long fuzzing sessions: raise FUZZTIME.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/protocol -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/protocol -run '^$$' -fuzz '^FuzzEncodeDecodeRoundTrip$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/protocol -run '^$$' -fuzz '^FuzzBinaryDecode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/protocol -run '^$$' -fuzz '^FuzzBinaryJSONParity$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wal -run '^$$' -fuzz '^FuzzWALReplay$$' -fuzztime $(FUZZTIME)

# recovery-smoke is the CI gate on restart recovery cost: replaying a
# 50k-event log must finish inside CONVGPU_RECOVERY_SMOKE_MS
# milliseconds (default 5000 — an order of magnitude of slack over the
# measured time, so only a real regression trips it; widen the env knob
# on slow runners).
recovery-smoke:
	$(GO) test -run '^TestRecoverySmoke$$' -count=1 -v ./internal/wal

# load-smoke is the CI gate on the open-loop load harness: a small
# fixed-seed scenario runs the deterministic in-process path, the
# BENCH_load report schema must round-trip, and the calm-load p99
# admission latency must stay under CONVGPU_LOAD_SMOKE_P99_MS (virtual
# milliseconds, default 60000 — an order of magnitude of slack, and
# deterministic because the path runs on the virtual clock).
load-smoke:
	$(GO) test -run '^TestLoadSmoke$$' -count=1 -v ./internal/load

# cover enforces per-package statement-coverage floors on the packages
# that carry the correctness burden. The floors are recorded a couple of
# points below the measured value at the time they were set — they exist
# to catch tests being deleted or gutted, not to force coverage upward.
cover:
	@set -e; \
	fail=0; \
	for spec in core:74 protocol:74 daemon:82; do \
		pkg=$${spec%%:*}; floor=$${spec##*:}; \
		pct=$$($(GO) test -cover ./internal/$$pkg | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "cover: internal/$$pkg: no coverage reported (test failure?)"; fail=1; continue; fi; \
		echo "internal/$$pkg: $$pct% (floor $$floor%)"; \
		if ! awk -v p="$$pct" -v f="$$floor" 'BEGIN { exit !(p+0 >= f+0) }'; then \
			echo "cover: internal/$$pkg coverage $$pct% fell below the $$floor% floor"; fail=1; \
		fi; \
	done; \
	exit $$fail

# bench runs the hot-path benchmark suite with allocation tracking and
# saves the results. BENCH_hotpath.json holds the go-test JSON stream
# (one event per line; benchstat-compatible text is in BENCH_hotpath.txt).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkHotPath' -benchmem -count=1 . | tee BENCH_hotpath.txt
	$(GO) test -run '^$$' -bench 'BenchmarkHotPath' -benchmem -count=1 -json . > BENCH_hotpath.json

# bench-all regenerates docs_bench_all.txt, the captured full benchmark
# run EXPERIMENTS.md quotes — every family at -benchtime=1x except the
# hot-path suite, which gets real sampling via `make bench` above. Run
# it whenever a benchmark is added or renamed so the capture cannot
# drift from the suite.
bench-all:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=1x -count=1 . | tee docs_bench_all.txt

# bench-recovery captures the restart-recovery artifact quoted by
# EXPERIMENTS.md: replay wall time and per-event cost as the WAL grows
# from 10^3 to 10^6 sessions (the 10^6 case allocates a multi-hundred-MB
# log; it is skipped under -short). BENCH_recovery.json holds the
# go-test JSON stream, BENCH_recovery.txt the benchstat-compatible text.
bench-recovery:
	$(GO) test -run '^$$' -bench 'BenchmarkRecovery' -benchmem -count=1 -timeout 30m ./internal/wal | tee BENCH_recovery.txt
	$(GO) test -run '^$$' -bench 'BenchmarkRecovery' -benchmem -count=1 -timeout 30m -json ./internal/wal > BENCH_recovery.json

# bench-policy captures the policy-registry artifact: per-policy admit
# cost (which must stay flat and allocation-free across every registered
# wake policy), the bare Pick decision over a fixed candidate set, and
# the end-to-end preempt-admit cycle latency. BENCH_policy.txt is the
# committed baseline benchdiff-policy gates against.
bench-policy:
	$(GO) test -run '^$$' -bench 'BenchmarkPolicy' -benchmem -count=1 . | tee BENCH_policy.txt
	$(GO) test -run '^$$' -bench 'BenchmarkPolicy' -benchmem -count=1 -json . > BENCH_policy.json

# bench-load regenerates the open-loop SLO artifact quoted by
# EXPERIMENTS.md: 3200-container arrivals (100x the paper's Fig. 7/8
# cohort) across all seven wake policies on both the deterministic
# in-process path and the daemon+IPC wire path, with
# goodput-vs-offered-load curves and p50/p99/p999 admission tails.
# Repeat runs with the same seed reproduce BENCH_load.json's in-process
# section byte-for-byte; `convgpu-stats load` renders the artifact.
bench-load:
	$(GO) run ./cmd/convgpu-load -out BENCH_load

# benchdiff compares the current hot-path numbers against the committed
# BENCH_hotpath.txt baseline with the home-grown comparer (benchstat
# itself is an external module this repo does not vendor). Informational
# by default; pass BENCHDIFF_FAIL_OVER=25 to fail on a >25% ns/op
# regression (generous slack for shared runners), or
# BENCHDIFF_THRESHOLD=pct for the strict gate CI uses: ns/op past pct
# AND any allocs/op increase at all fail the run — allocation counts
# are deterministic, so the 0-alloc budgets get no slack.
BENCHDIFF_FAIL_OVER ?= 0
BENCHDIFF_THRESHOLD ?= 0
benchdiff:
	@tmp=$$(mktemp); \
	$(GO) test -run '^$$' -bench 'BenchmarkHotPath' -benchmem -count=1 . > $$tmp || { cat $$tmp; rm -f $$tmp; exit 1; }; \
	$(GO) run ./tools/benchdiff -fail-over $(BENCHDIFF_FAIL_OVER) -threshold $(BENCHDIFF_THRESHOLD) BENCH_hotpath.txt $$tmp; \
	status=$$?; rm -f $$tmp; exit $$status

# benchdiff-policy is the same strict comparison against the committed
# BENCH_policy.txt baseline: the per-policy admit benchmarks are 0
# allocs/op by construction, so any allocation leaking onto the tenant
# admit path fails the gate regardless of the ns/op threshold.
benchdiff-policy:
	@tmp=$$(mktemp); \
	$(GO) test -run '^$$' -bench 'BenchmarkPolicy' -benchmem -count=1 . > $$tmp || { cat $$tmp; rm -f $$tmp; exit 1; }; \
	$(GO) run ./tools/benchdiff -fail-over $(BENCHDIFF_FAIL_OVER) -threshold $(BENCHDIFF_THRESHOLD) BENCH_policy.txt $$tmp; \
	status=$$?; rm -f $$tmp; exit $$status

clean:
	rm -f BENCH_hotpath.json BENCH_hotpath.txt
