# Developer entry points. The repo is pure Go, standard library only;
# everything below is plain go-tool invocations.

GO ?= go

.PHONY: all build test race bench clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector — the hot path
# (pooled codec, coalesced writes, fast-path admit) is validated by
# dedicated concurrency stress tests that only bite with -race on.
race:
	$(GO) test -race ./...

# bench runs the hot-path benchmark suite with allocation tracking and
# saves the results. BENCH_hotpath.json holds the go-test JSON stream
# (one event per line; benchstat-compatible text is in BENCH_hotpath.txt).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkHotPath' -benchmem -count=1 . | tee BENCH_hotpath.txt
	$(GO) test -run '^$$' -bench 'BenchmarkHotPath' -benchmem -count=1 -json . > BENCH_hotpath.json

clean:
	rm -f BENCH_hotpath.json BENCH_hotpath.txt
