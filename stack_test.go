package convgpu_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"convgpu"
	"convgpu/internal/leak"
)

func newStack(t *testing.T, opts ...convgpu.Option) *convgpu.Stack {
	t.Helper()
	// Registered before the Close cleanup below, so it runs after it:
	// a closed stack must have wound down every goroutine it started.
	leak.Check(t)
	opts = append([]convgpu.Option{convgpu.WithBaseDir(t.TempDir())}, opts...)
	st, err := convgpu.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// runOne runs one small allocate/free container to completion.
func runOne(t *testing.T, run func(context.Context, convgpu.RunOptions) (*convgpu.Container, error), name string) {
	t.Helper()
	c, err := run(context.Background(), convgpu.RunOptions{
		Name:         name,
		Image:        convgpu.CUDAImage("app", ""),
		NvidiaMemory: 512 * convgpu.MiB,
		Program: func(p *convgpu.Proc) error {
			ptr, err := p.CUDA.Malloc(64 * convgpu.MiB)
			if err != nil {
				return err
			}
			return p.CUDA.Free(ptr)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
}

// eventKey reduces an event to the fields a behaviour comparison cares
// about (sequence numbers and timestamps legitimately differ).
type eventKey struct {
	Kind      string
	Container string
	Amount    convgpu.Size
}

// waitEvents polls until the scheduler's event log contains n events
// (the close signal arrives asynchronously after container exit).
func waitEvents(t *testing.T, events func() []convgpu.SchedulerEvent, n int) []eventKey {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		evs := events()
		if len(evs) >= n || time.Now().After(deadline) {
			out := make([]eventKey, len(evs))
			for i, e := range evs {
				out[i] = eventKey{Kind: e.Kind.String(), Container: string(e.Container), Amount: e.Amount}
			}
			return out
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestStackLifecycleAndIntrospection(t *testing.T) {
	st := newStack(t, convgpu.WithAlgorithm(convgpu.BestFit), convgpu.WithCapacity(2*convgpu.GiB))
	if st.Algorithm() != convgpu.BestFit {
		t.Fatalf("algorithm = %q", st.Algorithm())
	}
	runOne(t, st.Run, "c1")

	// Stats over the live control socket.
	data, err := st.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Algorithm string `json:"algorithm"`
		Metrics   []struct {
			Name   string            `json:"name"`
			Labels map[string]string `json:"labels"`
			Value  int64             `json:"value"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(data, &stats); err != nil {
		t.Fatalf("stats not JSON: %v\n%s", err, data)
	}
	if stats.Algorithm != convgpu.BestFit {
		t.Fatalf("stats algorithm = %q", stats.Algorithm)
	}
	accepts := int64(-1)
	for _, m := range stats.Metrics {
		if m.Name == "convgpu_scheduler_events_total" && m.Labels["kind"] == "accept" {
			accepts = m.Value
		}
	}
	if accepts < 1 {
		t.Fatalf("accept counter = %d, want >= 1", accepts)
	}

	// Trace over the live control socket, filtered to the container.
	data, err = st.Trace(context.Background(), "c1")
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		Events []struct {
			Kind string `json:"kind"`
			CSeq uint64 `json:"cseq"`
		} `json:"events"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatal(err)
	}
	if len(trace.Events) == 0 || trace.Events[0].Kind != "register" || trace.Events[0].CSeq != 1 {
		t.Fatalf("trace = %+v", trace.Events)
	}

	// Dump includes pool identity.
	data, err = st.Dump(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Capacity int64 `json:"capacity"`
	}
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Capacity != int64(2*convgpu.GiB) {
		t.Fatalf("dump capacity = %d", dump.Capacity)
	}

	// The HTTP surface serves the same registry.
	srv := httptest.NewServer(st.MetricsHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `convgpu_scheduler_events_total{algorithm="bestfit",kind="accept"}`) {
		t.Fatalf("/metrics missing accept counter:\n%.2000s", body)
	}
	if !strings.Contains(string(body), "convgpu_ipc_rtt_seconds_count") {
		t.Fatalf("/metrics missing RTT histogram:\n%.2000s", body)
	}
}

func TestStackNotStarted(t *testing.T) {
	st, err := convgpu.New()
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Run(context.Background(), convgpu.RunOptions{}); !errors.Is(err, convgpu.ErrNotStarted) {
		t.Fatalf("Run before Start: %v", err)
	}
	if _, err := st.Stats(context.Background()); !errors.Is(err, convgpu.ErrNotStarted) {
		t.Fatalf("Stats before Start: %v", err)
	}
	if st.ControlSocket() != "" {
		t.Fatal("ControlSocket non-empty before Start")
	}
}

func TestStackCloseIdempotentAndRestartRefused(t *testing.T) {
	st := newStack(t)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Start(context.Background()); err == nil {
		t.Fatal("Start after Close succeeded")
	}
}

func TestOptionValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  convgpu.Option
	}{
		{"empty basedir", convgpu.WithBaseDir("")},
		{"zero capacity", convgpu.WithCapacity(0)},
		{"empty algorithm", convgpu.WithAlgorithm("")},
		{"negative lease", convgpu.WithLease(-time.Second)},
		{"negative timeout", convgpu.WithCallTimeout(-1)},
		{"nil obs", convgpu.WithObservability(nil)},
	} {
		if _, err := convgpu.New(tc.opt); err == nil {
			t.Errorf("%s: New succeeded", tc.name)
		}
	}
	if _, err := convgpu.New(convgpu.WithAlgorithm("nope")); err == nil {
		t.Error("unknown algorithm: New succeeded")
	}
}

// TestDeprecatedShimEquivalence runs the same workload through the old
// NewSystem/Run surface and the new New/Start/Run surface and asserts
// the scheduler behaved identically: same event sequence, same final
// pool state.
func TestDeprecatedShimEquivalence(t *testing.T) {
	workload := func(run func(context.Context, convgpu.RunOptions) (*convgpu.Container, error)) {
		runOne(t, run, "w1")
		runOne(t, run, "w2")
	}

	sys, err := convgpu.NewSystem(convgpu.Config{
		BaseDir:   t.TempDir(),
		Capacity:  1 * convgpu.GiB,
		Algorithm: convgpu.BestFit,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	workload(func(ctx context.Context, o convgpu.RunOptions) (*convgpu.Container, error) {
		return sys.Run(o) // deprecated no-context entry point
	})

	st := newStack(t, convgpu.WithCapacity(1*convgpu.GiB), convgpu.WithAlgorithm(convgpu.BestFit))
	workload(st.Run)

	// Both stacks must have produced the same causal event sequence.
	want := waitEvents(t, sys.Events, 12)
	got := waitEvents(t, st.Events, len(want))
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("event sequences diverge:\nold: %v\nnew: %v", want, got)
	}
	if sys.PoolFree() != st.PoolFree() {
		t.Fatalf("pool free: old %v, new %v", sys.PoolFree(), st.PoolFree())
	}
}

func TestSimulateContextMatchesSimulate(t *testing.T) {
	trace := convgpu.GenerateTrace(8, 5*time.Second, 42)
	a, err := convgpu.Simulate(trace, convgpu.SimConfig{Algorithm: convgpu.BestFit})
	if err != nil {
		t.Fatal(err)
	}
	b, err := convgpu.SimulateContext(context.Background(), trace, convgpu.SimConfig{Algorithm: convgpu.BestFit})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("SimulateContext diverged from Simulate on the same trace")
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := convgpu.SimulateContext(cancelled, trace, convgpu.SimConfig{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled simulate: %v", err)
	}
}

func TestSentinelErrors(t *testing.T) {
	st := newStack(t, convgpu.WithCapacity(1*convgpu.GiB))

	// Registration beyond capacity surfaces ErrOverCapacity across the
	// daemon socket via the response's machine-readable code.
	_, err := st.Run(context.Background(), convgpu.RunOptions{
		Image:        convgpu.CUDAImage("big", ""),
		NvidiaMemory: 8 * convgpu.GiB,
		Program:      func(p *convgpu.Proc) error { return nil },
	})
	if !errors.Is(err, convgpu.ErrOverCapacity) {
		t.Fatalf("over-capacity run: %v", err)
	}

	// An in-container allocation beyond the limit is rejected; the
	// wrapper surfaces ErrRejected.
	var mallocErr error
	c, err := st.Run(context.Background(), convgpu.RunOptions{
		Name:         "rej",
		Image:        convgpu.CUDAImage("app", ""),
		NvidiaMemory: 256 * convgpu.MiB,
		Program: func(p *convgpu.Proc) error {
			_, mallocErr = p.CUDA.Malloc(512 * convgpu.MiB)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(mallocErr, convgpu.ErrRejected) {
		t.Fatalf("over-limit malloc: %v", mallocErr)
	}
}
