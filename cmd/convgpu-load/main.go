// Command convgpu-load runs the open-loop load harness: an arrival
// process (Poisson, bursty MMPP-2 or diurnal ramp) over the workload
// library (deadline-carrying inference bursts, memcpy-heavy streaming,
// long-lived training with periodic reallocation, the paper's batch
// jobs) replayed against the scheduler on two paths — in-process under
// a virtual clock (deterministic, byte-identical by seed) and through
// the full daemon+IPC wire stack under a compressed real clock (tails
// include genuine socket costs). It writes the BENCH_load.{json,txt}
// artifacts with p50/p99/p999 admission-latency and suspend-wait tails,
// SLO attainment, and goodput-vs-offered-load curves per
// (wake policy × placement policy).
//
// Usage:
//
//	convgpu-load                                  # full bench (all 7 wake policies, both paths)
//	convgpu-load -quick                           # small fast variant
//	convgpu-load -path inprocess -out BENCH_load  # deterministic path only
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"convgpu/internal/load"
	"convgpu/internal/policy"
)

func main() {
	var (
		out        = flag.String("out", "BENCH_load", "artifact basename (writes <out>.json and <out>.txt)")
		path       = flag.String("path", "both", "which paths to run: inprocess|wire|both")
		containers = flag.Int("containers", 3200, "arrivals per run (the 100x-scale open-loop cohort)")
		seed       = flag.Int64("seed", 20260808, "scenario seed (same seed => byte-identical in-process report)")
		arrival    = flag.String("arrival", string(load.ArrivalBursty), "arrival process: uniform|poisson|bursty|diurnal")
		spacing    = flag.Duration("spacing", 2*time.Second, "mean inter-arrival time at load x1")
		wakes      = flag.String("wakes", strings.Join(policy.WakeNames(), ","), "comma-separated wake policies")
		place      = flag.String("place", "leastloaded", "placement policy paired with every wake policy")
		placeSweep = flag.Bool("place-sweep", true, "additionally sweep all placement policies under the bestfit wake policy")
		devices    = flag.Int("devices", 4, "GPU count")
		loads      = flag.String("loads", "0.5,1,2,4", "offered-load multipliers for the in-process curves")
		wireLoads  = flag.String("wire-loads", "1", "offered-load multipliers for the wire path")
		timeScale  = flag.Float64("timescale", 0.002, "wire-path duration compression factor")
		quick      = flag.Bool("quick", false, "small fast variant (CI smoke): fewer containers, fewer cells")
		timeout    = flag.Duration("timeout", 30*time.Minute, "overall deadline")
	)
	flag.Parse()

	scn := load.Scenario{
		Name:        "bench",
		Containers:  *containers,
		Seed:        *seed,
		Arrival:     load.ArrivalKind(*arrival),
		MeanSpacing: *spacing,
	}
	loadsX := parseLoads(*loads)
	wireX := parseLoads(*wireLoads)
	wakeList := splitList(*wakes)
	if *quick {
		scn.Name = "quick"
		scn.Containers = 160
		loadsX = []float64{1, 4}
		wireX = []float64{1}
		*timeScale = 0.02
	}

	var pairs []load.PolicyPair
	for _, w := range wakeList {
		pairs = append(pairs, load.PolicyPair{Wake: w, Place: *place})
	}
	if *placeSweep && !*quick {
		for _, p := range policy.PlaceNames() {
			if p != *place {
				pairs = append(pairs, load.PolicyPair{Wake: "bestfit", Place: p})
			}
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	ecfg := load.Config{Devices: *devices}
	var sections []load.Section
	if *path == "inprocess" || *path == "both" {
		start := time.Now()
		sec, err := load.RunInProcessSweep(ctx, scn, pairs, loadsX, ecfg)
		if err != nil {
			log.Fatalf("convgpu-load: in-process sweep: %v", err)
		}
		sections = append(sections, sec)
		fmt.Fprintf(os.Stderr, "convgpu-load: in-process sweep: %d cells in %v\n", len(sec.Runs), time.Since(start).Round(time.Millisecond))
	}
	if *path == "wire" || *path == "both" {
		start := time.Now()
		// The wire path carries real socket costs per request; compress
		// durations so the scenario replays in seconds. Only the wake
		// policies run here: the placement sweep adds nothing the
		// in-process section does not already cover, and wall clock is
		// the scarce resource on this path.
		var wirePairs []load.PolicyPair
		for _, w := range wakeList {
			wirePairs = append(wirePairs, load.PolicyPair{Wake: w, Place: *place})
		}
		sec, err := load.RunWireSweep(ctx, scn, wirePairs, wireX,
			load.WireConfig{Config: ecfg, TimeScale: *timeScale})
		if err != nil {
			log.Fatalf("convgpu-load: wire sweep: %v", err)
		}
		sections = append(sections, sec)
		fmt.Fprintf(os.Stderr, "convgpu-load: wire sweep: %d cells in %v\n", len(sec.Runs), time.Since(start).Round(time.Millisecond))
	}
	if len(sections) == 0 {
		log.Fatalf("convgpu-load: -path %q selected nothing (want inprocess|wire|both)", *path)
	}

	rep := load.NewReport(scn, *devices, sections...)
	js, err := rep.JSON()
	if err != nil {
		log.Fatalf("convgpu-load: %v", err)
	}
	if err := os.WriteFile(*out+".json", js, 0o644); err != nil {
		log.Fatalf("convgpu-load: %v", err)
	}
	txt, err := os.Create(*out + ".txt")
	if err != nil {
		log.Fatalf("convgpu-load: %v", err)
	}
	if err := rep.Render(txt); err != nil {
		log.Fatalf("convgpu-load: %v", err)
	}
	if err := txt.Close(); err != nil {
		log.Fatalf("convgpu-load: %v", err)
	}
	if err := rep.Render(os.Stdout); err != nil {
		log.Fatalf("convgpu-load: %v", err)
	}
	fmt.Fprintf(os.Stderr, "convgpu-load: wrote %s.json and %s.txt\n", *out, *out)
}

func parseLoads(s string) []float64 {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		var x float64
		if _, err := fmt.Sscanf(f, "%g", &x); err != nil || x <= 0 {
			log.Fatalf("convgpu-load: bad load multiplier %q", f)
		}
		out = append(out, x)
	}
	return out
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
