// Command convgpu-bench regenerates the paper's evaluation artifacts:
// every figure and table of Section IV, the design-choice ablations, and
// the future-work extensions. Each experiment prints the measured data
// in the shape of the paper's artifact plus shape-check notes comparing
// against the paper's claims.
//
// Usage:
//
//	convgpu-bench -list
//	convgpu-bench -exp fig7
//	convgpu-bench -exp all -quick
//	convgpu-bench -exp fig8 -csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"convgpu/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id (see -list), or 'all'")
		quick = flag.Bool("quick", false, "shrink repetitions and sweeps for a fast run")
		csv   = flag.Bool("csv", false, "emit tables as CSV instead of rendered text")
		list  = flag.Bool("list", false, "list experiment ids")
	)
	flag.Parse()
	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %-20s %s\n", id, experiments.Describe(id))
		}
		fmt.Printf("  %-20s %s\n", "all", "run every experiment")
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}
	rep, err := experiments.Run(*exp, experiments.Options{Quick: *quick})
	if err != nil {
		log.Fatalf("convgpu-bench: %v", err)
	}
	if *csv {
		if err := rep.CSV(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := rep.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
