// Command convgpu-sim replays the paper's multi-container scheduling
// experiments (Section IV-C) in virtual time: containers of random
// Table III types arriving every five seconds, scheduled by one of the
// four algorithms on a simulated 5 GiB GPU. A full Fig. 7/8 sweep that
// took the paper's testbed hours replays in well under a second.
//
// Usage:
//
//	convgpu-sim                               # the paper's full sweep (Tables IV+V)
//	convgpu-sim -n 38 -algorithm bestfit      # one run, per-container detail
//	convgpu-sim -reps 10 -max 24 -csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/core"
	"convgpu/internal/metrics"
	"convgpu/internal/sim"
	"convgpu/internal/workload"
)

func main() {
	var (
		n          = flag.Int("n", 0, "run a single trace with n containers (0 = full sweep)")
		algorithm  = flag.String("algorithm", core.AlgFIFO, "algorithm for -n runs")
		algorithms = flag.String("algorithms", strings.Join(core.AlgorithmNames(), ","), "comma-separated algorithms for the sweep")
		reps       = flag.Int("reps", 6, "repetitions per sweep cell")
		minN       = flag.Int("min", 4, "sweep minimum container count")
		maxN       = flag.Int("max", 38, "sweep maximum container count")
		step       = flag.Int("step", 2, "sweep container count step")
		seed       = flag.Int64("seed", 20170712, "base trace seed")
		capacity   = flag.String("capacity", "5GiB", "GPU capacity")
		spacing    = flag.Duration("spacing", workload.DefaultSpacing, "container arrival spacing")
		persistent = flag.Bool("persistent-grants", false, "use the non-reclaiming grant semantics (ablation)")
		rescue     = flag.Bool("fault-tolerant", false, "enable the [10] rescue pass when the policy wedges")
		csv        = flag.Bool("csv", false, "emit tables as CSV")
		util       = flag.Bool("utilization", false, "also print measured memory utilization per cell")
	)
	flag.Parse()
	cap, err := bytesize.Parse(*capacity)
	if err != nil {
		log.Fatalf("convgpu-sim: -capacity: %v", err)
	}
	cfg := sim.Config{Capacity: cap, PersistentGrants: *persistent, FaultTolerant: *rescue}

	if *n > 0 {
		trace := workload.GenerateTrace(*n, *spacing, *seed)
		cfg.Algorithm = *algorithm
		cfg.AlgSeed = *seed
		res, err := sim.Run(trace, cfg)
		if err != nil {
			log.Fatalf("convgpu-sim: %v", err)
		}
		fmt.Printf("algorithm=%s containers=%d finish=%v avg_suspended=%v max_suspended=%v suspended=%d/%d stalled=%v\n",
			*algorithm, *n, res.FinishTime.Round(time.Millisecond),
			res.AvgSuspended.Round(time.Millisecond), res.MaxSuspended.Round(time.Millisecond),
			res.SuspendedCount, len(res.Containers), res.Stalled)
		for _, c := range res.Containers {
			fmt.Printf("  %-16s arrival=%-6v finished=%-8v suspended=%-8v completed=%v\n",
				c.ID, c.Arrival, c.Finished.Round(time.Millisecond), c.Suspended.Round(time.Millisecond), c.Completed)
		}
		return
	}

	s := sim.Sweep{
		Reps:     *reps,
		BaseSeed: *seed,
		Spacing:  *spacing,
		Config:   cfg,
	}
	for c := *minN; c <= *maxN; c += *step {
		s.Counts = append(s.Counts, c)
	}
	for _, a := range strings.Split(*algorithms, ",") {
		if a = strings.TrimSpace(a); a != "" {
			s.Algorithms = append(s.Algorithms, a)
		}
	}
	res, err := s.Run()
	if err != nil {
		log.Fatalf("convgpu-sim: %v", err)
	}
	tables := []*metrics.Table{res.FinishTable(), res.SuspendTable()}
	if *util {
		tables = append(tables, res.UtilizationTable())
	}
	for i, t := range tables {
		if i > 0 {
			fmt.Println()
		}
		if *csv {
			t.CSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
	}
}
