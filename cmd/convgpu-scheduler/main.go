// Command convgpu-scheduler runs the GPU memory scheduler as a host
// daemon — the standalone Go program of the paper's §III-D. It owns the
// control socket that the customized nvidia-docker (registration) and
// nvidia-docker-plugin (close signals) connect to, and one socket per
// registered container for the wrapper modules.
//
// Usage:
//
//	convgpu-scheduler -basedir /var/run/convgpu -capacity 5GiB -algorithm bestfit
//
// -algorithm and -placement resolve through the unified policy registry
// (internal/policy): the paper's four redistribution algorithms keep
// their historical names and short aliases, and the tenant-aware
// policies (fairshare, quota, priority; placement fragaware) are
// selected the same way. -alg is a deprecated alias for -algorithm.
//
// With -tenant NAME[:WEIGHT[:PRIORITY[:QUOTA[:GUARANTEE]]]] (repeatable)
// the daemon provisions named tenants: registrations carrying the
// tenant name on the wire bind to the configured attributes, which the
// tenant-aware policies consume (weights for fairshare, priorities for
// priority preemption, quota/guarantee for the quota policy and the
// admission clamps).
//
// With -devices N (N > 1) the daemon serves N GPUs from one control
// socket: -capacity is read per device and -placement picks the device
// placement policy for new containers (least-loaded by default).
//
// With -nodes M (M > 1) the daemon fronts an M-node cluster of -devices
// GPUs each: -strategy picks the node placement strategy and
// -node-health (a probe interval) starts the membership health loop,
// which declares unresponsive nodes down and fails their containers
// over to survivors. Nodes are inspected and drained / revived at
// runtime with cmd/convgpu-stats (nodes | drain | revive).
//
// With -wal-dir the daemon's admission state is durable: every
// session-changing event is appended to a write-ahead log (fsynced per
// -fsync) before it is acknowledged, and a restarted daemon recovers by
// loading the newest snapshot and replaying the log tail. Legacy
// session.json records found on the first WAL boot are imported
// one-time.
//
// The daemon prints the control socket path on startup and, with
// -status, a periodic snapshot of per-container grants and usage. With
// -http it serves the versioned admin API: GET /v1/metrics (Prometheus
// text), /v1/stats, /v1/trace (cursor-paged JSON), /v1/dump,
// /v1/sessions, /v1/nodes, /v1/wal and /v1/operations, plus the async
// mutating verbs POST /v1/nodes/{n}/drain|revive|failover and POST
// /v1/wal/compact|snapshot, which answer 202 with an operation to poll
// at /v1/operations/{id}. Unversioned /metrics, /stats and /trace
// redirect (301) to their /v1 homes; /debug/vars and /debug/pprof are
// served in place. The same stats/trace/dump documents are always
// available over the control socket itself (see cmd/convgpu-stats).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"convgpu/internal/admin"
	"convgpu/internal/bytesize"
	"convgpu/internal/cluster"
	"convgpu/internal/core"
	"convgpu/internal/daemon"
	"convgpu/internal/multigpu"
	"convgpu/internal/obs"
	"convgpu/internal/policy"
	"convgpu/internal/wal"
)

// tenantFlag collects repeatable -tenant definitions:
// NAME[:WEIGHT[:PRIORITY[:QUOTA[:GUARANTEE]]]], trailing parts optional.
type tenantFlag struct{ defs []core.Tenant }

func (f *tenantFlag) String() string {
	parts := make([]string, len(f.defs))
	for i, t := range f.defs {
		parts[i] = t.Name
	}
	return strings.Join(parts, ",")
}

func (f *tenantFlag) Set(s string) error {
	parts := strings.Split(s, ":")
	if parts[0] == "" {
		return fmt.Errorf("tenant definition %q has no name", s)
	}
	if len(parts) > 5 {
		return fmt.Errorf("tenant definition %q has %d fields, want at most name:weight:priority:quota:guarantee", s, len(parts))
	}
	t := core.Tenant{Name: parts[0]}
	var err error
	if len(parts) > 1 && parts[1] != "" {
		if t.Weight, err = strconv.Atoi(parts[1]); err != nil {
			return fmt.Errorf("tenant %s: weight %q: %v", t.Name, parts[1], err)
		}
	}
	if len(parts) > 2 && parts[2] != "" {
		if t.Priority, err = strconv.Atoi(parts[2]); err != nil {
			return fmt.Errorf("tenant %s: priority %q: %v", t.Name, parts[2], err)
		}
	}
	if len(parts) > 3 && parts[3] != "" {
		if t.Quota, err = bytesize.Parse(parts[3]); err != nil {
			return fmt.Errorf("tenant %s: quota %q: %v", t.Name, parts[3], err)
		}
	}
	if len(parts) > 4 && parts[4] != "" {
		if t.Guarantee, err = bytesize.Parse(parts[4]); err != nil {
			return fmt.Errorf("tenant %s: guarantee %q: %v", t.Name, parts[4], err)
		}
	}
	f.defs = append(f.defs, t)
	return nil
}

func main() {
	var tenants tenantFlag
	var (
		baseDir   = flag.String("basedir", "", "directory for the control socket and per-container directories (required)")
		capacity  = flag.String("capacity", "5GiB", "schedulable GPU memory")
		algorithm = flag.String("algorithm", core.AlgFIFO, "wake-order policy: "+strings.Join(policy.WakeNames(), "|"))
		algAlias  = flag.String("alg", "", "deprecated alias for -algorithm")
		devices   = flag.Int("devices", 1, "number of GPUs to serve; -capacity is per device when > 1")
		placement = flag.String("placement", multigpu.PolicyLeastLoaded, "device placement policy: "+strings.Join(policy.PlaceNames(), "|")+" (multi-device only)")
		nodes     = flag.Int("nodes", 1, "number of cluster nodes, each with -devices GPUs; > 1 enables the cluster tier")
		strategy  = flag.String("strategy", cluster.StrategySpread, "node placement strategy: spread|binpack|random (cluster only)")
		health    = flag.Duration("node-health", 0, "probe nodes at this interval, failing over unresponsive ones (0 = off; cluster only)")
		seed      = flag.Int64("seed", 1, "seed for the random algorithm")
		status    = flag.Duration("status", 0, "print a scheduler snapshot at this interval (0 = off)")
		rescue    = flag.Bool("fault-tolerant", false, "enable the rescue pass of the authors' prior fault-tolerance study")
		lease     = flag.Duration("lease", 0, "reap containers silent for this long (0 = no leasing)")
		httpAddr  = flag.String("http", "", "serve the versioned /v1 admin API (plus legacy /metrics, /stats, /trace redirects and /debug/*) on this address (e.g. :9090; empty = off)")
		traceCap  = flag.Int("trace-capacity", 0, "event-trace ring capacity (0 = default, negative = disabled)")
		walDir    = flag.String("wal-dir", "", "write-ahead log directory; when set, admissions are durable and restart recovery replays the log (empty = session.json files)")
		fsync     = flag.String("fsync", "always", "WAL fsync policy: always | none | a duration like 50ms (group commit)")
	)
	flag.Var(&tenants, "tenant", "provision a named tenant: NAME[:WEIGHT[:PRIORITY[:QUOTA[:GUARANTEE]]]] (repeatable)")
	flag.Parse()
	if *baseDir == "" {
		fmt.Fprintln(os.Stderr, "convgpu-scheduler: -basedir is required")
		flag.Usage()
		os.Exit(2)
	}
	if *algAlias != "" {
		log.Printf("convgpu-scheduler: -alg is deprecated, use -algorithm")
		*algorithm = *algAlias
	}
	cap, err := bytesize.Parse(*capacity)
	if err != nil {
		log.Fatalf("convgpu-scheduler: -capacity: %v", err)
	}
	// Resolve both policy names through the unified registry up front:
	// legacy spellings and aliases map to their canonical names, unknown
	// ones fail with the full policy list before anything is built.
	algName, ok := policy.ResolveWake(*algorithm)
	if !ok {
		log.Fatalf("convgpu-scheduler: -algorithm: unknown policy %q (have %s)",
			*algorithm, strings.Join(policy.WakeNames(), "|"))
	}
	placeName, ok := policy.ResolvePlace(*placement)
	if !ok {
		log.Fatalf("convgpu-scheduler: -placement: unknown policy %q (have %s)",
			*placement, strings.Join(policy.PlaceNames(), "|"))
	}
	wakeFactory := func(seed int64) (core.Algorithm, error) {
		return policy.NewWake(algName, policy.Config{Seed: seed})
	}
	var st core.Scheduler
	var clus *cluster.Cluster
	if *nodes > 1 {
		strat, err := cluster.NewStrategy(*strategy, *seed)
		if err != nil {
			log.Fatalf("convgpu-scheduler: -strategy: %v", err)
		}
		clus, err = cluster.New(cluster.Config{
			Nodes:            *nodes,
			GPUsPerNode:      *devices,
			CapacityPerGPU:   cap,
			Algorithm:        algName,
			AlgorithmFactory: wakeFactory,
			AlgSeed:          *seed,
			DevicePolicyFactory: func() (multigpu.Policy, error) {
				return policy.NewPlace(placeName, policy.Config{Seed: *seed})
			},
			Strategy: strat,
		})
		if err != nil {
			log.Fatalf("convgpu-scheduler: %v", err)
		}
		st = clus
	} else if *devices > 1 {
		pol, err := policy.NewPlace(placeName, policy.Config{Seed: *seed})
		if err != nil {
			log.Fatalf("convgpu-scheduler: -placement: %v", err)
		}
		mg, err := multigpu.New(multigpu.Config{
			Devices:           *devices,
			CapacityPerDevice: cap,
			Algorithm:         algName,
			AlgorithmFactory:  wakeFactory,
			AlgSeed:           *seed,
			Policy:            pol,
		})
		if err != nil {
			log.Fatalf("convgpu-scheduler: %v", err)
		}
		st = mg
	} else {
		alg, err := policy.NewWake(algName, policy.Config{Seed: *seed})
		if err != nil {
			log.Fatalf("convgpu-scheduler: %v", err)
		}
		single, err := core.New(core.Config{Capacity: cap, Algorithm: alg, FaultTolerant: *rescue})
		if err != nil {
			log.Fatalf("convgpu-scheduler: %v", err)
		}
		st = single
	}
	bundle := obs.New(obs.Config{Algorithm: algName, TraceCapacity: *traceCap})
	var walLog *wal.Log
	if *walDir != "" {
		mode, interval, err := wal.ParseSyncPolicy(*fsync)
		if err != nil {
			log.Fatalf("convgpu-scheduler: -fsync: %v", err)
		}
		walLog, err = wal.Open(wal.Options{Dir: *walDir, Sync: mode, SyncInterval: interval, Logf: log.Printf})
		if err != nil {
			log.Fatalf("convgpu-scheduler: -wal-dir: %v", err)
		}
		defer walLog.Close()
	}
	d, err := daemon.Start(daemon.Config{BaseDir: *baseDir, Core: st, Lease: *lease, Obs: bundle, Logf: log.Printf, WAL: walLog, Tenants: tenants.defs})
	if err != nil {
		log.Fatalf("convgpu-scheduler: %v", err)
	}
	defer d.Close()
	if clus != nil && *health > 0 {
		// A nil probe treats every node as healthy; real deployments hook
		// a liveness RPC here. The loop still auto-revives down nodes and
		// drives the obs gauges, and drain/revive stay manual verbs.
		if err := clus.StartHealth(cluster.HealthConfig{Interval: *health}); err != nil {
			log.Fatalf("convgpu-scheduler: -node-health: %v", err)
		}
		defer clus.StopHealth()
	}
	if clus != nil {
		log.Printf("GPU memory scheduler up: nodes=%d gpus/node=%d capacity=%v/GPU algorithm=%s strategy=%s control=%s",
			*nodes, *devices, cap, algName, clus.StrategyName(), d.ControlSocket())
	} else if *devices > 1 {
		log.Printf("GPU memory scheduler up: devices=%d capacity=%v/device algorithm=%s placement=%s control=%s",
			*devices, cap, algName, placeName, d.ControlSocket())
	} else {
		log.Printf("GPU memory scheduler up: capacity=%v algorithm=%s control=%s",
			cap, algName, d.ControlSocket())
	}

	if *httpAddr != "" {
		handler, err := admin.New(admin.Config{Daemon: d})
		if err != nil {
			log.Fatalf("convgpu-scheduler: -http: %v", err)
		}
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			log.Fatalf("convgpu-scheduler: -http: %v", err)
		}
		srv := &http.Server{Handler: handler}
		go func() {
			if err := srv.Serve(ln); err != http.ErrServerClosed {
				log.Printf("convgpu-scheduler: http: %v", err)
			}
		}()
		defer srv.Close()
		log.Printf("admin API up: http://%s/v1/metrics", ln.Addr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	var tick <-chan time.Time
	if *status > 0 {
		t := time.NewTicker(*status)
		defer t.Stop()
		tick = t.C
	}
	var lastEvent uint64
	for {
		select {
		case <-stop:
			log.Printf("shutting down")
			return
		case <-tick:
			snap := st.Snapshot()
			log.Printf("pool free: %v, containers: %d", st.PoolFree(), len(snap))
			if clus != nil {
				for _, n := range clus.NodeStatuses() {
					log.Printf("  node %d (%s): state=%s free=%v containers=%d failovers=%d",
						n.Index, n.Name, n.State, n.Free, n.Containers, n.Failovers)
				}
			}
			if *devices > 1 {
				for _, dev := range st.Devices() {
					log.Printf("  device %d: capacity=%v free=%v containers=%d",
						dev.Index, dev.Capacity, dev.PoolFree, dev.Containers)
				}
			}
			for _, t := range st.Tenants() {
				log.Printf("  tenant %-12s weight=%d priority=%d quota=%v guarantee=%v containers=%d grant=%v used=%v pending=%d",
					t.Name, t.Weight, t.Priority, t.Quota, t.Guarantee, t.Containers, t.Grant, t.Used, t.Pending)
			}
			for _, c := range snap {
				state := "running"
				if c.Suspended {
					state = fmt.Sprintf("suspended (%d pending)", c.Pending)
				}
				dev := ""
				if *devices > 1 {
					if idx, err := st.Placement(c.ID); err == nil {
						dev = fmt.Sprintf(" device=%d", idx)
					}
				}
				log.Printf("  %-20s limit=%-8v grant=%-8v used=%-8v %s%s",
					c.ID, c.Limit, c.Grant, c.Used, state, dev)
			}
			// The event tail is only wired for the single-device core —
			// EventsSince is a concrete *core.State affordance; a multi
			// device backend reports the per-device summary above instead.
			if single, ok := st.(*core.State); ok {
				for _, e := range single.EventsSince(lastEvent) {
					log.Printf("  event %s", e)
					lastEvent = e.Seq
				}
			}
		}
	}
}
