// Command convgpu-stats queries a running scheduler daemon's
// introspection surface over its control socket: the same stats, trace
// and dump documents the -http endpoint serves, but with no open port —
// only access to the socket path.
//
// Usage:
//
//	convgpu-stats -socket /var/run/convgpu/convgpu.sock stats
//	convgpu-stats -socket /var/run/convgpu/convgpu.sock trace [container]
//	convgpu-stats -socket /var/run/convgpu/convgpu.sock dump
//	convgpu-stats -socket /var/run/convgpu/convgpu.sock devices
//	convgpu-stats -socket /var/run/convgpu/convgpu.sock sessions [after]
//	convgpu-stats -socket /var/run/convgpu/convgpu.sock ops [id]
//	convgpu-stats -socket /var/run/convgpu/convgpu.sock tenants
//	convgpu-stats -socket /var/run/convgpu/convgpu.sock nodes
//	convgpu-stats -socket /var/run/convgpu/convgpu.sock drain 0
//	convgpu-stats -socket /var/run/convgpu/convgpu.sock revive 0
//	convgpu-stats load [BENCH_load.json]
//
// The trace query follows the daemon's page cursor until the ring is
// exhausted, so a trace larger than one IPC frame is printed whole.
// The sessions query pages the registered-session listing (pass the
// last container ID printed to continue); ops lists the admin plane's
// retained operations, or polls one by ID.
//
// The tenants query renders the per-tenant usage rollup — one row per
// named tenant with its configured weight, priority, quota and
// guarantee next to its live container count, granted and used memory —
// on a daemon whose containers registered under tenant identities.
//
// The devices query renders the dump's per-device breakdown as a table
// (one row per GPU plus each container's device assignment) instead of
// raw JSON. The nodes query renders the cluster membership view — one
// row per node with its state, free memory and failover count — and
// drain / revive are the admin verbs of that view: drain makes a node
// refuse new containers while existing ones complete, revive returns a
// drained or down node to service. All three require the daemon to run
// the cluster tier (convgpu-scheduler -nodes).
//
// The load query is local, not a daemon round trip: it reads the
// BENCH_load.json artifact `make bench-load` wrote (default name, or an
// explicit path) and renders its latency tails, SLO attainment and
// goodput-vs-offered-load curves as tables. No -socket required.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/ipc"
	"convgpu/internal/load"
	"convgpu/internal/protocol"
)

func main() {
	var (
		socket  = flag.String("socket", "", "scheduler control socket path (required)")
		timeout = flag.Duration("timeout", 5*time.Second, "round-trip deadline")
		limit   = flag.Int("limit", 0, "max trace events to return (0 = server default)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: convgpu-stats -socket PATH {stats | trace [container] | dump | devices | sessions [after] | ops [id] | tenants | nodes | drain NODE | revive NODE}\n"+
				"       convgpu-stats load [BENCH_load.json]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() >= 1 && flag.Arg(0) == "load" {
		if err := printLoad(flag.Arg(1)); err != nil {
			fmt.Fprintf(os.Stderr, "convgpu-stats: load: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *socket == "" || flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}

	var typ protocol.Type
	var container string
	var node int
	var renderDevices, renderNodes, renderTenants bool
	switch flag.Arg(0) {
	case "stats":
		typ = protocol.TypeStats
	case "trace":
		typ = protocol.TypeTrace
		container = flag.Arg(1)
	case "dump":
		typ = protocol.TypeDump
	case "devices":
		typ = protocol.TypeDump
		renderDevices = true
	case "sessions":
		typ = protocol.TypeSessions
		container = flag.Arg(1) // page cursor: last container ID seen
	case "ops":
		typ = protocol.TypeOps
		container = flag.Arg(1) // operation ID; empty lists all
	case "tenants":
		typ = protocol.TypeTenants
		renderTenants = true
	case "nodes":
		typ = protocol.TypeNodes
		renderNodes = true
	case "drain", "revive":
		typ = protocol.TypeDrain
		if flag.Arg(0) == "revive" {
			typ = protocol.TypeRevive
		}
		n, err := strconv.Atoi(flag.Arg(1))
		if err != nil {
			fmt.Fprintf(os.Stderr, "convgpu-stats: %s needs a node index, got %q\n", flag.Arg(0), flag.Arg(1))
			os.Exit(2)
		}
		node = n
	default:
		fmt.Fprintf(os.Stderr, "convgpu-stats: unknown query %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}

	cli, err := ipc.Dial(*socket)
	if err != nil {
		fmt.Fprintf(os.Stderr, "convgpu-stats: %v\n", err)
		os.Exit(1)
	}
	defer cli.Close()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if typ == protocol.TypeTrace {
		if err := dumpTrace(ctx, cli, container, *limit); err != nil {
			fmt.Fprintf(os.Stderr, "convgpu-stats: trace: %v\n", err)
			os.Exit(1)
		}
		return
	}
	resp, err := cli.Call(ctx, &protocol.Message{
		Type:      typ,
		Container: container,
		Device:    node,
		Size:      int64(*limit),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "convgpu-stats: %s: %v\n", typ, err)
		os.Exit(1)
	}
	if !resp.OK {
		fmt.Fprintf(os.Stderr, "convgpu-stats: %s: %s\n", typ, resp.Error)
		os.Exit(1)
	}
	switch typ {
	case protocol.TypeDrain, protocol.TypeRevive:
		fmt.Printf("node %d: %s acknowledged\n", node, flag.Arg(0))
		return
	}
	if renderDevices {
		if err := printDevices([]byte(resp.Data)); err != nil {
			fmt.Fprintf(os.Stderr, "convgpu-stats: devices: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if renderNodes {
		if err := printNodes([]byte(resp.Data)); err != nil {
			fmt.Fprintf(os.Stderr, "convgpu-stats: nodes: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if renderTenants {
		if err := printTenants([]byte(resp.Data)); err != nil {
			fmt.Fprintf(os.Stderr, "convgpu-stats: tenants: %v\n", err)
			os.Exit(1)
		}
		return
	}
	var pretty json.RawMessage = []byte(resp.Data)
	out, err := json.MarshalIndent(pretty, "", "  ")
	if err != nil {
		// Not JSON after all: print the payload as-is.
		fmt.Println(resp.Data)
		return
	}
	os.Stdout.Write(append(out, '\n'))
}

// printLoad renders the load harness artifact's tails and curves as
// tables, reusing the report's own metrics.Table rendering.
func printLoad(path string) error {
	if path == "" {
		path = "BENCH_load.json"
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	rep, err := load.ParseReport(b)
	if err != nil {
		return err
	}
	return rep.Render(os.Stdout)
}

// devicesDump mirrors the daemon's dump payload fields the devices
// table needs; unknown fields are ignored.
type devicesDump struct {
	Algorithm string `json:"algorithm"`
	Devices   []struct {
		Index      int   `json:"index"`
		Capacity   int64 `json:"capacity"`
		PoolFree   int64 `json:"pool_free"`
		Containers int   `json:"containers"`
	} `json:"devices"`
	Containers []struct {
		ID        string `json:"id"`
		Device    int    `json:"device"`
		Limit     int64  `json:"limit"`
		Grant     int64  `json:"grant"`
		Used      int64  `json:"used"`
		Suspended bool   `json:"suspended"`
	} `json:"containers"`
}

// nodeStatus mirrors the daemon's nodes payload (core.NodeStatus).
type nodeStatus struct {
	Index      int    `json:"index"`
	Name       string `json:"name"`
	State      string `json:"state"`
	Containers int    `json:"containers"`
	Capacity   int64  `json:"capacity"`
	Free       int64  `json:"free"`
	Failovers  uint64 `json:"failovers"`
}

// printNodes renders the cluster membership view as a table.
func printNodes(data []byte) error {
	var nodes []nodeStatus
	if err := json.Unmarshal(data, &nodes); err != nil {
		return err
	}
	fmt.Printf("%-6s %-12s %-10s %-12s %-12s %-12s %s\n",
		"NODE", "NAME", "STATE", "CAPACITY", "FREE", "CONTAINERS", "FAILOVERS")
	for _, n := range nodes {
		fmt.Printf("%-6d %-12s %-10s %-12v %-12v %-12d %d\n",
			n.Index, n.Name, n.State, bytesize.Size(n.Capacity), bytesize.Size(n.Free), n.Containers, n.Failovers)
	}
	return nil
}

// tenantUsage mirrors the daemon's tenants payload (core.TenantUsage).
type tenantUsage struct {
	Name       string `json:"name"`
	Weight     int    `json:"weight"`
	Priority   int    `json:"priority"`
	Quota      int64  `json:"quota"`
	Guarantee  int64  `json:"guarantee"`
	Containers int    `json:"containers"`
	Suspended  int    `json:"suspended"`
	Grant      int64  `json:"grant"`
	Used       int64  `json:"used"`
	Pending    int    `json:"pending"`
}

// printTenants renders the per-tenant usage rollup as a table. Weight 0
// reads as the fair-share default (1); quota/guarantee 0 mean none.
func printTenants(data []byte) error {
	var tenants []tenantUsage
	if err := json.Unmarshal(data, &tenants); err != nil {
		return err
	}
	if len(tenants) == 0 {
		fmt.Println("no named tenants registered")
		return nil
	}
	fmt.Printf("%-16s %-7s %-5s %-10s %-10s %-11s %-10s %-10s %-10s %s\n",
		"TENANT", "WEIGHT", "PRIO", "QUOTA", "GUARANTEE", "CONTAINERS", "SUSPENDED", "GRANT", "USED", "PENDING")
	for _, t := range tenants {
		weight := t.Weight
		if weight <= 0 {
			weight = 1
		}
		quota, guarantee := "-", "-"
		if t.Quota > 0 {
			quota = bytesize.Size(t.Quota).String()
		}
		if t.Guarantee > 0 {
			guarantee = bytesize.Size(t.Guarantee).String()
		}
		fmt.Printf("%-16s %-7d %-5d %-10s %-10s %-11d %-10d %-10v %-10v %d\n",
			t.Name, weight, t.Priority, quota, guarantee,
			t.Containers, t.Suspended, bytesize.Size(t.Grant), bytesize.Size(t.Used), t.Pending)
	}
	return nil
}

// printDevices renders the dump's per-device breakdown as a table.
func printDevices(data []byte) error {
	var d devicesDump
	if err := json.Unmarshal(data, &d); err != nil {
		return err
	}
	fmt.Printf("algorithm: %s, devices: %d\n", d.Algorithm, len(d.Devices))
	fmt.Printf("%-8s %-12s %-12s %s\n", "DEVICE", "CAPACITY", "FREE", "CONTAINERS")
	for _, dev := range d.Devices {
		fmt.Printf("%-8d %-12v %-12v %d\n",
			dev.Index, bytesize.Size(dev.Capacity), bytesize.Size(dev.PoolFree), dev.Containers)
	}
	if len(d.Containers) == 0 {
		return nil
	}
	fmt.Printf("\n%-20s %-8s %-10s %-10s %-10s %s\n",
		"CONTAINER", "DEVICE", "LIMIT", "GRANT", "USED", "STATE")
	for _, c := range d.Containers {
		state := "running"
		if c.Suspended {
			state = "suspended"
		}
		fmt.Printf("%-20s %-8d %-10v %-10v %-10v %s\n",
			c.ID, c.Device, bytesize.Size(c.Limit), bytesize.Size(c.Grant), bytesize.Size(c.Used), state)
	}
	return nil
}

// traceDump mirrors obs.TraceDump closely enough to follow the page
// cursor; events stay raw so the printed JSON is the daemon's own.
type traceDump struct {
	Capacity  int               `json:"capacity"`
	Total     uint64            `json:"total_events"`
	Dropped   uint64            `json:"dropped_events"`
	Events    []json.RawMessage `json:"events"`
	NextAfter uint64            `json:"next_after"`
	More      bool              `json:"more"`
}

// dumpTrace retrieves the whole retained trace by following the
// daemon's page cursor — each response is bounded to one IPC frame, so
// a long trace arrives across several round trips — and prints the
// merged dump.
func dumpTrace(ctx context.Context, cli *ipc.Client, container string, limit int) error {
	var merged traceDump
	first := true
	after := uint64(0)
	for {
		resp, err := cli.Call(ctx, &protocol.Message{
			Type:      protocol.TypeTrace,
			Container: container,
			After:     after,
			Size:      int64(limit),
		})
		if err != nil {
			return err
		}
		if !resp.OK {
			return fmt.Errorf("%s", resp.Error)
		}
		var page traceDump
		if err := json.Unmarshal([]byte(resp.Data), &page); err != nil {
			return err
		}
		if first {
			merged = page
			first = false
		} else {
			merged.Capacity, merged.Total, merged.Dropped = page.Capacity, page.Total, page.Dropped
			merged.Events = append(merged.Events, page.Events...)
		}
		if !page.More || page.NextAfter == 0 {
			break
		}
		after = page.NextAfter
	}
	merged.NextAfter, merged.More = 0, false
	out, err := json.MarshalIndent(struct {
		Capacity int               `json:"capacity"`
		Total    uint64            `json:"total_events"`
		Dropped  uint64            `json:"dropped_events"`
		Events   []json.RawMessage `json:"events"`
	}{merged.Capacity, merged.Total, merged.Dropped, merged.Events}, "", "  ")
	if err != nil {
		return err
	}
	os.Stdout.Write(append(out, '\n'))
	return nil
}
