// Command convgpu-stats queries a running scheduler daemon's
// introspection surface over its control socket: the same stats, trace
// and dump documents the -http endpoint serves, but with no open port —
// only access to the socket path.
//
// Usage:
//
//	convgpu-stats -socket /var/run/convgpu/convgpu.sock stats
//	convgpu-stats -socket /var/run/convgpu/convgpu.sock trace [container]
//	convgpu-stats -socket /var/run/convgpu/convgpu.sock dump
//	convgpu-stats -socket /var/run/convgpu/convgpu.sock devices
//
// The devices query renders the dump's per-device breakdown as a table
// (one row per GPU plus each container's device assignment) instead of
// raw JSON.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/ipc"
	"convgpu/internal/protocol"
)

func main() {
	var (
		socket  = flag.String("socket", "", "scheduler control socket path (required)")
		timeout = flag.Duration("timeout", 5*time.Second, "round-trip deadline")
		limit   = flag.Int("limit", 0, "max trace events to return (0 = server default)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: convgpu-stats -socket PATH {stats | trace [container] | dump | devices}\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *socket == "" || flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}

	var typ protocol.Type
	var container string
	var renderDevices bool
	switch flag.Arg(0) {
	case "stats":
		typ = protocol.TypeStats
	case "trace":
		typ = protocol.TypeTrace
		container = flag.Arg(1)
	case "dump":
		typ = protocol.TypeDump
	case "devices":
		typ = protocol.TypeDump
		renderDevices = true
	default:
		fmt.Fprintf(os.Stderr, "convgpu-stats: unknown query %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}

	cli, err := ipc.Dial(*socket)
	if err != nil {
		fmt.Fprintf(os.Stderr, "convgpu-stats: %v\n", err)
		os.Exit(1)
	}
	defer cli.Close()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	resp, err := cli.Call(ctx, &protocol.Message{
		Type:      typ,
		Container: container,
		Size:      int64(*limit),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "convgpu-stats: %s: %v\n", typ, err)
		os.Exit(1)
	}
	if !resp.OK {
		fmt.Fprintf(os.Stderr, "convgpu-stats: %s: %s\n", typ, resp.Error)
		os.Exit(1)
	}
	if renderDevices {
		if err := printDevices([]byte(resp.Data)); err != nil {
			fmt.Fprintf(os.Stderr, "convgpu-stats: devices: %v\n", err)
			os.Exit(1)
		}
		return
	}
	var pretty json.RawMessage = []byte(resp.Data)
	out, err := json.MarshalIndent(pretty, "", "  ")
	if err != nil {
		// Not JSON after all: print the payload as-is.
		fmt.Println(resp.Data)
		return
	}
	os.Stdout.Write(append(out, '\n'))
}

// devicesDump mirrors the daemon's dump payload fields the devices
// table needs; unknown fields are ignored.
type devicesDump struct {
	Algorithm string `json:"algorithm"`
	Devices   []struct {
		Index      int   `json:"index"`
		Capacity   int64 `json:"capacity"`
		PoolFree   int64 `json:"pool_free"`
		Containers int   `json:"containers"`
	} `json:"devices"`
	Containers []struct {
		ID        string `json:"id"`
		Device    int    `json:"device"`
		Limit     int64  `json:"limit"`
		Grant     int64  `json:"grant"`
		Used      int64  `json:"used"`
		Suspended bool   `json:"suspended"`
	} `json:"containers"`
}

// printDevices renders the dump's per-device breakdown as a table.
func printDevices(data []byte) error {
	var d devicesDump
	if err := json.Unmarshal(data, &d); err != nil {
		return err
	}
	fmt.Printf("algorithm: %s, devices: %d\n", d.Algorithm, len(d.Devices))
	fmt.Printf("%-8s %-12s %-12s %s\n", "DEVICE", "CAPACITY", "FREE", "CONTAINERS")
	for _, dev := range d.Devices {
		fmt.Printf("%-8d %-12v %-12v %d\n",
			dev.Index, bytesize.Size(dev.Capacity), bytesize.Size(dev.PoolFree), dev.Containers)
	}
	if len(d.Containers) == 0 {
		return nil
	}
	fmt.Printf("\n%-20s %-8s %-10s %-10s %-10s %s\n",
		"CONTAINER", "DEVICE", "LIMIT", "GRANT", "USED", "STATE")
	for _, c := range d.Containers {
		state := "running"
		if c.Suspended {
			state = "suspended"
		}
		fmt.Printf("%-20s %-8d %-10v %-10v %-10v %s\n",
			c.ID, c.Device, bytesize.Size(c.Limit), bytesize.Size(c.Grant), bytesize.Size(c.Used), state)
	}
	return nil
}
