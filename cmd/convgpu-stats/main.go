// Command convgpu-stats queries a running scheduler daemon's
// introspection surface over its control socket: the same stats, trace
// and dump documents the -http endpoint serves, but with no open port —
// only access to the socket path.
//
// Usage:
//
//	convgpu-stats -socket /var/run/convgpu/convgpu.sock stats
//	convgpu-stats -socket /var/run/convgpu/convgpu.sock trace [container]
//	convgpu-stats -socket /var/run/convgpu/convgpu.sock dump
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"convgpu/internal/ipc"
	"convgpu/internal/protocol"
)

func main() {
	var (
		socket  = flag.String("socket", "", "scheduler control socket path (required)")
		timeout = flag.Duration("timeout", 5*time.Second, "round-trip deadline")
		limit   = flag.Int("limit", 0, "max trace events to return (0 = server default)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: convgpu-stats -socket PATH {stats | trace [container] | dump}\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *socket == "" || flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}

	var typ protocol.Type
	var container string
	switch flag.Arg(0) {
	case "stats":
		typ = protocol.TypeStats
	case "trace":
		typ = protocol.TypeTrace
		container = flag.Arg(1)
	case "dump":
		typ = protocol.TypeDump
	default:
		fmt.Fprintf(os.Stderr, "convgpu-stats: unknown query %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}

	cli, err := ipc.Dial(*socket)
	if err != nil {
		fmt.Fprintf(os.Stderr, "convgpu-stats: %v\n", err)
		os.Exit(1)
	}
	defer cli.Close()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	resp, err := cli.Call(ctx, &protocol.Message{
		Type:      typ,
		Container: container,
		Size:      int64(*limit),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "convgpu-stats: %s: %v\n", typ, err)
		os.Exit(1)
	}
	if !resp.OK {
		fmt.Fprintf(os.Stderr, "convgpu-stats: %s: %s\n", typ, resp.Error)
		os.Exit(1)
	}
	var pretty json.RawMessage = []byte(resp.Data)
	out, err := json.MarshalIndent(pretty, "", "  ")
	if err != nil {
		// Not JSON after all: print the payload as-is.
		fmt.Println(resp.Data)
		return
	}
	os.Stdout.Write(append(out, '\n'))
}
