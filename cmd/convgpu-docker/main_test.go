package main

import (
	"testing"

	"convgpu/internal/container"
	"convgpu/internal/gpu"
	"convgpu/internal/nvdocker"
)

func TestResolveImageSample(t *testing.T) {
	img, prog, err := resolveImage("cuda-sample:medium", 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if prog == nil {
		t.Fatal("no program")
	}
	if img.Label(nvdocker.VolumesNeededLabel) == "" {
		t.Fatal("sample image lacks the CUDA label")
	}
	if img.Label(nvdocker.MemoryLimitLabel) != "1GiB" {
		t.Fatalf("memory label = %q, want the medium type's 1GiB", img.Label(nvdocker.MemoryLimitLabel))
	}
	// The program actually runs against a raw device.
	eng, err := container.NewEngine(container.Config{Device: gpu.New(gpu.K20m())})
	if err != nil {
		t.Fatal(err)
	}
	c, err := eng.Create(container.Spec{Name: "t", Program: prog})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestResolveImageSampleUnknownType(t *testing.T) {
	if _, _, err := resolveImage("cuda-sample:mega", 1); err == nil {
		t.Fatal("unknown sample type accepted")
	}
}

func TestResolveImageMNIST(t *testing.T) {
	img, prog, err := resolveImage("cuda-mnist", 0.001)
	if err != nil || prog == nil {
		t.Fatalf("(%v, %v)", prog, err)
	}
	if img.Label(nvdocker.VolumesNeededLabel) == "" {
		t.Fatal("mnist image lacks the CUDA label")
	}
}

func TestResolveImageIdleAndPlain(t *testing.T) {
	img, prog, err := resolveImage("idle", 1)
	if err != nil || prog == nil {
		t.Fatal(err)
	}
	if img.Label(nvdocker.VolumesNeededLabel) == "" {
		t.Fatal("idle image should be a CUDA image")
	}
	img, prog, err = resolveImage("alpine:3.18", 1)
	if err != nil || prog == nil {
		t.Fatal(err)
	}
	if img.Label(nvdocker.VolumesNeededLabel) != "" {
		t.Fatal("plain image must not carry CUDA labels (passthrough)")
	}
}
