// Command convgpu-docker is the customized nvidia-docker of the paper's
// §III-B: a docker-style command line that wires CUDA containers to the
// GPU memory scheduler before creating them.
//
// Because the container runtime and GPU are simulations living in this
// process, the command embeds them; the *scheduler* can be either
// embedded (default) or an external convgpu-scheduler daemon reached
// through -scheduler, in which case several convgpu-docker processes
// genuinely share one GPU memory arbiter over UNIX sockets.
//
// Image names map to built-in workloads:
//
//	cuda-sample:<type>   the paper's sample program for a Table III type
//	                     (nano micro small medium large xlarge)
//	cuda-mnist           the Fig. 6 MNIST training workload
//	idle                 allocate nothing, exit immediately
//	<anything else>      a non-CUDA image: passes through without GPU wiring
//
// Examples:
//
//	convgpu-docker run --nvidia-memory=512MiB cuda-sample:small
//	convgpu-docker -scale 0.01 run cuda-sample:xlarge
//	convgpu-docker run cuda-mnist
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/container"
	"convgpu/internal/core"
	"convgpu/internal/daemon"
	"convgpu/internal/gpu"
	"convgpu/internal/ipc"
	"convgpu/internal/nvdocker"
	"convgpu/internal/plugin"
	"convgpu/internal/workload"
)

func main() {
	var (
		schedSock = flag.String("scheduler", "", "control socket of an external convgpu-scheduler (default: embed one)")
		capacity  = flag.String("capacity", "5GiB", "embedded scheduler's GPU capacity")
		algorithm = flag.String("algorithm", core.AlgFIFO, "embedded scheduler's algorithm")
		scale     = flag.Float64("scale", 0.05, "time compression for sample kernels (1.0 = the paper's 5-45 s)")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: convgpu-docker [flags] run|create [options] IMAGE")
		flag.Usage()
		os.Exit(2)
	}
	cmd, err := nvdocker.ParseArgs(flag.Args())
	if err != nil {
		log.Fatalf("convgpu-docker: %v", err)
	}
	if cmd.Passthrough {
		log.Printf("convgpu-docker: %q is passed through to docker unmodified (not interpreted here)", cmd.Verb)
		return
	}

	// Assemble the stack.
	dev := gpu.New(gpu.K20m())
	eng, err := container.NewEngine(container.Config{Device: dev})
	if err != nil {
		log.Fatal(err)
	}
	ctlPath := *schedSock
	if ctlPath == "" {
		cap, err := bytesize.Parse(*capacity)
		if err != nil {
			log.Fatalf("convgpu-docker: -capacity: %v", err)
		}
		alg, err := core.NewAlgorithm(*algorithm, 1)
		if err != nil {
			log.Fatal(err)
		}
		st, err := core.New(core.Config{Capacity: cap, Algorithm: alg})
		if err != nil {
			log.Fatal(err)
		}
		dir, err := os.MkdirTemp("", "convgpu-docker")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		d, err := daemon.Start(daemon.Config{BaseDir: dir, Core: st})
		if err != nil {
			log.Fatal(err)
		}
		defer d.Close()
		ctlPath = d.ControlSocket()
		log.Printf("embedded scheduler: capacity=%v algorithm=%s", cap, alg.Name())
	}
	ctl, err := ipc.Dial(ctlPath)
	if err != nil {
		log.Fatalf("convgpu-docker: scheduler unreachable: %v", err)
	}
	defer ctl.Close()
	nv := nvdocker.New(eng, ctl, plugin.New(ctl))

	opts := cmd.Options
	opts.Image, opts.Program, err = resolveImage(cmd.ImageName, *scale)
	if err != nil {
		log.Fatalf("convgpu-docker: %v", err)
	}

	start := time.Now()
	c, err := nv.Create(context.Background(), opts)
	if err != nil {
		log.Fatalf("convgpu-docker: create: %v", err)
	}
	log.Printf("created %s (image %s) in %v", c.ID(), cmd.ImageName, time.Since(start).Round(time.Microsecond))
	if cmd.Verb == "create" {
		return
	}
	if err := c.Start(); err != nil {
		log.Fatalf("convgpu-docker: start: %v", err)
	}
	err = c.Wait()
	log.Printf("%s exited after %v (err=%v)", c.ID(), time.Since(start).Round(time.Millisecond), err)
	if err != nil {
		os.Exit(1)
	}
}

// resolveImage maps an image name to a simulated image and workload.
func resolveImage(name string, scale float64) (container.Image, container.Program, error) {
	cudaLabels := map[string]string{
		nvdocker.VolumesNeededLabel: "nvidia_driver",
		nvdocker.CUDAVersionLabel:   plugin.HostCUDAVersion,
	}
	switch {
	case strings.HasPrefix(name, "cuda-sample:"):
		typeName := strings.TrimPrefix(name, "cuda-sample:")
		ct, err := workload.TypeByName(typeName)
		if err != nil {
			return container.Image{}, nil, err
		}
		labels := map[string]string{nvdocker.MemoryLimitLabel: ct.GPUMemory.String()}
		for k, v := range cudaLabels {
			labels[k] = v
		}
		return container.Image{Name: name, Labels: labels},
			workload.SampleProgram(ct, scale), nil
	case name == "cuda-mnist":
		return container.Image{Name: name, Labels: cudaLabels},
			workload.MNISTProgram(workload.MNISTConfig{
				Steps:    100,
				StepTime: time.Duration(float64(20*time.Millisecond) * scale * 20),
			}), nil
	case name == "idle":
		return container.Image{Name: name, Labels: cudaLabels},
			func(p *container.Proc) error { return nil }, nil
	default:
		// Non-CUDA image: plain docker passthrough, no GPU wiring.
		return container.Image{Name: name},
			func(p *container.Proc) error { return nil }, nil
	}
}
