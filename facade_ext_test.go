package convgpu_test

import (
	"testing"
	"time"

	"convgpu"
)

func TestSimulateMultiGPUFacade(t *testing.T) {
	trace := convgpu.GenerateTrace(16, 5*time.Second, 3)
	one, err := convgpu.SimulateMultiGPU(trace, 1, "leastloaded", convgpu.BestFit)
	if err != nil {
		t.Fatal(err)
	}
	two, err := convgpu.SimulateMultiGPU(trace, 2, "leastloaded", convgpu.BestFit)
	if err != nil {
		t.Fatal(err)
	}
	if two.FinishTime > one.FinishTime {
		t.Fatalf("2 GPUs (%v) slower than 1 (%v)", two.FinishTime, one.FinishTime)
	}
	if _, err := convgpu.SimulateMultiGPU(trace, 2, "bogus", convgpu.BestFit); err == nil {
		t.Fatal("bogus policy accepted")
	}
	if len(convgpu.MultiGPUPolicies()) != 4 {
		t.Fatalf("policies = %v", convgpu.MultiGPUPolicies())
	}
}

func TestSimulateClusterFacade(t *testing.T) {
	trace := convgpu.GenerateTrace(16, 5*time.Second, 3)
	res, err := convgpu.SimulateCluster(trace, 2, "spread", convgpu.FIFO)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Containers {
		if !c.Completed {
			t.Fatalf("container %s never completed", c.ID)
		}
	}
	if _, err := convgpu.SimulateCluster(trace, 2, "bogus", convgpu.FIFO); err == nil {
		t.Fatal("bogus strategy accepted")
	}
	if len(convgpu.ClusterStrategies()) != 3 {
		t.Fatalf("strategies = %v", convgpu.ClusterStrategies())
	}
}

func TestSystemEventLog(t *testing.T) {
	sys := newSystem(t, convgpu.Config{})
	c, err := sys.Run(convgpu.RunOptions{
		Name:         "ev1",
		Image:        convgpu.CUDAImage("app", ""),
		NvidiaMemory: 256 * convgpu.MiB,
		Program: func(p *convgpu.Proc) error {
			ptr, err := p.CUDA.Malloc(64 * convgpu.MiB)
			if err != nil {
				return err
			}
			return p.CUDA.Free(ptr)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]bool{}
	for _, e := range sys.Events() {
		if e.Container == "ev1" {
			kinds[e.Kind.String()] = true
		}
	}
	for _, want := range []string{"register", "accept", "free", "procexit", "close"} {
		if !kinds[want] {
			t.Errorf("event log missing %q for ev1 (have %v)", want, kinds)
		}
	}
}

func TestSimulateReportsUtilization(t *testing.T) {
	trace := convgpu.GenerateTrace(12, 5*time.Second, 9)
	res, err := convgpu.Simulate(trace, convgpu.SimConfig{Algorithm: convgpu.BestFit})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgUtilization <= 0 || res.AvgUtilization > 1 {
		t.Fatalf("AvgUtilization = %v, want (0,1]", res.AvgUtilization)
	}
}
