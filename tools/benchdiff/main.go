// Command benchdiff compares two `go test -bench` outputs the way
// benchstat does, without the external dependency: it pairs benchmarks
// by name, prints old/new time and allocation columns with percentage
// deltas, and (with -fail-over) exits nonzero when any paired
// benchmark's ns/op regressed past a threshold — the hook `make
// benchdiff` uses to gate hot-path changes against the committed
// baseline.
//
// Usage:
//
//	go run ./tools/benchdiff [-fail-over pct] [-threshold pct] old.txt new.txt
//
// -threshold is the stricter gate: it fails on ns/op regressions past
// the given percent AND on any allocs/op increase at all. Allocation
// counts are deterministic — unlike wall time they need no slack — so
// the alloc gate is exact, which is how CI holds the hot paths to
// their 0-alloc budgets even on noisy shared runners (pair it with a
// generous percentage when the timing side of the run is a single
// iteration).
//
// Single-run caveat: unlike benchstat this tool sees one sample per
// side, so it reports deltas without significance testing. Treat small
// movements as noise and rerun; the -fail-over default (0 = never
// fail) exists because a gate needs slack on shared CI hardware.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

type result struct {
	name   string
	nsOp   float64
	bOp    int64
	allocs int64
	hasMem bool
}

func main() {
	failOver := flag.Float64("fail-over", 0, "exit 1 when ns/op regresses more than this percent (0 disables)")
	threshold := flag.Float64("threshold", 0, "exit 1 when ns/op regresses more than this percent OR any allocs/op increases (0 disables)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-fail-over pct] [-threshold pct] old.txt new.txt")
		os.Exit(2)
	}
	old, err := parseFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, err := parseFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(old)+len(cur))
	for name := range old {
		names = append(names, name)
	}
	for name := range cur {
		if _, ok := old[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	var rows [][]string
	rows = append(rows, []string{"benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs"})
	worst := 0.0
	var worstName string
	type allocRegression struct {
		name     string
		old, new int64
	}
	var allocRegs []allocRegression
	for _, name := range names {
		o, inOld := old[name]
		n, inCur := cur[name]
		switch {
		case !inCur:
			rows = append(rows, []string{name, formatNs(o.nsOp), "gone", "", formatAllocs(o), ""})
		case !inOld:
			rows = append(rows, []string{name, "new", formatNs(n.nsOp), "", "", formatAllocs(n)})
		default:
			delta := ""
			if o.nsOp > 0 {
				pct := (n.nsOp - o.nsOp) / o.nsOp * 100
				delta = fmt.Sprintf("%+.1f%%", pct)
				if pct > worst {
					worst, worstName = pct, name
				}
			}
			if o.hasMem && n.hasMem && n.allocs > o.allocs {
				allocRegs = append(allocRegs, allocRegression{name, o.allocs, n.allocs})
			}
			rows = append(rows, []string{name, formatNs(o.nsOp), formatNs(n.nsOp), delta, formatAllocs(o), formatAllocs(n)})
		}
	}
	printTable(rows)

	if *failOver > 0 && worst > *failOver {
		fmt.Fprintf(os.Stderr, "benchdiff: %s regressed %.1f%% (limit %.1f%%)\n", worstName, worst, *failOver)
		os.Exit(1)
	}
	if *threshold > 0 {
		fail := false
		if worst > *threshold {
			fmt.Fprintf(os.Stderr, "benchdiff: %s regressed %.1f%% (limit %.1f%%)\n", worstName, worst, *threshold)
			fail = true
		}
		for _, ar := range allocRegs {
			fmt.Fprintf(os.Stderr, "benchdiff: %s allocs/op grew %d -> %d (alloc budgets admit no slack)\n", ar.name, ar.old, ar.new)
			fail = true
		}
		if fail {
			os.Exit(1)
		}
	}
}

// parseFile reads one benchmark output file into results keyed by name,
// with the -N GOMAXPROCS suffix stripped so runs from differently sized
// machines pair up. A name appearing multiple times (-count>1) keeps
// its best (minimum) ns/op — the least-noise sample.
func parseFile(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]result)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		r, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		if prev, seen := out[r.name]; seen && prev.nsOp <= r.nsOp {
			continue
		}
		out[r.name] = r
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines", path)
	}
	return out, nil
}

// parseLine extracts one `BenchmarkX  N  ns/op [B/op allocs/op]` row.
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	r := result{name: fields[0]}
	if i := strings.LastIndex(r.name, "-"); i > 0 {
		if _, err := strconv.Atoi(r.name[i+1:]); err == nil {
			r.name = r.name[:i]
		}
	}
	found := false
	for i := 2; i+1 < len(fields); i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.nsOp, found = v, true
		case "B/op":
			r.bOp, r.hasMem = int64(v), true
		case "allocs/op":
			r.allocs, r.hasMem = int64(v), true
		}
	}
	return r, found
}

func formatNs(ns float64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.1fns", ns)
	}
}

func formatAllocs(r result) string {
	if !r.hasMem {
		return ""
	}
	return fmt.Sprintf("%d (%dB)", r.allocs, r.bOp)
}

func printTable(rows [][]string) {
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				b.WriteString(cell + strings.Repeat(" ", widths[i]-len(cell)))
			} else {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)) + cell)
			}
		}
		fmt.Println(strings.TrimRight(b.String(), " "))
	}
}
