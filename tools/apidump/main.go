// Command apidump prints the exported API of the root convgpu package
// in a normalized, sorted, one-declaration-per-line form. `make
// apicheck` diffs its output against the committed golden file
// (api/convgpu.txt), so an accidental change to the public surface —
// a removed method, a changed signature, a renamed option — fails the
// build until the golden file is regenerated deliberately (`make
// apigen`), making API breaks a reviewed decision instead of a
// side effect.
//
// Only the standard library's go/parser and go/printer are used: no
// module downloads, no type checking, just syntax.
package main

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	dir := "."
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	lines, err := dump(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "apidump: %v\n", err)
		os.Exit(1)
	}
	for _, l := range lines {
		fmt.Println(l)
	}
}

// dump parses every non-test .go file of the package in dir and returns
// one sorted line per exported declaration.
func dump(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	var lines []string
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				lines = append(lines, declLines(fset, decl)...)
			}
		}
	}
	sort.Strings(lines)
	return lines, nil
}

// declLines renders one top-level declaration's exported parts.
func declLines(fset *token.FileSet, decl ast.Decl) []string {
	var out []string
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		recv := ""
		if d.Recv != nil && len(d.Recv.List) > 0 {
			t := exprString(fset, d.Recv.List[0].Type)
			// Methods on unexported receivers are not reachable API.
			if !ast.IsExported(strings.TrimPrefix(t, "*")) {
				return nil
			}
			recv = "(" + t + ") "
		}
		out = append(out, fmt.Sprintf("func %s%s%s", recv, d.Name.Name, signatureString(fset, d.Type)))
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.ValueSpec:
				kw := "var"
				if d.Tok == token.CONST {
					kw = "const"
				}
				for _, name := range s.Names {
					if name.IsExported() {
						out = append(out, fmt.Sprintf("%s %s", kw, name.Name))
					}
				}
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				out = append(out, typeLines(fset, s)...)
			}
		}
	}
	return out
}

// typeLines renders an exported type: its kind line plus one line per
// exported struct field or interface method.
func typeLines(fset *token.FileSet, s *ast.TypeSpec) []string {
	assign := ""
	if s.Assign != token.NoPos {
		assign = " = " + exprString(fset, s.Type) // alias keeps its target
	}
	var out []string
	switch t := s.Type.(type) {
	case *ast.StructType:
		out = append(out, fmt.Sprintf("type %s struct", s.Name.Name))
		for _, f := range t.Fields.List {
			typ := exprString(fset, f.Type)
			if len(f.Names) == 0 { // embedded
				if ast.IsExported(strings.TrimPrefix(typ, "*")) {
					out = append(out, fmt.Sprintf("type %s struct, embeds %s", s.Name.Name, typ))
				}
				continue
			}
			for _, n := range f.Names {
				if n.IsExported() {
					out = append(out, fmt.Sprintf("type %s struct, field %s %s", s.Name.Name, n.Name, typ))
				}
			}
		}
	case *ast.InterfaceType:
		out = append(out, fmt.Sprintf("type %s interface", s.Name.Name))
		for _, m := range t.Methods.List {
			for _, n := range m.Names {
				if n.IsExported() {
					if ft, ok := m.Type.(*ast.FuncType); ok {
						out = append(out, fmt.Sprintf("type %s interface, method %s%s", s.Name.Name, n.Name, signatureString(fset, ft)))
					}
				}
			}
		}
	default:
		if assign != "" {
			out = append(out, fmt.Sprintf("type %s%s", s.Name.Name, assign))
		} else {
			out = append(out, fmt.Sprintf("type %s %s", s.Name.Name, exprString(fset, s.Type)))
		}
	}
	return out
}

// signatureString renders a FuncType as "(args) (results)".
func signatureString(fset *token.FileSet, ft *ast.FuncType) string {
	// Print the whole func type, then strip the leading "func".
	full := exprString(fset, ft)
	return strings.TrimPrefix(full, "func")
}

// exprString prints one AST node compactly on one line.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var b bytes.Buffer
	printer.Fprint(&b, fset, e)
	return strings.Join(strings.Fields(b.String()), " ")
}
