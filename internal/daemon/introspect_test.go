package daemon

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"convgpu/internal/ipc"
	"convgpu/internal/obs"
	"convgpu/internal/protocol"
)

// query performs one introspection round trip on the control socket.
func query(t *testing.T, ctl *ipc.Client, typ protocol.Type, container string, limit int64) []byte {
	t.Helper()
	resp, err := ctl.Call(context.Background(), &protocol.Message{
		Type: typ, Container: container, Size: limit,
	})
	if err != nil {
		t.Fatalf("%s: %v", typ, err)
	}
	if !resp.OK {
		t.Fatalf("%s refused: %s", typ, resp.Error)
	}
	if resp.Data == "" {
		t.Fatalf("%s: empty payload", typ)
	}
	return []byte(resp.Data)
}

func TestIntrospectionOverControlSocket(t *testing.T) {
	d := startDaemon(t, mib(1000))
	ctl := dialControl(t, d)

	// Drive a tiny lifecycle so the answers are non-trivial.
	resp := register(t, ctl, "c1", mib(400))
	if !resp.OK {
		t.Fatalf("register: %s", resp.Error)
	}
	wcli := dialContainer(t, resp)
	areq, err := wcli.Call(context.Background(), &protocol.Message{
		Type: protocol.TypeAlloc, Container: "c1", PID: 1, Size: int64(mib(100)),
	})
	if err != nil || !areq.OK || areq.Decision != protocol.DecisionAccept {
		t.Fatalf("alloc: %+v %v", areq, err)
	}

	// stats: full metric snapshot, with the register+accept counted.
	var stats obs.StatsPayload
	if err := json.Unmarshal(query(t, ctl, protocol.TypeStats, "", 0), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Algorithm == "" || len(stats.Metrics) == 0 {
		t.Fatalf("stats payload: %+v", stats)
	}
	counts := map[string]int64{}
	for _, p := range stats.Metrics {
		if p.Name == obs.MetricEvents {
			counts[p.Labels["kind"]] = p.Value
		}
	}
	if counts["register"] != 1 || counts["accept"] != 1 {
		t.Fatalf("event counters: %v", counts)
	}

	// trace: c1's events in causal order.
	var trace obs.TraceDump
	if err := json.Unmarshal(query(t, ctl, protocol.TypeTrace, "c1", 0), &trace); err != nil {
		t.Fatal(err)
	}
	if len(trace.Events) < 2 {
		t.Fatalf("trace events: %+v", trace.Events)
	}
	if trace.Events[0].Kind != "register" || trace.Events[0].CSeq != 1 {
		t.Fatalf("first trace event: %+v", trace.Events[0])
	}

	// trace with a shrink limit keeps only the newest events.
	if err := json.Unmarshal(query(t, ctl, protocol.TypeTrace, "", 1), &trace); err != nil {
		t.Fatal(err)
	}
	if len(trace.Events) != 1 {
		t.Fatalf("limited trace kept %d events", len(trace.Events))
	}

	// dump: identity, containers, metrics and trace in one document.
	var dump struct {
		Algorithm  string `json:"algorithm"`
		Capacity   int64  `json:"capacity"`
		PoolFree   int64  `json:"pool_free"`
		Containers []struct {
			ID    string `json:"id"`
			Limit int64  `json:"limit"`
			Used  int64  `json:"used"`
		} `json:"containers"`
		Metrics []obs.MetricPoint `json:"metrics"`
		Trace   obs.TraceDump     `json:"trace"`
	}
	if err := json.Unmarshal(query(t, ctl, protocol.TypeDump, "", 0), &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Capacity != int64(mib(1000)) || len(dump.Containers) != 1 {
		t.Fatalf("dump: %+v", dump)
	}
	if dump.Containers[0].ID != "c1" || dump.Containers[0].Limit != int64(mib(400)) {
		t.Fatalf("dump container: %+v", dump.Containers[0])
	}
	if len(dump.Trace.Events) == 0 || len(dump.Metrics) == 0 {
		t.Fatal("dump missing trace or metrics")
	}
}

func TestIntrospectionTraceFitsOneFrame(t *testing.T) {
	d := startDaemon(t, mib(100000))
	ctl := dialControl(t, d)
	// Far more events than maxTraceEvents: hundreds of registrations.
	for i := 0; i < 2*maxTraceEvents; i++ {
		resp, err := ctl.Call(context.Background(), &protocol.Message{
			Type:      protocol.TypeRegister,
			Container: fmt.Sprintf("c%04d-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx", i),
			Limit:     int64(mib(1)),
		})
		if err != nil {
			t.Fatal(err)
		}
		protocol.ReleaseMessage(resp)
	}
	data := query(t, ctl, protocol.TypeTrace, "", 0)
	if len(data) >= ipc.MaxLine {
		t.Fatalf("trace payload %d bytes, exceeds one frame (%d)", len(data), ipc.MaxLine)
	}
	var trace obs.TraceDump
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatal(err)
	}
	if len(trace.Events) != maxTraceEvents {
		t.Fatalf("trace kept %d events, want cap %d", len(trace.Events), maxTraceEvents)
	}
}
