// Package daemon runs the GPU memory scheduler as a host-side service
// (paper §III-D): "GPU memory scheduler is a standalone program written
// in Go ... It runs on the host machine similar to nvidia-docker-plugin."
//
// The daemon exposes a control socket for the customized nvidia-docker
// (container registration) and nvidia-docker-plugin (close signals). For
// every registered container it prepares a dedicated directory holding a
// UNIX socket plus the wrapper module, which nvidia-docker mounts into
// the container as a volume. Allocation requests arriving on a
// container's socket are decided by the core scheduler; suspended
// requests have their responses parked until a redistribution admits
// them — the wrapper module inside the container stays blocked in the
// allocation call exactly as the paper describes.
package daemon

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"convgpu/internal/asyncop"
	"convgpu/internal/bytesize"
	"convgpu/internal/clock"
	"convgpu/internal/core"
	"convgpu/internal/errs"
	"convgpu/internal/ipc"
	"convgpu/internal/obs"
	"convgpu/internal/protocol"
	"convgpu/internal/wal"
	"convgpu/internal/wrapper"
)

// ControlSocketName is the control socket file inside the base directory.
const ControlSocketName = "scheduler.sock"

// ContainerSocketName is the per-container socket file name.
const ContainerSocketName = wrapper.SocketFileName

// WrapperModuleName is the file name of the wrapper module the scheduler
// copies into each container directory (libgpushare.so in the paper; here
// a Go marker whose presence the container runtime checks when "loading"
// the wrapper).
const WrapperModuleName = wrapper.ModuleFileName

// Config configures the daemon.
type Config struct {
	// BaseDir is where the control socket and per-container directories
	// are created.
	BaseDir string
	// Core is the scheduling backend. Required. A single *core.State
	// serves one device; a multigpu.State serves several behind the same
	// interface — the daemon routes per-container traffic identically.
	Core core.Scheduler
	// Lease is how long a container's session may stay silent before the
	// daemon reaps it as dead — a container that was SIGKILLed never
	// sends a close signal, and without a lease its grant would be
	// pinned forever. Any message on the container's socket renews the
	// lease (idle wrappers send heartbeats). Zero disables leasing.
	Lease time.Duration
	// Clock paces the lease accounting; nil uses the real clock. Tests
	// inject a manual clock to expire leases deterministically.
	Clock clock.Clock
	// Obs receives the daemon's runtime telemetry (handler latency,
	// suspend waits, lease expiries) and serves the control socket's
	// stats/trace/dump introspection. Nil builds a default bundle —
	// observability is always on; its record paths are atomic-only, so
	// the hot path stays allocation-free either way.
	Obs *obs.Observability
	// Logf receives the daemon's operational log lines — today that is
	// the restart-recovery path explaining every session it discards,
	// which would otherwise vanish silently. Nil discards them. Not
	// called on the request hot path.
	Logf func(format string, args ...any)
	// WAL, when set, is the daemon's durable admission log: every
	// session-changing event is appended (and synced per the log's
	// policy) before it is acknowledged, restart recovery replays the
	// log instead of scanning per-container session.json files, and the
	// obs bundle exports the log's counters. The caller owns the log's
	// lifecycle — open it before Start, close it after Close.
	WAL *wal.Log
	// Tenants is the operator's static tenant table. A registration
	// naming one of these tenants uses the configured definition,
	// overriding any attributes the wire message carries; names the
	// table does not know are adopted from the wire. Empty is fine —
	// every container then belongs to the default tenant unless its
	// registration says otherwise.
	Tenants []core.Tenant
}

// Daemon is a running scheduler service.
type Daemon struct {
	cfg     Config
	clk     clock.Clock
	obs     *obs.Observability
	control *ipc.Server
	// wire counts transport frames by codec across the control socket
	// and every container socket; obs renders it at scrape time.
	wire *ipc.WireStats

	// lastSeen tracks per-container lease renewal times
	// (core.ContainerID → *leaseEntry). A sync.Map keeps the hot-path
	// touch — one Load plus one atomic store per request — off the
	// daemon mutex. Only populated when Config.Lease > 0.
	lastSeen sync.Map

	reapStop chan struct{}
	reapDone chan struct{}

	// ops runs the admin plane's asynchronous verbs (drain, failover,
	// compact, ...) and retains their outcomes for polling.
	ops *asyncop.Manager

	mu      sync.Mutex
	parked  map[parkedKey]parkedResponder
	servers map[core.ContainerID]*ipc.Server
	dirs    map[core.ContainerID]string
	// tenantDefs is the resolved tenant table: Config.Tenants seeded at
	// Start, WAL-recovered definitions merged under it, inline wire
	// definitions adopted on first sight. tenantLogged marks the names
	// whose current definition is durable in the WAL.
	tenantDefs   map[string]core.Tenant
	tenantLogged map[string]bool
	closed       bool
}

// parkedKey identifies a parked response. Tickets are only unique per
// core.State — a multi-device backend runs one state per device, so two
// containers on different devices can hold the same ticket number — and
// the container ID disambiguates.
type parkedKey struct {
	id core.ContainerID
	t  core.Ticket
}

// parkedResponder is a withheld response plus the connection it will
// leave on, kept so dispatch can batch the responses of one update into
// a single socket write per connection. The park time feeds the
// suspend-wait histogram when the response is finally released; the
// device (resolved once at park time, while the container is certainly
// still placed) labels its per-device series.
type parkedResponder struct {
	respond func(*protocol.Message)
	conn    *ipc.ServerConn
	at      time.Time
	device  int
}

// Start creates the base directory, launches the control socket and
// returns the running daemon.
//
// A control socket file left behind by a previous run is taken over
// after a dial probe proves no live daemon answers on it; if one does,
// Start fails instead of stealing its socket. Container sessions
// persisted by a previous run (see sessionFileName) are recovered:
// their registrations are re-applied idempotently and their sockets
// re-listen, so wrappers reconnect and replay instead of losing their
// grants.
func Start(cfg Config) (*Daemon, error) {
	if cfg.Core == nil {
		return nil, fmt.Errorf("daemon: Config.Core is required")
	}
	if cfg.BaseDir == "" {
		return nil, fmt.Errorf("daemon: Config.BaseDir is required")
	}
	if err := os.MkdirAll(cfg.BaseDir, 0o755); err != nil {
		return nil, fmt.Errorf("daemon: create base dir: %w", err)
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.New(obs.Config{Algorithm: cfg.Core.AlgorithmName()})
	}
	cfg.Obs.BindCore(cfg.Core)
	if cfg.WAL != nil {
		cfg.Obs.BindWAL(cfg.WAL)
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	d := &Daemon{
		cfg:          cfg,
		clk:          cfg.Clock,
		obs:          cfg.Obs,
		wire:         &ipc.WireStats{},
		parked:       make(map[parkedKey]parkedResponder),
		servers:      make(map[core.ContainerID]*ipc.Server),
		dirs:         make(map[core.ContainerID]string),
		tenantDefs:   make(map[string]core.Tenant),
		tenantLogged: make(map[string]bool),
		reapStop:     make(chan struct{}),
		reapDone:     make(chan struct{}),
	}
	for _, t := range cfg.Tenants {
		if t.Name == "" {
			return nil, fmt.Errorf("daemon: Config.Tenants entry without a name")
		}
		if _, dup := d.tenantDefs[t.Name]; dup {
			return nil, fmt.Errorf("daemon: Config.Tenants defines %q twice", t.Name)
		}
		d.tenantDefs[t.Name] = t
	}
	if fs, ok := cfg.Core.(core.FailoverSource); ok {
		// A cluster backend reports node failovers synchronously; the
		// daemon re-keys parked responders and rewrites session files in
		// step with the migration.
		fs.OnFailover(d.handleFailover)
	}
	if m, ok := cfg.Core.(core.Membership); ok {
		cfg.Obs.BindMembership(m)
	}
	ctlPath := filepath.Join(cfg.BaseDir, ControlSocketName)
	if err := takeoverSocket(ctlPath); err != nil {
		return nil, err
	}
	if cfg.WAL != nil {
		if err := d.recoverFromWAL(); err != nil {
			return nil, err
		}
	} else if err := d.recoverSessions(); err != nil {
		return nil, err
	}
	// The operation manager must exist before the control socket
	// listens: an ops request can arrive the instant Listen returns.
	d.ops = asyncop.New(2, cfg.Clock.Now)
	ctl, err := ipc.Listen(ctlPath, controlHandler{d})
	if err != nil {
		d.closeRecovered()
		d.ops.Close()
		return nil, err
	}
	ctl.SetWireStats(d.wire)
	cfg.Obs.BindWire("daemon", d.wire, nil)
	d.control = ctl
	if cfg.Lease > 0 {
		go d.reapLoop()
	} else {
		close(d.reapDone)
	}
	return d, nil
}

// ControlSocket returns the path of the control socket nvidia-docker and
// the plugin connect to.
func (d *Daemon) ControlSocket() string { return d.control.Addr() }

// Core exposes the scheduling backend (read-mostly: snapshots, metrics).
func (d *Daemon) Core() core.Scheduler { return d.cfg.Core }

// Obs exposes the daemon's observability bundle (always non-nil).
func (d *Daemon) Obs() *obs.Observability { return d.obs }

// WireStats exposes the daemon-side transport frame counters, summed
// across the control socket and every container socket.
func (d *Daemon) WireStats() *ipc.WireStats { return d.wire }

// Close shuts down the control socket and every container socket.
// Parked requests are released with an error.
func (d *Daemon) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	servers := make([]*ipc.Server, 0, len(d.servers))
	for _, s := range d.servers {
		servers = append(servers, s)
	}
	parked := d.parked
	d.parked = make(map[parkedKey]parkedResponder)
	d.mu.Unlock()

	if d.cfg.Lease > 0 {
		close(d.reapStop)
	}
	<-d.reapDone
	d.ops.Close()

	now := d.clk.Now()
	for _, p := range parked {
		d.obs.ObserveSuspendWait(p.device, now.Sub(p.at))
		p.respond(&protocol.Message{OK: false, Error: "scheduler shutting down", Code: protocol.CodeUnavailable})
	}
	err := d.control.Close()
	for _, s := range servers {
		s.Close()
	}
	return err
}

// containerDir builds the per-container directory path. Container IDs
// are sanitized defensively: they become directory names.
func (d *Daemon) containerDir(id core.ContainerID) string {
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, string(id))
	return filepath.Join(d.cfg.BaseDir, "containers", safe)
}

// register implements the Register control message: it admits the
// container with the core under its resolved tenant, prepares its
// directory, socket and wrapper module copy, and reports the directory
// back to nvidia-docker.
func (d *Daemon) register(id core.ContainerID, limit int64, t core.Tenant) (*protocol.Message, error) {
	granted, err := d.cfg.Core.RegisterTenant(id, bytesize.Size(limit), t)
	if err != nil {
		return nil, err
	}
	device, err := d.cfg.Core.Placement(id)
	if err != nil {
		d.cfg.Core.Close(id)
		return nil, err
	}
	dir := d.containerDir(id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		d.cfg.Core.Close(id)
		return nil, fmt.Errorf("daemon: container dir: %w", err)
	}
	// "copies the wrapper module to the directory" — the module carries
	// the socket path it must talk to.
	sockPath := filepath.Join(dir, ContainerSocketName)
	module := fmt.Sprintf("convgpu wrapper module for container %s\nsocket=%s\n", id, sockPath)
	if err := os.WriteFile(filepath.Join(dir, WrapperModuleName), []byte(module), 0o644); err != nil {
		d.cfg.Core.Close(id)
		return nil, fmt.Errorf("daemon: write wrapper module: %w", err)
	}
	// Persist the admission before acknowledging it: a registration the
	// daemon cannot make durable is unwound, not acked. The tenant's
	// definition lands first so replay folds it before the session that
	// references it.
	if d.cfg.WAL == nil {
		if err := writeSessionFile(dir, id, bytesize.Size(limit), device, t); err != nil {
			d.cfg.Core.Close(id)
			return nil, err
		}
	} else if err := d.persistTenant(t); err != nil {
		d.cfg.Core.Close(id)
		return nil, err
	} else if err := d.walAppend(wal.Record{
		Kind: wal.KindRegister, Container: string(id), Amount: limit, Device: int32(device), Tenant: t.Name,
	}); err != nil {
		d.cfg.Core.Close(id)
		return nil, err
	}
	os.Remove(sockPath) // stale socket from a previous run
	srv, err := ipc.Listen(sockPath, containerHandler{d: d, id: id})
	if err != nil {
		d.cfg.Core.Close(id)
		return nil, err
	}
	srv.SetWireStats(d.wire)
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		srv.Close()
		return nil, fmt.Errorf("daemon: shutting down")
	}
	d.servers[id] = srv
	d.dirs[id] = dir
	d.mu.Unlock()
	d.touch(id)

	resp := &protocol.Message{OK: true, Granted: int64(granted), SocketDir: dir, Device: device}
	return resp, nil
}

// closeContainer implements the plugin's close signal.
func (d *Daemon) closeContainer(id core.ContainerID) (*protocol.Message, error) {
	return d.closeContainerKind(id, wal.KindClose)
}

// closeContainerKind is closeContainer with the WAL record kind chosen
// by the caller — the lease reaper records KindLeaseExpire so a
// replayed log distinguishes operator closes from reaped sessions.
func (d *Daemon) closeContainerKind(id core.ContainerID, kind wal.Kind) (*protocol.Message, error) {
	released, update, err := d.cfg.Core.Close(id)
	if err != nil {
		return nil, err
	}
	if err := d.walAppend(wal.Record{Kind: kind, Container: string(id), Amount: int64(released)}); err != nil {
		// The core already forgot the session, so refusing the ack would
		// strand the caller retrying an unrepeatable close. Log loudly
		// and proceed: recovery re-offers the session and the lease
		// reaper (or the next close) reconciles it.
		d.cfg.Logf("daemon: close %q not persisted: %v", id, err)
	}
	d.dispatch(update)
	d.mu.Lock()
	srv := d.servers[id]
	dir := d.dirs[id]
	delete(d.servers, id)
	delete(d.dirs, id)
	d.mu.Unlock()
	d.lastSeen.Delete(id)
	if dir != "" && d.cfg.WAL == nil {
		// A closed session must not be recovered by a future restart.
		// With a WAL the close record above is the durable tombstone.
		os.Remove(filepath.Join(dir, sessionFileName))
	}
	if srv != nil {
		// Shut the container socket down in the background: the close
		// signal must not wait for in-flight handlers.
		go srv.Close()
	}
	return &protocol.Message{OK: true, Free: int64(released)}, nil
}

// park stores a suspended request's responder under its container+ticket.
func (d *Daemon) park(k parkedKey, conn *ipc.ServerConn, respond func(*protocol.Message)) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		respond(&protocol.Message{OK: false, Error: "scheduler shutting down"})
		return
	}
	device, _ := d.cfg.Core.Placement(k.id)
	d.parked[k] = parkedResponder{respond: respond, conn: conn, at: d.clk.Now(), device: device}
	d.mu.Unlock()
}

// dispatch releases parked responders according to a core update:
// admitted requests get an accept, cancelled ones an error. Responses
// headed for the same connection are bracketed in a write batch, so the
// N tickets one redistribution admits on a container's socket leave in
// a single syscall instead of N.
func (d *Daemon) dispatch(u core.Update) {
	if len(u.Admitted) == 0 && len(u.Cancelled) == 0 {
		return
	}
	now := d.clk.Now()
	d.mu.Lock()
	type rel struct {
		respond func(*protocol.Message)
		msg     *protocol.Message
	}
	byConn := make(map[*ipc.ServerConn][]rel)
	for _, a := range u.Admitted {
		k := parkedKey{a.Container, a.Ticket}
		if p, ok := d.parked[k]; ok {
			delete(d.parked, k)
			d.obs.ObserveSuspendWait(p.device, now.Sub(p.at))
			m := protocol.AcquireMessage()
			m.OK = true
			m.Decision = protocol.DecisionAccept
			byConn[p.conn] = append(byConn[p.conn], rel{p.respond, m})
		}
	}
	for _, c := range u.Cancelled {
		k := parkedKey{c.Container, c.Ticket}
		if p, ok := d.parked[k]; ok {
			delete(d.parked, k)
			d.obs.ObserveSuspendWait(p.device, now.Sub(p.at))
			m := protocol.AcquireMessage()
			m.OK = false
			m.Error = "container closed"
			byConn[p.conn] = append(byConn[p.conn], rel{p.respond, m})
		}
	}
	d.mu.Unlock()
	// Audit resumes before the withheld responses leave: the log shows
	// the admission ahead of the wrapper observing it.
	for _, a := range u.Admitted {
		d.walAudit(wal.KindResume, a.Container, 0, 0, 0)
	}
	for conn, rels := range byConn {
		if conn != nil && len(rels) > 1 {
			conn.BeginBatch()
		}
		for _, r := range rels {
			r.respond(r.msg)
		}
		if conn != nil && len(rels) > 1 {
			conn.EndBatch()
		}
	}
}

// codeFor maps a scheduler error onto its wire error code (empty when
// the failure has no machine-readable class). Clients reverse the
// mapping with protocol.ErrFromCode to get errors.Is-able sentinels.
func codeFor(err error) string {
	switch {
	case errors.Is(err, core.ErrLimitExceedsCapacity):
		return protocol.CodeOverCapacity
	case errors.Is(err, core.ErrUnknownContainer):
		return protocol.CodeUnknownContainer
	case errors.Is(err, errs.ErrNodeDown):
		return protocol.CodeNodeDown
	case errors.Is(err, errs.ErrDaemonUnavailable):
		return protocol.CodeUnavailable
	default:
		return ""
	}
}

// codedError builds an error response carrying the machine code for err.
func codedError(msg *protocol.Message, err error) *protocol.Message {
	return protocol.CodedErrorResponse(msg, codeFor(err), "%v", err)
}

// controlHandler serves the control socket: registration, close, and
// the stats/trace/dump introspection requests.
type controlHandler struct{ d *Daemon }

// Handle implements ipc.Handler.
func (h controlHandler) Handle(conn *ipc.ServerConn, msg *protocol.Message, respond func(*protocol.Message)) {
	start := time.Now()
	h.handle(conn, msg, respond)
	h.d.obs.HandlerControl.Observe(time.Since(start))
}

func (h controlHandler) handle(conn *ipc.ServerConn, msg *protocol.Message, respond func(*protocol.Message)) {
	switch msg.Type {
	case protocol.TypeRegister:
		resp, err := h.d.register(core.ContainerID(msg.Container), msg.Limit, h.d.resolveTenant(msg))
		if err != nil {
			respond(codedError(msg, err))
			return
		}
		respond(resp)
	case protocol.TypeClose:
		resp, err := h.d.closeContainer(core.ContainerID(msg.Container))
		if err != nil {
			respond(codedError(msg, err))
			return
		}
		respond(resp)
	case protocol.TypeStats, protocol.TypeTrace, protocol.TypeDump:
		h.d.introspect(msg, respond)
	case protocol.TypeNodes, protocol.TypeDrain, protocol.TypeRevive:
		h.d.handleMembership(msg, respond)
	case protocol.TypeSessions:
		h.d.handleSessions(msg, respond)
	case protocol.TypeOps:
		h.d.handleOps(msg, respond)
	case protocol.TypeTenants:
		h.d.handleTenants(msg, respond)
	default:
		respond(protocol.ErrorResponse(msg, "daemon: unexpected %s on control socket", msg.Type))
	}
}

// Closed implements ipc.Handler.
func (h controlHandler) Closed(conn *ipc.ServerConn) {}

// containerHandler serves one container's socket: the wrapper module's
// allocation traffic.
type containerHandler struct {
	d  *Daemon
	id core.ContainerID
}

// ok acquires a pooled success response; respond consumes it (the
// transport returns it to the pool after encoding).
func ok() *protocol.Message {
	m := protocol.AcquireMessage()
	m.OK = true
	return m
}

// Handle implements ipc.Handler. The latency histogram times the
// handler from decode to local completion; for a suspended allocation
// that is the decision latency (the response itself is parked and its
// wait lands in the suspend-wait histogram instead).
func (h containerHandler) Handle(conn *ipc.ServerConn, msg *protocol.Message, respond func(*protocol.Message)) {
	start := time.Now()
	h.handle(conn, msg, respond)
	h.d.obs.HandlerContainer.Observe(time.Since(start))
}

func (h containerHandler) handle(conn *ipc.ServerConn, msg *protocol.Message, respond func(*protocol.Message)) {
	c := h.d.cfg.Core
	h.d.touch(h.id) // any traffic renews the session lease
	switch msg.Type {
	case protocol.TypeAlloc:
		res, err := c.RequestAlloc(h.id, msg.PID, msg.SizeBytes())
		if err != nil {
			respond(codedError(msg, err))
			return
		}
		switch res.Decision {
		case core.Accept:
			h.d.walAudit(wal.KindGrant, h.id, msg.Size, msg.PID, 0)
			m := ok()
			m.Decision = protocol.DecisionAccept
			respond(m)
		case core.Reject:
			h.d.walAudit(wal.KindReject, h.id, msg.Size, msg.PID, 0)
			m := ok()
			m.Decision = protocol.DecisionReject
			respond(m)
		case core.Suspend:
			// The paper's pause: withhold the response until granted.
			h.d.walAudit(wal.KindSuspend, h.id, msg.Size, msg.PID, 0)
			h.d.park(parkedKey{h.id, res.Ticket}, conn, respond)
		}
	case protocol.TypeConfirm:
		if err := c.ConfirmAlloc(h.id, msg.PID, msg.Addr, msg.SizeBytes()); err != nil {
			respond(codedError(msg, err))
			return
		}
		respond(ok())
	case protocol.TypeAbort:
		u, err := c.AbortAlloc(h.id, msg.PID, msg.SizeBytes())
		if err != nil {
			respond(codedError(msg, err))
			return
		}
		h.d.walAudit(wal.KindRelease, h.id, msg.Size, msg.PID, 0)
		respond(ok())
		h.d.dispatch(u)
	case protocol.TypeFree:
		size, u, err := c.Free(h.id, msg.PID, msg.Addr)
		if err != nil {
			respond(codedError(msg, err))
			return
		}
		h.d.walAudit(wal.KindRelease, h.id, int64(size), msg.PID, 0)
		m := ok()
		m.Free = int64(size)
		respond(m)
		h.d.dispatch(u)
	case protocol.TypeProcExit:
		size, u, err := c.ProcessExit(h.id, msg.PID)
		if err != nil {
			respond(codedError(msg, err))
			return
		}
		h.d.walAudit(wal.KindRelease, h.id, int64(size), msg.PID, 0)
		m := ok()
		m.Free = int64(size)
		respond(m)
		h.d.dispatch(u)
	case protocol.TypeMemInfo:
		free, total, err := c.MemInfo(h.id)
		if err != nil {
			respond(codedError(msg, err))
			return
		}
		m := ok()
		m.Free = int64(free)
		m.Total = int64(total)
		respond(m)
	case protocol.TypeAttach:
		// A wrapper re-binding its session after a reconnect. The
		// registration survived (same daemon) or was recovered from the
		// session file (restarted daemon); either way the container must
		// be known — an attach for an unknown one is refused so the
		// wrapper does not run against a scheduler with no account of it.
		info, err := c.Info(h.id)
		if err != nil {
			respond(codedError(msg, err))
			return
		}
		if msg.Tenant != "" && info.Tenant != msg.Tenant {
			// A pre-tenant session re-attaching under a tenant identity:
			// adopt the binding (the core keeps an existing conflicting
			// binding per the EnsureRegisteredTenant contract) and make
			// the rebind durable so replay converges on it.
			t := h.d.resolveTenant(msg)
			if _, err := c.EnsureRegisteredTenant(h.id, info.Limit, t); err == nil {
				device, _ := c.Placement(h.id)
				if h.d.cfg.WAL == nil {
					if dir, ok := h.d.sessionDirFor(h.id); ok {
						if err := writeSessionFile(dir, h.id, info.Limit, device, t); err != nil {
							h.d.cfg.Logf("daemon: attach %q: tenant rebind not persisted: %v", h.id, err)
						}
					}
				} else if err := h.d.persistTenant(t); err != nil {
					h.d.cfg.Logf("daemon: attach %q: tenant definition not persisted: %v", h.id, err)
				} else if err := h.d.walAppend(wal.Record{
					Kind: wal.KindRegister, Container: string(h.id),
					Amount: int64(info.Limit), Device: int32(device), Tenant: t.Name,
					Meta: "tenant adopted at attach",
				}); err != nil {
					h.d.cfg.Logf("daemon: attach %q: tenant rebind not persisted: %v", h.id, err)
				}
			}
		}
		m := ok()
		if device, err := c.Placement(h.id); err == nil {
			m.Device = device
		}
		h.d.walAudit(wal.KindAttach, h.id, 0, msg.PID, m.Device)
		respond(m)
	case protocol.TypeRestore:
		if err := c.Restore(h.id, msg.PID, msg.Addr, msg.SizeBytes()); err != nil {
			respond(codedError(msg, err))
			return
		}
		respond(ok())
	case protocol.TypeHeartbeat:
		// The touch above did the work; acknowledge so the wrapper's
		// deadline-bounded call completes.
		respond(ok())
	default:
		respond(protocol.ErrorResponse(msg, "daemon: unexpected %s on container socket", msg.Type))
	}
}

// Closed implements ipc.Handler. The wrapper process vanished without a
// procexit (crash, kill -9, network fault): any responses still parked
// for this connection could never be delivered, so the tickets are
// dropped from the scheduler queue — a dead wrapper must not pin
// memory redistribution — and the freed queue slots may admit other
// containers' suspended requests. The explicit close signal (or the
// lease reaper) still reclaims the container's memory later.
func (h containerHandler) Closed(conn *ipc.ServerConn) {
	h.d.releaseConn(h.id, conn)
}

// releaseConn drops every parked responder bound to a dead connection.
func (d *Daemon) releaseConn(id core.ContainerID, conn *ipc.ServerConn) {
	now := d.clk.Now()
	d.mu.Lock()
	var tickets []core.Ticket
	var responders []func(*protocol.Message)
	for k, p := range d.parked {
		if k.id == id && p.conn == conn {
			delete(d.parked, k)
			d.obs.ObserveSuspendWait(p.device, now.Sub(p.at))
			tickets = append(tickets, k.t)
			responders = append(responders, p.respond)
		}
	}
	d.mu.Unlock()
	if len(tickets) == 0 {
		return
	}
	for _, r := range responders {
		// The connection is gone, so the send fails on the dead socket;
		// responding still runs the respondOnce bookkeeping and returns
		// the message to the pool.
		m := protocol.AcquireMessage()
		m.Error = "connection dropped while allocation was suspended"
		r(m)
	}
	u, err := d.cfg.Core.DropPending(id, tickets)
	if err == nil {
		d.dispatch(u)
	}
}
