package daemon

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"convgpu/internal/core"
	"convgpu/internal/obs"
)

// logCapture collects Config.Logf output for assertions.
type logCapture struct {
	mu    sync.Mutex
	lines []string
}

func (l *logCapture) logf(format string, args ...any) {
	l.mu.Lock()
	l.lines = append(l.lines, fmt.Sprintf(format, args...))
	l.mu.Unlock()
}

func (l *logCapture) joined() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return strings.Join(l.lines, "\n")
}

// TestRecoverySurvivesCorruptSessionFiles restarts a daemon over a base
// directory holding session records damaged every way a crash can
// damage them — a partial write, outright garbage, an empty record and
// a device the backend does not serve — next to one healthy session.
// The daemon must come up cleanly, recover only the healthy session,
// log why each of the others was discarded and count the discards.
func TestRecoverySurvivesCorruptSessionFiles(t *testing.T) {
	base := filepath.Join(t.TempDir(), "cv")

	// First daemon registers the healthy container, so its directory,
	// session record and socket layout are exactly what production writes.
	d1, err := Start(Config{BaseDir: base, Core: core.MustNew(core.Config{Capacity: mib(1000), ContextOverhead: 1})})
	if err != nil {
		t.Fatal(err)
	}
	ctl := dialControl(t, d1)
	register(t, ctl, "healthy", mib(300))
	ctl.Close()
	d1.Close()

	// Plant the damaged sessions by hand: each one is a container dir
	// with a session.json a crashed daemon could plausibly have left.
	plant := func(name, content string) {
		t.Helper()
		dir := filepath.Join(base, "containers", name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, sessionFileName), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	plant("truncated", `{"container":"truncated","limit":3145`) // write cut mid-number
	plant("garbage", "\x00\xff not json at all")
	plant("anonymous", `{"limit":1048576}`) // decodes, but names no container
	plant("wrong-device", `{"container":"wrong-device","limit":1048576,"device":7}`)

	logs := &logCapture{}
	o := obs.New(obs.Config{Algorithm: core.AlgFIFO})
	d2, err := Start(Config{
		BaseDir: base,
		Core:    core.MustNew(core.Config{Capacity: mib(1000), ContextOverhead: 1}),
		Obs:     o, Logf: logs.logf,
	})
	if err != nil {
		t.Fatalf("daemon failed to start over damaged sessions: %v", err)
	}
	defer d2.Close()

	if _, err := d2.Core().Info("healthy"); err != nil {
		t.Errorf("healthy session not recovered: %v", err)
	}
	for _, id := range []core.ContainerID{"truncated", "garbage", "anonymous", "wrong-device"} {
		if _, err := d2.Core().Info(id); err == nil {
			t.Errorf("damaged session %q was recovered", id)
		}
		if _, err := os.Stat(filepath.Join(base, "containers", string(id), sessionFileName)); !os.IsNotExist(err) {
			t.Errorf("damaged session file %q not removed (err=%v)", id, err)
		}
	}
	if got := o.SessionsDiscarded.Value(); got != 4 {
		t.Errorf("SessionsDiscarded = %d, want 4", got)
	}
	out := logs.joined()
	for _, want := range []string{
		`discarded session "truncated": unreadable record`,
		`discarded session "garbage": unreadable record`,
		`discarded session "anonymous": record has no container id`,
		`discarded session "wrong-device": device 7 not restorable`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("logs missing %q; got:\n%s", want, out)
		}
	}
	// The healthy session's recovery must not have logged a discard.
	if strings.Contains(out, "healthy") {
		t.Errorf("healthy session appears in discard logs:\n%s", out)
	}
}

// TestRecoveryDiscardsRefusedRegistration covers the fourth discard
// reason: a record whose registration the core rejects (the limit
// exceeds a shrunken capacity). The daemon logs it and starts anyway.
func TestRecoveryDiscardsRefusedRegistration(t *testing.T) {
	base := filepath.Join(t.TempDir(), "cv")
	d1, err := Start(Config{BaseDir: base, Core: core.MustNew(core.Config{Capacity: mib(1000), ContextOverhead: 1})})
	if err != nil {
		t.Fatal(err)
	}
	ctl := dialControl(t, d1)
	register(t, ctl, "big", mib(800))
	ctl.Close()
	d1.Close()

	logs := &logCapture{}
	o := obs.New(obs.Config{Algorithm: core.AlgFIFO})
	// The replacement daemon serves a smaller GPU: big's 800MiB limit no
	// longer fits and its session must be discarded, not trusted.
	d2, err := Start(Config{
		BaseDir: base,
		Core:    core.MustNew(core.Config{Capacity: mib(500), ContextOverhead: 1}),
		Obs:     o, Logf: logs.logf,
	})
	if err != nil {
		t.Fatalf("daemon failed to start: %v", err)
	}
	defer d2.Close()

	if _, err := d2.Core().Info("big"); err == nil {
		t.Error("over-limit session was recovered")
	}
	if got := o.SessionsDiscarded.Value(); got != 1 {
		t.Errorf("SessionsDiscarded = %d, want 1", got)
	}
	if out := logs.joined(); !strings.Contains(out, `discarded session "big": registration refused`) {
		t.Errorf("missing discard log; got:\n%s", out)
	}
}
