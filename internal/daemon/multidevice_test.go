// Multi-device daemon behavior: device assignments on the wire, in the
// dump document, and — the part that must survive a crash — pinned
// through session recovery so a restarted daemon's placement policy
// cannot move a container away from the device its CUDA context lives
// on.

package daemon

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"convgpu/internal/core"
	"convgpu/internal/multigpu"
	"convgpu/internal/protocol"
)

func newMultiDevice(t *testing.T, devices int) *multigpu.State {
	t.Helper()
	pol, err := multigpu.NewPolicy(multigpu.PolicyRoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	st, err := multigpu.New(multigpu.Config{
		Devices:           devices,
		CapacityPerDevice: mib(1000),
		Policy:            pol,
		ContextOverhead:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestRegisterReportsDevice: a multi-device daemon's register response
// announces the assigned device, and the attach response repeats it for
// reconnecting wrappers.
func TestRegisterReportsDevice(t *testing.T) {
	st := newMultiDevice(t, 2)
	d, err := Start(Config{BaseDir: filepath.Join(t.TempDir(), "cv"), Core: st})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	ctl := dialControl(t, d)

	respA := register(t, ctl, "a", mib(400))
	respB := register(t, ctl, "b", mib(400))
	if respA.Device != 0 || respB.Device != 1 {
		t.Fatalf("register devices = %d, %d; want round-robin 0, 1", respA.Device, respB.Device)
	}
	cli := dialContainer(t, respB)
	att, err := cli.Call(context.Background(), &protocol.Message{Type: protocol.TypeAttach, PID: 1})
	if err != nil || !att.OK {
		t.Fatalf("attach: %+v %v", att, err)
	}
	if att.Device != 1 {
		t.Fatalf("attach device = %d, want 1", att.Device)
	}
}

// TestMultiDeviceRestartPinsPlacement: restart recovery must restore
// each container to the device recorded in its session file, not
// wherever the fresh daemon's placement policy would put it. The
// schedule makes the distinction observable: a, b, c, d round-robin
// onto devices 0,1,0,1; b's session is removed before the restart, so a
// fresh round-robin pass over the three survivors would assign some of
// them different devices — pinning must win.
func TestMultiDeviceRestartPinsPlacement(t *testing.T) {
	base := filepath.Join(t.TempDir(), "cv")
	st1 := newMultiDevice(t, 2)
	d1, err := Start(Config{BaseDir: base, Core: st1})
	if err != nil {
		t.Fatal(err)
	}
	ctl := dialControl(t, d1)
	want := map[string]int{"a": 0, "b": 1, "c": 0, "d": 1}
	for _, id := range []string{"a", "b", "c", "d"} {
		resp := register(t, ctl, id, mib(300))
		if resp.Device != want[id] {
			t.Fatalf("register %s device = %d, want %d", id, resp.Device, want[id])
		}
	}
	// b closes cleanly; its session must not be resurrected.
	if resp, err := ctl.Call(context.Background(), &protocol.Message{
		Type: protocol.TypeClose, Container: "b",
	}); err != nil || !resp.OK {
		t.Fatalf("close b: %+v %v", resp, err)
	}
	d1.Close()

	st2 := newMultiDevice(t, 2)
	d2, err := Start(Config{BaseDir: base, Core: st2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d2.Close() })
	if _, err := st2.Info("b"); err == nil {
		t.Fatal("cleanly closed b was resurrected")
	}
	for _, id := range []string{"a", "c", "d"} {
		dev, err := st2.Placement(core.ContainerID(id))
		if err != nil {
			t.Fatalf("%s not recovered: %v", id, err)
		}
		if dev != want[id] {
			t.Fatalf("recovered %s on device %d, want pinned device %d", id, dev, want[id])
		}
	}
	if err := st2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryDropsUnservableDevice: a session recorded on a device the
// restarted daemon no longer serves (fewer GPUs after the restart) is
// invalidated — session file deleted, container not registered — rather
// than silently re-placed on a device its CUDA context does not live on.
func TestRecoveryDropsUnservableDevice(t *testing.T) {
	base := filepath.Join(t.TempDir(), "cv")
	st1 := newMultiDevice(t, 2)
	d1, err := Start(Config{BaseDir: base, Core: st1})
	if err != nil {
		t.Fatal(err)
	}
	ctl := dialControl(t, d1)
	register(t, ctl, "a", mib(300)) // device 0
	register(t, ctl, "b", mib(300)) // device 1
	d1.Close()

	// Restart serving a single device: b's recorded device 1 is gone.
	st2 := core.MustNew(core.Config{Capacity: mib(1000), ContextOverhead: 1})
	d2, err := Start(Config{BaseDir: base, Core: st2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d2.Close() })
	if _, err := st2.Info("a"); err != nil {
		t.Fatalf("a (device 0) not recovered: %v", err)
	}
	if _, err := st2.Info("b"); err == nil {
		t.Fatal("b recovered onto a device the daemon does not serve")
	}
	if _, err := os.Stat(filepath.Join(base, "containers", "b", sessionFileName)); !os.IsNotExist(err) {
		t.Fatalf("b's invalid session file not deleted: %v", err)
	}
	if err := st2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
