package daemon

import (
	"context"
	"encoding/json"
	"path/filepath"
	"testing"

	"convgpu/internal/bytesize"
	"convgpu/internal/core"
	"convgpu/internal/ipc"
	"convgpu/internal/leak"
	"convgpu/internal/protocol"
	"convgpu/internal/wal"
)

// registerTenant registers a container over the control socket carrying
// a tenant identity on the wire.
func registerTenant(t *testing.T, ctl *ipc.Client, id string, limit bytesize.Size, ten core.Tenant) *protocol.Message {
	t.Helper()
	resp, err := ctl.Call(context.Background(), &protocol.Message{
		Type: protocol.TypeRegister, Container: id, Limit: int64(limit),
		Tenant: ten.Name, TenantWeight: ten.Weight, TenantPriority: ten.Priority,
		TenantQuota: int64(ten.Quota), TenantGuarantee: int64(ten.Guarantee),
	})
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// tenantsVerb asks the daemon for its rollup over the control socket.
func tenantsVerb(t *testing.T, ctl *ipc.Client) []core.TenantUsage {
	t.Helper()
	resp, err := ctl.Call(context.Background(), &protocol.Message{Type: protocol.TypeTenants})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("tenants verb refused: %s", resp.Error)
	}
	var usages []core.TenantUsage
	if err := json.Unmarshal([]byte(resp.Data), &usages); err != nil {
		t.Fatalf("decode tenants payload %q: %v", resp.Data, err)
	}
	return usages
}

// TestTenantRegisterResolutionAndRollup covers the daemon's resolution
// order: the configured table is authoritative (inline attributes for a
// known name are ignored), an unknown name's inline definition is
// adopted, and the default tenant stays invisible in the rollup.
func TestTenantRegisterResolutionAndRollup(t *testing.T) {
	leak.Check(t)
	st := core.MustNew(core.Config{Capacity: mib(1000), ContextOverhead: 1})
	d, err := Start(Config{
		BaseDir: filepath.Join(t.TempDir(), "cv"), Core: st,
		Tenants: []core.Tenant{{Name: "gold", Weight: 4, Priority: 9, Quota: mib(600)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	ctl := dialControl(t, d)

	if got := tenantsVerb(t, ctl); len(got) != 0 {
		t.Fatalf("rollup before any registration = %+v, want empty", got)
	}

	// Known name with conflicting inline attributes: the table wins.
	if resp := registerTenant(t, ctl, "c1", mib(200), core.Tenant{Name: "gold", Weight: 1, Priority: 1}); !resp.OK {
		t.Fatalf("register c1: %s", resp.Error)
	}
	// Unknown name: the inline definition is adopted and remembered.
	if resp := registerTenant(t, ctl, "c2", mib(200), core.Tenant{Name: "adhoc", Weight: 2, Priority: 3}); !resp.OK {
		t.Fatalf("register c2: %s", resp.Error)
	}
	// Default tenant: no rollup entry.
	if resp := register(t, ctl, "c3", mib(100)); !resp.OK {
		t.Fatalf("register c3: %s", resp.Error)
	}

	byName := map[string]core.TenantUsage{}
	for _, u := range d.Tenants() {
		byName[u.Name] = u
	}
	if len(byName) != 2 {
		t.Fatalf("rollup = %+v, want gold and adhoc only", byName)
	}
	gold := byName["gold"]
	if gold.Weight != 4 || gold.Priority != 9 || gold.Quota != mib(600) {
		t.Fatalf("gold attributes %+v: inline fields overrode the configured table", gold)
	}
	adhoc := byName["adhoc"]
	if adhoc.Weight != 2 || adhoc.Priority != 3 || adhoc.Containers != 1 {
		t.Fatalf("adhoc attributes %+v, want the adopted inline definition", adhoc)
	}
	// A second registration under the adopted name resolves to the
	// remembered definition even with different inline fields.
	if resp := registerTenant(t, ctl, "c4", mib(100), core.Tenant{Name: "adhoc", Weight: 9, Priority: 9}); !resp.OK {
		t.Fatalf("register c4: %s", resp.Error)
	}
	info, err := st.Info("c4")
	if err != nil {
		t.Fatal(err)
	}
	if info.TenantDef.Weight != 2 || info.TenantDef.Priority != 3 {
		t.Fatalf("c4 tenant %+v, want the first-adopted adhoc definition", info.TenantDef)
	}
	// The wire rollup matches the direct accessor.
	if wire := tenantsVerb(t, ctl); len(wire) != 2 {
		t.Fatalf("wire rollup = %+v, want 2 tenants", wire)
	}
}

// TestTenantConfigRejected pins the table validation: entries must be
// named and unique.
func TestTenantConfigRejected(t *testing.T) {
	for _, table := range [][]core.Tenant{
		{{Name: ""}},
		{{Name: "a"}, {Name: "a"}},
	} {
		st := core.MustNew(core.Config{Capacity: mib(100), ContextOverhead: 1})
		d, err := Start(Config{BaseDir: filepath.Join(t.TempDir(), "cv"), Core: st, Tenants: table})
		if err == nil {
			d.Close()
			t.Fatalf("Start accepted tenant table %+v", table)
		}
	}
}

// TestTenantWALRecovery registers under a tenant carried inline on the
// wire, restarts the daemon from the log alone, and demands the full
// identity — not just the name — is rebound: the tenant definition
// record must precede the sessions referencing it in the fold.
func TestTenantWALRecovery(t *testing.T) {
	leak.Check(t)
	base := filepath.Join(t.TempDir(), "cv")
	walDir := filepath.Join(t.TempDir(), "wal")
	ten := core.Tenant{Name: "team-a", Weight: 3, Priority: 7, Quota: mib(500), Guarantee: mib(100)}

	l1 := openTestWAL(t, walDir)
	d1 := startWALDaemon(t, base, l1, mib(1000))
	ctl := dialControl(t, d1)
	if resp := registerTenant(t, ctl, "c1", mib(200), ten); !resp.OK {
		t.Fatalf("register c1: %s", resp.Error)
	}
	// Second session, same tenant: the definition is appended once.
	if resp := registerTenant(t, ctl, "c2", mib(200), core.Tenant{Name: "team-a"}); !resp.OK {
		t.Fatalf("register c2: %s", resp.Error)
	}
	d1.Close()
	l1.Close()

	l2 := openTestWAL(t, walDir)
	defer l2.Close()
	d2 := startWALDaemon(t, base, l2, mib(1000))
	defer d2.Close()
	for _, id := range []core.ContainerID{"c1", "c2"} {
		info, err := d2.Core().Info(id)
		if err != nil {
			t.Fatalf("session %s not recovered: %v", id, err)
		}
		if info.TenantDef != ten {
			t.Fatalf("%s recovered with tenant %+v, want %+v", id, info.TenantDef, ten)
		}
	}
	roll := d2.Tenants()
	if len(roll) != 1 || roll[0].Name != "team-a" || roll[0].Containers != 2 || roll[0].Weight != 3 {
		t.Fatalf("recovered rollup = %+v", roll)
	}
}

// TestTenantSessionFileRecovery is the legacy-persistence variant: with
// no WAL, the tenant identity rides in session.json and a restarted
// daemon (with the operator's table re-supplied) rebinds it.
func TestTenantSessionFileRecovery(t *testing.T) {
	leak.Check(t)
	base := filepath.Join(t.TempDir(), "cv")
	table := []core.Tenant{{Name: "gold", Weight: 4, Priority: 9}}

	st1 := core.MustNew(core.Config{Capacity: mib(1000), ContextOverhead: 1})
	d1, err := Start(Config{BaseDir: base, Core: st1, Tenants: table})
	if err != nil {
		t.Fatal(err)
	}
	ctl := dialControl(t, d1)
	if resp := registerTenant(t, ctl, "c1", mib(200), core.Tenant{Name: "gold"}); !resp.OK {
		t.Fatalf("register c1: %s", resp.Error)
	}
	d1.Close()

	st2 := core.MustNew(core.Config{Capacity: mib(1000), ContextOverhead: 1})
	d2, err := Start(Config{BaseDir: base, Core: st2, Tenants: table})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	info, err := st2.Info("c1")
	if err != nil {
		t.Fatalf("c1 not recovered: %v", err)
	}
	if info.Tenant != "gold" || info.TenantDef.Weight != 4 {
		t.Fatalf("c1 recovered with tenant %+v, want the configured gold definition", info.TenantDef)
	}
}

// TestTenantAttachRebind covers a pre-tenant session re-attaching under
// a tenant identity: the attach adopts the binding and persists it, so
// a subsequent restart converges on the tenant-bound session.
func TestTenantAttachRebind(t *testing.T) {
	t.Run("wal", func(t *testing.T) { testTenantAttachRebind(t, true) })
	t.Run("sessionfile", func(t *testing.T) { testTenantAttachRebind(t, false) })
}

func testTenantAttachRebind(t *testing.T, useWAL bool) {
	leak.Check(t)
	base := filepath.Join(t.TempDir(), "cv")
	walDir := filepath.Join(t.TempDir(), "wal")
	ten := core.Tenant{Name: "late", Weight: 2, Priority: 4}

	var d1 *Daemon
	var l1 *wal.Log
	if useWAL {
		l1 = openTestWAL(t, walDir)
		d1 = startWALDaemon(t, base, l1, mib(1000))
	} else {
		st := core.MustNew(core.Config{Capacity: mib(1000), ContextOverhead: 1})
		var err error
		d1, err = Start(Config{BaseDir: base, Core: st})
		if err != nil {
			t.Fatal(err)
		}
	}
	ctl := dialControl(t, d1)
	resp := register(t, ctl, "c1", mib(200)) // default tenant
	if !resp.OK {
		t.Fatalf("register c1: %s", resp.Error)
	}
	cli := dialContainer(t, resp)
	att, err := cli.Call(context.Background(), &protocol.Message{
		Type: protocol.TypeAttach, PID: 1,
		Tenant: ten.Name, TenantWeight: ten.Weight, TenantPriority: ten.Priority,
	})
	if err != nil || !att.OK {
		t.Fatalf("attach: %v %+v", err, att)
	}
	info, err := d1.Core().Info("c1")
	if err != nil {
		t.Fatal(err)
	}
	if info.TenantDef != ten {
		t.Fatalf("after attach, tenant = %+v, want %+v", info.TenantDef, ten)
	}
	cli.Close()
	ctl.Close()
	if useWAL {
		d1.Close()
		l1.Close()
		l2 := openTestWAL(t, walDir)
		defer l2.Close()
		d2 := startWALDaemon(t, base, l2, mib(1000))
		defer d2.Close()
		info, err := d2.Core().Info("c1")
		if err != nil {
			t.Fatalf("c1 not recovered: %v", err)
		}
		if info.TenantDef != ten {
			t.Fatalf("recovered tenant = %+v, want the adopted %+v", info.TenantDef, ten)
		}
	} else {
		d1.Close()
		st := core.MustNew(core.Config{Capacity: mib(1000), ContextOverhead: 1})
		d2, err := Start(Config{BaseDir: base, Core: st})
		if err != nil {
			t.Fatal(err)
		}
		defer d2.Close()
		info, err := st.Info("c1")
		if err != nil {
			t.Fatalf("c1 not recovered: %v", err)
		}
		if info.Tenant != ten.Name {
			t.Fatalf("recovered tenant name = %q, want %q", info.Tenant, ten.Name)
		}
	}
}
