package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"convgpu/internal/cluster"
	"convgpu/internal/core"
	"convgpu/internal/errs"
	"convgpu/internal/ipc"
	"convgpu/internal/protocol"
)

func startClusterDaemon(t *testing.T) (*Daemon, *cluster.Cluster) {
	t.Helper()
	clus, err := cluster.New(cluster.Config{
		Nodes: 2, GPUsPerNode: 1, CapacityPerGPU: mib(500), ContextOverhead: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Start(Config{BaseDir: filepath.Join(t.TempDir(), "cv"), Core: clus})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d, clus
}

func callControl(t *testing.T, ctl *ipc.Client, msg *protocol.Message) *protocol.Message {
	t.Helper()
	resp, err := ctl.Call(context.Background(), msg)
	if err != nil {
		t.Fatalf("%s: %v", msg.Type, err)
	}
	return resp
}

func TestMembershipVerbsOverWire(t *testing.T) {
	d, _ := startClusterDaemon(t)
	ctl := dialControl(t, d)

	nodesView := func() []core.NodeStatus {
		t.Helper()
		resp := callControl(t, ctl, &protocol.Message{Type: protocol.TypeNodes})
		if !resp.OK {
			t.Fatalf("nodes failed: %s", resp.Error)
		}
		var nodes []core.NodeStatus
		if err := json.Unmarshal([]byte(resp.Data), &nodes); err != nil {
			t.Fatalf("nodes payload: %v", err)
		}
		return nodes
	}

	nodes := nodesView()
	if len(nodes) != 2 || nodes[0].State != "up" || nodes[1].State != "up" {
		t.Fatalf("initial membership = %+v, want 2 up nodes", nodes)
	}

	if resp := callControl(t, ctl, &protocol.Message{Type: protocol.TypeDrain, Device: 0}); !resp.OK {
		t.Fatalf("drain failed: %s", resp.Error)
	}
	if nodes := nodesView(); nodes[0].State != "draining" {
		t.Fatalf("after drain: %+v", nodes[0])
	}
	if resp := callControl(t, ctl, &protocol.Message{Type: protocol.TypeRevive, Device: 0}); !resp.OK {
		t.Fatalf("revive failed: %s", resp.Error)
	}
	if nodes := nodesView(); nodes[0].State != "up" {
		t.Fatalf("after revive: %+v", nodes[0])
	}

	// Unknown node indexes are refused, not panicked on.
	if resp := callControl(t, ctl, &protocol.Message{Type: protocol.TypeDrain, Device: 9}); resp.OK {
		t.Fatal("drain of unknown node succeeded")
	}
}

func TestMembershipVerbsNeedClusterBackend(t *testing.T) {
	d := startDaemon(t, mib(1000)) // single core.State: no membership
	ctl := dialControl(t, d)
	for _, typ := range []protocol.Type{protocol.TypeNodes, protocol.TypeDrain, protocol.TypeRevive} {
		resp := callControl(t, ctl, &protocol.Message{Type: typ})
		if resp.OK {
			t.Fatalf("%s succeeded on a single-node scheduler", typ)
		}
	}
}

// parkedCount reports how many responders the daemon holds parked.
func parkedCount(d *Daemon) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.parked)
}

func waitParked(t *testing.T, d *Daemon, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for parkedCount(d) != n {
		if time.Now().After(deadline) {
			t.Fatalf("parked responders = %d, want %d", parkedCount(d), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFailoverMigratesParkedResponder drives the daemon's failover hook
// through the wire: a container with a parked allocation loses its node,
// the responder is re-keyed onto the survivor's fresh ticket, and when
// capacity frees up there the original caller — still blocked in its
// alloc round trip — receives an accept, never an error, a hang, or a
// silent drop. The migrated container's session file follows it.
func TestFailoverMigratesParkedResponder(t *testing.T) {
	d, clus := startClusterDaemon(t)
	ctl := dialControl(t, d)

	// Spread places c0 → node 0, c1 → node 1, c2 → node 0 (50 MiB grant).
	for _, id := range []string{"c0", "c1", "c2"} {
		if resp := register(t, ctl, id, mib(450)); !resp.OK {
			t.Fatalf("register %s: %s", id, resp.Error)
		}
	}
	c2 := dialContainer(t, registerDirOf(t, d, "c2"))
	type allocResult struct {
		resp *protocol.Message
		err  error
	}
	done := make(chan allocResult, 1)
	go func() {
		resp, err := c2.Call(context.Background(), &protocol.Message{
			Type: protocol.TypeAlloc, Container: "c2", PID: 1, Size: int64(mib(200)),
		})
		done <- allocResult{resp, err}
	}()
	waitParked(t, d, 1)

	if _, err := clus.FailNode(0); err != nil {
		t.Fatal(err)
	}
	// Still parked (node 1 is full): re-keyed, not answered, not lost.
	waitParked(t, d, 1)
	select {
	case r := <-done:
		t.Fatalf("parked alloc answered prematurely: %+v %v", r.resp, r.err)
	default:
	}
	if got := d.Obs().Failovers.Value(); got != 1 {
		t.Fatalf("failovers counter = %d, want 1", got)
	}
	if got := d.Obs().TicketsMigrated.Value(); got != 1 {
		t.Fatalf("migrated-tickets counter = %d, want 1", got)
	}

	// The migrated containers' sessions survived and still recover.
	for _, id := range []core.ContainerID{"c0", "c2"} {
		rec, err := d.sessionRecordFor(id)
		if err != nil {
			t.Fatalf("session record %s after migration: %v", id, err)
		}
		if rec.Limit != int64(mib(450)) {
			t.Fatalf("session %s limit = %v, want 450 MiB", id, rec.Limit)
		}
	}

	// Free the survivor's capacity: closing c1 lets redistribution admit
	// the migrated ticket, answering the original caller.
	if resp := callControl(t, ctl, &protocol.Message{Type: protocol.TypeClose, Container: "c1"}); !resp.OK {
		t.Fatalf("close c1: %s", resp.Error)
	}
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("migrated alloc failed: %v", r.err)
		}
		if !r.resp.OK || r.resp.Decision != protocol.DecisionAccept {
			t.Fatalf("migrated alloc = %+v, want accept", r.resp)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("migrated alloc never answered after capacity freed")
	}
	if n := parkedCount(d); n != 0 {
		t.Fatalf("parked responders after admit = %d, want 0", n)
	}
}

// TestFailoverEvictsWithNodeDownCode pins the fail-closed half: with no
// surviving capacity the parked caller gets an immediate, machine-
// readable node_down error (errors.Is-able as ErrNodeDown across the
// wire), the evicted sessions are discarded, and new registrations fail
// closed with the unavailable code until a node is revived.
func TestFailoverEvictsWithNodeDownCode(t *testing.T) {
	d, clus := startClusterDaemon(t)
	ctl := dialControl(t, d)

	// Drain node 1 up front: everything lands on node 0 and the later
	// failover has no migration target.
	if resp := callControl(t, ctl, &protocol.Message{Type: protocol.TypeDrain, Device: 1}); !resp.OK {
		t.Fatalf("drain: %s", resp.Error)
	}
	for _, id := range []string{"c0", "c2"} {
		if resp := register(t, ctl, id, mib(450)); !resp.OK {
			t.Fatalf("register %s: %s", id, resp.Error)
		}
	}
	c2 := dialContainer(t, registerDirOf(t, d, "c2"))
	done := make(chan *protocol.Message, 1)
	go func() {
		resp, err := c2.Call(context.Background(), &protocol.Message{
			Type: protocol.TypeAlloc, Container: "c2", PID: 1, Size: int64(mib(200)),
		})
		if err != nil {
			done <- nil
			return
		}
		done <- resp
	}()
	waitParked(t, d, 1)

	if _, err := clus.FailNode(0); err != nil {
		t.Fatal(err)
	}
	select {
	case resp := <-done:
		if resp == nil {
			t.Fatal("evicted alloc failed at transport level, want a coded response")
		}
		if resp.OK || resp.Code != protocol.CodeNodeDown {
			t.Fatalf("evicted alloc = %+v, want node_down error", resp)
		}
		if !errors.Is(protocol.ErrFromCode(resp.Code), errs.ErrNodeDown) {
			t.Fatalf("code %q does not map to ErrNodeDown", resp.Code)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("evicted alloc never answered")
	}
	if got := d.Obs().TicketsEvicted.Value(); got != 1 {
		t.Fatalf("evicted-tickets counter = %d, want 1", got)
	}
	for _, id := range []core.ContainerID{"c0", "c2"} {
		if dir, ok := d.sessionDirFor(id); ok {
			t.Fatalf("evicted container %s still tracked at %s", id, dir)
		}
	}

	// Node 0 down, node 1 draining: admission fails closed with the
	// machine-readable unavailable code.
	resp := register(t, ctl, "c9", mib(100))
	if resp.OK {
		t.Fatal("register with no eligible node succeeded")
	}
	if !errors.Is(protocol.ErrFromCode(resp.Code), errs.ErrDaemonUnavailable) {
		t.Fatalf("fail-closed register code %q does not map to ErrDaemonUnavailable", resp.Code)
	}

	// Revive the drained node: service resumes.
	if r := callControl(t, ctl, &protocol.Message{Type: protocol.TypeRevive, Device: 1}); !r.OK {
		t.Fatalf("revive: %s", r.Error)
	}
	if r := register(t, ctl, "c9", mib(100)); !r.OK {
		t.Fatalf("register after revive: %s", r.Error)
	}
}

// registerDirOf rebuilds the response a dialContainer caller needs from
// the daemon's tracked session dir (registration responses are pooled
// and may have been released).
func registerDirOf(t *testing.T, d *Daemon, id string) *protocol.Message {
	t.Helper()
	dir, ok := d.sessionDirFor(core.ContainerID(id))
	if !ok {
		t.Fatalf("no session dir for %s", id)
	}
	return &protocol.Message{SocketDir: dir}
}
