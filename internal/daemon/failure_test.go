package daemon

import (
	"context"
	"errors"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"convgpu/internal/clock"
	"convgpu/internal/core"
	"convgpu/internal/cuda"
	"convgpu/internal/gpu"
	"convgpu/internal/ipc"
	"convgpu/internal/protocol"
	"convgpu/internal/wrapper"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestSuspendDisconnectRedistributes is the satellite regression: a
// wrapper whose allocation is suspended dies (its connection drops);
// the parked ticket must be dropped from the scheduler queue instead of
// pinning it, and the container must be able to come back and allocate
// once memory frees.
func TestSuspendDisconnectRedistributes(t *testing.T) {
	d := startDaemon(t, mib(1000))
	ctl := dialControl(t, d)
	respA := register(t, ctl, "a", mib(700))
	respB := register(t, ctl, "b", mib(600)) // partial 300MiB grant
	cliA := dialContainer(t, respA)

	if resp, err := cliA.Call(context.Background(), &protocol.Message{
		Type: protocol.TypeAlloc, PID: 1, Size: int64(mib(600)),
	}); err != nil || resp.Decision != protocol.DecisionAccept {
		t.Fatalf("a alloc: %+v %v", resp, err)
	}

	// b's allocation cannot fit and suspends; then b's wrapper dies.
	cliB, err := ipc.Dial(filepath.Join(respB.SocketDir, ContainerSocketName))
	if err != nil {
		t.Fatal(err)
	}
	suspended := make(chan error, 1)
	go func() {
		_, err := cliB.Call(context.Background(), &protocol.Message{
			Type: protocol.TypeAlloc, PID: 2, Size: int64(mib(500)),
		})
		suspended <- err
	}()
	waitFor(t, "b suspended", func() bool {
		info, err := d.Core().Info("b")
		return err == nil && info.Pending == 1
	})
	cliB.Close()
	if err := <-suspended; !errors.Is(err, ipc.ErrClosed) {
		t.Fatalf("suspended call err = %v, want ErrClosed", err)
	}
	// The daemon notices the dead connection and drops the ticket.
	waitFor(t, "ticket dropped", func() bool {
		info, err := d.Core().Info("b")
		return err == nil && info.Pending == 0
	})

	// Memory frees (a leaves); a reconnected wrapper for b allocates —
	// nothing of the dead connection ghost-admits or blocks it.
	if resp, err := ctl.Call(context.Background(), &protocol.Message{
		Type: protocol.TypeClose, Container: "a",
	}); err != nil || !resp.OK {
		t.Fatalf("close a: %+v %v", resp, err)
	}
	cliB2 := dialContainer(t, respB)
	resp, err := cliB2.Call(context.Background(), &protocol.Message{
		Type: protocol.TypeAlloc, PID: 2, Size: int64(mib(500)),
	})
	if err != nil || resp.Decision != protocol.DecisionAccept {
		t.Fatalf("b retry after reconnect: %+v %v", resp, err)
	}
	if err := d.Core().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestStaleControlSocketTakeover (satellite): a leftover socket file
// from a crashed daemon must not block startup — but a socket a live
// daemon answers on must.
func TestStaleControlSocketTakeover(t *testing.T) {
	base := filepath.Join(t.TempDir(), "cv")
	st := core.MustNew(core.Config{Capacity: mib(1000)})

	// Simulate the crash leftover: a file nothing listens on.
	if err := os.MkdirAll(base, 0o755); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(base, ControlSocketName)
	ln, err := net.Listen("unix", stale)
	if err != nil {
		t.Fatal(err)
	}
	// Close the listener's fd without unlinking the socket file, the way
	// a SIGKILLed daemon leaves it.
	f, err := ln.(*net.UnixListener).File()
	if err != nil {
		t.Fatal(err)
	}
	ln.(*net.UnixListener).SetUnlinkOnClose(false)
	ln.Close()
	f.Close()
	if _, err := os.Stat(stale); err != nil {
		t.Fatalf("stale socket not in place: %v", err)
	}

	d, err := Start(Config{BaseDir: base, Core: st})
	if err != nil {
		t.Fatalf("takeover of stale socket failed: %v", err)
	}
	// The recovered daemon actually serves.
	ctl := dialControl(t, d)
	if resp := register(t, ctl, "c1", mib(100)); !resp.OK {
		t.Fatalf("register after takeover: %s", resp.Error)
	}

	// A second daemon must refuse to steal the live socket.
	if _, err := Start(Config{BaseDir: base, Core: st}); err == nil {
		t.Fatal("second daemon stole a live control socket")
	}
	d.Close()
}

// TestDaemonRestartRecoversSessions: a daemon restarting with a fresh
// core re-adopts persisted sessions; the wrapper's attach+restore
// replay rebuilds the accounting, and closed sessions stay gone.
func TestDaemonRestartRecoversSessions(t *testing.T) {
	base := filepath.Join(t.TempDir(), "cv")
	st1 := core.MustNew(core.Config{Capacity: mib(1000), ContextOverhead: 1})
	d1, err := Start(Config{BaseDir: base, Core: st1})
	if err != nil {
		t.Fatal(err)
	}
	ctl := dialControl(t, d1)
	respC1 := register(t, ctl, "c1", mib(400))
	register(t, ctl, "c2", mib(100))
	cli := dialContainer(t, respC1)
	for _, m := range []*protocol.Message{
		{Type: protocol.TypeAlloc, PID: 1, Size: int64(mib(100))},
		{Type: protocol.TypeConfirm, PID: 1, Size: int64(mib(100)), Addr: 0xA0},
	} {
		if resp, err := cli.Call(context.Background(), m); err != nil || !resp.OK {
			t.Fatalf("%s: %+v %v", m.Type, resp, err)
		}
	}
	// c2 closes cleanly; its session must not be resurrected.
	if resp, err := ctl.Call(context.Background(), &protocol.Message{
		Type: protocol.TypeClose, Container: "c2",
	}); err != nil || !resp.OK {
		t.Fatalf("close c2: %+v %v", resp, err)
	}
	d1.Close()

	// The daemon restarts with empty accounting (the usual crash case).
	st2 := core.MustNew(core.Config{Capacity: mib(1000), ContextOverhead: 1})
	d2, err := Start(Config{BaseDir: base, Core: st2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d2.Close() })
	info, err := st2.Info("c1")
	if err != nil {
		t.Fatalf("c1 not recovered: %v", err)
	}
	if info.Limit != mib(400) {
		t.Fatalf("recovered limit = %v", info.Limit)
	}
	if _, err := st2.Info("c2"); err == nil {
		t.Fatal("cleanly closed c2 was resurrected")
	}

	// The wrapper reconnects and replays: attach, then restore.
	cli2 := dialContainer(t, respC1)
	for _, m := range []*protocol.Message{
		{Type: protocol.TypeAttach, PID: 1},
		{Type: protocol.TypeRestore, PID: 1, Size: int64(mib(100)), Addr: 0xA0},
	} {
		if resp, err := cli2.Call(context.Background(), m); err != nil || !resp.OK {
			t.Fatalf("%s: %+v %v", m.Type, resp, err)
		}
	}
	info, _ = st2.Info("c1")
	if info.Used != mib(100)+1 {
		t.Fatalf("replayed used = %v, want 100MiB+overhead", info.Used)
	}
	// Re-registering the same container over the control socket is still
	// a duplicate error — idempotency lives in recovery, not register.
	if resp := register(t, ctl2(t, d2), "c1", mib(400)); resp.OK {
		t.Fatal("duplicate register after recovery succeeded")
	}
	if err := st2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func ctl2(t *testing.T, d *Daemon) *ipc.Client {
	t.Helper()
	return dialControl(t, d)
}

// TestLeaseReapsDeadContainer: a container that stops talking (SIGKILL,
// no close signal) is reaped after its lease expires, releasing its
// grant; a container that heartbeats stays alive.
func TestLeaseReapsDeadContainer(t *testing.T) {
	clk := clock.NewManual()
	st := core.MustNew(core.Config{Capacity: mib(1000), ContextOverhead: 1, Clock: clk})
	const lease = time.Minute
	d, err := Start(Config{
		BaseDir: filepath.Join(t.TempDir(), "cv"),
		Core:    st,
		Lease:   lease,
		Clock:   clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	ctl := dialControl(t, d)
	respDead := register(t, ctl, "dead", mib(400))
	respLive := register(t, ctl, "live", mib(300))
	cliDead := dialContainer(t, respDead)
	cliLive := dialContainer(t, respLive)

	if resp, err := cliDead.Call(context.Background(), &protocol.Message{
		Type: protocol.TypeAlloc, PID: 1, Size: int64(mib(200)),
	}); err != nil || resp.Decision != protocol.DecisionAccept {
		t.Fatalf("dead alloc: %+v %v", resp, err)
	}
	cliDead.Close() // SIGKILL: no procexit, no close signal

	// Drive the reap loop: each advance fires one lease check. The live
	// container heartbeats between checks and must survive; the dead one
	// passes the full lease silently and must be reaped.
	step := lease / 4
	for i := 0; i < 6; i++ {
		waitFor(t, "reap loop armed", func() bool { return clk.Pending() > 0 })
		clk.Advance(step)
		if resp, err := cliLive.Call(context.Background(), &protocol.Message{
			Type: protocol.TypeHeartbeat, PID: 2,
		}); err != nil || !resp.OK {
			t.Fatalf("heartbeat: %+v %v", resp, err)
		}
	}
	waitFor(t, "dead container reaped", func() bool {
		_, err := st.Info("dead")
		return err != nil
	})
	if _, err := st.Info("live"); err != nil {
		t.Fatalf("heartbeating container was reaped: %v", err)
	}
	// The dead container's grant (and its allocation) returned to the pool.
	if free := st.PoolFree(); free != mib(1000)-mib(300) {
		t.Fatalf("pool = %v after reap, want capacity minus live grant", free)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDaemonKillRestartWrapperReconnects is the acceptance integration
// test: a wrapper module running over a Reconnector keeps working
// across a daemon restart — the in-flight failure is surfaced
// fail-closed, the reconnect happens within the backoff bound, the
// replayed session is not double-counted, and Σ grants stays within
// capacity.
func TestDaemonKillRestartWrapperReconnects(t *testing.T) {
	base := filepath.Join(t.TempDir(), "cv")
	st1 := core.MustNew(core.Config{Capacity: mib(1000), ContextOverhead: 1})
	d1, err := Start(Config{BaseDir: base, Core: st1})
	if err != nil {
		t.Fatal(err)
	}
	ctl := dialControl(t, d1)
	resp := register(t, ctl, "c1", mib(500))
	sock := filepath.Join(resp.SocketDir, ContainerSocketName)

	dev := gpu.New(gpu.K20m())
	rt := cuda.NewRuntime(dev, 7)
	var mod *wrapper.Module
	r := ipc.NewReconnector(ipc.ReconnectConfig{
		Network: "unix",
		Addr:    sock,
		Backoff: ipc.Backoff{Base: 2 * time.Millisecond, Max: 50 * time.Millisecond},
		OnReconnect: func(c *ipc.Client) error {
			return mod.ReplayState(context.Background(), c)
		},
		Seed: 42,
	})
	defer r.Close()
	mod = wrapper.New(rt, r, 7)

	if _, err := mod.Malloc(mib(100)); err != nil {
		t.Fatal(err)
	}
	used1, _ := st1.Info("c1")
	devBase := dev.Used() // 100MiB plus the simulated CUDA context

	d1.Close() // the daemon dies with the wrapper's session live

	// Calls against the dead daemon fail closed — the CUDA OOM error,
	// not a silent local grant.
	if _, err := mod.Malloc(mib(50)); !errors.Is(err, cuda.ErrorMemoryAllocation) {
		t.Fatalf("alloc against dead daemon: %v, want cudaErrorMemoryAllocation", err)
	}

	// Restart with a fresh core; the wrapper must reconnect, replay, and
	// serve new allocations within the backoff bound.
	st2 := core.MustNew(core.Config{Capacity: mib(1000), ContextOverhead: 1})
	d2, err := Start(Config{BaseDir: base, Core: st2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d2.Close() })

	start := time.Now()
	var allocErr error
	for time.Since(start) < 5*time.Second {
		if _, allocErr = mod.Malloc(mib(50)); allocErr == nil {
			break
		}
	}
	if allocErr != nil {
		t.Fatalf("wrapper never recovered: %v", allocErr)
	}
	info, err := st2.Info("c1")
	if err != nil {
		t.Fatal(err)
	}
	// Replayed 100MiB + new 50MiB + one context overhead — the replay
	// did not double-count the old allocation or the process overhead.
	if want := used1.Used + mib(50); info.Used != want {
		t.Fatalf("used after restart = %v, want %v", info.Used, want)
	}
	if info.Grant > mib(500) || info.Grant > mib(1000) {
		t.Fatalf("grant after restart = %v exceeds bounds", info.Grant)
	}
	if err := st2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The device truly holds both allocations — and only them: the
	// failed call against the dead daemon allocated nothing.
	if got := dev.Used(); got != devBase+mib(50) {
		t.Fatalf("device used = %v, want %v", got, devBase+mib(50))
	}
}
