package daemon

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/core"
	"convgpu/internal/ipc"
	"convgpu/internal/leak"
	"convgpu/internal/protocol"
)

func mib(n int) bytesize.Size { return bytesize.Size(n) * bytesize.MiB }

func startDaemon(t *testing.T, capacity bytesize.Size) *Daemon {
	t.Helper()
	// Registered first, checked last: the daemon closed by the cleanup
	// below must leave no goroutine behind.
	leak.Check(t)
	st := core.MustNew(core.Config{Capacity: capacity, ContextOverhead: 1})
	d, err := Start(Config{BaseDir: filepath.Join(t.TempDir(), "cv"), Core: st})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func dialControl(t *testing.T, d *Daemon) *ipc.Client {
	t.Helper()
	cli, err := ipc.Dial(d.ControlSocket())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return cli
}

func register(t *testing.T, ctl *ipc.Client, id string, limit bytesize.Size) *protocol.Message {
	t.Helper()
	resp, err := ctl.Call(context.Background(), &protocol.Message{
		Type: protocol.TypeRegister, Container: id, Limit: int64(limit),
	})
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func dialContainer(t *testing.T, resp *protocol.Message) *ipc.Client {
	t.Helper()
	cli, err := ipc.Dial(filepath.Join(resp.SocketDir, ContainerSocketName))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return cli
}

func TestStartValidation(t *testing.T) {
	if _, err := Start(Config{}); err == nil {
		t.Error("Start without core succeeded")
	}
	st := core.MustNew(core.Config{Capacity: mib(100)})
	if _, err := Start(Config{Core: st}); err == nil {
		t.Error("Start without base dir succeeded")
	}
}

func TestRegisterPreparesContainerDir(t *testing.T) {
	d := startDaemon(t, mib(1000))
	ctl := dialControl(t, d)
	resp := register(t, ctl, "c1", mib(400))
	if !resp.OK {
		t.Fatalf("register failed: %s", resp.Error)
	}
	if resp.Granted != int64(mib(400)) {
		t.Fatalf("granted = %d, want full 400MiB", resp.Granted)
	}
	if resp.SocketDir == "" {
		t.Fatal("no socket dir returned")
	}
	// The directory must contain the wrapper module copy and the socket.
	mod, err := os.ReadFile(filepath.Join(resp.SocketDir, WrapperModuleName))
	if err != nil {
		t.Fatalf("wrapper module missing: %v", err)
	}
	if !strings.Contains(string(mod), "c1") {
		t.Fatalf("wrapper module content = %q", mod)
	}
	if _, err := os.Stat(filepath.Join(resp.SocketDir, ContainerSocketName)); err != nil {
		t.Fatalf("container socket missing: %v", err)
	}
}

func TestRegisterDuplicateFails(t *testing.T) {
	d := startDaemon(t, mib(1000))
	ctl := dialControl(t, d)
	register(t, ctl, "c1", mib(100))
	resp := register(t, ctl, "c1", mib(100))
	if resp.OK {
		t.Fatal("duplicate register succeeded")
	}
	if !strings.Contains(resp.Error, "already registered") {
		t.Fatalf("error = %q", resp.Error)
	}
}

func TestRegisterOverCapacityFails(t *testing.T) {
	d := startDaemon(t, mib(1000))
	ctl := dialControl(t, d)
	resp := register(t, ctl, "big", mib(2000))
	if resp.OK {
		t.Fatal("over-capacity register succeeded")
	}
}

func TestAllocAcceptRejectFlow(t *testing.T) {
	d := startDaemon(t, mib(1000))
	ctl := dialControl(t, d)
	cc := dialContainer(t, register(t, ctl, "c1", mib(400)))

	ctx := context.Background()
	resp, err := cc.Call(ctx, &protocol.Message{Type: protocol.TypeAlloc, PID: 1, Size: int64(mib(100)), API: "cudaMalloc"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Decision != protocol.DecisionAccept {
		t.Fatalf("alloc resp = %+v", resp)
	}
	resp, err = cc.Call(ctx, &protocol.Message{Type: protocol.TypeConfirm, PID: 1, Size: int64(mib(100)), Addr: 0xAA})
	if err != nil || !resp.OK {
		t.Fatalf("confirm resp = %+v err=%v", resp, err)
	}
	// Over the container limit: reject.
	resp, err = cc.Call(ctx, &protocol.Message{Type: protocol.TypeAlloc, PID: 1, Size: int64(mib(350))})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Decision != protocol.DecisionReject {
		t.Fatalf("over-limit resp = %+v, want reject", resp)
	}
	// MemInfo: the virtualized view.
	resp, err = cc.Call(ctx, &protocol.Message{Type: protocol.TypeMemInfo})
	if err != nil || !resp.OK {
		t.Fatal(err)
	}
	if resp.Total != int64(mib(400)) {
		t.Fatalf("meminfo total = %d, want the 400MiB limit", resp.Total)
	}
	// Free returns the size.
	resp, err = cc.Call(ctx, &protocol.Message{Type: protocol.TypeFree, PID: 1, Addr: 0xAA})
	if err != nil || !resp.OK {
		t.Fatalf("free resp = %+v err=%v", resp, err)
	}
	if resp.Free != int64(mib(100)) {
		t.Fatalf("free size = %d", resp.Free)
	}
}

func TestSuspendResumeAcrossContainers(t *testing.T) {
	d := startDaemon(t, mib(1000))
	ctl := dialControl(t, d)
	ccA := dialContainer(t, register(t, ctl, "a", mib(700)))
	respB := register(t, ctl, "b", mib(600)) // grant 300 partial
	ccB := dialContainer(t, respB)

	ctx := context.Background()
	if resp, err := ccA.Call(ctx, &protocol.Message{Type: protocol.TypeAlloc, PID: 1, Size: int64(mib(600))}); err != nil || resp.Decision != protocol.DecisionAccept {
		t.Fatalf("a's alloc: %+v %v", resp, err)
	}

	// b's 500 MiB request suspends: the call blocks.
	done := make(chan *protocol.Message, 1)
	go func() {
		resp, err := ccB.Call(ctx, &protocol.Message{Type: protocol.TypeAlloc, PID: 2, Size: int64(mib(500))})
		if err == nil {
			done <- resp
		} else {
			close(done)
		}
	}()
	select {
	case <-done:
		t.Fatal("suspended alloc returned early")
	case <-time.After(50 * time.Millisecond):
	}

	// The plugin reports a's exit: close signal. b resumes.
	if resp, err := ctl.Call(ctx, &protocol.Message{Type: protocol.TypeClose, Container: "a"}); err != nil || !resp.OK {
		t.Fatalf("close: %+v %v", resp, err)
	}
	select {
	case resp, ok := <-done:
		if !ok {
			t.Fatal("suspended alloc failed")
		}
		if resp.Decision != protocol.DecisionAccept {
			t.Fatalf("resumed resp = %+v", resp)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("suspended alloc never resumed after close")
	}
}

func TestCloseCancelsSuspendedRequests(t *testing.T) {
	d := startDaemon(t, mib(1000))
	ctl := dialControl(t, d)
	ccA := dialContainer(t, register(t, ctl, "a", mib(700)))
	ccB := dialContainer(t, register(t, ctl, "b", mib(600)))

	ctx := context.Background()
	if _, err := ccA.Call(ctx, &protocol.Message{Type: protocol.TypeAlloc, PID: 1, Size: int64(mib(600))}); err != nil {
		t.Fatal(err)
	}
	done := make(chan *protocol.Message, 1)
	go func() {
		resp, err := ccB.Call(ctx, &protocol.Message{Type: protocol.TypeAlloc, PID: 2, Size: int64(mib(500))})
		if err == nil {
			done <- resp
		} else {
			close(done)
		}
	}()
	time.Sleep(50 * time.Millisecond)
	// b itself is closed while suspended: its parked request is released
	// with an error.
	if resp, err := ctl.Call(ctx, &protocol.Message{Type: protocol.TypeClose, Container: "b"}); err != nil || !resp.OK {
		t.Fatalf("close: %+v %v", resp, err)
	}
	select {
	case resp, ok := <-done:
		if ok && resp.OK {
			t.Fatalf("cancelled request got OK response: %+v", resp)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled request never released")
	}
}

func TestProcExitReleasesMemory(t *testing.T) {
	d := startDaemon(t, mib(1000))
	ctl := dialControl(t, d)
	cc := dialContainer(t, register(t, ctl, "c", mib(400)))
	ctx := context.Background()
	if _, err := cc.Call(ctx, &protocol.Message{Type: protocol.TypeAlloc, PID: 1, Size: int64(mib(100))}); err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Call(ctx, &protocol.Message{Type: protocol.TypeConfirm, PID: 1, Size: int64(mib(100)), Addr: 0x1}); err != nil {
		t.Fatal(err)
	}
	resp, err := cc.Call(ctx, &protocol.Message{Type: protocol.TypeProcExit, PID: 1})
	if err != nil || !resp.OK {
		t.Fatalf("procexit: %+v %v", resp, err)
	}
	if bytesize.Size(resp.Free) != mib(100)+1 { // alloc + 1B overhead
		t.Fatalf("procexit released %d", resp.Free)
	}
	info, err := d.Core().Info("c")
	if err != nil {
		t.Fatal(err)
	}
	if info.Used != 0 {
		t.Fatalf("used after procexit = %v", info.Used)
	}
}

func TestAbortReturnsCharge(t *testing.T) {
	d := startDaemon(t, mib(1000))
	ctl := dialControl(t, d)
	cc := dialContainer(t, register(t, ctl, "c", mib(400)))
	ctx := context.Background()
	if _, err := cc.Call(ctx, &protocol.Message{Type: protocol.TypeAlloc, PID: 1, Size: int64(mib(100))}); err != nil {
		t.Fatal(err)
	}
	resp, err := cc.Call(ctx, &protocol.Message{Type: protocol.TypeAbort, PID: 1, Size: int64(mib(100))})
	if err != nil || !resp.OK {
		t.Fatalf("abort: %+v %v", resp, err)
	}
	info, _ := d.Core().Info("c")
	if info.Used != 1 {
		t.Fatalf("used after abort = %v, want 1B overhead", info.Used)
	}
}

func TestUnknownContainerErrors(t *testing.T) {
	d := startDaemon(t, mib(1000))
	ctl := dialControl(t, d)
	resp, err := ctl.Call(context.Background(), &protocol.Message{Type: protocol.TypeClose, Container: "ghost"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Fatal("close of unknown container succeeded")
	}
}

func TestControlRejectsContainerMessages(t *testing.T) {
	d := startDaemon(t, mib(1000))
	ctl := dialControl(t, d)
	resp, err := ctl.Call(context.Background(), &protocol.Message{Type: protocol.TypeAlloc, PID: 1, Size: 10})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Fatal("alloc on control socket succeeded")
	}
}

func TestDaemonCloseReleasesParked(t *testing.T) {
	d := startDaemon(t, mib(1000))
	ctl := dialControl(t, d)
	ccA := dialContainer(t, register(t, ctl, "a", mib(700)))
	ccB := dialContainer(t, register(t, ctl, "b", mib(600)))
	ctx := context.Background()
	if _, err := ccA.Call(ctx, &protocol.Message{Type: protocol.TypeAlloc, PID: 1, Size: int64(mib(600))}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		ccB.Call(ctx, &protocol.Message{Type: protocol.TypeAlloc, PID: 2, Size: int64(mib(500))})
	}()
	time.Sleep(50 * time.Millisecond)
	d.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("parked request survived daemon shutdown")
	}
}

func TestContainerDirSanitized(t *testing.T) {
	d := startDaemon(t, mib(1000))
	ctl := dialControl(t, d)
	resp := register(t, ctl, "../evil/../../name", mib(10))
	if !resp.OK {
		t.Fatalf("register: %s", resp.Error)
	}
	base := filepath.Clean(filepath.Join(resp.SocketDir, ".."))
	if filepath.Base(base) != "containers" {
		t.Fatalf("socket dir escaped the containers directory: %s", resp.SocketDir)
	}
}
