package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/core"
	"convgpu/internal/leak"
	"convgpu/internal/obs"
	"convgpu/internal/protocol"
	"convgpu/internal/wal"
)

// openTestWAL opens (or reopens) a log for daemon tests. SyncNone keeps
// the suites fast; durability itself is covered by the wal package.
func openTestWAL(t *testing.T, dir string) *wal.Log {
	t.Helper()
	l, err := wal.Open(wal.Options{Dir: dir, Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// startWALDaemon starts a daemon over base with the given open log.
func startWALDaemon(t *testing.T, base string, l *wal.Log, capacity bytesize.Size) *Daemon {
	t.Helper()
	st := core.MustNew(core.Config{Capacity: capacity, ContextOverhead: 1})
	d, err := Start(Config{BaseDir: base, Core: st, WAL: l})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestWALRecoveryRoundTrip is the tentpole flow: register against a
// WAL-backed daemon, restart it, and find exactly the open sessions
// back — closed ones stay closed — without a single session.json on
// disk.
func TestWALRecoveryRoundTrip(t *testing.T) {
	leak.Check(t)
	base := filepath.Join(t.TempDir(), "cv")
	walDir := filepath.Join(t.TempDir(), "wal")

	l1 := openTestWAL(t, walDir)
	d1 := startWALDaemon(t, base, l1, mib(1000))
	ctl := dialControl(t, d1)
	for _, id := range []string{"c1", "c2", "c3"} {
		if resp := register(t, ctl, id, mib(200)); !resp.OK {
			t.Fatalf("register %s: %s", id, resp.Error)
		}
	}
	resp, err := ctl.Call(context.Background(), &protocol.Message{Type: protocol.TypeClose, Container: "c2"})
	if err != nil || !resp.OK {
		t.Fatalf("close c2: %v %+v", err, resp)
	}
	// WAL mode must not write session.json files.
	for _, id := range []string{"c1", "c2", "c3"} {
		if _, err := os.Stat(filepath.Join(base, "containers", id, sessionFileName)); !os.IsNotExist(err) {
			t.Errorf("session.json written for %s in WAL mode (err=%v)", id, err)
		}
	}
	d1.Close()
	l1.Close()

	l2 := openTestWAL(t, walDir)
	defer l2.Close()
	d2 := startWALDaemon(t, base, l2, mib(1000))
	defer d2.Close()
	for _, id := range []core.ContainerID{"c1", "c3"} {
		if _, err := d2.Core().Info(id); err != nil {
			t.Errorf("session %s not recovered: %v", id, err)
		}
	}
	if _, err := d2.Core().Info("c2"); err == nil {
		t.Error("closed session c2 was recovered")
	}

	// The recovered sockets serve: a wrapper can re-attach.
	page := d2.Sessions("", 0)
	if page.Total != 2 || len(page.Sessions) != 2 {
		t.Fatalf("sessions page = %+v, want 2 entries", page)
	}
	if page.Sessions[0].Container != "c1" || page.Sessions[1].Container != "c3" {
		t.Errorf("sessions page order = %+v", page.Sessions)
	}
}

// TestWALLegacyImport boots a WAL daemon over a base directory a
// pre-WAL daemon populated: the session.json records are imported into
// the empty log (and left in place for rollback), and a second restart
// recovers from the log alone.
func TestWALLegacyImport(t *testing.T) {
	leak.Check(t)
	base := filepath.Join(t.TempDir(), "cv")
	walDir := filepath.Join(t.TempDir(), "wal")

	// Pre-WAL daemon writes the legacy records.
	d0, err := Start(Config{BaseDir: base, Core: core.MustNew(core.Config{Capacity: mib(1000), ContextOverhead: 1})})
	if err != nil {
		t.Fatal(err)
	}
	ctl := dialControl(t, d0)
	register(t, ctl, "old1", mib(300))
	register(t, ctl, "old2", mib(200))
	d0.Close()

	l1 := openTestWAL(t, walDir)
	d1 := startWALDaemon(t, base, l1, mib(1000))
	for _, id := range []core.ContainerID{"old1", "old2"} {
		if _, err := d1.Core().Info(id); err != nil {
			t.Errorf("imported session %s missing: %v", id, err)
		}
		// Import leaves the legacy records readable for rollback.
		if _, err := os.Stat(filepath.Join(base, "containers", string(id), sessionFileName)); err != nil {
			t.Errorf("legacy record %s removed by import: %v", id, err)
		}
	}
	if l1.LastSeq() == 0 {
		t.Fatal("import appended nothing")
	}
	d1.Close()
	l1.Close()

	// Second WAL boot: delete the legacy files to prove recovery now
	// reads the log, not session.json.
	for _, id := range []string{"old1", "old2"} {
		os.Remove(filepath.Join(base, "containers", id, sessionFileName))
	}
	l2 := openTestWAL(t, walDir)
	defer l2.Close()
	d2 := startWALDaemon(t, base, l2, mib(1000))
	defer d2.Close()
	for _, id := range []core.ContainerID{"old1", "old2"} {
		if _, err := d2.Core().Info(id); err != nil {
			t.Errorf("session %s lost after legacy files removed: %v", id, err)
		}
	}
}

// TestWALRecoveryDiscardDurable: a session the restarted core refuses
// is evicted into the log, so an even later restart (with capacity
// restored) does not resurrect it — the refusal itself is durable.
func TestWALRecoveryDiscardDurable(t *testing.T) {
	leak.Check(t)
	base := filepath.Join(t.TempDir(), "cv")
	walDir := filepath.Join(t.TempDir(), "wal")

	l1 := openTestWAL(t, walDir)
	d1 := startWALDaemon(t, base, l1, mib(1000))
	ctl := dialControl(t, d1)
	register(t, ctl, "big", mib(800))
	d1.Close()
	l1.Close()

	// Restart on a shrunken GPU: big no longer fits.
	logs := &logCapture{}
	o := obs.New(obs.Config{Algorithm: core.AlgFIFO})
	l2 := openTestWAL(t, walDir)
	d2, err := Start(Config{
		BaseDir: base,
		Core:    core.MustNew(core.Config{Capacity: mib(500), ContextOverhead: 1}),
		Obs:     o, Logf: logs.logf, WAL: l2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d2.Core().Info("big"); err == nil {
		t.Error("over-limit session was recovered")
	}
	if got := o.SessionsDiscarded.Value(); got != 1 {
		t.Errorf("SessionsDiscarded = %d, want 1", got)
	}
	if out := logs.joined(); !strings.Contains(out, `discarded session "big": registration refused`) {
		t.Errorf("missing discard log; got:\n%s", out)
	}
	d2.Close()
	l2.Close()

	// Capacity restored: the evict record must keep big gone.
	l3 := openTestWAL(t, walDir)
	defer l3.Close()
	d3 := startWALDaemon(t, base, l3, mib(1000))
	defer d3.Close()
	if _, err := d3.Core().Info("big"); err == nil {
		t.Error("evicted session resurrected after capacity restored")
	}
}

// TestWALLeaseExpireDurable: a lease-reaped session must not come back
// on restart — the reaper's close is appended like any other.
func TestWALLeaseExpireDurable(t *testing.T) {
	leak.Check(t)
	base := filepath.Join(t.TempDir(), "cv")
	walDir := filepath.Join(t.TempDir(), "wal")

	l1 := openTestWAL(t, walDir)
	d1 := startWALDaemon(t, base, l1, mib(1000))
	ctl := dialControl(t, d1)
	register(t, ctl, "quiet", mib(200))
	// Reap through the same path reapLoop takes.
	if _, err := d1.closeContainerKind("quiet", wal.KindLeaseExpire); err != nil {
		t.Fatal(err)
	}
	d1.Close()
	l1.Close()

	l2 := openTestWAL(t, walDir)
	defer l2.Close()
	d2 := startWALDaemon(t, base, l2, mib(1000))
	defer d2.Close()
	if _, err := d2.Core().Info("quiet"); err == nil {
		t.Error("lease-expired session recovered")
	}
}

// TestSessionsVerbPaging drives the sessions control verb through its
// cursor: pages of 2 over 5 sessions, in order, no overlap.
func TestSessionsVerbPaging(t *testing.T) {
	d := startDaemon(t, mib(1000))
	ctl := dialControl(t, d)
	for _, id := range []string{"a1", "a2", "a3", "a4", "a5"} {
		register(t, ctl, id, mib(100))
	}
	var got []string
	after := ""
	for {
		resp, err := ctl.Call(context.Background(), &protocol.Message{
			Type: protocol.TypeSessions, Container: after, Size: 2,
		})
		if err != nil || !resp.OK {
			t.Fatalf("sessions: %v %+v", err, resp)
		}
		var page SessionPage
		if err := json.Unmarshal([]byte(resp.Data), &page); err != nil {
			t.Fatal(err)
		}
		if page.Total != 5 {
			t.Fatalf("page total = %d, want 5", page.Total)
		}
		for _, s := range page.Sessions {
			got = append(got, s.Container)
			// Live-core pages carry usage detail.
			if s.Limit != int64(mib(100)) {
				t.Errorf("session %s limit = %d", s.Container, s.Limit)
			}
		}
		if !page.More {
			break
		}
		after = page.NextAfter
	}
	if want := []string{"a1", "a2", "a3", "a4", "a5"}; strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("paged sessions = %v, want %v", got, want)
	}
}

// TestOpsVerb covers the ops control verb: empty list on a fresh
// daemon, error for an unknown ID.
func TestOpsVerb(t *testing.T) {
	d := startDaemon(t, mib(100))
	ctl := dialControl(t, d)
	resp, err := ctl.Call(context.Background(), &protocol.Message{Type: protocol.TypeOps})
	if err != nil || !resp.OK {
		t.Fatalf("ops: %v %+v", err, resp)
	}
	var ops []json.RawMessage
	if err := json.Unmarshal([]byte(resp.Data), &ops); err != nil {
		t.Fatalf("ops payload %q: %v", resp.Data, err)
	}
	if len(ops) != 0 {
		t.Errorf("fresh daemon lists %d operations", len(ops))
	}
	resp, err = ctl.Call(context.Background(), &protocol.Message{Type: protocol.TypeOps, Container: "op-404"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Error("unknown operation id answered OK")
	}
}

// TestTraceVerbPages proves the 64 KiB one-frame trace cap is gone:
// with far more events than one frame's cap, paging with the After
// cursor retrieves every retained event.
func TestTraceVerbPages(t *testing.T) {
	d := startDaemon(t, mib(4000))
	ctl := dialControl(t, d)
	register(t, ctl, "c1", mib(1))
	// Stuff the ring well past the per-frame event cap without paying a
	// socket per event.
	tr := d.Obs().Tracer()
	for i := 0; i < 600; i++ {
		tr.RecordAdmin(time.Now(), "test_fill", fmt.Sprintf("req-%d", i), "filler")
	}
	total := tr.Len()
	if total <= maxTraceEvents {
		t.Fatalf("test setup: only %d events retained", total)
	}
	var events int
	after := uint64(0)
	pages := 0
	for {
		resp, err := ctl.Call(context.Background(), &protocol.Message{Type: protocol.TypeTrace, After: after})
		if err != nil || !resp.OK {
			t.Fatalf("trace: %v %+v", err, resp)
		}
		var dump obs.TraceDump
		if err := json.Unmarshal([]byte(resp.Data), &dump); err != nil {
			t.Fatal(err)
		}
		if len(dump.Events) > maxTraceEvents {
			t.Fatalf("page holds %d events, over the frame cap %d", len(dump.Events), maxTraceEvents)
		}
		events += len(dump.Events)
		pages++
		if !dump.More {
			break
		}
		after = dump.NextAfter
	}
	if events != total {
		t.Errorf("paged %d events, ring holds %d", events, total)
	}
	if pages < 3 {
		t.Errorf("expected several pages, got %d", pages)
	}
}

// TestWALAdminAccessors drives the daemon methods the HTTP admin plane
// fronts — WAL stats/snapshot/compact, the ops manager, node verbs on
// a single-node backend, and the JSON dump — directly.
func TestWALAdminAccessors(t *testing.T) {
	leak.Check(t)
	base := filepath.Join(t.TempDir(), "cv")
	l := openTestWAL(t, filepath.Join(t.TempDir(), "wal"))
	defer l.Close()
	d := startWALDaemon(t, base, l, mib(1000))
	defer d.Close()
	ctl := dialControl(t, d)
	register(t, ctl, "acc", mib(200))

	if d.Ops() == nil {
		t.Fatal("Ops() is nil on a started daemon")
	}
	stats, ok := d.WALStats()
	if !ok || stats.LastSeq == 0 || stats.Sessions != 1 {
		t.Fatalf("WALStats = %+v ok=%v", stats, ok)
	}
	seq, err := d.SnapshotWAL()
	if err != nil || seq == 0 {
		t.Fatalf("SnapshotWAL = %d, %v", seq, err)
	}
	after, err := d.CompactWAL()
	if err != nil || after.Sessions != 1 {
		t.Fatalf("CompactWAL = %+v, %v", after, err)
	}
	// Node verbs on a single-node scheduler refuse with the membership
	// sentinel the admin plane maps to 404 / failed operations.
	if _, err := d.NodeStatuses(); !errors.Is(err, errNoMembership) {
		t.Errorf("NodeStatuses error = %v", err)
	}
	if err := d.DrainNode(0); !errors.Is(err, errNoMembership) {
		t.Errorf("DrainNode error = %v", err)
	}
	if err := d.ReviveNode(0); !errors.Is(err, errNoMembership) {
		t.Errorf("ReviveNode error = %v", err)
	}
	if _, err := d.FailNode(0); !errors.Is(err, errNoMembership) {
		t.Errorf("FailNode error = %v", err)
	}
	data, err := d.DumpJSON(10)
	if err != nil || !json.Valid(data) {
		t.Fatalf("DumpJSON: %v (%.40s)", err, data)
	}

	// A WAL-less daemon reports no WAL and refuses the WAL verbs.
	d2 := startDaemon(t, mib(100))
	if _, ok := d2.WALStats(); ok {
		t.Error("WALStats ok on a WAL-less daemon")
	}
	if _, err := d2.SnapshotWAL(); err == nil {
		t.Error("SnapshotWAL succeeded without a WAL")
	}
	if _, err := d2.CompactWAL(); err == nil {
		t.Error("CompactWAL succeeded without a WAL")
	}
}

// TestWALAuditTrail drives allocation traffic against a WAL daemon and
// checks the audit kinds land in the log without disturbing the fold.
func TestWALAuditTrail(t *testing.T) {
	leak.Check(t)
	base := filepath.Join(t.TempDir(), "cv")
	l := openTestWAL(t, filepath.Join(t.TempDir(), "wal"))
	defer l.Close()
	d := startWALDaemon(t, base, l, mib(1000))
	defer d.Close()
	ctl := dialControl(t, d)
	cc := dialContainer(t, register(t, ctl, "aud", mib(400)))
	ctx := context.Background()

	resp, err := cc.Call(ctx, &protocol.Message{Type: protocol.TypeAlloc, PID: 1, Size: int64(mib(100)), API: "cudaMalloc"})
	if err != nil || resp.Decision != protocol.DecisionAccept {
		t.Fatalf("alloc: %v %+v", err, resp)
	}
	if _, err := cc.Call(ctx, &protocol.Message{Type: protocol.TypeConfirm, PID: 1, Size: int64(mib(100)), Addr: 0xA1}); err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Call(ctx, &protocol.Message{Type: protocol.TypeFree, PID: 1, Addr: 0xA1}); err != nil {
		t.Fatal(err)
	}
	// Over-limit alloc: rejected, audited.
	resp, err = cc.Call(ctx, &protocol.Message{Type: protocol.TypeAlloc, PID: 1, Size: int64(mib(900))})
	if err != nil || resp.Decision != protocol.DecisionReject {
		t.Fatalf("over-limit alloc: %v %+v", err, resp)
	}

	seqBefore := l.LastSeq()
	if seqBefore < 4 {
		t.Fatalf("expected audit records beyond the register, LastSeq = %d", seqBefore)
	}
	// Audit records never change the fold: still exactly one session.
	sessions := l.Sessions()
	if len(sessions) != 1 || sessions[0].Container != "aud" || sessions[0].Limit != int64(mib(400)) {
		t.Fatalf("fold disturbed by audit traffic: %+v", sessions)
	}
}

// TestWALAppendFailureRefusesRegister: when the log cannot take the
// append, the registration must not be acknowledged and the core must
// not keep the admission — append-before-ack, strictly.
func TestWALAppendFailureRefusesRegister(t *testing.T) {
	leak.Check(t)
	base := filepath.Join(t.TempDir(), "cv")
	l := openTestWAL(t, filepath.Join(t.TempDir(), "wal"))
	d := startWALDaemon(t, base, l, mib(1000))
	defer d.Close()
	ctl := dialControl(t, d)

	// Kill the log underneath the daemon: the next append fails.
	l.Close()
	resp := register(t, ctl, "lost", mib(100))
	if resp.OK {
		t.Fatal("register acknowledged with a dead WAL")
	}
	if resp.Code != protocol.CodeUnavailable {
		t.Errorf("refusal code = %q, want %q", resp.Code, protocol.CodeUnavailable)
	}
	if _, err := d.Core().Info("lost"); err == nil {
		t.Error("core kept the admission after the append failed")
	}
}
