// Control-socket introspection: a running daemon answers stats, trace
// and dump requests so operators can ask a live scheduler "who holds
// what, who is suspended, and where is latency going" without stopping
// it. Payloads travel as a JSON document in the response's Data field,
// bounded so every response fits one IPC frame.

package daemon

import (
	"encoding/json"

	"convgpu/internal/obs"
	"convgpu/internal/protocol"
)

// maxTraceEvents caps the events in one trace/dump response. The IPC
// transport rejects frames over ipc.MaxLine (64 KiB); ~160 bytes per
// encoded event keeps 256 of them safely inside that with headroom for
// JSON-string escaping of the payload.
const maxTraceEvents = 256

// introspect answers a stats, trace or dump request. A caller may
// shrink (but not exceed) the trace-event cap by setting the request's
// Size field.
func (d *Daemon) introspect(msg *protocol.Message, respond func(*protocol.Message)) {
	limit := maxTraceEvents
	if msg.Size > 0 && msg.Size < int64(limit) {
		limit = int(msg.Size)
	}
	var (
		data []byte
		err  error
	)
	switch msg.Type {
	case protocol.TypeStats:
		data, err = d.obs.StatsJSON()
	case protocol.TypeTrace:
		// Cursor-paged: the request's After field carries the last Seq
		// the caller saw, so a trace longer than one IPC frame is
		// retrieved whole across several requests instead of silently
		// truncated to the newest window (the old DumpLimit behavior).
		data, err = d.obs.Tracer().DumpPage(msg.Container, msg.After, limit)
	case protocol.TypeDump:
		data, err = d.dumpJSON(limit)
	}
	if err != nil {
		respond(protocol.ErrorResponse(msg, "daemon: introspection: %v", err))
		return
	}
	m := protocol.Response(msg)
	m.Data = string(data)
	respond(m)
}

// DumpJSON renders the full state dump (the dump control verb's
// payload) with at most traceLimit trace events — the admin HTTP
// plane serves it on /v1/dump.
func (d *Daemon) DumpJSON(traceLimit int) ([]byte, error) {
	if traceLimit <= 0 || traceLimit > maxTraceEvents {
		traceLimit = maxTraceEvents
	}
	return d.dumpJSON(traceLimit)
}

// dumpPayload is the `dump` document: scheduler identity and pool
// state, per-container snapshot, the full metric snapshot, and the
// tail of the event trace.
type dumpPayload struct {
	Algorithm  string            `json:"algorithm"`
	Capacity   int64             `json:"capacity"`
	PoolFree   int64             `json:"pool_free"`
	Devices    []deviceDump      `json:"devices"`
	Containers []containerDump   `json:"containers"`
	Metrics    []obs.MetricPoint `json:"metrics"`
	Trace      json.RawMessage   `json:"trace"`
}

// deviceDump is one device's pool in a dump. A single-device daemon
// reports exactly one entry with index 0.
type deviceDump struct {
	Index      int   `json:"index"`
	Capacity   int64 `json:"capacity"`
	PoolFree   int64 `json:"pool_free"`
	Containers int   `json:"containers"`
}

// containerDump is one container's state in a dump.
type containerDump struct {
	ID             string `json:"id"`
	Device         int    `json:"device"`
	Limit          int64  `json:"limit"`
	Grant          int64  `json:"grant"`
	Used           int64  `json:"used"`
	Pending        int    `json:"pending"`
	Suspended      bool   `json:"suspended"`
	SuspendedNanos int64  `json:"suspended_nanos"`
}

func (d *Daemon) dumpJSON(traceLimit int) ([]byte, error) {
	st := d.cfg.Core
	trace, err := d.obs.Tracer().DumpLimit("", traceLimit)
	if err != nil {
		return nil, err
	}
	p := dumpPayload{
		Algorithm: st.AlgorithmName(),
		Capacity:  int64(st.Capacity()),
		PoolFree:  int64(st.PoolFree()),
		Metrics:   d.obs.Registry().Snapshot(),
		Trace:     trace,
	}
	for _, dev := range st.Devices() {
		p.Devices = append(p.Devices, deviceDump{
			Index:      dev.Index,
			Capacity:   int64(dev.Capacity),
			PoolFree:   int64(dev.PoolFree),
			Containers: dev.Containers,
		})
	}
	for _, info := range st.Snapshot() {
		device, _ := st.Placement(info.ID)
		p.Containers = append(p.Containers, containerDump{
			ID:             string(info.ID),
			Device:         device,
			Limit:          int64(info.Limit),
			Grant:          int64(info.Grant),
			Used:           int64(info.Used),
			Pending:        info.Pending,
			Suspended:      info.Suspended,
			SuspendedNanos: info.SuspendedTotal.Nanoseconds(),
		})
	}
	return json.Marshal(p)
}
