// Tenant identity plumbing: the daemon resolves each registration's
// tenant, persists tenant definitions ahead of the sessions bound to
// them, and serves the per-tenant usage rollup on the control socket.
//
// Resolution order: the daemon's configured tenant table
// (Config.Tenants) is the operator's authoritative definition and wins
// over attributes carried inline on the wire; an inline definition for
// a name the table does not know is adopted (and remembered) so
// self-describing clients work without pre-provisioning.

package daemon

import (
	"encoding/json"

	"convgpu/internal/bytesize"
	"convgpu/internal/core"
	"convgpu/internal/protocol"
	"convgpu/internal/wal"
)

// tenantFromParts resolves a tenant identity from a name plus inline
// attributes (wire fields or a persisted session record). The
// configured table wins; an unknown name's inline definition is
// adopted into the table. Empty name = default tenant.
func (d *Daemon) tenantFromParts(name string, weight, priority int, quota, guarantee int64) core.Tenant {
	if name == "" {
		return core.Tenant{}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if t, ok := d.tenantDefs[name]; ok {
		return t
	}
	t := core.Tenant{
		Name:      name,
		Weight:    weight,
		Priority:  priority,
		Quota:     bytesize.Size(quota),
		Guarantee: bytesize.Size(guarantee),
	}
	d.tenantDefs[name] = t
	return t
}

// resolveTenant reads a request's tenant identity fields.
func (d *Daemon) resolveTenant(msg *protocol.Message) core.Tenant {
	return d.tenantFromParts(msg.Tenant, msg.TenantWeight, msg.TenantPriority, msg.TenantQuota, msg.TenantGuarantee)
}

// walTenantDef maps a core tenant onto the log's definition record.
func walTenantDef(t core.Tenant) wal.TenantDef {
	return wal.TenantDef{
		Name:      t.Name,
		Weight:    t.Weight,
		Priority:  t.Priority,
		Quota:     int64(t.Quota),
		Guarantee: int64(t.Guarantee),
	}
}

// persistTenant makes one tenant definition durable before the first
// session referencing it is acknowledged. Idempotent: a definition
// already folded into the log (and unchanged) is not re-appended.
// No-op for the default tenant or without a WAL.
func (d *Daemon) persistTenant(t core.Tenant) error {
	if t.Name == "" || d.cfg.WAL == nil {
		return nil
	}
	d.mu.Lock()
	logged := d.tenantLogged[t.Name]
	d.mu.Unlock()
	if logged {
		return nil
	}
	rec, err := wal.TenantRecord(walTenantDef(t))
	if err != nil {
		return err
	}
	if err := d.walAppend(rec); err != nil {
		return err
	}
	d.mu.Lock()
	d.tenantLogged[t.Name] = true
	d.mu.Unlock()
	return nil
}

// Tenants reports the live per-tenant usage rollup from the scheduling
// backend (named tenants only, sorted by name).
func (d *Daemon) Tenants() []core.TenantUsage { return d.cfg.Core.Tenants() }

// handleTenants answers the tenants control verb with the JSON-encoded
// usage rollup in the response's Data field.
func (d *Daemon) handleTenants(msg *protocol.Message, respond func(*protocol.Message)) {
	usages := d.Tenants()
	if usages == nil {
		usages = []core.TenantUsage{}
	}
	data, err := json.Marshal(usages)
	if err != nil {
		respond(protocol.ErrorResponse(msg, "daemon: encode tenants: %v", err))
		return
	}
	r := protocol.Response(msg)
	r.Data = string(data)
	respond(r)
}
