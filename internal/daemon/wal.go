// Durable admission log integration plus the admin verbs built on it.
//
// With Config.WAL set, the write-ahead log is the daemon's single
// durable truth: every session-changing admission event (register,
// close, migrate, lease expiry, evict) is appended — and synced per the
// log's policy — before the daemon acknowledges the event to its
// caller, and restart recovery becomes "load snapshot + replay tail"
// instead of scanning per-container session.json files. Audit kinds
// (grants, suspends, rejects, releases, attaches) ride the same log for
// forensics but do not fold into recovery state, so their appends are
// best-effort. The first boot against an empty log imports any pre-WAL
// session.json records one-time; the files are left in place read-only
// so a rollback to the previous daemon still finds them.

package daemon

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"convgpu/internal/asyncop"
	"convgpu/internal/bytesize"
	"convgpu/internal/core"
	"convgpu/internal/errs"
	"convgpu/internal/ipc"
	"convgpu/internal/protocol"
	"convgpu/internal/wal"
)

// errNoMembership answers membership verbs on a single-node backend.
var errNoMembership = errors.New("daemon: backend has no node membership (single-node scheduler)")

// walAppend appends one session-changing record, stamping the event
// time. A daemon that cannot persist an admission must not acknowledge
// it, so a refused append maps onto CodeUnavailable for the caller.
// No-op without a WAL.
func (d *Daemon) walAppend(rec wal.Record) error {
	l := d.cfg.WAL
	if l == nil {
		return nil
	}
	rec.At = d.clk.Now().UnixNano()
	if _, err := l.Append(rec); err != nil {
		d.cfg.Logf("daemon: wal append %s %q: %v", rec.Kind, rec.Container, err)
		return fmt.Errorf("daemon: persist admission event: %w (%v)", errs.ErrDaemonUnavailable, err)
	}
	return nil
}

// walAudit appends one audit record. Audit kinds never fold into
// recovered state, so a failed append is logged and swallowed rather
// than failing the request it annotates.
func (d *Daemon) walAudit(kind wal.Kind, id core.ContainerID, amount int64, pid int, device int) {
	l := d.cfg.WAL
	if l == nil {
		return
	}
	rec := wal.Record{
		Kind: kind, Container: string(id),
		Amount: amount, PID: int32(pid), Device: int32(device),
		At: d.clk.Now().UnixNano(),
	}
	if _, err := l.Append(rec); err != nil {
		d.cfg.Logf("daemon: wal audit %s %q: %v", kind, id, err)
	}
}

// recoverFromWAL re-adopts the sessions the write-ahead log folded at
// open: placement pinned, registration re-applied idempotently, socket
// re-listening — the same adoption recoverSessions performs, minus the
// per-container file scan. A session the core refuses is evicted *into
// the log*, so the refusal is durable and the next recovery does not
// re-offer it. When the log is empty this is the first boot under WAL
// and any legacy session.json records are imported first.
func (d *Daemon) recoverFromWAL() error {
	l := d.cfg.WAL
	if l.LastSeq() == 0 {
		if err := d.importLegacySessions(); err != nil {
			return err
		}
	}
	// Adopt the log's folded tenant definitions. The configured table
	// still wins for names it defines; for those, the durable copy is
	// considered logged only when it already matches, so the next
	// registration under the name re-appends the overriding definition.
	d.mu.Lock()
	for _, def := range l.Tenants() {
		t := core.Tenant{
			Name: def.Name, Weight: def.Weight, Priority: def.Priority,
			Quota: bytesize.Size(def.Quota), Guarantee: bytesize.Size(def.Guarantee),
		}
		if cfgDef, ok := d.tenantDefs[def.Name]; ok {
			if cfgDef == t {
				d.tenantLogged[def.Name] = true
			}
			continue
		}
		d.tenantDefs[def.Name] = t
		d.tenantLogged[def.Name] = true
	}
	d.mu.Unlock()
	for _, s := range l.Sessions() {
		id := core.ContainerID(s.Container)
		if err := d.cfg.Core.RestorePlacement(id, s.Device); err != nil {
			d.discardWALSession(id, fmt.Errorf("device %d not restorable: %w", s.Device, err))
			continue
		}
		t := d.tenantFromParts(s.Tenant, 0, 0, 0, 0)
		if _, err := d.cfg.Core.EnsureRegisteredTenant(id, bytesize.Size(s.Limit), t); err != nil {
			d.discardWALSession(id, fmt.Errorf("registration refused: %w", err))
			continue
		}
		dir := d.containerDir(id)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			d.closeRecovered()
			return fmt.Errorf("daemon: recover %s: %w", id, err)
		}
		sockPath := filepath.Join(dir, ContainerSocketName)
		if _, err := os.Stat(filepath.Join(dir, WrapperModuleName)); err != nil {
			// First adoption on this host (log shipped in, or base dir
			// moved): materialize the wrapper module the runtime mounts.
			module := fmt.Sprintf("convgpu wrapper module for container %s\nsocket=%s\n", id, sockPath)
			if err := os.WriteFile(filepath.Join(dir, WrapperModuleName), []byte(module), 0o644); err != nil {
				d.closeRecovered()
				return fmt.Errorf("daemon: recover %s: %w", id, err)
			}
		}
		os.Remove(sockPath) // the dead daemon's listener
		srv, err := ipc.Listen(sockPath, containerHandler{d: d, id: id})
		if err != nil {
			d.closeRecovered()
			return fmt.Errorf("daemon: recover %s: %w", id, err)
		}
		srv.SetWireStats(d.wire)
		d.servers[id] = srv
		d.dirs[id] = dir
		d.touch(id)
	}
	return nil
}

// discardWALSession drops one unservable recovered session, making the
// drop durable: an evict record is appended so replay converges on the
// same refusal, the discard is logged with its reason, and the
// sessions-discarded counter ticks so fleets alert on recovery loss.
func (d *Daemon) discardWALSession(id core.ContainerID, reason error) {
	if err := d.walAppend(wal.Record{Kind: wal.KindEvict, Container: string(id), Meta: reason.Error()}); err != nil {
		d.cfg.Logf("daemon: recovery evict %q not persisted: %v", id, err)
	}
	d.obs.SessionsDiscarded.Inc()
	d.cfg.Logf("daemon: recovery discarded session %q: %v", id, reason)
}

// importLegacySessions folds pre-WAL session.json records into an empty
// log, one register event each. Runs once — after the first append the
// log is never empty again. Files are left untouched: session.json
// stays importable for one release and is never written when the WAL
// is on.
func (d *Daemon) importLegacySessions() error {
	root := filepath.Join(d.cfg.BaseDir, "containers")
	entries, err := os.ReadDir(root)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("daemon: scan container dirs: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(root, e.Name(), sessionFileName))
		if err != nil {
			continue // never registered, or cleanly closed
		}
		var rec sessionRecord
		if err := json.Unmarshal(data, &rec); err != nil || rec.Container == "" {
			d.obs.SessionsDiscarded.Inc()
			d.cfg.Logf("daemon: wal import skipped %q: unreadable session record (%v)", e.Name(), err)
			continue
		}
		if err := d.walAppend(wal.Record{
			Kind: wal.KindRegister, Container: rec.Container,
			Amount: rec.Limit, Device: int32(rec.Device),
			Meta: "imported from session.json",
		}); err != nil {
			return err
		}
		d.cfg.Logf("daemon: wal import: adopted legacy session %q", rec.Container)
	}
	return nil
}

// Ops exposes the daemon's async operation manager — the admin plane's
// pollable operations. Non-nil on every started daemon.
func (d *Daemon) Ops() *asyncop.Manager { return d.ops }

// WALStats reports the write-ahead log's counters; ok is false when the
// daemon runs without a WAL.
func (d *Daemon) WALStats() (wal.Stats, bool) {
	if d.cfg.WAL == nil {
		return wal.Stats{}, false
	}
	return d.cfg.WAL.Stats(), true
}

// SnapshotWAL writes a point-in-time snapshot of the folded session
// state, returning the sequence it covers.
func (d *Daemon) SnapshotWAL() (uint64, error) {
	if d.cfg.WAL == nil {
		return 0, errors.New("daemon: no write-ahead log configured")
	}
	return d.cfg.WAL.Snapshot()
}

// CompactWAL snapshots and drops fully-covered segments, returning the
// post-compaction stats.
func (d *Daemon) CompactWAL() (wal.Stats, error) {
	if d.cfg.WAL == nil {
		return wal.Stats{}, errors.New("daemon: no write-ahead log configured")
	}
	if err := d.cfg.WAL.Compact(); err != nil {
		return wal.Stats{}, err
	}
	return d.cfg.WAL.Stats(), nil
}

// DrainNode marks one node draining so new placements avoid it.
func (d *Daemon) DrainNode(node int) error {
	m, ok := d.membership()
	if !ok {
		return errNoMembership
	}
	return m.Drain(node)
}

// ReviveNode returns a drained or failed node to service.
func (d *Daemon) ReviveNode(node int) error {
	m, ok := d.membership()
	if !ok {
		return errNoMembership
	}
	return m.Revive(node)
}

// nodeFailer is the manual-failover verb a cluster backend provides
// beyond core.Membership (cluster.Cluster.FailNode).
type nodeFailer interface {
	FailNode(node int) (core.FailoverReport, error)
}

// FailNode fails one node over immediately, migrating its containers
// to survivors; the daemon's failover hook keeps parked responders and
// persisted sessions in step, exactly as for probe-detected failures.
func (d *Daemon) FailNode(node int) (core.FailoverReport, error) {
	f, ok := d.cfg.Core.(nodeFailer)
	if !ok {
		return core.FailoverReport{}, errNoMembership
	}
	return f.FailNode(node)
}

// SessionEntry is one registered session in a sessions page. Grant,
// Used and Pending are filled only when the page reads the live core
// (no WAL) — the durable view knows limits and placements, not usage.
type SessionEntry struct {
	Container string `json:"container"`
	Limit     int64  `json:"limit"`
	Device    int    `json:"device"`
	Grant     int64  `json:"grant,omitempty"`
	Used      int64  `json:"used,omitempty"`
	Pending   int    `json:"pending,omitempty"`
}

// SessionPage is one page of the session listing: entries ordered by
// container ID, plus the cursor for the next page.
type SessionPage struct {
	Total     int            `json:"total"`
	Sessions  []SessionEntry `json:"sessions"`
	NextAfter string         `json:"next_after,omitempty"`
	More      bool           `json:"more,omitempty"`
}

// maxSessionPage bounds one sessions page; ~100 bytes per encoded
// entry keeps 256 of them safely inside one IPC frame.
const maxSessionPage = 256

// Sessions returns one page of registered sessions ordered by container
// ID: entries with ID > after, at most limit of them (0 or anything
// over the cap means the cap). With a WAL the page reads the folded
// durable state — O(sessions) regardless of page count; without one it
// snapshots the live core and includes grant/usage detail.
func (d *Daemon) Sessions(after string, limit int) SessionPage {
	if limit <= 0 || limit > maxSessionPage {
		limit = maxSessionPage
	}
	var entries []SessionEntry
	if l := d.cfg.WAL; l != nil {
		for _, s := range l.Sessions() {
			entries = append(entries, SessionEntry{Container: s.Container, Limit: s.Limit, Device: s.Device})
		}
	} else {
		for _, info := range d.cfg.Core.Snapshot() {
			device, _ := d.cfg.Core.Placement(info.ID)
			entries = append(entries, SessionEntry{
				Container: string(info.ID), Limit: int64(info.Limit), Device: device,
				Grant: int64(info.Grant), Used: int64(info.Used), Pending: info.Pending,
			})
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].Container < entries[j].Container })
	}
	page := SessionPage{Total: len(entries), Sessions: []SessionEntry{}}
	i := sort.Search(len(entries), func(i int) bool { return entries[i].Container > after })
	if n := len(entries) - i; n > limit {
		page.Sessions = entries[i : i+limit]
		page.More = true
		page.NextAfter = entries[i+limit-1].Container
	} else if n > 0 {
		page.Sessions = entries[i:]
	}
	return page
}

// handleSessions answers the sessions control verb: the page cursor
// travels in the request's Container field, the page size in Size.
func (d *Daemon) handleSessions(msg *protocol.Message, respond func(*protocol.Message)) {
	data, err := json.Marshal(d.Sessions(msg.Container, int(msg.Size)))
	if err != nil {
		respond(protocol.ErrorResponse(msg, "daemon: encode sessions: %v", err))
		return
	}
	r := protocol.Response(msg)
	r.Data = string(data)
	respond(r)
}

// handleOps answers the ops control verb: one operation when the
// request's Container field carries its ID, the retained list (newest
// first) otherwise.
func (d *Daemon) handleOps(msg *protocol.Message, respond func(*protocol.Message)) {
	var payload any
	if msg.Container != "" {
		op, ok := d.ops.Get(msg.Container)
		if !ok {
			respond(protocol.ErrorResponse(msg, "daemon: unknown operation %q", msg.Container))
			return
		}
		payload = op
	} else {
		payload = d.ops.List()
	}
	data, err := json.Marshal(payload)
	if err != nil {
		respond(protocol.ErrorResponse(msg, "daemon: encode operations: %v", err))
		return
	}
	r := protocol.Response(msg)
	r.Data = string(data)
	respond(r)
}
