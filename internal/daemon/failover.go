// Node failure domains, daemon side: when the backend fails a node
// over, the daemon must keep its parked responders and persisted
// sessions in step with the migration — re-key tickets that moved,
// answer tickets that were admitted or evicted, rewrite migrated
// containers' session files, and invalidate evicted containers'
// sessions through the same path restart recovery uses. It also
// surfaces the membership admin verbs (nodes / drain / revive) on the
// control socket.

package daemon

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"convgpu/internal/core"
	"convgpu/internal/errs"
	"convgpu/internal/protocol"
	"convgpu/internal/wal"
)

// membership reports the backend's membership surface, when it has one.
func (d *Daemon) membership() (core.Membership, bool) {
	m, ok := d.cfg.Core.(core.Membership)
	return m, ok
}

// NodeStatuses reports every cluster node's membership state, or
// errNoMembership on a single-node backend.
func (d *Daemon) NodeStatuses() ([]core.NodeStatus, error) {
	m, ok := d.membership()
	if !ok {
		return nil, errNoMembership
	}
	return m.NodeStatuses(), nil
}

// handleFailover is the core.FailoverSource hook: called synchronously
// with each failover's report, while the backend's registration lock is
// held, so parked-responder bookkeeping is atomic with respect to new
// placements.
func (d *Daemon) handleFailover(rep core.FailoverReport) {
	d.obs.Failovers.Inc()
	d.obs.MigrationLatency.Observe(rep.Elapsed)
	now := d.clk.Now()

	type rel struct {
		respond func(*protocol.Message)
		msg     *protocol.Message
	}
	var rels []rel
	moved := make(map[core.ContainerID]bool, len(rep.Moves))
	for _, mv := range rep.Moves {
		moved[mv.ID] = true
	}

	rekeyed := make(map[parkedKey]bool)
	d.mu.Lock()
	for _, mv := range rep.Moves {
		// The device label for re-parked tickets: the GPU within the
		// surviving node the container re-registered on.
		device := 0
		if !mv.Evicted {
			device, _ = d.cfg.Core.Placement(mv.ID)
		}
		for _, tm := range mv.Tickets {
			k := parkedKey{mv.ID, tm.OldTicket}
			p, ok := d.parked[k]
			if !ok {
				continue // responder already released (connection died)
			}
			delete(d.parked, k)
			switch tm.Outcome {
			case core.TicketMigrated:
				// Still suspended, now on the surviving node: keep the
				// responder parked under its new ticket. The original
				// park time is kept — the caller has been waiting since
				// then, whichever node it was waiting on.
				d.obs.TicketsMigrated.Inc()
				nk := parkedKey{mv.ID, tm.NewTicket}
				d.parked[nk] = parkedResponder{
					respond: p.respond, conn: p.conn, at: p.at, device: device,
				}
				rekeyed[nk] = true
			case core.TicketAdmitted:
				d.obs.TicketsMigrated.Inc()
				d.obs.ObserveSuspendWait(p.device, now.Sub(p.at))
				m := protocol.AcquireMessage()
				m.OK = true
				m.Decision = protocol.DecisionAccept
				rels = append(rels, rel{p.respond, m})
			case core.TicketEvicted:
				d.obs.TicketsEvicted.Inc()
				d.obs.ObserveSuspendWait(p.device, now.Sub(p.at))
				m := protocol.AcquireMessage()
				m.Error = fmt.Sprintf("node %d down and no surviving capacity", rep.Node)
				m.Code = protocol.CodeNodeDown
				rels = append(rels, rel{p.respond, m})
			}
		}
	}
	// Sweep: a responder parked after the failover captured the dying
	// node's pending set references a ticket that no longer exists on
	// any member — it would otherwise wait forever. Answer it closed.
	// Entries just re-parked under their migrated ticket are NOT stale,
	// even though their container is in the moved set (and the fresh
	// node's ticket numbers routinely collide with the dead node's).
	for k, p := range d.parked {
		if !moved[k.id] || rekeyed[k] {
			continue
		}
		delete(d.parked, k)
		d.obs.TicketsEvicted.Inc()
		d.obs.ObserveSuspendWait(p.device, now.Sub(p.at))
		m := protocol.AcquireMessage()
		m.Error = fmt.Sprintf("node %d down; request lost in failover", rep.Node)
		m.Code = protocol.CodeNodeDown
		rels = append(rels, rel{p.respond, m})
	}
	d.mu.Unlock()

	for _, r := range rels {
		r.respond(r.msg)
	}

	// Session bookkeeping outside the parked lock: migrated containers'
	// session files follow them to the new node; evicted containers'
	// sessions are invalidated exactly like an unrecoverable record at
	// restart.
	for _, mv := range rep.Moves {
		if mv.Evicted {
			d.evictContainer(mv.ID, rep.Node)
			continue
		}
		device, err := d.cfg.Core.Placement(mv.ID)
		if err != nil {
			continue
		}
		if d.cfg.WAL != nil {
			// The migrate record folds to the session's new placement on
			// replay — the WAL-mode equivalent of the session-file rewrite.
			// The tenant binding travels with it (definition first).
			if err := d.persistTenant(mv.Tenant); err != nil {
				d.cfg.Logf("daemon: failover: persist tenant for %s: %v", mv.ID, err)
			}
			if err := d.walAppend(wal.Record{
				Kind: wal.KindMigrate, Container: string(mv.ID),
				Amount: int64(mv.Limit), Device: int32(device), Tenant: mv.Tenant.Name,
				Meta: fmt.Sprintf("node %d -> %d", mv.From, mv.To),
			}); err != nil {
				d.cfg.Logf("daemon: failover: persist migration %s: %v", mv.ID, err)
			}
		} else {
			d.mu.Lock()
			dir := d.dirs[mv.ID]
			d.mu.Unlock()
			if dir != "" {
				if err := writeSessionFile(dir, mv.ID, mv.Limit, device, mv.Tenant); err != nil {
					d.cfg.Logf("daemon: failover: rewrite session %s: %v", mv.ID, err)
				}
			}
		}
		d.cfg.Logf("daemon: failover: migrated %s node %d -> %d (%d tickets)", mv.ID, mv.From, mv.To, len(mv.Tickets))
	}
}

// evictContainer tears one evicted container's serving state down: its
// socket stops listening and its session record is discarded through
// the same path restart recovery uses for unservable sessions.
func (d *Daemon) evictContainer(id core.ContainerID, node int) {
	d.mu.Lock()
	srv := d.servers[id]
	dir := d.dirs[id]
	delete(d.servers, id)
	delete(d.dirs, id)
	d.mu.Unlock()
	d.lastSeen.Delete(id)
	reason := fmt.Errorf("node %d down, no surviving capacity: %w", node, errs.ErrNodeDown)
	if d.cfg.WAL != nil {
		d.discardWALSession(id, reason)
	} else if dir != "" {
		d.discardSession(dir, string(id), reason)
	}
	if srv != nil {
		go srv.Close()
	}
}

// handleMembership answers the nodes / drain / revive control verbs.
// The node index for drain/revive travels in the request's Device
// field.
func (d *Daemon) handleMembership(msg *protocol.Message, respond func(*protocol.Message)) {
	m, ok := d.membership()
	if !ok {
		respond(protocol.ErrorResponse(msg, "daemon: backend has no node membership (single-node scheduler)"))
		return
	}
	switch msg.Type {
	case protocol.TypeNodes:
		data, err := json.Marshal(m.NodeStatuses())
		if err != nil {
			respond(protocol.ErrorResponse(msg, "daemon: encode nodes: %v", err))
			return
		}
		r := protocol.Response(msg)
		r.Data = string(data)
		respond(r)
	case protocol.TypeDrain:
		if err := d.DrainNode(msg.Device); err != nil {
			respond(codedError(msg, err))
			return
		}
		respond(protocol.Response(msg))
	case protocol.TypeRevive:
		if err := d.ReviveNode(msg.Device); err != nil {
			respond(codedError(msg, err))
			return
		}
		respond(protocol.Response(msg))
	}
}

// sessionDirFor reports the session directory currently tracked for id
// (tests use it to assert failover session rewrites).
func (d *Daemon) sessionDirFor(id core.ContainerID) (string, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	dir, ok := d.dirs[id]
	return dir, ok
}

// sessionRecordFor reads id's persisted session record back.
func (d *Daemon) sessionRecordFor(id core.ContainerID) (sessionRecord, error) {
	dir, ok := d.sessionDirFor(id)
	if !ok {
		return sessionRecord{}, fmt.Errorf("daemon: no session dir for %s", id)
	}
	data, err := os.ReadFile(filepath.Join(dir, sessionFileName))
	if err != nil {
		return sessionRecord{}, err
	}
	var rec sessionRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return sessionRecord{}, err
	}
	return rec, nil
}
