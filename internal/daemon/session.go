// Session durability and liveness: the daemon persists each container's
// registration next to its socket so a restarted daemon can recover the
// session instead of orphaning the wrapper, and (when configured) leases
// each session so a container that died without a close signal is
// reaped after a grace window rather than pinning its grant forever.

package daemon

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/core"
	"convgpu/internal/ipc"
	"convgpu/internal/wal"
)

// sessionFileName is the per-container session record inside the
// container's directory, written at registration and removed on close.
const sessionFileName = "session.json"

// sessionRecord is what survives a daemon restart — exactly the inputs
// the control-socket registration took, plus the device the container
// was placed on. Everything else (grants, usage) is rebuilt by the core
// (EnsureRegistered) and the wrappers' replay; the device must be
// persisted because a fresh placement policy would otherwise be free to
// move the container, while its CUDA context is pinned to the original
// device.
type sessionRecord struct {
	Container string `json:"container"`
	Limit     int64  `json:"limit"`
	Device    int    `json:"device,omitempty"`
	// Tenant identity travels with the session so a restarted daemon
	// re-binds the container to the same tenant with the same
	// scheduling attributes (the configured table still wins).
	Tenant          string `json:"tenant,omitempty"`
	TenantWeight    int    `json:"tenant_weight,omitempty"`
	TenantPriority  int    `json:"tenant_priority,omitempty"`
	TenantQuota     int64  `json:"tenant_quota,omitempty"`
	TenantGuarantee int64  `json:"tenant_guarantee,omitempty"`
}

func writeSessionFile(dir string, id core.ContainerID, limit bytesize.Size, device int, t core.Tenant) error {
	data, err := json.Marshal(sessionRecord{
		Container: string(id), Limit: int64(limit), Device: device,
		Tenant: t.Name, TenantWeight: t.Weight, TenantPriority: t.Priority,
		TenantQuota: int64(t.Quota), TenantGuarantee: int64(t.Guarantee),
	})
	if err != nil {
		return fmt.Errorf("daemon: encode session record: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, sessionFileName), data, 0o644); err != nil {
		return fmt.Errorf("daemon: write session record: %w", err)
	}
	return nil
}

// takeoverSocket prepares a control-socket path that may hold a stale
// file from a crashed daemon. A dial probe distinguishes stale from
// live: nothing answering means the previous daemon is gone and the
// file is removed; an answering peer means another daemon owns the
// socket and starting would steal its clients mid-session.
func takeoverSocket(path string) error {
	if _, err := os.Stat(path); err != nil {
		return nil // no leftover socket
	}
	conn, err := net.DialTimeout("unix", path, time.Second)
	if err == nil {
		conn.Close()
		return fmt.Errorf("daemon: control socket %s is owned by a running daemon", path)
	}
	if err := os.Remove(path); err != nil {
		return fmt.Errorf("daemon: remove stale control socket: %w", err)
	}
	return nil
}

// recoverSessions re-adopts container sessions a previous daemon left
// behind: for every persisted session record the registration is
// re-applied idempotently (a shared core keeps its grant; a fresh core
// grants anew) and the container socket re-listens so the wrapper's
// reconnect finds a live endpoint. A record the core refuses (e.g. a
// diverged limit) is skipped and deleted rather than failing startup —
// one corrupt session must not keep the scheduler down.
func (d *Daemon) recoverSessions() error {
	root := filepath.Join(d.cfg.BaseDir, "containers")
	entries, err := os.ReadDir(root)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("daemon: scan container dirs: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(root, e.Name())
		data, err := os.ReadFile(filepath.Join(dir, sessionFileName))
		if err != nil {
			continue // never registered, or cleanly closed
		}
		var rec sessionRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			d.discardSession(dir, e.Name(), fmt.Errorf("unreadable record: %w", err))
			continue
		}
		if rec.Container == "" {
			d.discardSession(dir, e.Name(), fmt.Errorf("record has no container id"))
			continue
		}
		id := core.ContainerID(rec.Container)
		// Pin the recorded device before re-registering: the container's
		// CUDA context lives on that device, so a multi-device backend
		// must not place it afresh. A device the backend no longer serves
		// (restarted with fewer GPUs) invalidates the session.
		if err := d.cfg.Core.RestorePlacement(id, rec.Device); err != nil {
			d.discardSession(dir, e.Name(), fmt.Errorf("device %d not restorable: %w", rec.Device, err))
			continue
		}
		t := d.tenantFromParts(rec.Tenant, rec.TenantWeight, rec.TenantPriority, rec.TenantQuota, rec.TenantGuarantee)
		if _, err := d.cfg.Core.EnsureRegisteredTenant(id, bytesize.Size(rec.Limit), t); err != nil {
			d.discardSession(dir, e.Name(), fmt.Errorf("registration refused: %w", err))
			continue
		}
		sockPath := filepath.Join(dir, ContainerSocketName)
		os.Remove(sockPath) // the dead daemon's listener
		srv, err := ipc.Listen(sockPath, containerHandler{d: d, id: id})
		if err != nil {
			d.closeRecovered()
			return fmt.Errorf("daemon: recover %s: %w", id, err)
		}
		srv.SetWireStats(d.wire)
		d.servers[id] = srv
		d.dirs[id] = dir
		d.touch(id)
	}
	return nil
}

// discardSession drops one unrecoverable session record: the file is
// removed so the next restart does not trip over it again, the discard
// is logged with its reason (a wrapper is about to find its session
// gone — the operator should be able to see why), and the
// sessions-discarded counter ticks so fleets alert on recovery loss.
func (d *Daemon) discardSession(dir, name string, reason error) {
	os.Remove(filepath.Join(dir, sessionFileName))
	d.obs.SessionsDiscarded.Inc()
	d.cfg.Logf("daemon: recovery discarded session %q: %v", name, reason)
}

// closeRecovered unwinds recoverSessions when startup fails later on.
func (d *Daemon) closeRecovered() {
	for id, srv := range d.servers {
		srv.Close()
		delete(d.servers, id)
		delete(d.dirs, id)
	}
}

// leaseEntry is one container's last-seen time (UnixNano), updated with
// a single atomic store per request.
type leaseEntry struct{ nanos atomic.Int64 }

// touch renews a container's session lease. No-op unless leasing is on.
func (d *Daemon) touch(id core.ContainerID) {
	if d.cfg.Lease <= 0 {
		return
	}
	e, ok := d.lastSeen.Load(id)
	if !ok {
		e, _ = d.lastSeen.LoadOrStore(id, &leaseEntry{})
	}
	e.(*leaseEntry).nanos.Store(d.clk.Now().UnixNano())
}

// reapLoop closes containers whose lease expired: no traffic (and no
// heartbeat) for longer than Config.Lease means the container died
// without a close signal, and its grant is reclaimed exactly as the
// plugin's close would. Checked at Lease/4 granularity, so a dead
// container is reaped within 1.25 leases.
func (d *Daemon) reapLoop() {
	defer close(d.reapDone)
	interval := d.cfg.Lease / 4
	if interval <= 0 {
		interval = d.cfg.Lease
	}
	for {
		select {
		case <-d.reapStop:
			return
		case <-d.clk.After(interval):
		}
		now := d.clk.Now()
		var expired []core.ContainerID
		d.lastSeen.Range(func(k, v any) bool {
			last := time.Unix(0, v.(*leaseEntry).nanos.Load())
			if now.Sub(last) > d.cfg.Lease {
				expired = append(expired, k.(core.ContainerID))
			}
			return true
		})
		for _, id := range expired {
			d.obs.LeaseExpiries.Inc()
			d.closeContainerKind(id, wal.KindLeaseExpire)
		}
	}
}
