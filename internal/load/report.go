package load

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"convgpu/internal/metrics"
)

// ReportSchema versions the BENCH_load.json layout for consumers
// (convgpu-stats, the smoke gate).
const ReportSchema = 1

// Tails summarizes a latency population in seconds.
type Tails struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean_s"`
	P50  float64 `json:"p50_s"`
	P99  float64 `json:"p99_s"`
	P999 float64 `json:"p999_s"`
	Max  float64 `json:"max_s"`
}

// TailsOf computes the tail summary of a duration population.
func TailsOf(ds []time.Duration) Tails {
	if len(ds) == 0 {
		return Tails{}
	}
	xs := metrics.Seconds(ds)
	t := Tails{
		N:    len(xs),
		Mean: metrics.Mean(xs),
		P50:  metrics.Percentile(xs, 0.50),
		P99:  metrics.Percentile(xs, 0.99),
		P999: metrics.Percentile(xs, 0.999),
	}
	for _, x := range xs {
		if x > t.Max {
			t.Max = x
		}
	}
	return t
}

// ClassReport aggregates one request class within a run.
type ClassReport struct {
	Class      string  `json:"class"`
	Requests   int     `json:"requests"`
	Completed  int     `json:"completed"`
	Met        int     `json:"deadline_met"`
	Attainment float64 `json:"slo_attainment"`
	AdmitWait  Tails   `json:"admit_wait"`
}

// RunReport is one (wake × place × offered-load) cell of the report.
type RunReport struct {
	Wake  string `json:"wake"`
	Place string `json:"place"`
	// LoadX is the offered-load multiplier relative to the scenario's
	// base arrival rate (1 = the scenario as generated).
	LoadX      float64 `json:"load_x"`
	Containers int     `json:"containers"`
	// OfferedPerSec is the realized arrival rate over the run.
	OfferedPerSec float64 `json:"offered_per_sec"`
	// GoodputPerSec counts deadline-met completions per second — the
	// curve metric: past saturation it flattens or falls while offered
	// load keeps rising.
	GoodputPerSec float64 `json:"goodput_per_sec"`
	// ThroughputPerSec counts all completions per second.
	ThroughputPerSec float64 `json:"throughput_per_sec"`
	// SLOAttainment is deadline-met / total requests.
	SLOAttainment float64       `json:"slo_attainment"`
	DeadlineMet   int           `json:"deadline_met"`
	Missed        int           `json:"deadline_missed"`
	Incomplete    int           `json:"incomplete"`
	AdmitLatency  Tails         `json:"admit_latency"`
	SuspendWait   Tails         `json:"suspend_wait"`
	Classes       []ClassReport `json:"classes"`
	ElapsedSec    float64       `json:"elapsed_s"`
	Stalled       bool          `json:"stalled,omitempty"`
}

// BuildRunReport aggregates one run's raw measurements.
func BuildRunReport(wake, place string, loadX float64, res RunResult) RunReport {
	rr := RunReport{
		Wake:         wake,
		Place:        place,
		LoadX:        loadX,
		Containers:   len(res.Outcomes),
		AdmitLatency: TailsOf(res.AdmitWaits),
		ElapsedSec:   res.Elapsed.Seconds(),
		Stalled:      res.Stalled,
	}
	var suspends []time.Duration
	byClass := map[string]*ClassReport{}
	classWaits := map[string][]time.Duration{}
	for _, o := range res.Outcomes {
		suspends = append(suspends, o.SuspendWait)
		cr := byClass[o.Class]
		if cr == nil {
			cr = &ClassReport{Class: o.Class}
			byClass[o.Class] = cr
		}
		cr.Requests++
		classWaits[o.Class] = append(classWaits[o.Class], o.AdmitWaitMax)
		if o.Completed {
			cr.Completed++
		} else {
			rr.Incomplete++
		}
		if o.DeadlineMet {
			rr.DeadlineMet++
			cr.Met++
		} else {
			rr.Missed++
		}
	}
	rr.SuspendWait = TailsOf(suspends)
	if rr.Containers > 0 {
		rr.SLOAttainment = float64(rr.DeadlineMet) / float64(rr.Containers)
	}
	if rr.ElapsedSec > 0 {
		rr.GoodputPerSec = float64(rr.DeadlineMet) / rr.ElapsedSec
		rr.ThroughputPerSec = float64(rr.Containers-rr.Incomplete) / rr.ElapsedSec
		if span := lastArrival(res.Outcomes); span > 0 {
			rr.OfferedPerSec = float64(rr.Containers) / span.Seconds()
		}
	}
	names := make([]string, 0, len(byClass))
	for name := range byClass {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cr := byClass[name]
		if cr.Requests > 0 {
			cr.Attainment = float64(cr.Met) / float64(cr.Requests)
		}
		cr.AdmitWait = TailsOf(classWaits[name])
		rr.Classes = append(rr.Classes, *cr)
	}
	return rr
}

func lastArrival(outs []Outcome) time.Duration {
	var last time.Duration
	for _, o := range outs {
		if o.Arrival > last {
			last = o.Arrival
		}
	}
	return last
}

// Section groups one path's runs.
type Section struct {
	// Path is "inprocess" or "wire".
	Path string `json:"path"`
	// Deterministic marks whether repeat runs with the same seed
	// reproduce this section byte-identically (true for the virtual
	// clock path, false for real-clock wire timings).
	Deterministic bool `json:"deterministic"`
	// TimeScale records the wire path's compression factor (1 for the
	// in-process path).
	TimeScale float64     `json:"time_scale"`
	Runs      []RunReport `json:"runs"`
}

// Report is the BENCH_load.json document.
type Report struct {
	Schema   int    `json:"schema"`
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	// Arrival and Containers echo the scenario for replay.
	Arrival    string    `json:"arrival"`
	Containers int       `json:"containers"`
	Devices    int       `json:"devices"`
	Sections   []Section `json:"sections"`
}

// SortRuns orders every section's runs by (wake, place, loadX) so the
// document layout is independent of execution order.
func (r *Report) SortRuns() {
	for i := range r.Sections {
		runs := r.Sections[i].Runs
		sort.Slice(runs, func(a, b int) bool {
			if runs[a].Wake != runs[b].Wake {
				return runs[a].Wake < runs[b].Wake
			}
			if runs[a].Place != runs[b].Place {
				return runs[a].Place < runs[b].Place
			}
			return runs[a].LoadX < runs[b].LoadX
		})
	}
}

// JSON renders the report deterministically (sorted runs, indented,
// trailing newline).
func (r *Report) JSON() ([]byte, error) {
	r.SortRuns()
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ParseReport reads a BENCH_load.json document.
func ParseReport(b []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("load: parse report: %w", err)
	}
	if r.Schema != ReportSchema {
		return nil, fmt.Errorf("load: report schema %d, want %d", r.Schema, ReportSchema)
	}
	return &r, nil
}

// Tables renders the report as text tables: per section, the latency
// tails and the goodput-vs-offered-load curve.
func (r *Report) Tables() []*metrics.Table {
	r.SortRuns()
	var out []*metrics.Table
	for _, sec := range r.Sections {
		det := "deterministic"
		if !sec.Deterministic {
			det = fmt.Sprintf("real-clock, timescale %g", sec.TimeScale)
		}
		tails := &metrics.Table{
			Title:     fmt.Sprintf("[%s] admit latency and SLO per policy (%s), scenario %q seed %d", sec.Path, det, r.Scenario, r.Seed),
			ColHeader: "wake/place @ load_x",
		}
		rows := map[string][]float64{}
		order := []string{"admit p50 (ms)", "admit p99 (ms)", "admit p999 (ms)", "suspend p99 (ms)", "SLO attainment (%)", "goodput (req/s)"}
		for _, run := range sec.Runs {
			tails.Cols = append(tails.Cols, fmt.Sprintf("%s/%s@%g", run.Wake, run.Place, run.LoadX))
			rows["admit p50 (ms)"] = append(rows["admit p50 (ms)"], run.AdmitLatency.P50*1000)
			rows["admit p99 (ms)"] = append(rows["admit p99 (ms)"], run.AdmitLatency.P99*1000)
			rows["admit p999 (ms)"] = append(rows["admit p999 (ms)"], run.AdmitLatency.P999*1000)
			rows["suspend p99 (ms)"] = append(rows["suspend p99 (ms)"], run.SuspendWait.P99*1000)
			rows["SLO attainment (%)"] = append(rows["SLO attainment (%)"], run.SLOAttainment*100)
			rows["goodput (req/s)"] = append(rows["goodput (req/s)"], run.GoodputPerSec)
		}
		for _, label := range order {
			tails.AddRow(label, rows[label])
		}
		out = append(out, tails)

		// Goodput-vs-offered-load curve: one row per wake/place pair,
		// one column per load multiplier.
		loads := map[float64]bool{}
		pairs := map[string]bool{}
		for _, run := range sec.Runs {
			loads[run.LoadX] = true
			pairs[run.Wake+"/"+run.Place] = true
		}
		if len(loads) > 1 {
			var xs []float64
			for x := range loads {
				xs = append(xs, x)
			}
			sort.Float64s(xs)
			curve := &metrics.Table{
				Title:     fmt.Sprintf("[%s] goodput (req/s) vs offered load multiplier", sec.Path),
				ColHeader: "offered load ×",
			}
			for _, x := range xs {
				curve.Cols = append(curve.Cols, fmt.Sprintf("%g", x))
			}
			var names []string
			for p := range pairs {
				names = append(names, p)
			}
			sort.Strings(names)
			for _, p := range names {
				var cells []float64
				for _, x := range xs {
					v := 0.0
					for _, run := range sec.Runs {
						if run.Wake+"/"+run.Place == p && run.LoadX == x {
							v = run.GoodputPerSec
						}
					}
					cells = append(cells, v)
				}
				curve.AddRow(p, cells)
			}
			out = append(out, curve)
		}
	}
	return out
}

// Render writes the text form of the report.
func (r *Report) Render(w io.Writer) error {
	for _, t := range r.Tables() {
		if err := t.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// SLO is a service-level objective the report can be checked against.
type SLO struct {
	// MinAttainment is the minimum acceptable deadline-met fraction
	// (0 disables).
	MinAttainment float64
	// MaxAdmitP99 bounds the p99 admission latency (0 disables).
	MaxAdmitP99 time.Duration
	// NoStalls fails any stalled run.
	NoStalls bool
}

// Violation describes one SLO breach in a report.
type Violation struct {
	Path   string
	Wake   string
	Place  string
	LoadX  float64
	Reason string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] %s/%s@%g: %s", v.Path, v.Wake, v.Place, v.LoadX, v.Reason)
}

// CheckSLO evaluates every run in the report against the SLO.
func CheckSLO(r *Report, slo SLO) []Violation {
	var out []Violation
	add := func(sec Section, run RunReport, format string, args ...any) {
		out = append(out, Violation{
			Path: sec.Path, Wake: run.Wake, Place: run.Place, LoadX: run.LoadX,
			Reason: fmt.Sprintf(format, args...),
		})
	}
	for _, sec := range r.Sections {
		for _, run := range sec.Runs {
			if slo.MinAttainment > 0 && run.SLOAttainment < slo.MinAttainment {
				add(sec, run, "SLO attainment %.3f < %.3f", run.SLOAttainment, slo.MinAttainment)
			}
			if slo.MaxAdmitP99 > 0 && run.AdmitLatency.P99 > slo.MaxAdmitP99.Seconds() {
				add(sec, run, "admit p99 %.1fms > %.1fms", run.AdmitLatency.P99*1000, float64(slo.MaxAdmitP99.Milliseconds()))
			}
			if slo.NoStalls && run.Stalled {
				add(sec, run, "run stalled")
			}
		}
	}
	return out
}
