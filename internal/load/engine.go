package load

import (
	"container/heap"
	"context"
	"fmt"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/clock"
	"convgpu/internal/core"
	"convgpu/internal/multigpu"
	"convgpu/internal/obs"
	"convgpu/internal/policy"
)

// Config parameterizes one harness run: the scheduler under test and
// the physics the request stream is replayed with.
type Config struct {
	// Wake is the wake-order policy name (policy registry; default
	// fifo). All seven registered policies are valid.
	Wake string
	// Place is the placement policy name (policy registry; default
	// leastloaded).
	Place string
	// Devices is the GPU count (default 4).
	Devices int
	// CapacityPerDevice is each device's schedulable memory (default
	// the K20m's 5 GiB).
	CapacityPerDevice bytesize.Size
	// Capacities optionally gives per-device capacities (MIG-style
	// heterogeneous topology); overrides CapacityPerDevice.
	Capacities []bytesize.Size
	// Seed seeds randomized policies.
	Seed int64
	// PCIeBandwidth models the host<->device copies (default 6 GiB/s).
	PCIeBandwidth int64
	// ContextOverhead is the per-process charge (default 66 MiB).
	ContextOverhead bytesize.Size
	// StartupDelay is container start to first allocation (default
	// 100 ms; the wire path scales it with the timescale).
	StartupDelay time.Duration
	// Obs optionally receives admit-latency, deadline and goodput
	// telemetry while the run executes.
	Obs *obs.Observability
	// CheckEvery is the scheduler-invariant check cadence in events
	// (default 512; invariants are always checked once at the end).
	CheckEvery int
}

func (c Config) withDefaults() Config {
	if c.Wake == "" {
		c.Wake = core.AlgFIFO
	}
	if c.Place == "" {
		c.Place = multigpu.PolicyLeastLoaded
	}
	if c.Devices == 0 {
		c.Devices = 4
	}
	if c.CapacityPerDevice == 0 {
		c.CapacityPerDevice = 5 * bytesize.GiB
	}
	if c.PCIeBandwidth == 0 {
		c.PCIeBandwidth = 6 << 30
	}
	if c.ContextOverhead == 0 {
		c.ContextOverhead = core.DefaultContextOverhead
	}
	if c.StartupDelay == 0 {
		c.StartupDelay = 100 * time.Millisecond
	}
	if c.CheckEvery == 0 {
		c.CheckEvery = 512
	}
	return c
}

// newBackend builds the multi-GPU scheduler under test from the policy
// registry.
func newBackend(cfg Config, clk clock.Clock) (*multigpu.State, error) {
	place, err := policy.NewPlace(cfg.Place, policy.Config{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	return multigpu.New(multigpu.Config{
		Devices:           cfg.Devices,
		CapacityPerDevice: cfg.CapacityPerDevice,
		Capacities:        cfg.Capacities,
		Algorithm:         cfg.Wake,
		AlgorithmFactory: func(seed int64) (core.Algorithm, error) {
			return policy.NewWake(cfg.Wake, policy.Config{Seed: seed})
		},
		AlgSeed:         cfg.Seed,
		Policy:          place,
		Clock:           clk,
		ContextOverhead: cfg.ContextOverhead,
	})
}

// Outcome is one request's observed life.
type Outcome struct {
	Seq     int
	Class   string
	Type    string
	Arrival time.Duration
	// Finished is the completion offset from run start (0 if never).
	Finished time.Duration
	// Deadline is the absolute deadline offset the engine derived.
	Deadline time.Duration
	// SuspendWait is the container's cumulative suspended time.
	SuspendWait time.Duration
	// AdmitWaitMax is the worst admission wait across the request's
	// allocation cycles.
	AdmitWaitMax time.Duration
	// Allocs counts allocation cycles performed.
	Allocs      int
	Completed   bool
	DeadlineMet bool
}

// RunResult is one harness run's raw measurements.
type RunResult struct {
	// Outcomes holds per-request detail in arrival order.
	Outcomes []Outcome
	// AdmitWaits holds every allocation's admission wait (zero when
	// admitted on first try), the population behind the latency tails.
	AdmitWaits []time.Duration
	// Elapsed is run start to last completion: virtual time on the
	// in-process path, compressed real time on the wire path.
	Elapsed time.Duration
	// Stalled reports requests left suspended with no event able to
	// release them.
	Stalled bool
}

// deadlineOf derives a request's absolute deadline offset: startup plus
// slack times the ideal runtime (compute plus both PCIe copies per
// cycle) plus the fixed grace.
func deadlineOf(r Request, cfg Config) time.Duration {
	ideal := time.Duration(r.Cycles) * (r.Service + copyTime(r.Type.AllocSize(), cfg.PCIeBandwidth))
	return r.Arrival + cfg.StartupDelay + time.Duration(r.Slack*float64(ideal)) + r.Grace
}

// copyTime is the duration of the sample program's two PCIe transfers.
func copyTime(size bytesize.Size, bandwidth int64) time.Duration {
	if bandwidth <= 0 {
		return 0
	}
	return 2 * time.Duration(int64(size)*int64(time.Second)/bandwidth)
}

type loadEventKind int

const (
	levArrive loadEventKind = iota
	levAllocate
	levFinish
)

type loadEvent struct {
	at   time.Time
	seq  int
	kind loadEventKind
	idx  int
}

type loadEventHeap []loadEvent

func (h loadEventHeap) Len() int { return len(h) }
func (h loadEventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h loadEventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *loadEventHeap) Push(x interface{}) { *h = append(*h, x.(loadEvent)) }
func (h *loadEventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

type loadContainer struct {
	id          core.ContainerID
	req         Request
	cycle       int
	addr        uint64
	ticket      core.Ticket
	waiting     bool
	requestedAt time.Time
	finished    bool
	out         Outcome
}

// RunInProcess replays the request stream against the scheduler core
// under a virtual clock: open-loop arrivals from the stream, admission
// and wake-ups from the real policies, service times advanced in
// virtual time. Deterministic — the same requests, Config and seed
// produce the identical RunResult.
func RunInProcess(ctx context.Context, reqs []Request, cfg Config) (RunResult, error) {
	cfg = cfg.withDefaults()
	clk := clock.NewManual()
	st, err := newBackend(cfg, clk)
	if err != nil {
		return RunResult{}, err
	}
	if cfg.Obs != nil {
		cfg.Obs.BindCore(st)
	}
	start := clk.Now()
	res := RunResult{}
	containers := make([]*loadContainer, len(reqs))
	byID := make(map[core.ContainerID]int)
	var events loadEventHeap
	seq := 0
	push := func(at time.Time, kind loadEventKind, idx int) {
		seq++
		heap.Push(&events, loadEvent{at: at, seq: seq, kind: kind, idx: idx})
	}
	for i, r := range reqs {
		containers[i] = &loadContainer{
			id:  core.ContainerID(fmt.Sprintf("l%05d-%s", i, r.Class)),
			req: r,
			out: Outcome{
				Seq:      r.Seq,
				Class:    r.Class.String(),
				Type:     r.Type.Name,
				Arrival:  r.Arrival,
				Deadline: deadlineOf(r, cfg),
			},
		}
		push(start.Add(r.Arrival), levArrive, i)
	}

	cycleRuntime := func(r Request) time.Duration {
		return r.Service + copyTime(r.Type.AllocSize(), cfg.PCIeBandwidth)
	}
	var nextAddr uint64 = 0x1000
	recordWait := func(lc *loadContainer, w time.Duration) {
		res.AdmitWaits = append(res.AdmitWaits, w)
		if w > lc.out.AdmitWaitMax {
			lc.out.AdmitWaitMax = w
		}
		lc.out.Allocs++
	}
	// admit dispatches an Update from any memory-freeing operation:
	// every admitted ticket's wait ends now, its allocation confirms,
	// and its compute cycle is scheduled.
	admit := func(u core.Update) {
		now := clk.Now()
		for _, a := range u.Admitted {
			idx, ok := byID[a.Container]
			if !ok || containers[idx].ticket != a.Ticket {
				continue
			}
			delete(byID, a.Container)
			lc := containers[idx]
			lc.waiting = false
			recordWait(lc, now.Sub(lc.requestedAt))
			nextAddr += 0x10
			lc.addr = nextAddr
			if err := st.ConfirmAlloc(lc.id, pidOf(idx), lc.addr, lc.req.Type.AllocSize()); err != nil {
				panic(fmt.Sprintf("load: confirm after admit: %v", err))
			}
			push(now.Add(cycleRuntime(lc.req)), levFinish, idx)
		}
		for _, c := range u.Cancelled {
			if idx, ok := byID[c.Container]; ok && containers[idx].ticket == c.Ticket {
				delete(byID, c.Container)
			}
		}
	}
	requestCycle := func(idx int, at time.Time) error {
		lc := containers[idx]
		r, err := st.RequestAlloc(lc.id, pidOf(idx), lc.req.Type.AllocSize())
		if err != nil {
			return fmt.Errorf("load: alloc %s: %w", lc.id, err)
		}
		switch r.Decision {
		case core.Accept:
			recordWait(lc, 0)
			nextAddr += 0x10
			lc.addr = nextAddr
			if err := st.ConfirmAlloc(lc.id, pidOf(idx), lc.addr, lc.req.Type.AllocSize()); err != nil {
				return err
			}
			push(at.Add(cycleRuntime(lc.req)), levFinish, idx)
		case core.Suspend:
			lc.ticket = r.Ticket
			lc.waiting = true
			lc.requestedAt = at
			byID[lc.id] = idx
		case core.Reject:
			return fmt.Errorf("load: %s rejected its own in-limit request", lc.id)
		}
		return nil
	}

	processed := 0
	for events.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return RunResult{}, fmt.Errorf("load: cancelled at %v: %w", clk.Since(start), err)
		}
		e := heap.Pop(&events).(loadEvent)
		clk.AdvanceTo(e.at)
		lc := containers[e.idx]
		switch e.kind {
		case levArrive:
			if _, err := st.Register(lc.id, lc.req.Type.GPUMemory); err != nil {
				return RunResult{}, fmt.Errorf("load: register %s: %w", lc.id, err)
			}
			push(e.at.Add(cfg.StartupDelay), levAllocate, e.idx)
		case levAllocate:
			if err := requestCycle(e.idx, e.at); err != nil {
				return RunResult{}, err
			}
		case levFinish:
			lc.cycle++
			if lc.cycle < lc.req.Cycles {
				// Training realloc cycle: release the working set and
				// immediately re-enter admission.
				if _, u, err := st.Free(lc.id, pidOf(e.idx), lc.addr); err != nil {
					return RunResult{}, fmt.Errorf("load: free %s: %w", lc.id, err)
				} else {
					admit(u)
				}
				if err := requestCycle(e.idx, e.at); err != nil {
					return RunResult{}, err
				}
				break
			}
			info, err := st.Info(lc.id)
			if err != nil {
				return RunResult{}, err
			}
			lc.out.SuspendWait = info.SuspendedTotal
			if _, u, err := st.ProcessExit(lc.id, pidOf(e.idx)); err != nil {
				return RunResult{}, err
			} else {
				admit(u)
			}
			if _, u, err := st.Close(lc.id); err != nil {
				return RunResult{}, err
			} else {
				admit(u)
			}
			lc.finished = true
			lc.out.Completed = true
			lc.out.Finished = clk.Since(start)
			lc.out.DeadlineMet = lc.out.Finished <= lc.out.Deadline
			if cfg.Obs != nil {
				cfg.Obs.ObserveDeadline(lc.out.DeadlineMet)
			}
		}
		processed++
		if cfg.CheckEvery > 0 && processed%cfg.CheckEvery == 0 {
			if err := st.CheckInvariants(); err != nil {
				return RunResult{}, fmt.Errorf("load: after event at %v: %w", clk.Since(start), err)
			}
		}
	}
	if err := st.CheckInvariants(); err != nil {
		return RunResult{}, fmt.Errorf("load: at end of run: %w", err)
	}

	res.Elapsed = clk.Since(start)
	met := 0
	for _, lc := range containers {
		if !lc.finished {
			if info, err := st.Info(lc.id); err == nil {
				lc.out.SuspendWait = info.SuspendedTotal
			}
			res.Stalled = true
		}
		if lc.out.DeadlineMet {
			met++
		}
		res.Outcomes = append(res.Outcomes, lc.out)
	}
	if cfg.Obs != nil && res.Elapsed > 0 {
		cfg.Obs.SetGoodput(float64(met) / res.Elapsed.Seconds())
	}
	return res, nil
}

// pidOf derives the simulated host pid of a request's single process.
func pidOf(idx int) int { return 20000 + idx }
