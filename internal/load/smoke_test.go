package load

import (
	"context"
	"os"
	"strconv"
	"testing"
	"time"
)

// TestLoadSmoke is the CI gate on the load harness (make load-smoke):
// a small fixed-seed calm scenario runs the deterministic in-process
// path across a representative policy set, the report must parse back
// under the current schema with fully populated tails, and the p99
// admission latency must stay under a loose ceiling —
// CONVGPU_LOAD_SMOKE_P99_MS, default 60000 virtual milliseconds, an
// order of magnitude of slack over the measured calm-load value so
// only a real admission regression (or a policy that stops waking
// waiters) trips it. The times are virtual-clock, so the gate is
// deterministic and runner-speed independent.
func TestLoadSmoke(t *testing.T) {
	ceiling := 60_000.0
	if env := os.Getenv("CONVGPU_LOAD_SMOKE_P99_MS"); env != "" {
		v, err := strconv.ParseFloat(env, 64)
		if err != nil || v <= 0 {
			t.Fatalf("bad CONVGPU_LOAD_SMOKE_P99_MS=%q", env)
		}
		ceiling = v
	}
	scn := Scenario{
		Name:        "load-smoke",
		Containers:  100,
		Seed:        20260808,
		Arrival:     ArrivalPoisson,
		MeanSpacing: 5 * time.Second,
	}
	pairs := []PolicyPair{
		{"fifo", "leastloaded"},
		{"bestfit", "bestfit"},
		{"fairshare", "fragaware"},
	}
	// Load x1 is the gated calm point; x3 heats the system enough that
	// requests actually suspend, proving the wake path is measured.
	sec, err := RunInProcessSweep(context.Background(), scn, pairs, []float64{1, 3}, Config{Devices: 4})
	if err != nil {
		t.Fatal(err)
	}
	js, err := NewReport(scn, 4, sec).JSON()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ParseReport(js)
	if err != nil {
		t.Fatalf("report does not round-trip under schema %d: %v", ReportSchema, err)
	}
	if len(rep.Sections) != 1 || len(rep.Sections[0].Runs) != 2*len(pairs) {
		t.Fatalf("schema assert: want 1 section with %d runs, got %+v", 2*len(pairs), rep.Sections)
	}
	sawWait := false
	for _, run := range rep.Sections[0].Runs {
		if run.Containers != scn.Containers || run.AdmitLatency.N == 0 || run.SuspendWait.N != scn.Containers {
			t.Errorf("schema assert: %s/%s@%g tails unpopulated: %+v", run.Wake, run.Place, run.LoadX, run)
		}
		if run.Incomplete != 0 || run.Stalled {
			t.Errorf("%s/%s@%g: smoke scenario left %d incomplete (stalled=%v)",
				run.Wake, run.Place, run.LoadX, run.Incomplete, run.Stalled)
		}
		if run.SLOAttainment <= 0 || run.GoodputPerSec <= 0 {
			t.Errorf("%s/%s@%g: no goodput: %+v", run.Wake, run.Place, run.LoadX, run)
		}
		if run.AdmitLatency.Max > 0 {
			sawWait = true
		}
		p99ms := run.AdmitLatency.P99 * 1000
		t.Logf("%s/%s@%g: admit p99 %.1fms (ceiling %.0fms at x1), SLO %.1f%%",
			run.Wake, run.Place, run.LoadX, p99ms, ceiling, run.SLOAttainment*100)
		if run.LoadX == 1 && p99ms > ceiling {
			t.Errorf("%s/%s: calm admit p99 %.1fms exceeds the %.0fms smoke ceiling", run.Wake, run.Place, p99ms, ceiling)
		}
	}
	if !sawWait {
		t.Errorf("no run ever suspended a request — the smoke is not exercising the wake path")
	}
}
