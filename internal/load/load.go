// Package load is the open-loop load-generation and evaluation harness.
//
// The paper's Figure 7/8 experiments are closed-loop: a fixed number of
// batch containers arrive on a fixed cadence, and the metric is the
// finish time of the whole cohort. Production GPU sharing is open-loop:
// requests keep arriving whether or not the scheduler has caught up, and
// the interesting numbers are the tails — p99/p999 admission latency,
// suspend-wait, the fraction of deadline-carrying requests that met
// their deadline, and goodput as offered load rises past capacity.
//
// This package generates open-loop request streams (Poisson, bursty
// MMPP-2, diurnal-ramp arrival processes over a workload library of
// deadline-carrying inference bursts, memcpy-heavy streaming jobs,
// long-lived training jobs with periodic reallocation, and the paper's
// batch jobs) and replays them against the scheduler on two paths:
//
//   - in-process: the scheduler core driven directly under a virtual
//     clock — deterministic, replayable by seed, byte-identical reports;
//   - wire: the full daemon + UNIX-socket IPC stack under the real
//     clock with a compressed timescale — tails include real socket,
//     encode and wakeup costs, at the price of run-to-run jitter.
//
// The reporter aggregates per-request outcomes into SLO tails and
// goodput-vs-offered-load curves per (wake policy × placement policy),
// rendered as BENCH_load.{json,txt} by cmd/convgpu-load.
package load

import (
	"fmt"
	"math/rand"
	"time"

	"convgpu/internal/workload"
)

// Class is a request class of the workload library.
type Class int

const (
	// ClassInference models a DNN-inference burst: a small, short-lived
	// allocation carrying a tight completion deadline.
	ClassInference Class = iota
	// ClassStreaming models a memcpy-heavy streaming job: a mid-sized
	// allocation whose runtime is dominated by the two PCIe transfers.
	ClassStreaming
	// ClassTraining models a long-lived training job that periodically
	// frees and re-allocates its working set (checkpoint/resize cycles),
	// re-entering admission each cycle.
	ClassTraining
	// ClassBatch is the paper's Table III sample program.
	ClassBatch
)

// String names the class for reports.
func (c Class) String() string {
	switch c {
	case ClassInference:
		return "inference"
	case ClassStreaming:
		return "streaming"
	case ClassTraining:
		return "training"
	case ClassBatch:
		return "batch"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Classes lists the workload library in declaration order.
func Classes() []Class {
	return []Class{ClassInference, ClassStreaming, ClassTraining, ClassBatch}
}

// Request is one open-loop container arrival. The deadline is carried
// as a slack factor over the request's ideal runtime rather than an
// absolute instant, because the ideal runtime depends on engine
// parameters (PCIe bandwidth, startup delay) the generator does not
// know: the engine computes
//
//	deadline = arrival + startup + slack*(cycles*(service+copies)) + grace
//
// at admission time, identically on both paths.
type Request struct {
	// Seq numbers the arrival (0-based).
	Seq int
	// Class is the workload class.
	Class Class
	// Type supplies the container's GPU memory limit and allocation size
	// (Table III).
	Type workload.ContainerType
	// Arrival is the offset from run start.
	Arrival time.Duration
	// Service is the compute time per allocation cycle, excluding the
	// PCIe copies the engine adds from the allocation size.
	Service time.Duration
	// Cycles is how many allocate→compute→free cycles the container
	// runs (1 for everything but training).
	Cycles int
	// Slack scales the ideal runtime into the deadline budget.
	Slack float64
	// Grace is the fixed additive deadline headroom.
	Grace time.Duration
}

// ArrivalKind selects the arrival process of a Scenario.
type ArrivalKind string

// Arrival processes. Uniform is the paper's fixed cadence; the others
// extend workload.GeneratePoissonTrace toward open-loop stress shapes.
const (
	ArrivalUniform ArrivalKind = "uniform"
	ArrivalPoisson ArrivalKind = "poisson"
	ArrivalBursty  ArrivalKind = "bursty"
	ArrivalDiurnal ArrivalKind = "diurnal"
)

// MixEntry weights one class within a scenario's request mix.
type MixEntry struct {
	Class  Class
	Weight int
}

// DefaultMix is the evaluation mix: inference-heavy with streaming and
// batch background and a trickle of long training jobs.
func DefaultMix() []MixEntry {
	return []MixEntry{
		{ClassInference, 5},
		{ClassStreaming, 2},
		{ClassBatch, 2},
		{ClassTraining, 1},
	}
}

// Scenario describes one open-loop request stream. The same scenario
// (same seed) always generates the same []Request.
type Scenario struct {
	// Name labels the scenario in reports.
	Name string
	// Containers is the number of arrivals.
	Containers int
	// Seed drives every random draw.
	Seed int64
	// Arrival selects the arrival process (default Poisson).
	Arrival ArrivalKind
	// MeanSpacing is the mean inter-arrival time (default the paper's
	// 5 s cadence).
	MeanSpacing time.Duration
	// Burst is the MMPP burst-state rate multiplier (bursty only;
	// default 8).
	Burst float64
	// Period is the diurnal period (diurnal only; default 100 arrivals
	// worth of MeanSpacing).
	Period time.Duration
	// Amplitude is the diurnal rate swing in [0,1) (diurnal only;
	// default 0.8).
	Amplitude float64
	// Mix weights the request classes (default DefaultMix).
	Mix []MixEntry
}

func (s Scenario) withDefaults() Scenario {
	if s.Arrival == "" {
		s.Arrival = ArrivalPoisson
	}
	if s.MeanSpacing == 0 {
		s.MeanSpacing = workload.DefaultSpacing
	}
	if s.Burst == 0 {
		s.Burst = 8
	}
	if s.Period == 0 {
		s.Period = 100 * s.MeanSpacing
	}
	if s.Amplitude == 0 {
		s.Amplitude = 0.8
	}
	if len(s.Mix) == 0 {
		s.Mix = DefaultMix()
	}
	return s
}

// Generate produces the scenario's request stream. Arrival instants
// come from the selected workload trace generator; classes, types,
// service times and deadline budgets are drawn from an independent
// stream seeded by Seed, so the same seed yields the same requests on
// every run and machine.
func (s Scenario) Generate() ([]Request, error) {
	s = s.withDefaults()
	if s.Containers <= 0 {
		return nil, fmt.Errorf("load: scenario %q with %d containers", s.Name, s.Containers)
	}
	var trace []workload.TraceEntry
	switch s.Arrival {
	case ArrivalUniform:
		trace = workload.GenerateTrace(s.Containers, s.MeanSpacing, s.Seed)
	case ArrivalPoisson:
		trace = workload.GeneratePoissonTrace(s.Containers, s.MeanSpacing, s.Seed)
	case ArrivalBursty:
		trace = workload.GenerateBurstyTrace(s.Containers, s.MeanSpacing, s.Burst, s.Seed)
	case ArrivalDiurnal:
		trace = workload.GenerateDiurnalTrace(s.Containers, s.MeanSpacing, s.Period, s.Amplitude, s.Seed)
	default:
		return nil, fmt.Errorf("load: unknown arrival process %q", s.Arrival)
	}
	rng := rand.New(rand.NewSource(s.Seed ^ 0x10adc0de))
	types := workload.Types()
	var weights int
	for _, m := range s.Mix {
		weights += m.Weight
	}
	if weights <= 0 {
		return nil, fmt.Errorf("load: scenario %q mix has no weight", s.Name)
	}
	out := make([]Request, s.Containers)
	for i, e := range trace {
		r := Request{Seq: i, Arrival: e.Arrival, Cycles: 1}
		pick := rng.Intn(weights)
		for _, m := range s.Mix {
			if pick < m.Weight {
				r.Class = m.Class
				break
			}
			pick -= m.Weight
		}
		switch r.Class {
		case ClassInference:
			// nano..small; tens of milliseconds of compute; tight SLO.
			r.Type = types[rng.Intn(3)]
			r.Service = time.Duration(20+rng.Intn(100)) * time.Millisecond
			r.Slack = 2
			r.Grace = 250 * time.Millisecond
		case ClassStreaming:
			// medium/large; compute negligible next to the two copies.
			r.Type = types[3+rng.Intn(2)]
			r.Service = time.Duration(30+rng.Intn(40)) * time.Millisecond
			r.Slack = 3
			r.Grace = 500 * time.Millisecond
		case ClassTraining:
			// large/xlarge; seconds per cycle; several realloc cycles.
			r.Type = types[4+rng.Intn(2)]
			r.Service = time.Duration(2e9 + rng.Int63n(8e9))
			r.Cycles = 3 + rng.Intn(4)
			r.Slack = 1.5
			r.Grace = 1 * time.Second
		case ClassBatch:
			// The trace generator already drew a uniform Table III type.
			r.Type = e.Type
			r.Service = r.Type.SampleDuration()
			r.Slack = 2
			r.Grace = 1 * time.Second
		}
		out[i] = r
	}
	return out, nil
}

// ScaleRequests returns a copy of reqs with every duration multiplied
// by factor — the wire path's compressed timescale (factor < 1) and the
// offered-load multiplier (arrivals divided by the multiplier are
// produced by scaling MeanSpacing at generation instead, so relative
// deadline budgets stay honest).
func ScaleRequests(reqs []Request, factor float64) []Request {
	if factor == 1 {
		return reqs
	}
	out := make([]Request, len(reqs))
	for i, r := range reqs {
		r.Arrival = scaleDur(r.Arrival, factor)
		r.Service = scaleDur(r.Service, factor)
		r.Grace = scaleDur(r.Grace, factor)
		out[i] = r
	}
	return out
}

func scaleDur(d time.Duration, f float64) time.Duration {
	return time.Duration(float64(d) * f)
}
