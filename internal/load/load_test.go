package load

import (
	"bytes"
	"context"
	"testing"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/model"
	"convgpu/internal/obs"
)

func smokeScenario(n int) Scenario {
	return Scenario{
		Name:        "smoke",
		Containers:  n,
		Seed:        20260808,
		Arrival:     ArrivalBursty,
		MeanSpacing: 2 * time.Second,
	}
}

// TestGenerateDeterministic: the same scenario yields the identical
// request stream, and every class appears under the default mix at a
// reasonable size.
func TestGenerateDeterministic(t *testing.T) {
	scn := smokeScenario(200)
	a, err := scn.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := scn.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 200 || len(b) != 200 {
		t.Fatalf("got %d and %d requests", len(a), len(b))
	}
	seen := map[Class]int{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs between identical scenarios: %+v vs %+v", i, a[i], b[i])
		}
		seen[a[i].Class]++
		if a[i].Cycles < 1 || a[i].Service <= 0 || a[i].Slack <= 0 {
			t.Fatalf("request %d malformed: %+v", i, a[i])
		}
	}
	for _, c := range Classes() {
		if seen[c] == 0 {
			t.Errorf("class %s never drawn in 200 requests", c)
		}
	}
	if tr, _ := smokeScenario(200).Generate(); tr[5].Class != a[5].Class {
		t.Errorf("class stream not reproducible")
	}
}

// TestRunInProcessDeterministic: the full report of a small sweep is
// byte-identical across two runs with the same seed — the replay
// guarantee the wire path cannot give.
func TestRunInProcessDeterministic(t *testing.T) {
	run := func() []byte {
		scn := smokeScenario(80)
		sec, err := RunInProcessSweep(context.Background(), scn,
			[]PolicyPair{{"fifo", "leastloaded"}, {"bestfit", "bestfit"}, {"fairshare", "fragaware"}},
			[]float64{1, 4}, Config{Devices: 2})
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewReport(scn, 2, sec).JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different reports:\n--- run1 ---\n%s\n--- run2 ---\n%s", a, b)
	}
}

// TestRunInProcessOutcomes sanity-checks the measurements of one run:
// everything completes, admit waits appear once the load multiplier
// pushes past capacity, and deadlines behave monotonically with load.
func TestRunInProcessOutcomes(t *testing.T) {
	scn := smokeScenario(120)
	calm, err := generateAt(scn, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunInProcess(context.Background(), calm, Config{Devices: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalled {
		t.Fatalf("calm run stalled")
	}
	rr := BuildRunReport("fifo", "leastloaded", 1, res)
	if rr.Incomplete != 0 {
		t.Fatalf("%d incomplete requests in calm run", rr.Incomplete)
	}
	if rr.AdmitLatency.N == 0 || rr.SuspendWait.N != 120 {
		t.Fatalf("tail populations wrong: admit %d suspend %d", rr.AdmitLatency.N, rr.SuspendWait.N)
	}
	if rr.GoodputPerSec <= 0 || rr.SLOAttainment <= 0 {
		t.Fatalf("no goodput measured: %+v", rr)
	}

	hot, err := generateAt(scn, 20)
	if err != nil {
		t.Fatal(err)
	}
	hres, err := RunInProcess(context.Background(), hot, Config{Devices: 2})
	if err != nil {
		t.Fatal(err)
	}
	hrr := BuildRunReport("fifo", "leastloaded", 20, hres)
	if hrr.AdmitLatency.Max <= rr.AdmitLatency.Max {
		t.Errorf("20x load did not raise worst admit wait: calm %v hot %v", rr.AdmitLatency.Max, hrr.AdmitLatency.Max)
	}
	if hrr.SLOAttainment > rr.SLOAttainment {
		t.Errorf("20x load improved SLO attainment: calm %.3f hot %.3f", rr.SLOAttainment, hrr.SLOAttainment)
	}
}

// TestRunInProcessObs: the run feeds the observability bundle — admit
// latency through the core's admit observer, deadline counters and the
// goodput gauge through the engine.
func TestRunInProcessObs(t *testing.T) {
	o := obs.New(obs.Config{Algorithm: "fifo"})
	scn := smokeScenario(60)
	reqs, err := generateAt(scn, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunInProcess(context.Background(), reqs, Config{Devices: 2, Obs: o}); err != nil {
		t.Fatal(err)
	}
	if got := o.DeadlineMet.Value() + o.DeadlineMissed.Value(); got != 60 {
		t.Errorf("deadline counters saw %d completions, want 60", got)
	}
	if o.AdmitLatency.Count() == 0 {
		t.Errorf("admit-latency histogram never observed")
	}
}

// TestRunInProcessHeterogeneous: MIG-style unequal capacities flow
// through the engine; a fragaware placement run completes on a topology
// where the uniform capacity assumption would reject xlarge containers.
func TestRunInProcessHeterogeneous(t *testing.T) {
	scn := smokeScenario(60)
	reqs, err := generateAt(scn, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunInProcess(context.Background(), reqs, Config{
		Wake:       "bestfit",
		Place:      "fragaware",
		Devices:    3,
		Capacities: []bytesize.Size{20 * bytesize.GiB, 5 * bytesize.GiB, 5 * bytesize.GiB},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalled {
		t.Fatalf("heterogeneous run stalled")
	}
}

// TestWireSmoke drives a small scenario through the real daemon+IPC
// stack and checks the section carries plausible, non-deterministic
// real-time measurements.
func TestWireSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("wire smoke needs real time")
	}
	scn := Scenario{
		Name:        "wire-smoke",
		Containers:  40,
		Seed:        7,
		Arrival:     ArrivalPoisson,
		MeanSpacing: 400 * time.Millisecond,
		Mix:         []MixEntry{{ClassInference, 3}, {ClassStreaming, 1}},
	}
	sec, err := RunWireSweep(context.Background(), scn,
		[]PolicyPair{{"fifo", "leastloaded"}}, []float64{1},
		WireConfig{Config: Config{Devices: 2}, TimeScale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if sec.Deterministic {
		t.Fatalf("wire section must be marked non-deterministic")
	}
	run := sec.Runs[0]
	if run.Incomplete != 0 || run.Stalled {
		t.Fatalf("wire run incomplete: %+v", run)
	}
	if run.AdmitLatency.N != 40 {
		t.Fatalf("expected 40 admit waits, got %d", run.AdmitLatency.N)
	}
	// Real socket round trips cannot be instant.
	if run.AdmitLatency.Max <= 0 {
		t.Fatalf("wire admit waits all zero — not measuring the socket path")
	}
}

// TestShrinkSLOViolation reproduces the shrunk-reproducer path: a
// scenario that misses its SLO is reduced with the generic ddmin to a
// minimal failing request subset which still violates, and the shrunk
// stream is materially smaller than the original.
func TestShrinkSLOViolation(t *testing.T) {
	scn := smokeScenario(100)
	reqs, err := generateAt(scn, 30) // heavy overload: deadlines will miss
	if err != nil {
		t.Fatal(err)
	}
	slo := SLO{MinAttainment: 0.99}
	fails := func(cand []Request) bool {
		if len(cand) == 0 {
			return false
		}
		res, err := RunInProcess(context.Background(), cand, Config{Devices: 2})
		if err != nil {
			return false
		}
		rep := NewReport(scn, 2, Section{Path: "inprocess", Deterministic: true, TimeScale: 1,
			Runs: []RunReport{BuildRunReport("fifo", "leastloaded", 30, res)}})
		return len(CheckSLO(rep, slo)) > 0
	}
	if !fails(reqs) {
		t.Skipf("overload scenario unexpectedly met its SLO; nothing to shrink")
	}
	shrunk := model.Minimize(reqs, fails)
	if !fails(shrunk) {
		t.Fatalf("shrunk stream no longer violates the SLO")
	}
	if len(shrunk) >= len(reqs) {
		t.Fatalf("ddmin failed to shrink: %d -> %d requests", len(reqs), len(shrunk))
	}
	t.Logf("shrunk SLO reproducer: %d -> %d requests", len(reqs), len(shrunk))
}

// TestCheckSLO exercises the checker's three rules directly.
func TestCheckSLO(t *testing.T) {
	rep := &Report{Schema: ReportSchema, Sections: []Section{{
		Path: "inprocess",
		Runs: []RunReport{
			{Wake: "fifo", Place: "ll", LoadX: 1, SLOAttainment: 0.5, AdmitLatency: Tails{P99: 2.0}, Stalled: true},
			{Wake: "bestfit", Place: "ll", LoadX: 1, SLOAttainment: 1.0, AdmitLatency: Tails{P99: 0.001}},
		},
	}}}
	vs := CheckSLO(rep, SLO{MinAttainment: 0.9, MaxAdmitP99: 100 * time.Millisecond, NoStalls: true})
	if len(vs) != 3 {
		t.Fatalf("want 3 violations for the first run, got %d: %v", len(vs), vs)
	}
	for _, v := range vs {
		if v.Wake != "fifo" {
			t.Errorf("violation attributed to wrong run: %v", v)
		}
	}
}

// TestReportRoundTrip: JSON out, parse back, and the text rendering
// mentions each section.
func TestReportRoundTrip(t *testing.T) {
	scn := smokeScenario(40)
	sec, err := RunInProcessSweep(context.Background(), scn,
		[]PolicyPair{{"fifo", "leastloaded"}}, []float64{1, 2}, Config{Devices: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReport(scn, 2, sec)
	b, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseReport(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Sections) != 1 || len(back.Sections[0].Runs) != 2 {
		t.Fatalf("round trip lost runs: %+v", back)
	}
	var buf bytes.Buffer
	if err := back.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("goodput")) || !bytes.Contains(buf.Bytes(), []byte("inprocess")) {
		t.Fatalf("text rendering incomplete:\n%s", buf.String())
	}
}
