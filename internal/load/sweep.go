package load

import (
	"context"
	"fmt"
	"time"
)

// PolicyPair is one (wake, placement) combination under test.
type PolicyPair struct {
	Wake  string
	Place string
}

// generateAt produces the scenario's request stream at an offered-load
// multiplier: the arrival process runs loadX times faster while
// classes, service times and deadline budgets stay identical (the
// class/type stream is seeded independently of arrival instants).
func generateAt(scn Scenario, loadX float64) ([]Request, error) {
	if loadX <= 0 {
		return nil, fmt.Errorf("load: non-positive load multiplier %g", loadX)
	}
	scn = scn.withDefaults()
	scn.MeanSpacing = time.Duration(float64(scn.MeanSpacing) / loadX)
	if scn.MeanSpacing <= 0 {
		return nil, fmt.Errorf("load: load multiplier %g collapses arrival spacing", loadX)
	}
	return scn.Generate()
}

// RunInProcessSweep runs every (pair × load multiplier) cell on the
// in-process virtual-clock path and returns the report section.
// Deterministic: cells run sequentially and each run is seeded from the
// scenario, so the same inputs yield the identical section.
func RunInProcessSweep(ctx context.Context, scn Scenario, pairs []PolicyPair, loads []float64, ecfg Config) (Section, error) {
	scn = scn.withDefaults()
	if len(loads) == 0 {
		loads = []float64{1}
	}
	sec := Section{Path: "inprocess", Deterministic: true, TimeScale: 1}
	for _, loadX := range loads {
		reqs, err := generateAt(scn, loadX)
		if err != nil {
			return Section{}, err
		}
		for _, p := range pairs {
			cfg := ecfg
			cfg.Wake = p.Wake
			cfg.Place = p.Place
			if cfg.Seed == 0 {
				cfg.Seed = scn.Seed
			}
			res, err := RunInProcess(ctx, reqs, cfg)
			if err != nil {
				return Section{}, fmt.Errorf("load: %s/%s@%g: %w", p.Wake, p.Place, loadX, err)
			}
			sec.Runs = append(sec.Runs, BuildRunReport(p.Wake, p.Place, loadX, res))
		}
	}
	return sec, nil
}

// RunWireSweep is RunInProcessSweep over the daemon+IPC wire path.
// Timings are real (compressed by wcfg.TimeScale), so the section is
// marked non-deterministic.
func RunWireSweep(ctx context.Context, scn Scenario, pairs []PolicyPair, loads []float64, wcfg WireConfig) (Section, error) {
	scn = scn.withDefaults()
	if len(loads) == 0 {
		loads = []float64{1}
	}
	wcfg = wcfg.withDefaults()
	sec := Section{Path: "wire", Deterministic: false, TimeScale: wcfg.TimeScale}
	for _, loadX := range loads {
		reqs, err := generateAt(scn, loadX)
		if err != nil {
			return Section{}, err
		}
		for _, p := range pairs {
			cfg := wcfg
			cfg.Wake = p.Wake
			cfg.Place = p.Place
			if cfg.Seed == 0 {
				cfg.Seed = scn.Seed
			}
			res, err := RunWire(ctx, reqs, cfg)
			if err != nil {
				return Section{}, fmt.Errorf("load: wire %s/%s@%g: %w", p.Wake, p.Place, loadX, err)
			}
			sec.Runs = append(sec.Runs, BuildRunReport(p.Wake, p.Place, loadX, res))
		}
	}
	return sec, nil
}

// NewReport assembles the report envelope for a scenario.
func NewReport(scn Scenario, devices int, sections ...Section) *Report {
	scn = scn.withDefaults()
	r := &Report{
		Schema:     ReportSchema,
		Scenario:   scn.Name,
		Seed:       scn.Seed,
		Arrival:    string(scn.Arrival),
		Containers: scn.Containers,
		Devices:    devices,
		Sections:   sections,
	}
	r.SortRuns()
	return r
}
