package load

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"convgpu/internal/clock"
	"convgpu/internal/daemon"
	"convgpu/internal/ipc"
	"convgpu/internal/protocol"
	"convgpu/internal/wrapper"
)

// WireConfig extends Config for the wire path: the full daemon served
// over real UNIX sockets, one connection per simulated container, under
// the real clock.
type WireConfig struct {
	Config
	// TimeScale compresses every request duration (arrivals, service,
	// grace, startup) by this factor so a multi-hour open-loop scenario
	// replays in seconds of wall clock. Socket, encode and scheduler
	// costs are NOT scaled — that is the point: at TimeScale 0.05 a
	// 250 ms deadline grace becomes 12.5 ms of real headroom that wire
	// overhead genuinely eats into. Default 1.
	TimeScale float64
	// BaseDir hosts the daemon's sockets (default a fresh temp dir,
	// removed afterwards).
	BaseDir string
}

func (c WireConfig) withDefaults() WireConfig {
	c.Config = c.Config.withDefaults()
	if c.TimeScale == 0 {
		c.TimeScale = 1
	}
	return c
}

// wireOut collects one container goroutine's results without sharing.
type wireOut struct {
	out   Outcome
	waits []time.Duration
}

// RunWire replays the request stream through the complete service
// stack: daemon, control socket, per-container wrapper sockets, the
// long-poll suspend path. Each request runs as its own goroutine —
// arrivals are open-loop timers, not a closed feedback loop — and every
// admission wait is measured around the blocking alloc round trip, so
// the tails include real IPC costs. Timings are real time and therefore
// NOT run-to-run deterministic; the report marks the section so.
func RunWire(ctx context.Context, reqs []Request, wcfg WireConfig) (RunResult, error) {
	wcfg = wcfg.withDefaults()
	cfg := wcfg.Config
	// The wire path sleeps with OS-timer granularity: thousands of
	// concurrent sub-millisecond service sleeps must not spin-wait.
	st, err := newBackend(cfg, clock.Coarse{})
	if err != nil {
		return RunResult{}, err
	}
	baseDir := wcfg.BaseDir
	if baseDir == "" {
		baseDir, err = os.MkdirTemp("", "convgpu-load")
		if err != nil {
			return RunResult{}, err
		}
		defer os.RemoveAll(baseDir)
	}
	d, err := daemon.Start(daemon.Config{BaseDir: baseDir, Core: st, Obs: cfg.Obs})
	if err != nil {
		return RunResult{}, err
	}
	defer d.Close()
	ctl, err := ipc.Dial(d.ControlSocket())
	if err != nil {
		return RunResult{}, err
	}
	defer ctl.Close()

	scaled := ScaleRequests(reqs, wcfg.TimeScale)
	startup := scaleDur(cfg.StartupDelay, wcfg.TimeScale)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	outs := make([]wireOut, len(scaled))
	var (
		wg      sync.WaitGroup
		errOnce sync.Once
		runErr  error
	)
	fail := func(err error) {
		errOnce.Do(func() { runErr = err })
		cancel()
	}
	start := time.Now()
	for i := range scaled {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			r := scaled[idx]
			o := &outs[idx]
			o.out = Outcome{
				Seq:     reqs[idx].Seq,
				Class:   r.Class.String(),
				Type:    r.Type.Name,
				Arrival: r.Arrival,
				// Deadline in the compressed timebase, matching the
				// compressed measurements.
				Deadline: deadlineOfScaled(r, cfg, wcfg.TimeScale),
			}
			if err := runWireContainer(ctx, ctl, r, idx, start, startup, cfg, wcfg.TimeScale, o); err != nil {
				if ctx.Err() == nil {
					fail(err)
				}
			}
		}(i)
	}
	wg.Wait()
	if runErr != nil {
		return RunResult{}, runErr
	}
	if err := ctx.Err(); err != nil {
		return RunResult{}, fmt.Errorf("load: wire run cancelled: %w", err)
	}

	res := RunResult{}
	met := 0
	for i := range outs {
		if !outs[i].out.Completed {
			res.Stalled = true
		}
		if outs[i].out.DeadlineMet {
			met++
		}
		res.Outcomes = append(res.Outcomes, outs[i].out)
		res.AdmitWaits = append(res.AdmitWaits, outs[i].waits...)
	}
	res.Elapsed = time.Since(start)
	if cfg.Obs != nil && res.Elapsed > 0 {
		cfg.Obs.SetGoodput(float64(met) / res.Elapsed.Seconds())
	}
	return res, nil
}

// deadlineOfScaled is deadlineOf over a pre-scaled request: the startup
// delay and the PCIe copy estimate still need scaling (they derive from
// Config, not the request).
func deadlineOfScaled(r Request, cfg Config, timeScale float64) time.Duration {
	ideal := time.Duration(r.Cycles) * (r.Service + scaleDur(copyTime(r.Type.AllocSize(), cfg.PCIeBandwidth), timeScale))
	return r.Arrival + scaleDur(cfg.StartupDelay, timeScale) + time.Duration(r.Slack*float64(ideal)) + r.Grace
}

// runWireContainer is one simulated container's full wire life:
// arrival timer, register over the control socket, dial the wrapper
// socket, then cycles of blocking alloc (the measured long-poll),
// confirm, service sleep and free, ending in procexit + close. The
// wire path cannot read the scheduler's internal suspend accounting
// per request, so SuspendWait is approximated by the summed blocking
// alloc waits (which additionally include the socket round trip — the
// quantity a real client experiences).
func runWireContainer(ctx context.Context, ctl *ipc.Client, r Request, idx int, start time.Time, startup time.Duration, cfg Config, timeScale float64, o *wireOut) error {
	sleepUntil(ctx, start.Add(r.Arrival))
	if ctx.Err() != nil {
		return ctx.Err()
	}
	id := fmt.Sprintf("l%05d-%s", idx, r.Class)
	pid := pidOf(idx)
	resp, err := ctl.Call(ctx, &protocol.Message{
		Type: protocol.TypeRegister, Container: id, Limit: int64(r.Type.GPUMemory),
	})
	if err != nil {
		return fmt.Errorf("load: register %s: %w", id, err)
	}
	if !resp.OK {
		return fmt.Errorf("load: register %s: %s", id, resp.Error)
	}
	cli, err := ipc.Dial(filepath.Join(resp.SocketDir, wrapper.SocketFileName))
	if err != nil {
		return fmt.Errorf("load: dial %s: %w", id, err)
	}
	defer cli.Close()

	clock.Coarse{}.Sleep(startup)
	size := int64(r.Type.AllocSize())
	serviceSleep := r.Service + scaleDur(copyTime(r.Type.AllocSize(), cfg.PCIeBandwidth), timeScale)
	addr := uint64(0x1000 + idx*0x100)
	for cycle := 0; cycle < r.Cycles; cycle++ {
		// The blocking alloc round trip IS the admission wait: the
		// daemon parks the response while the request is suspended and
		// replies when redistribution admits it.
		t0 := time.Now()
		resp, err := cli.Call(ctx, &protocol.Message{Type: protocol.TypeAlloc, PID: pid, Size: size})
		if err != nil {
			return fmt.Errorf("load: alloc %s: %w", id, err)
		}
		if !resp.OK {
			return fmt.Errorf("load: alloc %s: %s", id, resp.Error)
		}
		wait := time.Since(t0)
		o.waits = append(o.waits, wait)
		if wait > o.out.AdmitWaitMax {
			o.out.AdmitWaitMax = wait
		}
		o.out.Allocs++
		o.out.SuspendWait += wait
		addr++
		if resp, err := cli.Call(ctx, &protocol.Message{Type: protocol.TypeConfirm, PID: pid, Addr: addr, Size: size}); err != nil {
			return fmt.Errorf("load: confirm %s: %w", id, err)
		} else if !resp.OK {
			return fmt.Errorf("load: confirm %s: %s", id, resp.Error)
		}
		clock.Coarse{}.Sleep(serviceSleep)
		if cycle+1 < r.Cycles {
			if resp, err := cli.Call(ctx, &protocol.Message{Type: protocol.TypeFree, PID: pid, Addr: addr}); err != nil {
				return fmt.Errorf("load: free %s: %w", id, err)
			} else if !resp.OK {
				return fmt.Errorf("load: free %s: %s", id, resp.Error)
			}
		}
	}
	if resp, err := cli.Call(ctx, &protocol.Message{Type: protocol.TypeProcExit, PID: pid}); err != nil {
		return fmt.Errorf("load: procexit %s: %w", id, err)
	} else if !resp.OK {
		return fmt.Errorf("load: procexit %s: %s", id, resp.Error)
	}
	if resp, err := ctl.Call(ctx, &protocol.Message{Type: protocol.TypeClose, Container: id}); err != nil {
		return fmt.Errorf("load: close %s: %w", id, err)
	} else if !resp.OK {
		return fmt.Errorf("load: close %s: %s", id, resp.Error)
	}
	o.out.Completed = true
	o.out.Finished = time.Since(start)
	o.out.DeadlineMet = o.out.Finished <= o.out.Deadline
	if cfg.Obs != nil {
		cfg.Obs.ObserveDeadline(o.out.DeadlineMet)
	}
	return nil
}

// sleepUntil sleeps on the real clock until the deadline or context
// cancellation, whichever first.
func sleepUntil(ctx context.Context, deadline time.Time) {
	d := time.Until(deadline)
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
