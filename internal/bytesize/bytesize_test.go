package bytesize

import (
	"testing"
	"testing/quick"
)

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Size
	}{
		{"0", 0},
		{"1", 1},
		{"1024", 1 * KiB},
		{"1b", 1},
		{"1k", 1 * KiB},
		{"1kb", 1 * KiB},
		{"1KiB", 1 * KiB},
		{"128MiB", 128 * MiB},
		{"128M", 128 * MiB},
		{"128mb", 128 * MiB},
		{"1g", 1 * GiB},
		{"1GB", 1 * GiB},
		{"1GiB", 1 * GiB},
		{"5GiB", 5 * GiB},
		{"1t", 1 * TiB},
		{"1.5GiB", GiB + 512*MiB},
		{"0.5MiB", 512 * KiB},
		{" 256 MiB ", 256 * MiB},
		{"4096MiB", 4 * GiB},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): unexpected error: %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"", "   ", "MiB", "abc", "-1", "-1GiB", "1X", "1..5M", "1 2 MiB", "999999999999999G",
	} {
		if got, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) = %d, want error", in, got)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on invalid input did not panic")
		}
	}()
	MustParse("not a size")
}

func TestMustParseOK(t *testing.T) {
	if got := MustParse("2GiB"); got != 2*GiB {
		t.Fatalf("MustParse(2GiB) = %d, want %d", got, 2*GiB)
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		in   Size
		want string
	}{
		{0, "0B"},
		{1, "1B"},
		{1023, "1023B"},
		{KiB, "1KiB"},
		{MiB, "1MiB"},
		{128 * MiB, "128MiB"},
		{GiB, "1GiB"},
		{5 * GiB, "5GiB"},
		{4096 * MiB, "4GiB"},
		{GiB + 512*MiB, "1536MiB"},     // largest unit that divides exactly
		{GiB + 512*MiB + 1, "1.50GiB"}, // no exact unit: fractional form
		{-128 * MiB, "-128MiB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Size(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestRoundTripStringParse(t *testing.T) {
	// Any exactly-representable size must survive String -> Parse.
	f := func(mib uint16) bool {
		s := Size(mib) * MiB
		back, err := Parse(s.String())
		return err == nil && back == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMiBs(t *testing.T) {
	cases := []struct {
		in   Size
		want int64
	}{
		{0, 0},
		{-5, 0},
		{1, 1},
		{MiB, 1},
		{MiB + 1, 2},
		{128 * MiB, 128},
		{5 * GiB, 5120},
	}
	for _, c := range cases {
		if got := c.in.MiBs(); got != c.want {
			t.Errorf("Size(%d).MiBs() = %d, want %d", int64(c.in), got, c.want)
		}
	}
}

func TestRoundUp(t *testing.T) {
	cases := []struct {
		s, q, want Size
	}{
		{0, 128 * MiB, 0},
		{1, 128 * MiB, 128 * MiB},
		{128 * MiB, 128 * MiB, 128 * MiB},
		{128*MiB + 1, 128 * MiB, 256 * MiB},
		{300 * MiB, 128 * MiB, 384 * MiB},
		{100, 0, 100},  // quantum 0: unchanged
		{100, -8, 100}, // negative quantum: unchanged
	}
	for _, c := range cases {
		if got := c.s.RoundUp(c.q); got != c.want {
			t.Errorf("Size(%d).RoundUp(%d) = %d, want %d", int64(c.s), int64(c.q), got, c.want)
		}
	}
}

func TestRoundUpProperties(t *testing.T) {
	// RoundUp(q) is >= s, is a multiple of q, and is idempotent.
	f := func(sRaw, qRaw uint32) bool {
		s := Size(sRaw)
		q := Size(qRaw%4096) + 1
		r := s.RoundUp(q)
		return r >= s && r%q == 0 && r.RoundUp(q) == r && r-s < q
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
