// Package bytesize provides parsing and formatting of byte quantities as
// they appear in ConVGPU options and Docker image labels, such as the
// --nvidia-memory=<size> flag and the com.nvidia.memory.limit:<size> label.
//
// Sizes use binary (IEC) units: 1 KiB = 1024 B. Both the IEC spellings
// ("512MiB") and the short spellings NVIDIA Docker accepted ("512M",
// "512MB") are understood; the short forms are treated as binary units,
// matching the paper's usage (e.g. the 128 MiB managed-memory granularity).
package bytesize

import (
	"fmt"
	"strconv"
	"strings"
)

// Size is a byte count. The zero value is zero bytes.
type Size int64

// Binary unit multipliers.
const (
	Byte Size = 1
	KiB       = 1024 * Byte
	MiB       = 1024 * KiB
	GiB       = 1024 * MiB
	TiB       = 1024 * GiB
)

var unitTable = map[string]Size{
	"":    Byte,
	"b":   Byte,
	"k":   KiB,
	"kb":  KiB,
	"kib": KiB,
	"m":   MiB,
	"mb":  MiB,
	"mib": MiB,
	"g":   GiB,
	"gb":  GiB,
	"gib": GiB,
	"t":   TiB,
	"tb":  TiB,
	"tib": TiB,
}

// Parse converts a human-readable size such as "512MiB", "1g" or "4096"
// (plain bytes) into a Size. Fractional values like "1.5GiB" are accepted.
// Negative sizes are rejected: a memory limit can never be negative.
func Parse(s string) (Size, error) {
	t := strings.TrimSpace(strings.ToLower(s))
	if t == "" {
		return 0, fmt.Errorf("bytesize: empty size")
	}
	i := len(t)
	for i > 0 {
		c := t[i-1]
		if c >= '0' && c <= '9' || c == '.' {
			break
		}
		i--
	}
	numPart, unitPart := t[:i], strings.TrimSpace(t[i:])
	mult, ok := unitTable[unitPart]
	if !ok {
		return 0, fmt.Errorf("bytesize: unknown unit %q in %q", unitPart, s)
	}
	if numPart == "" {
		return 0, fmt.Errorf("bytesize: missing number in %q", s)
	}
	if strings.Contains(numPart, ".") {
		f, err := strconv.ParseFloat(numPart, 64)
		if err != nil {
			return 0, fmt.Errorf("bytesize: bad number in %q: %v", s, err)
		}
		if f < 0 {
			return 0, fmt.Errorf("bytesize: negative size %q", s)
		}
		return Size(f * float64(mult)), nil
	}
	n, err := strconv.ParseInt(numPart, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bytesize: bad number in %q: %v", s, err)
	}
	if n < 0 {
		return 0, fmt.Errorf("bytesize: negative size %q", s)
	}
	if n > int64(TiB)*1024/int64(mult) {
		return 0, fmt.Errorf("bytesize: size %q overflows", s)
	}
	return Size(n) * mult, nil
}

// MustParse is like Parse but panics on error. It is intended for
// compile-time constants in tests and tables.
func MustParse(s string) Size {
	v, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return v
}

// String formats the size with the largest binary unit that divides it
// exactly, falling back to a two-decimal representation otherwise, in the
// style of the paper's tables ("128MiB", "4GiB").
func (s Size) String() string {
	if s < 0 {
		return "-" + (-s).String()
	}
	type unit struct {
		mult Size
		name string
	}
	units := []unit{{TiB, "TiB"}, {GiB, "GiB"}, {MiB, "MiB"}, {KiB, "KiB"}}
	for _, u := range units {
		if s >= u.mult && s%u.mult == 0 {
			return fmt.Sprintf("%d%s", int64(s/u.mult), u.name)
		}
	}
	for _, u := range units {
		if s >= u.mult {
			return fmt.Sprintf("%.2f%s", float64(s)/float64(u.mult), u.name)
		}
	}
	return fmt.Sprintf("%dB", int64(s))
}

// MiBs reports the size in whole mebibytes, rounding up. The paper quotes
// all container memory quantities in MiB.
func (s Size) MiBs() int64 {
	if s <= 0 {
		return 0
	}
	return int64((s + MiB - 1) / MiB)
}

// RoundUp returns the smallest multiple of quantum that is >= s.
// It is used for the 128 MiB cudaMallocManaged granularity and for
// pitch alignment arithmetic. A non-positive quantum returns s unchanged.
func (s Size) RoundUp(quantum Size) Size {
	if quantum <= 0 {
		return s
	}
	r := s % quantum
	if r == 0 {
		return s
	}
	return s + quantum - r
}
