package model_test

import (
	"fmt"
	"testing"

	"convgpu/internal/bytesize"
	"convgpu/internal/cluster"
	"convgpu/internal/core"
	"convgpu/internal/model"
	"convgpu/internal/multigpu"
	"convgpu/internal/policy"
)

// tenantTable is the fixed tenant set tenant streams register under:
// weights apart by powers of two for fair-share ordering, priorities
// spread for preemption, a hard quota on two tenants (one tight enough
// to clamp registrations against the 1 GiB device) and guarantees on
// two (so the guarantee-reserved pool share bites other tenants'
// top-ups).
func tenantTable() []core.Tenant {
	return []core.Tenant{
		{Name: "gold", Weight: 4, Priority: 10, Guarantee: 256 * bytesize.MiB},
		{Name: "silver", Weight: 2, Priority: 5, Quota: 600 * bytesize.MiB},
		{Name: "bronze", Weight: 1, Priority: 1, Quota: 448 * bytesize.MiB, Guarantee: 128 * bytesize.MiB},
	}
}

// tenantAlgorithms is every wake policy the oracle checks under
// tenants: the paper's four (whose clamp arithmetic activates once a
// named tenant registers) plus the three tenant-aware policies.
func tenantAlgorithms() []string {
	return append(core.AlgorithmNames(),
		policy.WakeFairShare, policy.WakeQuota, policy.WakePriority)
}

// tenantBackends mirrors backends() but constructs every wake policy
// through the unified policy registry (the registry's factory path is
// exactly what the daemon CLIs and the facade use) and carries the
// tenant table.
func tenantBackends(alg string, seed int64) []model.Backend {
	table := tenantTable()
	factory := func(s int64) (core.Algorithm, error) {
		return policy.NewWake(alg, policy.Config{Seed: s})
	}
	single := func() (core.Scheduler, error) {
		a, err := factory(seed)
		if err != nil {
			return nil, err
		}
		return core.New(core.Config{Capacity: capacity, ContextOverhead: overhead, Algorithm: a})
	}
	multi := func() (core.Scheduler, error) {
		return multigpu.New(multigpu.Config{
			Devices: 2, CapacityPerDevice: capacity,
			AlgorithmFactory: factory, AlgSeed: seed, ContextOverhead: overhead,
		})
	}
	clus := func() (core.Scheduler, error) {
		return cluster.New(cluster.Config{
			Nodes: 2, GPUsPerNode: 2, CapacityPerGPU: capacity,
			AlgorithmFactory: factory, AlgSeed: seed, ContextOverhead: overhead,
		})
	}
	return []model.Backend{
		{
			Name: "core", New: single, Restart: single, Tenants: table,
			Model: func() *model.Model {
				return model.New(model.Config{
					Devices: 1, Capacity: capacity, Overhead: overhead,
					Algorithm: alg, AlgSeeds: []int64{seed},
				})
			},
		},
		{
			Name: "multigpu-2", New: multi, Restart: multi, Tenants: table,
			Model: func() *model.Model {
				return model.New(model.Config{
					Devices: 2, Capacity: capacity, Overhead: overhead,
					Algorithm: alg, AlgSeeds: []int64{seed, seed + 1}, Routed: true,
				})
			},
		},
		{
			Name: "cluster-2x2", New: clus, Tenants: table,
			Model: func() *model.Model {
				return model.New(model.Config{
					Devices: 4, Capacity: capacity, Overhead: overhead,
					Algorithm: alg,
					AlgSeeds:  []int64{seed, seed + 1, seed + 100, seed + 101},
					Routed:    true,
				})
			},
			DeviceOf: func(s core.Scheduler, id core.ContainerID) (int, error) {
				node, dev, err := s.(*cluster.Cluster).NodePlacement(id)
				if err != nil {
					return -1, err
				}
				return node*2 + dev, nil
			},
			Nodes: 2, GPUsPerNode: 2,
			FailNode: func(s core.Scheduler, node int) (core.FailoverReport, error) {
				return s.(*cluster.Cluster).FailNode(node)
			},
			Revive: func(s core.Scheduler, node int) error {
				return s.(*cluster.Cluster).Revive(node)
			},
		},
	}
}

// TestTenantConformance drives every wake policy on every topology
// through tenant-carrying op streams, comparing each step, each
// post-step snapshot, and the per-tenant rollup against the fairness/
// quota oracle. The register mix keeps ~1/4 of containers on the
// default tenant, so the mixed default/named arithmetic is covered too.
func TestTenantConformance(t *testing.T) {
	for _, alg := range tenantAlgorithms() {
		for _, seed := range seedsToRun() {
			for _, b := range tenantBackends(alg, seed) {
				b, alg, seed := b, alg, seed
				t.Run(fmt.Sprintf("%s/%s/seed%d", alg, b.Name, seed), func(t *testing.T) {
					t.Parallel()
					g := model.DefaultGenConfig()
					g.Restarts = b.Restart != nil
					g.TenantSlots = 3
					ops := model.Generate(seed+3000, *opCount, g)
					div, err := model.RunOps(b, ops)
					if err != nil {
						t.Fatalf("harness error: %v", err)
					}
					if div != nil {
						reportDivergence(t, b, alg, seed, ops, div)
					}
				})
			}
		}
	}
}

// TestTenantConformanceNodeKill runs tenant streams densified with node
// kills on the 2x2 cluster: a failover must carry every container's
// tenant binding to the surviving node (the harness rejects a migration
// whose reported tenant differs from the registered one) and the
// post-failover rollups must still match the oracle.
func TestTenantConformanceNodeKill(t *testing.T) {
	for _, alg := range []string{core.AlgFIFO, policy.WakeFairShare, policy.WakePriority} {
		for _, seed := range seedsToRun() {
			b := tenantBackends(alg, seed)[2] // cluster-2x2
			b, alg, seed := b, alg, seed
			t.Run(fmt.Sprintf("%s/%s/seed%d", alg, b.Name, seed), func(t *testing.T) {
				t.Parallel()
				g := model.DefaultGenConfig()
				g.NodeKills = true
				g.TenantSlots = 3
				ops := model.Generate(seed+4000, *opCount, g)
				for i := 15; i < len(ops); i += 20 {
					ops[i] = model.Op{Kind: model.OpNodeKill, Pick: i / 20}
				}
				div, err := model.RunOps(b, ops)
				if err != nil {
					t.Fatalf("harness error: %v", err)
				}
				if div != nil {
					reportDivergence(t, b, alg, seed, ops, div)
				}
			})
		}
	}
}
