// Package model is the conformance oracle for the ConVGPU scheduler: a
// small, obviously-correct sequential reference model of the paper's
// admission/suspend/redistribute semantics, a deterministic harness that
// drives the real stack (core.State, multigpu.State, cluster.Cluster —
// and, in the tests, the full daemon+ipc loop) through seeded op
// streams while comparing every observable result against the model,
// a ddmin shrinker that reduces a failing stream to a minimal
// reproducer, and a history checker that validates structural safety
// invariants over the scheduler's event log.
//
// The model deliberately trades everything the real scheduler has for
// performance — fast paths, RWMutex/leaf-lock splitting, pooled
// buffers, routing planes — for a single flat state machine: plain
// maps, one method per scheduler operation, straight-line loops that
// mirror the paper's redistribution description. Each of the four
// redistribution algorithms (FIFO, Best-Fit, Recent-Use, Random) is
// reimplemented here independently from internal/core, so a bug in
// either implementation shows up as a divergence.
//
// Division of labor between the two checkers:
//
//   - Exact conformance (Backend + RunOps): the harness executes each
//     op against both the real scheduler and the model and demands
//     identical results — decision, ticket number, granted bytes,
//     admitted/cancelled sequences, error class — plus an identical
//     full state snapshot (per-container limit/grant/used/pending and
//     per-device pool) after every op. This is the strong oracle: it
//     covers cross-container properties like "no grant while an
//     earlier FIFO candidate is parked" that cannot be recovered from
//     the event log alone (grant reclamation during redistribution
//     emits no per-container usage event, and FIFO picks by container
//     creation order, not ticket order). It requires sequential
//     driving.
//
//   - History checking (CheckHistory): structural invariants over the
//     event stream — per-device capacity conservation, non-negative
//     usage, strictly increasing suspend tickets, per-container FIFO
//     resume order, no resume of an unparked ticket — that remain
//     sound under concurrency and injected faults, where exact
//     prediction is impossible. The chaos suite feeds it the event
//     stream of a full-stack run over a hostile transport.
//
// Replaying a failure: every conformance test prints the generator
// seed and, after shrinking, the minimal op stream. See TESTING.md for
// the replay workflow.
package model
