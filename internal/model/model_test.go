package model_test

import (
	"flag"
	"fmt"
	"testing"

	"convgpu/internal/bytesize"
	"convgpu/internal/cluster"
	"convgpu/internal/core"
	"convgpu/internal/model"
	"convgpu/internal/multigpu"
)

// The short run (defaults) keeps `go test ./...` fast; `make model`
// raises both, and `make model-long` goes further still. To replay a
// reported failure: -model.seed pins the generator to exactly one seed.
var (
	seedCount = flag.Int("model.seeds", 4, "seeds per algorithm/backend combination")
	opCount   = flag.Int("model.ops", 300, "ops per generated stream")
	onlySeed  = flag.Int64("model.seed", -1, "replay a single generator seed (overrides -model.seeds)")
)

const (
	capacity = bytesize.GiB
	overhead = core.DefaultContextOverhead
)

// backends returns the three topologies the oracle checks, each built
// around the given algorithm and seed: a single core.State, a 2-device
// multigpu.State, and a 2x2 cluster.Cluster. Restarts are exercised on
// the first two; cluster recovery migrates claims across nodes (every
// un-pinned claim lands on the first accepting node), which is a
// placement-policy question the sequential model does not answer, so
// restart ops are disabled there.
func backends(alg string, seed int64) []model.Backend {
	single := func() (core.Scheduler, error) {
		a, err := core.NewAlgorithm(alg, seed)
		if err != nil {
			return nil, err
		}
		return core.New(core.Config{Capacity: capacity, ContextOverhead: overhead, Algorithm: a})
	}
	multi := func() (core.Scheduler, error) {
		return multigpu.New(multigpu.Config{
			Devices: 2, CapacityPerDevice: capacity,
			Algorithm: alg, AlgSeed: seed, ContextOverhead: overhead,
		})
	}
	clus := func() (core.Scheduler, error) {
		return cluster.New(cluster.Config{
			Nodes: 2, GPUsPerNode: 2, CapacityPerGPU: capacity,
			Algorithm: alg, AlgSeed: seed, ContextOverhead: overhead,
		})
	}
	return []model.Backend{
		{
			Name: "core", New: single, Restart: single,
			Model: func() *model.Model {
				return model.New(model.Config{
					Devices: 1, Capacity: capacity, Overhead: overhead,
					Algorithm: alg, AlgSeeds: []int64{seed},
				})
			},
		},
		{
			Name: "multigpu-2", New: multi, Restart: multi,
			Model: func() *model.Model {
				return model.New(model.Config{
					Devices: 2, Capacity: capacity, Overhead: overhead,
					Algorithm: alg, AlgSeeds: []int64{seed, seed + 1}, Routed: true,
				})
			},
		},
		{
			Name: "cluster-2x2", New: clus,
			Model: func() *model.Model {
				return model.New(model.Config{
					Devices: 4, Capacity: capacity, Overhead: overhead,
					Algorithm: alg,
					AlgSeeds:  []int64{seed, seed + 1, seed + 100, seed + 101},
					Routed:    true,
				})
			},
			DeviceOf: func(s core.Scheduler, id core.ContainerID) (int, error) {
				node, dev, err := s.(*cluster.Cluster).NodePlacement(id)
				if err != nil {
					return -1, err
				}
				return node*2 + dev, nil
			},
			Nodes: 2, GPUsPerNode: 2,
			FailNode: func(s core.Scheduler, node int) (core.FailoverReport, error) {
				return s.(*cluster.Cluster).FailNode(node)
			},
			Revive: func(s core.Scheduler, node int) error {
				return s.(*cluster.Cluster).Revive(node)
			},
		},
	}
}

// reportDivergence shrinks the failing stream to a minimal reproducer
// and fails the test with a replayable trace.
func reportDivergence(t *testing.T, b model.Backend, alg string, seed int64, ops []model.Op, div *model.Divergence) {
	t.Helper()
	min := model.Shrink(ops, func(sub []model.Op) bool { return model.Fails(b, sub) })
	d, err := model.RunOps(b, min)
	if err != nil || d == nil {
		// Shrinking should preserve the failure; fall back to the
		// original stream if it somehow did not.
		min, d = ops, div
	}
	t.Fatalf("%s/%s diverges from the reference model (seed=%d, %d ops)\nfirst divergence: %v\nminimal reproducer (%d ops):\n%s"+
		"replay: go test ./internal/model -run 'TestConformance' -model.seed=%d -model.ops=%d",
		b.Name, alg, seed, len(ops), d, len(min), model.FormatOps(min), seed, len(ops))
}

func seedsToRun() []int64 {
	if *onlySeed >= 0 {
		return []int64{*onlySeed}
	}
	out := make([]int64, *seedCount)
	for i := range out {
		out[i] = int64(i + 1)
	}
	return out
}

// TestConformance drives every algorithm on every topology through
// seeded op streams, comparing each step and each post-step snapshot
// against the sequential reference model.
func TestConformance(t *testing.T) {
	for _, alg := range core.AlgorithmNames() {
		for _, seed := range seedsToRun() {
			for _, b := range backends(alg, seed) {
				b, alg, seed := b, alg, seed
				t.Run(fmt.Sprintf("%s/%s/seed%d", alg, b.Name, seed), func(t *testing.T) {
					t.Parallel()
					g := model.DefaultGenConfig()
					g.Restarts = b.Restart != nil
					ops := model.Generate(seed, *opCount, g)
					div, err := model.RunOps(b, ops)
					if err != nil {
						t.Fatalf("harness error: %v", err)
					}
					if div != nil {
						reportDivergence(t, b, alg, seed, ops, div)
					}
				})
			}
		}
	}
}

// TestConformanceRestartHeavy skews the stream toward restarts so the
// recovery replay path (RestorePlacement → EnsureRegistered → Restore)
// is hit many times per run, checking restart idempotence: recovering
// the same live set must reproduce the same grants and pools.
func TestConformanceRestartHeavy(t *testing.T) {
	for _, alg := range []string{core.AlgFIFO, core.AlgBestFit} {
		for _, seed := range seedsToRun() {
			for _, b := range backends(alg, seed)[:2] { // core + multigpu support restart
				b, alg, seed := b, alg, seed
				t.Run(fmt.Sprintf("%s/%s/seed%d", alg, b.Name, seed), func(t *testing.T) {
					t.Parallel()
					g := model.DefaultGenConfig()
					g.Restarts = true
					ops := model.Generate(seed+7000, *opCount, g)
					// Densify restarts: every 25th op becomes one.
					for i := 12; i < len(ops); i += 25 {
						ops[i] = model.Op{Kind: model.OpRestart}
					}
					div, err := model.RunOps(b, ops)
					if err != nil {
						t.Fatalf("harness error: %v", err)
					}
					if div != nil {
						reportDivergence(t, b, alg, seed, ops, div)
					}
				})
			}
		}
	}
}

// TestConformanceNodeKill is the failure-domain headline: on the 2x2
// cluster, streams densified with node kills must keep the real backend
// and the model in lockstep through every failover — which mechanically
// asserts that across any schedule of node kills, every parked ticket
// is either served, migrated, or observably rejected, never silently
// lost (the harness's nodeKill step accounts each one exactly once).
// At least 15 seeds per algorithm run regardless of -model.seeds, so
// the default sweep covers 60+ seeded kill schedules.
func TestConformanceNodeKill(t *testing.T) {
	seeds := seedsToRun()
	if *onlySeed < 0 && len(seeds) < 15 {
		seeds = make([]int64, 15)
		for i := range seeds {
			seeds[i] = int64(i + 1)
		}
	}
	for _, alg := range core.AlgorithmNames() {
		for _, seed := range seeds {
			b := backends(alg, seed)[2] // cluster-2x2
			b, alg, seed := b, alg, seed
			t.Run(fmt.Sprintf("%s/%s/seed%d", alg, b.Name, seed), func(t *testing.T) {
				t.Parallel()
				g := model.DefaultGenConfig()
				g.NodeKills = true
				ops := model.Generate(seed+9000, *opCount, g)
				// Densify kills: every 20th op becomes one, alternating the
				// victim node via the generator-drawn pick.
				for i := 15; i < len(ops); i += 20 {
					ops[i] = model.Op{Kind: model.OpNodeKill, Pick: i / 20}
				}
				div, err := model.RunOps(b, ops)
				if err != nil {
					t.Fatalf("harness error: %v", err)
				}
				if div != nil {
					reportDivergence(t, b, alg, seed, ops, div)
				}
			})
		}
	}
}

// TestShrinkSubsequencesExecutable pins the property ddmin relies on:
// any subsequence of a generated stream runs without harness errors.
func TestShrinkSubsequencesExecutable(t *testing.T) {
	b := backends(core.AlgFIFO, 1)[0]
	g := model.DefaultGenConfig()
	ops := model.Generate(42, 120, g)
	// Drop every third op: the result must still execute cleanly.
	var sub []model.Op
	for i, o := range ops {
		if i%3 != 0 {
			sub = append(sub, o)
		}
	}
	div, err := model.RunOps(b, sub)
	if err != nil {
		t.Fatalf("subsequence not executable: %v", err)
	}
	if div != nil {
		t.Fatalf("subsequence diverged: %v", div)
	}
}
