package model

import (
	"errors"
	"fmt"

	"convgpu/internal/bytesize"
	"convgpu/internal/core"
)

// Backend binds the harness to one real scheduler topology. New must
// return a fresh, empty scheduler every call (RunOps and the shrinker
// re-run streams from scratch); Model must return the matching fresh
// reference model.
type Backend struct {
	// Name labels the backend in failure messages.
	Name string
	// New builds a fresh real scheduler.
	New func() (core.Scheduler, error)
	// Model builds the matching fresh reference model.
	Model func() *Model
	// Restart builds the replacement scheduler for an OpRestart — the
	// "daemon crashed, state lost" backend the harness replays recovery
	// into. nil disables restart ops (they become no-ops).
	Restart func() (core.Scheduler, error)
	// DeviceOf maps a registered container to its leaf device index in
	// the model's device order. Defaults to Scheduler.Placement, which
	// is right for core.State and multigpu.State; a cluster needs
	// node*GPUsPerNode+device from NodePlacement.
	DeviceOf func(s core.Scheduler, id core.ContainerID) (int, error)
	// Nodes and GPUsPerNode describe the cluster topology for OpNodeKill
	// (node n owns model devices [n*GPUsPerNode, (n+1)*GPUsPerNode)).
	Nodes       int
	GPUsPerNode int
	// FailNode declares a node dead on the real backend and returns the
	// failover report. nil disables OpNodeKill (it becomes a no-op).
	FailNode func(s core.Scheduler, node int) (core.FailoverReport, error)
	// Revive re-opens a failed node for placement; the harness calls it
	// right after each kill so the rest of the stream stays executable
	// (the flapping-restart path: the slot already holds a fresh
	// scheduler).
	Revive func(s core.Scheduler, node int) error
	// Tenants is the tenant table Op.Tenant indexes resolve against
	// (entry k-1 for Op.Tenant k, wrapping). Empty disables tenant
	// registrations: every op degenerates to the default tenant.
	Tenants []core.Tenant
}

// Divergence reports the first point where the real scheduler and the
// model disagreed.
type Divergence struct {
	Step   int
	Op     Op
	Detail string
}

func (d *Divergence) String() string {
	return fmt.Sprintf("step %d (%s): %s", d.Step, d.Op, d.Detail)
}

// Fails reports whether a stream still reproduces a divergence on a
// fresh backend — the shrinker's predicate.
func Fails(b Backend, ops []Op) bool {
	d, err := RunOps(b, ops)
	return err == nil && d != nil
}

// RunOps executes the stream against a fresh real scheduler and a fresh
// model in lockstep, comparing every result and the full state snapshot
// after every op. It returns the first divergence (nil when the stream
// conforms); the error return is for harness-level failures (backend
// construction), not scheduler disagreements.
func RunOps(b Backend, ops []Op) (*Divergence, error) {
	real, err := b.New()
	if err != nil {
		return nil, fmt.Errorf("model: backend %s: %w", b.Name, err)
	}
	r := &runner{
		b:     b,
		real:  real,
		model: b.Model(),
		addr:  0x1000,
		live:  make(map[int][]allocRec),
		pend:  make(map[int][]pendRec),
		lims:  make(map[int]bytesize.Size),
		tens:  make(map[int]core.Tenant),
	}
	for i, op := range ops {
		if d := r.step(i, op); d != nil {
			return d, nil
		}
		if d := r.crossCheck(i, op); d != nil {
			return d, nil
		}
	}
	return nil, nil
}

type allocRec struct {
	pid  int
	addr uint64
	size bytesize.Size
}

type pendRec struct {
	ticket core.Ticket
	pid    int
	size   bytesize.Size
}

type runner struct {
	b     Backend
	real  core.Scheduler
	model *Model
	addr  uint64

	live     map[int][]allocRec    // slot -> confirmed allocations, oldest first
	pend     map[int][]pendRec     // slot -> parked requests, suspend order
	lims     map[int]bytesize.Size // slot -> registered limit
	tens     map[int]core.Tenant   // slot -> tenant at registration
	regOrder []int                 // slots currently registered, registration order
}

// badAddr is a device address the harness never hands out (real
// addresses start at 0x1000 and grow by 0x10), used to drive the
// unknown-address error path deterministically.
const badAddr = 0xdead_beef_0000_0000

func (r *runner) id(slot int) core.ContainerID {
	return core.ContainerID(fmt.Sprintf("c%d", slot))
}

func (r *runner) slotOf(id core.ContainerID) int {
	var slot int
	fmt.Sscanf(string(id), "c%d", &slot)
	return slot
}

func (r *runner) nextAddr() uint64 {
	r.addr += 0x10
	return r.addr
}

// tenantOf resolves an op's tenant index against the backend's table.
func (r *runner) tenantOf(op Op) core.Tenant {
	if op.Tenant <= 0 || len(r.b.Tenants) == 0 {
		return core.Tenant{}
	}
	return r.b.Tenants[(op.Tenant-1)%len(r.b.Tenants)]
}

func (r *runner) deviceOf(id core.ContainerID) (int, error) {
	if r.b.DeviceOf != nil {
		return r.b.DeviceOf(r.real, id)
	}
	return r.real.Placement(id)
}

func (r *runner) fail(step int, op Op, format string, args ...any) *Divergence {
	return &Divergence{Step: step, Op: op, Detail: fmt.Sprintf(format, args...)}
}

func (r *runner) step(i int, op Op) *Divergence {
	id := r.id(op.C)
	switch op.Kind {
	case OpRegister:
		t := r.tenantOf(op)
		var rg bytesize.Size
		var rerr error
		if t.Name != "" {
			rg, rerr = r.real.RegisterTenant(id, op.Limit, t)
		} else {
			rg, rerr = r.real.Register(id, op.Limit)
		}
		device := -1
		if rerr == nil {
			d, derr := r.deviceOf(id)
			if derr != nil {
				return r.fail(i, op, "real registered %s but reports no placement: %v", id, derr)
			}
			device = d
		}
		mg, merr := r.model.RegisterTenant(id, op.Limit, device, t)
		if c := diffErr(rerr, merr); c != "" {
			return r.fail(i, op, "register error mismatch: %s", c)
		}
		if rerr == nil {
			if rg != mg {
				return r.fail(i, op, "granted %v, model predicts %v", rg, mg)
			}
			r.lims[op.C] = op.Limit
			r.tens[op.C] = t
			r.live[op.C] = nil
			r.pend[op.C] = nil
			r.regOrder = append(r.regOrder, op.C)
		}

	case OpAlloc, OpAbort:
		rres, rerr := r.real.RequestAlloc(id, op.PID, op.Size)
		mres, merr := r.model.RequestAlloc(id, op.PID, op.Size)
		if c := diffErr(rerr, merr); c != "" {
			return r.fail(i, op, "alloc error mismatch: %s", c)
		}
		if rerr != nil {
			return nil
		}
		if rres != mres {
			return r.fail(i, op, "alloc result %+v, model predicts %+v", rres, mres)
		}
		switch rres.Decision {
		case core.Accept:
			if op.Kind == OpAbort {
				ru, rerr := r.real.AbortAlloc(id, op.PID, op.Size)
				mu, merr := r.model.AbortAlloc(id, op.PID, op.Size)
				if c := diffErr(rerr, merr); c != "" {
					return r.fail(i, op, "abort error mismatch: %s", c)
				}
				if d := r.applyUpdate(i, op, ru, mu); d != nil {
					return d
				}
			} else {
				addr := r.nextAddr()
				rerr := r.real.ConfirmAlloc(id, op.PID, addr, op.Size)
				merr := r.model.ConfirmAlloc(id, op.PID, addr, op.Size)
				if c := diffErr(rerr, merr); c != "" {
					return r.fail(i, op, "confirm error mismatch: %s", c)
				}
				if rerr == nil {
					r.live[op.C] = append(r.live[op.C], allocRec{pid: op.PID, addr: addr, size: op.Size})
				}
			}
		case core.Suspend:
			r.pend[op.C] = append(r.pend[op.C], pendRec{ticket: rres.Ticket, pid: op.PID, size: op.Size})
		}

	case OpFree:
		pid, addr := op.PID, uint64(badAddr)
		var rec allocRec
		if n := len(r.live[op.C]); n > 0 {
			rec = r.live[op.C][op.Pick%n]
			pid, addr = rec.pid, rec.addr
		}
		rs, ru, rerr := r.real.Free(id, pid, addr)
		ms, mu, merr := r.model.Free(id, pid, addr)
		if c := diffErr(rerr, merr); c != "" {
			return r.fail(i, op, "free error mismatch: %s", c)
		}
		if rerr != nil {
			return nil
		}
		if rs != ms {
			return r.fail(i, op, "freed %v, model predicts %v", rs, ms)
		}
		r.live[op.C] = removeAlloc(r.live[op.C], addr)
		if d := r.applyUpdate(i, op, ru, mu); d != nil {
			return d
		}

	case OpClose:
		rrel, ru, rerr := r.real.Close(id)
		mrel, mu, merr := r.model.Close(id)
		if c := diffErr(rerr, merr); c != "" {
			return r.fail(i, op, "close error mismatch: %s", c)
		}
		if rerr != nil {
			return nil
		}
		if rrel != mrel {
			return r.fail(i, op, "close released %v, model predicts %v", rrel, mrel)
		}
		r.live[op.C] = nil
		r.pend[op.C] = nil
		r.regOrder = removeSlot(r.regOrder, op.C)
		if d := r.applyUpdate(i, op, ru, mu); d != nil {
			return d
		}

	case OpProcExit:
		rrel, ru, rerr := r.real.ProcessExit(id, op.PID)
		mrel, mu, merr := r.model.ProcessExit(id, op.PID)
		if c := diffErr(rerr, merr); c != "" {
			return r.fail(i, op, "procexit error mismatch: %s", c)
		}
		if rerr != nil {
			return nil
		}
		if rrel != mrel {
			return r.fail(i, op, "procexit released %v, model predicts %v", rrel, mrel)
		}
		r.live[op.C] = removePID(r.live[op.C], op.PID)
		r.pend[op.C] = removePendPID(r.pend[op.C], op.PID)
		if d := r.applyUpdate(i, op, ru, mu); d != nil {
			return d
		}

	case OpMemInfo:
		rf, rt, rerr := r.real.MemInfo(id)
		mf, mt, merr := r.model.MemInfo(id)
		if c := diffErr(rerr, merr); c != "" {
			return r.fail(i, op, "meminfo error mismatch: %s", c)
		}
		if rerr == nil && (rf != mf || rt != mt) {
			return r.fail(i, op, "meminfo (%v,%v), model predicts (%v,%v)", rf, rt, mf, mt)
		}

	case OpDrop:
		tickets := []core.Ticket{1 << 62} // unknown ticket: no-op on both sides
		if n := len(r.pend[op.C]); n > 0 {
			tickets = []core.Ticket{r.pend[op.C][op.Pick%n].ticket}
		}
		ru, rerr := r.real.DropPending(id, tickets)
		mu, merr := r.model.DropPending(id, tickets)
		if c := diffErr(rerr, merr); c != "" {
			return r.fail(i, op, "drop error mismatch: %s", c)
		}
		if rerr != nil {
			return nil
		}
		r.pend[op.C] = removeTicket(r.pend[op.C], tickets[0])
		if d := r.applyUpdate(i, op, ru, mu); d != nil {
			return d
		}

	case OpRestart:
		if r.b.Restart == nil {
			return nil
		}
		return r.restart(i, op)

	case OpNodeKill:
		if r.b.FailNode == nil || r.b.Nodes < 2 || r.b.GPUsPerNode < 1 {
			return nil
		}
		return r.nodeKill(i, op)
	}
	return nil
}

// nodeKill drives the headline failure-domain invariant: kill one node,
// fail it over, and mechanically account for every pre-kill parked
// ticket of that node's containers — each must be migrated, admitted,
// or observably evicted, never silently lost. The real backend makes
// the placement decisions; the model replays them (register on the
// reported target, re-queue each ticket) and must land in the same
// state, which the post-op crossCheck verifies in full. Afterwards the
// node is revived — its slot holds a fresh scheduler, mirrored by the
// model's device reset — so the rest of the stream stays executable.
func (r *runner) nodeKill(i int, op Op) *Divergence {
	node := op.Pick % r.b.Nodes
	gpus := r.b.GPUsPerNode

	// Snapshot the dying node's pre-kill state: which slots live there,
	// and their parked tickets in suspend order.
	pre := make(map[int][]pendRec)
	for slot := range r.lims {
		id := r.id(slot)
		dev, ok := r.model.Device(id)
		if !ok {
			continue
		}
		if _, registered := r.modelRegistered(id); !registered {
			continue
		}
		if dev/gpus == node {
			pre[slot] = append([]pendRec{}, r.pend[slot]...)
		}
	}

	rep, err := r.b.FailNode(r.real, node)
	if err != nil {
		return r.fail(i, op, "failnode(%d): %v", node, err)
	}

	// The model's mirror of ReplaceMember: the node's devices reboot
	// empty with their original seeds.
	devs := make([]int, gpus)
	for d := 0; d < gpus; d++ {
		devs[d] = node*gpus + d
	}
	r.model.ResetDevices(devs)

	accounted := make(map[int]bool, len(pre))
	for _, mv := range rep.Moves {
		slot := r.slotOf(mv.ID)
		want, ok := pre[slot]
		if !ok {
			return r.fail(i, op, "failover moved %s, which was not on node %d", mv.ID, node)
		}
		if accounted[slot] {
			return r.fail(i, op, "failover reported %s twice", mv.ID)
		}
		accounted[slot] = true

		// Ticket accounting: the report must cover exactly the pre-kill
		// parked tickets, in park order.
		if len(mv.Tickets) != len(want) {
			return r.fail(i, op, "%s: failover accounts %d tickets, %d were parked — tickets lost",
				mv.ID, len(mv.Tickets), len(want))
		}
		for j, tm := range mv.Tickets {
			if tm.OldTicket != want[j].ticket || tm.PID != want[j].pid || tm.Size != want[j].size {
				return r.fail(i, op, "%s ticket %d: failover reports (t=%d pid=%d size=%v), parked was (t=%d pid=%d size=%v)",
					mv.ID, j, tm.OldTicket, tm.PID, tm.Size, want[j].ticket, want[j].pid, want[j].size)
			}
		}

		// Allocations died with the node on both sides.
		r.live[slot] = nil
		r.pend[slot] = nil

		if mv.Evicted {
			for _, tm := range mv.Tickets {
				if tm.Outcome != core.TicketEvicted {
					return r.fail(i, op, "%s evicted but ticket %d outcome is %v", mv.ID, tm.OldTicket, tm.Outcome)
				}
			}
			r.regOrder = removeSlot(r.regOrder, slot)
			continue
		}

		// Replay the migration into the model with the real backend's
		// decisions: fresh registration on the reported target, then each
		// ticket re-queued through ordinary admission.
		flat, derr := r.deviceOf(mv.ID)
		if derr != nil {
			return r.fail(i, op, "migrated %s has no placement: %v", mv.ID, derr)
		}
		if flat/gpus != mv.To {
			return r.fail(i, op, "%s reported on node %d but placed on device %d", mv.ID, mv.To, flat)
		}
		if mv.Tenant != r.tens[slot] {
			return r.fail(i, op, "%s migrated with tenant %+v, registered with %+v — tenant binding lost",
				mv.ID, mv.Tenant, r.tens[slot])
		}
		mg, merr := r.model.RegisterTenant(mv.ID, mv.Limit, flat, mv.Tenant)
		if merr != nil {
			return r.fail(i, op, "model refuses migrated registration of %s: %v", mv.ID, merr)
		}
		if mg != mv.Granted {
			return r.fail(i, op, "%s migrated with grant %v, model predicts %v", mv.ID, mv.Granted, mg)
		}
		for _, tm := range mv.Tickets {
			res, merr := r.model.RequestAlloc(mv.ID, tm.PID, tm.Size)
			if merr != nil {
				return r.fail(i, op, "model refuses re-queued ticket %d of %s: %v", tm.OldTicket, mv.ID, merr)
			}
			switch tm.Outcome {
			case core.TicketAdmitted:
				if res.Decision != core.Accept {
					return r.fail(i, op, "%s ticket %d admitted by failover, model decides %v", mv.ID, tm.OldTicket, res.Decision)
				}
				addr := r.nextAddr()
				rerr := r.real.ConfirmAlloc(mv.ID, tm.PID, addr, tm.Size)
				merr := r.model.ConfirmAlloc(mv.ID, tm.PID, addr, tm.Size)
				if c := diffErr(rerr, merr); c != "" {
					return r.fail(i, op, "confirm of failover-admitted ticket %d error mismatch: %s", tm.OldTicket, c)
				}
				if rerr != nil {
					return r.fail(i, op, "confirm of failover-admitted ticket %d failed: %v", tm.OldTicket, rerr)
				}
				r.live[slot] = append(r.live[slot], allocRec{pid: tm.PID, addr: addr, size: tm.Size})
			case core.TicketMigrated:
				if res.Decision != core.Suspend {
					return r.fail(i, op, "%s ticket %d migrated by failover, model decides %v", mv.ID, tm.OldTicket, res.Decision)
				}
				if res.Ticket != tm.NewTicket {
					return r.fail(i, op, "%s ticket %d re-parked as %d, model assigns %d", mv.ID, tm.OldTicket, tm.NewTicket, res.Ticket)
				}
				r.pend[slot] = append(r.pend[slot], pendRec{ticket: tm.NewTicket, pid: tm.PID, size: tm.Size})
			case core.TicketEvicted:
				if res.Decision != core.Reject {
					return r.fail(i, op, "%s ticket %d evicted by failover, model decides %v", mv.ID, tm.OldTicket, res.Decision)
				}
			}
		}
	}
	// Every doomed slot must be accounted exactly once.
	for slot := range pre {
		if !accounted[slot] {
			return r.fail(i, op, "container c%d was on node %d but the failover report omits it — state lost", slot, node)
		}
	}

	if r.b.Revive != nil {
		if err := r.b.Revive(r.real, node); err != nil {
			return r.fail(i, op, "revive(%d): %v", node, err)
		}
	}
	return nil
}

// modelRegistered reports whether id is registered (not merely pinned)
// in the model.
func (r *runner) modelRegistered(id core.ContainerID) (int, bool) {
	for _, v := range r.model.Containers() {
		if v.ID == id {
			return v.Device, true
		}
	}
	return 0, false
}

// restart simulates a scheduler crash: the backend is rebuilt empty and
// the harness replays the recovery protocol the daemon uses —
// RestorePlacement, EnsureRegistered with the recorded limit, then
// Restore for every live allocation — against both sides. Parked
// requests do not survive a crash (their responders died with the
// connection), so both sides drop them.
func (r *runner) restart(i int, op Op) *Divergence {
	type replayReg struct {
		slot   int
		id     core.ContainerID
		device int
	}
	var regs []replayReg
	for _, slot := range r.regOrder {
		id := r.id(slot)
		dev, ok := r.model.Device(id)
		if !ok {
			return r.fail(i, op, "harness bug: slot %d registered but unplaced in model", slot)
		}
		regs = append(regs, replayReg{slot: slot, id: id, device: dev})
	}

	real2, err := r.b.Restart()
	if err != nil {
		return r.fail(i, op, "restart backend: %v", err)
	}
	model2 := r.b.Model()
	r.real, r.model = real2, model2

	for _, reg := range regs {
		rerr := r.real.RestorePlacement(reg.id, reg.device)
		merr := r.model.RestorePlacement(reg.id, reg.device)
		if c := diffErr(rerr, merr); c != "" {
			return r.fail(i, op, "restoreplacement %s error mismatch: %s", reg.id, c)
		}
		var rg bytesize.Size
		if t := r.tens[reg.slot]; t.Name != "" {
			rg, rerr = r.real.EnsureRegisteredTenant(reg.id, r.lims[reg.slot], t)
		} else {
			rg, rerr = r.real.EnsureRegistered(reg.id, r.lims[reg.slot])
		}
		mg, merr := r.model.EnsureRegisteredTenant(reg.id, r.lims[reg.slot], reg.device, r.tens[reg.slot])
		if c := diffErr(rerr, merr); c != "" {
			return r.fail(i, op, "ensureregistered %s error mismatch: %s", reg.id, c)
		}
		if rerr == nil && rg != mg {
			return r.fail(i, op, "recovery granted %s %v, model predicts %v", reg.id, rg, mg)
		}
	}
	for _, reg := range regs {
		for _, rec := range r.live[reg.slot] {
			rerr := r.real.Restore(reg.id, rec.pid, rec.addr, rec.size)
			merr := r.model.Restore(reg.id, rec.pid, rec.addr, rec.size)
			if c := diffErr(rerr, merr); c != "" {
				return r.fail(i, op, "restore %s %#x error mismatch: %s", reg.id, rec.addr, c)
			}
		}
	}
	for slot := range r.pend {
		r.pend[slot] = nil
	}
	return nil
}

// applyUpdate checks the real Update against the model's prediction
// exactly — same admitted tickets in the same order, same cancelled
// tickets — then plays the consequences forward: every admitted ticket
// is confirmed (on both sides) at a fresh address, every cancelled one
// forgotten.
func (r *runner) applyUpdate(i int, op Op, ru, mu core.Update) *Divergence {
	if !sameAdmits(ru.Admitted, mu.Admitted) || !sameAdmits(ru.Cancelled, mu.Cancelled) {
		return r.fail(i, op, "update mismatch: real %s, model %s", fmtUpdate(ru), fmtUpdate(mu))
	}
	for _, ad := range ru.Admitted {
		slot := r.slotOf(ad.Container)
		rec, rest, ok := takeTicket(r.pend[slot], ad.Ticket)
		if !ok {
			return r.fail(i, op, "admitted unknown ticket %d for %s", ad.Ticket, ad.Container)
		}
		r.pend[slot] = rest
		addr := r.nextAddr()
		rerr := r.real.ConfirmAlloc(ad.Container, rec.pid, addr, rec.size)
		merr := r.model.ConfirmAlloc(ad.Container, rec.pid, addr, rec.size)
		if c := diffErr(rerr, merr); c != "" {
			return r.fail(i, op, "confirm of admitted ticket %d error mismatch: %s", ad.Ticket, c)
		}
		if rerr != nil {
			return r.fail(i, op, "confirm of admitted ticket %d failed: %v", ad.Ticket, rerr)
		}
		r.live[slot] = append(r.live[slot], allocRec{pid: rec.pid, addr: addr, size: rec.size})
	}
	for _, ca := range ru.Cancelled {
		slot := r.slotOf(ca.Container)
		if _, rest, ok := takeTicket(r.pend[slot], ca.Ticket); ok {
			r.pend[slot] = rest
		}
	}
	return nil
}

// crossCheck compares the complete observable state after an op: the
// real scheduler's own invariants, every container's
// limit/grant/used/pending/placement against the model, and every
// device's free pool.
func (r *runner) crossCheck(i int, op Op) *Divergence {
	if err := r.real.CheckInvariants(); err != nil {
		return r.fail(i, op, "real invariant violation: %v", err)
	}
	snap := r.real.Snapshot()
	byID := make(map[core.ContainerID]core.ContainerInfo, len(snap))
	for _, info := range snap {
		byID[info.ID] = info
	}
	views := r.model.Containers()
	if len(views) != len(snap) {
		return r.fail(i, op, "real has %d containers, model has %d", len(snap), len(views))
	}
	for _, v := range views {
		info, ok := byID[v.ID]
		if !ok {
			return r.fail(i, op, "model container %s missing from real snapshot", v.ID)
		}
		if info.Limit != v.Limit || info.Grant != v.Grant || info.Used != v.Used || info.Pending != v.Pending {
			return r.fail(i, op, "%s state: real limit=%v grant=%v used=%v pending=%d, model limit=%v grant=%v used=%v pending=%d",
				v.ID, info.Limit, info.Grant, info.Used, info.Pending, v.Limit, v.Grant, v.Used, v.Pending)
		}
		dev, err := r.deviceOf(v.ID)
		if err != nil {
			return r.fail(i, op, "real reports no placement for %s: %v", v.ID, err)
		}
		if dev != v.Device {
			return r.fail(i, op, "%s placed on device %d, model has %d", v.ID, dev, v.Device)
		}
	}
	devs := r.real.Devices()
	pools := r.model.Pools()
	if len(devs) != len(pools) {
		return r.fail(i, op, "real reports %d devices, model has %d", len(devs), len(pools))
	}
	for j, d := range devs {
		if d.PoolFree != pools[j] {
			return r.fail(i, op, "device %d pool: real %v, model %v", j, d.PoolFree, pools[j])
		}
	}
	rten := r.real.Tenants()
	mten := r.model.Tenants()
	if len(rten) != len(mten) {
		return r.fail(i, op, "real reports %d tenants, model has %d (real %+v, model %+v)",
			len(rten), len(mten), rten, mten)
	}
	for j := range rten {
		if rten[j] != mten[j] {
			return r.fail(i, op, "tenant rollup mismatch: real %+v, model %+v", rten[j], mten[j])
		}
	}
	return nil
}

// --- comparison helpers ---

// errClass buckets an error for comparison: the scheduler's sentinel
// errors compare by identity, anything else as a generic "error", so
// wrapped messages with differing text still match.
func errClass(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, core.ErrUnknownContainer):
		return "unknown-container"
	case errors.Is(err, core.ErrDuplicateContainer):
		return "duplicate-container"
	case errors.Is(err, core.ErrLimitExceedsCapacity):
		return "limit-exceeds-capacity"
	case errors.Is(err, core.ErrInvalidLimit):
		return "invalid-limit"
	case errors.Is(err, core.ErrInvalidSize):
		return "invalid-size"
	case errors.Is(err, core.ErrUnknownAddr):
		return "unknown-addr"
	case errors.Is(err, core.ErrUnknownPID):
		return "unknown-pid"
	case errors.Is(err, core.ErrNotCharged):
		return "not-charged"
	case errors.Is(err, core.ErrLimitMismatch):
		return "limit-mismatch"
	case errors.Is(err, core.ErrRestoreInfeasible):
		return "restore-infeasible"
	case errors.Is(err, core.ErrUnknownDevice):
		return "unknown-device"
	default:
		return "error"
	}
}

// diffErr compares two errors by class, returning "" when they match
// and a description otherwise.
func diffErr(real, model error) string {
	rc, mc := errClass(real), errClass(model)
	if rc == mc {
		return ""
	}
	return fmt.Sprintf("real %q (%v), model %q (%v)", rc, real, mc, model)
}

func sameAdmits(a, b []core.Admitted) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func fmtUpdate(u core.Update) string {
	return fmt.Sprintf("{admitted:%v cancelled:%v}", u.Admitted, u.Cancelled)
}

func removeAlloc(recs []allocRec, addr uint64) []allocRec {
	out := recs[:0]
	for _, rec := range recs {
		if rec.addr != addr {
			out = append(out, rec)
		}
	}
	return out
}

func removePID(recs []allocRec, pid int) []allocRec {
	out := recs[:0]
	for _, rec := range recs {
		if rec.pid != pid {
			out = append(out, rec)
		}
	}
	return out
}

func removePendPID(recs []pendRec, pid int) []pendRec {
	out := recs[:0]
	for _, rec := range recs {
		if rec.pid != pid {
			out = append(out, rec)
		}
	}
	return out
}

func removeTicket(recs []pendRec, t core.Ticket) []pendRec {
	out := recs[:0]
	for _, rec := range recs {
		if rec.ticket != t {
			out = append(out, rec)
		}
	}
	return out
}

func takeTicket(recs []pendRec, t core.Ticket) (pendRec, []pendRec, bool) {
	for i, rec := range recs {
		if rec.ticket == t {
			rest := append(append([]pendRec{}, recs[:i]...), recs[i+1:]...)
			return rec, rest, true
		}
	}
	return pendRec{}, recs, false
}

func removeSlot(slots []int, slot int) []int {
	out := slots[:0]
	for _, s := range slots {
		if s != slot {
			out = append(out, s)
		}
	}
	return out
}
