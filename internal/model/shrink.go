package model

// Minimize reduces a failing item sequence to a minimal reproducer
// using ddmin-style chunk removal followed by a single-item elimination
// sweep. fails must report whether a candidate sequence still
// reproduces the failure from a fresh start; it is assumed
// deterministic. The input is never mutated.
//
// It is the engine under Shrink, exported generically so other
// deterministic harnesses (the load generator's SLO-violation
// reproducer) can shrink their own sequence types without round-tripping
// through model ops.
func Minimize[T any](items []T, fails func([]T) bool) []T {
	cur := append([]T(nil), items...)

	// ddmin: try removing ever-finer chunks until granularity exceeds
	// the sequence length.
	for chunk := len(cur) / 2; chunk >= 1; {
		removed := false
		for start := 0; start < len(cur); {
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			cand := make([]T, 0, len(cur)-(end-start))
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[end:]...)
			if len(cand) < len(cur) && fails(cand) {
				cur = cand
				removed = true
				// retry the same offset: the next chunk slid into place
			} else {
				start = end
			}
		}
		if !removed {
			chunk /= 2
		}
	}

	// Final pass: drop single items until a fixpoint. ddmin with chunk=1
	// already does one sweep, but removals can enable earlier removals.
	for {
		removed := false
		for i := 0; i < len(cur); i++ {
			cand := make([]T, 0, len(cur)-1)
			cand = append(cand, cur[:i]...)
			cand = append(cand, cur[i+1:]...)
			if fails(cand) {
				cur = cand
				removed = true
				i--
			}
		}
		if !removed {
			return cur
		}
	}
}

// Shrink reduces a failing op stream to a minimal reproducer. fails
// must report whether a candidate stream still reproduces the failure
// on a fresh backend; it is assumed deterministic (the harness and
// generator are).
//
// Because ops address containers by slot and allocations/tickets by
// pick index — both resolved at execution time — every subsequence of a
// valid stream is itself executable, so removal never produces an
// un-runnable candidate, only one that may or may not still fail.
func Shrink(ops []Op, fails func([]Op) bool) []Op {
	return Minimize(ops, fails)
}
