package model

import (
	"fmt"
	"math/rand"
	"strings"

	"convgpu/internal/bytesize"
)

// OpKind enumerates the operations a generated stream can contain.
type OpKind uint8

// Op kinds.
const (
	OpRegister OpKind = iota // register C with Limit
	OpAlloc                  // RequestAlloc(C, PID, Size), confirm if accepted
	OpAbort                  // RequestAlloc(C, PID, Size), abort if accepted
	OpFree                   // free the Pick-th live allocation of C
	OpClose                  // close C
	OpProcExit               // process PID of C exits
	OpMemInfo                // meminfo C
	OpDrop                   // drop the Pick-th parked ticket of C
	OpRestart                // crash the backend and recover from persisted state
	OpNodeKill               // kill node Pick%Nodes, fail it over, then revive it
)

func (k OpKind) String() string {
	switch k {
	case OpRegister:
		return "register"
	case OpAlloc:
		return "alloc"
	case OpAbort:
		return "abort"
	case OpFree:
		return "free"
	case OpClose:
		return "close"
	case OpProcExit:
		return "procexit"
	case OpMemInfo:
		return "meminfo"
	case OpDrop:
		return "drop"
	case OpRestart:
		return "restart"
	case OpNodeKill:
		return "nodekill"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one step of a generated stream. Ops refer to containers and
// allocations by slot (C) and pick index (Pick), which the harness
// resolves against the state at execution time: an op that targets
// something absent degenerates into the same expected-error call on
// both the real scheduler and the model. That makes any subsequence of
// a stream executable, which is what lets ddmin shrink soundly.
type Op struct {
	Kind   OpKind
	C      int           // container slot, 0-based ("c0", "c1", ...)
	PID    int           // process id, 1-based
	Size   bytesize.Size // OpAlloc/OpAbort request size
	Limit  bytesize.Size // OpRegister limit
	Pick   int           // OpFree: live-alloc index; OpDrop: parked-ticket index (mod current count)
	Tenant int           // OpRegister: 0 = default tenant, k > 0 = Backend.Tenants[(k-1) mod len]
}

func (o Op) String() string {
	switch o.Kind {
	case OpRegister:
		if o.Tenant > 0 {
			return fmt.Sprintf("register c%d limit=%v tenant=%d", o.C, o.Limit, o.Tenant)
		}
		return fmt.Sprintf("register c%d limit=%v", o.C, o.Limit)
	case OpAlloc, OpAbort:
		return fmt.Sprintf("%s c%d pid=%d size=%v", o.Kind, o.C, o.PID, o.Size)
	case OpFree:
		return fmt.Sprintf("free c%d pick=%d", o.C, o.Pick)
	case OpClose, OpMemInfo:
		return fmt.Sprintf("%s c%d", o.Kind, o.C)
	case OpProcExit:
		return fmt.Sprintf("procexit c%d pid=%d", o.C, o.PID)
	case OpDrop:
		return fmt.Sprintf("drop c%d pick=%d", o.C, o.Pick)
	case OpRestart:
		return "restart"
	case OpNodeKill:
		return fmt.Sprintf("nodekill pick=%d", o.Pick)
	default:
		return o.Kind.String()
	}
}

// FormatOps renders a stream one op per line — the replayable trace a
// failing test prints.
func FormatOps(ops []Op) string {
	var b strings.Builder
	for i, o := range ops {
		fmt.Fprintf(&b, "  %3d: %s\n", i, o)
	}
	return b.String()
}

// GenConfig shapes a generated stream.
type GenConfig struct {
	// Containers is the number of container slots (c0..cN-1).
	Containers int
	// PIDs is the number of process ids used per container (1..PIDs).
	PIDs int
	// MaxLimitMiB bounds register limits; pick it near the device
	// capacity so streams overcommit and suspend.
	MaxLimitMiB int
	// MaxSizeMiB bounds allocation sizes.
	MaxSizeMiB int
	// Restarts enables OpRestart (the backend must support it).
	Restarts bool
	// NodeKills enables OpNodeKill (the backend must support FailNode).
	NodeKills bool
	// TenantSlots > 0 stamps each register with a tenant draw in
	// [0, TenantSlots]: 0 keeps the default tenant, k > 0 resolves
	// against the backend's tenant table. Zero (the default) adds no
	// generator draws, so legacy streams stay byte-identical per seed.
	TenantSlots int
}

// DefaultGenConfig returns the profile the conformance tests use: six
// containers, overcommitted against a 1 GiB device, with sizes large
// enough that suspension and redistribution dominate.
func DefaultGenConfig() GenConfig {
	return GenConfig{Containers: 6, PIDs: 3, MaxLimitMiB: 800, MaxSizeMiB: 400}
}

// Generate produces a deterministic op stream from seed. The weights
// favor allocations and frees (the redistribution engine's fuel), keep
// enough register/close churn to cycle container lifetimes, and sprinkle
// error paths: ~8% of registers use an over-capacity limit, ~5% of
// allocs use size zero.
func Generate(seed int64, n int, g GenConfig) []Op {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		op := Op{
			C:    rng.Intn(g.Containers),
			PID:  1 + rng.Intn(g.PIDs),
			Pick: rng.Intn(1 << 16),
		}
		w := rng.Intn(100)
		switch {
		case w < 14:
			op.Kind = OpRegister
			limit := 1 + g.MaxLimitMiB/4 + rng.Intn(3*g.MaxLimitMiB/4)
			if rng.Intn(12) == 0 {
				limit = 4 * g.MaxLimitMiB // exceeds any device: error path
			}
			op.Limit = bytesize.Size(limit) * bytesize.MiB
			if g.TenantSlots > 0 {
				op.Tenant = rng.Intn(g.TenantSlots + 1)
			}
		case w < 51:
			op.Kind = OpAlloc
			op.Size = allocSize(rng, g)
		case w < 56:
			op.Kind = OpAbort
			op.Size = allocSize(rng, g)
		case w < 74:
			op.Kind = OpFree
		case w < 81:
			op.Kind = OpClose
		case w < 86:
			op.Kind = OpProcExit
		case w < 91:
			op.Kind = OpMemInfo
		case w < 96:
			op.Kind = OpDrop
		default:
			switch {
			case g.NodeKills:
				op.Kind = OpNodeKill
			case g.Restarts:
				op.Kind = OpRestart
			default:
				op.Kind = OpAlloc
				op.Size = allocSize(rng, g)
			}
		}
		ops = append(ops, op)
	}
	return ops
}

func allocSize(rng *rand.Rand, g GenConfig) bytesize.Size {
	if rng.Intn(20) == 0 {
		return 0 // ErrInvalidSize path
	}
	return bytesize.Size(1+rng.Intn(g.MaxSizeMiB)) * bytesize.MiB
}
