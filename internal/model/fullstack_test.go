package model_test

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/clock"
	"convgpu/internal/core"
	"convgpu/internal/daemon"
	"convgpu/internal/ipc"
	"convgpu/internal/model"
	"convgpu/internal/protocol"
)

// The full-stack conformance test runs the same oracle over the real
// service path: every scheduler operation crosses the daemon's UNIX
// sockets through the pooled protocol codec, suspended allocations
// really block in ipc.Client.Call until a redistribution releases their
// parked response, and dropped tickets are produced the way production
// produces them — by killing the connection that carried the request.
// The wireSched adapter below translates the harness's core.Scheduler
// calls into that wire traffic and reconstructs results from the
// daemon's observable outputs (responses and the core event log);
// introspection reads (Snapshot, Devices, CheckInvariants) go straight
// to the in-process backend, since they are observation, not behavior.

const wireCallTimeout = 5 * time.Second

// eventCapture collects core events through SetObserver; the adapter
// mines it for suspend tickets and resume/drop sequences.
type eventCapture struct {
	mu  sync.Mutex
	evs []core.EventRecord
}

func (c *eventCapture) observe(e core.EventRecord) {
	c.mu.Lock()
	c.evs = append(c.evs, e)
	c.mu.Unlock()
}

func (c *eventCapture) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.evs)
}

func (c *eventCapture) since(cursor int) []core.EventRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]core.EventRecord(nil), c.evs[cursor:]...)
}

// callResult is a parked Call's eventual outcome.
type callResult struct {
	resp *protocol.Message
	err  error
}

// parkedWire is one suspended allocation in flight: its dedicated
// connection (closing it is how a single ticket gets dropped) and the
// channel its blocked Call resolves on.
type parkedWire struct {
	cli    *ipc.Client
	done   chan callResult
	id     core.ContainerID
	pid    int
	ticket core.Ticket
}

// wireSched drives a daemon over its sockets while satisfying
// core.Scheduler for the conformance harness. The embedded Scheduler is
// the daemon's in-process backend, serving the introspection surface;
// every mutating method below overrides it with wire traffic.
type wireSched struct {
	core.Scheduler
	d    *daemon.Daemon
	ctl  *ipc.Client
	cap  *eventCapture
	ctx  context.Context
	dirs map[core.ContainerID]string
	conn map[core.ContainerID]*ipc.Client

	parked    map[core.Ticket]*parkedWire
	parkOrder []core.Ticket
}

func newWireSched(inner core.Scheduler, baseDir string) (*wireSched, error) {
	d, err := daemon.Start(daemon.Config{BaseDir: baseDir, Core: inner})
	if err != nil {
		return nil, err
	}
	ctl, err := ipc.Dial(d.ControlSocket())
	if err != nil {
		d.Close()
		return nil, err
	}
	w := &wireSched{
		Scheduler: inner,
		d:         d,
		ctl:       ctl,
		cap:       &eventCapture{},
		ctx:       context.Background(),
		dirs:      make(map[core.ContainerID]string),
		conn:      make(map[core.ContainerID]*ipc.Client),
		parked:    make(map[core.Ticket]*parkedWire),
	}
	// Replaces the obs observer the daemon installed — this test asserts
	// scheduling behavior, not telemetry.
	inner.SetObserver(w.cap.observe)
	return w, nil
}

func (w *wireSched) shutdown() {
	for _, p := range w.parked {
		p.cli.Close()
	}
	for _, c := range w.conn {
		c.Close()
	}
	w.ctl.Close()
	w.d.Close()
}

// wireErr reconstructs the core sentinel from a failure response so the
// harness's error classes line up across the socket.
func wireErr(resp *protocol.Message) error {
	if resp.OK {
		return nil
	}
	s := resp.Error
	for _, m := range []struct {
		substr string
		err    error
	}{
		{"unknown container", core.ErrUnknownContainer},
		{"already registered", core.ErrDuplicateContainer},
		{"exceeds GPU capacity", core.ErrLimitExceedsCapacity},
		{"limit must be positive", core.ErrInvalidLimit},
		{"non-positive limit", core.ErrInvalidLimit}, // protocol-level validation fires first
		{"size must be positive", core.ErrInvalidSize},
		{"non-positive size", core.ErrInvalidSize}, // protocol-level validation fires first
		{"unknown allocation address", core.ErrUnknownAddr},
		{"unknown pid", core.ErrUnknownPID},
		{"without an accepted request", core.ErrNotCharged},
		{"limit differs", core.ErrLimitMismatch},
		{"cannot restore", core.ErrRestoreInfeasible},
	} {
		if strings.Contains(s, m.substr) {
			return fmt.Errorf("%w: over the wire: %s", m.err, s)
		}
	}
	return errors.New(s)
}

func (w *wireSched) call(cli *ipc.Client, msg *protocol.Message) (*protocol.Message, error) {
	ctx, cancel := context.WithTimeout(w.ctx, wireCallTimeout)
	defer cancel()
	resp, err := cli.Call(ctx, msg)
	if err != nil {
		return nil, fmt.Errorf("wire transport: %w", err)
	}
	return resp, nil
}

func (w *wireSched) Register(id core.ContainerID, limit bytesize.Size) (bytesize.Size, error) {
	resp, err := w.call(w.ctl, &protocol.Message{Type: protocol.TypeRegister, Container: string(id), Limit: int64(limit)})
	if err != nil {
		return 0, err
	}
	if werr := wireErr(resp); werr != nil {
		return 0, werr
	}
	cli, err := ipc.Dial(filepath.Join(resp.SocketDir, daemon.ContainerSocketName))
	if err != nil {
		return 0, fmt.Errorf("dial container socket: %w", err)
	}
	w.dirs[id] = resp.SocketDir
	w.conn[id] = cli
	return bytesize.Size(resp.Granted), nil
}

// RequestAlloc sends the allocation on a dedicated connection. An
// accepted or rejected request answers immediately; a suspended one
// blocks, and the adapter recovers its ticket from the EvSuspend record
// the core logged before parking.
func (w *wireSched) RequestAlloc(id core.ContainerID, pid int, size bytesize.Size) (core.AllocResult, error) {
	if _, ok := w.conn[id]; !ok {
		// No socket exists for an unregistered container; the expected
		// error comes from the backend directly.
		return w.Scheduler.RequestAlloc(id, pid, size)
	}
	cursor := w.cap.len()
	cli, err := ipc.Dial(filepath.Join(w.dirs[id], daemon.ContainerSocketName))
	if err != nil {
		return core.AllocResult{}, fmt.Errorf("dial for alloc: %w", err)
	}
	done := make(chan callResult, 1)
	go func() {
		resp, err := cli.Call(w.ctx, &protocol.Message{Type: protocol.TypeAlloc, PID: pid, Size: int64(size), API: "cudaMalloc"})
		done <- callResult{resp: resp, err: err}
	}()
	deadline := time.Now().Add(wireCallTimeout)
	for {
		select {
		case r := <-done:
			cli.Close()
			if r.err != nil {
				return core.AllocResult{}, fmt.Errorf("wire transport: %w", r.err)
			}
			if werr := wireErr(r.resp); werr != nil {
				return core.AllocResult{}, werr
			}
			switch r.resp.Decision {
			case protocol.DecisionAccept:
				return core.AllocResult{Decision: core.Accept}, nil
			case protocol.DecisionReject:
				return core.AllocResult{Decision: core.Reject}, nil
			default:
				return core.AllocResult{}, fmt.Errorf("wire alloc answered with decision %q", r.resp.Decision)
			}
		default:
		}
		for _, e := range w.cap.since(cursor) {
			if e.Kind == core.EvSuspend && e.Container == id && e.PID == pid && e.Amount == size {
				p := &parkedWire{cli: cli, done: done, id: id, pid: pid, ticket: e.Ticket}
				w.parked[e.Ticket] = p
				w.parkOrder = append(w.parkOrder, e.Ticket)
				return core.AllocResult{Decision: core.Suspend, Ticket: e.Ticket}, nil
			}
		}
		if time.Now().After(deadline) {
			cli.Close()
			return core.AllocResult{}, fmt.Errorf("alloc neither answered nor suspended within %v", wireCallTimeout)
		}
		time.Sleep(time.Millisecond)
	}
}

func (w *wireSched) ConfirmAlloc(id core.ContainerID, pid int, addr uint64, size bytesize.Size) error {
	cli, ok := w.conn[id]
	if !ok {
		return w.Scheduler.ConfirmAlloc(id, pid, addr, size)
	}
	resp, err := w.call(cli, &protocol.Message{Type: protocol.TypeConfirm, PID: pid, Addr: addr, Size: int64(size)})
	if err != nil {
		return err
	}
	return wireErr(resp)
}

func (w *wireSched) AbortAlloc(id core.ContainerID, pid int, size bytesize.Size) (core.Update, error) {
	cli, ok := w.conn[id]
	if !ok {
		return w.Scheduler.AbortAlloc(id, pid, size)
	}
	cursor := w.cap.len()
	resp, err := w.call(cli, &protocol.Message{Type: protocol.TypeAbort, PID: pid, Size: int64(size)})
	if err != nil {
		return core.Update{}, err
	}
	if werr := wireErr(resp); werr != nil {
		return core.Update{}, werr
	}
	return w.collectUpdate(cursor, nil)
}

func (w *wireSched) Free(id core.ContainerID, pid int, addr uint64) (bytesize.Size, core.Update, error) {
	cli, ok := w.conn[id]
	if !ok {
		return w.Scheduler.Free(id, pid, addr)
	}
	cursor := w.cap.len()
	resp, err := w.call(cli, &protocol.Message{Type: protocol.TypeFree, PID: pid, Addr: addr})
	if err != nil {
		return 0, core.Update{}, err
	}
	if werr := wireErr(resp); werr != nil {
		return 0, core.Update{}, werr
	}
	u, err := w.collectUpdate(cursor, nil)
	return bytesize.Size(resp.Free), u, err
}

func (w *wireSched) ProcessExit(id core.ContainerID, pid int) (bytesize.Size, core.Update, error) {
	cli, ok := w.conn[id]
	if !ok {
		return w.Scheduler.ProcessExit(id, pid)
	}
	cancelled := w.takeParked(func(p *parkedWire) bool { return p.id == id && p.pid == pid })
	cursor := w.cap.len()
	resp, err := w.call(cli, &protocol.Message{Type: protocol.TypeProcExit, PID: pid})
	if err != nil {
		return 0, core.Update{}, err
	}
	if werr := wireErr(resp); werr != nil {
		return 0, core.Update{}, werr
	}
	u, err := w.collectUpdate(cursor, cancelled)
	return bytesize.Size(resp.Free), u, err
}

func (w *wireSched) Close(id core.ContainerID) (bytesize.Size, core.Update, error) {
	if _, ok := w.dirs[id]; !ok {
		// Never registered on the wire (or long closed): the daemon
		// answers unknown-container; the single-State backend's close
		// idempotence must still shine through, so ask it directly.
		return w.Scheduler.Close(id)
	}
	cancelled := w.takeParked(func(p *parkedWire) bool { return p.id == id })
	cursor := w.cap.len()
	resp, err := w.call(w.ctl, &protocol.Message{Type: protocol.TypeClose, Container: string(id)})
	if err != nil {
		return 0, core.Update{}, err
	}
	if werr := wireErr(resp); werr != nil {
		return 0, core.Update{}, werr
	}
	if c, ok := w.conn[id]; ok {
		c.Close()
		delete(w.conn, id)
	}
	delete(w.dirs, id)
	u, err := w.collectUpdate(cursor, cancelled)
	return bytesize.Size(resp.Free), u, err
}

func (w *wireSched) MemInfo(id core.ContainerID) (free, total bytesize.Size, err error) {
	cli, ok := w.conn[id]
	if !ok {
		return w.Scheduler.MemInfo(id)
	}
	resp, err := w.call(cli, &protocol.Message{Type: protocol.TypeMemInfo})
	if err != nil {
		return 0, 0, err
	}
	if werr := wireErr(resp); werr != nil {
		return 0, 0, werr
	}
	return bytesize.Size(resp.Free), bytesize.Size(resp.Total), nil
}

// DropPending drops one parked ticket the production way: it kills the
// connection whose allocation holds that ticket, and the daemon's
// connection-death path (releaseConn → core.DropPending) does the rest.
func (w *wireSched) DropPending(id core.ContainerID, tickets []core.Ticket) (core.Update, error) {
	if len(tickets) != 1 {
		return w.Scheduler.DropPending(id, tickets)
	}
	p, ok := w.parked[tickets[0]]
	if !ok || p.id != id {
		// Nothing parked under that ticket: a no-op on every layer.
		return w.Scheduler.DropPending(id, tickets)
	}
	cursor := w.cap.len()
	w.removeParked(tickets[0])
	p.cli.Close()
	// Wait for the daemon to notice the dead connection and drop the
	// ticket; the EvDrop record marks the core call that also performed
	// the redistribution.
	deadline := time.Now().Add(wireCallTimeout)
	for {
		dropped := false
		for _, e := range w.cap.since(cursor) {
			if e.Kind == core.EvDrop && e.Ticket == tickets[0] && e.Container == id {
				dropped = true
			}
		}
		if dropped {
			break
		}
		if time.Now().After(deadline) {
			return core.Update{}, fmt.Errorf("daemon never dropped ticket %d after its connection died", tickets[0])
		}
		time.Sleep(time.Millisecond)
	}
	return w.collectUpdate(cursor, nil)
}

func (w *wireSched) Restore(id core.ContainerID, pid int, addr uint64, size bytesize.Size) error {
	cli, ok := w.conn[id]
	if !ok {
		return w.Scheduler.Restore(id, pid, addr, size)
	}
	resp, err := w.call(cli, &protocol.Message{Type: protocol.TypeRestore, PID: pid, Addr: addr, Size: int64(size)})
	if err != nil {
		return err
	}
	return wireErr(resp)
}

// takeParked removes (and returns, in park order) every parked entry
// matching the predicate — the tickets the next operation will cancel.
func (w *wireSched) takeParked(match func(*parkedWire) bool) []*parkedWire {
	var out []*parkedWire
	var keep []core.Ticket
	for _, t := range w.parkOrder {
		p := w.parked[t]
		if match(p) {
			out = append(out, p)
			delete(w.parked, t)
		} else {
			keep = append(keep, t)
		}
	}
	w.parkOrder = keep
	return out
}

func (w *wireSched) removeParked(t core.Ticket) {
	delete(w.parked, t)
	keep := w.parkOrder[:0]
	for _, o := range w.parkOrder {
		if o != t {
			keep = append(keep, o)
		}
	}
	w.parkOrder = keep
}

// collectUpdate reconstructs the core.Update of the operation that ran
// since cursor: admitted tickets come from the EvResume records the
// core logged during the call (in admission order); cancelled ones are
// the parked entries the caller pre-identified. Every affected parked
// call is then awaited: admitted ones must resolve with an accept (and
// leave the adapter ready for the harness's confirm), cancelled ones
// with a failure.
func (w *wireSched) collectUpdate(cursor int, cancelled []*parkedWire) (core.Update, error) {
	var u core.Update
	for _, e := range w.cap.since(cursor) {
		if e.Kind == core.EvResume {
			u.Admitted = append(u.Admitted, core.Admitted{Container: e.Container, Ticket: e.Ticket})
		}
	}
	for _, a := range u.Admitted {
		p, ok := w.parked[a.Ticket]
		if !ok {
			return u, fmt.Errorf("core resumed ticket %d the adapter has nothing parked for", a.Ticket)
		}
		w.removeParked(a.Ticket)
		select {
		case r := <-p.done:
			p.cli.Close()
			if r.err != nil {
				return u, fmt.Errorf("admitted ticket %d failed on the wire: %w", a.Ticket, r.err)
			}
			if werr := wireErr(r.resp); werr != nil {
				return u, fmt.Errorf("admitted ticket %d answered an error: %w", a.Ticket, werr)
			}
			if r.resp.Decision != protocol.DecisionAccept {
				return u, fmt.Errorf("admitted ticket %d answered decision %q", a.Ticket, r.resp.Decision)
			}
		case <-time.After(wireCallTimeout):
			return u, fmt.Errorf("admitted ticket %d never released its parked response", a.Ticket)
		}
	}
	for _, p := range cancelled {
		u.Cancelled = append(u.Cancelled, core.Admitted{Container: p.id, Ticket: p.ticket})
		select {
		case r := <-p.done:
			p.cli.Close()
			if r.err == nil && wireErr(r.resp) == nil && r.resp.Decision == protocol.DecisionAccept {
				return u, fmt.Errorf("cancelled request of %s pid=%d was accepted", p.id, p.pid)
			}
		case <-time.After(wireCallTimeout):
			return u, fmt.Errorf("cancelled request of %s pid=%d never released", p.id, p.pid)
		}
	}
	return u, nil
}

// fullStackBackend builds a model.Backend whose real side is a live
// daemon in its own directory. Each New() tears the previous daemon
// down (the shrinker re-runs streams many times) and starts a fresh one.
func fullStackBackend(t *testing.T, alg string, seed int64) (model.Backend, func() *wireSched) {
	t.Helper()
	var last *wireSched
	t.Cleanup(func() {
		if last != nil {
			last.shutdown()
		}
	})
	n := 0
	return model.Backend{
		Name: "daemon-wire",
		New: func() (core.Scheduler, error) {
			if last != nil {
				last.shutdown()
				last = nil
			}
			a, err := core.NewAlgorithm(alg, seed)
			if err != nil {
				return nil, err
			}
			inner, err := core.New(core.Config{Capacity: capacity, ContextOverhead: overhead, Algorithm: a})
			if err != nil {
				return nil, err
			}
			n++
			w, err := newWireSched(inner, filepath.Join(t.TempDir(), fmt.Sprintf("cv%d", n)))
			if err != nil {
				return nil, err
			}
			last = w
			return w, nil
		},
		Model: func() *model.Model {
			return model.New(model.Config{
				Devices: 1, Capacity: capacity, Overhead: overhead,
				Algorithm: alg, AlgSeeds: []int64{seed},
			})
		},
	}, func() *wireSched { return last }
}

// TestFullStackConformance drives the daemon+ipc+protocol stack through
// the oracle: every op of the generated stream is real socket traffic
// against a live daemon, and the oracle demands the same decisions,
// tickets, update sequences and snapshots the in-process backends give.
func TestFullStackConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack conformance dials hundreds of sockets; skipped in -short")
	}
	for _, alg := range core.AlgorithmNames() {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			// Seed 35 is chosen for park-path density: at 150 ops it parks
			// ~14 allocations and resumes ~8 of them (the guard below keeps
			// that property from silently rotting).
			seed := int64(35)
			b, lastSched := fullStackBackend(t, alg, seed)
			g := model.DefaultGenConfig()
			ops := model.Generate(seed, fullStackOps(), g)
			div, err := model.RunOps(b, ops)
			if err != nil {
				t.Fatalf("harness error: %v", err)
			}
			if div != nil {
				reportDivergence(t, b, alg, seed, ops, div)
			}
			// Guard against a degenerate stream: the run must have parked
			// allocations on the wire and released some of them, or this
			// test only covered the trivial accept path.
			w := lastSched()
			var suspends, resumes int
			for _, e := range w.cap.since(0) {
				switch e.Kind {
				case core.EvSuspend:
					suspends++
				case core.EvResume:
					resumes++
				}
			}
			if suspends == 0 || resumes == 0 {
				t.Fatalf("stream never exercised the park path (suspends=%d resumes=%d) — regenerate with a harder profile", suspends, resumes)
			}
		})
	}
}

func fullStackOps() int {
	n := *opCount
	if n > 150 {
		n = 150 // each op is real socket traffic; cap the stream
	}
	return n
}

// waitUntil polls cond (the sequential tests' only concession to the
// daemon's background goroutines).
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(wireCallTimeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func mustOK(t *testing.T, cli *ipc.Client, msg *protocol.Message) *protocol.Message {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), wireCallTimeout)
	defer cancel()
	resp, err := cli.Call(ctx, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("call failed: %s", resp.Error)
	}
	return resp
}

// TestFullStackRestartRecovery kills a daemon and verifies that the
// replacement's session.json recovery plus the wrappers' Restore replay
// reproduce exactly the state the reference model predicts. Recovery
// order is the session directories' lexicographic order — deliberately
// different from registration order here — a closed container's session
// must not come back, and a request that was parked at crash time is
// lost on both sides.
func TestFullStackRestartRecovery(t *testing.T) {
	base := filepath.Join(t.TempDir(), "cv")
	mkCore := func() core.Scheduler {
		a, err := core.NewAlgorithm(core.AlgBestFit, 1)
		if err != nil {
			t.Fatal(err)
		}
		st, err := core.New(core.Config{Capacity: capacity, ContextOverhead: overhead, Algorithm: a})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	w, err := newWireSched(mkCore(), base)
	if err != nil {
		t.Fatal(err)
	}

	const (
		mib300 = 300 * bytesize.MiB
		mib200 = 200 * bytesize.MiB
	)
	// Registration order c2, c1, c3 — recovery will run c2, c3 (c1 closes).
	for _, reg := range []struct {
		id    core.ContainerID
		limit bytesize.Size
	}{{"c2", 500 * bytesize.MiB}, {"c1", 400 * bytesize.MiB}, {"c3", 600 * bytesize.MiB}} {
		if _, err := w.Register(reg.id, reg.limit); err != nil {
			t.Fatalf("register %s: %v", reg.id, err)
		}
	}
	alloc := func(id core.ContainerID, pid int, size bytesize.Size, addr uint64) {
		t.Helper()
		res, err := w.RequestAlloc(id, pid, size)
		if err != nil || res.Decision != core.Accept {
			t.Fatalf("alloc %s: %+v %v", id, res, err)
		}
		if err := w.ConfirmAlloc(id, pid, addr, size); err != nil {
			t.Fatalf("confirm %s: %v", id, err)
		}
	}
	alloc("c2", 1, mib300, 0x100)
	alloc("c1", 1, mib200, 0x200)
	// c3's request parks: pool is empty (500+400+124 grants) and its
	// grant cannot cover 400MiB+overhead.
	res, err := w.RequestAlloc("c3", 2, 400*bytesize.MiB)
	if err != nil || res.Decision != core.Suspend {
		t.Fatalf("c3 alloc should suspend, got %+v %v", res, err)
	}
	if _, _, err := w.Close("c1"); err != nil {
		t.Fatalf("close c1: %v", err)
	}

	// Crash. The parked response dies with the daemon.
	w.shutdown()

	inner2 := mkCore()
	d2, err := daemon.Start(daemon.Config{BaseDir: base, Core: inner2})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer d2.Close()

	// Wrapper replay: each surviving container re-attaches and restores
	// its live allocations.
	replay := func(id core.ContainerID, pid int, restore func(cli *ipc.Client)) {
		t.Helper()
		cli, err := ipc.Dial(filepath.Join(base, "containers", string(id), daemon.ContainerSocketName))
		if err != nil {
			t.Fatalf("dial recovered %s: %v", id, err)
		}
		defer cli.Close()
		mustOK(t, cli, &protocol.Message{Type: protocol.TypeAttach, PID: pid})
		if restore != nil {
			restore(cli)
		}
	}
	replay("c2", 1, func(cli *ipc.Client) {
		mustOK(t, cli, &protocol.Message{Type: protocol.TypeRestore, PID: 1, Addr: 0x100, Size: int64(mib300)})
	})
	replay("c3", 2, nil)

	// The model replays recovery the same way the daemon does: sorted
	// session order, placement pinned first, then idempotent
	// registration, then the wrappers' restores.
	m := model.New(model.Config{Devices: 1, Capacity: capacity, Overhead: overhead, Algorithm: core.AlgBestFit, AlgSeeds: []int64{1}})
	for _, reg := range []struct {
		id    core.ContainerID
		limit bytesize.Size
	}{{"c2", 500 * bytesize.MiB}, {"c3", 600 * bytesize.MiB}} {
		if err := m.RestorePlacement(reg.id, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := m.EnsureRegistered(reg.id, reg.limit, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Restore("c2", 1, 0x100, mib300); err != nil {
		t.Fatal(err)
	}

	if err := inner2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, err := inner2.Info("c1"); err == nil {
		t.Fatal("closed container c1 was resurrected by recovery")
	}
	views := m.Containers()
	snap := inner2.Snapshot()
	if len(snap) != len(views) {
		t.Fatalf("recovered %d containers, model has %d", len(snap), len(views))
	}
	byID := make(map[core.ContainerID]core.ContainerInfo)
	for _, info := range snap {
		byID[info.ID] = info
	}
	for _, v := range views {
		info, ok := byID[v.ID]
		if !ok {
			t.Fatalf("model container %s missing after recovery", v.ID)
		}
		if info.Limit != v.Limit || info.Grant != v.Grant || info.Used != v.Used || info.Pending != v.Pending {
			t.Fatalf("%s after recovery: real limit=%v grant=%v used=%v pending=%d, model limit=%v grant=%v used=%v pending=%d",
				v.ID, info.Limit, info.Grant, info.Used, info.Pending, v.Limit, v.Grant, v.Used, v.Pending)
		}
	}
	if got, want := inner2.PoolFree(), m.Pools()[0]; got != want {
		t.Fatalf("pool after recovery: real %v, model %v", got, want)
	}
	// The parked request did not survive on either side.
	if info := byID["c3"]; info.Pending != 0 {
		t.Fatalf("c3 pending after crash = %d, want 0 (parked requests die with the daemon)", info.Pending)
	}
}

// TestFullStackLeaseExpiryConformance checks that the daemon's lease
// reaper is observationally a Close: a container that goes silent past
// its lease leaves the stack in exactly the state the model predicts
// for an explicit close — including the redistribution that releases
// another container's parked request.
func TestFullStackLeaseExpiryConformance(t *testing.T) {
	clk := clock.NewManual()
	a, err := core.NewAlgorithm(core.AlgFIFO, 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := core.New(core.Config{Capacity: capacity, ContextOverhead: overhead, Algorithm: a, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	const lease = time.Minute
	d, err := daemon.Start(daemon.Config{
		BaseDir: filepath.Join(t.TempDir(), "cv"),
		Core:    st, Lease: lease, Clock: clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctl, err := ipc.Dial(d.ControlSocket())
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	ctx := context.Background()
	reg := func(id string, limit bytesize.Size) *ipc.Client {
		t.Helper()
		resp := mustOK(t, ctl, &protocol.Message{Type: protocol.TypeRegister, Container: id, Limit: int64(limit)})
		cli, err := ipc.Dial(filepath.Join(resp.SocketDir, daemon.ContainerSocketName))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cli.Close() })
		return cli
	}
	dead := reg("dead", 700*bytesize.MiB)
	live := reg("live", 600*bytesize.MiB)

	mustOK(t, dead, &protocol.Message{Type: protocol.TypeAlloc, PID: 1, Size: int64(600 * bytesize.MiB)})
	mustOK(t, dead, &protocol.Message{Type: protocol.TypeConfirm, PID: 1, Addr: 0x1, Size: int64(600 * bytesize.MiB)})

	// live's request cannot fit its partial grant: it parks.
	parked := make(chan callResult, 1)
	go func() {
		resp, err := live.Call(ctx, &protocol.Message{Type: protocol.TypeAlloc, PID: 2, Size: int64(400 * bytesize.MiB)})
		parked <- callResult{resp: resp, err: err}
	}()
	waitUntil(t, "live's request to park", func() bool {
		info, err := st.Info("live")
		return err == nil && info.Pending == 1
	})

	// Advance virtual time; live heartbeats every check interval, dead
	// stays silent and is reaped.
	hb, err := ipc.Dial(filepath.Join(filepath.Dir(d.ControlSocket()), "containers", "live", daemon.ContainerSocketName))
	if err != nil {
		t.Fatal(err)
	}
	defer hb.Close()
	for i := 0; i < 6; i++ {
		waitUntil(t, "reap loop armed", func() bool { return clk.Pending() > 0 })
		clk.Advance(lease / 4)
		mustOK(t, hb, &protocol.Message{Type: protocol.TypeHeartbeat, PID: 2})
	}
	waitUntil(t, "dead container reaped", func() bool {
		_, err := st.Info("dead")
		return err != nil
	})
	// The reap's redistribution released live's parked request.
	select {
	case r := <-parked:
		if r.err != nil || !r.resp.OK || r.resp.Decision != protocol.DecisionAccept {
			t.Fatalf("parked request after reap: %+v %v", r.resp, r.err)
		}
	case <-time.After(wireCallTimeout):
		t.Fatal("parked request never released by the lease reap")
	}
	mustOK(t, live, &protocol.Message{Type: protocol.TypeConfirm, PID: 2, Addr: 0x2, Size: int64(400 * bytesize.MiB)})

	// The model sees the same history with the reap spelled Close.
	m := model.New(model.Config{Devices: 1, Capacity: capacity, Overhead: overhead, Algorithm: core.AlgFIFO, AlgSeeds: []int64{1}})
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	mustG := func(_ bytesize.Size, err error) { t.Helper(); must(err) }
	mustG(m.Register("dead", 700*bytesize.MiB, 0))
	mustG(m.Register("live", 600*bytesize.MiB, 0))
	if res, err := m.RequestAlloc("dead", 1, 600*bytesize.MiB); err != nil || res.Decision != core.Accept {
		t.Fatalf("model dead alloc: %+v %v", res, err)
	}
	must(m.ConfirmAlloc("dead", 1, 0x1, 600*bytesize.MiB))
	res, err := m.RequestAlloc("live", 2, 400*bytesize.MiB)
	if err != nil || res.Decision != core.Suspend {
		t.Fatalf("model live alloc: %+v %v", res, err)
	}
	_, u, err := m.Close("dead")
	must(err)
	if len(u.Admitted) != 1 || u.Admitted[0].Ticket != res.Ticket {
		t.Fatalf("model close admitted %+v, want live's ticket %d", u.Admitted, res.Ticket)
	}
	must(m.ConfirmAlloc("live", 2, 0x2, 400*bytesize.MiB))

	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	views := m.Containers()
	snap := st.Snapshot()
	if len(snap) != 1 || len(views) != 1 {
		t.Fatalf("after reap: real has %d containers, model %d, want 1", len(snap), len(views))
	}
	if got, want := snap[0], views[0]; got.ID != want.ID || got.Limit != want.Limit ||
		got.Grant != want.Grant || got.Used != want.Used || got.Pending != want.Pending {
		t.Fatalf("after reap: real %+v, model %+v", got, want)
	}
	if got, want := st.PoolFree(), m.Pools()[0]; got != want {
		t.Fatalf("pool after reap: real %v, model %v", got, want)
	}
}

func mustOKRec(t *testing.T, r *ipc.Reconnector, msg *protocol.Message) *protocol.Message {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), wireCallTimeout)
	defer cancel()
	resp, err := r.Call(ctx, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("call failed: %s", resp.Error)
	}
	return resp
}

// TestFullStackBinaryRestartRecovery kills and restarts the daemon
// mid-run under a Reconnector — the wrapper's production transport —
// and asserts the reconnecting side re-negotiates the binary codec on
// the fresh connection (or, with the debug knob set, cleanly stays on
// JSON), replays its session through Attach+Restore, and lands in
// exactly the state the reference model predicts for recovery. The
// codec negotiation was previously only chaos-tested on connections
// that stayed up; this pins the restart path.
func TestFullStackBinaryRestartRecovery(t *testing.T) {
	for _, tc := range []struct {
		name       string
		disable    bool
		wantBinary bool
	}{
		{"binary-renegotiated", false, true},
		{"json-fallback", true, false},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			base := filepath.Join(t.TempDir(), "cv")
			mkCore := func() core.Scheduler {
				a, err := core.NewAlgorithm(core.AlgBestFit, 1)
				if err != nil {
					t.Fatal(err)
				}
				st, err := core.New(core.Config{Capacity: capacity, ContextOverhead: overhead, Algorithm: a})
				if err != nil {
					t.Fatal(err)
				}
				return st
			}
			d1, err := daemon.Start(daemon.Config{BaseDir: base, Core: mkCore()})
			if err != nil {
				t.Fatal(err)
			}
			ctl, err := ipc.Dial(d1.ControlSocket())
			if err != nil {
				t.Fatal(err)
			}
			const (
				mib300 = 300 * bytesize.MiB
				limC1  = 400 * bytesize.MiB
				limC2  = 500 * bytesize.MiB
			)
			reg1 := mustOK(t, ctl, &protocol.Message{Type: protocol.TypeRegister, Container: "c1", Limit: int64(limC1)})
			sock := filepath.Join(reg1.SocketDir, daemon.ContainerSocketName)
			mustOK(t, ctl, &protocol.Message{Type: protocol.TypeRegister, Container: "c2", Limit: int64(limC2)})
			ctl.Close()

			// The replay hook is the wrapper's in miniature: re-attach the
			// session on every fresh connection, then restore each live
			// allocation.
			ctx := context.Background()
			type liveAlloc struct {
				pid  int
				addr uint64
				size bytesize.Size
			}
			var (
				liveMu sync.Mutex
				live   []liveAlloc
			)
			rec := ipc.NewReconnector(ipc.ReconnectConfig{
				Network: "unix", Addr: sock,
				Backoff:       ipc.Backoff{Base: time.Millisecond, Max: 20 * time.Millisecond},
				CallTimeout:   wireCallTimeout,
				DisableBinary: tc.disable,
				Seed:          1,
				OnReconnect: func(c *ipc.Client) error {
					resp, err := c.Call(ctx, &protocol.Message{Type: protocol.TypeAttach, PID: 1})
					if err != nil {
						return err
					}
					if !resp.OK {
						return errors.New(resp.Error)
					}
					liveMu.Lock()
					defer liveMu.Unlock()
					for _, a := range live {
						resp, err := c.Call(ctx, &protocol.Message{Type: protocol.TypeRestore, PID: a.pid, Addr: a.addr, Size: int64(a.size)})
						if err != nil {
							return err
						}
						if !resp.OK {
							return errors.New(resp.Error)
						}
					}
					return nil
				},
			})
			defer rec.Close()

			if resp := mustOKRec(t, rec, &protocol.Message{Type: protocol.TypeAlloc, PID: 1, Size: int64(mib300), API: "cudaMalloc"}); resp.Decision != protocol.DecisionAccept {
				t.Fatalf("alloc decision %q, want accept", resp.Decision)
			}
			mustOKRec(t, rec, &protocol.Message{Type: protocol.TypeConfirm, PID: 1, Addr: 0x100, Size: int64(mib300)})
			liveMu.Lock()
			live = append(live, liveAlloc{1, 0x100, mib300})
			liveMu.Unlock()

			c, err := rec.Connect(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if got := c.BinaryNegotiated(); got != tc.wantBinary {
				t.Fatalf("before restart: BinaryNegotiated = %v, want %v", got, tc.wantBinary)
			}
			if g := rec.Generation(); g != 1 {
				t.Fatalf("generation before restart = %d, want 1", g)
			}

			// Crash and restart on the same base dir: session.json recovery
			// re-registers the survivors, the reconnecting client replays.
			d1.Close()
			inner2 := mkCore()
			d2, err := daemon.Start(daemon.Config{BaseDir: base, Core: inner2})
			if err != nil {
				t.Fatalf("restart: %v", err)
			}
			defer d2.Close()

			// The first Call after the crash surfaces the dead connection
			// (calls are never retried — allocation requests are not
			// idempotent); the next one redials, re-negotiates the codec,
			// and replays the session through the hook.
			waitUntil(t, "reconnector to heal onto the new daemon", func() bool {
				resp, err := rec.Call(ctx, &protocol.Message{Type: protocol.TypeMemInfo, PID: 1})
				return err == nil && resp.OK
			})
			if g := rec.Generation(); g != 2 {
				t.Fatalf("generation after restart = %d, want 2 (exactly one reconnect)", g)
			}
			healed, err := rec.Connect(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if got := healed.BinaryNegotiated(); got != tc.wantBinary {
				t.Fatalf("after restart: BinaryNegotiated = %v, want %v", got, tc.wantBinary)
			}

			// The recovered daemon matches the model's replay of recovery:
			// sorted session order, placement pinned first, idempotent
			// registration, then the restore the hook replayed.
			m := model.New(model.Config{Devices: 1, Capacity: capacity, Overhead: overhead, Algorithm: core.AlgBestFit, AlgSeeds: []int64{1}})
			for _, reg := range []struct {
				id    core.ContainerID
				limit bytesize.Size
			}{{"c1", limC1}, {"c2", limC2}} {
				if err := m.RestorePlacement(reg.id, 0); err != nil {
					t.Fatal(err)
				}
				if _, err := m.EnsureRegistered(reg.id, reg.limit, 0); err != nil {
					t.Fatal(err)
				}
			}
			if err := m.Restore("c1", 1, 0x100, mib300); err != nil {
				t.Fatal(err)
			}

			if err := inner2.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			views := m.Containers()
			snap := inner2.Snapshot()
			if len(snap) != len(views) {
				t.Fatalf("recovered %d containers, model has %d", len(snap), len(views))
			}
			byID := make(map[core.ContainerID]core.ContainerInfo)
			for _, info := range snap {
				byID[info.ID] = info
			}
			for _, v := range views {
				info, ok := byID[v.ID]
				if !ok {
					t.Fatalf("model container %s missing after recovery", v.ID)
				}
				if info.Limit != v.Limit || info.Grant != v.Grant || info.Used != v.Used || info.Pending != v.Pending {
					t.Fatalf("%s after recovery: real limit=%v grant=%v used=%v pending=%d, model limit=%v grant=%v used=%v pending=%d",
						v.ID, info.Limit, info.Grant, info.Used, info.Pending, v.Limit, v.Grant, v.Used, v.Pending)
				}
			}
			if got, want := inner2.PoolFree(), m.Pools()[0]; got != want {
				t.Fatalf("pool after recovery: real %v, model %v", got, want)
			}
		})
	}
}
