package model

import (
	"sort"

	"convgpu/internal/bytesize"
	"convgpu/internal/core"
)

// Tenant-aware wake policy names the model mirrors. Spelled as local
// string literals rather than imports of internal/policy on purpose:
// the oracle must stay an independent reimplementation.
const (
	algFairShare = "fairshare"
	algQuota     = "quota"
	algPriority  = "priority"
)

// munboundedQuota stands in for "no cap" in headroom arithmetic,
// mirroring core's unboundedQuota.
const munboundedQuota = bytesize.Size(1) << 62

// mweight reads a fair-share weight; zero or negative reads as 1.
func mweight(w int) int64 {
	if w <= 0 {
		return 1
	}
	return int64(w)
}

// mshortfall is a candidate tenant's guarantee shortfall (zero at or
// above the guarantee).
func mshortfall(c mcand) bytesize.Size {
	if c.tGuar <= c.tGrant {
		return 0
	}
	return c.tGuar - c.tGrant
}

// quotaHeadroom mirrors core.quotaHeadroomLocked: how much more grant
// tenant t may hold on device d before its quota is exhausted. The
// default tenant and tenants without a quota have unbounded headroom.
func (m *Model) quotaHeadroom(d *mdevice, t core.Tenant) bytesize.Size {
	if t.Name == "" || t.Quota <= 0 {
		return munboundedQuota
	}
	var sum bytesize.Size
	for _, c := range d.containers {
		if c.tenant.Name == t.Name {
			sum += c.grant
		}
	}
	if sum >= t.Quota {
		return 0
	}
	return t.Quota - sum
}

// availableFor mirrors core.availableForLocked: the pool memory tenant
// t may draw on after honoring every *other* named tenant's guarantee
// shortfall.
func (m *Model) availableFor(d *mdevice, t core.Tenant) bytesize.Size {
	reserved := bytesize.Size(0)
	seen := make(map[string]bool)
	for _, c := range d.containers {
		name := c.tenant.Name
		if name == "" || name == t.Name || seen[name] || c.tenant.Guarantee <= 0 {
			continue
		}
		seen[name] = true
		var sum bytesize.Size
		for _, o := range d.containers {
			if o.tenant.Name == name {
				sum += o.grant
			}
		}
		if sum < c.tenant.Guarantee {
			reserved += c.tenant.Guarantee - sum
		}
	}
	if reserved >= d.pool {
		return 0
	}
	return d.pool - reserved
}

// clampTake mirrors core.clampTakeLocked: cap a pool take by the
// container's tenant quota headroom (hard) and the pool share left
// after other tenants' guarantees (soft). The caller has already capped
// take by the pool itself.
func (m *Model) clampTake(d *mdevice, c *mcontainer, take bytesize.Size) bytesize.Size {
	if hr := m.quotaHeadroom(d, c.tenant); take > hr {
		take = hr
	}
	if avail := m.availableFor(d, c.tenant); take > avail {
		take = avail
	}
	return take
}

// tryPreempt mirrors core.tryPreemptLocked with the priority policy's
// Victims ordering: reclaim unused grant (grant - used) from holders of
// strictly lower-priority tenants — lowest priority first, youngest
// first within a priority — until the requester's need is covered, then
// top the requester up from the pool. Declines when even all eligible
// victims together cannot cover the need, or when the requester's own
// quota headroom cannot absorb it.
func (m *Model) tryPreempt(d *mdevice, c *mcontainer, charge bytesize.Size) bool {
	if m.cfg.Algorithm != algPriority {
		return false
	}
	need := c.used + charge - c.grant
	if need <= 0 {
		return false
	}
	if m.quotaHeadroom(d, c.tenant) < need {
		return false
	}
	var eligible []*mcontainer
	for _, h := range d.sorted() {
		if h == c || h.grant <= h.used {
			continue
		}
		if h.tenant.Priority < c.tenant.Priority {
			eligible = append(eligible, h)
		}
	}
	if len(eligible) == 0 {
		return false
	}
	sort.Slice(eligible, func(i, j int) bool {
		if eligible[i].tenant.Priority != eligible[j].tenant.Priority {
			return eligible[i].tenant.Priority < eligible[j].tenant.Priority
		}
		return eligible[i].createdSeq > eligible[j].createdSeq
	})
	var covered bytesize.Size
	last := -1
	for i, h := range eligible {
		covered += h.grant - h.used
		if covered >= need {
			last = i
			break
		}
	}
	if last < 0 {
		return false // Victims declines: partial preemption admits nobody
	}
	var reclaimed bytesize.Size
	for _, v := range eligible[:last+1] {
		if reclaimed >= need {
			break
		}
		take := v.grant - v.used
		if take > need-reclaimed {
			take = need - reclaimed
		}
		v.grant -= take
		d.pool += take
		reclaimed += take
	}
	if reclaimed == 0 {
		return false
	}
	take := c.used + charge - c.grant
	if take > d.pool {
		take = d.pool
	}
	c.grant += take
	d.pool -= take
	return c.used+charge <= c.grant
}

// Tenants mirrors core.State.Tenants through core.Router.Tenants:
// per-tenant usage aggregated across every device, sorted by name;
// default-tenant containers are not listed.
func (m *Model) Tenants() []core.TenantUsage {
	byName := make(map[string]*core.TenantUsage)
	for _, d := range m.devs {
		for _, c := range d.containers {
			if c.tenant.Name == "" {
				continue
			}
			u, ok := byName[c.tenant.Name]
			if !ok {
				u = &core.TenantUsage{
					Name:      c.tenant.Name,
					Weight:    c.tenant.Weight,
					Priority:  c.tenant.Priority,
					Quota:     c.tenant.Quota,
					Guarantee: c.tenant.Guarantee,
				}
				byName[c.tenant.Name] = u
			}
			u.Containers++
			if len(c.pending) > 0 {
				u.Suspended++
			}
			u.Grant += c.grant
			u.Used += c.used
			u.Pending += len(c.pending)
		}
	}
	out := make([]core.TenantUsage, 0, len(byName))
	for _, u := range byName {
		out = append(out, *u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
