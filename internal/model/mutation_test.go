package model_test

import (
	"testing"

	"convgpu/internal/bytesize"
	"convgpu/internal/core"
	"convgpu/internal/model"
)

// The mutation tests prove the oracle's sensitivity: a deliberately
// broken scheduler must diverge from the model within maxMutationOps
// ops on a fixed seed, and the shrinker must cut the failing stream to
// at most maxShrunk ops. If these start failing after a harness change,
// the harness lost discrimination — that is a real regression even
// though all conformance tests stay green.
const (
	maxMutationOps = 1000
	maxShrunk      = 25
	mutationSeed   = 3
)

// brokenBestFit picks the candidate with the largest deficit whether or
// not the pool covers it — the classic misreading of the paper's
// "closest, but not exceeding" rule.
type brokenBestFit struct{}

func (brokenBestFit) Name() string { return core.AlgBestFit }

func (brokenBestFit) Pick(pool bytesize.Size, cands []core.Candidate) int {
	best := 0
	for i, c := range cands {
		if c.Deficit > cands[best].Deficit {
			best = i
		}
	}
	return best
}

// mutantBackend is a single-device backend whose real side is built
// from the given config while the model side stays faithful to the
// paper semantics.
func mutantBackend(name string, cfg core.Config) model.Backend {
	return mutantBackendAlg(name, cfg, core.AlgBestFit)
}

func mutantBackendAlg(name string, cfg core.Config, modelAlg string) model.Backend {
	mk := func() (core.Scheduler, error) { return core.New(cfg) }
	return model.Backend{
		Name: name, New: mk, Restart: mk,
		Model: func() *model.Model {
			return model.New(model.Config{
				Devices: 1, Capacity: capacity, Overhead: overhead,
				Algorithm: modelAlg, AlgSeeds: []int64{1},
			})
		},
	}
}

// detectMutation runs the fixed-seed stream against the mutant and
// requires a divergence within maxMutationOps ops, then shrinks it and
// requires the reproducer to stay under maxShrunk ops.
func detectMutation(t *testing.T, b model.Backend) {
	t.Helper()
	g := model.DefaultGenConfig()
	if len(b.Tenants) > 0 {
		g.TenantSlots = len(b.Tenants)
	}
	ops := model.Generate(mutationSeed, maxMutationOps, g)
	div, err := model.RunOps(b, ops)
	if err != nil {
		t.Fatalf("harness error: %v", err)
	}
	if div == nil {
		t.Fatalf("mutant %s not detected within %d ops (seed=%d): the oracle lost sensitivity", b.Name, maxMutationOps, mutationSeed)
	}
	t.Logf("%s detected at step %d: %s", b.Name, div.Step, div.Detail)
	min := model.Shrink(ops[:div.Step+1], func(sub []model.Op) bool { return model.Fails(b, sub) })
	if !model.Fails(b, min) {
		t.Fatalf("shrunk stream no longer fails")
	}
	if len(min) > maxShrunk {
		t.Fatalf("shrunk reproducer has %d ops, want <= %d:\n%s", len(min), maxShrunk, model.FormatOps(min))
	}
	d, _ := model.RunOps(b, min)
	t.Logf("minimal reproducer (%d ops), diverging with %q:\n%s", len(min), d.Detail, model.FormatOps(min))
}

// TestMutationBrokenBestFit plants a Best-Fit that ignores the pool
// bound and demands the oracle catches it fast and shrinks it small.
func TestMutationBrokenBestFit(t *testing.T) {
	detectMutation(t, mutantBackend("broken-bestfit", core.Config{
		Capacity: capacity, ContextOverhead: overhead, Algorithm: brokenBestFit{},
	}))
}

// TestMutationCapacityOffByOne plants a one-byte capacity inflation —
// the real device claims one more byte than the model believes exists.
func TestMutationCapacityOffByOne(t *testing.T) {
	alg, err := core.NewAlgorithm(core.AlgBestFit, 1)
	if err != nil {
		t.Fatal(err)
	}
	detectMutation(t, mutantBackend("capacity-off-by-one", core.Config{
		Capacity: capacity + 1, ContextOverhead: overhead, Algorithm: alg,
	}))
}

// invertedFairShare wakes the tenant holding the LARGEST weighted share
// — fair share backwards. The tenant oracle must catch it.
type invertedFairShare struct{}

func (invertedFairShare) Name() string { return "fairshare" }

func (invertedFairShare) Pick(pool bytesize.Size, cands []core.Candidate) int {
	w := func(n int) int64 {
		if n <= 0 {
			return 1
		}
		return int64(n)
	}
	best := 0
	for i, c := range cands {
		b := cands[best]
		if int64(c.TenantGrant)*w(b.TenantWeight) > int64(b.TenantGrant)*w(c.TenantWeight) {
			best = i
		}
	}
	return best
}

// TestMutationInvertedFairShare plants the inverted fair-share policy
// under tenant streams: the oracle's rollup and grant cross-checks must
// expose the wrong wake order quickly.
func TestMutationInvertedFairShare(t *testing.T) {
	b := mutantBackendAlg("inverted-fairshare", core.Config{
		Capacity: capacity, ContextOverhead: overhead, Algorithm: invertedFairShare{},
	}, "fairshare")
	b.Tenants = tenantTable()
	detectMutation(t, b)
}

// greedyPreemptor is the priority policy with the eligibility check
// broken: it also victimizes holders of EQUAL priority, so same-tenant
// and same-rank containers steal each other's unused grant.
type greedyPreemptor struct{ core.Algorithm }

func (greedyPreemptor) Victims(need bytesize.Size, req core.Holder, holders []core.Holder) []core.ContainerID {
	var out []core.ContainerID
	var sum bytesize.Size
	for _, h := range holders {
		if h.Priority <= req.Priority && h.Grant > h.Used {
			out = append(out, h.ID)
			if sum += h.Grant - h.Used; sum >= need {
				return out
			}
		}
	}
	return nil
}

// TestMutationGreedyPreemptor plants the over-eager preemptor under
// tenant streams and demands the oracle catches the illegal reclaim.
func TestMutationGreedyPreemptor(t *testing.T) {
	alg, err := core.NewAlgorithm(core.AlgFIFO, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := mutantBackendAlg("greedy-preemptor", core.Config{
		Capacity: capacity, ContextOverhead: overhead,
		Algorithm: greedyPreemptor{Algorithm: alg},
	}, core.AlgFIFO)
	b.Tenants = tenantTable()
	detectMutation(t, b)
}
