package model_test

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"convgpu/internal/bytesize"
	"convgpu/internal/cluster"
	"convgpu/internal/core"
	"convgpu/internal/model"
	"convgpu/internal/policy"
)

// TestTenantCrossNodeRollup is the directed conformance test for
// cluster-wide tenant arithmetic when tenants span nodes: the generic
// sweeps above land tenants wherever the op stream happens to place
// them, but the fairness rollup a multi-node operator reads
// (Cluster.Tenants, summed across nodes by the router) is only
// trustworthy if it matches the oracle when every tenant's containers
// are deliberately spread over both nodes — and keeps matching after a
// node failover migrates half of each tenant's fleet. The test drives
// cluster and model in lockstep, proves the spread with NodePlacement,
// kills node 0, replays the failover report into the model exactly as
// the harness does, and re-compares the sorted rollups.
func TestTenantCrossNodeRollup(t *testing.T) {
	for _, alg := range []string{core.AlgFIFO, policy.WakeFairShare, policy.WakePriority} {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			t.Parallel()
			const seed = 7
			factory := func(s int64) (core.Algorithm, error) {
				return policy.NewWake(alg, policy.Config{Seed: s})
			}
			clus, err := cluster.New(cluster.Config{
				Nodes: 2, GPUsPerNode: 2, CapacityPerGPU: capacity,
				AlgorithmFactory: factory, AlgSeed: seed, ContextOverhead: overhead,
			})
			if err != nil {
				t.Fatal(err)
			}
			m := model.New(model.Config{
				Devices: 4, Capacity: capacity, Overhead: overhead,
				Algorithm: alg,
				AlgSeeds:  []int64{seed, seed + 1, seed + 100, seed + 101},
				Routed:    true,
			})
			table := tenantTable()
			flatOf := func(id core.ContainerID) int {
				node, dev, perr := clus.NodePlacement(id)
				if perr != nil {
					t.Fatalf("placement of %s: %v", id, perr)
				}
				return node*2 + dev
			}

			// Twelve containers, tenants round-robin, so each named
			// tenant fields four containers for four devices: any sane
			// placement spreads every tenant over both nodes, and the
			// spread is asserted below rather than assumed.
			type pendTicket struct {
				ticket core.Ticket
				pid    int
				size   bytesize.Size
			}
			pend := make(map[core.ContainerID][]pendTicket)
			nodesOf := make(map[string]map[int]bool)
			nextAddr := uint64(0x1000)
			for i := 0; i < 12; i++ {
				id := core.ContainerID(fmt.Sprintf("c%d", i))
				ten := table[i%len(table)]
				limit := 300 * bytesize.MiB
				rg, rerr := clus.RegisterTenant(id, limit, ten)
				if rerr != nil {
					t.Fatalf("register %s: %v", id, rerr)
				}
				flat := flatOf(id)
				mg, merr := m.RegisterTenant(id, limit, flat, ten)
				if merr != nil {
					t.Fatalf("model refuses registration of %s at device %d: %v", id, flat, merr)
				}
				if rg != mg {
					t.Fatalf("%s: cluster granted %v, model %v", id, rg, mg)
				}
				if nodesOf[ten.Name] == nil {
					nodesOf[ten.Name] = make(map[int]bool)
				}
				nodesOf[ten.Name][flat/2] = true

				// Two allocations per container: the second pushes past
				// the clamped grants, so a share of requests suspends
				// and the rollup's Pending/Suspended columns are live.
				for pid := 1; pid <= 2; pid++ {
					size := 120 * bytesize.MiB
					rres, raerr := clus.RequestAlloc(id, pid, size)
					mres, maerr := m.RequestAlloc(id, pid, size)
					if (raerr == nil) != (maerr == nil) {
						t.Fatalf("%s pid %d: alloc error mismatch: real %v model %v", id, pid, raerr, maerr)
					}
					if raerr != nil {
						continue
					}
					if rres.Decision != mres.Decision {
						t.Fatalf("%s pid %d: cluster decides %v, model %v", id, pid, rres.Decision, mres.Decision)
					}
					switch rres.Decision {
					case core.Accept:
						nextAddr += 0x1000
						if cerr := clus.ConfirmAlloc(id, pid, nextAddr, size); cerr != nil {
							t.Fatalf("confirm %s: %v", id, cerr)
						}
						if cerr := m.ConfirmAlloc(id, pid, nextAddr, size); cerr != nil {
							t.Fatalf("model confirm %s: %v", id, cerr)
						}
					case core.Suspend:
						if rres.Ticket != mres.Ticket {
							t.Fatalf("%s pid %d: ticket %d vs model %d", id, pid, rres.Ticket, mres.Ticket)
						}
						pend[id] = append(pend[id], pendTicket{rres.Ticket, pid, size})
					}
				}
			}

			// Pre-kill: every named tenant must actually span both
			// nodes, or the cross-node claim below is vacuous.
			for name, nodes := range nodesOf {
				if len(nodes) < 2 {
					t.Fatalf("tenant %s landed on a single node %v — placement no longer spreads, test is vacuous", name, nodes)
				}
			}
			if d := diffRollups(clus.Tenants(), m.Tenants()); d != "" {
				t.Fatalf("pre-kill tenant rollup diverges:\n%s", d)
			}

			// Kill node 0 and replay the report into the model the way
			// the harness does: reset the dead devices, re-register each
			// migrated container at its reported target under the SAME
			// tenant, re-queue its parked tickets.
			rep, ferr := clus.FailNode(0)
			if ferr != nil {
				t.Fatal(ferr)
			}
			m.ResetDevices([]int{0, 1})
			moved := 0
			for _, mv := range rep.Moves {
				if len(mv.Tickets) != len(pend[mv.ID]) {
					t.Fatalf("%s: failover accounts %d tickets, %d were parked", mv.ID, len(mv.Tickets), len(pend[mv.ID]))
				}
				delete(pend, mv.ID)
				if mv.Evicted {
					continue
				}
				if mv.Tenant.Name == "" {
					t.Fatalf("%s migrated without its tenant binding", mv.ID)
				}
				flat := flatOf(mv.ID)
				if flat/2 != mv.To {
					t.Fatalf("%s reported on node %d but placed on device %d", mv.ID, mv.To, flat)
				}
				moved++
				mg, merr := m.RegisterTenant(mv.ID, mv.Limit, flat, mv.Tenant)
				if merr != nil {
					t.Fatalf("model refuses migrated registration of %s: %v", mv.ID, merr)
				}
				if mg != mv.Granted {
					t.Fatalf("%s migrated with grant %v, model predicts %v", mv.ID, mv.Granted, mg)
				}
				for _, tm := range mv.Tickets {
					res, merr := m.RequestAlloc(mv.ID, tm.PID, tm.Size)
					if merr != nil {
						t.Fatalf("model refuses re-queued ticket %d of %s: %v", tm.OldTicket, mv.ID, merr)
					}
					switch tm.Outcome {
					case core.TicketAdmitted:
						if res.Decision != core.Accept {
							t.Fatalf("%s ticket %d admitted by failover, model decides %v", mv.ID, tm.OldTicket, res.Decision)
						}
						nextAddr += 0x1000
						if cerr := clus.ConfirmAlloc(mv.ID, tm.PID, nextAddr, tm.Size); cerr != nil {
							t.Fatalf("confirm failover-admitted ticket %d: %v", tm.OldTicket, cerr)
						}
						if cerr := m.ConfirmAlloc(mv.ID, tm.PID, nextAddr, tm.Size); cerr != nil {
							t.Fatalf("model confirm of failover-admitted ticket %d: %v", tm.OldTicket, cerr)
						}
					case core.TicketMigrated:
						if res.Decision != core.Suspend || res.Ticket != tm.NewTicket {
							t.Fatalf("%s ticket %d re-parked as %d, model decides %v ticket %d",
								mv.ID, tm.OldTicket, tm.NewTicket, res.Decision, res.Ticket)
						}
					case core.TicketEvicted:
						if res.Decision != core.Reject {
							t.Fatalf("%s ticket %d evicted by failover, model decides %v", mv.ID, tm.OldTicket, res.Decision)
						}
					}
				}
			}
			if moved == 0 {
				t.Fatal("failover migrated nothing — node 0 held no containers, test is vacuous")
			}

			// The post-failover rollup must still agree: every tenant's
			// surviving grant/used/pending, summed across nodes, matches
			// the oracle's arithmetic.
			if d := diffRollups(clus.Tenants(), m.Tenants()); d != "" {
				t.Fatalf("post-failover tenant rollup diverges:\n%s", d)
			}
		})
	}
}

// diffRollups compares two tenant rollups order-insensitively and
// returns a description of the first difference, or "".
func diffRollups(a, b []core.TenantUsage) string {
	sort.Slice(a, func(i, j int) bool { return a[i].Name < a[j].Name })
	sort.Slice(b, func(i, j int) bool { return b[i].Name < b[j].Name })
	if len(a) != len(b) {
		return fmt.Sprintf("real has %d tenants, model %d\nreal:  %+v\nmodel: %+v", len(a), len(b), a, b)
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			return fmt.Sprintf("tenant %s:\nreal:  %+v\nmodel: %+v", a[i].Name, a[i], b[i])
		}
	}
	return ""
}
