package model

import (
	"fmt"
	"sync"

	"convgpu/internal/bytesize"
	"convgpu/internal/core"
)

// History captures a scheduler's event stream for structural checking.
// Unlike the exact-conformance harness it makes no predictions, so it
// stays sound when the stack is driven concurrently or through a faulty
// transport: it only demands that whatever happened was safe. Install
// Observer() via SetObserver, call Cut() at every daemon restart (a new
// State is a fresh ticket/usage epoch), then Check the capture.
type History struct {
	mu      sync.Mutex
	entries []histEntry
}

type histEntry struct {
	cut bool
	ev  core.EventRecord
}

// Observer returns the capture hook for core's SetObserver. Safe for
// concurrent use (leaf events from different devices race to it).
func (h *History) Observer() func(core.EventRecord) {
	return func(e core.EventRecord) {
		h.mu.Lock()
		h.entries = append(h.entries, histEntry{ev: e})
		h.mu.Unlock()
	}
}

// Cut marks a restart boundary: usage, parked tickets and ticket
// counters all reset with the replacement State.
func (h *History) Cut() {
	h.mu.Lock()
	h.entries = append(h.entries, histEntry{cut: true})
	h.mu.Unlock()
}

// Len reports the number of captured events (cuts excluded).
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, e := range h.entries {
		if !e.cut {
			n++
		}
	}
	return n
}

// Check validates every epoch of the capture against capacity (a func
// so multi-device topologies can vary per device index).
func (h *History) Check(capacity func(device int) bytesize.Size) error {
	return h.check(capacity, false)
}

// CheckDrained is Check plus quiescence on the final epoch: the capture
// must end with no request still parked. For tests that close every
// session before stopping.
func (h *History) CheckDrained(capacity func(device int) bytesize.Size) error {
	return h.check(capacity, true)
}

func (h *History) check(capacity func(device int) bytesize.Size, drained bool) error {
	h.mu.Lock()
	entries := append([]histEntry(nil), h.entries...)
	h.mu.Unlock()

	start := 0
	epoch := 0
	for i := 0; i <= len(entries); i++ {
		if i == len(entries) || entries[i].cut {
			evs := make([]core.EventRecord, 0, i-start)
			for _, e := range entries[start:i] {
				evs = append(evs, e.ev)
			}
			check := CheckHistory
			if drained && i == len(entries) {
				check = CheckHistoryDrained
			}
			if err := check(evs, capacity); err != nil {
				return fmt.Errorf("epoch %d: %w", epoch, err)
			}
			start = i + 1
			epoch++
		}
	}
	return nil
}

// CheckHistory validates one epoch (no restarts) of a scheduler event
// stream against the structural safety invariants that hold regardless
// of algorithm, topology or fault schedule:
//
//   - conservation: per-container usage derived from the event amounts
//     never goes negative, and the per-device sum never exceeds the
//     device capacity;
//   - ticket discipline: suspend tickets are strictly increasing per
//     device, a ticket resumes at most once, and only while parked;
//   - FIFO within a container: a resume always releases the oldest
//     still-parked request of that container on that device.
//
// Cross-container ordering is deliberately not checked here — it
// depends on the algorithm and on grant reclamation that emits no
// events — that is the exact-conformance harness's job.
func CheckHistory(events []core.EventRecord, capacity func(device int) bytesize.Size) error {
	type ckey struct {
		dev int
		id  core.ContainerID
	}
	type parked struct {
		ticket core.Ticket
		pid    int
	}
	used := make(map[ckey]bytesize.Size)
	pend := make(map[ckey][]parked)
	lastTicket := make(map[int]core.Ticket)

	devUsed := func(dev int) bytesize.Size {
		var sum bytesize.Size
		for k, u := range used {
			if k.dev == dev {
				sum += u
			}
		}
		return sum
	}

	for i, e := range events {
		k := ckey{dev: e.Device, id: e.Container}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("event %d (%s): %s", i, e, fmt.Sprintf(format, args...))
		}
		switch e.Kind {
		case core.EvRegister:
			used[k] = 0
			pend[k] = nil
		case core.EvAccept, core.EvRestore:
			used[k] += e.Amount
		case core.EvResume:
			q := pend[k]
			if len(q) == 0 {
				return fail("resume with no parked request")
			}
			if q[0].ticket != e.Ticket {
				return fail("resume ticket %d but oldest parked is %d (FIFO violation)", e.Ticket, q[0].ticket)
			}
			pend[k] = q[1:]
			used[k] += e.Amount
		case core.EvSuspend:
			if last, ok := lastTicket[e.Device]; ok && e.Ticket <= last {
				return fail("suspend ticket %d not above previous %d on device %d", e.Ticket, last, e.Device)
			}
			lastTicket[e.Device] = e.Ticket
			pend[k] = append(pend[k], parked{ticket: e.Ticket, pid: e.PID})
		case core.EvDrop:
			q := pend[k]
			found := false
			for j, p := range q {
				if p.ticket == e.Ticket {
					pend[k] = append(append([]parked(nil), q[:j]...), q[j+1:]...)
					found = true
					break
				}
			}
			if !found {
				return fail("drop of ticket %d that is not parked", e.Ticket)
			}
		case core.EvFree, core.EvAbort:
			used[k] -= e.Amount
			if used[k] < 0 {
				return fail("usage of %s on device %d went negative (%v)", e.Container, e.Device, used[k])
			}
		case core.EvProcExit:
			used[k] -= e.Amount
			if used[k] < 0 {
				return fail("usage of %s on device %d went negative (%v)", e.Container, e.Device, used[k])
			}
			// The exit cancels the pid's parked requests without
			// per-ticket events.
			q := pend[k][:0]
			for _, p := range pend[k] {
				if p.pid != e.PID {
					q = append(q, p)
				}
			}
			pend[k] = q
		case core.EvClose:
			delete(used, k)
			delete(pend, k)
		case core.EvReject, core.EvGrant, core.EvRescue:
			// No usage movement.
		}
		if cap := capacity(e.Device); devUsed(e.Device) > cap {
			return fail("device %d usage %v exceeds capacity %v", e.Device, devUsed(e.Device), cap)
		}
	}
	return nil
}

// CheckHistoryDrained is CheckHistory plus the quiescence condition
// that no request is still parked at the end of the stream — for tests
// that drain the scheduler before stopping.
func CheckHistoryDrained(events []core.EventRecord, capacity func(device int) bytesize.Size) error {
	if err := CheckHistory(events, capacity); err != nil {
		return err
	}
	type tkey struct {
		dev int
		t   core.Ticket
	}
	type park struct {
		id  core.ContainerID
		pid int
	}
	live := make(map[tkey]park)
	for _, e := range events {
		switch e.Kind {
		case core.EvSuspend:
			live[tkey{e.Device, e.Ticket}] = park{id: e.Container, pid: e.PID}
		case core.EvResume, core.EvDrop:
			delete(live, tkey{e.Device, e.Ticket})
		case core.EvClose:
			for t, p := range live {
				if t.dev == e.Device && p.id == e.Container {
					delete(live, t)
				}
			}
		case core.EvProcExit:
			for t, p := range live {
				if t.dev == e.Device && p.id == e.Container && p.pid == e.PID {
					delete(live, t)
				}
			}
		}
	}
	if len(live) > 0 {
		return fmt.Errorf("stream ends with %d request(s) still parked", len(live))
	}
	return nil
}
