package model

import (
	"fmt"
	"math/rand"
	"sort"

	"convgpu/internal/bytesize"
	"convgpu/internal/core"
)

// Config parameterizes a reference model. Devices are homogeneous, as
// everywhere else in the repo (multigpu.Config.CapacityPerDevice,
// cluster.Config.CapacityPerGPU).
type Config struct {
	// Devices is the number of leaf devices, in the same order the real
	// backend reports them from Devices() (multigpu: device i; cluster:
	// node*GPUsPerNode + device).
	Devices int
	// Capacity is each device's schedulable memory.
	Capacity bytesize.Size
	// Overhead is the per-process context overhead, already resolved
	// (the model never substitutes a default).
	Overhead bytesize.Size
	// Algorithm is one of core.AlgFIFO/AlgBestFit/AlgRecentUse/AlgRandom
	// or a tenant-aware wake policy ("fairshare", "quota", "priority").
	Algorithm string
	// AlgSeeds seeds the Random algorithm, one per device, mirroring how
	// the real topology derives them (multigpu device i: AlgSeed+i;
	// cluster node n device i: AlgSeed+100n+i). Ignored by the
	// deterministic algorithms.
	AlgSeeds []int64
	// Routed selects the routing-plane semantics of multigpu/cluster
	// backends: once a container closes its placement is forgotten, so a
	// second Close (and DropPending on an unknown container) reports
	// ErrUnknownContainer instead of the single-State idempotent no-op.
	Routed bool
}

type mpending struct {
	ticket core.Ticket
	pid    int
	size   bytesize.Size
}

type mproc struct {
	charged  bool
	allocs   map[uint64]bytesize.Size
	accepted []bytesize.Size
}

type mcontainer struct {
	id         core.ContainerID
	tenant     core.Tenant
	limit      bytesize.Size
	grant      bytesize.Size
	used       bytesize.Size
	createdSeq uint64
	suspendSeq uint64
	pending    []mpending
	procs      map[int]*mproc
}

type mdevice struct {
	index        int
	pool         bytesize.Size
	nextSeq      uint64
	nextTicket   core.Ticket
	namedTenants int        // containers bound to a named tenant
	rng          *rand.Rand // Random algorithm only
	containers   map[core.ContainerID]*mcontainer
}

// Model is the sequential reference scheduler. It is not safe for
// concurrent use — the whole point is that it has no concurrency.
type Model struct {
	cfg       Config
	devs      []*mdevice
	placement map[core.ContainerID]int
	closed    map[core.ContainerID]bool // single-State close idempotence
}

// New builds a model. The configuration mirrors an already-validated
// real backend, so it panics on nonsense rather than returning errors.
func New(cfg Config) *Model {
	if cfg.Devices < 1 || cfg.Capacity <= 0 {
		panic(fmt.Sprintf("model: bad config: %d devices, capacity %v", cfg.Devices, cfg.Capacity))
	}
	switch cfg.Algorithm {
	case core.AlgFIFO, core.AlgBestFit, core.AlgRecentUse,
		algFairShare, algQuota, algPriority:
	case core.AlgRandom:
		if len(cfg.AlgSeeds) != cfg.Devices {
			panic(fmt.Sprintf("model: random needs %d seeds, got %d", cfg.Devices, len(cfg.AlgSeeds)))
		}
	default:
		panic(fmt.Sprintf("model: unknown algorithm %q", cfg.Algorithm))
	}
	m := &Model{
		cfg:       cfg,
		placement: make(map[core.ContainerID]int),
		closed:    make(map[core.ContainerID]bool),
	}
	for i := 0; i < cfg.Devices; i++ {
		d := &mdevice{index: i, pool: cfg.Capacity, containers: make(map[core.ContainerID]*mcontainer)}
		if cfg.Algorithm == core.AlgRandom {
			d.rng = rand.New(rand.NewSource(cfg.AlgSeeds[i]))
		}
		m.devs = append(m.devs, d)
	}
	return m
}

// --- helpers ---

func (m *Model) find(id core.ContainerID) (*mdevice, *mcontainer, error) {
	if dev, ok := m.placement[id]; ok {
		d := m.devs[dev]
		if c, ok := d.containers[id]; ok {
			return d, c, nil
		}
	}
	return nil, nil, core.ErrUnknownContainer
}

func (m *Model) chargeFor(c *mcontainer, pid int, size bytesize.Size) bytesize.Size {
	if p, ok := c.procs[pid]; ok && p.charged {
		return size
	}
	return size + m.cfg.Overhead
}

func (m *Model) proc(c *mcontainer, pid int) *mproc {
	p, ok := c.procs[pid]
	if !ok {
		p = &mproc{allocs: make(map[uint64]bytesize.Size)}
		c.procs[pid] = p
	}
	return p
}

func (m *Model) admit(c *mcontainer, pid int, size bytesize.Size) {
	charge := m.chargeFor(c, pid, size)
	c.used += charge
	p := m.proc(c, pid)
	p.charged = true
	p.accepted = append(p.accepted, size)
}

func (d *mdevice) sorted() []*mcontainer {
	out := make([]*mcontainer, 0, len(d.containers))
	for _, c := range d.containers {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].createdSeq < out[j].createdSeq })
	return out
}

// --- admission ---

// Register admits id with its creation-time limit on the device the
// real backend placed it on (device may be -1 when the real call
// failed; the model only consults it after deciding the call succeeds).
func (m *Model) Register(id core.ContainerID, limit bytesize.Size, device int) (bytesize.Size, error) {
	return m.RegisterTenant(id, limit, device, core.Tenant{})
}

// RegisterTenant is Register carrying a tenant identity, mirroring
// core.State.RegisterTenant: a named tenant's initial grant is clamped
// by its quota headroom and by the pool share left after other tenants'
// guarantees.
func (m *Model) RegisterTenant(id core.ContainerID, limit bytesize.Size, device int, t core.Tenant) (bytesize.Size, error) {
	if dev, ok := m.placement[id]; ok {
		// A placement pinned by RestorePlacement without a registered
		// container (recovery in flight) does not make id a duplicate.
		if _, registered := m.devs[dev].containers[id]; registered {
			return 0, core.ErrDuplicateContainer
		}
	}
	if limit <= 0 {
		return 0, core.ErrInvalidLimit
	}
	if limit > m.cfg.Capacity {
		return 0, core.ErrLimitExceedsCapacity
	}
	if device < 0 || device >= len(m.devs) {
		return 0, fmt.Errorf("model: real backend placed %s on device %d of %d — illegal placement", id, device, len(m.devs))
	}
	return m.registerAt(id, limit, device, t), nil
}

func (m *Model) registerAt(id core.ContainerID, limit bytesize.Size, device int, t core.Tenant) bytesize.Size {
	d := m.devs[device]
	d.nextSeq++
	c := &mcontainer{
		id:         id,
		tenant:     t,
		limit:      limit,
		createdSeq: d.nextSeq,
		procs:      make(map[int]*mproc),
	}
	c.grant = limit
	if c.grant > d.pool {
		c.grant = d.pool
	}
	if t.Name != "" || d.namedTenants > 0 {
		c.grant = m.clampTake(d, c, c.grant)
	}
	d.pool -= c.grant
	d.containers[id] = c
	m.placement[id] = device
	if t.Name != "" {
		d.namedTenants++
	}
	delete(m.closed, id)
	return c.grant
}

// EnsureRegistered mirrors the recovery-path re-registration: a known
// container's grant is returned untouched when the limit matches, an
// unknown one registers afresh on device (typically pinned beforehand
// with RestorePlacement).
func (m *Model) EnsureRegistered(id core.ContainerID, limit bytesize.Size, device int) (bytesize.Size, error) {
	return m.EnsureRegisteredTenant(id, limit, device, core.Tenant{})
}

// EnsureRegisteredTenant is EnsureRegistered carrying a tenant
// identity, mirroring core.State.EnsureRegisteredTenant's adoption
// rules: a known container's binding is refreshed when the names agree
// (or it had none); an existing different binding is kept.
func (m *Model) EnsureRegisteredTenant(id core.ContainerID, limit bytesize.Size, device int, t core.Tenant) (bytesize.Size, error) {
	if d, c, err := m.find(id); err == nil {
		if c.limit != limit {
			return 0, core.ErrLimitMismatch
		}
		if t.Name != "" && (c.tenant.Name == "" || c.tenant.Name == t.Name) {
			if c.tenant.Name == "" {
				d.namedTenants++
			}
			c.tenant = t
		}
		return c.grant, nil
	}
	return m.RegisterTenant(id, limit, device, t)
}

// ResetDevices mirrors a node death: every listed device is rebuilt
// fresh — full pool, no containers, sequence and ticket counters back to
// zero, the Random rng reseeded from its original seed — exactly the
// state of the empty replacement scheduler the cluster installs in a
// dead node's slot. Containers placed on those devices are forgotten
// (the harness replays the real backend's migration afterwards).
// Returns the forgotten container IDs, sorted.
func (m *Model) ResetDevices(devices []int) []core.ContainerID {
	reset := make(map[int]bool, len(devices))
	for _, di := range devices {
		if di < 0 || di >= len(m.devs) {
			panic(fmt.Sprintf("model: reset of unknown device %d", di))
		}
		reset[di] = true
	}
	var removed []core.ContainerID
	for id, dev := range m.placement {
		if reset[dev] {
			removed = append(removed, id)
			delete(m.placement, id)
		}
	}
	for di := range reset {
		d := &mdevice{index: di, pool: m.cfg.Capacity, containers: make(map[core.ContainerID]*mcontainer)}
		if m.cfg.Algorithm == core.AlgRandom {
			d.rng = rand.New(rand.NewSource(m.cfg.AlgSeeds[di]))
		}
		m.devs[di] = d
	}
	sort.Slice(removed, func(i, j int) bool { return removed[i] < removed[j] })
	return removed
}

// RestorePlacement pins a recovering container's device before
// EnsureRegistered re-admits it, like core.Scheduler's method.
func (m *Model) RestorePlacement(id core.ContainerID, device int) error {
	if device < 0 || device >= len(m.devs) {
		return core.ErrUnknownDevice
	}
	m.placement[id] = device
	return nil
}

// --- the allocation lifecycle ---

// RequestAlloc mirrors core.State.RequestAlloc: reject over the limit,
// top the grant up from the pool (a partial top-up sticks even when the
// request still suspends), accept within the grant, park otherwise.
func (m *Model) RequestAlloc(id core.ContainerID, pid int, size bytesize.Size) (core.AllocResult, error) {
	d, c, err := m.find(id)
	if err != nil {
		return core.AllocResult{}, err
	}
	if size <= 0 {
		return core.AllocResult{}, core.ErrInvalidSize
	}
	charge := m.chargeFor(c, pid, size)
	if c.used+charge > c.limit {
		return core.AllocResult{Decision: core.Reject}, nil
	}
	if c.used+charge > c.grant {
		take := c.used + charge - c.grant
		if take > d.pool {
			take = d.pool
		}
		if d.namedTenants > 0 {
			take = m.clampTake(d, c, take)
		}
		c.grant += take
		d.pool -= take
	}
	if c.used+charge <= c.grant {
		m.admit(c, pid, size)
		return core.AllocResult{Decision: core.Accept}, nil
	}
	if d.namedTenants > 0 && m.tryPreempt(d, c, charge) {
		m.admit(c, pid, size)
		return core.AllocResult{Decision: core.Accept}, nil
	}
	d.nextTicket++
	t := d.nextTicket
	c.pending = append(c.pending, mpending{ticket: t, pid: pid, size: size})
	d.nextSeq++
	c.suspendSeq = d.nextSeq
	return core.AllocResult{Decision: core.Suspend, Ticket: t}, nil
}

// ConfirmAlloc records the device address of an accepted request,
// including the stale-address release of a reused address.
func (m *Model) ConfirmAlloc(id core.ContainerID, pid int, addr uint64, size bytesize.Size) error {
	_, c, err := m.find(id)
	if err != nil {
		return err
	}
	p, ok := c.procs[pid]
	if !ok || len(p.accepted) == 0 {
		return core.ErrNotCharged
	}
	i := indexOfSize(p.accepted, size)
	if i < 0 {
		return fmt.Errorf("model: confirm size %v does not match any accepted request", size)
	}
	for _, q := range c.procs {
		if stale, dup := q.allocs[addr]; dup {
			delete(q.allocs, addr)
			c.used -= stale
		}
	}
	p.accepted = append(p.accepted[:i], p.accepted[i+1:]...)
	p.allocs[addr] = size
	return nil
}

// AbortAlloc returns an accepted-but-failed request's charge.
func (m *Model) AbortAlloc(id core.ContainerID, pid int, size bytesize.Size) (core.Update, error) {
	d, c, err := m.find(id)
	if err != nil {
		return core.Update{}, err
	}
	p, ok := c.procs[pid]
	if !ok || len(p.accepted) == 0 {
		return core.Update{}, core.ErrNotCharged
	}
	i := indexOfSize(p.accepted, size)
	if i < 0 {
		return core.Update{}, fmt.Errorf("model: abort size %v does not match any accepted request", size)
	}
	p.accepted = append(p.accepted[:i], p.accepted[i+1:]...)
	c.used -= size // overhead stays charged
	return m.afterRelease(d), nil
}

// Free releases the allocation at addr.
func (m *Model) Free(id core.ContainerID, pid int, addr uint64) (bytesize.Size, core.Update, error) {
	d, c, err := m.find(id)
	if err != nil {
		return 0, core.Update{}, err
	}
	p, ok := c.procs[pid]
	if !ok {
		return 0, core.Update{}, core.ErrUnknownPID
	}
	size, ok := p.allocs[addr]
	if !ok {
		return 0, core.Update{}, core.ErrUnknownAddr
	}
	delete(p.allocs, addr)
	c.used -= size
	return size, m.afterRelease(d), nil
}

// ProcessExit releases everything pid holds and cancels its parked
// requests.
func (m *Model) ProcessExit(id core.ContainerID, pid int) (bytesize.Size, core.Update, error) {
	d, c, err := m.find(id)
	if err != nil {
		return 0, core.Update{}, err
	}
	var released bytesize.Size
	if p, ok := c.procs[pid]; ok {
		for _, sz := range p.allocs {
			released += sz
		}
		for _, sz := range p.accepted {
			released += sz
		}
		if p.charged {
			released += m.cfg.Overhead
		}
		c.used -= released
	}
	var u core.Update
	kept := c.pending[:0]
	for _, r := range c.pending {
		if r.pid == pid {
			u.Cancelled = append(u.Cancelled, core.Admitted{Container: id, Ticket: r.ticket})
			continue
		}
		kept = append(kept, r)
	}
	c.pending = kept
	delete(c.procs, pid)
	more := m.afterRelease(d)
	u.Admitted = more.Admitted
	u.Cancelled = append(u.Cancelled, more.Cancelled...)
	return released, u, nil
}

// Close removes the container, returns its grant to the pool and
// redistributes.
func (m *Model) Close(id core.ContainerID) (bytesize.Size, core.Update, error) {
	d, c, err := m.find(id)
	if err != nil {
		if !m.cfg.Routed && m.closed[id] {
			return 0, core.Update{}, nil // idempotent re-close on a single State
		}
		return 0, core.Update{}, core.ErrUnknownContainer
	}
	var u core.Update
	for _, r := range c.pending {
		u.Cancelled = append(u.Cancelled, core.Admitted{Container: id, Ticket: r.ticket})
	}
	c.pending = nil
	released := c.grant
	d.pool += c.grant
	if c.tenant.Name != "" {
		d.namedTenants--
	}
	delete(d.containers, id)
	delete(m.placement, id)
	m.closed[id] = true
	more := m.afterRelease(d)
	u.Admitted = append(u.Admitted, more.Admitted...)
	u.Cancelled = append(u.Cancelled, more.Cancelled...)
	return released, u, nil
}

// MemInfo reports the container's virtualized memory view.
func (m *Model) MemInfo(id core.ContainerID) (free, total bytesize.Size, err error) {
	_, c, err := m.find(id)
	if err != nil {
		return 0, 0, err
	}
	return c.limit - c.used, c.limit, nil
}

// Restore re-charges a live allocation during recovery replay.
func (m *Model) Restore(id core.ContainerID, pid int, addr uint64, size bytesize.Size) error {
	d, c, err := m.find(id)
	if err != nil {
		return err
	}
	if size <= 0 {
		return core.ErrInvalidSize
	}
	for _, q := range c.procs {
		if have, dup := q.allocs[addr]; dup {
			if have == size {
				return nil
			}
			return fmt.Errorf("model: restore of %#x conflicts with tracked size", addr)
		}
	}
	charge := m.chargeFor(c, pid, size)
	if c.used+charge > c.limit {
		return core.ErrRestoreInfeasible
	}
	if c.used+charge > c.grant {
		need := c.used + charge - c.grant
		if need > d.pool {
			return core.ErrRestoreInfeasible
		}
		if d.namedTenants > 0 && m.quotaHeadroom(d, c.tenant) < need {
			return core.ErrRestoreInfeasible
		}
		c.grant += need
		d.pool -= need
	}
	p := m.proc(c, pid)
	p.charged = true
	p.allocs[addr] = size
	c.used += charge
	return nil
}

// DropPending removes parked tickets (idempotent on a single State,
// ErrUnknownContainer through a routing plane — see Config.Routed).
func (m *Model) DropPending(id core.ContainerID, tickets []core.Ticket) (core.Update, error) {
	d, c, err := m.find(id)
	if err != nil {
		if m.cfg.Routed {
			return core.Update{}, core.ErrUnknownContainer
		}
		return core.Update{}, nil
	}
	drop := make(map[core.Ticket]bool, len(tickets))
	for _, t := range tickets {
		drop[t] = true
	}
	kept := c.pending[:0]
	removed := 0
	for _, r := range c.pending {
		if drop[r.ticket] {
			removed++
			continue
		}
		kept = append(kept, r)
	}
	if removed == 0 {
		return core.Update{}, nil
	}
	c.pending = kept
	return m.afterRelease(d), nil
}

// --- redistribution: the heart of the oracle ---

// afterRelease mirrors core.State.afterRelease under the default
// (reclaiming, non-fault-tolerant) semantics: first admit requests that
// now fit their container's own grant, in container creation order,
// then run the algorithm's redistribution loop.
func (m *Model) afterRelease(d *mdevice) core.Update {
	var u core.Update
	for _, c := range d.sorted() {
		u.Admitted = append(u.Admitted, m.admitFitting(d, c)...)
	}
	u.Admitted = append(u.Admitted, m.redistribute(d)...)
	return u
}

// admitFitting admits c's pending requests head-first while they fit
// the current grant — per-container FIFO by construction.
func (m *Model) admitFitting(d *mdevice, c *mcontainer) []core.Admitted {
	var admitted []core.Admitted
	for len(c.pending) > 0 {
		head := c.pending[0]
		charge := m.chargeFor(c, head.pid, head.size)
		if c.used+charge > c.grant {
			break
		}
		m.admit(c, head.pid, head.size)
		admitted = append(admitted, core.Admitted{Container: c.id, Ticket: head.ticket})
		c.pending = c.pending[1:]
	}
	return admitted
}

// redistribute is the paper's loop: reclaim paused containers' unused
// grants into the pool, then, while free memory and candidates remain,
// let the algorithm pick a container and grant it up to its limit.
func (m *Model) redistribute(d *mdevice) []core.Admitted {
	for _, c := range d.sorted() {
		if len(c.pending) > 0 && c.grant > c.used {
			d.pool += c.grant - c.used
			c.grant = c.used
		}
	}
	var admitted []core.Admitted
	for d.pool > 0 {
		cands := m.candidates(d)
		if len(cands) == 0 {
			break
		}
		i := m.pick(d, cands)
		if i < 0 || i >= len(cands) {
			break
		}
		c := cands[i].con
		give := cands[i].deficit
		if give > d.pool {
			give = d.pool
		}
		c.grant += give
		d.pool -= give
		admitted = append(admitted, m.admitFitting(d, c)...)
	}
	return admitted
}

// mcand is one redistribution candidate: the container plus its
// effective deficit (limit - grant, further capped by the tenant's
// quota headroom and guarantee-reserved pool share when named tenants
// are active) and the tenant attributes the tenant-aware wake policies
// order by.
type mcand struct {
	con     *mcontainer
	deficit bytesize.Size
	tWeight int
	tPrio   int
	tGrant  bytesize.Size // tenant's summed grants on this device
	tGuar   bytesize.Size
}

// candidates lists paused containers that more memory could help, in
// creation order. With named tenants active, candidates whose effective
// deficit clamps to zero are excluded, mirroring core.candidatesLocked.
func (m *Model) candidates(d *mdevice) []mcand {
	var grantSums map[string]bytesize.Size
	if d.namedTenants > 0 {
		grantSums = make(map[string]bytesize.Size)
		for _, c := range d.containers {
			grantSums[c.tenant.Name] += c.grant
		}
	}
	var out []mcand
	for _, c := range d.sorted() {
		if len(c.pending) == 0 || c.grant >= c.limit {
			continue
		}
		cand := mcand{con: c, deficit: c.limit - c.grant}
		if d.namedTenants > 0 {
			if hr := m.quotaHeadroom(d, c.tenant); cand.deficit > hr {
				cand.deficit = hr
			}
			if avail := m.availableFor(d, c.tenant); cand.deficit > avail {
				cand.deficit = avail
			}
			if cand.deficit <= 0 {
				continue
			}
			cand.tWeight = c.tenant.Weight
			cand.tPrio = c.tenant.Priority
			cand.tGrant = grantSums[c.tenant.Name]
			cand.tGuar = c.tenant.Guarantee
		}
		out = append(out, cand)
	}
	return out
}

// pick reimplements the paper's four algorithms and the tenant-aware
// wake policies over creation-ordered candidates. Independent from
// internal/core and internal/policy on purpose: a bug in either
// implementation diverges here.
func (m *Model) pick(d *mdevice, cands []mcand) int {
	switch m.cfg.Algorithm {
	case core.AlgFIFO:
		// Oldest container first.
		best := 0
		for i, c := range cands {
			if c.con.createdSeq < cands[best].con.createdSeq {
				best = i
			}
		}
		return best
	case core.AlgBestFit:
		// The largest deficit that still fits the pool ("closest, but not
		// exceed"); when nothing fits, the smallest deficit. Ties go to
		// the older container.
		fit, small := -1, -1
		for i, c := range cands {
			if c.deficit <= d.pool {
				if fit == -1 || c.deficit > cands[fit].deficit {
					fit = i
				}
			}
			if small == -1 || c.deficit < cands[small].deficit {
				small = i
			}
		}
		if fit != -1 {
			return fit
		}
		return small
	case core.AlgRecentUse:
		// Most recently suspended container; the first maximum wins ties.
		best := 0
		for i, c := range cands {
			if c.con.suspendSeq > cands[best].con.suspendSeq {
				best = i
			}
		}
		return best
	case core.AlgRandom:
		// Uniform over creation-ordered candidates; one Intn draw per
		// pick, exactly like core's seeded Random.
		return d.rng.Intn(len(cands))
	case algFairShare:
		// Smallest weighted tenant share (grant/weight ratio,
		// cross-multiplied), then creation order.
		best := 0
		for i, c := range cands {
			if i == 0 {
				continue
			}
			b := cands[best]
			sa := int64(c.tGrant) * mweight(b.tWeight)
			sb := int64(b.tGrant) * mweight(c.tWeight)
			if sa < sb || (sa == sb && c.con.createdSeq < b.con.createdSeq) {
				best = i
			}
		}
		return best
	case algQuota:
		// Largest guarantee shortfall first, then creation order.
		best := 0
		for i, c := range cands {
			if i == 0 {
				continue
			}
			b := cands[best]
			sa, sb := mshortfall(c), mshortfall(b)
			if sa > sb || (sa == sb && c.con.createdSeq < b.con.createdSeq) {
				best = i
			}
		}
		return best
	case algPriority:
		// Highest tenant priority first, then creation order.
		best := 0
		for i, c := range cands {
			if i == 0 {
				continue
			}
			b := cands[best]
			if c.tPrio > b.tPrio || (c.tPrio == b.tPrio && c.con.createdSeq < b.con.createdSeq) {
				best = i
			}
		}
		return best
	}
	return -1
}

// --- cross-check views ---

// ContainerView is the model's per-container state for snapshot
// comparison.
type ContainerView struct {
	ID      core.ContainerID
	Device  int
	Limit   bytesize.Size
	Grant   bytesize.Size
	Used    bytesize.Size
	Pending int
}

// Containers returns every registered container, sorted by ID.
func (m *Model) Containers() []ContainerView {
	var out []ContainerView
	for id, dev := range m.placement {
		c, ok := m.devs[dev].containers[id]
		if !ok {
			continue // placement pinned by RestorePlacement, not registered yet
		}
		out = append(out, ContainerView{
			ID: id, Device: dev,
			Limit: c.limit, Grant: c.grant, Used: c.used, Pending: len(c.pending),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Pools returns each device's ungranted memory, in device order.
func (m *Model) Pools() []bytesize.Size {
	out := make([]bytesize.Size, len(m.devs))
	for i, d := range m.devs {
		out[i] = d.pool
	}
	return out
}

// Device reports the device a registered container lives on.
func (m *Model) Device(id core.ContainerID) (int, bool) {
	dev, ok := m.placement[id]
	return dev, ok
}

// PendingTickets lists a container's parked tickets in queue order.
func (m *Model) PendingTickets(id core.ContainerID) []core.Ticket {
	_, c, err := m.find(id)
	if err != nil {
		return nil
	}
	out := make([]core.Ticket, len(c.pending))
	for i, r := range c.pending {
		out[i] = r.ticket
	}
	return out
}

func indexOfSize(sizes []bytesize.Size, size bytesize.Size) int {
	for i, s := range sizes {
		if s == size {
			return i
		}
	}
	return -1
}
