// Package multigpu implements the paper's first stated piece of future
// work (§V): "extend the ConVGPU in a multiple GPU with an appropriate
// algorithm to achieve better performance."
//
// The design keeps the single-GPU scheduler core untouched: one
// core.State per device, plus a placement policy that decides, at
// registration time, which GPU a container lives on. A container's
// processes then talk to their device's scheduler exactly as before —
// CUDA contexts are bound to one device, so a container never migrates.
//
// Four placement policies are provided, mirroring the flavor of the
// paper's four redistribution algorithms:
//
//   - round-robin: rotate across devices;
//   - least-loaded: the device with the most unassigned memory;
//   - first-fit: the first device whose pool covers the full request;
//   - best-fit: the device with the smallest pool still covering the
//     full request (pack tight, keep big pools for big containers).
package multigpu

import (
	"fmt"
	"strings"
	"sync"

	"convgpu/internal/bytesize"
	"convgpu/internal/clock"
	"convgpu/internal/core"
)

// ErrUnknownContainer is core.ErrUnknownContainer: an operation for a
// container no device serves.
var ErrUnknownContainer = core.ErrUnknownContainer

// DeviceInfo summarizes one device for placement decisions.
type DeviceInfo = core.DeviceInfo

// Policy selects a device for a new container. Place returns a device
// index, or -1 to refuse (no device can ever hold the limit).
type Policy interface {
	Name() string
	Place(limit bytesize.Size, devs []DeviceInfo) int
}

// Policy names understood by NewPolicy.
const (
	PolicyRoundRobin  = "roundrobin"
	PolicyLeastLoaded = "leastloaded"
	PolicyFirstFit    = "firstfit"
	PolicyBestFit     = "bestfit"
)

// PolicyNames lists the placement policies.
func PolicyNames() []string {
	return []string{PolicyRoundRobin, PolicyLeastLoaded, PolicyFirstFit, PolicyBestFit}
}

// NewPolicy constructs a policy by name.
func NewPolicy(name string) (Policy, error) {
	switch strings.ToLower(name) {
	case PolicyRoundRobin, "rr":
		return &RoundRobin{}, nil
	case PolicyLeastLoaded, "ll":
		return LeastLoaded{}, nil
	case PolicyFirstFit, "ff":
		return FirstFit{}, nil
	case PolicyBestFit, "bf":
		return BestFitDevice{}, nil
	default:
		return nil, fmt.Errorf("multigpu: unknown placement policy %q", name)
	}
}

// RoundRobin rotates placements across devices that can ever fit the
// limit.
type RoundRobin struct {
	mu   sync.Mutex
	next int
}

// Name implements Policy.
func (*RoundRobin) Name() string { return PolicyRoundRobin }

// Place implements Policy.
func (r *RoundRobin) Place(limit bytesize.Size, devs []DeviceInfo) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := 0; i < len(devs); i++ {
		d := devs[(r.next+i)%len(devs)]
		if d.Capacity >= limit {
			r.next = (d.Index + 1) % len(devs)
			return d.Index
		}
	}
	return -1
}

// LeastLoaded picks the device with the largest unassigned pool,
// balancing memory pressure.
type LeastLoaded struct{}

// Name implements Policy.
func (LeastLoaded) Name() string { return PolicyLeastLoaded }

// Place implements Policy.
func (LeastLoaded) Place(limit bytesize.Size, devs []DeviceInfo) int {
	best := -1
	for _, d := range devs {
		if d.Capacity < limit {
			continue
		}
		if best == -1 || d.PoolFree > devs[best].PoolFree {
			best = d.Index
		}
	}
	return best
}

// FirstFit picks the first device whose free pool covers the whole
// limit, falling back to the least-loaded when none does.
type FirstFit struct{}

// Name implements Policy.
func (FirstFit) Name() string { return PolicyFirstFit }

// Place implements Policy.
func (FirstFit) Place(limit bytesize.Size, devs []DeviceInfo) int {
	for _, d := range devs {
		if d.Capacity >= limit && d.PoolFree >= limit {
			return d.Index
		}
	}
	return LeastLoaded{}.Place(limit, devs)
}

// BestFitDevice picks the device with the smallest pool that still
// covers the whole limit (tight packing keeps large pools intact for
// large containers), falling back to the least-loaded.
type BestFitDevice struct{}

// Name implements Policy.
func (BestFitDevice) Name() string { return PolicyBestFit }

// Place implements Policy.
func (BestFitDevice) Place(limit bytesize.Size, devs []DeviceInfo) int {
	best := -1
	for _, d := range devs {
		if d.Capacity < limit || d.PoolFree < limit {
			continue
		}
		if best == -1 || d.PoolFree < devs[best].PoolFree {
			best = d.Index
		}
	}
	if best != -1 {
		return best
	}
	return LeastLoaded{}.Place(limit, devs)
}

// Config assembles a multi-GPU scheduler.
type Config struct {
	// Devices is the number of GPUs (required, >= 1).
	Devices int
	// CapacityPerDevice is each device's schedulable memory.
	CapacityPerDevice bytesize.Size
	// Capacities, when non-empty, gives every device its own schedulable
	// memory instead of the uniform CapacityPerDevice — the MIG-style
	// heterogeneous topology where one physical GPU is partitioned into
	// unequal instances (a 3g.20gb next to two 1g.5gb slices). Its
	// length must equal Devices. Placement policies see the per-device
	// capacities through DeviceInfo.Capacity exactly as before; nothing
	// else in the scheduler assumes uniformity.
	Capacities []bytesize.Size
	// Algorithm is the per-device redistribution algorithm name.
	Algorithm string
	// AlgorithmFactory, when non-nil, supplies each device's wake-order
	// algorithm instead of resolving Algorithm by name — the policy
	// registry's construction path, which also reaches policies
	// core.NewAlgorithm does not know. It is called once per device with
	// that device's seed (AlgSeed + device index).
	AlgorithmFactory func(seed int64) (core.Algorithm, error)
	// AlgSeed seeds the Random algorithm.
	AlgSeed int64
	// Policy places containers onto devices (default least-loaded).
	Policy Policy
	// Clock is shared by all per-device schedulers.
	Clock clock.Clock
	// ContextOverhead per process (default 66 MiB).
	ContextOverhead bytesize.Size
	// PersistentGrants selects the non-reclaiming grant semantics.
	PersistentGrants bool
}

// State is the multi-GPU scheduler: one core.State per device (state i
// is built with DeviceIndex i) behind the shared routing plane, plus
// the placement policy consulted at registration time. It implements
// core.Scheduler, so a daemon serves it exactly like a single device.
type State struct {
	*core.Router
	policy Policy

	// regMu serializes placement decisions: Devices() must be observed
	// and the chosen device registered atomically with respect to other
	// registrations, or two containers could race past a policy that
	// meant to separate them.
	regMu sync.Mutex
}

var _ core.Scheduler = (*State)(nil)

// New builds the multi-GPU scheduler.
func New(cfg Config) (*State, error) {
	if cfg.Devices < 1 {
		return nil, fmt.Errorf("multigpu: need at least one device, got %d", cfg.Devices)
	}
	if cfg.Policy == nil {
		cfg.Policy = LeastLoaded{}
	}
	if cfg.Algorithm == "" {
		cfg.Algorithm = core.AlgFIFO
	}
	if len(cfg.Capacities) > 0 && len(cfg.Capacities) != cfg.Devices {
		return nil, fmt.Errorf("multigpu: %d per-device capacities for %d devices", len(cfg.Capacities), cfg.Devices)
	}
	members := make([]core.Scheduler, cfg.Devices)
	for i := range members {
		var alg core.Algorithm
		var err error
		if cfg.AlgorithmFactory != nil {
			alg, err = cfg.AlgorithmFactory(cfg.AlgSeed + int64(i))
		} else {
			alg, err = core.NewAlgorithm(cfg.Algorithm, cfg.AlgSeed+int64(i))
		}
		if err != nil {
			return nil, err
		}
		capacity := cfg.CapacityPerDevice
		if len(cfg.Capacities) > 0 {
			capacity = cfg.Capacities[i]
		}
		st, err := core.New(core.Config{
			Capacity:         capacity,
			DeviceIndex:      i,
			Algorithm:        alg,
			Clock:            cfg.Clock,
			ContextOverhead:  cfg.ContextOverhead,
			PersistentGrants: cfg.PersistentGrants,
		})
		if err != nil {
			return nil, err
		}
		members[i] = st
	}
	return &State{
		Router: core.NewRouter(members, "device"),
		policy: cfg.Policy,
	}, nil
}

// PolicyName returns the active placement policy's name.
func (s *State) PolicyName() string { return s.policy.Name() }

// Register places the container on a device per the policy and
// registers it there; Placement reports the chosen device afterwards.
// The container belongs to the default tenant; RegisterTenant carries a
// tenant identity.
func (s *State) Register(id core.ContainerID, limit bytesize.Size) (bytesize.Size, error) {
	return s.RegisterTenant(id, limit, core.Tenant{})
}

// RegisterTenant is Register carrying a tenant identity, forwarded to
// the chosen device's scheduler.
func (s *State) RegisterTenant(id core.ContainerID, limit bytesize.Size, t core.Tenant) (bytesize.Size, error) {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	if d, err := s.PlacementIndex(id); err == nil {
		// Already placed: let the owning device report the duplicate.
		return s.Member(d).RegisterTenant(id, limit, t)
	}
	device := s.policy.Place(limit, s.Devices())
	if device < 0 || device >= s.NumMembers() {
		return 0, fmt.Errorf("%w: no device can hold a %v container", core.ErrLimitExceedsCapacity, limit)
	}
	granted, err := s.Member(device).RegisterTenant(id, limit, t)
	if err != nil {
		return 0, err
	}
	s.SetPlacement(id, device)
	return granted, nil
}

// EnsureRegistered routes to the recorded device when the container is
// known (including a placement pinned by RestorePlacement during
// session recovery), and otherwise places it afresh — the idempotent
// re-registration the daemon's recovery path needs on a multi-device
// scheduler.
func (s *State) EnsureRegistered(id core.ContainerID, limit bytesize.Size) (bytesize.Size, error) {
	return s.EnsureRegisteredTenant(id, limit, core.Tenant{})
}

// EnsureRegisteredTenant is EnsureRegistered carrying a tenant
// identity.
func (s *State) EnsureRegisteredTenant(id core.ContainerID, limit bytesize.Size, t core.Tenant) (bytesize.Size, error) {
	if d, err := s.PlacementIndex(id); err == nil {
		return s.Member(d).EnsureRegisteredTenant(id, limit, t)
	}
	return s.RegisterTenant(id, limit, t)
}
