// Package multigpu implements the paper's first stated piece of future
// work (§V): "extend the ConVGPU in a multiple GPU with an appropriate
// algorithm to achieve better performance."
//
// The design keeps the single-GPU scheduler core untouched: one
// core.State per device, plus a placement policy that decides, at
// registration time, which GPU a container lives on. A container's
// processes then talk to their device's scheduler exactly as before —
// CUDA contexts are bound to one device, so a container never migrates.
//
// Four placement policies are provided, mirroring the flavor of the
// paper's four redistribution algorithms:
//
//   - round-robin: rotate across devices;
//   - least-loaded: the device with the most unassigned memory;
//   - first-fit: the first device whose pool covers the full request;
//   - best-fit: the device with the smallest pool still covering the
//     full request (pack tight, keep big pools for big containers).
package multigpu

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"convgpu/internal/bytesize"
	"convgpu/internal/clock"
	"convgpu/internal/core"
)

// ErrUnknownContainer mirrors core.ErrUnknownContainer at cluster scope.
var ErrUnknownContainer = errors.New("multigpu: unknown container")

// DeviceInfo summarizes one device for placement decisions.
type DeviceInfo struct {
	// Index is the device ordinal.
	Index int
	// Capacity is the device's schedulable memory.
	Capacity bytesize.Size
	// PoolFree is the memory not assigned to any container.
	PoolFree bytesize.Size
	// Containers is the number of containers placed on the device.
	Containers int
}

// Policy selects a device for a new container. Place returns a device
// index, or -1 to refuse (no device can ever hold the limit).
type Policy interface {
	Name() string
	Place(limit bytesize.Size, devs []DeviceInfo) int
}

// Policy names understood by NewPolicy.
const (
	PolicyRoundRobin  = "roundrobin"
	PolicyLeastLoaded = "leastloaded"
	PolicyFirstFit    = "firstfit"
	PolicyBestFit     = "bestfit"
)

// PolicyNames lists the placement policies.
func PolicyNames() []string {
	return []string{PolicyRoundRobin, PolicyLeastLoaded, PolicyFirstFit, PolicyBestFit}
}

// NewPolicy constructs a policy by name.
func NewPolicy(name string) (Policy, error) {
	switch strings.ToLower(name) {
	case PolicyRoundRobin, "rr":
		return &RoundRobin{}, nil
	case PolicyLeastLoaded, "ll":
		return LeastLoaded{}, nil
	case PolicyFirstFit, "ff":
		return FirstFit{}, nil
	case PolicyBestFit, "bf":
		return BestFitDevice{}, nil
	default:
		return nil, fmt.Errorf("multigpu: unknown placement policy %q", name)
	}
}

// RoundRobin rotates placements across devices that can ever fit the
// limit.
type RoundRobin struct {
	mu   sync.Mutex
	next int
}

// Name implements Policy.
func (*RoundRobin) Name() string { return PolicyRoundRobin }

// Place implements Policy.
func (r *RoundRobin) Place(limit bytesize.Size, devs []DeviceInfo) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := 0; i < len(devs); i++ {
		d := devs[(r.next+i)%len(devs)]
		if d.Capacity >= limit {
			r.next = (d.Index + 1) % len(devs)
			return d.Index
		}
	}
	return -1
}

// LeastLoaded picks the device with the largest unassigned pool,
// balancing memory pressure.
type LeastLoaded struct{}

// Name implements Policy.
func (LeastLoaded) Name() string { return PolicyLeastLoaded }

// Place implements Policy.
func (LeastLoaded) Place(limit bytesize.Size, devs []DeviceInfo) int {
	best := -1
	for _, d := range devs {
		if d.Capacity < limit {
			continue
		}
		if best == -1 || d.PoolFree > devs[best].PoolFree {
			best = d.Index
		}
	}
	return best
}

// FirstFit picks the first device whose free pool covers the whole
// limit, falling back to the least-loaded when none does.
type FirstFit struct{}

// Name implements Policy.
func (FirstFit) Name() string { return PolicyFirstFit }

// Place implements Policy.
func (FirstFit) Place(limit bytesize.Size, devs []DeviceInfo) int {
	for _, d := range devs {
		if d.Capacity >= limit && d.PoolFree >= limit {
			return d.Index
		}
	}
	return LeastLoaded{}.Place(limit, devs)
}

// BestFitDevice picks the device with the smallest pool that still
// covers the whole limit (tight packing keeps large pools intact for
// large containers), falling back to the least-loaded.
type BestFitDevice struct{}

// Name implements Policy.
func (BestFitDevice) Name() string { return PolicyBestFit }

// Place implements Policy.
func (BestFitDevice) Place(limit bytesize.Size, devs []DeviceInfo) int {
	best := -1
	for _, d := range devs {
		if d.Capacity < limit || d.PoolFree < limit {
			continue
		}
		if best == -1 || d.PoolFree < devs[best].PoolFree {
			best = d.Index
		}
	}
	if best != -1 {
		return best
	}
	return LeastLoaded{}.Place(limit, devs)
}

// Config assembles a multi-GPU scheduler.
type Config struct {
	// Devices is the number of GPUs (required, >= 1).
	Devices int
	// CapacityPerDevice is each device's schedulable memory.
	CapacityPerDevice bytesize.Size
	// Algorithm is the per-device redistribution algorithm name.
	Algorithm string
	// AlgSeed seeds the Random algorithm.
	AlgSeed int64
	// Policy places containers onto devices (default least-loaded).
	Policy Policy
	// Clock is shared by all per-device schedulers.
	Clock clock.Clock
	// ContextOverhead per process (default 66 MiB).
	ContextOverhead bytesize.Size
	// PersistentGrants selects the non-reclaiming grant semantics.
	PersistentGrants bool
}

// Scheduler manages one core.State per GPU plus the placement map.
type Scheduler struct {
	states []*core.State
	policy Policy

	mu        sync.Mutex
	placement map[core.ContainerID]int
}

// New builds the multi-GPU scheduler.
func New(cfg Config) (*Scheduler, error) {
	if cfg.Devices < 1 {
		return nil, fmt.Errorf("multigpu: need at least one device, got %d", cfg.Devices)
	}
	if cfg.Policy == nil {
		cfg.Policy = LeastLoaded{}
	}
	if cfg.Algorithm == "" {
		cfg.Algorithm = core.AlgFIFO
	}
	states := make([]*core.State, cfg.Devices)
	for i := range states {
		alg, err := core.NewAlgorithm(cfg.Algorithm, cfg.AlgSeed+int64(i))
		if err != nil {
			return nil, err
		}
		st, err := core.New(core.Config{
			Capacity:         cfg.CapacityPerDevice,
			Algorithm:        alg,
			Clock:            cfg.Clock,
			ContextOverhead:  cfg.ContextOverhead,
			PersistentGrants: cfg.PersistentGrants,
		})
		if err != nil {
			return nil, err
		}
		states[i] = st
	}
	return &Scheduler{
		states:    states,
		policy:    cfg.Policy,
		placement: make(map[core.ContainerID]int),
	}, nil
}

// Devices reports per-device summaries.
func (s *Scheduler) Devices() []DeviceInfo {
	s.mu.Lock()
	perDev := make([]int, len(s.states))
	for _, d := range s.placement {
		perDev[d]++
	}
	s.mu.Unlock()
	out := make([]DeviceInfo, len(s.states))
	for i, st := range s.states {
		out[i] = DeviceInfo{
			Index:      i,
			Capacity:   st.Capacity(),
			PoolFree:   st.PoolFree(),
			Containers: perDev[i],
		}
	}
	return out
}

// PolicyName returns the active placement policy's name.
func (s *Scheduler) PolicyName() string { return s.policy.Name() }

// Register places the container on a device and registers it there.
// It returns the chosen device and the initial grant.
func (s *Scheduler) Register(id core.ContainerID, limit bytesize.Size) (device int, granted bytesize.Size, err error) {
	devs := s.Devices()
	device = s.policy.Place(limit, devs)
	if device < 0 || device >= len(s.states) {
		return -1, 0, fmt.Errorf("multigpu: no device can hold a %v container", limit)
	}
	granted, err = s.states[device].Register(id, limit)
	if err != nil {
		return -1, 0, err
	}
	s.mu.Lock()
	s.placement[id] = device
	s.mu.Unlock()
	return device, granted, nil
}

// stateOf resolves the device scheduler owning a container.
func (s *Scheduler) stateOf(id core.ContainerID) (*core.State, int, error) {
	s.mu.Lock()
	d, ok := s.placement[id]
	s.mu.Unlock()
	if !ok {
		return nil, -1, fmt.Errorf("%w: %s", ErrUnknownContainer, id)
	}
	return s.states[d], d, nil
}

// Placement reports which device a container lives on.
func (s *Scheduler) Placement(id core.ContainerID) (int, error) {
	_, d, err := s.stateOf(id)
	return d, err
}

// RequestAlloc forwards to the container's device scheduler.
func (s *Scheduler) RequestAlloc(id core.ContainerID, pid int, size bytesize.Size) (core.AllocResult, error) {
	st, _, err := s.stateOf(id)
	if err != nil {
		return core.AllocResult{}, err
	}
	return st.RequestAlloc(id, pid, size)
}

// ConfirmAlloc forwards to the container's device scheduler.
func (s *Scheduler) ConfirmAlloc(id core.ContainerID, pid int, addr uint64, size bytesize.Size) error {
	st, _, err := s.stateOf(id)
	if err != nil {
		return err
	}
	return st.ConfirmAlloc(id, pid, addr, size)
}

// Free forwards to the container's device scheduler.
func (s *Scheduler) Free(id core.ContainerID, pid int, addr uint64) (bytesize.Size, core.Update, error) {
	st, _, err := s.stateOf(id)
	if err != nil {
		return 0, core.Update{}, err
	}
	return st.Free(id, pid, addr)
}

// ProcessExit forwards to the container's device scheduler.
func (s *Scheduler) ProcessExit(id core.ContainerID, pid int) (bytesize.Size, core.Update, error) {
	st, _, err := s.stateOf(id)
	if err != nil {
		return 0, core.Update{}, err
	}
	return st.ProcessExit(id, pid)
}

// Close forwards the close signal and forgets the placement.
func (s *Scheduler) Close(id core.ContainerID) (bytesize.Size, core.Update, error) {
	st, _, err := s.stateOf(id)
	if err != nil {
		return 0, core.Update{}, err
	}
	released, u, err := st.Close(id)
	if err == nil {
		s.mu.Lock()
		delete(s.placement, id)
		s.mu.Unlock()
	}
	return released, u, err
}

// MemInfo forwards to the container's device scheduler.
func (s *Scheduler) MemInfo(id core.ContainerID) (free, total bytesize.Size, err error) {
	st, _, err := s.stateOf(id)
	if err != nil {
		return 0, 0, err
	}
	return st.MemInfo(id)
}

// Info returns the scheduler snapshot row for a container.
func (s *Scheduler) Info(id core.ContainerID) (core.ContainerInfo, error) {
	st, _, err := s.stateOf(id)
	if err != nil {
		return core.ContainerInfo{}, err
	}
	return st.Info(id)
}

// TotalUsed sums usage across every device.
func (s *Scheduler) TotalUsed() bytesize.Size {
	var total bytesize.Size
	for _, st := range s.states {
		total += st.TotalUsed()
	}
	return total
}

// SimBackend adapts the scheduler to the simulator's Backend interface
// (whose Register does not report the placement).
type SimBackend struct{ *Scheduler }

// Register implements the simulator backend by dropping the device
// index from the placement result.
func (b SimBackend) Register(id core.ContainerID, limit bytesize.Size) (bytesize.Size, error) {
	_, granted, err := b.Scheduler.Register(id, limit)
	return granted, err
}

// CheckInvariants validates every per-device scheduler.
func (s *Scheduler) CheckInvariants() error {
	for i, st := range s.states {
		if err := st.CheckInvariants(); err != nil {
			return fmt.Errorf("device %d: %w", i, err)
		}
	}
	return nil
}
