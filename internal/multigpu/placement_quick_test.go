package multigpu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"convgpu/internal/bytesize"
	"convgpu/internal/core"
)

// genDevices builds a random, well-formed device summary slice: dense
// indices, capacities of a few GiB, pools within capacity.
func genDevices(rng *rand.Rand) []DeviceInfo {
	n := rng.Intn(8)
	out := make([]DeviceInfo, n)
	for i := range out {
		capMiB := rng.Intn(4096) + 1
		out[i] = DeviceInfo{
			Index:      i,
			Capacity:   bytesize.Size(capMiB) * bytesize.MiB,
			PoolFree:   bytesize.Size(rng.Intn(capMiB+1)) * bytesize.MiB,
			Containers: rng.Intn(10),
		}
	}
	return out
}

// freshPolicies builds one instance of every placement policy.
// RoundRobin is stateful, so each property run gets its own.
func freshPolicies() []Policy {
	return []Policy{&RoundRobin{}, LeastLoaded{}, FirstFit{}, BestFitDevice{}}
}

// TestPoliciesPickInRangeProperty: every policy returns either -1 (only
// when no device's capacity covers the limit) or a valid index of a
// device that can ever hold the limit, for arbitrary device sets.
func TestPoliciesPickInRangeProperty(t *testing.T) {
	f := func(seed int64, limitMiB uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		devs := genDevices(rng)
		limit := bytesize.Size(int(limitMiB)%4096+1) * bytesize.MiB
		anyCapable := false
		for _, d := range devs {
			if d.Capacity >= limit {
				anyCapable = true
			}
		}
		for _, p := range freshPolicies() {
			i := p.Place(limit, devs)
			if !anyCapable {
				if i != -1 {
					return false
				}
				continue
			}
			if i < 0 || i >= len(devs) {
				return false
			}
			if devs[i].Capacity < limit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestLeastLoadedProperty: the pick has the maximal free pool among
// devices whose capacity covers the limit.
func TestLeastLoadedProperty(t *testing.T) {
	f := func(seed int64, limitMiB uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		devs := genDevices(rng)
		limit := bytesize.Size(int(limitMiB)%4096+1) * bytesize.MiB
		i := (LeastLoaded{}).Place(limit, devs)
		if i == -1 {
			for _, d := range devs {
				if d.Capacity >= limit {
					return false
				}
			}
			return true
		}
		for _, d := range devs {
			if d.Capacity >= limit && d.PoolFree > devs[i].PoolFree {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestFirstFitProperty: when any pool fully covers the limit, the pick
// is the first such device; otherwise it matches the least-loaded
// fallback.
func TestFirstFitProperty(t *testing.T) {
	f := func(seed int64, limitMiB uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		devs := genDevices(rng)
		limit := bytesize.Size(int(limitMiB)%4096+1) * bytesize.MiB
		i := (FirstFit{}).Place(limit, devs)
		for _, d := range devs {
			if d.Capacity >= limit && d.PoolFree >= limit {
				return i == d.Index
			}
		}
		return i == (LeastLoaded{}).Place(limit, devs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestBestFitDeviceProperty: when any pool fully covers the limit, the
// pick is a covering device with the minimal pool; otherwise it matches
// the least-loaded fallback.
func TestBestFitDeviceProperty(t *testing.T) {
	f := func(seed int64, limitMiB uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		devs := genDevices(rng)
		limit := bytesize.Size(int(limitMiB)%4096+1) * bytesize.MiB
		i := (BestFitDevice{}).Place(limit, devs)
		anyCovers := false
		var minCovering bytesize.Size
		for _, d := range devs {
			if d.Capacity >= limit && d.PoolFree >= limit {
				if !anyCovers || d.PoolFree < minCovering {
					minCovering = d.PoolFree
				}
				anyCovers = true
			}
		}
		if anyCovers {
			return devs[i].PoolFree == minCovering && devs[i].PoolFree >= limit
		}
		return i == (LeastLoaded{}).Place(limit, devs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestRoundRobinRotatesProperty: over devices of equal capacity,
// consecutive placements visit every device before repeating any.
func TestRoundRobinRotatesProperty(t *testing.T) {
	f := func(nDevs uint8, limitMiB uint16) bool {
		n := int(nDevs)%7 + 2
		limit := bytesize.Size(int(limitMiB)%1024+1) * bytesize.MiB
		devs := make([]DeviceInfo, n)
		for i := range devs {
			devs[i] = DeviceInfo{Index: i, Capacity: 4 * bytesize.GiB, PoolFree: bytesize.GiB}
		}
		rr := &RoundRobin{}
		seen := make(map[int]bool, n)
		for i := 0; i < n; i++ {
			d := rr.Place(limit, devs)
			if d < 0 || seen[d] {
				return false
			}
			seen[d] = true
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// opStream drives a random register/alloc/confirm/free/exit/close
// stream against a multi-device State and checks every device's
// invariants after every operation — the multi-device mirror of the
// core's TestRegisterGrantProperty, exercised once per placement
// policy.
func opStream(t *testing.T, policy Policy, seed int64) {
	t.Helper()
	s, err := New(Config{
		Devices:           3,
		CapacityPerDevice: 1000 * bytesize.MiB,
		Policy:            policy,
		ContextOverhead:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	ids := []core.ContainerID{"a", "b", "c", "d", "e"}
	type allocation struct {
		id   core.ContainerID
		addr uint64
		size bytesize.Size
	}
	var live []allocation
	registered := make(map[core.ContainerID]bool)
	nextAddr := uint64(0x1000)
	check := func(op string) {
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("policy %s seed %d after %s: %v", policy.Name(), seed, op, err)
		}
	}
	for i := 0; i < 200; i++ {
		id := ids[rng.Intn(len(ids))]
		switch rng.Intn(10) {
		case 0, 1, 2: // register
			if registered[id] {
				break
			}
			limit := bytesize.Size(rng.Intn(700)+50) * bytesize.MiB
			if _, err := s.Register(id, limit); err != nil {
				t.Fatalf("policy %s seed %d register %s: %v", policy.Name(), seed, id, err)
			}
			registered[id] = true
			check("register")
		case 3, 4, 5, 6: // alloc+confirm
			if !registered[id] {
				break
			}
			size := bytesize.Size(rng.Intn(100)+1) * bytesize.MiB
			res, err := s.RequestAlloc(id, 1, size)
			if err != nil {
				t.Fatalf("policy %s seed %d alloc %s: %v", policy.Name(), seed, id, err)
			}
			check("alloc")
			if res.Decision == core.Accept {
				nextAddr += 0x1000
				if err := s.ConfirmAlloc(id, 1, nextAddr, size); err != nil {
					t.Fatalf("policy %s seed %d confirm %s: %v", policy.Name(), seed, id, err)
				}
				live = append(live, allocation{id, nextAddr, size})
				check("confirm")
			}
		case 7, 8: // free a live allocation
			if len(live) == 0 {
				break
			}
			j := rng.Intn(len(live))
			a := live[j]
			if !registered[a.id] {
				live = append(live[:j], live[j+1:]...)
				break
			}
			if _, _, err := s.Free(a.id, 1, a.addr); err != nil {
				t.Fatalf("policy %s seed %d free %s: %v", policy.Name(), seed, a.id, err)
			}
			live = append(live[:j], live[j+1:]...)
			check("free")
		case 9: // close
			if !registered[id] {
				break
			}
			if _, _, err := s.Close(id); err != nil {
				t.Fatalf("policy %s seed %d close %s: %v", policy.Name(), seed, id, err)
			}
			delete(registered, id)
			kept := live[:0]
			for _, a := range live {
				if a.id != id {
					kept = append(kept, a)
				}
			}
			live = kept
			check("close")
		}
	}
	// Drain: closing everything must return every device's pool whole.
	for id := range registered {
		if _, _, err := s.Close(id); err != nil {
			t.Fatal(err)
		}
	}
	for _, d := range s.Devices() {
		if d.PoolFree != d.Capacity {
			t.Fatalf("policy %s seed %d: device %d pool %v != capacity %v after drain",
				policy.Name(), seed, d.Index, d.PoolFree, d.Capacity)
		}
	}
}

// TestPlacementOpStreams: random operation streams keep per-device
// invariants for every placement policy.
func TestPlacementOpStreams(t *testing.T) {
	for _, name := range PolicyNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 20; seed++ {
				pol, err := NewPolicy(name)
				if err != nil {
					t.Fatal(err)
				}
				opStream(t, pol, seed)
			}
		})
	}
}
