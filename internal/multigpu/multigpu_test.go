package multigpu

import (
	"testing"

	"convgpu/internal/bytesize"
	"convgpu/internal/clock"
	"convgpu/internal/core"
	"convgpu/internal/sim"
	"convgpu/internal/workload"
)

func mib(n int) bytesize.Size { return bytesize.Size(n) * bytesize.MiB }

func devs(pools ...int) []DeviceInfo {
	out := make([]DeviceInfo, len(pools))
	for i, p := range pools {
		out[i] = DeviceInfo{Index: i, Capacity: mib(5120), PoolFree: mib(p)}
	}
	return out
}

func TestNewPolicy(t *testing.T) {
	for _, name := range []string{"roundrobin", "rr", "leastloaded", "ll", "firstfit", "ff", "bestfit", "bf"} {
		if _, err := NewPolicy(name); err != nil {
			t.Errorf("NewPolicy(%q): %v", name, err)
		}
	}
	if _, err := NewPolicy("nope"); err == nil {
		t.Error("unknown policy accepted")
	}
	if len(PolicyNames()) != 4 {
		t.Errorf("PolicyNames() = %v", PolicyNames())
	}
}

func TestRoundRobinRotates(t *testing.T) {
	p := &RoundRobin{}
	d := devs(100, 100, 100)
	got := []int{
		p.Place(mib(10), d), p.Place(mib(10), d), p.Place(mib(10), d), p.Place(mib(10), d),
	}
	want := []int{0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round robin order = %v, want %v", got, want)
		}
	}
}

func TestRoundRobinSkipsTooSmallDevices(t *testing.T) {
	p := &RoundRobin{}
	d := devs(0, 0)
	d[0].Capacity = mib(100) // can never hold 200
	if got := p.Place(mib(200), d); got != 1 {
		t.Fatalf("placed on %d, want 1", got)
	}
	// No device large enough.
	d[1].Capacity = mib(100)
	if got := p.Place(mib(200), d); got != -1 {
		t.Fatalf("impossible placement = %d, want -1", got)
	}
}

func TestLeastLoaded(t *testing.T) {
	if got := (LeastLoaded{}).Place(mib(10), devs(100, 500, 300)); got != 1 {
		t.Fatalf("least loaded = %d, want 1", got)
	}
}

func TestFirstFit(t *testing.T) {
	// First device with a pool covering the limit.
	if got := (FirstFit{}).Place(mib(200), devs(100, 300, 900)); got != 1 {
		t.Fatalf("first fit = %d, want 1", got)
	}
	// Nothing fits fully: fall back to least loaded.
	if got := (FirstFit{}).Place(mib(2000), devs(100, 300, 900)); got != 2 {
		t.Fatalf("first fit fallback = %d, want 2", got)
	}
}

func TestBestFitDevice(t *testing.T) {
	// Tightest pool that still covers the limit.
	if got := (BestFitDevice{}).Place(mib(200), devs(900, 250, 400)); got != 1 {
		t.Fatalf("best fit = %d, want 1", got)
	}
	// Fallback to least loaded.
	if got := (BestFitDevice{}).Place(mib(2000), devs(900, 250, 400)); got != 0 {
		t.Fatalf("best fit fallback = %d, want 0", got)
	}
}

func newSched(t *testing.T, n int, pol Policy) *State {
	t.Helper()
	s, err := New(Config{
		Devices:           n,
		CapacityPerDevice: mib(1000),
		Policy:            pol,
		ContextOverhead:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Devices: 0, CapacityPerDevice: mib(100)}); err == nil {
		t.Error("zero devices accepted")
	}
	if _, err := New(Config{Devices: 1, CapacityPerDevice: 0}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := New(Config{Devices: 1, CapacityPerDevice: mib(100), Algorithm: "nope"}); err == nil {
		t.Error("bad algorithm accepted")
	}
	s, err := New(Config{Devices: 2, CapacityPerDevice: mib(100)})
	if err != nil {
		t.Fatal(err)
	}
	if s.PolicyName() != PolicyLeastLoaded {
		t.Errorf("default policy = %q", s.PolicyName())
	}
}

func TestRegisterPlacesAndIsolates(t *testing.T) {
	s := newSched(t, 2, LeastLoaded{})
	g1, err := s.Register("a", mib(800))
	if err != nil || g1 != mib(800) {
		t.Fatalf("register a: granted=%v err=%v", g1, err)
	}
	// Least-loaded sends the second big container to the other device.
	g2, err := s.Register("b", mib(800))
	if err != nil || g2 != mib(800) {
		t.Fatalf("register b: granted=%v err=%v", g2, err)
	}
	d1, err := s.Placement("a")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := s.Placement("b")
	if err != nil {
		t.Fatal(err)
	}
	if d1 == d2 {
		t.Fatalf("both containers on device %d", d1)
	}
	// Two 800s fit across two devices; a third must squeeze.
	g3, err := s.Register("c", mib(800))
	if err != nil {
		t.Fatal(err)
	}
	if g3 != mib(200) {
		t.Fatalf("third grant = %v, want partial 200MiB", g3)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestForwardingPaths(t *testing.T) {
	s := newSched(t, 2, &RoundRobin{})
	if _, err := s.Register("a", mib(500)); err != nil {
		t.Fatal(err)
	}
	res, err := s.RequestAlloc("a", 1, mib(100))
	if err != nil || res.Decision != core.Accept {
		t.Fatalf("alloc: %+v %v", res, err)
	}
	if err := s.ConfirmAlloc("a", 1, 0xA, mib(100)); err != nil {
		t.Fatal(err)
	}
	free, total, err := s.MemInfo("a")
	if err != nil || total != mib(500) {
		t.Fatalf("meminfo: (%v,%v,%v)", free, total, err)
	}
	info, err := s.Info("a")
	if err != nil || info.Used != mib(100)+1 {
		t.Fatalf("info: %+v %v", info, err)
	}
	if size, _, err := s.Free("a", 1, 0xA); err != nil || size != mib(100) {
		t.Fatalf("free: %v %v", size, err)
	}
	if _, _, err := s.ProcessExit("a", 1); err != nil {
		t.Fatal(err)
	}
	if d, err := s.Placement("a"); err != nil || d != 0 {
		t.Fatalf("placement: %d %v", d, err)
	}
	if _, _, err := s.Close("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Placement("a"); err == nil {
		t.Fatal("placement survives close")
	}
	// All forwarders fail for unknown containers.
	if _, err := s.RequestAlloc("ghost", 1, 1); err == nil {
		t.Fatal("alloc for unknown container succeeded")
	}
	if _, _, err := s.Close("ghost"); err == nil {
		t.Fatal("close for unknown container succeeded")
	}
}

func TestDevicesSnapshot(t *testing.T) {
	s := newSched(t, 3, LeastLoaded{})
	s.Register("a", mib(400))
	infos := s.Devices()
	if len(infos) != 3 {
		t.Fatalf("Devices() len = %d", len(infos))
	}
	total := 0
	for _, d := range infos {
		total += d.Containers
	}
	if total != 1 {
		t.Fatalf("container count across devices = %d", total)
	}
}

// TestSimOverMultiGPU replays a contended trace on 1 vs 2 GPUs: doubling
// devices must cut both finish time and suspension.
func TestSimOverMultiGPU(t *testing.T) {
	trace := workload.GenerateTrace(24, workload.DefaultSpacing, 77)
	run := func(devices int) sim.Result {
		clk := clock.NewManual()
		s, err := New(Config{
			Devices:           devices,
			CapacityPerDevice: 5 * bytesize.GiB,
			Algorithm:         core.AlgBestFit,
			Policy:            LeastLoaded{},
			Clock:             clk,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.RunWith(trace, s, clk, sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return res
	}
	one := run(1)
	two := run(2)
	if two.FinishTime >= one.FinishTime {
		t.Fatalf("2 GPUs (%v) not faster than 1 (%v)", two.FinishTime, one.FinishTime)
	}
	if two.AvgSuspended >= one.AvgSuspended {
		t.Fatalf("2 GPUs suspension (%v) not below 1 GPU (%v)", two.AvgSuspended, one.AvgSuspended)
	}
	for _, c := range two.Containers {
		if !c.Completed {
			t.Fatalf("container %s never completed on 2 GPUs", c.ID)
		}
	}
}
