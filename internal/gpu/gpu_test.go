package gpu

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/clock"
)

func testProps() Properties {
	p := K20m()
	return p
}

func TestK20mProperties(t *testing.T) {
	p := K20m()
	if p.TotalGlobalMem != 5*bytesize.GiB {
		t.Errorf("TotalGlobalMem = %v, want 5GiB", p.TotalGlobalMem)
	}
	if p.ConcurrentKernels != 32 {
		t.Errorf("ConcurrentKernels = %d, want 32 (Hyper-Q)", p.ConcurrentKernels)
	}
	if p.ContextOverhead != 66*bytesize.MiB {
		t.Errorf("ContextOverhead = %v, want 66MiB", p.ContextOverhead)
	}
	if p.ManagedGranularity != 128*bytesize.MiB {
		t.Errorf("ManagedGranularity = %v, want 128MiB", p.ManagedGranularity)
	}
}

func TestAllocFreeRoundTrip(t *testing.T) {
	d := New(testProps())
	addr, err := d.Alloc(100, 4096)
	if err != nil {
		t.Fatal(err)
	}
	size, pid, ok := d.Lookup(addr)
	if !ok || size != 4096 || pid != 100 {
		t.Fatalf("Lookup = (%v,%v,%v)", size, pid, ok)
	}
	freed, err := d.Free(100, addr)
	if err != nil {
		t.Fatal(err)
	}
	if freed != 4096 {
		t.Fatalf("Free returned %v, want 4096", freed)
	}
	if _, _, ok := d.Lookup(addr); ok {
		t.Fatal("allocation survived Free")
	}
}

func TestAllocCreatesContext(t *testing.T) {
	d := New(testProps())
	if d.HasContext(7) {
		t.Fatal("context exists before first alloc")
	}
	if _, err := d.Alloc(7, 1024); err != nil {
		t.Fatal(err)
	}
	if !d.HasContext(7) {
		t.Fatal("first alloc did not create context")
	}
	// Used = allocation + 66 MiB context overhead.
	want := bytesize.Size(1024) + 66*bytesize.MiB
	if got := d.Used(); got != want {
		t.Fatalf("Used = %v, want %v", got, want)
	}
	created, err := d.EnsureContext(7)
	if err != nil || created {
		t.Fatalf("EnsureContext on existing = (%v,%v), want (false,nil)", created, err)
	}
}

func TestAllocInvalid(t *testing.T) {
	d := New(testProps())
	if _, err := d.Alloc(1, 0); !errors.Is(err, ErrInvalidValue) {
		t.Errorf("Alloc(0) err = %v, want ErrInvalidValue", err)
	}
	if _, err := d.Alloc(1, -5); !errors.Is(err, ErrInvalidValue) {
		t.Errorf("Alloc(-5) err = %v, want ErrInvalidValue", err)
	}
	if _, err := d.AllocManaged(1, 0); !errors.Is(err, ErrInvalidValue) {
		t.Errorf("AllocManaged(0) err = %v, want ErrInvalidValue", err)
	}
	if _, _, err := d.AllocPitch(1, 0, 10); !errors.Is(err, ErrInvalidValue) {
		t.Errorf("AllocPitch(0,10) err = %v, want ErrInvalidValue", err)
	}
}

func TestOutOfMemory(t *testing.T) {
	d := New(testProps())
	// Capacity 5 GiB, minus 66 MiB context: a 5 GiB alloc must fail,
	// and one of capacity-66MiB must succeed.
	if _, err := d.Alloc(1, 5*bytesize.GiB); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("oversized alloc err = %v, want ErrOutOfMemory", err)
	}
	fits := 5*bytesize.GiB - 66*bytesize.MiB
	addr, err := d.Alloc(1, fits)
	if err != nil {
		t.Fatalf("exact-fit alloc failed: %v", err)
	}
	if _, err := d.Alloc(1, 1); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("alloc on full device err = %v, want ErrOutOfMemory", err)
	}
	if _, err := d.Free(1, addr); err != nil {
		t.Fatal(err)
	}
}

func TestContextOverheadOOM(t *testing.T) {
	d := New(testProps())
	fits := 5*bytesize.GiB - 66*bytesize.MiB
	if _, err := d.Alloc(1, fits); err != nil {
		t.Fatal(err)
	}
	// No room for a second process's 66 MiB context.
	if _, err := d.Alloc(2, 1); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("second context on full device err = %v, want ErrOutOfMemory", err)
	}
	if d.HasContext(2) {
		t.Fatal("failed context creation left state behind")
	}
}

func TestFreeWrongPIDOrAddr(t *testing.T) {
	d := New(testProps())
	addr, err := d.Alloc(1, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Free(2, addr); !errors.Is(err, ErrInvalidDevicePointer) {
		t.Errorf("Free with wrong pid err = %v, want ErrInvalidDevicePointer", err)
	}
	if _, err := d.Free(1, addr+1); !errors.Is(err, ErrInvalidDevicePointer) {
		t.Errorf("Free of bogus addr err = %v, want ErrInvalidDevicePointer", err)
	}
	if _, err := d.Free(1, addr); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Free(1, addr); !errors.Is(err, ErrInvalidDevicePointer) {
		t.Errorf("double Free err = %v, want ErrInvalidDevicePointer", err)
	}
}

func TestPitchArithmetic(t *testing.T) {
	d := New(testProps())
	// Width 100 rounds up to the 512-byte pitch alignment.
	addr, pitch, err := d.AllocPitch(1, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if pitch != 512 {
		t.Fatalf("pitch = %v, want 512", pitch)
	}
	size, _, _ := d.Lookup(addr)
	if size != 512*10 {
		t.Fatalf("pitched consumption = %v, want %v", size, 512*10)
	}
	// Aligned width keeps its pitch.
	_, pitch2, err := d.AllocPitch(1, 1024, 4)
	if err != nil {
		t.Fatal(err)
	}
	if pitch2 != 1024 {
		t.Fatalf("aligned pitch = %v, want 1024", pitch2)
	}
}

func TestManagedGranularity(t *testing.T) {
	d := New(testProps())
	addr, err := d.AllocManaged(1, 1) // 1 byte consumes 128 MiB
	if err != nil {
		t.Fatal(err)
	}
	size, _, _ := d.Lookup(addr)
	if size != 128*bytesize.MiB {
		t.Fatalf("managed consumption = %v, want 128MiB", size)
	}
	addr2, err := d.AllocManaged(1, 129*bytesize.MiB)
	if err != nil {
		t.Fatal(err)
	}
	size2, _, _ := d.Lookup(addr2)
	if size2 != 256*bytesize.MiB {
		t.Fatalf("managed consumption = %v, want 256MiB", size2)
	}
}

func TestDestroyContextRecoversLeaks(t *testing.T) {
	d := New(testProps())
	var total bytesize.Size
	for i := 0; i < 5; i++ {
		if _, err := d.Alloc(9, 10*bytesize.MiB); err != nil {
			t.Fatal(err)
		}
		total += 10 * bytesize.MiB
	}
	// Another process's allocation must survive.
	keep, err := d.Alloc(8, bytesize.MiB)
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := d.DestroyContext(9)
	if err != nil {
		t.Fatal(err)
	}
	if want := total + 66*bytesize.MiB; recovered != want {
		t.Fatalf("DestroyContext recovered %v, want %v", recovered, want)
	}
	if d.HasContext(9) {
		t.Fatal("context survived DestroyContext")
	}
	if _, _, ok := d.Lookup(keep); !ok {
		t.Fatal("DestroyContext(9) destroyed pid 8's allocation")
	}
	if _, err := d.DestroyContext(9); !errors.Is(err, ErrNoContext) {
		t.Fatalf("double DestroyContext err = %v, want ErrNoContext", err)
	}
}

func TestMemInfo(t *testing.T) {
	d := New(testProps())
	free, total := d.MemInfo()
	if total != 5*bytesize.GiB || free != total {
		t.Fatalf("fresh MemInfo = (%v,%v)", free, total)
	}
	if _, err := d.Alloc(1, bytesize.GiB); err != nil {
		t.Fatal(err)
	}
	free, _ = d.MemInfo()
	if want := 5*bytesize.GiB - bytesize.GiB - 66*bytesize.MiB; free != want {
		t.Fatalf("MemInfo free = %v, want %v", free, want)
	}
}

func TestCoalescing(t *testing.T) {
	d := New(testProps())
	var addrs []uint64
	for i := 0; i < 10; i++ {
		a, err := d.Alloc(1, bytesize.MiB)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	// Free in a scrambled order; the free list must fully coalesce.
	order := []int{3, 7, 1, 9, 5, 0, 8, 2, 6, 4}
	for _, i := range order {
		if _, err := d.Free(1, addrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if n := d.FreeRegions(); n != 1 {
		t.Fatalf("free list has %d regions after freeing everything, want 1", n)
	}
	if d.AllocCount() != 0 {
		t.Fatalf("AllocCount = %d, want 0", d.AllocCount())
	}
}

func TestFragmentationOOM(t *testing.T) {
	// Carve the device into alternating 512 MiB allocations, free every
	// other one, then ask for a contiguous region larger than any hole.
	d := New(testProps())
	var addrs []uint64
	chunk := 512 * bytesize.MiB
	for {
		a, err := d.Alloc(1, chunk)
		if err != nil {
			break
		}
		addrs = append(addrs, a)
	}
	if len(addrs) < 4 {
		t.Fatalf("only %d chunks allocated", len(addrs))
	}
	// Keep the final chunk allocated so the trailing free region stays
	// separated from the holes (context overhead is accounted but not
	// address-mapped, so the address space tail is a real free region).
	for i := 0; i+1 < len(addrs); i += 2 {
		if _, err := d.Free(1, addrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Total free exceeds 1 GiB but no hole is bigger than 512 MiB.
	if _, err := d.Alloc(1, bytesize.GiB); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("fragmented alloc err = %v, want ErrOutOfMemory", err)
	}
	// A chunk-sized allocation still fits in a hole.
	if _, err := d.Alloc(1, chunk); err != nil {
		t.Fatalf("hole-sized alloc failed: %v", err)
	}
}

func TestCopyDuration(t *testing.T) {
	d := New(testProps())
	if got := d.CopyDuration(0); got != 0 {
		t.Errorf("CopyDuration(0) = %v", got)
	}
	// 6 GiB/s -> 1 GiB takes ~1/6 s.
	got := d.CopyDuration(bytesize.GiB)
	want := time.Second / 6
	if got < want-time.Millisecond || got > want+time.Millisecond {
		t.Errorf("CopyDuration(1GiB) = %v, want ~%v", got, want)
	}
}

func TestMemcpyValidation(t *testing.T) {
	d := New(testProps())
	addr, err := d.Alloc(1, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Memcpy(1, addr, 4096); err != nil {
		t.Errorf("valid Memcpy: %v", err)
	}
	if err := d.Memcpy(1, addr, 8192); !errors.Is(err, ErrInvalidValue) {
		t.Errorf("oversized Memcpy err = %v, want ErrInvalidValue", err)
	}
	if err := d.Memcpy(2, addr, 1); !errors.Is(err, ErrInvalidDevicePointer) {
		t.Errorf("cross-pid Memcpy err = %v, want ErrInvalidDevicePointer", err)
	}
	if err := d.Memcpy(1, addr+4, 1); !errors.Is(err, ErrInvalidDevicePointer) {
		t.Errorf("bogus addr Memcpy err = %v, want ErrInvalidDevicePointer", err)
	}
}

func TestLaunchSynchronizeVirtualTime(t *testing.T) {
	clk := clock.NewManual()
	d := New(testProps(), WithLatency(Latency{}, clk))
	if err := d.Launch(1, 0, 3*time.Second); err != nil {
		t.Fatal(err)
	}
	if d.BusyStreams() != 1 {
		t.Fatalf("BusyStreams = %d, want 1", d.BusyStreams())
	}
	done := make(chan struct{})
	go func() {
		d.Synchronize(1)
		close(done)
	}()
	for clk.Pending() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	select {
	case <-done:
		t.Fatal("Synchronize returned before the kernel finished")
	default:
	}
	clk.Advance(3 * time.Second)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Synchronize did not return after the kernel drained")
	}
	if d.BusyStreams() != 0 {
		t.Fatalf("BusyStreams after drain = %d, want 0", d.BusyStreams())
	}
}

func TestStreamSerialization(t *testing.T) {
	clk := clock.NewManual()
	e := newStreamEngine(clk, 32)
	e.launch(1, 0, 2*time.Second)
	e.launch(1, 0, 2*time.Second) // queues behind the first
	until := e.busyUntil[streamKey{1, 0}]
	if want := clock.Epoch.Add(4 * time.Second); !until.Equal(want) {
		t.Fatalf("same-stream work drains at %v, want %v", until, want)
	}
	// A different stream overlaps.
	e.launch(1, 1, 2*time.Second)
	until = e.busyUntil[streamKey{1, 1}]
	if want := clock.Epoch.Add(2 * time.Second); !until.Equal(want) {
		t.Fatalf("parallel stream drains at %v, want %v", until, want)
	}
}

func TestHyperQLimit(t *testing.T) {
	clk := clock.NewManual()
	e := newStreamEngine(clk, 2)
	e.launch(1, 0, 10*time.Second)
	e.launch(2, 0, 4*time.Second)
	// Third concurrent stream: must queue behind the earliest (4s).
	e.launch(3, 0, 1*time.Second)
	until := e.busyUntil[streamKey{3, 0}]
	if want := clock.Epoch.Add(5 * time.Second); !until.Equal(want) {
		t.Fatalf("over-limit stream drains at %v, want %v", until, want)
	}
}

func TestLaunchCreatesContext(t *testing.T) {
	d := New(testProps())
	if err := d.Launch(42, 0, 0); err != nil {
		t.Fatal(err)
	}
	if !d.HasContext(42) {
		t.Fatal("Launch did not create a context")
	}
}

func TestLatencyConsumesVirtualTime(t *testing.T) {
	clk := clock.NewManual()
	lat := Latency{Malloc: 35 * time.Microsecond}
	d := New(testProps(), WithLatency(lat, clk))
	done := make(chan struct{})
	go func() {
		if _, err := d.Alloc(1, 4096); err != nil {
			t.Error(err)
		}
		close(done)
	}()
	for clk.Pending() == 0 {
		time.Sleep(50 * time.Microsecond)
	}
	clk.Advance(35 * time.Microsecond)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Alloc did not complete after advancing the latency")
	}
}

// Property-style test: a random alloc/free workload never produces
// overlapping allocations, never loses memory, and fully coalesces once
// everything is freed.
func TestAllocatorRandomWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(20170510))
	for trial := 0; trial < 20; trial++ {
		d := New(testProps())
		live := map[uint64]bytesize.Size{}
		for op := 0; op < 400; op++ {
			if len(live) == 0 || rng.Intn(2) == 0 {
				size := bytesize.Size(rng.Intn(int(32*bytesize.MiB))) + 1
				addr, err := d.Alloc(1, size)
				if errors.Is(err, ErrOutOfMemory) {
					continue
				}
				if err != nil {
					t.Fatal(err)
				}
				live[addr] = size
			} else {
				var addr uint64
				for a := range live {
					addr = a
					break
				}
				freed, err := d.Free(1, addr)
				if err != nil {
					t.Fatal(err)
				}
				if freed != live[addr] {
					t.Fatalf("Free(%#x) returned %v, want %v", addr, freed, live[addr])
				}
				delete(live, addr)
			}
			assertNoOverlap(t, live)
			var sum bytesize.Size
			for _, s := range live {
				sum += s
			}
			if got := d.Used(); got != sum+66*bytesize.MiB {
				t.Fatalf("Used = %v, want %v (allocs %v + context)", got, sum+66*bytesize.MiB, sum)
			}
		}
		for addr := range live {
			if _, err := d.Free(1, addr); err != nil {
				t.Fatal(err)
			}
		}
		if n := d.FreeRegions(); n != 1 {
			t.Fatalf("trial %d: %d free regions after draining, want 1", trial, n)
		}
	}
}

func assertNoOverlap(t *testing.T, live map[uint64]bytesize.Size) {
	t.Helper()
	type span struct {
		lo, hi uint64
	}
	spans := make([]span, 0, len(live))
	for a, s := range live {
		spans = append(spans, span{a, a + uint64(s)})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
	for i := 1; i < len(spans); i++ {
		if spans[i].lo < spans[i-1].hi {
			t.Fatalf("allocations overlap: [%#x,%#x) and [%#x,%#x)",
				spans[i-1].lo, spans[i-1].hi, spans[i].lo, spans[i].hi)
		}
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	d := New(testProps())
	const workers = 8
	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func(pid int) {
			defer func() { done <- struct{}{} }()
			rng := rand.New(rand.NewSource(int64(pid)))
			var addrs []uint64
			for i := 0; i < 200; i++ {
				if len(addrs) == 0 || rng.Intn(2) == 0 {
					a, err := d.Alloc(pid, bytesize.Size(rng.Intn(1<<20))+1)
					if err == nil {
						addrs = append(addrs, a)
					}
				} else {
					i := rng.Intn(len(addrs))
					d.Free(pid, addrs[i])
					addrs = append(addrs[:i], addrs[i+1:]...)
				}
			}
			for _, a := range addrs {
				d.Free(pid, a)
			}
			d.DestroyContext(pid)
		}(w + 1)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	if got := d.Used(); got != 0 {
		t.Fatalf("Used = %v after all workers drained, want 0", got)
	}
	if n := d.FreeRegions(); n != 1 {
		t.Fatalf("%d free regions after drain, want 1", n)
	}
}
