package gpu

import (
	"errors"
	"testing"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/clock"
)

func virtualDev(t *testing.T) (*Device, *clock.Manual) {
	t.Helper()
	clk := clock.NewManual()
	return New(K20m(), WithLatency(Latency{}, clk)), clk
}

func TestStreamDrainTime(t *testing.T) {
	d, _ := virtualDev(t)
	if got := d.StreamDrainTime(1, 0); !got.IsZero() {
		t.Fatalf("idle stream drain time = %v, want zero", got)
	}
	if err := d.Launch(1, 0, 4*time.Second); err != nil {
		t.Fatal(err)
	}
	if got, want := d.StreamDrainTime(1, 0), clock.Epoch.Add(4*time.Second); !got.Equal(want) {
		t.Fatalf("drain time = %v, want %v", got, want)
	}
	// Another pid's stream is unaffected.
	if got := d.StreamDrainTime(2, 0); !got.IsZero() {
		t.Fatalf("other pid's drain time = %v, want zero", got)
	}
}

func TestSynchronizeStreamWaitsOnlyThatStream(t *testing.T) {
	d, clk := virtualDev(t)
	d.Launch(1, 0, 2*time.Second)
	d.Launch(1, 1, 9*time.Second)
	done := make(chan struct{})
	go func() {
		d.SynchronizeStream(1, 0)
		close(done)
	}()
	for clk.Pending() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	clk.Advance(2 * time.Second)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("SynchronizeStream blocked on the other stream")
	}
	if d.BusyStreams() != 1 {
		t.Fatalf("BusyStreams = %d, want the 9s stream still busy", d.BusyStreams())
	}
}

func TestSynchronizeStreamIdleReturnsImmediately(t *testing.T) {
	d, _ := virtualDev(t)
	done := make(chan struct{})
	go func() {
		d.SynchronizeStream(1, 0)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("SynchronizeStream on idle stream blocked")
	}
}

func TestEnqueueCopy(t *testing.T) {
	d, _ := virtualDev(t)
	addr, err := d.Alloc(1, bytesize.GiB)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.EnqueueCopy(1, addr, bytesize.GiB, 3); err != nil {
		t.Fatal(err)
	}
	// The stream is busy for the PCIe transfer duration (~1/6 s).
	drain := d.StreamDrainTime(1, 3)
	busy := drain.Sub(clock.Epoch)
	want := time.Second / 6
	if busy < want-time.Millisecond || busy > want+time.Millisecond {
		t.Fatalf("copy queued %v, want ~%v", busy, want)
	}
	// Validation errors.
	if err := d.EnqueueCopy(1, addr+1, 1, 0); !errors.Is(err, ErrInvalidDevicePointer) {
		t.Fatalf("bogus addr: %v", err)
	}
	if err := d.EnqueueCopy(2, addr, 1, 0); !errors.Is(err, ErrInvalidDevicePointer) {
		t.Fatalf("cross pid: %v", err)
	}
	if err := d.EnqueueCopy(1, addr, 2*bytesize.GiB, 0); !errors.Is(err, ErrInvalidValue) {
		t.Fatalf("oversized: %v", err)
	}
}

func TestEnqueueCopyDoesNotBlockCaller(t *testing.T) {
	// Unlike Memcpy, EnqueueCopy returns immediately even for a huge
	// transfer — the stream consumes the time, not the caller.
	d, _ := virtualDev(t)
	addr, err := d.Alloc(1, 4*bytesize.GiB)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		d.EnqueueCopy(1, addr, 4*bytesize.GiB, 0)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("EnqueueCopy blocked the caller")
	}
}
