package gpu

import (
	"sync"
	"time"

	"convgpu/internal/clock"
)

// streamKey identifies a CUDA stream within a process.
type streamKey struct {
	pid    int
	stream int
}

// streamEngine models Hyper-Q: up to `limit` streams make progress
// concurrently; work within a stream serializes. The engine tracks, per
// stream, the time at which its queued work drains. When the concurrency
// limit is hit, newly launched work cannot start before the earliest busy
// stream drains — a deliberately simple model of Hyper-Q's 32 hardware
// work queues that preserves the property the paper relies on: up to 32
// containers' kernels genuinely overlap on a K20m.
type streamEngine struct {
	clk   clock.Clock
	limit int

	mu        sync.Mutex
	busyUntil map[streamKey]time.Time
}

func newStreamEngine(clk clock.Clock, limit int) *streamEngine {
	if limit <= 0 {
		limit = 1
	}
	return &streamEngine{clk: clk, limit: limit, busyUntil: make(map[streamKey]time.Time)}
}

func (e *streamEngine) launch(pid, stream int, duration time.Duration) {
	if duration < 0 {
		duration = 0
	}
	now := e.clk.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pruneLocked(now)
	key := streamKey{pid, stream}
	start := now
	if until, ok := e.busyUntil[key]; ok && until.After(start) {
		start = until
	}
	// Hyper-Q limit: when `limit` other streams are busy, the new work
	// queues behind the earliest one to drain.
	if _, mine := e.busyUntil[key]; !mine && len(e.busyUntil) >= e.limit {
		earliest := time.Time{}
		for _, until := range e.busyUntil {
			if earliest.IsZero() || until.Before(earliest) {
				earliest = until
			}
		}
		if earliest.After(start) {
			start = earliest
		}
	}
	e.busyUntil[key] = start.Add(duration)
}

func (e *streamEngine) pruneLocked(now time.Time) {
	for k, until := range e.busyUntil {
		if !until.After(now) {
			delete(e.busyUntil, k)
		}
	}
}

// synchronize blocks until every stream belonging to pid has drained.
func (e *streamEngine) synchronize(pid int) {
	for {
		now := e.clk.Now()
		e.mu.Lock()
		e.pruneLocked(now)
		var wait time.Duration
		for k, until := range e.busyUntil {
			if k.pid == pid {
				if d := until.Sub(now); d > wait {
					wait = d
				}
			}
		}
		e.mu.Unlock()
		if wait <= 0 {
			return
		}
		e.clk.Sleep(wait)
	}
}

// drainTime reports when a stream's queued work completes; the zero
// time means the stream is idle.
func (e *streamEngine) drainTime(pid, stream int) time.Time {
	now := e.clk.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pruneLocked(now)
	return e.busyUntil[streamKey{pid, stream}]
}

// synchronizeStream blocks until one stream of pid drains.
func (e *streamEngine) synchronizeStream(pid, stream int) {
	for {
		now := e.clk.Now()
		e.mu.Lock()
		e.pruneLocked(now)
		until, busy := e.busyUntil[streamKey{pid, stream}]
		e.mu.Unlock()
		if !busy {
			return
		}
		if wait := until.Sub(now); wait > 0 {
			e.clk.Sleep(wait)
		}
	}
}

// busy reports the number of streams with undrained work.
func (e *streamEngine) busy() int {
	now := e.clk.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pruneLocked(now)
	return len(e.busyUntil)
}
