// Package gpu simulates the NVIDIA GPU that the paper's testbed provided
// in hardware (a Tesla K20m with 5 GB of device memory, driver 375.51,
// CUDA 8.0.44, Hyper-Q with up to 32 concurrent kernels).
//
// ConVGPU never inspects GPU internals: the middleware only observes
// allocation sizes and device addresses, timing, and process lifecycle.
// The simulation therefore concentrates on exactly those observables:
//
//   - a real address-space allocator (first-fit with free-region
//     coalescing) so addresses behave like cudaMalloc addresses —
//     distinct, stable, freeable, and exhaustible;
//   - the memory arithmetic the wrapper module must compensate for:
//     pitched allocation alignment, the 128 MiB cudaMallocManaged
//     granularity, and the ~66 MiB per-process context overhead
//     (64 MiB process data + 2 MiB CUDA context, paper §III-D);
//   - a latency model calibrated to the paper's Figure 4 baseline
//     (cudaMalloc ≈ 35 µs; cudaMallocManaged ≈ 40× slower because it
//     maps host memory; cudaFree cheap), used by the microbenchmarks;
//   - a Hyper-Q stream engine bounding concurrent kernels at 32.
package gpu

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/clock"
)

// Errors mirroring the CUDA failures the middleware must survive.
var (
	// ErrOutOfMemory corresponds to cudaErrorMemoryAllocation: the device
	// cannot satisfy the request. Without ConVGPU this is exactly the
	// failure containers hit when they collide on the GPU.
	ErrOutOfMemory = errors.New("gpu: out of memory")
	// ErrInvalidValue corresponds to cudaErrorInvalidValue.
	ErrInvalidValue = errors.New("gpu: invalid value")
	// ErrInvalidDevicePointer corresponds to cudaErrorInvalidDevicePointer.
	ErrInvalidDevicePointer = errors.New("gpu: invalid device pointer")
	// ErrNoContext is returned when an operation arrives for a process
	// that never created a context (no prior allocation).
	ErrNoContext = errors.New("gpu: no context for process")
)

// Properties describes the device, mirroring cudaDeviceProp fields the
// wrapper module consults (paper: the wrapper retrieves the pitch size of
// the current GPU via cudaGetDeviceProperties on its first
// cudaMallocPitch call).
type Properties struct {
	Name string
	// TotalGlobalMem is the device memory capacity.
	TotalGlobalMem bytesize.Size
	// TexturePitchAlignment is the byte alignment of pitched rows.
	TexturePitchAlignment bytesize.Size
	// ManagedGranularity is the unit cudaMallocManaged consumes device
	// memory in (the paper observed 128 MiB multiples).
	ManagedGranularity bytesize.Size
	// ConcurrentKernels is the Hyper-Q limit (32 on Kepler GK110).
	ConcurrentKernels int
	// MultiProcessorCount is the SM count (13 on K20m).
	MultiProcessorCount int
	// MemoryBandwidth is device memory bandwidth, bytes/second.
	MemoryBandwidth int64
	// PCIeBandwidth is effective host<->device copy bandwidth, bytes/s.
	PCIeBandwidth int64
	// ContextOverhead is the device memory consumed when a process first
	// touches the GPU (64 MiB process data + 2 MiB context).
	ContextOverhead bytesize.Size
}

// K20m returns the properties of the paper's test GPU.
func K20m() Properties {
	return Properties{
		Name:                  "Tesla K20m",
		TotalGlobalMem:        5 * bytesize.GiB,
		TexturePitchAlignment: 512,
		ManagedGranularity:    128 * bytesize.MiB,
		ConcurrentKernels:     32,
		MultiProcessorCount:   13,
		MemoryBandwidth:       208 << 30, // 208 GB/s GDDR5
		PCIeBandwidth:         6 << 30,   // PCIe gen2 x16 effective
		ContextOverhead:       66 * bytesize.MiB,
	}
}

// Latency models per-operation device/driver response time, calibrated to
// the paper's "without ConVGPU" measurements (Fig. 4). Zero durations
// disable simulated latency, which is what the discrete-event experiments
// use — they account time analytically instead.
type Latency struct {
	Malloc        time.Duration
	MallocManaged time.Duration // ~40x Malloc: maps host+device memory
	MallocPitch   time.Duration
	Free          time.Duration
	MemGetInfo    time.Duration
	GetProperties time.Duration
	LaunchKernel  time.Duration // driver-side launch cost
}

// PaperLatency returns the Figure 4 calibration.
func PaperLatency() Latency {
	return Latency{
		Malloc:        35 * time.Microsecond,
		MallocManaged: 1400 * time.Microsecond,
		MallocPitch:   35 * time.Microsecond,
		Free:          25 * time.Microsecond,
		MemGetInfo:    45 * time.Microsecond,
		GetProperties: 250 * time.Microsecond,
		LaunchKernel:  8 * time.Microsecond,
	}
}

// region is a half-open address range [addr, addr+size).
type region struct {
	addr uint64
	size uint64
}

// allocation records a live device allocation.
type allocation struct {
	addr  uint64
	size  bytesize.Size
	pid   int
	kind  AllocKind
	pitch bytesize.Size // for pitched allocations
}

// AllocKind distinguishes allocation flavors for introspection and tests.
type AllocKind int

// Allocation kinds.
const (
	KindLinear AllocKind = iota
	KindPitched
	KindManaged
)

func (k AllocKind) String() string {
	switch k {
	case KindLinear:
		return "linear"
	case KindPitched:
		return "pitched"
	case KindManaged:
		return "managed"
	default:
		return fmt.Sprintf("AllocKind(%d)", int(k))
	}
}

// baseAddr is where the simulated device heap starts; real CUDA device
// pointers on this hardware generation look similar.
const baseAddr uint64 = 0x0002_0000_0000

// Device is a simulated GPU. All methods are safe for concurrent use —
// multiple containers hammer the device at once in the experiments.
type Device struct {
	props   Properties
	lat     Latency
	clk     clock.Clock
	mu      sync.Mutex
	free    []region // sorted by addr, coalesced
	allocs  map[uint64]*allocation
	ctx     map[int]bytesize.Size // pid -> context reservation
	used    bytesize.Size         // sum of allocations + context reservations
	streams *streamEngine
}

// Option configures a Device.
type Option func(*Device)

// WithLatency makes device operations consume simulated time on clk.
// A nil clk keeps the device's current clock (the wall clock by
// default).
func WithLatency(l Latency, clk clock.Clock) Option {
	return func(d *Device) {
		d.lat = l
		if clk != nil {
			d.clk = clk
		}
	}
}

// New creates a device with the given properties. Without WithLatency,
// operations complete immediately (the discrete-event harness accounts
// time itself).
func New(props Properties, opts ...Option) *Device {
	d := &Device{
		props:  props,
		clk:    clock.Real{},
		free:   []region{{addr: baseAddr, size: uint64(props.TotalGlobalMem)}},
		allocs: make(map[uint64]*allocation),
		ctx:    make(map[int]bytesize.Size),
	}
	for _, o := range opts {
		o(d)
	}
	d.streams = newStreamEngine(d.clk, props.ConcurrentKernels)
	return d
}

// Clock returns the device's time source.
func (d *Device) Clock() clock.Clock { return d.clk }

// Properties returns the device description.
func (d *Device) Properties() Properties {
	d.sleep(d.lat.GetProperties)
	return d.props
}

func (d *Device) sleep(dur time.Duration) {
	if dur > 0 {
		d.clk.Sleep(dur)
	}
}

// EnsureContext reserves the per-process context overhead if pid has no
// context yet. CUDA does this implicitly on the first API call that
// touches the device. Reports whether a new context was created.
func (d *Device) EnsureContext(pid int) (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ensureContextLocked(pid)
}

func (d *Device) ensureContextLocked(pid int) (bool, error) {
	if _, ok := d.ctx[pid]; ok {
		return false, nil
	}
	oh := d.props.ContextOverhead
	if d.remainingLocked() < oh {
		return false, ErrOutOfMemory
	}
	d.ctx[pid] = oh
	d.used += oh
	return true, nil
}

func (d *Device) remainingLocked() bytesize.Size {
	return d.props.TotalGlobalMem - d.used
}

// Alloc performs a linear device allocation (cudaMalloc) on behalf of pid,
// creating the process context first if needed.
func (d *Device) Alloc(pid int, size bytesize.Size) (uint64, error) {
	d.sleep(d.lat.Malloc)
	return d.alloc(pid, size, size, KindLinear, 0)
}

// AllocPitch performs a pitched allocation (cudaMallocPitch): each of
// height rows is padded to the device pitch alignment. It returns the
// address and the pitch in bytes; the consumed size is pitch*height,
// which is why the wrapper must adjust the accounted size.
func (d *Device) AllocPitch(pid int, width, height bytesize.Size) (addr uint64, pitch bytesize.Size, err error) {
	d.sleep(d.lat.MallocPitch)
	if width <= 0 || height <= 0 {
		return 0, 0, ErrInvalidValue
	}
	pitch = width.RoundUp(d.props.TexturePitchAlignment)
	addr, err = d.alloc(pid, width*height, pitch*height, KindPitched, pitch)
	return addr, pitch, err
}

// AllocManaged performs a managed allocation (cudaMallocManaged): device
// consumption is rounded up to the managed granularity (128 MiB on the
// paper's stack), which the wrapper must account for.
func (d *Device) AllocManaged(pid int, size bytesize.Size) (uint64, error) {
	d.sleep(d.lat.MallocManaged)
	if size <= 0 {
		return 0, ErrInvalidValue
	}
	return d.alloc(pid, size, size.RoundUp(d.props.ManagedGranularity), KindManaged, 0)
}

func (d *Device) alloc(pid int, requested, consumed bytesize.Size, kind AllocKind, pitch bytesize.Size) (uint64, error) {
	if requested <= 0 || consumed <= 0 {
		return 0, ErrInvalidValue
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, err := d.ensureContextLocked(pid); err != nil {
		return 0, err
	}
	if d.remainingLocked() < consumed {
		return 0, ErrOutOfMemory
	}
	// First-fit over the sorted free list.
	want := uint64(consumed)
	for i := range d.free {
		if d.free[i].size >= want {
			addr := d.free[i].addr
			d.free[i].addr += want
			d.free[i].size -= want
			if d.free[i].size == 0 {
				d.free = append(d.free[:i], d.free[i+1:]...)
			}
			d.allocs[addr] = &allocation{addr: addr, size: consumed, pid: pid, kind: kind, pitch: pitch}
			d.used += consumed
			return addr, nil
		}
	}
	// Enough total memory but fragmented. Real GPUs fail here too.
	return 0, ErrOutOfMemory
}

// Free releases the allocation at addr (cudaFree) and returns its consumed
// size so the caller can report it to the scheduler.
func (d *Device) Free(pid int, addr uint64) (bytesize.Size, error) {
	d.sleep(d.lat.Free)
	d.mu.Lock()
	defer d.mu.Unlock()
	a, ok := d.allocs[addr]
	if !ok {
		return 0, ErrInvalidDevicePointer
	}
	if a.pid != pid {
		// CUDA contexts are per-process: another process's pointer is
		// invalid in this context.
		return 0, ErrInvalidDevicePointer
	}
	d.releaseLocked(a)
	return a.size, nil
}

func (d *Device) releaseLocked(a *allocation) {
	delete(d.allocs, a.addr)
	d.used -= a.size
	d.insertFreeLocked(region{addr: a.addr, size: uint64(a.size)})
}

func (d *Device) insertFreeLocked(r region) {
	i := sort.Search(len(d.free), func(i int) bool { return d.free[i].addr > r.addr })
	d.free = append(d.free, region{})
	copy(d.free[i+1:], d.free[i:])
	d.free[i] = r
	// Coalesce with the right neighbor, then the left.
	if i+1 < len(d.free) && d.free[i].addr+d.free[i].size == d.free[i+1].addr {
		d.free[i].size += d.free[i+1].size
		d.free = append(d.free[:i+1], d.free[i+2:]...)
	}
	if i > 0 && d.free[i-1].addr+d.free[i-1].size == d.free[i].addr {
		d.free[i-1].size += d.free[i].size
		d.free = append(d.free[:i], d.free[i+1:]...)
	}
}

// DestroyContext tears down pid's context (what __cudaUnregisterFatBinary
// triggers at process exit), releasing every allocation the process
// leaked plus the context reservation. It returns the total memory
// recovered.
func (d *Device) DestroyContext(pid int) (bytesize.Size, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	oh, ok := d.ctx[pid]
	if !ok {
		return 0, ErrNoContext
	}
	var recovered bytesize.Size
	for _, a := range d.allocs {
		if a.pid == pid {
			d.releaseLocked(a)
			recovered += a.size
		}
	}
	delete(d.ctx, pid)
	d.used -= oh
	recovered += oh
	return recovered, nil
}

// MemInfo reports free and total device memory (cudaMemGetInfo): the raw
// device view, not the per-container virtualized view ConVGPU presents.
func (d *Device) MemInfo() (free, total bytesize.Size) {
	d.sleep(d.lat.MemGetInfo)
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.remainingLocked(), d.props.TotalGlobalMem
}

// Used reports currently consumed memory including context reservations.
func (d *Device) Used() bytesize.Size {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.used
}

// AllocCount reports the number of live allocations (diagnostics/tests).
func (d *Device) AllocCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.allocs)
}

// FreeRegions reports the number of fragments in the free list
// (diagnostics/tests: 1 means fully coalesced when nothing is allocated).
func (d *Device) FreeRegions() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.free)
}

// Lookup reports the size and owner of the allocation at addr.
func (d *Device) Lookup(addr uint64) (size bytesize.Size, pid int, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	a, found := d.allocs[addr]
	if !found {
		return 0, 0, false
	}
	return a.size, a.pid, true
}

// HasContext reports whether pid holds a device context.
func (d *Device) HasContext(pid int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.ctx[pid]
	return ok
}

// CopyDuration computes how long a host<->device transfer of size takes
// at the device's PCIe bandwidth.
func (d *Device) CopyDuration(size bytesize.Size) time.Duration {
	if size <= 0 || d.props.PCIeBandwidth <= 0 {
		return 0
	}
	return time.Duration(int64(size) * int64(time.Second) / d.props.PCIeBandwidth)
}

// Memcpy simulates a host<->device transfer: it consumes the transfer
// duration on the device clock. The destination/source must be a live
// allocation belonging to pid.
func (d *Device) Memcpy(pid int, addr uint64, size bytesize.Size) error {
	d.mu.Lock()
	a, ok := d.allocs[addr]
	crossPID := ok && a.pid != pid
	tooBig := ok && !crossPID && size > a.size
	d.mu.Unlock()
	if !ok || crossPID {
		return ErrInvalidDevicePointer
	}
	if tooBig {
		return ErrInvalidValue
	}
	d.sleep(d.CopyDuration(size))
	return nil
}

// Launch schedules a kernel of the given duration on pid's stream. Stream
// 0 is the default stream. The call returns after the driver-side launch
// cost; the kernel completes asynchronously (Hyper-Q permitting).
func (d *Device) Launch(pid, stream int, duration time.Duration) error {
	d.mu.Lock()
	_, hasCtx := d.ctx[pid]
	d.mu.Unlock()
	if !hasCtx {
		if _, err := d.EnsureContext(pid); err != nil {
			return err
		}
	}
	d.sleep(d.lat.LaunchKernel)
	d.streams.launch(pid, stream, duration)
	return nil
}

// Synchronize blocks until all of pid's streams are idle
// (cudaDeviceSynchronize).
func (d *Device) Synchronize(pid int) {
	d.streams.synchronize(pid)
}

// SynchronizeStream blocks until one of pid's streams is idle
// (cudaStreamSynchronize).
func (d *Device) SynchronizeStream(pid, stream int) {
	d.streams.synchronizeStream(pid, stream)
}

// StreamDrainTime reports when a stream's queued work completes (the
// zero time means idle) — the primitive events are built on.
func (d *Device) StreamDrainTime(pid, stream int) time.Time {
	return d.streams.drainTime(pid, stream)
}

// EnqueueCopy queues an asynchronous host<->device transfer on pid's
// stream (cudaMemcpyAsync): validation is immediate, the transfer time
// is consumed by the stream.
func (d *Device) EnqueueCopy(pid int, addr uint64, size bytesize.Size, stream int) error {
	d.mu.Lock()
	a, ok := d.allocs[addr]
	crossPID := ok && a.pid != pid
	tooBig := ok && !crossPID && size > a.size
	d.mu.Unlock()
	if !ok || crossPID {
		return ErrInvalidDevicePointer
	}
	if tooBig {
		return ErrInvalidValue
	}
	d.streams.launch(pid, stream, d.CopyDuration(size))
	return nil
}

// BusyStreams reports how many streams currently have work queued or
// running (diagnostics/tests).
func (d *Device) BusyStreams() int { return d.streams.busy() }
