package core

import (
	"fmt"

	"convgpu/internal/bytesize"
)

// ErrUnknownDevice reports a device index the scheduler does not serve —
// a session recorded on device 3 cannot be restored by a daemon running
// with two devices.
var ErrUnknownDevice = fmt.Errorf("core: unknown device")

// Scheduler is the surface the daemon (and the facade above it) consumes
// from a scheduling backend. The single-device *State implements it
// directly; multigpu.State and cluster.Cluster implement it by routing
// each container's operations to the member that owns its placement.
//
// The device plane is three methods: Devices describes the per-device
// pools, Placement reports which device a registered container landed
// on, and RestorePlacement pins a recovering container back onto the
// device recorded in its session file before EnsureRegistered re-admits
// it — the order the daemon's recovery path uses.
type Scheduler interface {
	// Admission and the allocation lifecycle (paper §III-A).
	Register(id ContainerID, limit bytesize.Size) (bytesize.Size, error)
	RequestAlloc(id ContainerID, pid int, size bytesize.Size) (AllocResult, error)
	ConfirmAlloc(id ContainerID, pid int, addr uint64, size bytesize.Size) error
	AbortAlloc(id ContainerID, pid int, size bytesize.Size) (Update, error)
	Free(id ContainerID, pid int, addr uint64) (bytesize.Size, Update, error)
	ProcessExit(id ContainerID, pid int) (bytesize.Size, Update, error)
	Close(id ContainerID) (bytesize.Size, Update, error)
	MemInfo(id ContainerID) (free, total bytesize.Size, err error)

	// Tenant plane: registration carrying a tenant identity (the zero
	// Tenant is the default tenant and behaves exactly like the plain
	// calls), plus the per-tenant usage aggregation the admin surfaces
	// render.
	RegisterTenant(id ContainerID, limit bytesize.Size, t Tenant) (bytesize.Size, error)
	EnsureRegisteredTenant(id ContainerID, limit bytesize.Size, t Tenant) (bytesize.Size, error)
	Tenants() []TenantUsage

	// Session recovery (PR 2): idempotent re-registration, replayed
	// allocations, and parked-ticket cleanup when a connection dies.
	EnsureRegistered(id ContainerID, limit bytesize.Size) (bytesize.Size, error)
	Restore(id ContainerID, pid int, addr uint64, size bytesize.Size) error
	DropPending(id ContainerID, tickets []Ticket) (Update, error)
	// PendingRequests lists a container's suspended requests in park
	// order — the failover path reads them off a dying node to re-queue
	// them, ticket by ticket, on a surviving one.
	PendingRequests(id ContainerID) ([]PendingRequest, error)

	// Introspection and observability (PR 3).
	Info(id ContainerID) (ContainerInfo, error)
	Snapshot() []ContainerInfo
	Events() []EventRecord
	SetObserver(fn func(EventRecord))
	SetAdmitObserver(fn func(AdmitObservation))
	PausedContainers() int
	AlgorithmName() string
	Capacity() bytesize.Size
	PoolFree() bytesize.Size
	TotalUsed() bytesize.Size
	CheckInvariants() error

	// Device plane.
	Devices() []DeviceInfo
	Placement(id ContainerID) (int, error)
	RestorePlacement(id ContainerID, device int) error
}

// PendingRequest is one suspended allocation as PendingRequests reports
// it: the parked ticket plus the request it stands for.
type PendingRequest struct {
	Ticket Ticket
	PID    int
	Size   bytesize.Size
}

// DeviceInfo summarizes one device's pool for placement policies,
// per-device gauges and the dump introspection document.
type DeviceInfo struct {
	// Index identifies the device.
	Index int
	// Capacity is the device's schedulable memory.
	Capacity bytesize.Size
	// PoolFree is memory not granted to any container on the device.
	PoolFree bytesize.Size
	// Containers counts containers placed on the device.
	Containers int
}

var _ Scheduler = (*State)(nil)

// Devices describes this state's single device: index Config.DeviceIndex
// (0 unless a multi-device scheduler set it), the full configured
// capacity, and every registered container.
func (s *State) Devices() []DeviceInfo {
	s.lockAll()
	n := 0
	for i := range s.shards {
		n += len(s.shards[i].containers)
	}
	d := DeviceInfo{
		Index:      s.cfg.DeviceIndex,
		Capacity:   s.cfg.Capacity,
		PoolFree:   s.pool,
		Containers: n,
	}
	s.unlockAll()
	return []DeviceInfo{d}
}

// Placement reports the device a registered container is served by —
// always Config.DeviceIndex for a single-device state.
func (s *State) Placement(id ContainerID) (int, error) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	_, ok := sh.containers[id]
	sh.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownContainer, id)
	}
	return s.cfg.DeviceIndex, nil
}

// PendingRequests lists id's suspended requests in park order. The
// pending slice is only mutated under the global write lock, so the
// shard read lock is enough to copy it consistently.
func (s *State) PendingRequests(id ContainerID) ([]PendingRequest, error) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	c, ok := sh.containers[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownContainer, id)
	}
	out := make([]PendingRequest, len(c.pending))
	for i, p := range c.pending {
		out[i] = PendingRequest{Ticket: p.ticket, PID: p.pid, Size: p.size}
	}
	return out, nil
}

// RestorePlacement pins a recovering container to the device recorded in
// its session file. A single-device state serves exactly one device, so
// this only validates the index; the subsequent EnsureRegistered does
// the actual re-admission.
func (s *State) RestorePlacement(id ContainerID, device int) error {
	if device != s.cfg.DeviceIndex {
		return fmt.Errorf("%w: %d (state serves device %d)", ErrUnknownDevice, device, s.cfg.DeviceIndex)
	}
	return nil
}
