package core

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/clock"
)

// newState builds a scheduler with a 5 GiB GPU (the paper's K20m) and no
// context overhead unless stated, so arithmetic in tests stays simple.
func newState(t *testing.T, alg Algorithm) *State {
	t.Helper()
	s, err := New(Config{
		Capacity:        mib(5120),
		ContextOverhead: -0, // zero would mean "default"; set below
		Algorithm:       alg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// newStateNoOverhead builds a scheduler whose context overhead is a
// negligible 1 byte (Config treats 0 as "use default").
func newStateNoOverhead(t *testing.T, capMiB int, alg Algorithm) *State {
	t.Helper()
	s, err := New(Config{Capacity: mib(capMiB), ContextOverhead: 1, Algorithm: alg})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustRegister(t *testing.T, s *State, id ContainerID, limit bytesize.Size) bytesize.Size {
	t.Helper()
	g, err := s.Register(id, limit)
	if err != nil {
		t.Fatalf("Register(%s): %v", id, err)
	}
	return g
}

func mustAlloc(t *testing.T, s *State, id ContainerID, pid int, size bytesize.Size) {
	t.Helper()
	res, err := s.RequestAlloc(id, pid, size)
	if err != nil {
		t.Fatalf("RequestAlloc(%s,%d,%v): %v", id, pid, size, err)
	}
	if res.Decision != Accept {
		t.Fatalf("RequestAlloc(%s,%d,%v) = %v, want accept", id, pid, size, res.Decision)
	}
}

func checkInv(t *testing.T, s *State) {
	t.Helper()
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Capacity: 0}); err == nil {
		t.Error("New with zero capacity succeeded")
	}
	if _, err := New(Config{Capacity: -1}); err == nil {
		t.Error("New with negative capacity succeeded")
	}
	if _, err := New(Config{Capacity: 1, ContextOverhead: -1}); err == nil {
		t.Error("New with negative overhead succeeded")
	}
	s, err := New(Config{Capacity: mib(100)})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.ContextOverhead != DefaultContextOverhead {
		t.Errorf("default overhead = %v, want %v", s.cfg.ContextOverhead, DefaultContextOverhead)
	}
	if s.AlgorithmName() != "fifo" {
		t.Errorf("default algorithm = %q, want fifo", s.AlgorithmName())
	}
	if s.Capacity() != mib(100) {
		t.Errorf("Capacity = %v", s.Capacity())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with bad config did not panic")
		}
	}()
	MustNew(Config{})
}

func TestRegisterGrants(t *testing.T) {
	s := newStateNoOverhead(t, 1000, nil)
	if g := mustRegister(t, s, "a", mib(400)); g != mib(400) {
		t.Fatalf("first grant = %v, want full 400MiB", g)
	}
	if g := mustRegister(t, s, "b", mib(400)); g != mib(400) {
		t.Fatalf("second grant = %v, want full 400MiB", g)
	}
	// Pool has 200 left: partial grant (Fig. 3b).
	if g := mustRegister(t, s, "c", mib(400)); g != mib(200) {
		t.Fatalf("third grant = %v, want partial 200MiB", g)
	}
	// Pool empty: zero grant (Container D).
	if g := mustRegister(t, s, "d", mib(400)); g != 0 {
		t.Fatalf("fourth grant = %v, want 0", g)
	}
	checkInv(t, s)
}

func TestRegisterErrors(t *testing.T) {
	s := newStateNoOverhead(t, 1000, nil)
	if _, err := s.Register("a", 0); !errors.Is(err, ErrInvalidLimit) {
		t.Errorf("zero limit err = %v", err)
	}
	if _, err := s.Register("a", -5); !errors.Is(err, ErrInvalidLimit) {
		t.Errorf("negative limit err = %v", err)
	}
	if _, err := s.Register("a", mib(2000)); !errors.Is(err, ErrLimitExceedsCapacity) {
		t.Errorf("oversized limit err = %v", err)
	}
	mustRegister(t, s, "a", mib(100))
	if _, err := s.Register("a", mib(100)); !errors.Is(err, ErrDuplicateContainer) {
		t.Errorf("duplicate err = %v", err)
	}
}

func TestAcceptWithinGrant(t *testing.T) {
	s := newStateNoOverhead(t, 1000, nil)
	mustRegister(t, s, "a", mib(400))
	mustAlloc(t, s, "a", 1, mib(100))
	mustAlloc(t, s, "a", 1, mib(299)) // 100+299+2*1B overhead < 400
	info, _ := s.Info("a")
	if info.Used >= mib(400) || info.Used < mib(399) {
		t.Fatalf("used = %v", info.Used)
	}
	checkInv(t, s)
}

func TestRejectOverLimit(t *testing.T) {
	s := newStateNoOverhead(t, 1000, nil)
	mustRegister(t, s, "a", mib(400))
	res, err := s.RequestAlloc("a", 1, mib(401))
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != Reject {
		t.Fatalf("over-limit request = %v, want reject", res.Decision)
	}
	// Rejection charges nothing.
	info, _ := s.Info("a")
	if info.Used != 0 {
		t.Fatalf("used after reject = %v, want 0", info.Used)
	}
	checkInv(t, s)
}

func TestContextOverheadCharging(t *testing.T) {
	s, err := New(Config{Capacity: mib(1000), ContextOverhead: mib(66)})
	if err != nil {
		t.Fatal(err)
	}
	mustRegister(t, s, "a", mib(400))
	mustAlloc(t, s, "a", 1, mib(100)) // charges 100+66
	info, _ := s.Info("a")
	if info.Used != mib(166) {
		t.Fatalf("used = %v, want 166MiB (100 + 66 overhead)", info.Used)
	}
	mustAlloc(t, s, "a", 1, mib(100)) // same pid: no second overhead
	info, _ = s.Info("a")
	if info.Used != mib(266) {
		t.Fatalf("used = %v, want 266MiB", info.Used)
	}
	mustAlloc(t, s, "a", 2, mib(10)) // new pid: overhead again
	info, _ = s.Info("a")
	if info.Used != mib(342) {
		t.Fatalf("used = %v, want 342MiB", info.Used)
	}
	checkInv(t, s)
}

func TestRejectConsidersOverheadForNewPID(t *testing.T) {
	s, err := New(Config{Capacity: mib(1000), ContextOverhead: mib(66)})
	if err != nil {
		t.Fatal(err)
	}
	mustRegister(t, s, "a", mib(128))
	// 128 MiB request + 66 overhead > 128 limit: reject.
	res, err := s.RequestAlloc("a", 1, mib(128))
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != Reject {
		t.Fatalf("decision = %v, want reject", res.Decision)
	}
	// 62 MiB fits (62+66=128).
	mustAlloc(t, s, "a", 1, mib(62))
	checkInv(t, s)
}

func TestSuspendAndResumeOnClose(t *testing.T) {
	s := newStateNoOverhead(t, 1000, FIFO{})
	mustRegister(t, s, "a", mib(600))
	mustAlloc(t, s, "a", 1, mib(600)-1) // -1B leaves room for the overhead byte
	mustRegister(t, s, "b", mib(600))   // grant 400 partial
	res, err := s.RequestAlloc("b", 2, mib(500))
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != Suspend {
		t.Fatalf("decision = %v, want suspend", res.Decision)
	}
	info, _ := s.Info("b")
	if !info.Suspended || info.Pending != 1 {
		t.Fatalf("b info = %+v, want suspended with 1 pending", info)
	}
	// Closing a releases 600; FIFO grants b its deficit and admits the
	// pending request.
	released, u, err := s.Close("a")
	if err != nil {
		t.Fatal(err)
	}
	if released != mib(600) {
		t.Fatalf("released = %v, want 600MiB", released)
	}
	if len(u.Admitted) != 1 || u.Admitted[0].Ticket != res.Ticket || u.Admitted[0].Container != "b" {
		t.Fatalf("admitted = %+v, want ticket %d for b", u.Admitted, res.Ticket)
	}
	info, _ = s.Info("b")
	if info.Suspended || info.Used != mib(500)+1 { // +1B overhead
		t.Fatalf("b after resume = %+v", info)
	}
	checkInv(t, s)
}

func TestResumeOnOwnFree(t *testing.T) {
	// A container with a *partial* grant frees enough of its own memory
	// that a suspended request fits within the grant again.
	s := newStateNoOverhead(t, 1000, nil)
	mustRegister(t, s, "holder", mib(700))
	mustAlloc(t, s, "holder", 9, mib(600))
	mustRegister(t, s, "a", mib(600)) // grant 300, partial
	mustAlloc(t, s, "a", 1, mib(250))
	if err := s.ConfirmAlloc("a", 1, 0x1000, mib(250)); err != nil {
		t.Fatal(err)
	}
	// 250(+1B) used + 100 exceeds the 300 grant but not the 600 limit:
	// suspend.
	res, err := s.RequestAlloc("a", 1, mib(100))
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != Suspend {
		t.Fatalf("decision = %v, want suspend", res.Decision)
	}
	// Freeing its own 250 MiB admits the parked 100 MiB within the
	// existing grant — no other container had to terminate.
	freed, u, err := s.Free("a", 1, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if freed != mib(250) {
		t.Fatalf("freed = %v", freed)
	}
	if len(u.Admitted) != 1 || u.Admitted[0].Ticket != res.Ticket {
		t.Fatalf("admitted = %+v", u.Admitted)
	}
	checkInv(t, s)
}

func TestConfirmAndFreeTracking(t *testing.T) {
	s := newStateNoOverhead(t, 1000, nil)
	mustRegister(t, s, "a", mib(400))
	mustAlloc(t, s, "a", 1, mib(100))
	if err := s.ConfirmAlloc("a", 1, 0xA0, mib(100)); err != nil {
		t.Fatal(err)
	}
	// Confirm without a matching accepted request.
	if err := s.ConfirmAlloc("a", 1, 0xB0, mib(100)); !errors.Is(err, ErrNotCharged) {
		t.Fatalf("stray confirm err = %v", err)
	}
	// Address reuse: a confirm for a tracked address implicitly frees
	// the stale record (the device cannot hold two live allocations at
	// one address; the old one's async free report is still in flight).
	mustAlloc(t, s, "a", 1, mib(50))
	usedBefore, _ := s.Info("a")
	if err := s.ConfirmAlloc("a", 1, 0xA0, mib(50)); err != nil {
		t.Fatalf("reused-address confirm err = %v", err)
	}
	usedAfter, _ := s.Info("a")
	if usedAfter.Used != usedBefore.Used-mib(100) {
		t.Fatalf("stale 100MiB record not released: %v -> %v", usedBefore.Used, usedAfter.Used)
	}
	// The late free report for the stale record fails harmlessly.
	if _, _, err := s.Free("a", 1, 0xA0); err != nil {
		// 0xA0 now tracks the NEW 50MiB allocation; freeing it works.
		t.Fatalf("free of reused addr: %v", err)
	}
	mustAlloc(t, s, "a", 1, mib(50))
	if err := s.ConfirmAlloc("a", 1, 0xC0, mib(50)); err != nil {
		t.Fatal(err)
	}
	// Free unknown addr / pid / container.
	if _, _, err := s.Free("a", 1, 0xDEAD); !errors.Is(err, ErrUnknownAddr) {
		t.Fatalf("free unknown addr err = %v", err)
	}
	if _, _, err := s.Free("a", 99, 0xA0); !errors.Is(err, ErrUnknownPID) {
		t.Fatalf("free unknown pid err = %v", err)
	}
	if _, _, err := s.Free("zzz", 1, 0xA0); !errors.Is(err, ErrUnknownContainer) {
		t.Fatalf("free unknown container err = %v", err)
	}
	freed, _, err := s.Free("a", 1, 0xC0)
	if err != nil || freed != mib(50) {
		t.Fatalf("free = (%v,%v)", freed, err)
	}
	checkInv(t, s)
}

func TestConfirmSizeMismatch(t *testing.T) {
	s := newStateNoOverhead(t, 1000, nil)
	mustRegister(t, s, "a", mib(400))
	mustAlloc(t, s, "a", 1, mib(100))
	if err := s.ConfirmAlloc("a", 1, 0xA0, mib(99)); err == nil {
		t.Fatal("confirm with mismatched size succeeded")
	}
}

func TestAbortAllocReturnsCharge(t *testing.T) {
	s := newStateNoOverhead(t, 1000, nil)
	mustRegister(t, s, "a", mib(400))
	mustAlloc(t, s, "a", 1, mib(100))
	u, err := s.AbortAlloc("a", 1, mib(100))
	if err != nil {
		t.Fatal(err)
	}
	_ = u
	info, _ := s.Info("a")
	if info.Used != 1 { // only the 1-byte overhead remains charged
		t.Fatalf("used after abort = %v, want 1B", info.Used)
	}
	if _, err := s.AbortAlloc("a", 1, mib(100)); !errors.Is(err, ErrNotCharged) {
		t.Fatalf("double abort err = %v", err)
	}
	checkInv(t, s)
}

func TestProcessExitReleasesLeaks(t *testing.T) {
	s, err := New(Config{Capacity: mib(1000), ContextOverhead: mib(66)})
	if err != nil {
		t.Fatal(err)
	}
	mustRegister(t, s, "a", mib(500))
	mustAlloc(t, s, "a", 1, mib(100))
	if err := s.ConfirmAlloc("a", 1, 0xA0, mib(100)); err != nil {
		t.Fatal(err)
	}
	mustAlloc(t, s, "a", 1, mib(50)) // accepted but never confirmed
	released, _, err := s.ProcessExit("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := mib(100 + 50 + 66); released != want {
		t.Fatalf("released = %v, want %v", released, want)
	}
	info, _ := s.Info("a")
	if info.Used != 0 {
		t.Fatalf("used after exit = %v, want 0", info.Used)
	}
	// Exit of an unknown pid is a no-op.
	released, _, err = s.ProcessExit("a", 999)
	if err != nil || released != 0 {
		t.Fatalf("unknown pid exit = (%v,%v)", released, err)
	}
	checkInv(t, s)
}

func TestProcessExitCancelsPending(t *testing.T) {
	s := newStateNoOverhead(t, 1000, nil)
	mustRegister(t, s, "holder", mib(700))
	mustAlloc(t, s, "holder", 9, mib(600))
	mustRegister(t, s, "a", mib(500)) // grant 300 partial
	res, _ := s.RequestAlloc("a", 1, mib(400))
	if res.Decision != Suspend {
		t.Fatalf("setup: decision = %v", res.Decision)
	}
	_, u, err := s.ProcessExit("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Cancelled) != 1 || u.Cancelled[0].Ticket != res.Ticket {
		t.Fatalf("cancelled = %+v, want ticket %d", u.Cancelled, res.Ticket)
	}
	info, _ := s.Info("a")
	if info.Pending != 0 {
		t.Fatalf("pending = %d after exit", info.Pending)
	}
	checkInv(t, s)
}

func TestCloseCancelsPendingAndIsIdempotent(t *testing.T) {
	s := newStateNoOverhead(t, 1000, nil)
	mustRegister(t, s, "holder", mib(700))
	mustAlloc(t, s, "holder", 9, mib(600))
	mustRegister(t, s, "a", mib(500)) // grant 300 partial
	res, _ := s.RequestAlloc("a", 1, mib(400))
	if res.Decision != Suspend {
		t.Fatalf("setup: decision = %v", res.Decision)
	}
	_, u, err := s.Close("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Cancelled) != 1 || u.Cancelled[0].Ticket != res.Ticket {
		t.Fatalf("cancelled = %+v", u.Cancelled)
	}
	// Second close: idempotent no-op.
	released, _, err := s.Close("a")
	if err != nil || released != 0 {
		t.Fatalf("second close = (%v,%v)", released, err)
	}
	// Close of a never-registered container errors.
	if _, _, err := s.Close("ghost"); !errors.Is(err, ErrUnknownContainer) {
		t.Fatalf("close ghost err = %v", err)
	}
	if _, _, err := s.Close("holder"); err != nil {
		t.Fatal(err)
	}
	if s.PoolFree() != mib(1000) {
		t.Fatalf("pool = %v after closes, want all capacity", s.PoolFree())
	}
	checkInv(t, s)
}

func TestMemInfoVirtualizedView(t *testing.T) {
	s := newStateNoOverhead(t, 5120, nil)
	mustRegister(t, s, "a", mib(1024))
	free, total, err := s.MemInfo("a")
	if err != nil {
		t.Fatal(err)
	}
	if total != mib(1024) || free != mib(1024) {
		t.Fatalf("MemInfo = (%v,%v), want the container's limit view", free, total)
	}
	mustAlloc(t, s, "a", 1, mib(100))
	free, total, _ = s.MemInfo("a")
	if total != mib(1024) || free != mib(924)-1 {
		t.Fatalf("MemInfo after alloc = (%v,%v)", free, total)
	}
	if _, _, err := s.MemInfo("ghost"); !errors.Is(err, ErrUnknownContainer) {
		t.Fatalf("MemInfo ghost err = %v", err)
	}
}

// TestFig3Scenario replays the paper's Figure 3 walkthrough end to end.
func TestFig3Scenario(t *testing.T) {
	// Capacity 1000; A and B run with 400 each (Fig. 3a).
	s := newStateNoOverhead(t, 1000, FIFO{})
	mustRegister(t, s, "A", mib(400))
	mustAlloc(t, s, "A", 1, mib(400)-1)
	if err := s.ConfirmAlloc("A", 1, 0xA, mib(400)-1); err != nil {
		t.Fatal(err)
	}
	mustRegister(t, s, "B", mib(400))
	mustAlloc(t, s, "B", 2, mib(400)-1)
	if err := s.ConfirmAlloc("B", 2, 0xB, mib(400)-1); err != nil {
		t.Fatal(err)
	}

	// Fig. 3b: C requests 400 at creation, gets the remaining 200 and
	// runs fine while using less than that.
	if g := mustRegister(t, s, "C", mib(400)); g != mib(200) {
		t.Fatalf("C grant = %v, want partial 200MiB", g)
	}
	mustAlloc(t, s, "C", 3, mib(150))

	// Fig. 3c: C allocates beyond its assigned memory (still within its
	// request) and suspends; D arrives with no memory at all and its
	// first allocation suspends immediately.
	resC, _ := s.RequestAlloc("C", 3, mib(200))
	if resC.Decision != Suspend {
		t.Fatalf("C's over-grant alloc = %v, want suspend", resC.Decision)
	}
	if g := mustRegister(t, s, "D", mib(300)); g != 0 {
		t.Fatalf("D grant = %v, want 0", g)
	}
	resD, _ := s.RequestAlloc("D", 4, mib(250))
	if resD.Decision != Suspend {
		t.Fatalf("D's alloc = %v, want suspend", resD.Decision)
	}

	// Fig. 3d: B terminates; FIFO selects C (older) and guarantees its
	// full request; the remaining 200 go to D, which stays suspended.
	_, u, err := s.Close("B")
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Admitted) != 1 || u.Admitted[0].Container != "C" || u.Admitted[0].Ticket != resC.Ticket {
		t.Fatalf("admitted = %+v, want C's ticket", u.Admitted)
	}
	infoC, _ := s.Info("C")
	if infoC.Grant != mib(400) || infoC.Suspended {
		t.Fatalf("C = %+v, want full grant and running", infoC)
	}
	infoD, _ := s.Info("D")
	if infoD.Grant != mib(200) || !infoD.Suspended {
		t.Fatalf("D = %+v, want partial 200MiB grant and still suspended", infoD)
	}
	checkInv(t, s)
}

func TestSuspendedTimeAccounting(t *testing.T) {
	clk := clock.NewManual()
	s, err := New(Config{Capacity: mib(1000), ContextOverhead: 1, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	mustRegister(t, s, "holder", mib(700))
	mustAlloc(t, s, "holder", 9, mib(600))
	mustRegister(t, s, "a", mib(600)) // grant 300 partial
	mustAlloc(t, s, "a", 1, mib(250))
	if err := s.ConfirmAlloc("a", 1, 0x1, mib(250)); err != nil {
		t.Fatal(err)
	}
	// 299 MiB: suspends now (250+1B held), but fits within the 300 MiB
	// grant once the 250 MiB block is freed (overhead byte included).
	if res, err := s.RequestAlloc("a", 1, mib(299)); err != nil || res.Decision != Suspend {
		t.Fatalf("setup: res=%+v err=%v", res, err)
	}
	clk.Advance(7 * time.Second)
	info, _ := s.Info("a")
	if info.SuspendedTotal != 7*time.Second {
		t.Fatalf("open-interval SuspendedTotal = %v, want 7s", info.SuspendedTotal)
	}
	// Free ends the suspension at t=7s; later time must not accrue.
	if _, _, err := s.Free("a", 1, 0x1); err != nil {
		t.Fatal(err)
	}
	clk.Advance(5 * time.Second)
	info, _ = s.Info("a")
	if info.SuspendedTotal != 7*time.Second {
		t.Fatalf("closed SuspendedTotal = %v, want 7s", info.SuspendedTotal)
	}
	if !info.EverSuspended {
		t.Fatal("EverSuspended not set")
	}
}

func TestPoolTopUpAvoidsNeedlessSuspend(t *testing.T) {
	// A container whose grant is partial must still allocate without
	// suspension while unassigned pool memory can cover it.
	s := newStateNoOverhead(t, 1000, nil)
	mustRegister(t, s, "a", mib(800))
	mustAlloc(t, s, "a", 1, mib(100))
	if err := s.ConfirmAlloc("a", 1, 0x1, mib(100)); err != nil {
		t.Fatal(err)
	}
	// Close and re-register scenario: b registers when pool is 200.
	mustRegister(t, s, "b", mib(600)) // grant 200 partial
	infoB, _ := s.Info("b")
	if infoB.Grant != mib(200) {
		t.Fatalf("b grant = %v", infoB.Grant)
	}
	// a frees; pool stays 0 (grants are sticky) but when a closes, pool
	// returns. b then allocates 500: grant tops up from the pool without
	// suspension.
	if _, _, err := s.Free("a", 1, 0x1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Close("a"); err != nil {
		t.Fatal(err)
	}
	res, err := s.RequestAlloc("b", 2, mib(500))
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != Accept {
		t.Fatalf("decision = %v, want accept via pool top-up", res.Decision)
	}
	checkInv(t, s)
}

func TestBestFitRedistribution(t *testing.T) {
	// Pool 300 must go to the container whose deficit fits best, not the
	// oldest.
	s := newStateNoOverhead(t, 1000, BestFit{})
	mustRegister(t, s, "big", mib(700))
	mustAlloc(t, s, "big", 1, mib(700)-1)
	if err := s.ConfirmAlloc("big", 1, 0x1, mib(700)-1); err != nil {
		t.Fatal(err)
	}
	mustRegister(t, s, "older", mib(600)) // deficit 300 after pool drained
	mustRegister(t, s, "newer", mib(300)) // deficit 300... build carefully:
	// pool was 300 at older's registration: older got grant 300
	// (deficit 300); newer got 0 (deficit 300). Make deficits differ.
	resOld, _ := s.RequestAlloc("older", 2, mib(500))
	resNew, _ := s.RequestAlloc("newer", 3, mib(250))
	if resOld.Decision != Suspend || resNew.Decision != Suspend {
		t.Fatalf("setup: decisions %v/%v", resOld.Decision, resNew.Decision)
	}
	// big closes: pool 700. older's deficit 300, newer's 300. Both fit;
	// BestFit takes the larger fitting deficit (tie -> older), grants it,
	// then the rest goes to newer. Both resume.
	_, u, err := s.Close("big")
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Admitted) != 2 {
		t.Fatalf("admitted = %+v, want both", u.Admitted)
	}
	checkInv(t, s)
}

func TestBestFitPrefersExactFit(t *testing.T) {
	s := newStateNoOverhead(t, 1000, BestFit{})
	mustRegister(t, s, "holder", mib(900))
	mustAlloc(t, s, "holder", 1, mib(900)-1)
	if err := s.ConfirmAlloc("holder", 1, 0x1, mib(900)-1); err != nil {
		t.Fatal(err)
	}
	mustRegister(t, s, "wantsBig", mib(800))   // grant 100, deficit 700
	mustRegister(t, s, "wantsSmall", mib(600)) // grant 0... pool is 0: grant 0, deficit 600
	r1, _ := s.RequestAlloc("wantsBig", 2, mib(700))
	r2, _ := s.RequestAlloc("wantsSmall", 3, mib(500))
	if r1.Decision != Suspend || r2.Decision != Suspend {
		t.Fatalf("setup decisions: %v/%v", r1.Decision, r2.Decision)
	}
	// holder frees 899 via close: pool 900. wantsBig deficit 700 fits and
	// is the largest fitting: it resumes first; remaining 200 goes to
	// wantsSmall (partial), which stays suspended.
	_, u, err := s.Close("holder")
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Admitted) != 1 || u.Admitted[0].Container != "wantsBig" {
		t.Fatalf("admitted = %+v, want wantsBig only", u.Admitted)
	}
	info, _ := s.Info("wantsSmall")
	if info.Grant != mib(200) || !info.Suspended {
		t.Fatalf("wantsSmall = %+v, want partial 200 grant, suspended", info)
	}
	checkInv(t, s)
}

// TestStalledDetection constructs the residual hold-and-wait the paper's
// prior fault-tolerance study [10] warns about: it needs a *multi-
// allocation* program (B holds earlier allocations while waiting) plus a
// policy (Recent-Use) that hands all freed memory to a container that
// still cannot resume. Single-allocation workloads — the paper's whole
// evaluation — can never reach this state (see Stalled's doc comment).
func TestStalledDetection(t *testing.T) {
	s := newStateNoOverhead(t, 1000, RecentUse{})
	mustRegister(t, s, "filler", mib(500))
	mustAlloc(t, s, "filler", 9, mib(450))
	if s.Stalled() {
		t.Fatal("running container reported stalled")
	}
	mustRegister(t, s, "B", mib(900)) // grant 500 (pool had 500)
	mustAlloc(t, s, "B", 1, mib(400)) // B holds real usage
	resB, _ := s.RequestAlloc("B", 1, mib(480))
	mustRegister(t, s, "C", mib(900))           // grant 0
	resC, _ := s.RequestAlloc("C", 2, mib(600)) // suspended after B
	if resB.Decision != Suspend || resC.Decision != Suspend {
		t.Fatalf("setup decisions: %v/%v", resB.Decision, resC.Decision)
	}
	if s.Stalled() {
		t.Fatal("stalled while filler still runs")
	}
	// filler closes: pool 500 plus B's reclaimed unused ~100. Recent-Use
	// picks C (most recent); its 600 MiB+1B request does not fit the
	// ~600 MiB-1B grant, so C stays paused holding the whole pool, and B
	// (holding 400 MiB of real usage) is never picked: every container
	// is blocked.
	_, u, err := s.Close("filler")
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Admitted) != 0 {
		t.Fatalf("admitted = %+v, want none", u.Admitted)
	}
	if !s.Stalled() {
		t.Fatal("mutually blocked containers not reported stalled")
	}
	infoC, _ := s.Info("C")
	if infoC.Grant < mib(599) || infoC.Grant > mib(600) {
		t.Fatalf("C grant = %v, want ~600MiB (the whole reclaimed pool)", infoC.Grant)
	}
	checkInv(t, s)
}

func TestSnapshotOrdering(t *testing.T) {
	s := newStateNoOverhead(t, 1000, nil)
	for _, id := range []ContainerID{"z", "m", "a"} {
		mustRegister(t, s, id, mib(10))
	}
	snap := s.Snapshot()
	if len(snap) != 3 || snap[0].ID != "z" || snap[1].ID != "m" || snap[2].ID != "a" {
		t.Fatalf("snapshot order = %+v, want creation order z,m,a", snap)
	}
	if _, err := s.Info("nope"); !errors.Is(err, ErrUnknownContainer) {
		t.Fatalf("Info(nope) err = %v", err)
	}
}

func TestDecisionString(t *testing.T) {
	if Accept.String() != "accept" || Suspend.String() != "suspend" || Reject.String() != "reject" {
		t.Error("Decision strings wrong")
	}
	if Decision(9).String() != "Decision(9)" {
		t.Errorf("unknown decision string = %q", Decision(9).String())
	}
}

// TestRandomOperationsInvariant drives the scheduler with a random
// operation mix under every algorithm and asserts the core invariants
// after every single step, plus full-drain recovery at the end.
func TestRandomOperationsInvariant(t *testing.T) {
	for _, algName := range AlgorithmNames() {
		algName := algName
		t.Run(algName, func(t *testing.T) {
			alg, err := NewAlgorithm(algName, 7)
			if err != nil {
				t.Fatal(err)
			}
			s, err := New(Config{Capacity: mib(2048), ContextOverhead: mib(66), Algorithm: alg})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(20170712))
			type liveAlloc struct {
				id   ContainerID
				pid  int
				addr uint64
			}
			type parked struct {
				id   ContainerID
				pid  int
				size bytesize.Size
			}
			var (
				nextID    int
				nextAddr  uint64 = 0x1000
				live      []ContainerID
				allocs    []liveAlloc
				suspended = map[Ticket]parked{}
			)
			// admit plays the wrapper's role for resumed requests: the
			// real allocation happens and is confirmed.
			admit := func(u Update) {
				for _, a := range u.Admitted {
					p, ok := suspended[a.Ticket]
					if !ok {
						t.Fatalf("admitted unknown ticket %d", a.Ticket)
					}
					delete(suspended, a.Ticket)
					nextAddr += 0x10
					if err := s.ConfirmAlloc(p.id, p.pid, nextAddr, p.size); err != nil {
						t.Fatal(err)
					}
					allocs = append(allocs, liveAlloc{p.id, p.pid, nextAddr})
				}
				for _, c := range u.Cancelled {
					if _, ok := suspended[c.Ticket]; !ok {
						t.Fatalf("cancelled unknown ticket %d", c.Ticket)
					}
					delete(suspended, c.Ticket)
				}
			}
			for op := 0; op < 3000; op++ {
				switch rng.Intn(10) {
				case 0, 1: // register
					nextID++
					id := ContainerID(string(rune('A'+nextID%26)) + "-" + itoa(nextID))
					limit := mib(rng.Intn(1900) + 100)
					if _, err := s.Register(id, limit); err != nil {
						t.Fatal(err)
					}
					live = append(live, id)
				case 2, 3, 4, 5: // alloc
					if len(live) == 0 {
						continue
					}
					id := live[rng.Intn(len(live))]
					pid := rng.Intn(3) + 1 // few pids per container
					size := mib(rng.Intn(600) + 1)
					res, err := s.RequestAlloc(id, pid, size)
					if err != nil {
						t.Fatal(err)
					}
					switch res.Decision {
					case Accept:
						nextAddr += 0x10
						if err := s.ConfirmAlloc(id, pid, nextAddr, size); err != nil {
							t.Fatal(err)
						}
						allocs = append(allocs, liveAlloc{id, pid, nextAddr})
					case Suspend:
						suspended[res.Ticket] = parked{id, pid, size}
					}
				case 6, 7: // free
					if len(allocs) == 0 {
						continue
					}
					i := rng.Intn(len(allocs))
					a := allocs[i]
					_, u, err := s.Free(a.id, a.pid, a.addr)
					if err != nil {
						t.Fatal(err)
					}
					admit(u)
					allocs = append(allocs[:i], allocs[i+1:]...)
				case 8: // process exit
					if len(allocs) == 0 {
						continue
					}
					a := allocs[rng.Intn(len(allocs))]
					_, u, err := s.ProcessExit(a.id, a.pid)
					if err != nil {
						t.Fatal(err)
					}
					admit(u)
					out := allocs[:0]
					for _, x := range allocs {
						if !(x.id == a.id && x.pid == a.pid) {
							out = append(out, x)
						}
					}
					allocs = out
				case 9: // close
					if len(live) == 0 {
						continue
					}
					i := rng.Intn(len(live))
					id := live[i]
					_, u, err := s.Close(id)
					if err != nil {
						t.Fatal(err)
					}
					admit(u)
					live = append(live[:i], live[i+1:]...)
					out := allocs[:0]
					for _, x := range allocs {
						if x.id != id {
							out = append(out, x)
						}
					}
					allocs = out
				}
				if err := s.CheckInvariants(); err != nil {
					t.Fatalf("op %d: %v", op, err)
				}
			}
			// Drain: close everything; the pool must equal capacity and
			// every outstanding ticket must be cancelled or admitted.
			for _, id := range live {
				_, u, err := s.Close(id)
				if err != nil {
					t.Fatal(err)
				}
				admit(u)
			}
			if s.PoolFree() != mib(2048) {
				t.Fatalf("pool after drain = %v, want full capacity", s.PoolFree())
			}
			if len(suspended) != 0 {
				t.Fatalf("%d tickets leaked after drain", len(suspended))
			}
			checkInv(t, s)
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
