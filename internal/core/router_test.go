package core

import (
	"errors"
	"testing"

	"convgpu/internal/bytesize"
)

// newTestRouter builds a 2-member router over small single-device
// states, with placements recorded the way an embedding type would
// after Register.
func newTestRouter(t *testing.T) (*Router, []*State) {
	t.Helper()
	var members []Scheduler
	var states []*State
	for i := 0; i < 2; i++ {
		s, err := New(Config{Capacity: mib(500), ContextOverhead: 1, Algorithm: mustAlg(t, AlgFIFO), DeviceIndex: i})
		if err != nil {
			t.Fatal(err)
		}
		members = append(members, s)
		states = append(states, s)
	}
	return NewRouter(members, "node"), states
}

func mustAlg(t *testing.T, name string) Algorithm {
	t.Helper()
	a, err := NewAlgorithm(name, 1)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestRouterRoutesAndAggregates pins the routing plane inside its own
// package: per-container ops land on the owning member, unknown
// containers are refused, and the whole-scheduler views aggregate
// across members.
func TestRouterRoutesAndAggregates(t *testing.T) {
	r, states := newTestRouter(t)

	var seen []EventRecord
	r.SetObserver(func(e EventRecord) { seen = append(seen, e) })

	reg := func(id ContainerID, member int, limit bytesize.Size) {
		t.Helper()
		if _, err := states[member].Register(id, limit); err != nil {
			t.Fatal(err)
		}
		r.SetPlacement(id, member)
	}
	reg("a", 0, mib(400))
	// c shrinks member 1's pool so b registers with a partial grant —
	// the precondition for a suspend below.
	reg("c", 1, mib(300))
	reg("b", 1, mib(500)) // grant clamped to the remaining 200 MiB

	if n := r.NumMembers(); n != 2 {
		t.Fatalf("NumMembers = %d", n)
	}
	if r.Member(1) != states[1] {
		t.Fatal("Member(1) is not the second state")
	}
	if m, err := r.PlacementIndex("b"); err != nil || m != 1 {
		t.Fatalf("PlacementIndex(b) = %d, %v", m, err)
	}
	if _, err := r.PlacementIndex("ghost"); !errors.Is(err, ErrUnknownContainer) {
		t.Fatalf("PlacementIndex(ghost) = %v", err)
	}

	// Routed ops follow the placement.
	res, err := r.RequestAlloc("a", 1, mib(100))
	if err != nil || res.Decision != Accept {
		t.Fatalf("alloc a: %+v %v", res, err)
	}
	if err := r.ConfirmAlloc("a", 1, 0x1, mib(100)); err != nil {
		t.Fatal(err)
	}
	if free, total, err := r.MemInfo("a"); err != nil || total != mib(400) || free >= total {
		t.Fatalf("MemInfo(a) = %v/%v, %v", free, total, err)
	}
	if _, err := r.RequestAlloc("ghost", 1, mib(1)); !errors.Is(err, ErrUnknownContainer) {
		t.Fatalf("alloc ghost: %v", err)
	}

	// b's second request is within its limit but over its grant with an
	// empty pool: it parks, and PendingRequests routes to the member
	// that holds the queue.
	if res, err := r.RequestAlloc("b", 2, mib(150)); err != nil || res.Decision != Accept {
		t.Fatalf("alloc b: %+v %v", res, err)
	}
	if err := r.ConfirmAlloc("b", 2, 0x2, mib(150)); err != nil {
		t.Fatal(err)
	}
	sus, err := r.RequestAlloc("b", 2, mib(300))
	if err != nil || sus.Decision != Suspend {
		t.Fatalf("second alloc b: %+v %v", sus, err)
	}
	pend, err := r.PendingRequests("b")
	if err != nil || len(pend) != 1 || pend[0].Ticket != sus.Ticket || pend[0].Size != mib(300) {
		t.Fatalf("PendingRequests(b) = %+v, %v", pend, err)
	}
	if got := r.PausedContainers(); got != 1 {
		t.Fatalf("PausedContainers = %d", got)
	}

	// Aggregated views span both members.
	if got := r.Capacity(); got != mib(1000) {
		t.Fatalf("Capacity = %v", got)
	}
	if got := r.PoolFree(); got != mib(100) { // 1000 - 400 - 300 - 200 granted
		t.Fatalf("PoolFree = %v", got)
	}
	if got := r.TotalUsed(); got == 0 {
		t.Fatalf("TotalUsed = %v", got)
	}
	if snap := r.Snapshot(); len(snap) != 3 {
		t.Fatalf("Snapshot = %+v", snap)
	}
	if devs := r.Devices(); len(devs) != 2 {
		t.Fatalf("Devices = %+v", devs)
	}
	if name := r.AlgorithmName(); name != AlgFIFO {
		t.Fatalf("AlgorithmName = %q", name)
	}
	if evs := r.Events(); len(evs) == 0 || len(seen) == 0 {
		t.Fatalf("events: merged=%d observed=%d", len(evs), len(seen))
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Drop the parked request so teardown is clean, then close through
	// the router.
	if _, err := r.DropPending("b", []Ticket{sus.Ticket}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Free("a", 1, 0x1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.ProcessExit("b", 2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Close("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Info("a"); err == nil {
		t.Fatal("a still known after close")
	}
}

// TestRouterReplaceMember pins the failover plumbing: the fresh member
// takes the dead slot before re-placement, dropped placements are
// forgotten, and the router's observer follows onto the replacement.
func TestRouterReplaceMember(t *testing.T) {
	r, states := newTestRouter(t)
	var events int
	r.SetObserver(func(EventRecord) { events++ })

	if _, err := states[0].Register("a", mib(100)); err != nil {
		t.Fatal(err)
	}
	r.SetPlacement("a", 0)
	if got := r.PlacementsOn(0); len(got) != 1 || got[0] != "a" {
		t.Fatalf("PlacementsOn(0) = %v", got)
	}

	fresh, err := New(Config{Capacity: mib(500), ContextOverhead: 1, Algorithm: mustAlg(t, AlgFIFO)})
	if err != nil {
		t.Fatal(err)
	}
	r.ReplaceMember(0, fresh, []ContainerID{"a"})

	if r.Member(0) != fresh {
		t.Fatal("slot 0 still holds the dead member")
	}
	if _, err := r.PlacementIndex("a"); !errors.Is(err, ErrUnknownContainer) {
		t.Fatalf("dropped placement survived: %v", err)
	}
	if got := r.PlacementsOn(0); len(got) != 0 {
		t.Fatalf("PlacementsOn(0) after replace = %v", got)
	}

	// The replacement inherits the observer: activity on it is seen.
	if _, err := fresh.Register("b", mib(50)); err != nil {
		t.Fatal(err)
	}
	r.SetPlacement("b", 0)
	if events == 0 {
		t.Fatal("observer did not follow onto the replacement member")
	}

	// RestorePlacement with no recorded placement claims the first
	// member that accepts the device.
	if err := r.RestorePlacement("b", 0); err != nil {
		t.Fatal(err)
	}
	if err := r.RestorePlacement("ghost", 99); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("RestorePlacement(ghost, 99) = %v", err)
	}
}

// TestNodeVocabularyStrings pins the membership vocabulary's renderings
// (they feed logs, gauges, and the nodes verb's JSON).
func TestNodeVocabularyStrings(t *testing.T) {
	states := map[NodeState]string{
		NodeUp: "up", NodeSuspect: "suspect", NodeDown: "down",
		NodeDraining: "draining", NodeState(99): "unknown",
	}
	for s, want := range states {
		if got := s.String(); got != want {
			t.Fatalf("NodeState(%d) = %q, want %q", int(s), got, want)
		}
	}
	outcomes := map[TicketOutcome]string{
		TicketMigrated: "migrated", TicketAdmitted: "admitted",
		TicketEvicted: "evicted", TicketOutcome(99): "unknown",
	}
	for o, want := range outcomes {
		if got := o.String(); got != want {
			t.Fatalf("TicketOutcome(%d) = %q, want %q", int(o), got, want)
		}
	}
}
