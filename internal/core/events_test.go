package core

import (
	"strings"
	"testing"
)

func TestEventKindStrings(t *testing.T) {
	kinds := map[EventKind]string{
		EvRegister: "register", EvAccept: "accept", EvSuspend: "suspend",
		EvReject: "reject", EvResume: "resume", EvGrant: "grant",
		EvRescue: "rescue", EvFree: "free", EvAbort: "abort",
		EvProcExit: "procexit", EvClose: "close",
		EventKind(99): "EventKind(99)",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("EventKind(%d) = %q, want %q", int(k), got, want)
		}
	}
}

func TestEventLogRecordsLifecycle(t *testing.T) {
	s := newStateNoOverhead(t, 1000, FIFO{})
	mustRegister(t, s, "a", mib(700))
	mustAlloc(t, s, "a", 1, mib(600))
	if err := s.ConfirmAlloc("a", 1, 0x1, mib(600)); err != nil {
		t.Fatal(err)
	}
	mustRegister(t, s, "b", mib(600)) // grant 300
	res, _ := s.RequestAlloc("b", 2, mib(500))
	if res.Decision != Suspend {
		t.Fatalf("setup: %v", res.Decision)
	}
	// Rejected request.
	if res, _ := s.RequestAlloc("b", 2, mib(900)); res.Decision != Reject {
		t.Fatalf("setup reject: %v", res.Decision)
	}
	if _, _, err := s.Free("a", 1, 0x1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.ProcessExit("a", 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Close("a"); err != nil {
		t.Fatal(err)
	}

	var kinds []string
	for _, e := range s.Events() {
		kinds = append(kinds, e.Kind.String())
	}
	got := strings.Join(kinds, ",")
	// register a, accept, register b, suspend, reject, free, procexit,
	// close, grant (redistribution to b), resume (b's pending).
	for _, want := range []string{"register", "accept", "suspend", "reject", "free", "procexit", "close", "grant", "resume"} {
		if !strings.Contains(got, want) {
			t.Errorf("event log %q missing %q", got, want)
		}
	}
	// Sequence numbers are strictly increasing.
	events := s.Events()
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("event seq not increasing: %v then %v", events[i-1], events[i])
		}
	}
	// The grant event targets b with a's returned memory.
	found := false
	for _, e := range events {
		if e.Kind == EvGrant && e.Container == "b" && e.Amount > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no grant-to-b event in %v", events)
	}
}

func TestEventsSince(t *testing.T) {
	s := newStateNoOverhead(t, 1000, nil)
	mustRegister(t, s, "a", mib(100))
	mustRegister(t, s, "b", mib(100))
	all := s.Events()
	if len(all) != 2 {
		t.Fatalf("events = %v", all)
	}
	tail := s.EventsSince(all[0].Seq)
	if len(tail) != 1 || tail[0].Container != "b" {
		t.Fatalf("EventsSince = %v", tail)
	}
	if got := s.EventsSince(all[1].Seq); got != nil {
		t.Fatalf("EventsSince(latest) = %v, want nil", got)
	}
}

func TestEventLogRingWraps(t *testing.T) {
	// Retention is per shard, so one container's events — all on one
	// shard — exercise the wrap deterministically: register + 10
	// accepts is 11 events through a ring of 4.
	s, err := New(Config{Capacity: mib(10000), ContextOverhead: 1, EventLogSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	mustRegister(t, s, "c", mib(1000))
	for i := 0; i < 10; i++ {
		if _, err := s.RequestAlloc("c", 1, mib(1)); err != nil {
			t.Fatal(err)
		}
	}
	events := s.Events()
	if len(events) != 4 {
		t.Fatalf("retained %d events, want ring capacity 4", len(events))
	}
	// The newest four accepts survive, in Seq order.
	for i, e := range events {
		if e.Kind != EvAccept {
			t.Fatalf("ring[%d] = %v, want an accept", i, e)
		}
		if want := uint64(8 + i); e.Seq != want {
			t.Fatalf("ring[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
}

func TestEventLogDisabled(t *testing.T) {
	s, err := New(Config{Capacity: mib(100), EventLogSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	mustRegister(t, s, "a", mib(10))
	if got := s.Events(); len(got) != 0 {
		t.Fatalf("disabled log retained %v", got)
	}
}

func TestEventRecordString(t *testing.T) {
	e := EventRecord{Seq: 7, Kind: EvAccept, Container: "c1", PID: 42, Amount: mib(10)}
	got := e.String()
	for _, want := range []string{"#7", "accept", "c1", "pid=42", "10MiB"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q missing %q", got, want)
		}
	}
	e.PID = 0
	if strings.Contains(e.String(), "pid=") {
		t.Errorf("String() with no pid = %q", e.String())
	}
}

func TestRescueEventLogged(t *testing.T) {
	s, ticketB, _ := stalledSetupFT(t)
	if _, _, err := s.Close("filler"); err != nil {
		t.Fatal(err)
	}
	_ = ticketB
	found := false
	for _, e := range s.Events() {
		if e.Kind == EvRescue && e.Container == "B" {
			found = true
		}
	}
	if !found {
		t.Fatal("no rescue event logged")
	}
}

// stalledSetupFT builds the wedge scenario with fault tolerance on.
func stalledSetupFT(t *testing.T) (*State, Ticket, Ticket) {
	t.Helper()
	s, err := New(Config{
		Capacity:        mib(1000),
		ContextOverhead: 1,
		Algorithm:       RecentUse{},
		FaultTolerant:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	mustRegister(t, s, "filler", mib(500))
	mustAlloc(t, s, "filler", 9, mib(450))
	mustRegister(t, s, "B", mib(900))
	mustAlloc(t, s, "B", 1, mib(400))
	resB, _ := s.RequestAlloc("B", 1, mib(480))
	mustRegister(t, s, "C", mib(900))
	resC, _ := s.RequestAlloc("C", 2, mib(600))
	if resB.Decision != Suspend || resC.Decision != Suspend {
		t.Fatalf("setup decisions: %v/%v", resB.Decision, resC.Decision)
	}
	return s, resB.Ticket, resC.Ticket
}
