package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"convgpu/internal/bytesize"
)

// TestFastPathStress hammers the scheduler from many goroutines with
// the full operation mix — register, alloc, confirm, free, abort,
// process exit, close, meminfo, snapshots — while the fast paths are
// on (the default). Run under -race this is the fast path's aliasing
// and locking stress test; CheckInvariants is asserted throughout and
// at the end.
func TestFastPathStress(t *testing.T) {
	const (
		workers = 8
		iters   = 400
	)
	s := MustNew(Config{Capacity: bytesize.Size(workers) * bytesize.GiB})
	var wg sync.WaitGroup
	errs := make(chan error, workers+1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			id := ContainerID(fmt.Sprintf("c%d", w))
			if _, err := s.Register(id, bytesize.GiB); err != nil {
				errs <- err
				return
			}
			pid := w + 1
			addrs := make(map[uint64]bool)
			nextAddr := uint64(w)<<32 | 1
			for i := 0; i < iters; i++ {
				switch op := rng.Intn(10); {
				case op < 5: // alloc+confirm
					size := bytesize.Size(rng.Intn(1<<20) + 1)
					res, err := s.RequestAlloc(id, pid, size)
					if err != nil {
						errs <- err
						return
					}
					switch res.Decision {
					case Accept:
						addr := nextAddr
						nextAddr++
						if err := s.ConfirmAlloc(id, pid, addr, size); err != nil {
							errs <- err
							return
						}
						addrs[addr] = true
					case Suspend:
						// Single-pid workload per container never suspends
						// within its own limit, but if it does the process
						// exit below cancels the ticket. Nothing to do here.
					}
				case op < 8: // free one tracked allocation
					for addr := range addrs {
						if _, _, err := s.Free(id, pid, addr); err != nil {
							errs <- err
							return
						}
						delete(addrs, addr)
						break
					}
				case op < 9:
					if _, _, err := s.MemInfo(id); err != nil {
						errs <- err
						return
					}
				default: // process exit releases everything, restart fresh
					if _, _, err := s.ProcessExit(id, pid); err != nil {
						errs <- err
						return
					}
					addrs = make(map[uint64]bool)
				}
			}
			if _, _, err := s.Close(id); err != nil {
				errs <- err
			}
		}(w)
	}
	// A checker goroutine exercises the read-side API concurrently with
	// the fast-path traffic.
	stop := make(chan struct{})
	var checker sync.WaitGroup
	checker.Add(1)
	go func() {
		defer checker.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.CheckInvariants(); err != nil {
				errs <- err
				return
			}
			s.Snapshot()
			s.Events()
			s.TotalUsed()
		}
	}()
	wg.Wait()
	close(stop)
	checker.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if got := s.PoolFree(); got != s.Capacity() {
		t.Errorf("pool after all containers closed = %v, want %v", got, s.Capacity())
	}
	if n := s.pausedCount.Load(); n != 0 {
		t.Errorf("pausedCount after quiesce = %d, want 0", n)
	}
}

// TestFastPathEquivalence replays an identical randomized operation
// sequence against a fast-path scheduler and a DisableFastPath one:
// every decision, error, size and final snapshot must match. This pins
// the fast path to the slow path's exact semantics, including rejects,
// suspends (multi-container contention) and redistribution.
func TestFastPathEquivalence(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		fast := MustNew(Config{Capacity: 2 * bytesize.GiB})
		slow := MustNew(Config{Capacity: 2 * bytesize.GiB, DisableFastPath: true})
		rng := rand.New(rand.NewSource(seed))
		ids := []ContainerID{"a", "b", "c"}
		for _, id := range ids {
			gf, ef := fast.Register(id, bytesize.GiB)
			gs, es := slow.Register(id, bytesize.GiB)
			if gf != gs || (ef == nil) != (es == nil) {
				t.Fatalf("seed %d: register diverged", seed)
			}
		}
		nextAddr := uint64(1)
		confirmed := map[ContainerID][]uint64{}
		sizes := map[uint64]bytesize.Size{}
		for i := 0; i < 300; i++ {
			id := ids[rng.Intn(len(ids))]
			pid := rng.Intn(2) + 1
			switch rng.Intn(6) {
			case 0, 1, 2:
				size := bytesize.Size(rng.Intn(512)+1) * bytesize.MiB / 2
				rf, ef := fast.RequestAlloc(id, pid, size)
				rs, es := slow.RequestAlloc(id, pid, size)
				if rf.Decision != rs.Decision || (ef == nil) != (es == nil) {
					t.Fatalf("seed %d op %d: alloc diverged: fast=%v/%v slow=%v/%v",
						seed, i, rf.Decision, ef, rs.Decision, es)
				}
				if rf.Decision == Accept {
					addr := nextAddr
					nextAddr++
					cf := fast.ConfirmAlloc(id, pid, addr, size)
					cs := slow.ConfirmAlloc(id, pid, addr, size)
					if (cf == nil) != (cs == nil) {
						t.Fatalf("seed %d op %d: confirm diverged: %v vs %v", seed, i, cf, cs)
					}
					if cf == nil {
						confirmed[id] = append(confirmed[id], addr)
						sizes[addr] = size
					}
				}
			case 3:
				if n := len(confirmed[id]); n > 0 {
					k := rng.Intn(n)
					addr := confirmed[id][k]
					szf, uf, ef := fast.Free(id, pid, addr)
					szs, us, es := slow.Free(id, pid, addr)
					// pid may not own addr (two pids per container): errors
					// must still agree.
					if szf != szs || (ef == nil) != (es == nil) || len(uf.Admitted) != len(us.Admitted) {
						t.Fatalf("seed %d op %d: free diverged", seed, i)
					}
					if ef == nil {
						confirmed[id] = append(confirmed[id][:k], confirmed[id][k+1:]...)
					}
				}
			case 4:
				ff, tf, ef := fast.MemInfo(id)
				fs, ts, es := slow.MemInfo(id)
				if ff != fs || tf != ts || (ef == nil) != (es == nil) {
					t.Fatalf("seed %d op %d: meminfo diverged", seed, i)
				}
			case 5:
				_, uf, ef := fast.ProcessExit(id, pid)
				_, us, es := slow.ProcessExit(id, pid)
				if (ef == nil) != (es == nil) || len(uf.Admitted) != len(us.Admitted) ||
					len(uf.Cancelled) != len(us.Cancelled) {
					t.Fatalf("seed %d op %d: procexit diverged", seed, i)
				}
				confirmed[id] = nil
			}
			if err := fast.CheckInvariants(); err != nil {
				t.Fatalf("seed %d op %d: fast invariants: %v", seed, i, err)
			}
			if err := slow.CheckInvariants(); err != nil {
				t.Fatalf("seed %d op %d: slow invariants: %v", seed, i, err)
			}
		}
		sf, ss := fast.Snapshot(), slow.Snapshot()
		if len(sf) != len(ss) {
			t.Fatalf("seed %d: snapshot length diverged", seed)
		}
		for i := range sf {
			if sf[i].ID != ss[i].ID || sf[i].Grant != ss[i].Grant ||
				sf[i].Used != ss[i].Used || sf[i].Pending != ss[i].Pending {
				t.Fatalf("seed %d: container %s diverged: fast=%+v slow=%+v",
					seed, sf[i].ID, sf[i], ss[i])
			}
		}
	}
}

// TestFastFreeGateOnPaused: while any container is paused, Free must
// take the slow path so admission can run — the fast path's empty
// Update would otherwise swallow the admitted ticket.
func TestFastFreeGateOnPaused(t *testing.T) {
	s := MustNew(Config{Capacity: 200 * bytesize.MiB})
	// a soaks up pool so b's grant (80 MiB) is below its limit (180 MiB),
	// making suspension reachable inside b.
	if _, err := s.Register("a", 120*bytesize.MiB); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register("b", 180*bytesize.MiB); err != nil {
		t.Fatal(err)
	}
	// First alloc charges 10 MiB + 66 MiB context overhead = 76 ≤ 80.
	res, err := s.RequestAlloc("b", 2, 10*bytesize.MiB)
	if err != nil || res.Decision != Accept {
		t.Fatalf("b alloc 1: %+v %v", res, err)
	}
	if err := s.ConfirmAlloc("b", 2, 0xb1, 10*bytesize.MiB); err != nil {
		t.Fatal(err)
	}
	// Second alloc needs 86 > grant 80 with an empty pool: suspend.
	sus, err := s.RequestAlloc("b", 2, 10*bytesize.MiB)
	if err != nil || sus.Decision != Suspend {
		t.Fatalf("b alloc 2: %+v %v", sus, err)
	}
	if n := s.pausedCount.Load(); n != 1 {
		t.Fatalf("pausedCount = %d, want 1", n)
	}
	// b frees its first allocation: the gate must route this through the
	// slow path, whose admission pass now fits the pending request.
	_, u, err := s.Free("b", 2, 0xb1)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Admitted) != 1 || u.Admitted[0].Ticket != sus.Ticket {
		t.Fatalf("free admitted %+v, want ticket %d", u, sus.Ticket)
	}
	if n := s.pausedCount.Load(); n != 0 {
		t.Fatalf("pausedCount after admit = %d, want 0", n)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
