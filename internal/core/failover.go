package core

import (
	"time"

	"convgpu/internal/bytesize"
)

// This file defines the node failure-domain vocabulary shared between
// the cluster tier (which implements it), the daemon (which surfaces
// the admin verbs and reacts to failovers), and the observability
// layer. It lives in core so none of those packages must import the
// cluster package to talk about nodes.

// NodeState is one node's position in the membership view.
type NodeState int

const (
	// NodeUp: healthy, accepting registrations and serving traffic.
	NodeUp NodeState = iota
	// NodeSuspect: health probes are failing but the down threshold has
	// not been reached. Still serves traffic and accepts registrations.
	NodeSuspect
	// NodeDown: declared dead; its containers were failed over. The
	// slot holds a fresh, empty scheduler awaiting revival.
	NodeDown
	// NodeDraining: administratively refusing new registrations while
	// existing grants run to completion.
	NodeDraining
)

// String renders the state for logs, gauges and the nodes verb.
func (s NodeState) String() string {
	switch s {
	case NodeUp:
		return "up"
	case NodeSuspect:
		return "suspect"
	case NodeDown:
		return "down"
	case NodeDraining:
		return "draining"
	default:
		return "unknown"
	}
}

// NodeStatus describes one node in a membership view.
type NodeStatus struct {
	Index      int           `json:"index"`
	Name       string        `json:"name"`
	State      string        `json:"state"`
	Containers int           `json:"containers"`
	Capacity   bytesize.Size `json:"capacity"`
	Free       bytesize.Size `json:"free"`
	// Failovers counts how many times this node slot was declared down
	// and its containers migrated off it.
	Failovers uint64 `json:"failovers"`
}

// Membership is the admin surface a cluster-tier scheduler exposes:
// the daemon type-asserts its backend to it to answer the nodes /
// drain / revive control verbs, and the facade re-exports it.
type Membership interface {
	// NodeStatuses reports every node's membership state.
	NodeStatuses() []NodeStatus
	// Drain moves a node to draining: new registrations avoid it while
	// its existing grants complete.
	Drain(node int) error
	// Revive returns a drained or down node to service.
	Revive(node int) error
}

// TicketOutcome says what happened to one parked ticket during a node
// failover. Every pre-kill ticket of a dead node gets exactly one
// outcome — the headline invariant is that none is silently lost.
type TicketOutcome int

const (
	// TicketMigrated: re-queued on the surviving node; the request is
	// parked again under NewTicket.
	TicketMigrated TicketOutcome = iota
	// TicketAdmitted: the surviving node had room and admitted the
	// request immediately.
	TicketAdmitted
	// TicketEvicted: no surviving capacity; the caller is observably
	// rejected with ErrNodeDown.
	TicketEvicted
)

// String renders the outcome for logs and reports.
func (o TicketOutcome) String() string {
	switch o {
	case TicketMigrated:
		return "migrated"
	case TicketAdmitted:
		return "admitted"
	case TicketEvicted:
		return "evicted"
	default:
		return "unknown"
	}
}

// TicketMove is one parked ticket's journey through a failover.
type TicketMove struct {
	OldTicket Ticket
	// NewTicket is the ticket on the surviving node (TicketMigrated
	// only).
	NewTicket Ticket
	PID       int
	Size      bytesize.Size
	Outcome   TicketOutcome
}

// ContainerMove is one container's journey through a failover: either
// re-registered on node To with its parked requests re-queued, or
// evicted when no surviving node could hold its limit.
type ContainerMove struct {
	ID    ContainerID
	Limit bytesize.Size
	// Tenant is the container's tenant identity, carried across the
	// failover so the surviving node re-registers it under the same
	// quota/priority accounting (zero for the default tenant).
	Tenant Tenant
	From   int
	// To is the surviving node, or -1 when Evicted.
	To      int
	Evicted bool
	// Granted is the fresh registration's immediate grant (allocations
	// died with the node; the container restarts from a clean seat).
	Granted bytesize.Size
	Tickets []TicketMove
}

// FailoverReport is the complete, ordered account of one node failover.
// Containers appear in ID order; tickets in park order.
type FailoverReport struct {
	Node    int
	Moves   []ContainerMove
	Elapsed time.Duration
}

// FailoverSource is implemented by backends that fail nodes over; the
// daemon registers a hook to re-key parked responders, answer evicted
// tickets and rewrite session files in step with the migration.
type FailoverSource interface {
	// OnFailover installs fn, called synchronously with each failover's
	// report (while the backend's registration lock is held, so the
	// report is atomic with respect to new placements).
	OnFailover(fn func(FailoverReport))
}
