package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"convgpu/internal/bytesize"
)

// EventKind classifies scheduler events.
type EventKind int

// Event kinds, in rough lifecycle order.
const (
	EvRegister EventKind = iota // container admitted; Amount = initial grant
	EvAccept                    // allocation accepted; Amount = charged size
	EvSuspend                   // allocation paused; Amount = requested size
	EvReject                    // allocation denied; Amount = requested size
	EvResume                    // paused allocation admitted; Amount = charged size
	EvGrant                     // redistribution grant; Amount = memory given
	EvRescue                    // fault-tolerance rescue grant; Amount = memory given
	EvFree                      // cudaFree; Amount = released size
	EvAbort                     // accepted allocation aborted; Amount = returned size
	EvProcExit                  // process exit cleanup; Amount = released total
	EvClose                     // container closed; Amount = returned grant
	EvRestore                   // re-attach restore; Amount = charged size
	EvDrop                      // parked tickets dropped (connection died)
	EvPreempt                   // unused grant reclaimed by a preempting policy; Amount = memory taken
)

// NumEventKinds bounds the EventKind space so observers can index
// fixed-size per-kind tables.
const NumEventKinds = int(EvPreempt) + 1

func (k EventKind) String() string {
	switch k {
	case EvRegister:
		return "register"
	case EvAccept:
		return "accept"
	case EvSuspend:
		return "suspend"
	case EvReject:
		return "reject"
	case EvResume:
		return "resume"
	case EvGrant:
		return "grant"
	case EvRescue:
		return "rescue"
	case EvFree:
		return "free"
	case EvAbort:
		return "abort"
	case EvProcExit:
		return "procexit"
	case EvClose:
		return "close"
	case EvRestore:
		return "restore"
	case EvDrop:
		return "drop"
	case EvPreempt:
		return "preempt"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// EventRecord is one entry of the scheduler's event log.
type EventRecord struct {
	// Seq orders events totally (monotonic, never reused).
	Seq uint64
	// At is the scheduler-clock timestamp.
	At time.Time
	// Kind classifies the event.
	Kind EventKind
	// Container the event concerns.
	Container ContainerID
	// PID of the process involved, when applicable.
	PID int
	// Amount is the memory quantity the event moved (see EventKind).
	Amount bytesize.Size
	// Device is the device the emitting state schedules
	// (Config.DeviceIndex; 0 for a standalone single-device state).
	Device int
	// Ticket identifies the parked request a suspend/resume/drop event
	// concerns (0 for every other kind). Tickets are per-device.
	Ticket Ticket
}

// String renders the record for logs.
func (e EventRecord) String() string {
	if e.PID != 0 {
		return fmt.Sprintf("#%d %s %s pid=%d %v", e.Seq, e.Kind, e.Container, e.PID, e.Amount)
	}
	return fmt.Sprintf("#%d %s %s %v", e.Seq, e.Kind, e.Container, e.Amount)
}

// DefaultEventLogSize is the per-shard ring buffer capacity when Config
// leaves EventLogSize zero.
const DefaultEventLogSize = 512

// eventLog is one shard's fixed-capacity ring buffer with its own
// mutex: fast paths on different shards append concurrently, each
// holding only its shard's read lock, so no single log mutex serializes
// independent containers. Sequence numbers come from a counter shared
// by all of a State's shard logs (an atomic incremented under l.mu),
// keeping Seq values unique and monotone across the whole State even
// though the entries live in per-shard rings.
type eventLog struct {
	mu       sync.Mutex
	buf      []EventRecord
	next     int            // write position
	count    int            // filled entries
	seq      *atomic.Uint64 // shared across the State's shards
	observer func(EventRecord)
}

func newEventLog(capacity int, seq *atomic.Uint64) *eventLog {
	if capacity <= 0 {
		return &eventLog{seq: seq}
	}
	return &eventLog{buf: make([]EventRecord, capacity), seq: seq}
}

func (l *eventLog) append(e EventRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e.Seq = l.seq.Add(1)
	if l.observer != nil {
		// Fired under l.mu so one shard's records arrive in Seq order;
		// see SetObserver for the cross-shard ordering contract.
		// Observers must be fast, lock-free-or-leaf, safe for concurrent
		// invocation, and must not call back into the State.
		l.observer(e)
	}
	if len(l.buf) == 0 {
		return // disabled: sequence numbers still advance
	}
	l.buf[l.next] = e
	l.next = (l.next + 1) % len(l.buf)
	if l.count < len(l.buf) {
		l.count++
	}
}

// snapshot returns the shard's retained events, oldest first.
func (l *eventLog) snapshot() []EventRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]EventRecord, 0, l.count)
	start := l.next - l.count
	if start < 0 {
		start += len(l.buf)
	}
	for i := 0; i < l.count; i++ {
		out = append(out, l.buf[(start+i)%len(l.buf)])
	}
	return out
}

// logEvent appends to the event-log shard of the container the event
// concerns. Callers hold that container's shard lock in either mode
// (or every shard lock, on slow paths); the log's own mutex orders the
// entries within the shard.
func (s *State) logEvent(kind EventKind, id ContainerID, pid int, amount bytesize.Size) {
	s.logEventT(kind, id, pid, amount, 0)
}

// logEventT is logEvent carrying the ticket of the parked request the
// event concerns (suspend, resume, drop).
func (s *State) logEventT(kind EventKind, id ContainerID, pid int, amount bytesize.Size, ticket Ticket) {
	s.shardFor(id).events.append(EventRecord{
		At:        s.cfg.Clock.Now(),
		Kind:      kind,
		Container: id,
		PID:       pid,
		Amount:    amount,
		Device:    s.cfg.DeviceIndex,
		Ticket:    ticket,
	})
}

// Events returns the retained event log, oldest first — the sequenced
// merge of every shard's ring, ordered by Seq. Each shard retains up to
// Config.EventLogSize entries (DefaultEventLogSize when unset; negative
// disables retention), so a busy shard wrapping its ring never evicts
// another container's history.
func (s *State) Events() []EventRecord {
	var out []EventRecord
	for i := range s.shards {
		out = append(out, s.shards[i].events.snapshot()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// SetObserver installs fn to receive every event record as it is
// logged, with Seq already assigned. Ordering contract: records of one
// container arrive in Seq order, and any two events separated by a
// memory-moving (write-locked) operation arrive in Seq order; only
// fast-path records of containers on different shards may reach fn
// concurrently and slightly out of global Seq order. fn therefore must
// be safe for concurrent invocation. It runs with a shard log's mutex
// held on the scheduler's request paths, so it must be cheap (atomic
// counter bumps, ring appends) and must never call back into the State.
// A nil fn removes the observer.
func (s *State) SetObserver(fn func(EventRecord)) {
	for i := range s.shards {
		l := s.shards[i].events
		l.mu.Lock()
		l.observer = fn
		l.mu.Unlock()
	}
}

// AdmitObservation describes one admitted allocation request at the
// moment the scheduler let it through: immediately (Ticket 0, Waited 0)
// or after a park, in which case Waited is the time the request spent
// suspended before a redistribution released it. It is the per-request
// signal SLO-tail evaluation needs — the event log records that an
// admission happened, this hook records how long the requester waited
// for it — and it fires synchronously on the admitting path, so a
// deadline judge sees the admission before the response leaves the
// scheduler.
type AdmitObservation struct {
	// Container the request belonged to.
	Container ContainerID
	// PID of the requesting process.
	PID int
	// Ticket the request was parked under; 0 for immediate accepts.
	Ticket Ticket
	// Size is the raw requested size (overhead excluded).
	Size bytesize.Size
	// Device is the admitting scheduler's device index.
	Device int
	// Waited is how long the request was suspended before admission
	// (zero when it was accepted in place).
	Waited time.Duration
}

// SetAdmitObserver installs fn to receive one AdmitObservation per
// admitted allocation request — immediate accepts and resumed parks
// alike. Like SetObserver, fn runs on the admitting path (under the
// scheduler's locks) and must be cheap, concurrency-safe, and must
// never call back into the State. A nil fn removes the observer.
func (s *State) SetAdmitObserver(fn func(AdmitObservation)) {
	s.lockAll()
	s.admitObs = fn
	s.unlockAll()
}

// observeAdmit fires the admit observer, if any. Callers hold at least
// the container's shard read lock, which excludes SetAdmitObserver's
// write-locked store.
func (s *State) observeAdmit(id ContainerID, pid int, t Ticket, size bytesize.Size, waited time.Duration) {
	if s.admitObs != nil {
		s.admitObs(AdmitObservation{
			Container: id, PID: pid, Ticket: t, Size: size,
			Device: s.cfg.DeviceIndex, Waited: waited,
		})
	}
}

// PausedContainers returns the number of containers with at least one
// pending (suspended) request — the scheduler's queue depth in
// containers. Lock-free; safe to call from metric scrapes.
func (s *State) PausedContainers() int {
	return int(s.pausedCount.Load())
}

// EventsSince returns retained events with Seq > after, oldest first —
// the daemon's status loop tails the log with this.
func (s *State) EventsSince(after uint64) []EventRecord {
	all := s.Events()
	for i, e := range all {
		if e.Seq > after {
			return all[i:]
		}
	}
	return nil
}
