package core

import (
	"fmt"
	"sync"
	"time"

	"convgpu/internal/bytesize"
)

// EventKind classifies scheduler events.
type EventKind int

// Event kinds, in rough lifecycle order.
const (
	EvRegister EventKind = iota // container admitted; Amount = initial grant
	EvAccept                    // allocation accepted; Amount = charged size
	EvSuspend                   // allocation paused; Amount = requested size
	EvReject                    // allocation denied; Amount = requested size
	EvResume                    // paused allocation admitted; Amount = charged size
	EvGrant                     // redistribution grant; Amount = memory given
	EvRescue                    // fault-tolerance rescue grant; Amount = memory given
	EvFree                      // cudaFree; Amount = released size
	EvAbort                     // accepted allocation aborted; Amount = returned size
	EvProcExit                  // process exit cleanup; Amount = released total
	EvClose                     // container closed; Amount = returned grant
	EvRestore                   // re-attach restore; Amount = charged size
	EvDrop                      // parked tickets dropped (connection died)
)

// NumEventKinds bounds the EventKind space so observers can index
// fixed-size per-kind tables.
const NumEventKinds = int(EvDrop) + 1

func (k EventKind) String() string {
	switch k {
	case EvRegister:
		return "register"
	case EvAccept:
		return "accept"
	case EvSuspend:
		return "suspend"
	case EvReject:
		return "reject"
	case EvResume:
		return "resume"
	case EvGrant:
		return "grant"
	case EvRescue:
		return "rescue"
	case EvFree:
		return "free"
	case EvAbort:
		return "abort"
	case EvProcExit:
		return "procexit"
	case EvClose:
		return "close"
	case EvRestore:
		return "restore"
	case EvDrop:
		return "drop"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// EventRecord is one entry of the scheduler's event log.
type EventRecord struct {
	// Seq orders events totally (monotonic, never reused).
	Seq uint64
	// At is the scheduler-clock timestamp.
	At time.Time
	// Kind classifies the event.
	Kind EventKind
	// Container the event concerns.
	Container ContainerID
	// PID of the process involved, when applicable.
	PID int
	// Amount is the memory quantity the event moved (see EventKind).
	Amount bytesize.Size
	// Device is the device the emitting state schedules
	// (Config.DeviceIndex; 0 for a standalone single-device state).
	Device int
	// Ticket identifies the parked request a suspend/resume/drop event
	// concerns (0 for every other kind). Tickets are per-device.
	Ticket Ticket
}

// String renders the record for logs.
func (e EventRecord) String() string {
	if e.PID != 0 {
		return fmt.Sprintf("#%d %s %s pid=%d %v", e.Seq, e.Kind, e.Container, e.PID, e.Amount)
	}
	return fmt.Sprintf("#%d %s %s %v", e.Seq, e.Kind, e.Container, e.Amount)
}

// DefaultEventLogSize is the ring buffer capacity when Config leaves
// EventLogSize zero.
const DefaultEventLogSize = 512

// eventLog is a fixed-capacity ring buffer with its own mutex: fast
// paths append while holding only the state's read lock, so the log
// cannot rely on the state mutex for ordering. Sequence numbers are
// assigned under l.mu, keeping the log totally ordered regardless of
// which path logged.
type eventLog struct {
	mu       sync.Mutex
	buf      []EventRecord
	next     int // write position
	count    int // filled entries
	seq      uint64
	observer func(EventRecord)
}

func newEventLog(capacity int) *eventLog {
	if capacity <= 0 {
		return &eventLog{}
	}
	return &eventLog{buf: make([]EventRecord, capacity)}
}

func (l *eventLog) append(e EventRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	e.Seq = l.seq
	if l.observer != nil {
		// Fired under l.mu so the observer sees records in Seq order.
		// Observers must be fast, lock-free-or-leaf, and must not call
		// back into the State.
		l.observer(e)
	}
	if len(l.buf) == 0 {
		return // disabled: sequence numbers still advance
	}
	l.buf[l.next] = e
	l.next = (l.next + 1) % len(l.buf)
	if l.count < len(l.buf) {
		l.count++
	}
}

// snapshot returns the retained events, oldest first.
func (l *eventLog) snapshot() []EventRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]EventRecord, 0, l.count)
	start := l.next - l.count
	if start < 0 {
		start += len(l.buf)
	}
	for i := 0; i < l.count; i++ {
		out = append(out, l.buf[(start+i)%len(l.buf)])
	}
	return out
}

// logEvent appends to the state's event log. Callers hold the state
// lock in either mode; the log's own mutex orders the entries.
func (s *State) logEvent(kind EventKind, id ContainerID, pid int, amount bytesize.Size) {
	s.logEventT(kind, id, pid, amount, 0)
}

// logEventT is logEvent carrying the ticket of the parked request the
// event concerns (suspend, resume, drop).
func (s *State) logEventT(kind EventKind, id ContainerID, pid int, amount bytesize.Size, ticket Ticket) {
	s.events.append(EventRecord{
		At:        s.cfg.Clock.Now(),
		Kind:      kind,
		Container: id,
		PID:       pid,
		Amount:    amount,
		Device:    s.cfg.DeviceIndex,
		Ticket:    ticket,
	})
}

// Events returns the retained event log, oldest first. The log is a
// ring of Config.EventLogSize entries (DefaultEventLogSize when unset;
// negative disables retention).
func (s *State) Events() []EventRecord {
	return s.events.snapshot()
}

// SetObserver installs fn to receive every event record as it is
// logged, in total Seq order, with Seq already assigned. fn runs with
// the event log's mutex held on the scheduler's request paths, so it
// must be cheap (atomic counter bumps, ring appends) and must never
// call back into the State. A nil fn removes the observer.
func (s *State) SetObserver(fn func(EventRecord)) {
	s.events.mu.Lock()
	s.events.observer = fn
	s.events.mu.Unlock()
}

// PausedContainers returns the number of containers with at least one
// pending (suspended) request — the scheduler's queue depth in
// containers. Lock-free; safe to call from metric scrapes.
func (s *State) PausedContainers() int {
	return int(s.pausedCount.Load())
}

// EventsSince returns retained events with Seq > after, oldest first —
// the daemon's status loop tails the log with this.
func (s *State) EventsSince(after uint64) []EventRecord {
	all := s.events.snapshot()
	for i, e := range all {
		if e.Seq > after {
			return all[i:]
		}
	}
	return nil
}
