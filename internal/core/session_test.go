package core

import (
	"errors"
	"testing"

	"convgpu/internal/bytesize"
)

func sMiB(n int) bytesize.Size { return bytesize.Size(n) * bytesize.MiB }

func newSessionState(t *testing.T, capacity bytesize.Size) *State {
	t.Helper()
	return MustNew(Config{Capacity: capacity, ContextOverhead: 1})
}

func TestEnsureRegisteredIdempotent(t *testing.T) {
	st := newSessionState(t, sMiB(1000))
	g1, err := st.EnsureRegistered("c", sMiB(400))
	if err != nil {
		t.Fatal(err)
	}
	if g1 != sMiB(400) {
		t.Fatalf("first grant = %v", g1)
	}
	// Re-register with the same limit: the grant must be reported, not
	// granted again (no double-counting against the pool).
	g2, err := st.EnsureRegistered("c", sMiB(400))
	if err != nil {
		t.Fatal(err)
	}
	if g2 != g1 {
		t.Fatalf("re-register grant = %v, want %v", g2, g1)
	}
	if free := st.PoolFree(); free != sMiB(600) {
		t.Fatalf("pool = %v after idempotent re-register, want 600MiB", free)
	}
	if _, err := st.EnsureRegistered("c", sMiB(500)); !errors.Is(err, ErrLimitMismatch) {
		t.Fatalf("limit change err = %v", err)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreRebuildsAccounting(t *testing.T) {
	// A fresh state standing in for a restarted scheduler: the wrapper
	// replays its live allocation and the accounting comes back.
	st := newSessionState(t, sMiB(1000))
	if _, err := st.Register("c", sMiB(400)); err != nil {
		t.Fatal(err)
	}
	if err := st.Restore("c", 1, 0xA0, sMiB(100)); err != nil {
		t.Fatal(err)
	}
	info, err := st.Info("c")
	if err != nil {
		t.Fatal(err)
	}
	if info.Used != sMiB(100)+1 { // alloc + first-restore context overhead
		t.Fatalf("used after restore = %v", info.Used)
	}
	// Replaying the same restore is a no-op, not a second charge.
	if err := st.Restore("c", 1, 0xA0, sMiB(100)); err != nil {
		t.Fatal(err)
	}
	info, _ = st.Info("c")
	if info.Used != sMiB(100)+1 {
		t.Fatalf("used after replayed restore = %v", info.Used)
	}
	// A conflicting size for a tracked address is a divergence, not a
	// silent overwrite.
	if err := st.Restore("c", 1, 0xA0, sMiB(50)); err == nil {
		t.Fatal("conflicting restore succeeded")
	}
	// The restored allocation behaves like a confirmed one: free works.
	if _, _, err := st.Free("c", 1, 0xA0); err != nil {
		t.Fatal(err)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreFailsClosed(t *testing.T) {
	st := newSessionState(t, sMiB(1000))
	if _, err := st.Register("c", sMiB(400)); err != nil {
		t.Fatal(err)
	}
	// Over the container's limit: the scheduler refuses to fabricate
	// capacity, and nothing is charged.
	if err := st.Restore("c", 1, 0xA0, sMiB(500)); !errors.Is(err, ErrRestoreInfeasible) {
		t.Fatalf("over-limit restore err = %v", err)
	}
	if info, _ := st.Info("c"); info.Used != 0 {
		t.Fatalf("used after failed restore = %v", info.Used)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRestorePullsFromPool(t *testing.T) {
	// A restarted scheduler may have re-granted the container less than
	// its usage (pool contention). Restore tops the grant up from the
	// pool, keeping Σ grants ≤ capacity.
	st := newSessionState(t, sMiB(1000))
	if _, err := st.Register("a", sMiB(700)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Register("b", sMiB(600)); err != nil {
		t.Fatal(err) // b gets a partial 300MiB grant, pool is empty
	}
	// 350MiB exceeds b's 300MiB grant and the pool has nothing to top it
	// up with: the restore fails closed rather than fabricate capacity.
	if err := st.Restore("b", 1, 0xB0, sMiB(350)); !errors.Is(err, ErrRestoreInfeasible) {
		t.Fatalf("restore with empty pool err = %v", err)
	}
	if info, _ := st.Info("b"); info.Used != 0 {
		t.Fatalf("b used after failed restore = %v", info.Used)
	}
	// a leaves, returning its 700MiB grant to the pool; the same restore
	// now succeeds by pulling the grant top-up from the pool.
	if _, _, err := st.Close("a"); err != nil {
		t.Fatal(err)
	}
	if err := st.Restore("b", 1, 0xB0, sMiB(350)); err != nil {
		t.Fatal(err)
	}
	info, _ := st.Info("b")
	if info.Used != sMiB(350)+1 { // alloc + context overhead
		t.Fatalf("b used = %v", info.Used)
	}
	if info.Grant < info.Used {
		t.Fatalf("b grant %v < used %v after pool top-up", info.Grant, info.Used)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDropPendingReleasesTicket(t *testing.T) {
	st := newSessionState(t, sMiB(1000))
	if _, err := st.Register("a", sMiB(700)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Register("b", sMiB(600)); err != nil {
		t.Fatal(err) // partial 300MiB grant
	}
	if res, err := st.RequestAlloc("a", 1, sMiB(600)); err != nil || res.Decision != Accept {
		t.Fatalf("a alloc: %+v %v", res, err)
	}
	res, err := st.RequestAlloc("b", 2, sMiB(500))
	if err != nil || res.Decision != Suspend {
		t.Fatalf("b alloc: %+v %v", res, err)
	}
	// The connection the 500MiB response was parked on drops.
	if _, err := st.DropPending("b", []Ticket{res.Ticket}); err != nil {
		t.Fatal(err)
	}
	if info, _ := st.Info("b"); info.Pending != 0 || info.Suspended {
		t.Fatalf("b after drop = %+v", info)
	}
	// The dropped ticket must never resurface: a's exit frees 700MiB,
	// and the resulting redistribution has nothing of b's to admit.
	_, u, err := st.Close("a")
	if err != nil {
		t.Fatal(err)
	}
	for _, adm := range u.Admitted {
		if adm.Ticket == res.Ticket {
			t.Fatalf("dropped ticket %d re-admitted: %+v", res.Ticket, u)
		}
	}
	// b itself is fine: a fresh request (the wrapper retrying after its
	// reconnect) now succeeds against the freed capacity.
	if res, err := st.RequestAlloc("b", 2, sMiB(500)); err != nil || res.Decision != Accept {
		t.Fatalf("b retry: %+v %v", res, err)
	}
	// Idempotent: dropping again (or unknown tickets / containers) no-ops.
	if u, err := st.DropPending("b", []Ticket{res.Ticket}); err != nil || len(u.Admitted) != 0 {
		t.Fatalf("second drop: %+v %v", u, err)
	}
	if _, err := st.DropPending("ghost", []Ticket{1}); err != nil {
		t.Fatalf("drop on unknown container: %v", err)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
