package core

import (
	"testing"

	"convgpu/internal/bytesize"
)

func mib(n int) bytesize.Size { return bytesize.Size(n) * bytesize.MiB }

func cands() []Candidate {
	return []Candidate{
		{ID: "a", CreatedSeq: 1, SuspendSeq: 30, Deficit: mib(1000)},
		{ID: "b", CreatedSeq: 2, SuspendSeq: 40, Deficit: mib(300)},
		{ID: "c", CreatedSeq: 3, SuspendSeq: 10, Deficit: mib(500)},
		{ID: "d", CreatedSeq: 4, SuspendSeq: 20, Deficit: mib(800)},
	}
}

func TestNewAlgorithm(t *testing.T) {
	for _, name := range []string{"fifo", "bestfit", "bf", "recentuse", "ru", "random", "rand", "FIFO", "Best-Fit"} {
		a, err := NewAlgorithm(name, 1)
		if err != nil {
			t.Errorf("NewAlgorithm(%q): %v", name, err)
			continue
		}
		if a == nil {
			t.Errorf("NewAlgorithm(%q) returned nil", name)
		}
	}
	if _, err := NewAlgorithm("lru", 1); err == nil {
		t.Error("NewAlgorithm(lru) should fail")
	}
}

func TestAlgorithmNamesOrder(t *testing.T) {
	want := []string{"fifo", "bestfit", "recentuse", "random"}
	got := AlgorithmNames()
	if len(got) != len(want) {
		t.Fatalf("AlgorithmNames() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AlgorithmNames() = %v, want %v", got, want)
		}
	}
}

func TestFIFOPicksOldest(t *testing.T) {
	if i := (FIFO{}).Pick(mib(100), cands()); i != 0 {
		t.Fatalf("FIFO picked index %d, want 0 (oldest)", i)
	}
	// Order independence.
	cs := cands()
	cs[0], cs[3] = cs[3], cs[0]
	if i := (FIFO{}).Pick(mib(100), cs); cs[i].ID != "a" {
		t.Fatalf("FIFO picked %s, want a", cs[i].ID)
	}
}

func TestBestFitPicksLargestFitting(t *testing.T) {
	// Pool 600: deficits <= 600 are b(300) and c(500); the closest from
	// below is c.
	if i := (BestFit{}).Pick(mib(600), cands()); cands()[i].ID != "c" {
		t.Fatalf("BestFit picked %s, want c", cands()[i].ID)
	}
	// Pool 2000: everything fits; the closest is a(1000).
	if i := (BestFit{}).Pick(mib(2000), cands()); cands()[i].ID != "a" {
		t.Fatalf("BestFit picked %s, want a", cands()[i].ID)
	}
	// Exact fit wins.
	if i := (BestFit{}).Pick(mib(800), cands()); cands()[i].ID != "d" {
		t.Fatalf("BestFit picked %s, want d", cands()[i].ID)
	}
}

func TestBestFitFallbackLeastDeficit(t *testing.T) {
	// Pool smaller than every deficit: pick least insufficient (b).
	if i := (BestFit{}).Pick(mib(100), cands()); cands()[i].ID != "b" {
		t.Fatalf("BestFit fallback picked %s, want b", cands()[i].ID)
	}
}

func TestBestFitTieBreaksByAge(t *testing.T) {
	cs := []Candidate{
		{ID: "young", CreatedSeq: 9, Deficit: mib(200)},
		{ID: "old", CreatedSeq: 1, Deficit: mib(200)},
	}
	if i := (BestFit{}).Pick(mib(500), cs); cs[i].ID != "old" {
		t.Fatalf("BestFit tie picked %s, want old", cs[i].ID)
	}
	if i := (BestFit{}).Pick(mib(50), cs); cs[i].ID != "old" {
		t.Fatalf("BestFit fallback tie picked %s, want old", cs[i].ID)
	}
}

func TestRecentUsePicksMostRecentlySuspended(t *testing.T) {
	if i := (RecentUse{}).Pick(mib(100), cands()); cands()[i].ID != "b" {
		t.Fatalf("RecentUse picked %s, want b (suspendSeq 40)", cands()[i].ID)
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	a1 := NewRandom(42)
	a2 := NewRandom(42)
	for i := 0; i < 50; i++ {
		p1 := a1.Pick(mib(100), cands())
		p2 := a2.Pick(mib(100), cands())
		if p1 != p2 {
			t.Fatalf("same seed diverged at draw %d: %d vs %d", i, p1, p2)
		}
		if p1 < 0 || p1 >= 4 {
			t.Fatalf("Random picked out-of-range index %d", p1)
		}
	}
}

func TestRandomCoversAllCandidates(t *testing.T) {
	a := NewRandom(7)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[a.Pick(mib(100), cands())] = true
	}
	for i := 0; i < 4; i++ {
		if !seen[i] {
			t.Fatalf("Random never picked index %d in 200 draws", i)
		}
	}
}

func TestRandomEmpty(t *testing.T) {
	if i := NewRandom(1).Pick(mib(100), nil); i != -1 {
		t.Fatalf("Random on empty candidates = %d, want -1", i)
	}
}

func TestRandomOrderIndependentDistribution(t *testing.T) {
	// The draw must depend on creation order, not slice order.
	a1 := NewRandom(99)
	a2 := NewRandom(99)
	cs1 := cands()
	cs2 := cands()
	cs2[0], cs2[3] = cs2[3], cs2[0]
	for i := 0; i < 50; i++ {
		id1 := cs1[a1.Pick(mib(100), cs1)].ID
		id2 := cs2[a2.Pick(mib(100), cs2)].ID
		if id1 != id2 {
			t.Fatalf("draw %d: %s vs %s — slice order changed the pick", i, id1, id2)
		}
	}
}

func TestAlgorithmNameMethods(t *testing.T) {
	cases := map[string]Algorithm{
		"fifo":      FIFO{},
		"bestfit":   BestFit{},
		"recentuse": RecentUse{},
		"random":    NewRandom(0),
	}
	for want, a := range cases {
		if got := a.Name(); got != want {
			t.Errorf("%T.Name() = %q, want %q", a, got, want)
		}
	}
}
