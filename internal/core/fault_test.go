package core

import (
	"math/rand"
	"testing"

	"convgpu/internal/bytesize"
)

// stalledSetup reproduces the TestStalledDetection scenario: Recent-Use
// hands everything to C, which cannot resume, while B (holding real
// usage) starves — a genuine wedge without fault tolerance.
func stalledSetup(t *testing.T, faultTolerant bool) (*State, Ticket, Ticket) {
	t.Helper()
	s, err := New(Config{
		Capacity:        mib(1000),
		ContextOverhead: 1,
		Algorithm:       RecentUse{},
		FaultTolerant:   faultTolerant,
	})
	if err != nil {
		t.Fatal(err)
	}
	mustRegister(t, s, "filler", mib(500))
	mustAlloc(t, s, "filler", 9, mib(450))
	mustRegister(t, s, "B", mib(900))
	mustAlloc(t, s, "B", 1, mib(400))
	resB, _ := s.RequestAlloc("B", 1, mib(480))
	mustRegister(t, s, "C", mib(900))
	resC, _ := s.RequestAlloc("C", 2, mib(600))
	if resB.Decision != Suspend || resC.Decision != Suspend {
		t.Fatalf("setup decisions: %v/%v", resB.Decision, resC.Decision)
	}
	return s, resB.Ticket, resC.Ticket
}

func TestFaultToleranceRescuesWedge(t *testing.T) {
	// Without fault tolerance the close wedges (proved by
	// TestStalledDetection); with it, the rescue pass admits B — the
	// feasible request — even though Recent-Use would never pick it.
	s, ticketB, _ := stalledSetup(t, true)
	_, u, err := s.Close("filler")
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Admitted) != 1 || u.Admitted[0].Container != "B" || u.Admitted[0].Ticket != ticketB {
		t.Fatalf("admitted = %+v, want B's ticket %d", u.Admitted, ticketB)
	}
	if s.Stalled() {
		t.Fatal("system stalled despite fault tolerance")
	}
	checkInv(t, s)
	// B eventually finishes; C then resumes normally.
	if _, u, err = s.Close("B"); err != nil {
		t.Fatal(err)
	}
	if len(u.Admitted) != 1 || u.Admitted[0].Container != "C" {
		t.Fatalf("after B's close, admitted = %+v, want C", u.Admitted)
	}
	checkInv(t, s)
}

func TestFaultToleranceOffStillWedges(t *testing.T) {
	s, _, _ := stalledSetup(t, false)
	if _, u, err := s.Close("filler"); err != nil {
		t.Fatal(err)
	} else if len(u.Admitted) != 0 {
		t.Fatalf("admitted = %+v, want none without fault tolerance", u.Admitted)
	}
	if !s.Stalled() {
		t.Fatal("expected the wedge without fault tolerance")
	}
}

func TestFaultToleranceIdleWhenPolicyWorks(t *testing.T) {
	// When the algorithm admits something, the rescue never runs: the
	// policy's choice stands.
	s, err := New(Config{Capacity: mib(1000), ContextOverhead: 1, Algorithm: FIFO{}, FaultTolerant: true})
	if err != nil {
		t.Fatal(err)
	}
	mustRegister(t, s, "a", mib(700))
	mustAlloc(t, s, "a", 1, mib(600))
	mustRegister(t, s, "older", mib(600))
	resOld, _ := s.RequestAlloc("older", 2, mib(500))
	mustRegister(t, s, "newer", mib(300))
	resNew, _ := s.RequestAlloc("newer", 3, mib(100))
	if resOld.Decision != Suspend || resNew.Decision != Suspend {
		t.Fatalf("setup: %v/%v", resOld.Decision, resNew.Decision)
	}
	_, u, err := s.Close("a")
	if err != nil {
		t.Fatal(err)
	}
	// FIFO admits the older first (policy order, not smallest-charge
	// rescue order).
	if len(u.Admitted) < 1 || u.Admitted[0].Container != "older" {
		t.Fatalf("admitted = %+v, want FIFO order (older first)", u.Admitted)
	}
	checkInv(t, s)
}

func TestFaultTolerancePersistentGrantsNeverWedge(t *testing.T) {
	// The brutal combination: persistent grants (which wedge RU/Random
	// on the Fig. 7 workload) plus fault tolerance. Random sequences of
	// single-allocation containers must always drain.
	for _, algName := range AlgorithmNames() {
		algName := algName
		t.Run(algName, func(t *testing.T) {
			alg, err := NewAlgorithm(algName, 3)
			if err != nil {
				t.Fatal(err)
			}
			s, err := New(Config{
				Capacity:         mib(5120),
				ContextOverhead:  mib(66),
				Algorithm:        alg,
				PersistentGrants: true,
				FaultTolerant:    true,
			})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(99))
			type job struct {
				id     ContainerID
				pid    int
				size   bytesize.Size
				ticket Ticket
				state  string // running, waiting, done
			}
			var jobs []*job
			admit := func(u Update) {
				for _, a := range u.Admitted {
					for _, j := range jobs {
						if j.id == a.Container && j.ticket == a.Ticket && j.state == "waiting" {
							j.state = "running"
							if err := s.ConfirmAlloc(j.id, j.pid, uint64(j.pid)<<16, j.size); err != nil {
								t.Fatal(err)
							}
						}
					}
				}
			}
			// Launch 40 random single-allocation jobs.
			for i := 0; i < 40; i++ {
				size := mib((rng.Intn(40) + 1) * 100)
				j := &job{
					id:   ContainerID("j" + itoa(i)),
					pid:  1000 + i,
					size: size,
				}
				if _, err := s.Register(j.id, size+mib(66)); err != nil {
					t.Fatal(err)
				}
				res, err := s.RequestAlloc(j.id, j.pid, size)
				if err != nil {
					t.Fatal(err)
				}
				switch res.Decision {
				case Accept:
					j.state = "running"
					if err := s.ConfirmAlloc(j.id, j.pid, uint64(j.pid)<<16, size); err != nil {
						t.Fatal(err)
					}
				case Suspend:
					j.state = "waiting"
					j.ticket = res.Ticket
				default:
					t.Fatalf("job %d rejected its own limit-sized request", i)
				}
				jobs = append(jobs, j)
				checkInv(t, s)
			}
			// Finish running jobs in random order until everything drains.
			for guard := 0; guard < 10000; guard++ {
				var running []*job
				for _, j := range jobs {
					if j.state == "running" {
						running = append(running, j)
					}
				}
				if len(running) == 0 {
					break
				}
				j := running[rng.Intn(len(running))]
				if _, u, err := s.ProcessExit(j.id, j.pid); err != nil {
					t.Fatal(err)
				} else {
					admit(u)
				}
				if _, u, err := s.Close(j.id); err != nil {
					t.Fatal(err)
				} else {
					admit(u)
				}
				j.state = "done"
				checkInv(t, s)
			}
			for _, j := range jobs {
				if j.state != "done" {
					t.Fatalf("job %s wedged in state %s despite fault tolerance", j.id, j.state)
				}
			}
			if s.PoolFree() != mib(5120) {
				t.Fatalf("pool = %v after drain", s.PoolFree())
			}
		})
	}
}
