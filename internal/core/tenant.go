package core

import (
	"fmt"
	"sort"

	"convgpu/internal/bytesize"
)

// Tenant is the identity a container registers under when the scheduler
// is shared by more than one workload owner. The zero Tenant (empty
// Name) is the default tenant: containers registered through the plain
// Register path carry it, every tenant-aware code path treats it as
// exempt, and a scheduler that has only ever seen the zero Tenant
// behaves byte-identically to the single-tenant scheduler.
//
// Weight orders tenants under the weighted fair-share wake policy
// (zero or negative reads as 1). Priority orders tenants under the
// priority wake policy and entitles higher-priority tenants to preempt
// unused grants of strictly lower ones. Quota, when positive, is a hard
// per-device cap on the tenant's summed grants — enforced at admit,
// top-up, redistribution, restore and rescue time. Guarantee, when
// positive, is a soft reservation: pool memory is held back from other
// tenants while this tenant's summed grants sit below it.
type Tenant struct {
	Name      string
	Weight    int
	Priority  int
	Quota     bytesize.Size
	Guarantee bytesize.Size
}

// TenantUsage aggregates one named tenant's scheduler state on a
// device (or, via Router.Tenants, across devices and nodes).
type TenantUsage struct {
	Name       string        `json:"name"`
	Weight     int           `json:"weight,omitempty"`
	Priority   int           `json:"priority,omitempty"`
	Quota      bytesize.Size `json:"quota,omitempty"`
	Guarantee  bytesize.Size `json:"guarantee,omitempty"`
	Containers int           `json:"containers"`
	Suspended  int           `json:"suspended,omitempty"`
	Grant      bytesize.Size `json:"grant"`
	Used       bytesize.Size `json:"used"`
	Pending    int           `json:"pending,omitempty"`
}

// Holder describes a container holding grant, as the preemption hook
// sees it: identity, tenant attributes, and the memory position.
type Holder struct {
	ID         ContainerID
	Tenant     string
	Weight     int
	Priority   int
	Grant      bytesize.Size
	Used       bytesize.Size
	CreatedSeq uint64
}

// Preemptor is the optional interface a wake-order Algorithm implements
// to reclaim unused grant from running containers on behalf of a
// request that would otherwise suspend. Victims returns the containers
// to reclaim from, in reclaim order; the scheduler takes at most
// grant-used from each until need is covered. Returning nil declines.
// Victims must not mutate its arguments.
type Preemptor interface {
	Victims(need bytesize.Size, req Holder, holders []Holder) []ContainerID
}

// unboundedQuota stands in for "no cap" in headroom arithmetic.
const unboundedQuota = bytesize.Size(1) << 62

// tenantGrantSumsLocked sums grants per tenant name (the default
// tenant's containers aggregate under ""). Callers hold lockAll.
func (s *State) tenantGrantSumsLocked() map[string]bytesize.Size {
	sums := make(map[string]bytesize.Size)
	for _, c := range s.allContainersLocked() {
		sums[c.tenant.Name] += c.grant
	}
	return sums
}

// quotaHeadroomLocked returns how much more grant tenant t may hold on
// this device before its quota is exhausted. The default tenant and
// tenants without a quota have unbounded headroom. Callers hold
// lockAll.
func (s *State) quotaHeadroomLocked(t Tenant) bytesize.Size {
	if t.Name == "" || t.Quota <= 0 {
		return unboundedQuota
	}
	var sum bytesize.Size
	for _, c := range s.allContainersLocked() {
		if c.tenant.Name == t.Name {
			sum += c.grant
		}
	}
	if sum >= t.Quota {
		return 0
	}
	return t.Quota - sum
}

// availableForLocked returns the pool memory tenant t may draw on after
// honoring other tenants' guarantees: pool minus the summed shortfall
// (guarantee - grants, floored at zero) of every *other* named tenant,
// floored at zero. Callers hold lockAll.
func (s *State) availableForLocked(t Tenant) bytesize.Size {
	reserved := bytesize.Size(0)
	seen := make(map[string]bool)
	for _, c := range s.allContainersLocked() {
		name := c.tenant.Name
		if name == "" || name == t.Name || seen[name] || c.tenant.Guarantee <= 0 {
			continue
		}
		seen[name] = true
		var sum bytesize.Size
		for _, d := range s.allContainersLocked() {
			if d.tenant.Name == name {
				sum += d.grant
			}
		}
		if sum < c.tenant.Guarantee {
			reserved += c.tenant.Guarantee - sum
		}
	}
	if reserved >= s.pool {
		return 0
	}
	return s.pool - reserved
}

// clampTakeLocked limits how much pool memory container c may move into
// its grant right now: the requested take, capped by c's tenant quota
// headroom (hard) and by the pool share left after other tenants'
// guarantees (soft). Callers hold lockAll and have already capped take
// by the pool itself.
func (s *State) clampTakeLocked(c *containerState, take bytesize.Size) bytesize.Size {
	if hr := s.quotaHeadroomLocked(c.tenant); take > hr {
		take = hr
	}
	if avail := s.availableForLocked(c.tenant); take > avail {
		take = avail
	}
	return take
}

// RegisterTenant is Register carrying a tenant identity. Containers of
// the zero Tenant behave exactly as plain Register's.
func (s *State) RegisterTenant(id ContainerID, limit bytesize.Size, t Tenant) (bytesize.Size, error) {
	s.lockAll()
	defer s.unlockAll()
	if _, ok := s.lookupLocked(id); ok {
		return 0, fmt.Errorf("%w: %s", ErrDuplicateContainer, id)
	}
	return s.registerLocked(id, limit, t)
}

// EnsureRegisteredTenant is EnsureRegistered carrying a tenant
// identity. For an already-known container the limit must match; the
// tenant binding is refreshed when the names agree (or the container
// had none), and an existing non-empty binding is kept otherwise —
// recovery replays must not silently migrate a container between
// tenants.
func (s *State) EnsureRegisteredTenant(id ContainerID, limit bytesize.Size, t Tenant) (bytesize.Size, error) {
	s.lockAll()
	defer s.unlockAll()
	if c, ok := s.lookupLocked(id); ok {
		if c.limit != limit {
			return 0, fmt.Errorf("%w: %s has %v, got %v", ErrLimitMismatch, id, c.limit, limit)
		}
		s.adoptTenantLocked(c, t)
		return c.grant, nil
	}
	return s.registerLocked(id, limit, t)
}

// adoptTenantLocked refreshes c's tenant binding with t per the
// EnsureRegisteredTenant contract. Callers hold lockAll.
func (s *State) adoptTenantLocked(c *containerState, t Tenant) {
	if t.Name == "" || (c.tenant.Name != "" && c.tenant.Name != t.Name) {
		return
	}
	if c.tenant.Name == "" {
		s.namedTenants++
	}
	c.tenant = t
}

// Tenants aggregates per-tenant usage for every named tenant on this
// device, sorted by name. Containers of the default tenant are not
// listed.
func (s *State) Tenants() []TenantUsage {
	s.lockAll()
	defer s.unlockAll()
	byName := make(map[string]*TenantUsage)
	for _, c := range s.allContainersLocked() {
		if c.tenant.Name == "" {
			continue
		}
		u, ok := byName[c.tenant.Name]
		if !ok {
			u = &TenantUsage{
				Name:      c.tenant.Name,
				Weight:    c.tenant.Weight,
				Priority:  c.tenant.Priority,
				Quota:     c.tenant.Quota,
				Guarantee: c.tenant.Guarantee,
			}
			byName[c.tenant.Name] = u
		}
		u.Containers++
		if len(c.pending) > 0 {
			u.Suspended++
		}
		u.Grant += c.grant
		u.Used += c.used
		u.Pending += len(c.pending)
	}
	out := make([]TenantUsage, 0, len(byName))
	for _, u := range byName {
		out = append(out, *u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// tryPreemptLocked asks a Preemptor algorithm to reclaim unused grant
// from lower-ranked holders so that c's request (needing need more
// grant) can be admitted instead of suspended. It reclaims at most
// grant-used per victim, at most need in total, logs EvPreempt per
// victim, and then tops c up from the pool. It reports whether the
// request now fits. Callers hold lockAll; the preceding pool top-up has
// already run.
func (s *State) tryPreemptLocked(c *containerState, charge bytesize.Size) bool {
	p, ok := s.cfg.Algorithm.(Preemptor)
	if !ok {
		return false
	}
	need := c.used + charge - c.grant
	if need <= 0 {
		return false
	}
	// Preemption must not bust the requester's own quota; guarantees of
	// other tenants do not shield unused grant from a preemptor.
	if s.quotaHeadroomLocked(c.tenant) < need {
		return false
	}
	req := holderOf(c)
	var holders []Holder
	for _, h := range s.sortedContainersLocked() {
		if h == c || h.grant <= h.used {
			continue
		}
		holders = append(holders, holderOf(h))
	}
	if len(holders) == 0 {
		return false
	}
	var reclaimed bytesize.Size
	for _, vid := range p.Victims(need, req, holders) {
		if reclaimed >= need {
			break
		}
		v, ok := s.lookupLocked(vid)
		if !ok || v == c || v.grant <= v.used {
			continue
		}
		take := v.grant - v.used
		if take > need-reclaimed {
			take = need - reclaimed
		}
		v.grant -= take
		s.pool += take
		reclaimed += take
		s.logEvent(EvPreempt, vid, 0, take)
	}
	if reclaimed == 0 {
		return false
	}
	take := c.used + charge - c.grant
	if take > s.pool {
		take = s.pool
	}
	c.grant += take
	s.pool -= take
	return c.used+charge <= c.grant
}

func holderOf(c *containerState) Holder {
	return Holder{
		ID:         c.id,
		Tenant:     c.tenant.Name,
		Weight:     c.tenant.Weight,
		Priority:   c.tenant.Priority,
		Grant:      c.grant,
		Used:       c.used,
		CreatedSeq: c.createdSeq,
	}
}
