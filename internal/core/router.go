package core

import (
	"fmt"
	"sort"
	"sync"

	"convgpu/internal/bytesize"
)

// Router fans a Scheduler's per-container operations out to the member
// scheduler that owns each container's placement, and aggregates the
// whole-scheduler views (snapshots, events, pools, invariants) across
// all members. multigpu.State embeds it with per-device *State members;
// cluster.Cluster embeds it with per-node multigpu.State members — the
// placement decision itself (Register) stays with the embedding type,
// which records the outcome with SetPlacement.
//
// Router does not implement Register or EnsureRegistered: admitting a
// container is a placement decision, so the embedding type supplies
// both (EnsureRegistered typically routes when the placement is known
// and falls back to Register when it is not).
type Router struct {
	// memberNoun names a member in aggregated errors: "device" for the
	// multi-GPU scheduler, "node" for the cluster.
	memberNoun string

	// mu guards placement, members and observer. members is replaced
	// wholesale (copy-on-write) by ReplaceMember, so a slice header read
	// under the lock stays valid to iterate after release.
	mu        sync.RWMutex
	members   []Scheduler
	placement map[ContainerID]int
	observer  func(EventRecord)
	admitObs  func(AdmitObservation)
}

// NewRouter builds a router over members. memberNoun names a member in
// invariant-violation messages ("device", "node").
func NewRouter(members []Scheduler, memberNoun string) *Router {
	return &Router{
		members:    members,
		memberNoun: memberNoun,
		placement:  make(map[ContainerID]int),
	}
}

// membersView snapshots the member slice. ReplaceMember swaps the slice
// rather than mutating it in place, so iterating the snapshot without
// the lock is safe.
func (r *Router) membersView() []Scheduler {
	r.mu.RLock()
	ms := r.members
	r.mu.RUnlock()
	return ms
}

// NumMembers returns how many member schedulers the router fans out to.
func (r *Router) NumMembers() int { return len(r.membersView()) }

// Member returns the i-th member scheduler.
func (r *Router) Member(i int) Scheduler { return r.membersView()[i] }

// ReplaceMember swaps member i for fresh — the failover path installs
// an empty scheduler in a dead node's slot — and forgets the placements
// in drop (the dead member's containers, which the caller re-places or
// evicts). The router's remembered observer is installed on the fresh
// member so its events keep flowing to the same sink.
func (r *Router) ReplaceMember(i int, fresh Scheduler, drop []ContainerID) {
	r.mu.Lock()
	ms := make([]Scheduler, len(r.members))
	copy(ms, r.members)
	ms[i] = fresh
	r.members = ms
	for _, id := range drop {
		delete(r.placement, id)
	}
	fn := r.observer
	afn := r.admitObs
	r.mu.Unlock()
	if fn != nil {
		fresh.SetObserver(fn)
	}
	if afn != nil {
		fresh.SetAdmitObserver(afn)
	}
}

// PlacementsOn lists the containers placed on member i, sorted by ID so
// callers iterate them deterministically.
func (r *Router) PlacementsOn(i int) []ContainerID {
	r.mu.RLock()
	var out []ContainerID
	for id, m := range r.placement {
		if m == i {
			out = append(out, id)
		}
	}
	r.mu.RUnlock()
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// SetPlacement records that id's operations route to member m — called
// by the embedding type after a successful Register on that member.
func (r *Router) SetPlacement(id ContainerID, m int) {
	r.mu.Lock()
	r.placement[id] = m
	r.mu.Unlock()
}

// PlacementIndex reports which member owns id.
func (r *Router) PlacementIndex(id ContainerID) (int, error) {
	r.mu.RLock()
	m, ok := r.placement[id]
	r.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownContainer, id)
	}
	return m, nil
}

// memberFor resolves id to its owning member. One RLock covers both the
// placement lookup and the member read, so a concurrent ReplaceMember
// cannot hand back the dead member for a re-placed container.
func (r *Router) memberFor(id ContainerID) (Scheduler, error) {
	r.mu.RLock()
	m, ok := r.placement[id]
	var sched Scheduler
	if ok {
		sched = r.members[m]
	}
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownContainer, id)
	}
	return sched, nil
}

// --- routed per-container operations ---

// RequestAlloc routes to the container's member.
func (r *Router) RequestAlloc(id ContainerID, pid int, size bytesize.Size) (AllocResult, error) {
	m, err := r.memberFor(id)
	if err != nil {
		return AllocResult{}, err
	}
	return m.RequestAlloc(id, pid, size)
}

// ConfirmAlloc routes to the container's member.
func (r *Router) ConfirmAlloc(id ContainerID, pid int, addr uint64, size bytesize.Size) error {
	m, err := r.memberFor(id)
	if err != nil {
		return err
	}
	return m.ConfirmAlloc(id, pid, addr, size)
}

// AbortAlloc routes to the container's member.
func (r *Router) AbortAlloc(id ContainerID, pid int, size bytesize.Size) (Update, error) {
	m, err := r.memberFor(id)
	if err != nil {
		return Update{}, err
	}
	return m.AbortAlloc(id, pid, size)
}

// Free routes to the container's member.
func (r *Router) Free(id ContainerID, pid int, addr uint64) (bytesize.Size, Update, error) {
	m, err := r.memberFor(id)
	if err != nil {
		return 0, Update{}, err
	}
	return m.Free(id, pid, addr)
}

// ProcessExit routes to the container's member.
func (r *Router) ProcessExit(id ContainerID, pid int) (bytesize.Size, Update, error) {
	m, err := r.memberFor(id)
	if err != nil {
		return 0, Update{}, err
	}
	return m.ProcessExit(id, pid)
}

// Close routes to the container's member and forgets the placement, so
// a re-registered ID is placed afresh.
func (r *Router) Close(id ContainerID) (bytesize.Size, Update, error) {
	m, err := r.memberFor(id)
	if err != nil {
		return 0, Update{}, err
	}
	returned, u, err := m.Close(id)
	if err == nil {
		r.mu.Lock()
		delete(r.placement, id)
		r.mu.Unlock()
	}
	return returned, u, err
}

// MemInfo routes to the container's member: free/total describe the
// container's own device, which is what the wrapper's cudaMemGetInfo
// must report.
func (r *Router) MemInfo(id ContainerID) (free, total bytesize.Size, err error) {
	m, err := r.memberFor(id)
	if err != nil {
		return 0, 0, err
	}
	return m.MemInfo(id)
}

// Restore routes a recovery replay to the container's member.
func (r *Router) Restore(id ContainerID, pid int, addr uint64, size bytesize.Size) error {
	m, err := r.memberFor(id)
	if err != nil {
		return err
	}
	return m.Restore(id, pid, addr, size)
}

// DropPending routes parked-ticket cleanup to the container's member.
func (r *Router) DropPending(id ContainerID, tickets []Ticket) (Update, error) {
	m, err := r.memberFor(id)
	if err != nil {
		return Update{}, err
	}
	return m.DropPending(id, tickets)
}

// Info routes to the container's member.
func (r *Router) Info(id ContainerID) (ContainerInfo, error) {
	m, err := r.memberFor(id)
	if err != nil {
		return ContainerInfo{}, err
	}
	return m.Info(id)
}

// PendingRequests routes pending-ticket introspection to the
// container's member.
func (r *Router) PendingRequests(id ContainerID) ([]PendingRequest, error) {
	m, err := r.memberFor(id)
	if err != nil {
		return nil, err
	}
	return m.PendingRequests(id)
}

// --- aggregated whole-scheduler views ---

// Snapshot merges every member's snapshot, ordered by creation time
// (ties broken by ID) so the combined view is deterministic.
func (r *Router) Snapshot() []ContainerInfo {
	var out []ContainerInfo
	for _, m := range r.membersView() {
		out = append(out, m.Snapshot()...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].CreatedAt.Equal(out[j].CreatedAt) {
			return out[i].CreatedAt.Before(out[j].CreatedAt)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Events merges every member's retained events, ordered by timestamp
// (ties broken by per-member Seq). Seq values are per member and may
// repeat across devices; EventRecord.Device disambiguates.
func (r *Router) Events() []EventRecord {
	var out []EventRecord
	for _, m := range r.membersView() {
		out = append(out, m.Events()...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].At.Equal(out[j].At) {
			return out[i].At.Before(out[j].At)
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// SetObserver installs fn on every member; records from different
// members interleave in timestamp order only as precisely as the
// members' own locks allow.
func (r *Router) SetObserver(fn func(EventRecord)) {
	r.mu.Lock()
	r.observer = fn
	ms := r.members
	r.mu.Unlock()
	for _, m := range ms {
		m.SetObserver(fn)
	}
}

// SetAdmitObserver installs fn on every member (and, like SetObserver,
// on members installed later by ReplaceMember), so per-request admit
// observations keep flowing across failovers.
func (r *Router) SetAdmitObserver(fn func(AdmitObservation)) {
	r.mu.Lock()
	r.admitObs = fn
	ms := r.members
	r.mu.Unlock()
	for _, m := range ms {
		m.SetAdmitObserver(fn)
	}
}

// Tenants merges the members' per-tenant aggregations by tenant name,
// summing the usage counters; the attribute fields (weight, priority,
// quota, guarantee) come from whichever member reported the tenant
// first — registrations carry the same attributes to every member, so
// they agree. Sorted by name. Like Register, the tenant-carrying
// registrations stay with the embedding type: they are placement
// decisions.
func (r *Router) Tenants() []TenantUsage {
	byName := make(map[string]*TenantUsage)
	for _, m := range r.membersView() {
		for _, u := range m.Tenants() {
			have, ok := byName[u.Name]
			if !ok {
				c := u
				byName[u.Name] = &c
				continue
			}
			have.Containers += u.Containers
			have.Suspended += u.Suspended
			have.Grant += u.Grant
			have.Used += u.Used
			have.Pending += u.Pending
		}
	}
	out := make([]TenantUsage, 0, len(byName))
	for _, u := range byName {
		out = append(out, *u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// PausedContainers sums the members' suspended-container counts.
func (r *Router) PausedContainers() int {
	var n int
	for _, m := range r.membersView() {
		n += m.PausedContainers()
	}
	return n
}

// AlgorithmName returns the members' (shared) redistribution algorithm.
func (r *Router) AlgorithmName() string {
	ms := r.membersView()
	if len(ms) == 0 {
		return ""
	}
	return ms[0].AlgorithmName()
}

// Capacity sums the members' capacities.
func (r *Router) Capacity() bytesize.Size {
	var total bytesize.Size
	for _, m := range r.membersView() {
		total += m.Capacity()
	}
	return total
}

// PoolFree sums the members' unallocated pools.
func (r *Router) PoolFree() bytesize.Size {
	var total bytesize.Size
	for _, m := range r.membersView() {
		total += m.PoolFree()
	}
	return total
}

// TotalUsed sums the members' tracked usage.
func (r *Router) TotalUsed() bytesize.Size {
	var total bytesize.Size
	for _, m := range r.membersView() {
		total += m.TotalUsed()
	}
	return total
}

// CheckInvariants checks every member, attributing a violation to the
// member that broke it.
func (r *Router) CheckInvariants() error {
	for i, m := range r.membersView() {
		if err := m.CheckInvariants(); err != nil {
			return fmt.Errorf("%s %d: %w", r.memberNoun, i, err)
		}
	}
	return nil
}

// Devices concatenates the members' device views. For the multi-GPU
// scheduler the indices are globally unique (member i serves device i);
// a cluster repeats indices across nodes and disambiguates with
// NodePlacement.
func (r *Router) Devices() []DeviceInfo {
	ms := r.membersView()
	out := make([]DeviceInfo, 0, len(ms))
	for _, m := range ms {
		out = append(out, m.Devices()...)
	}
	return out
}

// Placement reports the device serving id, per the owning member.
func (r *Router) Placement(id ContainerID) (int, error) {
	m, err := r.memberFor(id)
	if err != nil {
		return 0, err
	}
	return m.Placement(id)
}

// RestorePlacement pins a recovering container onto the member that
// serves the recorded device, before EnsureRegistered re-admits it. A
// container with a live placement is re-pinned on its current member
// (which validates the device); otherwise the first member that accepts
// the device claims the container.
func (r *Router) RestorePlacement(id ContainerID, device int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.placement[id]; ok {
		return r.members[m].RestorePlacement(id, device)
	}
	for i, m := range r.members {
		if err := m.RestorePlacement(id, device); err == nil {
			r.placement[id] = i
			return nil
		}
	}
	return fmt.Errorf("%w: %d (%d %ss served)", ErrUnknownDevice, device, len(r.members), r.memberNoun)
}
