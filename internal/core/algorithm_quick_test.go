package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"convgpu/internal/bytesize"
)

// genCandidates builds a random, well-formed candidate slice.
func genCandidates(rng *rand.Rand) []Candidate {
	n := rng.Intn(12)
	out := make([]Candidate, n)
	for i := range out {
		out[i] = Candidate{
			ID:         ContainerID(string(rune('a' + i))),
			CreatedSeq: uint64(rng.Intn(1000)) + 1,
			SuspendSeq: uint64(rng.Intn(1000)) + 1,
			Deficit:    bytesize.Size(rng.Intn(4096)+1) * bytesize.MiB,
		}
	}
	return out
}

// TestAlgorithmsPickInRangeProperty: every algorithm returns either -1
// (only on empty candidates for the deterministic ones) or a valid
// index, for arbitrary pools and candidate sets.
func TestAlgorithmsPickInRangeProperty(t *testing.T) {
	algs := []Algorithm{FIFO{}, BestFit{}, RecentUse{}, NewRandom(7)}
	f := func(seed int64, poolMiB uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		cands := genCandidates(rng)
		pool := bytesize.Size(poolMiB) * bytesize.MiB
		for _, a := range algs {
			i := a.Pick(pool, cands)
			if len(cands) == 0 {
				if i != -1 {
					return false
				}
				continue
			}
			if i < 0 || i >= len(cands) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestBestFitProperty: when any candidate's deficit fits the pool,
// Best-Fit returns a fitting candidate with the maximal deficit; when
// none fits, it returns the minimal deficit.
func TestBestFitProperty(t *testing.T) {
	f := func(seed int64, poolMiB uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		cands := genCandidates(rng)
		if len(cands) == 0 {
			return true
		}
		pool := bytesize.Size(poolMiB) * bytesize.MiB
		i := (BestFit{}).Pick(pool, cands)
		picked := cands[i]
		anyFits := false
		var maxFitting, minDeficit bytesize.Size
		for _, c := range cands {
			if c.Deficit <= pool {
				anyFits = true
				if c.Deficit > maxFitting {
					maxFitting = c.Deficit
				}
			}
			if minDeficit == 0 || c.Deficit < minDeficit {
				minDeficit = c.Deficit
			}
		}
		if anyFits {
			return picked.Deficit <= pool && picked.Deficit == maxFitting
		}
		return picked.Deficit == minDeficit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestFIFOAndRUProperty: FIFO always returns the minimal CreatedSeq,
// Recent-Use the maximal SuspendSeq, independent of pool size.
func TestFIFOAndRUProperty(t *testing.T) {
	f := func(seed int64, poolMiB uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		cands := genCandidates(rng)
		if len(cands) == 0 {
			return true
		}
		pool := bytesize.Size(poolMiB) * bytesize.MiB
		fi := (FIFO{}).Pick(pool, cands)
		ri := (RecentUse{}).Pick(pool, cands)
		for _, c := range cands {
			if c.CreatedSeq < cands[fi].CreatedSeq {
				return false
			}
			if c.SuspendSeq > cands[ri].SuspendSeq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestRegisterGrantProperty: for arbitrary registration sequences the
// initial grant equals min(limit, pool-before) and the pool never goes
// negative.
func TestRegisterGrantProperty(t *testing.T) {
	f := func(limitsMiB []uint16) bool {
		s, err := New(Config{Capacity: 5 * bytesize.GiB, ContextOverhead: 1})
		if err != nil {
			return false
		}
		for i, lm := range limitsMiB {
			limit := bytesize.Size(int(lm)%4096+1) * bytesize.MiB
			before := s.PoolFree()
			granted, err := s.Register(ContainerID("c"+itoa(i)), limit)
			if err != nil {
				return false
			}
			want := limit
			if want > before {
				want = before
			}
			if granted != want {
				return false
			}
			if s.PoolFree() != before-granted {
				return false
			}
			if s.CheckInvariants() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestMemInfoProperty: after any accepted allocation, the virtualized
// view satisfies free + used == limit and never exposes other
// containers' usage.
func TestMemInfoProperty(t *testing.T) {
	f := func(sizesMiB []uint8) bool {
		s, err := New(Config{Capacity: 5 * bytesize.GiB, ContextOverhead: 1})
		if err != nil {
			return false
		}
		if _, err := s.Register("other", bytesize.GiB); err != nil {
			return false
		}
		if res, err := s.RequestAlloc("other", 1, 512*bytesize.MiB); err != nil || res.Decision != Accept {
			return false
		}
		if _, err := s.Register("me", bytesize.GiB); err != nil {
			return false
		}
		var used bytesize.Size = 1 // overhead byte charged on first alloc
		first := true
		for _, sm := range sizesMiB {
			size := bytesize.Size(int(sm)%64+1) * bytesize.MiB
			res, err := s.RequestAlloc("me", 2, size)
			if err != nil {
				return false
			}
			if res.Decision == Accept {
				used += size
				if first {
					first = false
				}
			}
			free, total, err := s.MemInfo("me")
			if err != nil || total != bytesize.GiB {
				return false
			}
			if free+usedOf(s, "me") != total {
				return false
			}
		}
		info, _ := s.Info("me")
		return info.Used == used || len(sizesMiB) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func usedOf(s *State, id ContainerID) bytesize.Size {
	info, _ := s.Info(id)
	return info.Used
}
