// Package core implements the GPU memory scheduler at the heart of
// ConVGPU (paper §III-D): the host-side component that decides, for every
// GPU memory allocation a container attempts, whether to accept it,
// suspend it until memory becomes available, or reject it.
//
// The scheduler maintains, per container, the creation-time memory
// request (the limit), the memory currently assigned to the container
// (the grant) and the memory actually in use. Invariants, enforced and
// property-tested:
//
//	0 <= used_i <= grant_i <= limit_i         for every container i
//	Σ grant_i <= capacity
//
// A container whose allocation cannot be served within its grant is
// paused — its response is withheld — until a scheduling algorithm
// (FIFO, Best-Fit, Recent-Use or Random) assigns it memory freed by
// terminating containers. Because a container never waits for memory
// beyond its creation-time request, and grants are never revoked,
// admitted containers that received their full request always run to
// completion: the middleware turns the unmanaged case's failures and
// deadlocks into bounded waiting.
//
// The core is a synchronous state machine. Suspension is represented by
// tickets: RequestAlloc returns Suspend with a ticket, and later calls
// that free memory return the tickets that were admitted as a result.
// The daemon (package daemon) maps tickets to withheld socket responses;
// the discrete-event simulator (package sim) maps them to blocked virtual
// processes. All methods are safe for concurrent use.
//
// Locking: the container table is split into numShards shards, each
// with its own RWMutex, plus a per-container mutex. Operations that can
// move memory between containers (suspension, redistribution, register,
// close) take every shard's write lock in index order — lockAll — which
// excludes everything else exactly as a single global write lock would.
// The common case — an allocation that fits the container's existing
// grant, a free while nothing is paused, a confirm, a meminfo — touches
// only one container's state and runs on a fast path under that
// container's shard read lock plus its mutex, so independent containers
// proceed in parallel without even sharing a reader-count cache line
// unless they hash to the same shard (see DESIGN.md "Hot path";
// Config.DisableFastPath forces every operation through lockAll). The
// event log is sharded the same way (see events.go).
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/clock"
)

// ContainerID identifies a container (Docker container ID in the real
// system).
type ContainerID string

// Errors reported by the scheduler.
var (
	ErrUnknownContainer     = errors.New("core: unknown container")
	ErrDuplicateContainer   = errors.New("core: container already registered")
	ErrLimitExceedsCapacity = errors.New("core: memory limit exceeds GPU capacity")
	ErrInvalidLimit         = errors.New("core: memory limit must be positive")
	ErrInvalidSize          = errors.New("core: allocation size must be positive")
	ErrUnknownAddr          = errors.New("core: unknown allocation address")
	ErrUnknownPID           = errors.New("core: unknown pid")
	ErrNotCharged           = errors.New("core: confirm/abort without an accepted request")
	ErrLimitMismatch        = errors.New("core: re-registration limit differs from the original")
	ErrRestoreInfeasible    = errors.New("core: cannot restore allocation within limit and capacity")
)

// DefaultContextOverhead is the GPU memory CUDA consumes when a process
// first allocates: 64 MiB of process data plus 2 MiB of CUDA context
// (paper §III-D).
const DefaultContextOverhead = 66 * bytesize.MiB

// Decision is the scheduler's verdict on an allocation request.
type Decision int

// Decisions.
const (
	// Accept: the memory is charged; the wrapper may call the real CUDA
	// allocation.
	Accept Decision = iota
	// Suspend: the request is parked; the caller waits for its ticket to
	// be admitted by a later redistribution.
	Suspend
	// Reject: the request exceeds the container's own limit and can never
	// be satisfied; the wrapper returns cudaErrorMemoryAllocation.
	Reject
)

func (d Decision) String() string {
	switch d {
	case Accept:
		return "accept"
	case Suspend:
		return "suspend"
	case Reject:
		return "reject"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// Ticket identifies a suspended allocation request.
type Ticket uint64

// AllocResult is the outcome of RequestAlloc.
type AllocResult struct {
	Decision Decision
	// Ticket is set when Decision == Suspend.
	Ticket Ticket
}

// Admitted names a formerly suspended request that has now been charged
// and may proceed to the real allocation.
type Admitted struct {
	Container ContainerID
	Ticket    Ticket
}

// Update reports the side effects of an operation that freed memory:
// which suspended requests were admitted, and which were cancelled
// because their container closed.
type Update struct {
	Admitted  []Admitted
	Cancelled []Admitted
}

// Config configures a scheduler.
type Config struct {
	// Capacity is the schedulable GPU memory.
	Capacity bytesize.Size
	// DeviceIndex identifies the device this state schedules, stamped
	// into every event record and reported by Devices/Placement. A
	// multi-device scheduler builds one State per device with ascending
	// indices; standalone states leave it 0.
	DeviceIndex int
	// ContextOverhead is charged for the first allocation of each process
	// (default DefaultContextOverhead). It counts against the container's
	// limit, so limits must include per-process headroom.
	ContextOverhead bytesize.Size
	// Algorithm selects paused containers during redistribution
	// (default FIFO{}).
	Algorithm Algorithm
	// Clock provides time for suspension metrics (default the wall
	// clock). The experiment simulator injects its virtual clock.
	Clock clock.Clock
	// PersistentGrants disables the reclamation of paused containers'
	// unused assignments during redistribution: once memory is assigned
	// to a container it stays assigned until the container closes. This
	// reading of the paper strands partial grants with paused containers
	// and can wedge Recent-Use and Random under heavy load (the ablation
	// benches quantify it); the default (reclaiming) semantics cannot
	// wedge on single-allocation workloads.
	PersistentGrants bool
	// EventLogSize sets the scheduler event-log ring capacity
	// (DefaultEventLogSize when 0; negative disables retention).
	EventLogSize int
	// DisableFastPath forces every operation through the global write
	// lock, turning off the read-mostly fast paths for in-grant admits,
	// frees with nothing paused, confirms and meminfo. The fast path
	// preserves every scheduler invariant and is on by default; this
	// switch exists for ablation and debugging.
	DisableFastPath bool
	// FaultTolerant enables the rescue pass of the authors' prior study
	// ("Fault-tolerant Scheduler for Shareable Virtualized GPU
	// Resource", SC16 poster [10]): whenever a redistribution admits
	// nothing while paused containers remain, every paused container's
	// unused assignment is forcibly reclaimed and the pending request
	// with the smallest charge is admitted first, guaranteeing progress
	// whenever progress is possible at all — even under
	// PersistentGrants or multi-allocation hold-and-wait.
	FaultTolerant bool
}

type pendingReq struct {
	ticket Ticket
	pid    int
	size   bytesize.Size // raw request size; overhead is computed at admit time
	at     time.Time     // when the request was parked (admit-wait accounting)
}

type procState struct {
	charged bool // context overhead charged
	allocs  map[uint64]bytesize.Size
	// accepted tracks charges awaiting Confirm/Abort: per accepted
	// request, the charged size (excluding overhead).
	accepted []bytesize.Size
}

type containerState struct {
	// mu serializes fast-path access to this container's mutable fields.
	// Fast paths hold the state's read lock plus mu; slow paths hold the
	// state's write lock, which excludes every fast path, and so never
	// take mu.
	mu sync.Mutex

	id         ContainerID
	tenant     Tenant
	limit      bytesize.Size
	grant      bytesize.Size
	used       bytesize.Size
	createdSeq uint64
	createdAt  time.Time
	suspendSeq uint64
	pending    []pendingReq
	procs      map[int]*procState

	// Suspension metrics: total time with >= 1 pending request.
	suspendedSince time.Time
	suspendedTotal time.Duration
	everSuspended  bool
}

// numShards is the number of container-table (and event-log) shards.
// A power of two so ContainerID hashes index by mask. Eight shards keep
// the lockAll slow path cheap while spreading unrelated containers'
// fast paths across distinct locks and cache lines.
const numShards = 8

// shard is one slice of the container table with its own lock and
// event-log ring. Fast paths hold mu.RLock plus the container's mutex;
// slow paths hold every shard's write lock (State.lockAll).
type shard struct {
	mu         sync.RWMutex
	containers map[ContainerID]*containerState
	events     *eventLog

	// Pad shards apart so two cores hammering adjacent shards' reader
	// counts do not false-share a cache line.
	_ [32]byte
}

// State is the scheduler. Create it with New.
type State struct {
	cfg    Config
	shards [numShards]shard

	// admitObs receives one AdmitObservation per admitted request.
	// Written only under lockAll (SetAdmitObserver); read by fast paths
	// under a shard read lock, which lockAll excludes.
	admitObs func(AdmitObservation)

	// The fields below are global scheduler state touched only by slow
	// paths, which hold every shard's write lock — lockAll is their
	// mutual exclusion, so they need no lock of their own.
	pool       bytesize.Size // capacity not granted to any container
	nextSeq    uint64
	nextTicket Ticket
	closedIDs  map[ContainerID]bool

	// namedTenants counts registered containers bound to a named (non
	// default) tenant. Zero means every tenant-aware clamp and the
	// preemption hook are skipped, keeping the single-tenant scheduler
	// byte-identical to its pre-tenant behavior. Changes only under
	// lockAll (register, close, tenant adoption).
	namedTenants int

	// eventSeq numbers events across all shard logs (see events.go).
	eventSeq atomic.Uint64

	// pausedCount counts containers with at least one pending request.
	// It changes only under lockAll (suspension and the three
	// pending-draining paths all hold it), so a fast path holding any
	// shard's read lock observes a stable value: zero means no free can
	// admit anything, making the fast Free's empty Update exact.
	pausedCount atomic.Int64
}

// shardIndex hashes id onto a shard (FNV-1a, masked).
func shardIndex(id ContainerID) int {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint32(id[i])) * 16777619
	}
	return int(h & (numShards - 1))
}

// shardFor returns the shard owning id.
func (s *State) shardFor(id ContainerID) *shard { return &s.shards[shardIndex(id)] }

// lockAll takes every shard's write lock in index order — the slow
// paths' global exclusion. Acquiring in a fixed order cannot deadlock
// against other lockAll callers, and holding all write locks excludes
// every fast path exactly as the old single write lock did.
func (s *State) lockAll() {
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
}

// unlockAll releases what lockAll took.
func (s *State) unlockAll() {
	for i := numShards - 1; i >= 0; i-- {
		s.shards[i].mu.Unlock()
	}
}

// lookupLocked finds id's container. Callers hold id's shard lock in
// either mode (lockAll included).
func (s *State) lookupLocked(id ContainerID) (*containerState, bool) {
	c, ok := s.shardFor(id).containers[id]
	return c, ok
}

// New creates a scheduler. Capacity must be positive.
func New(cfg Config) (*State, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("core: capacity must be positive, got %v", cfg.Capacity)
	}
	if cfg.ContextOverhead == 0 {
		cfg.ContextOverhead = DefaultContextOverhead
	}
	if cfg.ContextOverhead < 0 {
		return nil, fmt.Errorf("core: negative context overhead %v", cfg.ContextOverhead)
	}
	if cfg.Algorithm == nil {
		cfg.Algorithm = FIFO{}
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	logSize := cfg.EventLogSize
	if logSize == 0 {
		logSize = DefaultEventLogSize
	}
	s := &State{
		cfg:       cfg,
		pool:      cfg.Capacity,
		closedIDs: make(map[ContainerID]bool),
	}
	for i := range s.shards {
		s.shards[i].containers = make(map[ContainerID]*containerState)
		s.shards[i].events = newEventLog(logSize, &s.eventSeq)
	}
	return s, nil
}

// MustNew is New for known-good configurations (tests, examples).
func MustNew(cfg Config) *State {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Capacity returns the configured schedulable memory.
func (s *State) Capacity() bytesize.Size { return s.cfg.Capacity }

// AlgorithmName returns the active redistribution algorithm's name.
func (s *State) AlgorithmName() string { return s.cfg.Algorithm.Name() }

// Register admits a new container with its creation-time memory request
// (paper: sent by the customized nvidia-docker before the container is
// created). It returns the memory granted immediately, which may be
// partial (Fig. 3b) or zero. The container belongs to the default
// tenant; RegisterTenant carries a tenant identity.
func (s *State) Register(id ContainerID, limit bytesize.Size) (granted bytesize.Size, err error) {
	return s.RegisterTenant(id, limit, Tenant{})
}

// EnsureRegistered is Register that tolerates the container already
// being known: it returns the existing grant untouched when the limit
// matches (no double-counting) and ErrLimitMismatch when it does not.
// The daemon uses it to re-adopt persisted sessions after a restart —
// whether the scheduler state survived (same core) or is being rebuilt.
func (s *State) EnsureRegistered(id ContainerID, limit bytesize.Size) (granted bytesize.Size, err error) {
	return s.EnsureRegisteredTenant(id, limit, Tenant{})
}

// registerLocked is the shared body of Register and EnsureRegistered
// (and their tenant-carrying variants). The caller holds lockAll and
// has established that id is free.
func (s *State) registerLocked(id ContainerID, limit bytesize.Size, t Tenant) (bytesize.Size, error) {
	if limit <= 0 {
		return 0, ErrInvalidLimit
	}
	if limit > s.cfg.Capacity {
		return 0, fmt.Errorf("%w: %v > %v", ErrLimitExceedsCapacity, limit, s.cfg.Capacity)
	}
	s.nextSeq++
	c := &containerState{
		id:         id,
		tenant:     t,
		limit:      limit,
		createdSeq: s.nextSeq,
		createdAt:  s.cfg.Clock.Now(),
		procs:      make(map[int]*procState),
	}
	c.grant = limit
	if c.grant > s.pool {
		c.grant = s.pool
	}
	if t.Name != "" || s.namedTenants > 0 {
		c.grant = s.clampTakeLocked(c, c.grant)
	}
	s.pool -= c.grant
	s.shardFor(id).containers[id] = c
	if t.Name != "" {
		s.namedTenants++
	}
	delete(s.closedIDs, id)
	s.logEvent(EvRegister, id, 0, c.grant)
	return c.grant, nil
}

// chargeFor computes what admitting (pid, size) costs the container:
// the raw size plus, for the process's first allocation, the context
// overhead.
func (s *State) chargeFor(c *containerState, pid int, size bytesize.Size) bytesize.Size {
	if p, ok := c.procs[pid]; ok && p.charged {
		return size
	}
	return size + s.cfg.ContextOverhead
}

func (s *State) proc(c *containerState, pid int) *procState {
	p, ok := c.procs[pid]
	if !ok {
		p = &procState{allocs: make(map[uint64]bytesize.Size)}
		c.procs[pid] = p
	}
	return p
}

// admit charges an accepted request to the container.
func (s *State) admit(c *containerState, pid int, size bytesize.Size) {
	charge := s.chargeFor(c, pid, size)
	c.used += charge
	p := s.proc(c, pid)
	p.charged = true
	p.accepted = append(p.accepted, size)
}

// RequestAlloc handles an allocation request of the given (already
// pitch/managed-adjusted) size from a process inside a container.
func (s *State) RequestAlloc(id ContainerID, pid int, size bytesize.Size) (AllocResult, error) {
	if !s.cfg.DisableFastPath {
		if res, done, err := s.fastRequestAlloc(id, pid, size); done {
			return res, err
		}
	}
	s.lockAll()
	defer s.unlockAll()
	c, ok := s.lookupLocked(id)
	if !ok {
		return AllocResult{}, fmt.Errorf("%w: %s", ErrUnknownContainer, id)
	}
	if size <= 0 {
		return AllocResult{}, ErrInvalidSize
	}
	charge := s.chargeFor(c, pid, size)
	if c.used+charge > c.limit {
		// Exceeds the container's own creation-time request: deny the
		// call (the paper's "rejects if the memory is already exceeded").
		s.logEvent(EvReject, id, pid, size)
		return AllocResult{Decision: Reject}, nil
	}
	if c.used+charge > c.grant {
		// Top up from the unassigned pool first: memory nobody holds must
		// not keep a container waiting.
		need := c.used + charge - c.grant
		take := need
		if take > s.pool {
			take = s.pool
		}
		if s.namedTenants > 0 {
			take = s.clampTakeLocked(c, take)
		}
		c.grant += take
		s.pool -= take
	}
	if c.used+charge <= c.grant {
		s.admit(c, pid, size)
		s.logEvent(EvAccept, id, pid, charge)
		s.observeAdmit(id, pid, 0, size, 0)
		return AllocResult{Decision: Accept}, nil
	}
	if s.namedTenants > 0 && s.tryPreemptLocked(c, charge) {
		// A preempting algorithm reclaimed enough unused grant from
		// lower-ranked holders to admit the request in place.
		s.admit(c, pid, size)
		s.logEvent(EvAccept, id, pid, charge)
		s.observeAdmit(id, pid, 0, size, 0)
		return AllocResult{Decision: Accept}, nil
	}
	// Suspend: park the request until redistribution grants enough.
	s.nextTicket++
	t := s.nextTicket
	c.pending = append(c.pending, pendingReq{ticket: t, pid: pid, size: size, at: s.cfg.Clock.Now()})
	s.nextSeq++
	c.suspendSeq = s.nextSeq
	if len(c.pending) == 1 {
		c.suspendedSince = s.cfg.Clock.Now()
		c.everSuspended = true
		s.pausedCount.Add(1)
	}
	s.logEventT(EvSuspend, id, pid, size, t)
	return AllocResult{Decision: Suspend, Ticket: t}, nil
}

// fastRequestAlloc decides the common case — the request fits (or can
// never fit) the container's existing grant — under the container's
// shard read lock and its own mutex, without excluding containers on
// other shards (or even read-locked neighbors on the same one). It
// reports done=false when the decision needs global state: a pool
// top-up or a suspension, both of which move memory between containers.
// The pending-queue-empty guard preserves ticket FIFO order: while
// requests are queued, new ones must go behind them through the slow
// path.
func (s *State) fastRequestAlloc(id ContainerID, pid int, size bytesize.Size) (res AllocResult, done bool, err error) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	c, ok := sh.containers[id]
	if !ok {
		return AllocResult{}, true, fmt.Errorf("%w: %s", ErrUnknownContainer, id)
	}
	if size <= 0 {
		return AllocResult{}, true, ErrInvalidSize
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.pending) > 0 {
		return AllocResult{}, false, nil
	}
	charge := s.chargeFor(c, pid, size)
	if c.used+charge > c.limit {
		s.logEvent(EvReject, id, pid, size)
		return AllocResult{Decision: Reject}, true, nil
	}
	if c.used+charge > c.grant {
		return AllocResult{}, false, nil
	}
	s.admit(c, pid, size)
	s.logEvent(EvAccept, id, pid, charge)
	s.observeAdmit(id, pid, 0, size, 0)
	return AllocResult{Decision: Accept}, true, nil
}

// ConfirmAlloc records the device address the real allocation returned,
// so the scheduler can track it (paper: "Scheduler tracks this
// information using hash structure and calculates total memory usage").
// It touches only one container's state, so it runs entirely on the
// fast path: its shard's read lock plus the container's mutex.
func (s *State) ConfirmAlloc(id ContainerID, pid int, addr uint64, size bytesize.Size) error {
	if !s.cfg.DisableFastPath {
		sh := s.shardFor(id)
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		c, ok := sh.containers[id]
		if !ok {
			return fmt.Errorf("%w: %s", ErrUnknownContainer, id)
		}
		c.mu.Lock()
		defer c.mu.Unlock()
		return s.confirmLocked(c, pid, addr, size)
	}
	s.lockAll()
	defer s.unlockAll()
	c, ok := s.lookupLocked(id)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownContainer, id)
	}
	return s.confirmLocked(c, pid, addr, size)
}

// confirmLocked is ConfirmAlloc's body; the caller holds either lockAll
// or the container's shard read lock plus c.mu.
func (s *State) confirmLocked(c *containerState, pid int, addr uint64, size bytesize.Size) error {
	id := c.id
	p, ok := c.procs[pid]
	if !ok || len(p.accepted) == 0 {
		return fmt.Errorf("%w: container %s pid %d", ErrNotCharged, id, pid)
	}
	// Confirms may arrive out of order when a process has several
	// threads allocating: match any accepted charge of this size.
	i := indexOfSize(p.accepted, size)
	if i < 0 {
		return fmt.Errorf("core: confirm size %v does not match any accepted request", size)
	}
	// A confirm for an address the scheduler still tracks means the old
	// record is stale: the device reused the address, so its previous
	// allocation was already freed and the (fire-and-forget) free report
	// is still in flight. Release the stale usage implicitly; the late
	// report will fail with ErrUnknownAddr and be ignored by the wrapper.
	for _, q := range c.procs {
		if stale, dup := q.allocs[addr]; dup {
			delete(q.allocs, addr)
			c.used -= stale
		}
	}
	p.accepted = append(p.accepted[:i], p.accepted[i+1:]...)
	p.allocs[addr] = size
	return nil
}

// Restore re-charges a live allocation a wrapper reports while
// re-attaching after a reconnect. Two cases:
//
//   - The scheduler restarted and lost its accounting: the allocation is
//     charged as if it had been confirmed (including the process's
//     context overhead on its first restore), topping the grant up from
//     the pool as needed. A report that cannot fit within the
//     container's limit and the remaining pool fails with
//     ErrRestoreInfeasible — the scheduler refuses to fabricate
//     capacity it does not have.
//   - The scheduler never lost the session (only the connection
//     dropped): the address is already tracked with the same size and
//     the restore is an idempotent no-op — nothing is double-counted.
func (s *State) Restore(id ContainerID, pid int, addr uint64, size bytesize.Size) error {
	s.lockAll()
	defer s.unlockAll()
	c, ok := s.lookupLocked(id)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownContainer, id)
	}
	if size <= 0 {
		return ErrInvalidSize
	}
	for _, q := range c.procs {
		if have, dup := q.allocs[addr]; dup {
			if have == size {
				return nil // replayed restore: already accounted
			}
			return fmt.Errorf("core: restore of %#x with size %v conflicts with tracked %v", addr, size, have)
		}
	}
	charge := s.chargeFor(c, pid, size)
	if c.used+charge > c.limit {
		return fmt.Errorf("%w: container %s used %v + %v > limit %v",
			ErrRestoreInfeasible, id, c.used, charge, c.limit)
	}
	if c.used+charge > c.grant {
		need := c.used + charge - c.grant
		if need > s.pool {
			return fmt.Errorf("%w: container %s needs %v, pool has %v",
				ErrRestoreInfeasible, id, need, s.pool)
		}
		// The quota is a hard invariant, so a restore cannot grow the
		// tenant's grants past it; guarantees are soft reservations and do
		// not fail recovery.
		if s.namedTenants > 0 && s.quotaHeadroomLocked(c.tenant) < need {
			return fmt.Errorf("%w: container %s needs %v beyond tenant %q quota",
				ErrRestoreInfeasible, id, need, c.tenant.Name)
		}
		c.grant += need
		s.pool -= need
	}
	p := s.proc(c, pid)
	p.charged = true
	p.allocs[addr] = size
	c.used += charge
	s.logEvent(EvRestore, id, pid, charge)
	return nil
}

// DropPending removes the given suspended tickets — the daemon calls it
// when the connection their responses were parked on drops, so a dead
// wrapper cannot pin the redistribution queue. Dropping is idempotent:
// unknown tickets and already-closed containers are ignored. Removing a
// queue head can let the next request fit the existing grant, so the
// returned Update must be dispatched like any other.
func (s *State) DropPending(id ContainerID, tickets []Ticket) (Update, error) {
	s.lockAll()
	defer s.unlockAll()
	c, ok := s.lookupLocked(id)
	if !ok {
		return Update{}, nil
	}
	drop := make(map[Ticket]bool, len(tickets))
	for _, t := range tickets {
		drop[t] = true
	}
	kept := c.pending[:0]
	var removed []pendingReq
	for _, r := range c.pending {
		if drop[r.ticket] {
			removed = append(removed, r)
			continue
		}
		kept = append(kept, r)
	}
	if len(removed) == 0 {
		return Update{}, nil
	}
	c.pending = kept
	s.noteSuspensionEnd(c)
	for _, r := range removed {
		s.logEventT(EvDrop, id, r.pid, 0, r.ticket)
	}
	return s.afterRelease(), nil
}

// AbortAlloc returns the charge of an accepted request whose real CUDA
// allocation failed (e.g. device fragmentation). The freed charge may
// admit suspended requests.
func (s *State) AbortAlloc(id ContainerID, pid int, size bytesize.Size) (Update, error) {
	s.lockAll()
	defer s.unlockAll()
	c, ok := s.lookupLocked(id)
	if !ok {
		return Update{}, fmt.Errorf("%w: %s", ErrUnknownContainer, id)
	}
	p, ok := c.procs[pid]
	if !ok || len(p.accepted) == 0 {
		return Update{}, fmt.Errorf("%w: container %s pid %d", ErrNotCharged, id, pid)
	}
	i := indexOfSize(p.accepted, size)
	if i < 0 {
		return Update{}, fmt.Errorf("core: abort size %v does not match any accepted request", size)
	}
	p.accepted = append(p.accepted[:i], p.accepted[i+1:]...)
	c.used -= size // overhead stays charged: the context was created
	s.logEvent(EvAbort, id, pid, size)
	return s.afterRelease(), nil
}

// Free releases the allocation at addr (the wrapper reports cudaFree).
// It returns the released size and any requests admitted as a result.
func (s *State) Free(id ContainerID, pid int, addr uint64) (bytesize.Size, Update, error) {
	if !s.cfg.DisableFastPath {
		if size, u, done, err := s.fastFree(id, pid, addr); done {
			return size, u, err
		}
	}
	s.lockAll()
	defer s.unlockAll()
	c, ok := s.lookupLocked(id)
	if !ok {
		return 0, Update{}, fmt.Errorf("%w: %s", ErrUnknownContainer, id)
	}
	p, ok := c.procs[pid]
	if !ok {
		return 0, Update{}, fmt.Errorf("%w: container %s pid %d", ErrUnknownPID, id, pid)
	}
	size, ok := p.allocs[addr]
	if !ok {
		return 0, Update{}, fmt.Errorf("%w: %#x", ErrUnknownAddr, addr)
	}
	delete(p.allocs, addr)
	c.used -= size
	s.logEvent(EvFree, id, pid, size)
	return size, s.afterRelease(), nil
}

// fastFree releases an allocation under the shard read lock when no
// container anywhere is paused. In that state afterRelease is provably
// a no-op — there is nothing to admit, reclaim or rescue — so returning
// an empty Update is exact, and the free touches only this container's
// state. pausedCount only changes under lockAll, which cannot complete
// while this shard's read lock is held, so the zero read here stays
// true for the duration of the read lock. With paused containers the
// free falls through to the slow path, whose redistribution may admit
// them.
func (s *State) fastFree(id ContainerID, pid int, addr uint64) (sz bytesize.Size, u Update, done bool, err error) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if s.pausedCount.Load() != 0 {
		return 0, Update{}, false, nil
	}
	c, ok := sh.containers[id]
	if !ok {
		return 0, Update{}, true, fmt.Errorf("%w: %s", ErrUnknownContainer, id)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.procs[pid]
	if !ok {
		return 0, Update{}, true, fmt.Errorf("%w: container %s pid %d", ErrUnknownPID, id, pid)
	}
	size, ok := p.allocs[addr]
	if !ok {
		return 0, Update{}, true, fmt.Errorf("%w: %#x", ErrUnknownAddr, addr)
	}
	delete(p.allocs, addr)
	c.used -= size
	s.logEvent(EvFree, id, pid, size)
	return size, Update{}, true, nil
}

// ProcessExit releases everything a process holds — leaked allocations
// and its context overhead (the wrapper reports
// __cudaUnregisterFatBinary; "some program may not free its allocated
// GPU memory"). It returns the total released.
func (s *State) ProcessExit(id ContainerID, pid int) (bytesize.Size, Update, error) {
	s.lockAll()
	defer s.unlockAll()
	c, ok := s.lookupLocked(id)
	if !ok {
		return 0, Update{}, fmt.Errorf("%w: %s", ErrUnknownContainer, id)
	}
	var released bytesize.Size
	if p, ok := c.procs[pid]; ok {
		for _, sz := range p.allocs {
			released += sz
		}
		for _, sz := range p.accepted {
			released += sz
		}
		if p.charged {
			released += s.cfg.ContextOverhead
		}
		c.used -= released
	}
	// Drop and cancel the pid's pending requests: the process is gone, so
	// any responder parked on them must be released.
	var u Update
	for _, r := range c.pending {
		if r.pid == pid {
			u.Cancelled = append(u.Cancelled, Admitted{Container: id, Ticket: r.ticket})
		}
	}
	c.pending = filterPending(c.pending, pid)
	s.noteSuspensionEnd(c)
	delete(c.procs, pid)
	s.logEvent(EvProcExit, id, pid, released)
	more := s.afterRelease()
	u.Admitted = more.Admitted
	u.Cancelled = append(u.Cancelled, more.Cancelled...)
	return released, u, nil
}

// Close removes a container entirely (nvidia-docker-plugin's close
// signal on container stop): its grant returns to the pool and the
// scheduler redistributes it among paused containers with the configured
// algorithm. Pending requests of the closed container are cancelled.
func (s *State) Close(id ContainerID) (bytesize.Size, Update, error) {
	s.lockAll()
	defer s.unlockAll()
	c, ok := s.lookupLocked(id)
	if !ok {
		if s.closedIDs[id] {
			// Idempotent: the plugin may deliver close more than once.
			return 0, Update{}, nil
		}
		return 0, Update{}, fmt.Errorf("%w: %s", ErrUnknownContainer, id)
	}
	var u Update
	for _, req := range c.pending {
		u.Cancelled = append(u.Cancelled, Admitted{Container: id, Ticket: req.ticket})
	}
	c.pending = nil
	s.noteSuspensionEnd(c)
	released := c.grant
	s.pool += c.grant
	delete(s.shardFor(id).containers, id)
	if c.tenant.Name != "" {
		s.namedTenants--
	}
	s.closedIDs[id] = true
	s.logEvent(EvClose, id, 0, released)
	more := s.afterRelease()
	u.Admitted = append(u.Admitted, more.Admitted...)
	u.Cancelled = append(u.Cancelled, more.Cancelled...)
	return released, u, nil
}

// MemInfo returns the container's virtualized view of GPU memory: total
// is its limit and free is what remains below it. This is what the
// wrapper returns for cudaMemGetInfo — the container sees only its own
// slice of the GPU.
func (s *State) MemInfo(id ContainerID) (free, total bytesize.Size, err error) {
	if !s.cfg.DisableFastPath {
		sh := s.shardFor(id)
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		c, ok := sh.containers[id]
		if !ok {
			return 0, 0, fmt.Errorf("%w: %s", ErrUnknownContainer, id)
		}
		c.mu.Lock()
		free, total = c.limit-c.used, c.limit
		c.mu.Unlock()
		return free, total, nil
	}
	s.lockAll()
	defer s.unlockAll()
	c, ok := s.lookupLocked(id)
	if !ok {
		return 0, 0, fmt.Errorf("%w: %s", ErrUnknownContainer, id)
	}
	return c.limit - c.used, c.limit, nil
}

// afterRelease runs redistribution and per-container admission after any
// memory release. Callers hold lockAll.
func (s *State) afterRelease() Update {
	var u Update
	// First, requests that now fit within their container's own grant
	// (its usage dropped).
	for _, c := range s.sortedContainersLocked() {
		u.Admitted = append(u.Admitted, s.admitFittingLocked(c)...)
	}
	// Then distribute the pool among paused containers.
	u.Admitted = append(u.Admitted, s.redistributeLocked()...)
	if len(u.Admitted) == 0 && s.cfg.FaultTolerant {
		// The policy's redistribution achieved nothing. If any paused
		// request is feasible at all, the rescue pass admits it.
		u.Admitted = append(u.Admitted, s.rescueLocked()...)
	}
	return u
}

// rescueLocked is the fault-tolerance pass ([10]): reclaim every paused
// container's unused assignment unconditionally, then admit pending
// head requests smallest-charge-first while they fit. It ignores the
// configured algorithm by design — it only runs when that algorithm
// has wedged.
func (s *State) rescueLocked() []Admitted {
	anyPaused := false
	for _, c := range s.allContainersLocked() {
		if len(c.pending) > 0 {
			anyPaused = true
			if c.grant > c.used {
				s.pool += c.grant - c.used
				c.grant = c.used
			}
		}
	}
	if !anyPaused {
		return nil
	}
	var admitted []Admitted
	for {
		// Pick the paused container whose head request is cheapest to
		// satisfy and feasible within the pool.
		var pick *containerState
		var pickNeed bytesize.Size
		for _, c := range s.sortedContainersLocked() {
			if len(c.pending) == 0 {
				continue
			}
			head := c.pending[0]
			charge := s.chargeFor(c, head.pid, head.size)
			if c.used+charge > c.limit {
				continue // only the container's own frees can help it
			}
			need := c.used + charge - c.grant
			if need > s.pool {
				continue // infeasible right now
			}
			if s.namedTenants > 0 && s.quotaHeadroomLocked(c.tenant) < need {
				continue // the rescue pass may ignore soft guarantees, not quotas
			}
			if pick == nil || need < pickNeed {
				pick, pickNeed = c, need
			}
		}
		if pick == nil {
			return admitted
		}
		pick.grant += pickNeed
		s.pool -= pickNeed
		s.logEvent(EvRescue, pick.id, 0, pickNeed)
		admitted = append(admitted, s.admitFittingLocked(pick)...)
	}
}

// admitFittingLocked admits the container's pending requests, in FIFO
// order, while they fit under the current grant.
func (s *State) admitFittingLocked(c *containerState) []Admitted {
	var admitted []Admitted
	for len(c.pending) > 0 {
		req := c.pending[0]
		charge := s.chargeFor(c, req.pid, req.size)
		if c.used+charge > c.grant {
			break
		}
		s.admit(c, req.pid, req.size)
		s.logEventT(EvResume, c.id, req.pid, charge, req.ticket)
		if s.admitObs != nil {
			s.observeAdmit(c.id, req.pid, req.ticket, req.size, s.cfg.Clock.Now().Sub(req.at))
		}
		admitted = append(admitted, Admitted{Container: c.id, Ticket: req.ticket})
		c.pending = c.pending[1:]
	}
	s.noteSuspensionEnd(c)
	return admitted
}

// redistributeLocked implements the paper's redistribution loop: while
// free memory and paused containers remain, the algorithm picks a
// container and assigns it memory up to its creation-time request.
//
// Before picking, the unused assignments of paused containers are
// reclaimed into the pool. A paused container is blocked anyway and its
// demand is fully described by its limit and usage, so re-granting every
// round lets the algorithm steer *all* distributable memory (Fig. 3d:
// the selected container is "guaranteed all GPU memory which the
// container firstly requested" out of whatever is free). Without
// reclamation, partial grants stranded with paused containers wedge the
// system under heavy load — precisely the deadlock ConVGPU exists to
// prevent. Running containers keep their creation-time guarantee
// untouched.
func (s *State) redistributeLocked() []Admitted {
	if !s.cfg.PersistentGrants {
		for _, c := range s.allContainersLocked() {
			if len(c.pending) > 0 && c.grant > c.used {
				s.pool += c.grant - c.used
				c.grant = c.used
			}
		}
	}
	var admitted []Admitted
	for s.pool > 0 {
		cands, byIdx := s.candidatesLocked()
		if len(cands) == 0 {
			break
		}
		i := s.cfg.Algorithm.Pick(s.pool, cands)
		if i < 0 || i >= len(cands) {
			break
		}
		c := byIdx[i]
		// Candidate.Deficit is the effective deficit — limit-grant, already
		// capped by the tenant's quota headroom and guarantee-reserved pool
		// share when named tenants are active — so the give can never bust
		// a tenant cap, and a picked candidate always receives > 0.
		give := cands[i].Deficit
		if give > s.pool {
			give = s.pool
		}
		c.grant += give
		s.pool -= give
		s.logEvent(EvGrant, c.id, 0, give)
		admitted = append(admitted, s.admitFittingLocked(c)...)
		if len(c.pending) > 0 {
			// Partial grant: pool is exhausted (give < deficit implies
			// pool hit zero), so the loop ends naturally.
			continue
		}
	}
	return admitted
}

// candidatesLocked assembles the paused containers (those with pending
// requests), ordered by creation. With named tenants active, each
// candidate's Deficit is the *effective* deficit — capped by its
// tenant's quota headroom and guarantee-reserved pool share — and
// candidates whose effective deficit is zero are excluded entirely, so
// the redistribution loop cannot spin on a capped tenant; the tenant
// identity fields let tenant-aware wake policies order candidates.
func (s *State) candidatesLocked() ([]Candidate, []*containerState) {
	var cands []Candidate
	var byIdx []*containerState
	var grantSums map[string]bytesize.Size
	if s.namedTenants > 0 {
		grantSums = s.tenantGrantSumsLocked()
	}
	for _, c := range s.sortedContainersLocked() {
		if len(c.pending) == 0 || c.grant >= c.limit {
			// Not paused, or already holds its full creation-time request
			// (its head request only fits after the container's own
			// frees): more memory cannot help it.
			continue
		}
		cand := Candidate{
			ID:         c.id,
			CreatedSeq: c.createdSeq,
			SuspendSeq: c.suspendSeq,
			Deficit:    c.limit - c.grant,
		}
		if s.namedTenants > 0 {
			if hr := s.quotaHeadroomLocked(c.tenant); cand.Deficit > hr {
				cand.Deficit = hr
			}
			if avail := s.availableForLocked(c.tenant); cand.Deficit > avail {
				cand.Deficit = avail
			}
			if cand.Deficit <= 0 {
				continue // capped: more memory cannot legally reach it
			}
			cand.Tenant = c.tenant.Name
			cand.TenantWeight = c.tenant.Weight
			cand.TenantPriority = c.tenant.Priority
			cand.TenantGrant = grantSums[c.tenant.Name]
			cand.TenantGuarantee = c.tenant.Guarantee
		}
		cands = append(cands, cand)
		byIdx = append(byIdx, c)
	}
	return cands, byIdx
}

// allContainersLocked collects every container across the shards, in no
// particular order. Callers hold lockAll.
func (s *State) allContainersLocked() []*containerState {
	var out []*containerState
	for i := range s.shards {
		for _, c := range s.shards[i].containers {
			out = append(out, c)
		}
	}
	return out
}

func (s *State) sortedContainersLocked() []*containerState {
	out := s.allContainersLocked()
	sort.Slice(out, func(i, j int) bool { return out[i].createdSeq < out[j].createdSeq })
	return out
}

// noteSuspensionEnd closes the current suspension interval if the
// container has no pending requests left. Callers hold lockAll.
// A non-zero suspendedSince marks exactly the containers pausedCount
// has counted — it is set when pending goes non-empty and cleared only
// here — so the counter comes back down exactly once per pause.
func (s *State) noteSuspensionEnd(c *containerState) {
	if len(c.pending) == 0 && !c.suspendedSince.IsZero() {
		c.suspendedTotal += s.cfg.Clock.Now().Sub(c.suspendedSince)
		c.suspendedSince = time.Time{}
		s.pausedCount.Add(-1)
	}
}

// ContainerInfo is a snapshot of one container's scheduler state.
type ContainerInfo struct {
	ID ContainerID
	// Tenant is the name of the tenant the container registered under
	// (empty for the default tenant); TenantDef is the full identity —
	// failover re-registers the container with it on the surviving node.
	Tenant    string
	TenantDef Tenant
	Limit     bytesize.Size
	Grant     bytesize.Size
	Used      bytesize.Size
	Pending   int
	CreatedAt time.Time
	Suspended bool
	// SuspendedTotal is the cumulative time the container has spent with
	// at least one allocation suspended (including the open interval).
	SuspendedTotal time.Duration
	EverSuspended  bool
}

// Snapshot returns the state of all registered containers, ordered by
// creation.
func (s *State) Snapshot() []ContainerInfo {
	s.lockAll()
	defer s.unlockAll()
	now := s.cfg.Clock.Now()
	var out []ContainerInfo
	for _, c := range s.sortedContainersLocked() {
		info := ContainerInfo{
			ID:             c.id,
			Tenant:         c.tenant.Name,
			TenantDef:      c.tenant,
			Limit:          c.limit,
			Grant:          c.grant,
			Used:           c.used,
			Pending:        len(c.pending),
			CreatedAt:      c.createdAt,
			Suspended:      len(c.pending) > 0,
			SuspendedTotal: c.suspendedTotal,
			EverSuspended:  c.everSuspended,
		}
		if !c.suspendedSince.IsZero() {
			info.SuspendedTotal += now.Sub(c.suspendedSince)
		}
		out = append(out, info)
	}
	return out
}

// Info returns the snapshot for one container.
func (s *State) Info(id ContainerID) (ContainerInfo, error) {
	for _, info := range s.Snapshot() {
		if info.ID == id {
			return info, nil
		}
	}
	return ContainerInfo{}, fmt.Errorf("%w: %s", ErrUnknownContainer, id)
}

// PoolFree returns the memory not granted to any container.
func (s *State) PoolFree() bytesize.Size {
	s.lockAll()
	defer s.unlockAll()
	return s.pool
}

// TotalUsed sums the usage of every registered container — the
// scheduler's view of occupied GPU memory (the simulator integrates it
// into a utilization figure).
func (s *State) TotalUsed() bytesize.Size {
	s.lockAll()
	defer s.unlockAll()
	var total bytesize.Size
	for _, c := range s.allContainersLocked() {
		total += c.used
	}
	return total
}

// Stalled reports whether the system can make no progress without
// operator intervention: at least one container is paused and every
// registered container is paused. Redistribution runs only when memory
// is released (free, process exit, close); if every container is
// blocked in a suspended allocation, no such event can occur again.
//
// With single-allocation programs — the paper's entire evaluation —
// this state is unreachable: a paused container then holds no usage, so
// the reclaim step of the previous redistribution had the full freed
// capacity available and always fully satisfies at least its first
// pick. Multi-allocation programs can reach it via classic
// hold-and-wait (a paused container retaining earlier allocations),
// the residual risk the authors' prior fault-tolerance study [10]
// addresses.
func (s *State) Stalled() bool {
	s.lockAll()
	defer s.unlockAll()
	anyPaused := false
	for _, c := range s.allContainersLocked() {
		if len(c.pending) > 0 {
			anyPaused = true
		} else {
			return false // an unblocked container may still release memory
		}
	}
	return anyPaused
}

func indexOfSize(sizes []bytesize.Size, size bytesize.Size) int {
	for i, s := range sizes {
		if s == size {
			return i
		}
	}
	return -1
}

func filterPending(reqs []pendingReq, pid int) []pendingReq {
	out := reqs[:0]
	for _, r := range reqs {
		if r.pid != pid {
			out = append(out, r)
		}
	}
	return out
}

// CheckInvariants verifies the scheduler's core invariants and returns a
// descriptive error if any is violated. Tests and the simulator call it
// after every step.
func (s *State) CheckInvariants() error {
	s.lockAll()
	defer s.unlockAll()
	var grantSum bytesize.Size
	for _, c := range s.allContainersLocked() {
		id := c.id
		if c.used < 0 {
			return fmt.Errorf("core: container %s used %v < 0", id, c.used)
		}
		if c.used > c.grant {
			return fmt.Errorf("core: container %s used %v > grant %v", id, c.used, c.grant)
		}
		if c.grant > c.limit {
			return fmt.Errorf("core: container %s grant %v > limit %v", id, c.grant, c.limit)
		}
		grantSum += c.grant
		var tracked bytesize.Size
		charged := 0
		for _, p := range c.procs {
			for _, sz := range p.allocs {
				tracked += sz
			}
			for _, sz := range p.accepted {
				tracked += sz
			}
			if p.charged {
				charged++
			}
		}
		if want := tracked + bytesize.Size(charged)*s.cfg.ContextOverhead; want != c.used {
			return fmt.Errorf("core: container %s used %v != tracked %v", id, c.used, want)
		}
	}
	if grantSum+s.pool != s.cfg.Capacity {
		return fmt.Errorf("core: grants %v + pool %v != capacity %v", grantSum, s.pool, s.cfg.Capacity)
	}
	if s.namedTenants > 0 {
		// Per-tenant quota invariant: a tenant's summed grants never
		// exceed its quota. Containers of one tenant should agree on the
		// quota; if they do not, the loosest (largest) binding is checked.
		sums := make(map[string]bytesize.Size)
		quotas := make(map[string]bytesize.Size)
		for _, c := range s.allContainersLocked() {
			if c.tenant.Name == "" {
				continue
			}
			sums[c.tenant.Name] += c.grant
			if c.tenant.Quota > quotas[c.tenant.Name] {
				quotas[c.tenant.Name] = c.tenant.Quota
			}
		}
		for name, q := range quotas {
			if q > 0 && sums[name] > q {
				return fmt.Errorf("core: tenant %s grants %v exceed quota %v", name, sums[name], q)
			}
		}
	}
	return nil
}
