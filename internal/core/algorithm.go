package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"convgpu/internal/bytesize"
)

// Candidate describes a paused container eligible for additional memory
// during redistribution. Deficit is the memory still missing relative to
// what the container requested at creation time (limit - grant); with
// named tenants active it is further capped by the tenant's quota
// headroom and guarantee-reserved pool share (the effective deficit —
// what the container could actually receive right now).
//
// The tenant fields are populated only while the scheduler has named
// tenants registered; tenant-aware wake policies order candidates by
// them, and the paper's four algorithms ignore them.
type Candidate struct {
	ID         ContainerID
	CreatedSeq uint64 // creation order (smaller = older)
	SuspendSeq uint64 // most recent suspension order (larger = more recent)
	Deficit    bytesize.Size

	Tenant          string        // tenant name ("" = default tenant)
	TenantWeight    int           // fair-share weight (0 reads as 1)
	TenantPriority  int           // preemption priority
	TenantGrant     bytesize.Size // tenant's summed grants on this device
	TenantGuarantee bytesize.Size // tenant's soft reservation
}

// Algorithm selects which paused container receives freed GPU memory
// (paper §III-D). Pick returns an index into cands, or -1 to stop
// redistributing. cands is non-empty, ordered by creation, and every
// entry has a positive deficit; pool is the free memory available.
type Algorithm interface {
	Name() string
	Pick(pool bytesize.Size, cands []Candidate) int
}

// Algorithm names accepted by NewAlgorithm.
const (
	AlgFIFO      = "fifo"
	AlgBestFit   = "bestfit"
	AlgRecentUse = "recentuse"
	AlgRandom    = "random"
)

// AlgorithmNames lists the four paper algorithms in presentation order.
func AlgorithmNames() []string {
	return []string{AlgFIFO, AlgBestFit, AlgRecentUse, AlgRandom}
}

// NewAlgorithm constructs an algorithm by name ("fifo", "bestfit",
// "recentuse", "random"; short aliases "bf", "ru", "rand" are accepted).
// seed only affects "random".
func NewAlgorithm(name string, seed int64) (Algorithm, error) {
	switch strings.ToLower(name) {
	case AlgFIFO, "first-in-first-out":
		return FIFO{}, nil
	case AlgBestFit, "bf", "best-fit":
		return BestFit{}, nil
	case AlgRecentUse, "ru", "recent-use":
		return RecentUse{}, nil
	case AlgRandom, "rand":
		return NewRandom(seed), nil
	default:
		return nil, fmt.Errorf("core: unknown scheduling algorithm %q", name)
	}
}

// FIFO selects the oldest created container among paused containers and
// assigns it memory up to its creation-time request.
type FIFO struct{}

// Name implements Algorithm.
func (FIFO) Name() string { return AlgFIFO }

// Pick implements Algorithm.
func (FIFO) Pick(pool bytesize.Size, cands []Candidate) int {
	best := -1
	for i, c := range cands {
		if best == -1 || c.CreatedSeq < cands[best].CreatedSeq {
			best = i
		}
	}
	return best
}

// BestFit selects the container whose insufficient memory is closest to,
// but does not exceed, the remaining free memory; if no container fits,
// it selects the one with the least insufficient memory. This maximizes
// GPU memory throughput — the paper's fastest algorithm for overall
// completion beyond 18 containers — at the cost of potential starvation
// of large containers (higher average suspended time beyond 26).
type BestFit struct{}

// Name implements Algorithm.
func (BestFit) Name() string { return AlgBestFit }

// Pick implements Algorithm.
func (BestFit) Pick(pool bytesize.Size, cands []Candidate) int {
	bestFit, bestSmall := -1, -1
	for i, c := range cands {
		if c.Deficit <= pool {
			// Fits: keep the largest deficit <= pool ("closest, but not
			// exceed"). Ties go to the older container for determinism.
			if bestFit == -1 || c.Deficit > cands[bestFit].Deficit ||
				(c.Deficit == cands[bestFit].Deficit && c.CreatedSeq < cands[bestFit].CreatedSeq) {
				bestFit = i
			}
		}
		if bestSmall == -1 || c.Deficit < cands[bestSmall].Deficit ||
			(c.Deficit == cands[bestSmall].Deficit && c.CreatedSeq < cands[bestSmall].CreatedSeq) {
			bestSmall = i
		}
	}
	if bestFit != -1 {
		return bestFit
	}
	return bestSmall
}

// RecentUse selects the most recently suspended container.
type RecentUse struct{}

// Name implements Algorithm.
func (RecentUse) Name() string { return AlgRecentUse }

// Pick implements Algorithm.
func (RecentUse) Pick(pool bytesize.Size, cands []Candidate) int {
	best := -1
	for i, c := range cands {
		if best == -1 || c.SuspendSeq > cands[best].SuspendSeq {
			best = i
		}
	}
	return best
}

// Random selects uniformly among paused containers. The seed makes
// experiment runs reproducible.
type Random struct {
	rng *rand.Rand
}

// NewRandom returns a Random algorithm with its own seeded source.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Algorithm.
func (*Random) Name() string { return AlgRandom }

// Pick implements Algorithm.
func (r *Random) Pick(pool bytesize.Size, cands []Candidate) int {
	if len(cands) == 0 {
		return -1
	}
	// Stable input order keeps the draw reproducible regardless of how
	// the caller assembled the slice.
	idx := make([]int, len(cands))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return cands[idx[a]].CreatedSeq < cands[idx[b]].CreatedSeq
	})
	return idx[r.rng.Intn(len(idx))]
}

var (
	_ Algorithm = FIFO{}
	_ Algorithm = BestFit{}
	_ Algorithm = RecentUse{}
	_ Algorithm = (*Random)(nil)
)
