package wal

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes to the segment replay path: Open
// must never panic, and whatever state it recovers must be writable and
// must round-trip through a second recovery.
func FuzzWALReplay(f *testing.F) {
	// Seed with a valid two-record log, a torn tail, and junk.
	valid := []byte{}
	for _, rec := range []Record{
		{Seq: 1, Kind: KindRegister, Container: "a", Amount: 10},
		{Seq: 2, Kind: KindClose, Container: "a"},
	} {
		r := rec
		var err error
		valid, err = appendRecord(valid, &r)
		if err != nil {
			f.Fatal(err)
		}
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte("not a wal segment at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o600); err != nil {
			t.Skip()
		}
		l, err := Open(Options{Dir: dir, Sync: SyncNone})
		if err != nil {
			t.Fatalf("Open on fuzzed segment: %v", err)
		}
		first := l.Sessions()
		if _, err := l.Append(Record{Kind: KindRegister, Container: "post", Amount: 1}); err != nil {
			t.Fatalf("Append after fuzzed recovery: %v", err)
		}
		l.Close()

		r, err := Open(Options{Dir: dir, Sync: SyncNone})
		if err != nil {
			t.Fatalf("second Open: %v", err)
		}
		defer r.Close()
		again := r.Sessions()
		if len(again) != len(first)+1 {
			// "post" is new; everything recovered the first time must
			// survive the second (recovery is deterministic).
			if _, had := sessionsMap(r)["post"]; !had || len(again) < len(first) {
				t.Fatalf("recovery not stable: first %d sessions, second %d", len(first), len(again))
			}
		}
	})
}
