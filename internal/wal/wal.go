// Package wal is the daemon's durable admission store: an embedded
// append-only write-ahead log of admission events plus a snapshot store
// that bounds restart time. Every event the daemon acknowledges —
// register, close, alloc grant, release, suspend, resume, lease expiry,
// failover migration — is appended (and, per the sync policy, fsynced)
// before the acknowledgement leaves, so the scheduler's view of grants
// survives any crash. Recovery is "load newest snapshot + replay tail",
// replacing the per-container session.json glob of earlier releases
// (kept one release as a read-only import path — see the daemon).
//
// On disk a log directory holds numbered segment files
// (wal-<firstseq>.seg) of CRC-framed records and snapshot files
// (snap-<seq>.snap). A torn tail record — the signature of a crash mid
// append — is truncated silently; a checksum failure anywhere cuts the
// usable log at the last intact record and drops whatever follows,
// which is the only safe reading of a log whose middle is gone.
package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SyncMode selects when appends reach the platter.
type SyncMode int

const (
	// SyncAlways fsyncs every append before it returns: no acknowledged
	// event is ever lost. The default.
	SyncAlways SyncMode = iota
	// SyncInterval fsyncs at most once per Options.SyncInterval, piggy
	// backed on appends (plus rotation, snapshot and close). A crash
	// can lose up to one interval of acknowledged events.
	SyncInterval
	// SyncNone never fsyncs explicitly (the OS flushes on its own
	// schedule; Close still syncs). For benchmarks and tests.
	SyncNone
)

// ParseSyncPolicy reads the -fsync knob: "always", "none", or a
// Go duration ("5ms") meaning SyncInterval at that period.
func ParseSyncPolicy(s string) (SyncMode, time.Duration, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "always":
		return SyncAlways, 0, nil
	case "none", "never":
		return SyncNone, 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return 0, 0, fmt.Errorf("wal: fsync policy %q: want always, none, or a positive duration", s)
	}
	return SyncInterval, d, nil
}

// DefaultSegmentBytes is the segment rotation threshold when
// Options.SegmentBytes is zero. Small enough that compaction reclaims
// space promptly; large enough that a million-record log stays in the
// tens of segments.
const DefaultSegmentBytes = 4 << 20

// Options configures Open.
type Options struct {
	// Dir is the log directory, created if missing. Required.
	Dir string
	// Sync selects the fsync policy (default SyncAlways).
	Sync SyncMode
	// SyncInterval is the max time between fsyncs under SyncInterval.
	SyncInterval time.Duration
	// SegmentBytes rotates the active segment past this size
	// (DefaultSegmentBytes when 0).
	SegmentBytes int64
	// Logf receives recovery diagnostics (torn tails, dropped bytes,
	// discarded snapshots). Nil discards them.
	Logf func(format string, args ...any)
}

// Stats is a point-in-time summary of the store, served by the admin
// plane's /v1/wal and exported as gauges by internal/obs.
type Stats struct {
	Segments    int    `json:"segments"`
	SizeBytes   int64  `json:"size_bytes"`
	LastSeq     uint64 `json:"last_seq"`
	SnapshotSeq uint64 `json:"snapshot_seq"`
	Sessions    int    `json:"sessions"`
	Tenants     int    `json:"tenants,omitempty"`
	Appends     uint64 `json:"appends"`
	Syncs       uint64 `json:"syncs"`
	// Replayed counts records folded at Open; TailDropped counts bytes
	// discarded past the last intact record.
	Replayed    uint64 `json:"replayed"`
	TailDropped int64  `json:"tail_dropped_bytes"`
}

// Log is an open write-ahead log. All methods are safe for concurrent
// use.
type Log struct {
	opts Options

	mu       sync.Mutex
	f        *os.File // active segment
	fsize    int64    // active segment size
	dirSize  int64    // total size of sealed segments (not the active one)
	sealed   int      // number of sealed segments on disk
	nextSeq  uint64
	snapSeq  uint64
	sessions map[string]Session
	tenants  map[string]TenantDef
	buf      []byte
	lastSync time.Time
	appends  uint64
	syncs    uint64
	replayed uint64
	dropped  int64
	fsyncObs func(time.Duration)
	closed   bool
}

// segmentName builds the file name for a segment starting at seq.
func segmentName(seq uint64) string { return fmt.Sprintf("wal-%016x.seg", seq) }

// parseSeqName extracts the sequence number from wal-/snap- file names.
func parseSeqName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	n, err := strconv.ParseUint(mid, 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Open loads (or creates) the log in opts.Dir: newest valid snapshot,
// tail replay, torn-tail truncation, and a writable active segment.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("wal: Options.Dir is required")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.Sync == SyncInterval && opts.SyncInterval <= 0 {
		return nil, fmt.Errorf("wal: SyncInterval policy needs a positive interval")
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	l := &Log{opts: opts, sessions: make(map[string]Session), tenants: make(map[string]TenantDef)}
	if err := l.recover(); err != nil {
		return nil, err
	}
	return l, nil
}

// recover loads the newest valid snapshot and replays the segment tail.
func (l *Log) recover() error {
	entries, err := os.ReadDir(l.opts.Dir)
	if err != nil {
		return fmt.Errorf("wal: scan dir: %w", err)
	}
	var snapSeqs []uint64
	var segSeqs []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSeqName(e.Name(), "snap-", ".snap"); ok {
			snapSeqs = append(snapSeqs, seq)
		}
		if seq, ok := parseSeqName(e.Name(), "wal-", ".seg"); ok {
			segSeqs = append(segSeqs, seq)
		}
	}
	sort.Slice(snapSeqs, func(i, j int) bool { return snapSeqs[i] > snapSeqs[j] }) // newest first
	sort.Slice(segSeqs, func(i, j int) bool { return segSeqs[i] < segSeqs[j] })    // oldest first

	// Newest snapshot that validates wins; invalid ones are discarded so
	// the next restart does not re-try them.
	for _, seq := range snapSeqs {
		path := filepath.Join(l.opts.Dir, snapshotName(seq))
		snapSeq, sessions, tenants, err := loadSnapshot(path)
		if err != nil {
			l.opts.Logf("wal: discarding unreadable snapshot %s: %v", snapshotName(seq), err)
			os.Remove(path)
			continue
		}
		l.snapSeq = snapSeq
		l.sessions = sessions
		l.tenants = tenants
		break
	}
	l.nextSeq = l.snapSeq + 1

	// Replay segments in order, folding records newer than the snapshot.
	// The first undecodable record ends the usable log: the rest of that
	// segment is truncated away and any later segments are dropped.
	logEnded := false
	var lastSegStart uint64
	for i, start := range segSeqs {
		path := filepath.Join(l.opts.Dir, segmentName(start))
		if logEnded {
			info, _ := os.Stat(path)
			if info != nil {
				l.dropped += info.Size()
			}
			l.opts.Logf("wal: dropping segment %s past the corruption point", segmentName(start))
			os.Remove(path)
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("wal: read segment: %w", err)
		}
		off := 0
		var rec Record
		for off < len(data) {
			n, err := decodeRecord(data[off:], &rec)
			if err != nil {
				drop := int64(len(data) - off)
				l.dropped += drop
				if err == errTornRecord && i == len(segSeqs)-1 {
					l.opts.Logf("wal: truncating torn tail record in %s (%d bytes)", segmentName(start), drop)
				} else {
					l.opts.Logf("wal: segment %s corrupt at offset %d (%v); log ends at seq %d", segmentName(start), off, err, l.nextSeq-1)
				}
				if terr := os.Truncate(path, int64(off)); terr != nil {
					return fmt.Errorf("wal: truncate corrupt segment: %w", terr)
				}
				logEnded = true
				break
			}
			if rec.Seq >= l.nextSeq {
				l.fold(&rec)
				l.nextSeq = rec.Seq + 1
				l.replayed++
			}
			off += n
		}
		lastSegStart = start
		if info, err := os.Stat(path); err == nil {
			l.dirSize += info.Size()
			l.sealed++
		}
	}

	// Re-open the last segment for append, or start a fresh one.
	if l.sealed > 0 {
		path := filepath.Join(l.opts.Dir, segmentName(lastSegStart))
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("wal: reopen segment: %w", err)
		}
		info, err := f.Stat()
		if err != nil {
			f.Close()
			return err
		}
		l.f = f
		l.fsize = info.Size()
		l.dirSize -= info.Size()
		l.sealed--
		return nil
	}
	return l.openSegment()
}

// openSegment starts a fresh active segment at the current sequence.
// Caller holds l.mu (or is inside Open).
func (l *Log) openSegment() error {
	path := filepath.Join(l.opts.Dir, segmentName(l.nextSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	l.f = f
	l.fsize = 0
	return nil
}

// fold applies one record to the in-memory session state.
func (l *Log) fold(rec *Record) {
	if !rec.Kind.sessionKind() || rec.Container == "" {
		return
	}
	switch rec.Kind {
	case KindRegister, KindMigrate:
		l.sessions[rec.Container] = Session{Container: rec.Container, Limit: rec.Amount, Device: int(rec.Device), Tenant: rec.Tenant}
	case KindClose, KindLeaseExpire, KindEvict:
		delete(l.sessions, rec.Container)
	case KindTenant:
		var def TenantDef
		if err := json.Unmarshal([]byte(rec.Meta), &def); err != nil {
			l.opts.Logf("wal: tenant record %q has unreadable definition: %v", rec.Container, err)
			return
		}
		def.Name = rec.Container
		l.tenants[rec.Container] = def
	}
}

// SetFsyncObserver installs a hook timing every fsync (internal/obs
// routes it into the fsync-latency histogram). Pass nil to remove.
func (l *Log) SetFsyncObserver(fn func(time.Duration)) {
	l.mu.Lock()
	l.fsyncObs = fn
	l.mu.Unlock()
}

// Append assigns the record its sequence number, writes it to the
// active segment and applies the sync policy. It returns the assigned
// sequence. The record is folded into the live session view before the
// call returns, so Sessions always reflects every acknowledged event.
func (l *Log) Append(rec Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: log closed")
	}
	if l.fsize >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	rec.Seq = l.nextSeq
	var err error
	l.buf, err = appendRecord(l.buf[:0], &rec)
	if err != nil {
		return 0, err
	}
	if _, err := l.f.Write(l.buf); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.fsize += int64(len(l.buf))
	l.nextSeq++
	l.appends++
	l.fold(&rec)
	switch l.opts.Sync {
	case SyncAlways:
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	case SyncInterval:
		if time.Since(l.lastSync) >= l.opts.SyncInterval {
			if err := l.syncLocked(); err != nil {
				return 0, err
			}
		}
	}
	return rec.Seq, nil
}

// syncLocked fsyncs the active segment and feeds the latency observer.
func (l *Log) syncLocked() error {
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.lastSync = time.Now()
	l.syncs++
	if l.fsyncObs != nil {
		l.fsyncObs(l.lastSync.Sub(start))
	}
	return nil
}

// Sync forces an fsync of the active segment regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log closed")
	}
	return l.syncLocked()
}

// rotateLocked seals the active segment and opens a fresh one.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.dirSize += l.fsize
	l.sealed++
	return l.openSegment()
}

// Sessions returns the live session set, sorted by container ID — the
// recovered truth a restarted daemon re-admits.
func (l *Log) Sessions() []Session {
	l.mu.Lock()
	out := make([]Session, 0, len(l.sessions))
	for _, s := range l.sessions {
		out = append(out, s)
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Container < out[j].Container })
	return out
}

// Tenants returns the folded tenant definitions, sorted by name — the
// recovered tenant table a restarted daemon re-binds sessions against.
func (l *Log) Tenants() []TenantDef {
	l.mu.Lock()
	out := make([]TenantDef, 0, len(l.tenants))
	for _, t := range l.tenants {
		out = append(out, t)
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TenantRecord builds the KindTenant record persisting one tenant
// definition; the caller appends it (stamping the event time) like any
// other session-changing record.
func TenantRecord(def TenantDef) (Record, error) {
	if def.Name == "" {
		return Record{}, fmt.Errorf("wal: tenant definition without a name")
	}
	meta, err := json.Marshal(def)
	if err != nil {
		return Record{}, fmt.Errorf("wal: encode tenant definition: %w", err)
	}
	return Record{Kind: KindTenant, Container: def.Name, Meta: string(meta)}, nil
}

// LastSeq reports the highest assigned sequence number (0 when empty).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq - 1
}

// Snapshot writes a snapshot of the live session set at the current
// sequence without removing any segment. Returns the covered sequence.
func (l *Log) Snapshot() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapshotLocked()
}

func (l *Log) snapshotLocked() (uint64, error) {
	if l.closed {
		return 0, fmt.Errorf("wal: log closed")
	}
	// The snapshot must not claim coverage of records still in the page
	// cache: sync first so covered == durable.
	if err := l.syncLocked(); err != nil {
		return 0, err
	}
	seq := l.nextSeq - 1
	if _, err := writeSnapshot(l.opts.Dir, seq, l.sessions, l.tenants); err != nil {
		return 0, err
	}
	l.snapSeq = seq
	return seq, nil
}

// Compact is snapshot-then-truncate: write a snapshot at the current
// sequence, seal the active segment, then delete every segment the
// snapshot covers and every snapshot older than the previous one (the
// newest two are kept so a bad platter sector under the new snapshot
// still leaves a recovery path).
func (l *Log) Compact() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log closed")
	}
	if _, err := l.snapshotLocked(); err != nil {
		return err
	}
	// Seal and replace the active segment so every record <= snapSeq
	// lives in a sealed segment eligible for deletion. An empty active
	// segment is already past the snapshot (its first sequence would be
	// nextSeq) — sealing it would collide with its own replacement.
	if l.fsize > 0 {
		if err := l.f.Close(); err != nil {
			return err
		}
		l.dirSize += l.fsize
		l.sealed++
		if err := l.openSegment(); err != nil {
			return err
		}
	}
	entries, err := os.ReadDir(l.opts.Dir)
	if err != nil {
		return fmt.Errorf("wal: scan for compaction: %w", err)
	}
	var snapSeqs []uint64
	for _, e := range entries {
		if seq, ok := parseSeqName(e.Name(), "snap-", ".snap"); ok {
			snapSeqs = append(snapSeqs, seq)
		}
	}
	sort.Slice(snapSeqs, func(i, j int) bool { return snapSeqs[i] > snapSeqs[j] })
	for _, e := range entries {
		if seq, ok := parseSeqName(e.Name(), "wal-", ".seg"); ok && seq <= l.snapSeq && seq != l.nextSeq {
			path := filepath.Join(l.opts.Dir, e.Name())
			if info, err := os.Stat(path); err == nil {
				l.dirSize -= info.Size()
			}
			os.Remove(path)
			l.sealed--
		}
	}
	for i, seq := range snapSeqs {
		if i >= 2 {
			os.Remove(filepath.Join(l.opts.Dir, snapshotName(seq)))
		}
	}
	return nil
}

// Stats reports the store's current shape.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Segments:    l.sealed + 1,
		SizeBytes:   l.dirSize + l.fsize,
		LastSeq:     l.nextSeq - 1,
		SnapshotSeq: l.snapSeq,
		Sessions:    len(l.sessions),
		Tenants:     len(l.tenants),
		Appends:     l.appends,
		Syncs:       l.syncs,
		Replayed:    l.replayed,
		TailDropped: l.dropped,
	}
}

// Close fsyncs and closes the active segment. Further appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}
