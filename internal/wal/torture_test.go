package wal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// segmentFiles returns the segment paths in replay (name) order.
func segmentFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	var segs []string
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".seg" {
			segs = append(segs, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(segs)
	return segs
}

// TestTornTailTruncated crashes mid-append: the final frame is cut
// short. Recovery must keep every intact record and drop only the torn
// tail.
func TestTornTailTruncated(t *testing.T) {
	for _, cut := range []int{1, 4, frameHeaderSize, frameHeaderSize + 3} {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			l := open(t, dir, Options{})
			for i := 0; i < 10; i++ {
				mustAppend(t, l, Record{Kind: KindRegister, Container: fmt.Sprintf("c%02d", i), Amount: int64(i + 1)})
			}
			l.Close()

			segs := segmentFiles(t, dir)
			last := segs[len(segs)-1]
			info, err := os.Stat(last)
			if err != nil {
				t.Fatal(err)
			}
			if int64(cut) >= info.Size() {
				t.Fatalf("cut %d >= segment size %d", cut, info.Size())
			}
			if err := os.Truncate(last, info.Size()-int64(cut)); err != nil {
				t.Fatalf("truncate: %v", err)
			}

			r := open(t, dir, Options{})
			defer r.Close()
			got := sessionsMap(r)
			// The torn frame is the last record (c09) unless the cut removed
			// only part of its tail... any cut into the final frame drops
			// exactly that record.
			if len(got) != 9 {
				t.Fatalf("recovered %d sessions, want 9: %v", len(got), got)
			}
			if _, ok := got["c09"]; ok {
				t.Fatal("torn record c09 survived recovery")
			}
			if r.Stats().TailDropped == 0 {
				t.Fatal("TailDropped not counted")
			}
			// The log stays writable and re-recoverable after truncation.
			mustAppend(t, r, Record{Kind: KindRegister, Container: "after", Amount: 5})
			r.Close()
			r2 := open(t, dir, Options{})
			defer r2.Close()
			if _, ok := sessionsMap(r2)["after"]; !ok {
				t.Fatal("post-truncation append lost on second recovery")
			}
		})
	}
}

// TestCorruptCRCMidLog flips a byte inside an early record: everything
// from that record on is unusable, everything before it survives, and
// later segments are discarded (the log cannot have holes).
func TestCorruptCRCMidLog(t *testing.T) {
	dir := t.TempDir()
	l := open(t, dir, Options{SegmentBytes: 128}) // several segments
	for i := 0; i < 30; i++ {
		mustAppend(t, l, Record{Kind: KindRegister, Container: fmt.Sprintf("c%02d", i), Amount: int64(i + 1)})
	}
	l.Close()

	segs := segmentFiles(t, dir)
	if len(segs) < 3 {
		t.Fatalf("want >=3 segments, got %d", len(segs))
	}
	// Corrupt the first record payload of the second segment.
	victim := segs[1]
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeaderSize] ^= 0xFF
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r := open(t, dir, Options{})
	defer r.Close()
	got := sessionsMap(r)
	// Every session from segment one must be present; none from the
	// corrupt point on.
	first, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	wantCount := 0
	for buf := first; len(buf) > 0; {
		var rec Record
		n, err := decodeRecord(buf, &rec)
		if err != nil {
			t.Fatalf("first segment should be intact: %v", err)
		}
		wantCount++
		buf = buf[n:]
	}
	if len(got) != wantCount {
		t.Fatalf("recovered %d sessions, want %d (first segment only)", len(got), wantCount)
	}
	// Later segments must be gone from disk: new appends get sequence
	// numbers that would otherwise collide with discarded records.
	for _, s := range segmentFiles(t, dir) {
		if s > victim {
			t.Fatalf("segment %s after corruption point still on disk", s)
		}
	}
	if r.LastSeq() != uint64(wantCount) {
		t.Fatalf("LastSeq = %d, want %d", r.LastSeq(), wantCount)
	}
}

// TestPrefixRecovery replays every prefix of a generated log and checks
// the recovered sessions against a plain map oracle folding the same
// prefix. This is the "recovery from any crash point" property: a crash
// after byte N leaves some prefix of whole records, and recovery of
// that prefix must equal folding exactly those records.
func TestPrefixRecovery(t *testing.T) {
	dir := t.TempDir()
	l := open(t, dir, Options{})
	type ev struct {
		rec Record
		end int64 // file offset after this record
	}
	var evs []ev
	ops := []Record{
		{Kind: KindRegister, Container: "a", Amount: 10, Device: 1},
		{Kind: KindRegister, Container: "b", Amount: 20},
		{Kind: KindGrant, Container: "a", Amount: 5, PID: 1},
		{Kind: KindMigrate, Container: "b", Amount: 15, Device: 2},
		{Kind: KindClose, Container: "a"},
		{Kind: KindRegister, Container: "c", Amount: 30},
		{Kind: KindLeaseExpire, Container: "b"},
		{Kind: KindRegister, Container: "a", Amount: 11},
		{Kind: KindEvict, Container: "c", Meta: "node down"},
		{Kind: KindRelease, Container: "a", Amount: 5},
	}
	seg := filepath.Join(dir, segmentName(1))
	for _, op := range ops {
		mustAppend(t, l, op)
		info, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		evs = append(evs, ev{rec: op, end: info.Size()})
	}
	l.Close()
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}

	oracle := map[string]Session{}
	for i := 0; i <= len(evs); i++ {
		// Restore the log to the prefix ending after record i-1, plus a
		// torn half-record if there is a next one.
		end := int64(0)
		if i > 0 {
			end = evs[i-1].end
		}
		cut := end
		if i < len(evs) {
			cut = end + (evs[i].end-end)/2 // torn next record
			if cut == end && evs[i].end > end {
				cut = end + 1
			}
		}
		pdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(pdir, segmentName(1)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r := open(t, pdir, Options{})
		got := sessionsMap(r)
		r.Close()
		if len(got) != len(oracle) {
			t.Fatalf("prefix %d: recovered %d sessions, oracle has %d (%v vs %v)", i, len(got), len(oracle), got, oracle)
		}
		for id, s := range oracle {
			if got[id] != s {
				t.Fatalf("prefix %d: session %s = %+v, oracle %+v", i, id, got[id], s)
			}
		}
		// Fold record i into the oracle for the next round.
		if i < len(evs) {
			rec := evs[i].rec
			switch rec.Kind {
			case KindRegister, KindMigrate:
				oracle[rec.Container] = Session{Container: rec.Container, Limit: rec.Amount, Device: int(rec.Device)}
			case KindClose, KindLeaseExpire, KindEvict:
				delete(oracle, rec.Container)
			}
		}
	}
}

// TestGarbageFileRejected ensures stray bytes that happen to sit in a
// segment file don't crash Open.
func TestGarbageFileRejected(t *testing.T) {
	dir := t.TempDir()
	garbage := make([]byte, 777)
	for i := range garbage {
		garbage[i] = byte(i * 31)
	}
	binary.LittleEndian.PutUint32(garbage, 0xFFFFFFFF) // absurd length
	if err := os.WriteFile(filepath.Join(dir, segmentName(1)), garbage, 0o644); err != nil {
		t.Fatal(err)
	}
	l := open(t, dir, Options{})
	defer l.Close()
	if n := len(l.Sessions()); n != 0 {
		t.Fatalf("garbage produced %d sessions", n)
	}
	mustAppend(t, l, Record{Kind: KindRegister, Container: "x", Amount: 1})
}
