package wal

import (
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"
)

// TestRecoveryConformanceLarge drives the log with a long random stream
// of admission events against an in-memory map oracle, reopening the
// log (with snapshots and compactions sprinkled in) at several
// checkpoints. After every reopen the recovered session set must equal
// the oracle exactly — the ISSUE's restart-recovery-is-lossless
// acceptance check at 10^5-event scale.
func TestRecoveryConformanceLarge(t *testing.T) {
	events := 100_000
	if testing.Short() {
		events = 10_000
	}
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(0xC04F))
	oracle := make(map[string]Session)
	live := make([]string, 0, 4096) // open containers, for targeted closes

	l := open(t, dir, Options{SegmentBytes: 1 << 20})
	checkpoints := 4
	for i := 0; i < events; i++ {
		var rec Record
		switch op := rng.Intn(10); {
		case op < 4 || len(live) == 0: // register
			id := "c" + strconv.Itoa(rng.Intn(events/4))
			rec = Record{Kind: KindRegister, Container: id,
				Amount: int64(1+rng.Intn(1<<20)) * 1024, Device: int32(rng.Intn(8))}
			if _, open := oracle[id]; !open {
				live = append(live, id)
			}
			oracle[id] = Session{Container: id, Limit: rec.Amount, Device: int(rec.Device)}
		case op < 6: // close / lease-expire / evict: all fold to delete
			id := live[rng.Intn(len(live))]
			kinds := []Kind{KindClose, KindLeaseExpire, KindEvict}
			rec = Record{Kind: kinds[rng.Intn(len(kinds))], Container: id}
			delete(oracle, id)
			for j, v := range live {
				if v == id {
					live[j] = live[len(live)-1]
					live = live[:len(live)-1]
					break
				}
			}
		case op < 7: // migrate: re-home an open session
			id := live[rng.Intn(len(live))]
			rec = Record{Kind: KindMigrate, Container: id,
				Amount: oracle[id].Limit, Device: int32(rng.Intn(8)), Meta: "conformance move"}
			oracle[id] = Session{Container: id, Limit: rec.Amount, Device: int(rec.Device)}
		default: // audit traffic: must never change the fold
			id := live[rng.Intn(len(live))]
			kinds := []Kind{KindGrant, KindSuspend, KindResume, KindReject, KindRelease, KindAttach}
			rec = Record{Kind: kinds[rng.Intn(len(kinds))], Container: id,
				Amount: int64(rng.Intn(1 << 20)), PID: int32(rng.Intn(1 << 15))}
		}
		if _, err := l.Append(rec); err != nil {
			t.Fatalf("event %d: Append: %v", i, err)
		}

		if (i+1)%(events/checkpoints) == 0 {
			// Occasionally snapshot or compact before the crash point, so
			// recovery exercises snapshot+tail, not just raw replay.
			switch rng.Intn(3) {
			case 0:
				if _, err := l.Snapshot(); err != nil {
					t.Fatalf("event %d: Snapshot: %v", i, err)
				}
			case 1:
				if err := l.Compact(); err != nil {
					t.Fatalf("event %d: Compact: %v", i, err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatalf("event %d: Close: %v", i, err)
			}
			l = open(t, dir, Options{SegmentBytes: 1 << 20})
			compare(t, i, l, oracle)
		}
	}
	l.Close()
}

// compare fails the test if the log's folded sessions differ from the
// oracle in any way.
func compare(t *testing.T, event int, l *Log, oracle map[string]Session) {
	t.Helper()
	got := l.Sessions()
	if len(got) != len(oracle) {
		t.Fatalf("after event %d: recovered %d sessions, oracle holds %d", event, len(got), len(oracle))
	}
	for _, s := range got {
		want, ok := oracle[s.Container]
		if !ok {
			t.Fatalf("after event %d: recovered session %q the oracle closed", event, s.Container)
		}
		if s != want {
			t.Fatalf("after event %d: session %q = %+v, oracle %+v", event, s.Container, s, want)
		}
	}
}

// TestRecoverySmoke bounds restart recovery wall time for CI: replaying
// a 50k-event log must finish within CONVGPU_RECOVERY_SMOKE_MS
// (default 5000). The threshold is an env knob so slow CI runners can
// widen it without a code change.
func TestRecoverySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery smoke is a timing gate; skipped in -short")
	}
	thresholdMS := 5000
	if v := os.Getenv("CONVGPU_RECOVERY_SMOKE_MS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("CONVGPU_RECOVERY_SMOKE_MS=%q: want a positive integer", v)
		}
		thresholdMS = n
	}
	dir := t.TempDir()
	l := open(t, dir, Options{})
	const events = 50_000
	for i := 0; i < events; i++ {
		rec := Record{Kind: KindRegister, Container: "c" + strconv.Itoa(i%10_000), Amount: 1 << 20}
		if i%3 == 2 {
			rec = Record{Kind: KindClose, Container: rec.Container}
		}
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	r, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	elapsed := time.Since(start)
	n := len(r.Sessions())
	r.Close()
	t.Logf("recovered %d sessions from %d events in %v", n, events, elapsed)
	if elapsed > time.Duration(thresholdMS)*time.Millisecond {
		t.Fatalf("recovery took %v, threshold %dms (tune CONVGPU_RECOVERY_SMOKE_MS)", elapsed, thresholdMS)
	}
}
