// Record framing: every event the daemon acknowledges is first appended
// to the log as one CRC-framed binary record. The frame is
//
//	[payload length : uint32 LE][CRC-32 (IEEE) of payload : uint32 LE][payload]
//
// and the payload is a fixed-field binary encoding (little-endian) of
// the Record struct. The CRC covers only the payload; a torn write —
// the crash landing mid-record — therefore fails either the length
// bound or the checksum, and replay stops exactly at the last intact
// record.

package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Kind classifies one admission event. Session-folding kinds
// (KindRegister, KindMigrate, KindClose, KindLeaseExpire, KindEvict)
// change the recovered session set; audit kinds record the allocation
// plane for operators and are ignored by replay's fold.
type Kind uint8

const (
	// KindRegister creates a session: Container admitted with Amount
	// (its memory limit) on Device.
	KindRegister Kind = 1
	// KindClose ends a session (the plugin's close signal, or the
	// daemon shutting the container down for any reason in Meta).
	KindClose Kind = 2
	// KindMigrate re-places a live session: a node failover moved
	// Container onto Device with (possibly clamped) limit Amount.
	KindMigrate Kind = 3
	// KindLeaseExpire ends a session whose lease ran out — folds
	// exactly like KindClose, kept distinct for audit.
	KindLeaseExpire Kind = 4
	// KindEvict ends a session a failover could not re-place — folds
	// exactly like KindClose, kept distinct for audit.
	KindEvict Kind = 5
	// KindTenant defines (or redefines) a tenant: Container carries the
	// tenant name and Meta its JSON-encoded TenantDef. Folded so a
	// restarted daemon recovers every tenant's quota/priority attributes
	// alongside the sessions bound to them.
	KindTenant Kind = 6

	// Audit kinds: the allocation plane. Replay ignores them.
	KindGrant   Kind = 16 // allocation accepted (Amount bytes, PID)
	KindSuspend Kind = 17 // allocation parked
	KindResume  Kind = 18 // parked allocation released (admitted)
	KindReject  Kind = 19 // allocation rejected (over limit)
	KindRelease Kind = 20 // memory returned (free / procexit / abort)
	KindAttach  Kind = 21 // wrapper (re)attached to its session
)

// String names the kind for traces and audit listings.
func (k Kind) String() string {
	switch k {
	case KindRegister:
		return "register"
	case KindClose:
		return "close"
	case KindMigrate:
		return "migrate"
	case KindLeaseExpire:
		return "lease_expire"
	case KindEvict:
		return "evict"
	case KindTenant:
		return "tenant"
	case KindGrant:
		return "grant"
	case KindSuspend:
		return "suspend"
	case KindResume:
		return "resume"
	case KindReject:
		return "reject"
	case KindRelease:
		return "release"
	case KindAttach:
		return "attach"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// sessionKind reports whether the kind changes the recovered session
// set (true for register/migrate/close/lease/evict/tenant).
func (k Kind) sessionKind() bool { return k >= KindRegister && k <= KindTenant }

// Record is one appended event. Seq is assigned by the log at append
// time (strictly increasing, never reused); all other fields are the
// caller's.
type Record struct {
	Seq       uint64
	At        int64 // event time, Unix nanoseconds
	Amount    int64 // limit (register/migrate) or size (grant/release)
	Device    int32
	PID       int32
	Kind      Kind
	Container string
	// Meta carries audit context: an eviction reason, the request ID of
	// the admin operation that caused the event, a failover's node pair
	// (and, for KindTenant, the JSON-encoded tenant definition).
	Meta string
	// Tenant names the tenant a register/migrate event binds the session
	// to (empty for the default tenant). Encoded as an optional trailer,
	// so tenantless records keep their historical byte layout and old
	// logs replay unchanged.
	Tenant string
}

// Encoded payload layout (after the 8-byte frame header):
//
//	seq    uint64 LE
//	at     int64  LE
//	amount int64  LE
//	device int32  LE
//	pid    int32  LE
//	kind   uint8
//	clen   uint16 LE, container bytes
//	mlen   uint16 LE, meta bytes
//	tlen   uint16 LE, tenant bytes — optional trailer, present only when
//	       the tenant name is non-empty (old records end at the meta)
const (
	frameHeaderSize = 8
	payloadFixed    = 8 + 8 + 8 + 4 + 4 + 1 + 2 + 2

	// maxRecordSize bounds a single record's payload; anything larger in
	// a file is corruption, not data (container IDs and meta strings are
	// both far under 64 KiB).
	maxRecordSize = 1 << 17
)

// appendRecord encodes rec as one frame onto dst.
func appendRecord(dst []byte, rec *Record) ([]byte, error) {
	if len(rec.Container) > 0xFFFF {
		return dst, fmt.Errorf("wal: container id %d bytes exceeds 64 KiB", len(rec.Container))
	}
	if len(rec.Meta) > 0xFFFF {
		return dst, fmt.Errorf("wal: meta %d bytes exceeds 64 KiB", len(rec.Meta))
	}
	if len(rec.Tenant) > 0xFFFF {
		return dst, fmt.Errorf("wal: tenant %d bytes exceeds 64 KiB", len(rec.Tenant))
	}
	plen := payloadFixed + len(rec.Container) + len(rec.Meta)
	if rec.Tenant != "" {
		plen += 2 + len(rec.Tenant)
	}
	if plen > maxRecordSize {
		return dst, fmt.Errorf("wal: record payload %d bytes exceeds cap %d", plen, maxRecordSize)
	}
	base := len(dst)
	dst = append(dst, make([]byte, frameHeaderSize)...)
	dst = binary.LittleEndian.AppendUint64(dst, rec.Seq)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(rec.At))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(rec.Amount))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(rec.Device))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(rec.PID))
	dst = append(dst, byte(rec.Kind))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(rec.Container)))
	dst = append(dst, rec.Container...)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(rec.Meta)))
	dst = append(dst, rec.Meta...)
	if rec.Tenant != "" {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(rec.Tenant)))
		dst = append(dst, rec.Tenant...)
	}
	payload := dst[base+frameHeaderSize:]
	binary.LittleEndian.PutUint32(dst[base:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[base+4:], crc32.ChecksumIEEE(payload))
	return dst, nil
}

// decodeRecord reads one frame from buf. It returns the decoded record
// and the number of bytes consumed. A short buffer, an out-of-bounds
// length, or a checksum mismatch returns an error — replay treats any
// of those as the end of the usable log.
func decodeRecord(buf []byte, rec *Record) (int, error) {
	if len(buf) < frameHeaderSize {
		return 0, errTornRecord
	}
	plen := int(binary.LittleEndian.Uint32(buf))
	if plen < payloadFixed || plen > maxRecordSize {
		return 0, fmt.Errorf("wal: record length %d out of bounds", plen)
	}
	if len(buf) < frameHeaderSize+plen {
		return 0, errTornRecord
	}
	payload := buf[frameHeaderSize : frameHeaderSize+plen]
	if crc := crc32.ChecksumIEEE(payload); crc != binary.LittleEndian.Uint32(buf[4:]) {
		return 0, fmt.Errorf("wal: record checksum mismatch")
	}
	rec.Seq = binary.LittleEndian.Uint64(payload)
	rec.At = int64(binary.LittleEndian.Uint64(payload[8:]))
	rec.Amount = int64(binary.LittleEndian.Uint64(payload[16:]))
	rec.Device = int32(binary.LittleEndian.Uint32(payload[24:]))
	rec.PID = int32(binary.LittleEndian.Uint32(payload[28:]))
	rec.Kind = Kind(payload[32])
	rest := payload[33:]
	clen := int(binary.LittleEndian.Uint16(rest))
	rest = rest[2:]
	if len(rest) < clen+2 {
		return 0, fmt.Errorf("wal: record container length %d overruns payload", clen)
	}
	rec.Container = string(rest[:clen])
	rest = rest[clen:]
	mlen := int(binary.LittleEndian.Uint16(rest))
	rest = rest[2:]
	if len(rest) < mlen {
		return 0, fmt.Errorf("wal: record meta length %d overruns payload", mlen)
	}
	rec.Meta = string(rest[:mlen])
	rest = rest[mlen:]
	// Optional tenant trailer: pre-tenant records end at the meta.
	rec.Tenant = ""
	if len(rest) > 0 {
		if len(rest) < 2 {
			return 0, fmt.Errorf("wal: record tenant trailer truncated")
		}
		tlen := int(binary.LittleEndian.Uint16(rest))
		rest = rest[2:]
		if len(rest) != tlen {
			return 0, fmt.Errorf("wal: record tenant length %d does not close payload (%d left)", tlen, len(rest))
		}
		rec.Tenant = string(rest)
	}
	return frameHeaderSize + plen, nil
}

// errTornRecord marks an incomplete trailing frame — the normal shape
// of a crash mid-append, recoverable by truncating the tail.
var errTornRecord = fmt.Errorf("wal: torn record at end of segment")
