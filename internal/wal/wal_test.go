package wal

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func open(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	opts.Dir = dir
	if opts.Sync == SyncAlways {
		// Tests that don't exercise the sync policy run unsynced: the
		// suite hits the filesystem thousands of times.
		opts.Sync = SyncNone
	}
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	return l
}

func mustAppend(t *testing.T, l *Log, rec Record) uint64 {
	t.Helper()
	seq, err := l.Append(rec)
	if err != nil {
		t.Fatalf("Append(%v %s): %v", rec.Kind, rec.Container, err)
	}
	return seq
}

func sessionsMap(l *Log) map[string]Session {
	m := make(map[string]Session)
	for _, s := range l.Sessions() {
		m[s.Container] = s
	}
	return m
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := open(t, dir, Options{})
	mustAppend(t, l, Record{Kind: KindRegister, Container: "a", Amount: 100, Device: 1})
	mustAppend(t, l, Record{Kind: KindRegister, Container: "b", Amount: 200})
	mustAppend(t, l, Record{Kind: KindGrant, Container: "a", Amount: 50, PID: 7}) // audit: no fold
	mustAppend(t, l, Record{Kind: KindClose, Container: "b"})
	mustAppend(t, l, Record{Kind: KindMigrate, Container: "a", Amount: 90, Device: 3})
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := open(t, dir, Options{})
	defer r.Close()
	got := r.Sessions()
	if len(got) != 1 {
		t.Fatalf("recovered %d sessions, want 1: %+v", len(got), got)
	}
	want := Session{Container: "a", Limit: 90, Device: 3}
	if got[0] != want {
		t.Fatalf("recovered session %+v, want %+v", got[0], want)
	}
	if seq := r.LastSeq(); seq != 5 {
		t.Fatalf("LastSeq = %d, want 5", seq)
	}
	// New appends continue the sequence.
	if seq := mustAppend(t, r, Record{Kind: KindRegister, Container: "c", Amount: 10}); seq != 6 {
		t.Fatalf("post-recovery append seq = %d, want 6", seq)
	}
}

func TestSnapshotAndCompact(t *testing.T) {
	dir := t.TempDir()
	l := open(t, dir, Options{SegmentBytes: 256}) // force rotation
	for i := 0; i < 100; i++ {
		id := string(rune('a' + i%26))
		mustAppend(t, l, Record{Kind: KindRegister, Container: id, Amount: int64(i + 1)})
	}
	before := l.Stats()
	if before.Segments < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", before.Segments)
	}
	if err := l.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after := l.Stats()
	if after.Segments != 1 {
		t.Fatalf("after compact: %d segments, want 1", after.Segments)
	}
	if after.SnapshotSeq != before.LastSeq {
		t.Fatalf("snapshot seq %d, want last seq %d", after.SnapshotSeq, before.LastSeq)
	}
	// Appends after compaction land in the fresh segment; recovery folds
	// snapshot + tail.
	mustAppend(t, l, Record{Kind: KindClose, Container: "a"})
	wantSessions := sessionsMap(l)
	l.Close()

	r := open(t, dir, Options{})
	defer r.Close()
	got := sessionsMap(r)
	if len(got) != len(wantSessions) {
		t.Fatalf("recovered %d sessions, want %d", len(got), len(wantSessions))
	}
	for id, s := range wantSessions {
		if got[id] != s {
			t.Fatalf("session %s: recovered %+v, want %+v", id, got[id], s)
		}
	}
	if r.Stats().Replayed != 1 {
		t.Fatalf("replayed %d records, want 1 (the post-snapshot close)", r.Stats().Replayed)
	}
	// Compacting twice in a row (empty active segment) must not fail.
	if err := r.Compact(); err != nil {
		t.Fatalf("second Compact: %v", err)
	}
	if err := r.Compact(); err != nil {
		t.Fatalf("third Compact (empty segment): %v", err)
	}
}

func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	l := open(t, dir, Options{})
	mustAppend(t, l, Record{Kind: KindRegister, Container: "a", Amount: 1})
	if _, err := l.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	mustAppend(t, l, Record{Kind: KindRegister, Container: "b", Amount: 2})
	if _, err := l.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	l.Close()

	// Corrupt the newest snapshot: recovery must fall back to the older
	// one plus segment replay, losing nothing.
	newest := filepath.Join(dir, snapshotName(2))
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatalf("read snapshot: %v", err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatalf("corrupt snapshot: %v", err)
	}

	r := open(t, dir, Options{})
	defer r.Close()
	got := sessionsMap(r)
	if len(got) != 2 || got["a"].Limit != 1 || got["b"].Limit != 2 {
		t.Fatalf("recovered sessions %+v, want a and b", got)
	}
	if _, err := os.Stat(newest); !os.IsNotExist(err) {
		t.Fatalf("corrupt snapshot should have been removed, stat err = %v", err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	cases := []struct {
		in   string
		mode SyncMode
		d    time.Duration
		err  bool
	}{
		{"always", SyncAlways, 0, false},
		{"", SyncAlways, 0, false},
		{"none", SyncNone, 0, false},
		{"Never", SyncNone, 0, false},
		{"5ms", SyncInterval, 5 * time.Millisecond, false},
		{"1s", SyncInterval, time.Second, false},
		{"-3ms", 0, 0, true},
		{"sometimes", 0, 0, true},
	}
	for _, c := range cases {
		mode, d, err := ParseSyncPolicy(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseSyncPolicy(%q): expected error", c.in)
			}
			continue
		}
		if err != nil || mode != c.mode || d != c.d {
			t.Errorf("ParseSyncPolicy(%q) = %v %v %v, want %v %v", c.in, mode, d, err, c.mode, c.d)
		}
	}
}

func TestSyncPolicies(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var fsyncs int
	l.SetFsyncObserver(func(time.Duration) { fsyncs++ })
	mustAppend(t, l, Record{Kind: KindRegister, Container: "a", Amount: 1})
	mustAppend(t, l, Record{Kind: KindRegister, Container: "b", Amount: 1})
	if st := l.Stats(); st.Syncs < 2 {
		t.Fatalf("SyncAlways: %d syncs after 2 appends", st.Syncs)
	}
	if fsyncs < 2 {
		t.Fatalf("fsync observer saw %d syncs", fsyncs)
	}
	l.Close()

	li, err := Open(Options{Dir: t.TempDir(), Sync: SyncInterval, SyncInterval: time.Hour})
	if err != nil {
		t.Fatalf("Open interval: %v", err)
	}
	defer li.Close()
	base := li.Stats().Syncs
	mustAppend(t, li, Record{Kind: KindRegister, Container: "a", Amount: 1})
	mustAppend(t, li, Record{Kind: KindRegister, Container: "b", Amount: 1})
	// First append syncs (lastSync is zero); the hour-long interval must
	// swallow the second.
	if got := li.Stats().Syncs - base; got != 1 {
		t.Fatalf("SyncInterval(1h): %d syncs after 2 appends, want 1", got)
	}

	if _, _, err := ParseSyncPolicy("always"); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: t.TempDir(), Sync: SyncInterval}); err == nil {
		t.Fatal("Open with SyncInterval and no interval should fail")
	}
}

func TestClosedLogRefusesWrites(t *testing.T) {
	l := open(t, t.TempDir(), Options{})
	l.Close()
	if _, err := l.Append(Record{Kind: KindRegister, Container: "x", Amount: 1}); err == nil {
		t.Fatal("Append on closed log should fail")
	}
	if err := l.Compact(); err == nil {
		t.Fatal("Compact on closed log should fail")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestStatsShape(t *testing.T) {
	l := open(t, t.TempDir(), Options{})
	defer l.Close()
	mustAppend(t, l, Record{Kind: KindRegister, Container: "a", Amount: 42, Device: 2})
	st := l.Stats()
	if st.Segments != 1 || st.Sessions != 1 || st.Appends != 1 || st.LastSeq != 1 {
		t.Fatalf("stats after one append: %+v", st)
	}
	if st.SizeBytes <= 0 {
		t.Fatalf("SizeBytes = %d, want > 0", st.SizeBytes)
	}
}
