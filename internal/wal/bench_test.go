package wal

import (
	"fmt"
	"testing"
)

// populate writes n register events (with a sprinkling of closes and
// audit records, as a real daemon would) and returns the live count.
func populate(b testing.TB, l *Log, n int) int {
	b.Helper()
	live := 0
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("container-%08d", i)
		if _, err := l.Append(Record{Kind: KindRegister, Container: id, Amount: int64(i%1024 + 1), Device: int32(i % 8)}); err != nil {
			b.Fatal(err)
		}
		live++
		if i%16 == 0 {
			if _, err := l.Append(Record{Kind: KindGrant, Container: id, Amount: 64, PID: int32(i)}); err != nil {
				b.Fatal(err)
			}
		}
		if i%10 == 9 {
			if _, err := l.Append(Record{Kind: KindClose, Container: id}); err != nil {
				b.Fatal(err)
			}
			live--
		}
	}
	return live
}

// BenchmarkRecovery measures restart-recovery time (Open: load snapshot
// + replay tail) versus session count. make bench-recovery turns the
// output into BENCH_recovery.json.
func BenchmarkRecovery(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000, 1_000_000} {
		for _, snap := range []bool{false, true} {
			mode := "replay"
			if snap {
				mode = "snapshot"
			}
			b.Run(fmt.Sprintf("sessions=%d/%s", n, mode), func(b *testing.B) {
				if n >= 1_000_000 && testing.Short() {
					b.Skip("short mode")
				}
				dir := b.TempDir()
				l, err := Open(Options{Dir: dir, Sync: SyncNone, SegmentBytes: 64 << 20})
				if err != nil {
					b.Fatal(err)
				}
				live := populate(b, l, n)
				if snap {
					if err := l.Compact(); err != nil {
						b.Fatal(err)
					}
				}
				if err := l.Close(); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r, err := Open(Options{Dir: dir, Sync: SyncNone})
					if err != nil {
						b.Fatal(err)
					}
					if got := r.Stats().Sessions; got != live {
						b.Fatalf("recovered %d sessions, want %d", got, live)
					}
					r.Close()
				}
				b.ReportMetric(float64(live), "sessions")
			})
		}
	}
}

func BenchmarkAppend(b *testing.B) {
	l, err := Open(Options{Dir: b.TempDir(), Sync: SyncNone, SegmentBytes: 256 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	rec := Record{Kind: KindGrant, Container: "bench-container", Amount: 64, PID: 42}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}
