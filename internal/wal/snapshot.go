// Snapshots bound replay time: a snapshot file holds the folded session
// set as of one log sequence number, so recovery loads the newest valid
// snapshot and replays only the records after it. Compaction is
// snapshot-then-truncate — write the snapshot, fsync it, then delete
// the segments it covers.
//
// A snapshot file reuses the segment record framing: the first frame is
// a header record (kindSnapshotHeader) carrying the covered sequence
// number and the session count, followed by one KindRegister frame per
// live session. Any framing or checksum failure, or a count mismatch,
// invalidates the whole file and recovery falls back to the next-older
// snapshot (ultimately to full replay from the oldest segment).

package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// kindSnapshotHeader is the first frame of a snapshot file. Never
// appears in segments.
const kindSnapshotHeader Kind = 0xFE

// Session is one live session in the recovered state: exactly what the
// daemon needs to re-admit the container after a restart.
type Session struct {
	Container string `json:"container"`
	Limit     int64  `json:"limit"`
	Device    int    `json:"device"`
}

// snapshotName builds the file name for a snapshot covering seq.
func snapshotName(seq uint64) string { return fmt.Sprintf("snap-%016x.snap", seq) }

// writeSnapshot writes the session set as a snapshot covering seq,
// fsyncs it, and returns its path. The write goes through a temp file +
// rename so a crash mid-snapshot can never leave a half-written file
// under a valid snapshot name.
func writeSnapshot(dir string, seq uint64, sessions map[string]Session) (string, error) {
	buf := make([]byte, 0, 64+len(sessions)*64)
	hdr := Record{Seq: seq, Kind: kindSnapshotHeader, Amount: int64(len(sessions))}
	buf, err := appendRecord(buf, &hdr)
	if err != nil {
		return "", err
	}
	// Deterministic order: stable files for identical states.
	ids := make([]string, 0, len(sessions))
	for id := range sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		s := sessions[id]
		rec := Record{Seq: seq, Kind: KindRegister, Container: s.Container, Amount: s.Limit, Device: int32(s.Device)}
		if buf, err = appendRecord(buf, &rec); err != nil {
			return "", err
		}
	}
	path := filepath.Join(dir, snapshotName(seq))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return "", fmt.Errorf("wal: create snapshot: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", fmt.Errorf("wal: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", fmt.Errorf("wal: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("wal: publish snapshot: %w", err)
	}
	return path, nil
}

// loadSnapshot reads and validates one snapshot file, returning the
// covered sequence number and the session set.
func loadSnapshot(path string) (uint64, map[string]Session, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, err
	}
	var hdr Record
	n, err := decodeRecord(data, &hdr)
	if err != nil {
		return 0, nil, fmt.Errorf("wal: snapshot header: %w", err)
	}
	if hdr.Kind != kindSnapshotHeader {
		return 0, nil, fmt.Errorf("wal: snapshot header kind %v", hdr.Kind)
	}
	data = data[n:]
	want := int(hdr.Amount)
	sessions := make(map[string]Session, want)
	for len(data) > 0 {
		var rec Record
		n, err := decodeRecord(data, &rec)
		if err != nil {
			return 0, nil, fmt.Errorf("wal: snapshot entry: %w", err)
		}
		if rec.Kind != KindRegister || rec.Container == "" {
			return 0, nil, fmt.Errorf("wal: snapshot entry kind %v", rec.Kind)
		}
		sessions[rec.Container] = Session{Container: rec.Container, Limit: rec.Amount, Device: int(rec.Device)}
		data = data[n:]
	}
	if len(sessions) != want {
		return 0, nil, fmt.Errorf("wal: snapshot has %d sessions, header says %d", len(sessions), want)
	}
	return hdr.Seq, sessions, nil
}
