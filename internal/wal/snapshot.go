// Snapshots bound replay time: a snapshot file holds the folded session
// set as of one log sequence number, so recovery loads the newest valid
// snapshot and replays only the records after it. Compaction is
// snapshot-then-truncate — write the snapshot, fsync it, then delete
// the segments it covers.
//
// A snapshot file reuses the segment record framing: the first frame is
// a header record (kindSnapshotHeader) carrying the covered sequence
// number and the session count, followed by one KindRegister frame per
// live session. Any framing or checksum failure, or a count mismatch,
// invalidates the whole file and recovery falls back to the next-older
// snapshot (ultimately to full replay from the oldest segment).

package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// kindSnapshotHeader is the first frame of a snapshot file. Never
// appears in segments.
const kindSnapshotHeader Kind = 0xFE

// Session is one live session in the recovered state: exactly what the
// daemon needs to re-admit the container after a restart.
type Session struct {
	Container string `json:"container"`
	Limit     int64  `json:"limit"`
	Device    int    `json:"device"`
	// Tenant names the tenant the session is bound to (empty for the
	// default tenant); the daemon re-binds it against the recovered
	// tenant table at restart.
	Tenant string `json:"tenant,omitempty"`
}

// TenantDef is one folded tenant definition: the scheduling attributes
// a restarted daemon re-applies when re-admitting the tenant's
// sessions. The log stores it JSON-encoded in a KindTenant record's
// Meta, keeping the record framing fixed.
type TenantDef struct {
	Name      string `json:"name"`
	Weight    int    `json:"weight,omitempty"`
	Priority  int    `json:"priority,omitempty"`
	Quota     int64  `json:"quota,omitempty"`
	Guarantee int64  `json:"guarantee,omitempty"`
}

// snapshotName builds the file name for a snapshot covering seq.
func snapshotName(seq uint64) string { return fmt.Sprintf("snap-%016x.snap", seq) }

// writeSnapshot writes the session set as a snapshot covering seq,
// fsyncs it, and returns its path. The write goes through a temp file +
// rename so a crash mid-snapshot can never leave a half-written file
// under a valid snapshot name.
func writeSnapshot(dir string, seq uint64, sessions map[string]Session, tenants map[string]TenantDef) (string, error) {
	buf := make([]byte, 0, 64+(len(sessions)+len(tenants))*64)
	hdr := Record{Seq: seq, Kind: kindSnapshotHeader, Amount: int64(len(sessions))}
	buf, err := appendRecord(buf, &hdr)
	if err != nil {
		return "", err
	}
	// Deterministic order: stable files for identical states. Tenant
	// definitions precede the sessions that reference them.
	names := make([]string, 0, len(tenants))
	for name := range tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rec, err := TenantRecord(tenants[name])
		if err != nil {
			return "", err
		}
		rec.Seq = seq
		if buf, err = appendRecord(buf, &rec); err != nil {
			return "", err
		}
	}
	ids := make([]string, 0, len(sessions))
	for id := range sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		s := sessions[id]
		rec := Record{Seq: seq, Kind: KindRegister, Container: s.Container, Amount: s.Limit, Device: int32(s.Device), Tenant: s.Tenant}
		if buf, err = appendRecord(buf, &rec); err != nil {
			return "", err
		}
	}
	path := filepath.Join(dir, snapshotName(seq))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return "", fmt.Errorf("wal: create snapshot: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", fmt.Errorf("wal: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", fmt.Errorf("wal: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("wal: publish snapshot: %w", err)
	}
	return path, nil
}

// loadSnapshot reads and validates one snapshot file, returning the
// covered sequence number, the session set and the tenant table.
func loadSnapshot(path string) (uint64, map[string]Session, map[string]TenantDef, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, nil, err
	}
	var hdr Record
	n, err := decodeRecord(data, &hdr)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("wal: snapshot header: %w", err)
	}
	if hdr.Kind != kindSnapshotHeader {
		return 0, nil, nil, fmt.Errorf("wal: snapshot header kind %v", hdr.Kind)
	}
	data = data[n:]
	want := int(hdr.Amount)
	sessions := make(map[string]Session, want)
	tenants := make(map[string]TenantDef)
	for len(data) > 0 {
		var rec Record
		n, err := decodeRecord(data, &rec)
		if err != nil {
			return 0, nil, nil, fmt.Errorf("wal: snapshot entry: %w", err)
		}
		switch {
		case rec.Kind == KindRegister && rec.Container != "":
			sessions[rec.Container] = Session{Container: rec.Container, Limit: rec.Amount, Device: int(rec.Device), Tenant: rec.Tenant}
		case rec.Kind == KindTenant && rec.Container != "":
			var def TenantDef
			if err := json.Unmarshal([]byte(rec.Meta), &def); err != nil {
				return 0, nil, nil, fmt.Errorf("wal: snapshot tenant %q: %w", rec.Container, err)
			}
			def.Name = rec.Container
			tenants[rec.Container] = def
		default:
			return 0, nil, nil, fmt.Errorf("wal: snapshot entry kind %v", rec.Kind)
		}
		data = data[n:]
	}
	if len(sessions) != want {
		return 0, nil, nil, fmt.Errorf("wal: snapshot has %d sessions, header says %d", len(sessions), want)
	}
	return hdr.Seq, sessions, tenants, nil
}
