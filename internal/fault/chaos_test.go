package fault_test

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/core"
	"convgpu/internal/cuda"
	"convgpu/internal/daemon"
	"convgpu/internal/fault"
	"convgpu/internal/gpu"
	"convgpu/internal/ipc"
	"convgpu/internal/leak"
	"convgpu/internal/model"
	"convgpu/internal/protocol"
	"convgpu/internal/wrapper"
)

// chaosSeeds is how many seeded fault schedules the suite replays. The
// default keeps a plain `go test ./...` quick; `make chaos` raises it to
// the full sweep (a schedule that wedges a suspended allocation costs a
// watchdog interval, so the full sweep takes a few minutes under -race).
var chaosSeeds = flag.Int("chaos.seeds", 16, "number of seeded chaos schedules to replay")

const (
	chaosCapacity = 1000 // MiB
	chaosLimitA   = 700  // MiB
	chaosLimitB   = 600  // MiB; overcommitted with A so suspensions occur
	chaosOps      = 12   // ops per container per schedule
	chaosWatchdog = 800 * time.Millisecond
)

func cmib(n int) bytesize.Size { return bytesize.Size(n) * bytesize.MiB }

// chaosTenants is the two-tenant table every chaos schedule registers
// under: both carry a hard quota below the device capacity, so the
// tenant quota invariant (sum of a tenant's grants never exceeds its
// quota) is live on every interleaving the fault plan produces —
// including mid-reconnect replays and watchdog-cancelled teardowns.
func chaosTenants() (a, b core.Tenant) {
	a = core.Tenant{Name: "alpha", Weight: 2, Priority: 5, Quota: cmib(768)}
	b = core.Tenant{Name: "beta", Weight: 1, Priority: 1, Quota: cmib(512)}
	return
}

// checkTenantQuotas asserts the hard quota invariant over the live
// rollup. CheckInvariants enforces the same bound inside the core; this
// re-derives it from the public Tenants() surface so a rollup bug can't
// mask a quota breach (or vice versa).
func checkTenantQuotas(st core.Scheduler) error {
	for _, tu := range st.Tenants() {
		if tu.Quota > 0 && tu.Grant > tu.Quota {
			return fmt.Errorf("tenant %s grant %v exceeds quota %v", tu.Name, tu.Grant, tu.Quota)
		}
	}
	return nil
}

// TestChaos replays seeded fault schedules against the full
// daemon↔wrapper stack: two wrapper modules over reconnecting clients
// whose connections drop, delay, corrupt, truncate, and hard-close on
// schedule. After every operation the scheduler's core invariants are
// checked, and after healing the transport and closing both sessions the
// pool must hold the full capacity again — no grant may leak or be
// double-counted no matter where a fault landed.
func TestChaos(t *testing.T) {
	// Goroutine hygiene over the whole sweep: every daemon, server conn,
	// reconnector, and wrapper report goroutine must have wound down by
	// the end of the test.
	leak.Check(t)
	for seed := int64(1); seed <= int64(*chaosSeeds); seed++ {
		seed := seed
		ok := t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaosSchedule(t, seed)
		})
		if !ok {
			t.Fatalf("seed %d violated an invariant; replay with -run 'TestChaos/seed=%d$' -chaos.seeds=%d", seed, seed, *chaosSeeds)
		}
	}
}

func runChaosSchedule(t *testing.T, seed int64) {
	st := core.MustNew(core.Config{Capacity: cmib(chaosCapacity), ContextOverhead: 1})
	d, err := daemon.Start(daemon.Config{BaseDir: filepath.Join(t.TempDir(), "cv"), Core: st})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// Structural history checking rides along: whatever interleaving the
	// faults produce, the event stream itself must stay safe
	// (conservation, ticket discipline, per-container FIFO). Replaces the
	// daemon's telemetry observer — this suite asserts behavior, not
	// metrics.
	hist := &model.History{}
	st.SetObserver(hist.Observer())

	ctl, err := ipc.Dial(d.ControlSocket())
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	tenA, tenB := chaosTenants()
	sockA := chaosRegister(t, ctl, "a", cmib(chaosLimitA), tenA)
	sockB := chaosRegister(t, ctl, "b", cmib(chaosLimitB), tenB)

	plan := fault.NewPlan(seed, fault.Config{
		DropProb:     0.02,
		DelayProb:    0.10,
		CorruptProb:  0.04,
		TruncateProb: 0.04,
		CloseProb:    0.05,
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	dev := gpu.New(gpu.K20m())

	modA, recA := chaosModule(ctx, plan, sockA, dev, 1, seed)
	defer recA.Close()
	modB, recB := chaosModule(ctx, plan, sockB, dev, 2, seed)
	defer recB.Close()

	// Drive both containers concurrently; every op is followed by an
	// invariant check, so a violation is caught at the fault that caused
	// it, not at teardown.
	errs := make(chan error, 2)
	var wg sync.WaitGroup
	for i, mod := range []*wrapper.Module{modA, modB} {
		wg.Add(1)
		go func(mod *wrapper.Module, opSeed int64) {
			defer wg.Done()
			errs <- chaosOpsLoop(ctx, st, mod, opSeed)
		}(mod, seed*100+int64(i))
	}

	// Watchdog: a fault can legitimately wedge an allocation (a dropped
	// response on a deadline-exempt alloc, or both containers suspended
	// against each other). Cancelling the module context is exactly what
	// container teardown does — the suspended call must unblock and the
	// daemon must reclaim the ticket when the connection drops.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(chaosWatchdog):
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			buf := make([]byte, 1<<20)
			t.Fatalf("ops wedged past context cancel\n%s", buf[:runtime.Stack(buf, true)])
		}
	}
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("invariant violated mid-schedule: %v", err)
		}
	}

	// Heal the transport, tear the sessions down over a reliable path,
	// and demand the pool is whole again.
	plan.Heal()
	cancel()
	recA.Close() // dropping the conns releases any parked tickets
	recB.Close()
	if err := st.CheckInvariants(); err != nil {
		t.Fatalf("invariant violated after disconnect: %v", err)
	}
	if err := checkTenantQuotas(st); err != nil {
		t.Fatalf("tenant quota violated after disconnect: %v", err)
	}
	for _, id := range []string{"a", "b"} {
		resp, err := ctl.Call(context.Background(), &protocol.Message{Type: protocol.TypeClose, Container: id})
		if err != nil {
			t.Fatalf("close %s: %v", id, err)
		}
		if !resp.OK {
			t.Fatalf("close %s refused: %s", id, resp.Error)
		}
		protocol.ReleaseMessage(resp)
	}
	if free := st.PoolFree(); free != cmib(chaosCapacity) {
		t.Fatalf("pool after teardown = %v, want full capacity %v (leaked grant)", free, cmib(chaosCapacity))
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatalf("invariant violated after teardown: %v", err)
	}
	// Both sessions closed over a healed transport: the capture must be
	// structurally safe AND fully drained — a ticket still parked here is
	// a request the chaos lost without cancelling.
	if err := hist.CheckDrained(func(int) bytesize.Size { return cmib(chaosCapacity) }); err != nil {
		t.Fatalf("event history violates structural invariants: %v", err)
	}
}

func chaosRegister(t *testing.T, ctl *ipc.Client, id string, limit bytesize.Size, ten core.Tenant) string {
	t.Helper()
	resp, err := ctl.Call(context.Background(), &protocol.Message{
		Type: protocol.TypeRegister, Container: id, Limit: int64(limit),
		Tenant: ten.Name, TenantWeight: ten.Weight, TenantPriority: ten.Priority,
		TenantQuota: int64(ten.Quota), TenantGuarantee: int64(ten.Guarantee),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("register %s refused: %s", id, resp.Error)
	}
	sock := filepath.Join(resp.SocketDir, daemon.ContainerSocketName)
	protocol.ReleaseMessage(resp)
	return sock
}

// chaosModule builds one container's wrapper over a reconnecting client
// whose every connection runs under the fault plan — the production
// wiring with a hostile transport swapped in through the Dial seam.
func chaosModule(ctx context.Context, plan *fault.Plan, sock string, dev *gpu.Device, pid int, seed int64) (*wrapper.Module, *ipc.Reconnector) {
	var mod *wrapper.Module
	rec := ipc.NewReconnector(ipc.ReconnectConfig{
		Dial: func() (net.Conn, error) {
			c, err := net.Dial("unix", sock)
			if err != nil {
				return nil, err
			}
			return plan.Wrap(c), nil
		},
		Backoff:     ipc.Backoff{Base: time.Millisecond, Max: 20 * time.Millisecond},
		CallTimeout: 200 * time.Millisecond,
		Seed:        seed,
		OnReconnect: func(c *ipc.Client) error { return mod.ReplayState(ctx, c) },
	})
	mod = wrapper.New(cuda.NewRuntime(dev, pid), rec, pid, wrapper.WithContext(ctx))
	return mod, rec
}

// chaosOpsLoop runs one container's randomized workload — allocations,
// frees of live pointers, and meminfo queries. Transport-induced call
// failures are tolerated (the wrapper fails closed); what must never
// happen is a core invariant breaking, checked after every op.
func chaosOpsLoop(ctx context.Context, st core.Scheduler, mod *wrapper.Module, opSeed int64) error {
	rng := rand.New(rand.NewSource(opSeed))
	var ptrs []cuda.DevPtr
	for i := 0; i < chaosOps && ctx.Err() == nil; i++ {
		r := rng.Intn(10)
		switch {
		case r < 5:
			size := cmib(10 + rng.Intn(51))
			if ptr, err := mod.Malloc(size); err == nil {
				ptrs = append(ptrs, ptr)
			}
		case r < 8 && len(ptrs) > 0:
			j := rng.Intn(len(ptrs))
			mod.Free(ptrs[j])
			ptrs = append(ptrs[:j], ptrs[j+1:]...)
		default:
			mod.MemGetInfo()
		}
		if err := st.CheckInvariants(); err != nil {
			return fmt.Errorf("after op %d: %w", i, err)
		}
		if err := checkTenantQuotas(st); err != nil {
			return fmt.Errorf("after op %d: %w", i, err)
		}
	}
	return nil
}
