package fault_test

import (
	"context"
	"fmt"
	"net"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"convgpu/internal/fault"
	"convgpu/internal/ipc"
	"convgpu/internal/leak"
	"convgpu/internal/protocol"
)

// codecEchoHandler answers every message it sees with OK and the
// request's Data echoed back — the minimal peer for exercising the
// transport's codec negotiation in isolation. The TypeCodec handshake
// itself never reaches the handler: the server answers it at the
// transport level.
type codecEchoHandler struct{}

func (codecEchoHandler) Handle(conn *ipc.ServerConn, msg *protocol.Message, respond func(*protocol.Message)) {
	respond(&protocol.Message{Type: msg.Type, OK: true, Data: msg.Data})
}

func (codecEchoHandler) Closed(*ipc.ServerConn) {}

// TestChaosCodecHandshake aims seeded fault schedules squarely at the
// binary-codec handshake: every connection a Reconnector publishes
// opens with the TypeCodec probe, and the plan's corrupt / truncate /
// close faults land on exactly those first frames. The required
// behavior, whatever a fault did to the handshake, is
//
//   - no hang: every call returns within its deadline (a mangled
//     handshake costs at most one negotiation timeout and a JSON
//     connection, enforced by the watchdog around the whole schedule);
//   - no desync: after the plan heals, calls on the surviving or
//     redialed connection succeed and echo their payloads exactly — a
//     connection whose two ends disagreed about the codec could not do
//     that, because a JSON line read as a binary frame (or vice versa)
//     condemns the connection instead of producing a garbled response.
func TestChaosCodecHandshake(t *testing.T) {
	leak.Check(t)
	const seeds = 16
	for seed := int64(1); seed <= seeds; seed++ {
		seed := seed
		ok := t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			done := make(chan struct{})
			go func() {
				defer close(done)
				runCodecHandshakeSchedule(t, seed)
			}()
			select {
			case <-done:
			case <-time.After(20 * time.Second):
				buf := make([]byte, 1<<20)
				t.Fatalf("codec handshake schedule wedged\n%s", buf[:runtime.Stack(buf, true)])
			}
		})
		if !ok {
			t.Fatalf("seed %d broke the handshake contract; replay with -run 'TestChaosCodecHandshake/seed=%d$'", seed, seed)
		}
	}
}

func runCodecHandshakeSchedule(t *testing.T, seed int64) {
	sock := filepath.Join(t.TempDir(), "codec.sock")
	srv, err := ipc.Listen(sock, codecEchoHandler{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Heavy corruption and mid-frame cuts, light hard-closes: the mix
	// that most often mangles the probe or its response rather than
	// killing the connection outright.
	plan := fault.NewPlan(seed, fault.Config{
		DelayProb:    0.10,
		CorruptProb:  0.25,
		TruncateProb: 0.15,
		CloseProb:    0.05,
	})

	wire := &ipc.WireStats{}
	rec := ipc.NewReconnector(ipc.ReconnectConfig{
		Dial: func() (net.Conn, error) {
			c, err := net.Dial("unix", sock)
			if err != nil {
				return nil, err
			}
			return plan.Wrap(c), nil
		},
		Backoff:     ipc.Backoff{Base: time.Millisecond, Max: 20 * time.Millisecond},
		CallTimeout: 200 * time.Millisecond,
		Seed:        seed,
		Wire:        wire,
	})
	defer rec.Close()

	// Hostile phase: each call (re)dials as needed, so each redial is
	// another handshake under fire. Failures are expected — corruption
	// condemns connections by design — but every call must return.
	for i := 0; i < 10; i++ {
		m := &protocol.Message{Type: protocol.TypeStats, Data: fmt.Sprintf("probe-%d", i)}
		if resp, err := rec.Call(context.Background(), m); err == nil {
			protocol.ReleaseMessage(resp)
		}
	}

	// Heal and demand a clean round trip: the first calls may still find
	// a connection a pre-heal fault condemned (calls are never retried
	// automatically), so allow a bounded number of redials before the
	// echo must come back intact.
	plan.Heal()
	deadline := time.Now().Add(5 * time.Second)
	var lastErr error
	for attempt := 0; time.Now().Before(deadline); attempt++ {
		m := &protocol.Message{Type: protocol.TypeStats, Data: fmt.Sprintf("healed-%d", attempt)}
		resp, err := rec.Call(context.Background(), m)
		if err != nil {
			lastErr = err
			continue
		}
		if !resp.OK || resp.Data != fmt.Sprintf("healed-%d", attempt) {
			t.Fatalf("healed echo desynced: OK=%v Data=%q", resp.OK, resp.Data)
		}
		protocol.ReleaseMessage(resp)
		// One more call on the same (now stable) connection, verifying
		// the negotiated codec — whichever side of the fallback the
		// handshake landed on — keeps framing straight.
		resp, err = rec.Call(context.Background(), &protocol.Message{Type: protocol.TypeStats, Data: "final"})
		if err != nil {
			t.Fatalf("second healed call failed: %v", err)
		}
		if !resp.OK || resp.Data != "final" {
			t.Fatalf("second healed echo desynced: OK=%v Data=%q", resp.OK, resp.Data)
		}
		protocol.ReleaseMessage(resp)
		if n := rec.InFlight(); n != 0 {
			t.Fatalf("pipeline depth after drain = %d, want 0", n)
		}
		return
	}
	t.Fatalf("no clean round trip within 5s of healing (last error: %v)", lastErr)
}
