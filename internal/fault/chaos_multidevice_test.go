package fault_test

import (
	"context"
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/core"
	"convgpu/internal/daemon"
	"convgpu/internal/fault"
	"convgpu/internal/gpu"
	"convgpu/internal/ipc"
	"convgpu/internal/leak"
	"convgpu/internal/model"
	"convgpu/internal/multigpu"
	"convgpu/internal/protocol"
	"convgpu/internal/wrapper"
)

// TestChaosMultiDevice replays the seeded fault schedules against a
// 2-device daemon: four containers round-robin onto two devices, each
// device overcommitted exactly like the single-device suite (700 + 600
// MiB limits against a 1000 MiB pool), four wrapper modules over
// fault-plan transports. Invariants are checked per device after every
// operation (the routing plane prefixes violations with the device
// ordinal), and teardown demands every device's pool whole — device
// routing must not let a fault leak a grant across pools. Shares
// -chaos.seeds with TestChaos, so `make chaos` sweeps both.
func TestChaosMultiDevice(t *testing.T) {
	leak.Check(t) // the whole sweep must wind its goroutines down
	for seed := int64(1); seed <= int64(*chaosSeeds); seed++ {
		seed := seed
		ok := t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaosMultiDeviceSchedule(t, seed)
		})
		if !ok {
			t.Fatalf("seed %d violated an invariant; replay with -run 'TestChaosMultiDevice/seed=%d$' -chaos.seeds=%d", seed, seed, *chaosSeeds)
		}
	}
}

func runChaosMultiDeviceSchedule(t *testing.T, seed int64) {
	pol, err := multigpu.NewPolicy(multigpu.PolicyRoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	st, err := multigpu.New(multigpu.Config{
		Devices:           2,
		CapacityPerDevice: cmib(chaosCapacity),
		Policy:            pol,
		ContextOverhead:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := daemon.Start(daemon.Config{BaseDir: filepath.Join(t.TempDir(), "cv"), Core: st})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// Structural history checking over both devices' interleaved event
	// streams (replaces the daemon's telemetry observer).
	hist := &model.History{}
	st.SetObserver(hist.Observer())

	ctl, err := ipc.Dial(d.ControlSocket())
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	// Round-robin lands a,c on device 0 and b,d on device 1: each device
	// is overcommitted exactly like the single-device schedule.
	ids := []string{"a", "b", "c", "d"}
	socks := make([]string, len(ids))
	for i, id := range ids {
		limit := cmib(chaosLimitA)
		if i >= 2 {
			limit = cmib(chaosLimitB)
		}
		socks[i] = chaosRegister(t, ctl, id, limit, core.Tenant{})
		wantDev := i % 2
		if dev, err := st.Placement(core.ContainerID(id)); err != nil || dev != wantDev {
			t.Fatalf("placement %s = (%d, %v), want device %d", id, dev, err, wantDev)
		}
	}

	plan := fault.NewPlan(seed, fault.Config{
		DropProb:     0.02,
		DelayProb:    0.10,
		CorruptProb:  0.04,
		TruncateProb: 0.04,
		CloseProb:    0.05,
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	dev := gpu.New(gpu.K20m())

	mods := make([]*wrapper.Module, len(ids))
	recs := make([]*ipc.Reconnector, len(ids))
	for i := range ids {
		mods[i], recs[i] = chaosModule(ctx, plan, socks[i], dev, i+1, seed)
		defer recs[i].Close()
	}

	errs := make(chan error, len(ids))
	var wg sync.WaitGroup
	for i, mod := range mods {
		wg.Add(1)
		go func(mod *wrapper.Module, opSeed int64) {
			defer wg.Done()
			errs <- chaosOpsLoop(ctx, st, mod, opSeed)
		}(mod, seed*100+int64(i))
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(chaosWatchdog):
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			buf := make([]byte, 1<<20)
			t.Fatalf("ops wedged past context cancel\n%s", buf[:runtime.Stack(buf, true)])
		}
	}
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("invariant violated mid-schedule: %v", err)
		}
	}

	plan.Heal()
	cancel()
	for _, rec := range recs {
		rec.Close() // dropping the conns releases any parked tickets
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatalf("invariant violated after disconnect: %v", err)
	}
	for _, id := range ids {
		resp, err := ctl.Call(context.Background(), &protocol.Message{Type: protocol.TypeClose, Container: id})
		if err != nil {
			t.Fatalf("close %s: %v", id, err)
		}
		if !resp.OK {
			t.Fatalf("close %s refused: %s", id, resp.Error)
		}
		protocol.ReleaseMessage(resp)
	}
	for _, dv := range st.Devices() {
		if dv.PoolFree != dv.Capacity {
			t.Fatalf("device %d pool after teardown = %v, want full capacity %v (leaked grant)",
				dv.Index, dv.PoolFree, dv.Capacity)
		}
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatalf("invariant violated after teardown: %v", err)
	}
	if err := hist.CheckDrained(func(int) bytesize.Size { return cmib(chaosCapacity) }); err != nil {
		t.Fatalf("event history violates structural invariants: %v", err)
	}
}
