package fault_test

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"convgpu/internal/cluster"
	"convgpu/internal/core"
	"convgpu/internal/cuda"
	"convgpu/internal/daemon"
	"convgpu/internal/fault"
	"convgpu/internal/gpu"
	"convgpu/internal/ipc"
	"convgpu/internal/leak"
	"convgpu/internal/protocol"
	"convgpu/internal/wrapper"
)

// nodeSeeds is how many seeded node-fault schedules the suite replays;
// `make chaos-nodes` raises it to the full sweep.
var nodeSeeds = flag.Int("chaos.nodeseeds", 8, "number of seeded node-kill chaos schedules to replay")

const (
	nodeCapacity      = 500 // MiB per GPU, 2 nodes x 2 GPUs
	nodeContainers    = 5   // overcommitted against 4 devices so suspensions occur
	nodeLimit         = 450 // MiB
	nodeProbeInterval = 2 * time.Millisecond
	nodeDownAfter     = 2
	nodeWatchdog      = 2 * time.Second
)

// TestChaosNodeKill replays seeded node-scope fault schedules against
// the full daemon↔wrapper stack over a 2x2 cluster: while wrapper
// modules allocate and free, a fault driver kills nodes (hard, until
// the health loop declares them down and fails them over), stalls
// probes into the suspect band, partitions both nodes at once (the
// fail-closed path), flaps nodes through down-and-back, and drains /
// revives nodes through the control-socket admin verbs. After every
// operation the cluster invariants must hold; after healing, every
// session is closed and the pool must hold the full cluster capacity
// again — a failover may migrate or observably evict work, but must
// never leak a grant or lose a ticket silently.
func TestChaosNodeKill(t *testing.T) {
	// Goroutine hygiene across the sweep covers the health-probe loop:
	// StopHealth is synchronous and must leave nothing behind.
	leak.Check(t)
	for seed := int64(1); seed <= int64(*nodeSeeds); seed++ {
		seed := seed
		ok := t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runNodeKillSchedule(t, seed)
		})
		if !ok {
			t.Fatalf("seed %d violated an invariant; replay with -run 'TestChaosNodeKill/seed=%d$' -chaos.nodeseeds=%d", seed, seed, *nodeSeeds)
		}
	}
}

func runNodeKillSchedule(t *testing.T, seed int64) {
	clus, err := cluster.New(cluster.Config{
		Nodes: 2, GPUsPerNode: 2, CapacityPerGPU: cmib(nodeCapacity), ContextOverhead: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := daemon.Start(daemon.Config{BaseDir: filepath.Join(t.TempDir(), "cv"), Core: clus})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	nf := fault.NewNodeFaults(2)
	if err := clus.StartHealth(cluster.HealthConfig{
		Interval: nodeProbeInterval, SuspectAfter: 1, DownAfter: nodeDownAfter, Probe: nf.Probe,
	}); err != nil {
		t.Fatal(err)
	}
	defer clus.StopHealth()

	ctl, err := ipc.Dial(d.ControlSocket())
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	socks := make([]string, nodeContainers)
	for i := range socks {
		socks[i] = chaosRegister(t, ctl, fmt.Sprintf("c%d", i), cmib(nodeLimit), core.Tenant{})
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	dev := gpu.New(gpu.K20m())

	mods := make([]*wrapper.Module, nodeContainers)
	for i, sock := range socks {
		mod, rec := nodeModule(ctx, sock, dev, i+1, seed)
		defer rec.Close()
		mods[i] = mod
	}

	// The fault driver runs alongside the workload, forcing node deaths
	// and admin transitions on a seeded schedule. killed counts deaths
	// the health loop verifiably declared (state reached down), so the
	// failover counter can be checked against it afterwards.
	var killed atomic.Int64
	driverDone := make(chan struct{})
	go func() {
		defer close(driverDone)
		nodeFaultDriver(ctx, clus, ctl, nf, seed, &killed)
	}()

	errs := make(chan error, nodeContainers)
	var wg sync.WaitGroup
	for i, mod := range mods {
		wg.Add(1)
		go func(mod *wrapper.Module, opSeed int64) {
			defer wg.Done()
			errs <- chaosOpsLoop(ctx, clus, mod, opSeed)
		}(mod, seed*100+int64(i))
	}

	// Watchdog: node faults can legitimately wedge a suspended call (its
	// node died mid-park and the migration re-parked it behind a full
	// survivor). Cancelling the module context is container teardown;
	// everything must unwind.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(nodeWatchdog):
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			buf := make([]byte, 1<<20)
			t.Fatalf("ops wedged past context cancel\n%s", buf[:runtime.Stack(buf, true)])
		}
	}
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("invariant violated mid-schedule: %v", err)
		}
	}
	cancel()
	<-driverDone

	// Teardown: heal the probes, return any drained node to service, and
	// wait for the health loop's auto-revival to bring every node up.
	nf.Heal()
	for n := 0; n < 2; n++ {
		if st, err := clus.State(n); err == nil && st == core.NodeDraining {
			clus.Revive(n)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		up := 0
		for n := 0; n < 2; n++ {
			if st, err := clus.State(n); err == nil && st == core.NodeUp {
				up++
			}
		}
		if up == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("nodes did not return to service after heal: %+v", clus.NodeStatuses())
		}
		time.Sleep(time.Millisecond)
	}
	clus.StopHealth()

	// Close every session over the control socket. Containers evicted by
	// a failover are already gone — the close must answer with the
	// machine-readable unknown-container class, not hang or panic.
	for i := 0; i < nodeContainers; i++ {
		resp, err := ctl.Call(context.Background(), &protocol.Message{
			Type: protocol.TypeClose, Container: fmt.Sprintf("c%d", i),
		})
		if err != nil {
			t.Fatalf("close c%d: %v", i, err)
		}
		if !resp.OK && resp.Code != protocol.CodeUnknownContainer {
			t.Fatalf("close c%d failed with unexpected code %q: %s", i, resp.Code, resp.Error)
		}
		protocol.ReleaseMessage(resp)
	}

	if free, want := clus.PoolFree(), cmib(nodeCapacity)*4; free != want {
		t.Fatalf("pool after teardown = %v, want full capacity %v (leaked grant)", free, want)
	}
	if err := clus.CheckInvariants(); err != nil {
		t.Fatalf("invariant violated after teardown: %v", err)
	}
	if k := killed.Load(); k > 0 && d.Obs().Failovers.Value() < uint64(k) {
		t.Fatalf("driver forced %d node deaths but only %d failovers recorded", k, d.Obs().Failovers.Value())
	}
}

// nodeFaultDriver injects the node-scope fault schedule: hard kills
// (held until the membership view confirms the death), suspect blips,
// whole-cluster partitions, flapping restarts, and wire-level drain /
// revive admin verbs.
func nodeFaultDriver(ctx context.Context, clus *cluster.Cluster, ctl *ipc.Client, nf *fault.NodeFaults, seed int64, killed *atomic.Int64) {
	rng := rand.New(rand.NewSource(seed * 31))
	for i := 0; i < 4 && ctx.Err() == nil; i++ {
		time.Sleep(time.Duration(2+rng.Intn(8)) * time.Millisecond)
		node := rng.Intn(2)
		switch rng.Intn(5) {
		case 0: // hard kill, verified down, then revived (fresh slot)
			nf.Kill(node)
			if waitNodeState(ctx, clus, node, core.NodeDown) {
				killed.Add(1)
			}
			nf.Revive(node)
			waitNodeState(ctx, clus, node, core.NodeUp)
		case 1: // probe blip: suspect, then recovery
			nf.Stall(node, 1)
		case 2: // partition both nodes: fail closed, then auto-revival
			nf.Partition([]int{0, 1}, nodeDownAfter+1)
		case 3: // flapping restart: down and straight back
			nf.Flap(node, nodeDownAfter)
		case 4: // admin drain / revive over the control socket
			if resp, err := ctl.Call(ctx, &protocol.Message{Type: protocol.TypeDrain, Device: node}); err == nil {
				protocol.ReleaseMessage(resp)
			}
			time.Sleep(2 * time.Millisecond)
			if resp, err := ctl.Call(ctx, &protocol.Message{Type: protocol.TypeRevive, Device: node}); err == nil {
				protocol.ReleaseMessage(resp)
			}
		}
	}
}

// waitNodeState polls the membership view until node reaches want.
func waitNodeState(ctx context.Context, clus *cluster.Cluster, node int, want core.NodeState) bool {
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) && ctx.Err() == nil {
		if st, err := clus.State(node); err == nil && st == want {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return false
}

// nodeModule is chaosModule without frame faults: node-scope chaos
// exercises the membership and failover layers over a clean transport.
func nodeModule(ctx context.Context, sock string, dev *gpu.Device, pid int, seed int64) (*wrapper.Module, *ipc.Reconnector) {
	var mod *wrapper.Module
	rec := ipc.NewReconnector(ipc.ReconnectConfig{
		Dial:        func() (net.Conn, error) { return net.Dial("unix", sock) },
		Backoff:     ipc.Backoff{Base: time.Millisecond, Max: 20 * time.Millisecond},
		CallTimeout: 200 * time.Millisecond,
		Seed:        seed,
		OnReconnect: func(c *ipc.Client) error { return mod.ReplayState(ctx, c) },
	})
	mod = wrapper.New(cuda.NewRuntime(dev, pid), rec, pid, wrapper.WithContext(ctx))
	return mod, rec
}
