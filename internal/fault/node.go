// Node-scope fault injection: where Plan mangles individual transport
// frames, NodeFaults takes out whole nodes. It plugs into the cluster's
// health loop as its Probe function — a faulted node fails its probes
// (kill: until revived; stall/partition: for a bounded number of
// probes) and the membership layer reacts exactly as it would to a real
// dead machine: suspect, down, failover, and — when the probes recover
// — the flapping-restart auto-revival.

package fault

import (
	"fmt"
	"sync"
)

// NodeFaults is a schedule of node-scope failures for a fixed set of
// nodes. All methods are safe for concurrent use (the health loop
// probes while the chaos driver injects).
type NodeFaults struct {
	mu sync.Mutex
	// remaining[i]: 0 = healthy, -1 = failing until Revive (kill),
	// n > 0 = failing for n more probes (stall/partition/flap).
	remaining []int
}

// NewNodeFaults builds a fault board for nodes healthy nodes.
func NewNodeFaults(nodes int) *NodeFaults {
	return &NodeFaults{remaining: make([]int, nodes)}
}

// Probe implements the cluster health loop's probe: a healthy node
// returns nil, a faulted one an ErrInjected-wrapped failure. Bounded
// faults count down one probe per call, so a stalled node recovers
// after its budget of failed probes.
func (f *NodeFaults) Probe(node int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if node < 0 || node >= len(f.remaining) || f.remaining[node] == 0 {
		return nil
	}
	if f.remaining[node] > 0 {
		f.remaining[node]--
	}
	return fmt.Errorf("%w: node %d not responding", ErrInjected, node)
}

// Kill takes a node out until Revive — the hard crash. The health loop
// will declare it down after its failure threshold and fail it over.
func (f *NodeFaults) Kill(node int) { f.set(node, -1) }

// Stall makes a node fail its next probes probes, then answer again. A
// stall shorter than the loop's down threshold only makes the node
// suspect; a longer one is a flapping restart (declared down, failed
// over, then auto-revived when the probes recover).
func (f *NodeFaults) Stall(node, probes int) { f.set(node, probes) }

// Flap is a stall sized to cross downAfter: the node is declared down
// and failed over, then its probes recover and the health loop revives
// the (fresh) slot — the flapping-restart scenario.
func (f *NodeFaults) Flap(node, downAfter int) { f.set(node, downAfter+1) }

// Partition takes a set of nodes out simultaneously for the next
// probes probes each — a network partition isolating them together.
func (f *NodeFaults) Partition(nodes []int, probes int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, n := range nodes {
		if n >= 0 && n < len(f.remaining) {
			f.remaining[n] = probes
		}
	}
}

// Revive clears a node's injected failure; its next probe succeeds.
func (f *NodeFaults) Revive(node int) { f.set(node, 0) }

// Heal clears every injected failure — the teardown path, like
// Plan.Heal for frame faults.
func (f *NodeFaults) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range f.remaining {
		f.remaining[i] = 0
	}
}

func (f *NodeFaults) set(node, v int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if node >= 0 && node < len(f.remaining) {
		f.remaining[node] = v
	}
}
