// Package fault is a deterministic fault-injection layer for the IPC
// transport: it wraps net.Conn / net.Listener and, driven by a seeded
// RNG, drops, delays, corrupts, truncates, or hard-closes frames on
// their way through. The chaos suite replays seeded schedules against
// the full daemon↔wrapper stack and asserts the scheduler's core
// invariants survive every injected fault; the same seed replays the
// same fault schedule (modulo goroutine interleaving), which is what
// makes a chaos failure debuggable.
package fault

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"convgpu/internal/clock"
)

// Config sets the per-operation fault probabilities. Each Read and
// Write on a wrapped connection draws once; the probabilities are
// cumulative and their sum must be ≤ 1, with the remainder passing the
// operation through untouched.
type Config struct {
	DropProb     float64 // write silently discarded (reported as success)
	DelayProb    float64 // operation delayed by up to MaxDelay
	CorruptProb  float64 // one byte flipped in flight
	TruncateProb float64 // write cut mid-frame, then the conn is closed
	CloseProb    float64 // conn hard-closed under the operation
	// MaxDelay bounds injected delays (default 2ms — enough to reorder
	// goroutines without slowing the suite).
	MaxDelay time.Duration
	// Clock provides the delay sleeps; nil uses the real clock.
	Clock clock.Clock
}

// ErrInjected marks transport errors this package fabricated.
var ErrInjected = errors.New("fault: injected failure")

type action int

const (
	actPass action = iota
	actDrop
	actDelay
	actCorrupt
	actTruncate
	actClose
)

// Plan is one seeded fault schedule, shared by every connection of one
// chaos scenario. Draws are serialized under a mutex so a seed's draw
// sequence is reproducible.
type Plan struct {
	cfg    Config
	clk    clock.Clock
	healed atomic.Bool

	mu  sync.Mutex
	rng *rand.Rand
}

// NewPlan builds a schedule from a seed and fault probabilities.
func NewPlan(seed int64, cfg Config) *Plan {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 2 * time.Millisecond
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	return &Plan{cfg: cfg, clk: clk, rng: rand.New(rand.NewSource(seed))}
}

// Heal disables all fault injection — the chaos driver calls it before
// the cleanup phase so teardown runs over a reliable transport.
func (p *Plan) Heal() { p.healed.Store(true) }

// Healed reports whether Heal was called.
func (p *Plan) Healed() bool { return p.healed.Load() }

// decide draws the next action; reads cannot be dropped or truncated
// (there is no "pretend we read" that preserves stream framing), so
// those draws pass through on the read side.
func (p *Plan) decide(isRead bool) (action, time.Duration) {
	if p.healed.Load() {
		return actPass, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	x := p.rng.Float64()
	delay := time.Duration(p.rng.Int63n(int64(p.cfg.MaxDelay) + 1))
	c := p.cfg
	switch {
	case x < c.DropProb:
		if isRead {
			return actPass, 0
		}
		return actDrop, 0
	case x < c.DropProb+c.DelayProb:
		return actDelay, delay
	case x < c.DropProb+c.DelayProb+c.CorruptProb:
		return actCorrupt, 0
	case x < c.DropProb+c.DelayProb+c.CorruptProb+c.TruncateProb:
		if isRead {
			return actPass, 0
		}
		return actTruncate, 0
	case x < c.DropProb+c.DelayProb+c.CorruptProb+c.TruncateProb+c.CloseProb:
		return actClose, 0
	}
	return actPass, 0
}

// Wrap puts a connection under the plan's fault schedule.
func (p *Plan) Wrap(c net.Conn) *Conn { return &Conn{Conn: c, plan: p} }

// Conn is a net.Conn that misbehaves on schedule.
type Conn struct {
	net.Conn
	plan *Plan
}

// Write injects write-side faults. A dropped write reports success —
// the bytes vanish, exactly like a kernel buffer lost to a dying peer.
// A truncated write delivers a prefix and kills the connection, so the
// reader sees a mid-line cut.
func (c *Conn) Write(b []byte) (int, error) {
	act, delay := c.plan.decide(false)
	switch act {
	case actDrop:
		return len(b), nil
	case actDelay:
		c.plan.clk.Sleep(delay)
	case actCorrupt:
		if i := corruptIndex(b); i >= 0 {
			mangled := make([]byte, len(b))
			copy(mangled, b)
			mangled[i] ^= 0x20
			return c.Conn.Write(mangled)
		}
	case actTruncate:
		n, _ := c.Conn.Write(b[:len(b)/2])
		c.Conn.Close()
		return n, ErrInjected
	case actClose:
		c.Conn.Close()
		return 0, ErrInjected
	}
	return c.Conn.Write(b)
}

// Read injects read-side faults: delays, corruption of the bytes just
// read, or a hard close.
func (c *Conn) Read(b []byte) (int, error) {
	act, delay := c.plan.decide(true)
	switch act {
	case actDelay:
		c.plan.clk.Sleep(delay)
	case actClose:
		c.Conn.Close()
		return 0, ErrInjected
	}
	n, err := c.Conn.Read(b)
	if act == actCorrupt && n > 0 {
		if i := corruptIndex(b[:n]); i >= 0 {
			b[i] ^= 0x20
		}
	}
	return n, err
}

// corruptIndex picks a byte safe to flip: never a newline (flipping
// framing would merge frames, which is a different fault — truncate and
// drop already cover broken framing).
func corruptIndex(b []byte) int {
	for i := range b {
		if b[i] != '\n' && b[i]^0x20 != '\n' {
			return i
		}
	}
	return -1
}

// WrapListener puts every accepted connection under the plan.
func (p *Plan) WrapListener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, plan: p}
}

type listener struct {
	net.Listener
	plan *Plan
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.plan.Wrap(c), nil
}
