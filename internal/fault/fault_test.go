package fault

import (
	"net"
	"testing"
	"time"
)

// TestDecideDeterministic: the same seed yields the same action
// sequence — a failing chaos seed can be replayed.
func TestDecideDeterministic(t *testing.T) {
	cfg := Config{DropProb: 0.2, DelayProb: 0.2, CorruptProb: 0.2, TruncateProb: 0.2, CloseProb: 0.1}
	a, b := NewPlan(7, cfg), NewPlan(7, cfg)
	for i := 0; i < 1000; i++ {
		isRead := i%3 == 0
		actA, delayA := a.decide(isRead)
		actB, delayB := b.decide(isRead)
		if actA != actB || delayA != delayB {
			t.Fatalf("draw %d diverged: (%v,%v) vs (%v,%v)", i, actA, delayA, actB, delayB)
		}
	}
	c := NewPlan(8, cfg)
	same := true
	a2 := NewPlan(7, cfg)
	for i := 0; i < 1000; i++ {
		actA, dA := a2.decide(false)
		actC, dC := c.decide(false)
		if actA != actC || dA != dC {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestDroppedWriteReportsSuccess: the caller must not be able to tell a
// dropped write from a delivered one.
func TestDroppedWriteReportsSuccess(t *testing.T) {
	p := NewPlan(1, Config{DropProb: 1})
	client, server := net.Pipe()
	defer server.Close()
	fc := p.Wrap(client)
	n, err := fc.Write([]byte("hello\n"))
	if n != 6 || err != nil {
		t.Fatalf("dropped write = (%d, %v), want (6, nil)", n, err)
	}
	// Nothing arrived.
	server.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if n, _ := server.Read(make([]byte, 16)); n != 0 {
		t.Fatalf("%d bytes arrived from a dropped write", n)
	}
}

// TestCloseFaultKillsConn: a close fault errors the operation and the
// underlying conn really is dead.
func TestCloseFaultKillsConn(t *testing.T) {
	p := NewPlan(1, Config{CloseProb: 1})
	client, server := net.Pipe()
	defer server.Close()
	fc := p.Wrap(client)
	if _, err := fc.Write([]byte("x\n")); err == nil {
		t.Fatal("close fault reported success")
	}
	if _, err := client.Write([]byte("y\n")); err == nil {
		t.Fatal("underlying conn survived a close fault")
	}
}

// TestCorruptFlipsOneByte: corruption changes payload but keeps length
// and framing (never touches newlines).
func TestCorruptFlipsOneByte(t *testing.T) {
	p := NewPlan(1, Config{CorruptProb: 1})
	client, server := net.Pipe()
	defer server.Close()
	fc := p.Wrap(client)
	sent := []byte(`{"t":"alloc"}` + "\n")
	got := make([]byte, len(sent))
	done := make(chan error, 1)
	go func() {
		_, err := fc.Write(sent)
		done <- err
	}()
	if _, err := server.Read(got); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range sent {
		if got[i] != sent[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", diff)
	}
	if got[len(got)-1] != '\n' {
		t.Fatal("corruption broke framing")
	}
}

// TestHealRestoresTransport: after Heal every operation passes through.
func TestHealRestoresTransport(t *testing.T) {
	p := NewPlan(1, Config{DropProb: 1})
	p.Heal()
	client, server := net.Pipe()
	defer server.Close()
	fc := p.Wrap(client)
	go fc.Write([]byte("ok\n"))
	buf := make([]byte, 3)
	server.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := server.Read(buf); err != nil {
		t.Fatalf("healed transport still faulting: %v", err)
	}
	if string(buf) != "ok\n" {
		t.Fatalf("got %q", buf)
	}
}
