package fault_test

import (
	"context"
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"convgpu/internal/core"
	"convgpu/internal/daemon"
	"convgpu/internal/fault"
	"convgpu/internal/gpu"
	"convgpu/internal/ipc"
	"convgpu/internal/leak"
	"convgpu/internal/protocol"
	"convgpu/internal/wal"
	"convgpu/internal/wrapper"
)

// maxWALSeeds bounds the WAL chaos sweep: each schedule pays the same
// watchdog budget as TestChaos plus a full daemon restart, so the
// sweep replays a slice of the seed range rather than doubling the
// whole `make chaos` wall time.
const maxWALSeeds = 12

// TestChaosWALRecovery replays seeded fault schedules against a
// WAL-backed daemon, then crashes past it: after the hostile workload,
// one container closes cleanly, the daemon is shut down, and a fresh
// daemon (new core, same log) must recover exactly the still-open
// session — whatever the faults did to the transport, the log's fold
// must agree with the admission state the daemon acknowledged.
func TestChaosWALRecovery(t *testing.T) {
	leak.Check(t)
	seeds := *chaosSeeds
	if seeds > maxWALSeeds {
		seeds = maxWALSeeds
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		ok := t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaosWALSchedule(t, seed)
		})
		if !ok {
			t.Fatalf("seed %d violated an invariant; replay with -run 'TestChaosWALRecovery/seed=%d$'", seed, seed)
		}
	}
}

func runChaosWALSchedule(t *testing.T, seed int64) {
	walDir := filepath.Join(t.TempDir(), "wal")
	base := filepath.Join(t.TempDir(), "cv")
	l, err := wal.Open(wal.Options{Dir: walDir, Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	st := core.MustNew(core.Config{Capacity: cmib(chaosCapacity), ContextOverhead: 1})
	d, err := daemon.Start(daemon.Config{BaseDir: base, Core: st, WAL: l})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	ctl, err := ipc.Dial(d.ControlSocket())
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	tenA, tenB := chaosTenants()
	sockA := chaosRegister(t, ctl, "a", cmib(chaosLimitA), tenA)
	sockB := chaosRegister(t, ctl, "b", cmib(chaosLimitB), tenB)

	plan := fault.NewPlan(seed, fault.Config{
		DropProb:     0.02,
		DelayProb:    0.10,
		CorruptProb:  0.04,
		TruncateProb: 0.04,
		CloseProb:    0.05,
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	dev := gpu.New(gpu.K20m())
	modA, recA := chaosModule(ctx, plan, sockA, dev, 1, seed)
	defer recA.Close()
	modB, recB := chaosModule(ctx, plan, sockB, dev, 2, seed)
	defer recB.Close()

	errs := make(chan error, 2)
	var wg sync.WaitGroup
	for i, mod := range []*wrapper.Module{modA, modB} {
		wg.Add(1)
		go func(mod *wrapper.Module, opSeed int64) {
			defer wg.Done()
			errs <- chaosOpsLoop(ctx, st, mod, opSeed)
		}(mod, seed*1000+int64(i))
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(chaosWatchdog):
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			buf := make([]byte, 1<<20)
			t.Fatalf("ops wedged past context cancel\n%s", buf[:runtime.Stack(buf, true)])
		}
	}
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("invariant violated mid-schedule: %v", err)
		}
	}

	// Heal, close one container over a reliable path, and crash the
	// daemon. The log is the only state that survives.
	plan.Heal()
	cancel()
	recA.Close()
	recB.Close()
	resp, err := ctl.Call(context.Background(), &protocol.Message{Type: protocol.TypeClose, Container: "a"})
	if err != nil || !resp.OK {
		t.Fatalf("close a: %v %+v", err, resp)
	}
	protocol.ReleaseMessage(resp)
	if err := d.Close(); err != nil {
		t.Fatalf("daemon close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("wal close: %v", err)
	}

	// Recovery: fresh core, same log. Exactly b must come back, with the
	// limit the chaos-era registration acknowledged.
	l2, err := wal.Open(wal.Options{Dir: walDir, Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	st2 := core.MustNew(core.Config{Capacity: cmib(chaosCapacity), ContextOverhead: 1})
	d2, err := daemon.Start(daemon.Config{BaseDir: base, Core: st2, WAL: l2})
	if err != nil {
		t.Fatalf("recovery start: %v", err)
	}
	defer d2.Close()
	if _, err := st2.Info("a"); err == nil {
		t.Error("closed session a resurrected by recovery")
	}
	info, err := st2.Info("b")
	if err != nil {
		t.Fatalf("session b not recovered: %v", err)
	}
	if info.Limit != cmib(chaosLimitB) {
		t.Errorf("recovered limit = %v, want %v", info.Limit, cmib(chaosLimitB))
	}
	if err := st2.CheckInvariants(); err != nil {
		t.Fatalf("invariant violated after recovery: %v", err)
	}

	// The recovered session closes cleanly and the pool is whole.
	ctl2, err := ipc.Dial(d2.ControlSocket())
	if err != nil {
		t.Fatal(err)
	}
	defer ctl2.Close()
	resp, err = ctl2.Call(context.Background(), &protocol.Message{Type: protocol.TypeClose, Container: "b"})
	if err != nil || !resp.OK {
		t.Fatalf("close b after recovery: %v %+v", err, resp)
	}
	protocol.ReleaseMessage(resp)
	if free := st2.PoolFree(); free != cmib(chaosCapacity) {
		t.Fatalf("pool after recovered teardown = %v, want %v", free, cmib(chaosCapacity))
	}
}
