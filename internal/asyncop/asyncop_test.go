package asyncop

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"convgpu/internal/leak"
)

func waitDone(t *testing.T, m *Manager, id string) Operation {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		op, ok := m.Get(id)
		if !ok {
			t.Fatalf("operation %s vanished", id)
		}
		if op.Status == StatusCompleted || op.Status == StatusFailed {
			return op
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("operation %s never finished", id)
	return Operation{}
}

func TestSubmitCompleteAndFail(t *testing.T) {
	leak.Check(t)
	m := New(2, nil)
	defer m.Close()

	id, err := m.Submit("drain", "req-1", "node 3", func() (any, error) {
		return map[string]int{"node": 3}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	op := waitDone(t, m, id)
	if op.Status != StatusCompleted || op.Error != "" {
		t.Fatalf("op = %+v, want completed", op)
	}
	if op.Kind != "drain" || op.RequestID != "req-1" || op.Detail != "node 3" {
		t.Fatalf("op metadata %+v", op)
	}
	if op.DoneTime == 0 || op.SubmitTime == 0 {
		t.Fatalf("timestamps not set: %+v", op)
	}

	fid, err := m.Submit("compact", "req-2", "", func() (any, error) {
		return nil, errors.New("disk full")
	})
	if err != nil {
		t.Fatal(err)
	}
	fop := waitDone(t, m, fid)
	if fop.Status != StatusFailed || fop.Error != "disk full" {
		t.Fatalf("op = %+v, want failed disk full", fop)
	}
}

func TestListNewestFirst(t *testing.T) {
	leak.Check(t)
	clock := time.Unix(0, 0)
	m := New(1, func() time.Time { clock = clock.Add(time.Second); return clock })
	defer m.Close()
	var ids []string
	for i := 0; i < 3; i++ {
		id, err := m.Submit("snapshot", fmt.Sprintf("r%d", i), "", func() (any, error) { return nil, nil })
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		waitDone(t, m, id)
	}
	got := m.List()
	if len(got) != 3 {
		t.Fatalf("List returned %d ops, want 3", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].SubmitTime < got[i].SubmitTime {
			t.Fatalf("List not newest-first: %+v", got)
		}
	}
}

func TestRetentionEvictsOldestFinished(t *testing.T) {
	leak.Check(t)
	m := New(1, nil)
	defer m.Close()
	m.retain = 4
	var ids []string
	for i := 0; i < 10; i++ {
		id, err := m.Submit("noop", "", "", func() (any, error) { return nil, nil })
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	waitDone(t, m, ids[len(ids)-1])
	m.mu.Lock()
	n := len(m.ops)
	m.mu.Unlock()
	if n != 4 {
		t.Fatalf("retained %d ops, want 4", n)
	}
	if _, ok := m.Get(ids[0]); ok {
		t.Fatal("oldest op survived retention")
	}
	if _, ok := m.Get(ids[len(ids)-1]); !ok {
		t.Fatal("newest op evicted")
	}
}

func TestCloseWaitsForInFlight(t *testing.T) {
	leak.Check(t)
	m := New(2, nil)
	release := make(chan struct{})
	id, err := m.Submit("slow", "", "", func() (any, error) {
		<-release
		return "done", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(10 * time.Millisecond)
		close(release)
	}()
	m.Close()
	wg.Wait()
	op, ok := m.Get(id)
	if !ok || op.Status != StatusCompleted {
		t.Fatalf("in-flight op after Close: %+v (ok=%v), want completed", op, ok)
	}
	if _, err := m.Submit("late", "", "", func() (any, error) { return nil, nil }); err == nil {
		t.Fatal("Submit after Close should fail")
	}
	m.Close() // idempotent
}

func TestConcurrentSubmitters(t *testing.T) {
	leak.Check(t)
	m := New(4, nil)
	var wg sync.WaitGroup
	const n = 200
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := m.Submit("burst", "", "", func() (any, error) { return nil, nil })
			errs <- err
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	m.Close()
}
