// Package asyncop runs mutating admin verbs as asynchronous operations:
// a Submit enqueues the work and immediately returns an operation ID;
// the caller polls Get until the operation reports completed or failed.
// This is the heketi async-HTTP shape — the admin plane never blocks an
// HTTP request on a drain or a compaction — without the HTTP parts,
// which live in internal/admin.
//
// A fixed worker pool drains the queue so a burst of verbs cannot spawn
// a goroutine per request, and a retention ring keeps the most recent
// finished operations visible to pollers after completion.
package asyncop

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Status is an operation's lifecycle stage.
type Status string

const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusCompleted Status = "completed"
	StatusFailed    Status = "failed"
)

// Operation is the pollable view of one submitted verb. Result is only
// set once Status is StatusCompleted; Error only for StatusFailed.
type Operation struct {
	ID        string `json:"id"`
	Kind      string `json:"kind"`
	Status    Status `json:"status"`
	RequestID string `json:"request_id,omitempty"`
	// Detail is the verb's target (a node number, a wal directory) for
	// operator listings.
	Detail     string `json:"detail,omitempty"`
	SubmitTime int64  `json:"submitted_unix_nano"`
	DoneTime   int64  `json:"done_unix_nano,omitempty"`
	Result     any    `json:"result,omitempty"`
	Error      string `json:"error,omitempty"`
}

// defaultRetain bounds how many finished operations stay pollable; the
// oldest finished are evicted first. Live operations are never evicted.
const defaultRetain = 256

// Manager owns the queue, the workers, and the operation table.
type Manager struct {
	now func() time.Time

	mu      sync.Mutex
	ops     map[string]*Operation
	order   []string // finished IDs, oldest first, for retention eviction
	nextID  uint64
	queue   chan *job
	wg      sync.WaitGroup // workers
	senders sync.WaitGroup // Submits between the closed check and the send
	closed  bool
	retain  int
}

type job struct {
	id string
	fn func() (any, error)
}

// New starts a manager with the given worker count (min 1). The clock
// is injectable for tests; nil means time.Now.
func New(workers int, now func() time.Time) *Manager {
	if workers < 1 {
		workers = 1
	}
	if now == nil {
		now = time.Now
	}
	m := &Manager{
		now:    now,
		ops:    make(map[string]*Operation),
		queue:  make(chan *job, 64),
		retain: defaultRetain,
	}
	m.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go m.worker()
	}
	return m
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.mu.Lock()
		op := m.ops[j.id]
		op.Status = StatusRunning
		m.mu.Unlock()
		res, err := j.fn()
		m.mu.Lock()
		op.DoneTime = m.now().UnixNano()
		if err != nil {
			op.Status = StatusFailed
			op.Error = err.Error()
		} else {
			op.Status = StatusCompleted
			op.Result = res
		}
		m.order = append(m.order, j.id)
		for len(m.order) > m.retain {
			delete(m.ops, m.order[0])
			m.order = m.order[1:]
		}
		m.mu.Unlock()
	}
}

// Submit enqueues fn as an operation and returns its ID immediately.
// kind names the verb ("drain", "compact"), requestID ties the op back
// to the HTTP request that created it, detail is the target.
func (m *Manager) Submit(kind, requestID, detail string, fn func() (any, error)) (string, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return "", fmt.Errorf("asyncop: manager closed")
	}
	m.nextID++
	id := fmt.Sprintf("op-%d", m.nextID)
	m.ops[id] = &Operation{
		ID:         id,
		Kind:       kind,
		Status:     StatusQueued,
		RequestID:  requestID,
		Detail:     detail,
		SubmitTime: m.now().UnixNano(),
	}
	// The senders group keeps Close from closing the channel while this
	// send is in flight; the send itself happens outside the lock so a
	// full queue cannot wedge the workers (they need the lock between
	// receives).
	m.senders.Add(1)
	m.mu.Unlock()
	m.queue <- &job{id: id, fn: fn}
	m.senders.Done()
	return id, nil
}

// Get returns a copy of one operation by ID.
func (m *Manager) Get(id string) (Operation, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	op, ok := m.ops[id]
	if !ok {
		return Operation{}, false
	}
	return *op, true
}

// List returns copies of all retained operations, newest first.
func (m *Manager) List() []Operation {
	m.mu.Lock()
	out := make([]Operation, 0, len(m.ops))
	for _, op := range m.ops {
		out = append(out, *op)
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].SubmitTime != out[j].SubmitTime {
			return out[i].SubmitTime > out[j].SubmitTime
		}
		return out[i].ID > out[j].ID
	})
	return out
}

// Close drains the queue and stops the workers. Submitted operations
// finish; new submissions fail.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	m.senders.Wait()
	close(m.queue)
	m.wg.Wait()
}
