// Package errs holds the sentinel errors shared across layer
// boundaries. The wrapper, nvdocker shim, daemon and facade all used to
// spell failures as free-form strings; these sentinels make the common
// outcomes matchable with errors.Is wherever they surface — in-process,
// or reconstructed from a protocol error code on the far side of a
// socket (see protocol.CodeFor / protocol.ErrFromCode).
package errs

import "errors"

var (
	// ErrRejected: the scheduler denied an allocation because it would
	// exceed the container's memory limit (the paper's reject decision).
	ErrRejected = errors.New("convgpu: allocation rejected: exceeds container limit")

	// ErrSuspendedTimeout: an allocation was suspended and the caller's
	// deadline expired before the scheduler could admit it.
	ErrSuspendedTimeout = errors.New("convgpu: allocation suspended past caller deadline")

	// ErrDaemonUnavailable: the scheduler daemon could not be reached
	// (dial failed, connection dropped mid-call, or daemon shut down).
	ErrDaemonUnavailable = errors.New("convgpu: scheduler daemon unavailable")

	// ErrOverCapacity: a container's memory limit exceeds the GPU's
	// schedulable capacity, so registration can never succeed.
	ErrOverCapacity = errors.New("convgpu: memory limit exceeds GPU capacity")

	// ErrNodeDown: the node serving this container died and its state
	// could not be migrated to a surviving node. Distinct from
	// ErrDaemonUnavailable — the daemon itself is alive and a retry
	// (fresh registration) may land on a healthy node.
	ErrNodeDown = errors.New("convgpu: node down")
)
