package wrapper

import (
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/cuda"
)

// Stream and event entry points are not in Table II: ConVGPU manages
// memory, not execution, so the wrapper forwards them to the original
// runtime untouched — the advantage the paper claims for LD_PRELOAD
// interposition over full API reimplementation ("it leaves other CUDA
// API available").

// streamInner returns the wrapped runtime's stream surface.
func (m *Module) streamInner() (cuda.StreamAPI, error) {
	if s, ok := m.inner.(cuda.StreamAPI); ok {
		return s, nil
	}
	return nil, cuda.ErrorInvalidValue
}

// StreamCreate implements cuda.StreamAPI (pass-through).
func (m *Module) StreamCreate() (int, error) {
	s, err := m.streamInner()
	if err != nil {
		return 0, err
	}
	return s.StreamCreate()
}

// StreamDestroy implements cuda.StreamAPI (pass-through).
func (m *Module) StreamDestroy(stream int) error {
	s, err := m.streamInner()
	if err != nil {
		return err
	}
	return s.StreamDestroy(stream)
}

// StreamSynchronize implements cuda.StreamAPI (pass-through).
func (m *Module) StreamSynchronize(stream int) error {
	s, err := m.streamInner()
	if err != nil {
		return err
	}
	return s.StreamSynchronize(stream)
}

// MemcpyAsync implements cuda.StreamAPI (pass-through).
func (m *Module) MemcpyAsync(devPtr cuda.DevPtr, size bytesize.Size, kind cuda.MemcpyKind, stream int) error {
	s, err := m.streamInner()
	if err != nil {
		return err
	}
	return s.MemcpyAsync(devPtr, size, kind, stream)
}

// EventCreate implements cuda.StreamAPI (pass-through).
func (m *Module) EventCreate() (*cuda.Event, error) {
	s, err := m.streamInner()
	if err != nil {
		return nil, err
	}
	return s.EventCreate()
}

// EventRecord implements cuda.StreamAPI (pass-through).
func (m *Module) EventRecord(ev *cuda.Event, stream int) error {
	s, err := m.streamInner()
	if err != nil {
		return err
	}
	return s.EventRecord(ev, stream)
}

// EventSynchronize implements cuda.StreamAPI (pass-through).
func (m *Module) EventSynchronize(ev *cuda.Event) error {
	s, err := m.streamInner()
	if err != nil {
		return err
	}
	return s.EventSynchronize(ev)
}

// EventElapsed implements cuda.StreamAPI (pass-through).
func (m *Module) EventElapsed(start, end *cuda.Event) (time.Duration, error) {
	s, err := m.streamInner()
	if err != nil {
		return 0, err
	}
	return s.EventElapsed(start, end)
}

var _ cuda.StreamAPI = (*Module)(nil)
