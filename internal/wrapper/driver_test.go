package wrapper

import (
	"testing"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/core"
	"convgpu/internal/cuda"
	"convgpu/internal/gpu"
	"convgpu/internal/inproc"
)

// driverRig wires a DriverModule to a real core via the in-process
// transport, one container with one process.
type driverRig struct {
	dev *gpu.Device
	st  *core.State
	hub *inproc.Hub
	mod *DriverModule
	id  core.ContainerID
}

func newDriverRig(t *testing.T, limit bytesize.Size) *driverRig {
	t.Helper()
	dev := gpu.New(gpu.K20m())
	st := core.MustNew(core.Config{Capacity: 5 * bytesize.GiB})
	hub := inproc.NewHub(st)
	id := core.ContainerID("drv")
	if _, err := hub.Register(id, limit); err != nil {
		t.Fatal(err)
	}
	mod := NewDriver(cuda.NewDriver(dev, 55), hub.Caller(id), 55)
	if err := mod.Init(0); err != nil {
		t.Fatal(err)
	}
	if err := mod.CtxCreate(0); err != nil {
		t.Fatal(err)
	}
	return &driverRig{dev: dev, st: st, hub: hub, mod: mod, id: id}
}

func TestDriverMemAllocTracked(t *testing.T) {
	r := newDriverRig(t, mib(1024))
	ptr, err := r.mod.MemAlloc(mib(100))
	if err != nil {
		t.Fatal(err)
	}
	if size, pid, ok := r.dev.Lookup(uint64(ptr)); !ok || size != mib(100) || pid != 55 {
		t.Fatalf("device Lookup = (%v,%v,%v)", size, pid, ok)
	}
	info, err := r.st.Info(r.id)
	if err != nil {
		t.Fatal(err)
	}
	if info.Used != mib(100)+core.DefaultContextOverhead {
		t.Fatalf("core used = %v", info.Used)
	}
}

func TestDriverMemAllocRejected(t *testing.T) {
	r := newDriverRig(t, mib(128))
	if _, err := r.mod.MemAlloc(mib(128)); err != cuda.CUDAErrorOutOfMemory {
		t.Fatalf("over-limit cuMemAlloc: %v", err)
	}
	// Only the context reservation touched the device.
	if used := r.dev.Used(); used != core.DefaultContextOverhead {
		t.Fatalf("device used = %v", used)
	}
	if _, err := r.mod.MemAlloc(0); err != cuda.CUDAErrorInvalidValue {
		t.Fatalf("MemAlloc(0): %v", err)
	}
}

func TestDriverMemFreeReports(t *testing.T) {
	r := newDriverRig(t, mib(1024))
	ptr, err := r.mod.MemAlloc(mib(64))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.mod.MemFree(ptr); err != nil {
		t.Fatal(err)
	}
	r.mod.Flush()
	info, _ := r.st.Info(r.id)
	if info.Used != core.DefaultContextOverhead {
		t.Fatalf("core used after free = %v", info.Used)
	}
}

func TestDriverVirtualizedViews(t *testing.T) {
	r := newDriverRig(t, mib(1024))
	free, total, err := r.mod.MemGetInfo()
	if err != nil {
		t.Fatal(err)
	}
	if total != mib(1024) || free != mib(1024) {
		t.Fatalf("MemGetInfo = (%v,%v), want 1GiB container view", free, total)
	}
	// cuDeviceTotalMem reports the limit too, not the 5 GiB device.
	dt, err := r.mod.DeviceTotalMem(0)
	if err != nil || dt != mib(1024) {
		t.Fatalf("DeviceTotalMem = (%v,%v)", dt, err)
	}
}

func TestDriverCtxDestroyReportsExit(t *testing.T) {
	r := newDriverRig(t, mib(1024))
	if _, err := r.mod.MemAlloc(mib(200)); err != nil {
		t.Fatal(err) // leaked
	}
	if err := r.mod.CtxDestroy(); err != nil {
		t.Fatal(err)
	}
	if used := r.dev.Used(); used != 0 {
		t.Fatalf("device used after ctx destroy = %v", used)
	}
	info, _ := r.st.Info(r.id)
	if info.Used != 0 {
		t.Fatalf("core used after ctx destroy = %v", info.Used)
	}
}

func TestDriverPassThroughOps(t *testing.T) {
	r := newDriverRig(t, mib(1024))
	ptr, err := r.mod.MemAlloc(mib(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.mod.MemcpyHtoD(ptr, mib(8)); err != nil {
		t.Fatal(err)
	}
	if err := r.mod.LaunchKernel(cuda.Kernel{Name: "k", Duration: 0}, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.mod.CtxSynchronize(); err != nil {
		t.Fatal(err)
	}
	if err := r.mod.MemcpyDtoH(ptr, mib(8)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.mod.DeviceGet(0); err != nil {
		t.Fatal(err)
	}
}

func TestDriverSuspensionAcrossAPIs(t *testing.T) {
	// A Driver-API container and a Runtime-API container share one
	// scheduler: the paper's point that both interfaces are covered by
	// the same management.
	dev := gpu.New(gpu.K20m())
	st := core.MustNew(core.Config{Capacity: mib(1000), ContextOverhead: 1})
	hub := inproc.NewHub(st)
	if _, err := hub.Register("rt", mib(700)); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Register("drv", mib(600)); err != nil {
		t.Fatal(err)
	}
	rtMod := New(cuda.NewRuntime(dev, 1), hub.Caller("rt"), 1)
	drvMod := NewDriver(cuda.NewDriver(dev, 2), hub.Caller("drv"), 2)
	drvMod.Init(0)
	drvMod.CtxCreate(0)

	if _, err := rtMod.Malloc(mib(600)); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		_, err := drvMod.MemAlloc(mib(500)) // grant 300: suspends
		got <- err
	}()
	select {
	case err := <-got:
		t.Fatalf("driver alloc returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if _, err := hub.Close("rt"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("resumed cuMemAlloc failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cuMemAlloc never resumed")
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
