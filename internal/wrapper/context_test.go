package wrapper

import (
	"context"
	"strings"
	"testing"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/core"
	"convgpu/internal/cuda"
	"convgpu/internal/gpu"
	"convgpu/internal/inproc"
)

// TestWithContextUnblocksSuspendedMalloc: cancelling the process context
// (docker stop / SIGKILL) releases a Malloc blocked in suspension.
func TestWithContextUnblocksSuspendedMalloc(t *testing.T) {
	dev := gpu.New(gpu.K20m())
	st := core.MustNew(core.Config{Capacity: mib(1000), ContextOverhead: 1})
	hub := inproc.NewHub(st)
	if _, err := hub.Register("big", mib(700)); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Register("small", mib(600)); err != nil {
		t.Fatal(err)
	}
	modBig := New(cuda.NewRuntime(dev, 1), hub.Caller("big"), 1)
	if _, err := modBig.Malloc(mib(600)); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	modSmall := New(cuda.NewRuntime(dev, 2), hub.Caller("small"), 2, WithContext(ctx))
	got := make(chan error, 1)
	go func() {
		_, err := modSmall.Malloc(mib(500))
		got <- err
	}()
	select {
	case err := <-got:
		t.Fatalf("suspended Malloc returned early: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-got:
		if err == nil {
			t.Fatal("cancelled Malloc succeeded")
		}
		if !strings.Contains(err.Error(), "terminated while allocation was suspended") {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled Malloc never unblocked")
	}
	// Nothing of small's was charged to the device: only big's 600 MiB
	// allocation plus its 66 MiB device context exist.
	if used := dev.Used(); used != 600*bytesize.MiB+66*bytesize.MiB {
		t.Fatalf("device used = %v, want big's 666MiB only", used)
	}
	// The core still has the pending ticket; process exit cleans it up.
	if err := modSmall.UnregisterFatBinary(); err != nil {
		t.Fatal(err)
	}
	info, err := st.Info("small")
	if err != nil {
		t.Fatal(err)
	}
	if info.Pending != 0 || info.Used != 0 {
		t.Fatalf("small after exit = %+v", info)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestWithContextPreCancelled: a dead process's allocations fail
// immediately without charging anything.
func TestWithContextPreCancelled(t *testing.T) {
	dev := gpu.New(gpu.K20m())
	st := core.MustNew(core.Config{Capacity: mib(1000), ContextOverhead: 1})
	hub := inproc.NewHub(st)
	if _, err := hub.Register("c", mib(500)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	mod := New(cuda.NewRuntime(dev, 3), hub.Caller("c"), 3, WithContext(ctx))
	if _, err := mod.Malloc(mib(100)); err == nil {
		t.Fatal("Malloc with dead context succeeded")
	}
	info, _ := st.Info("c")
	if info.Used != 0 {
		t.Fatalf("used = %v after dead-context Malloc", info.Used)
	}
}
