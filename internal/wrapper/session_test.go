package wrapper

import (
	"context"
	"errors"
	"testing"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/core"
	"convgpu/internal/cuda"
	"convgpu/internal/inproc"
	"convgpu/internal/protocol"
)

// downCaller simulates an unreachable scheduler.
type downCaller struct{}

func (downCaller) Call(context.Context, *protocol.Message) (*protocol.Message, error) {
	return nil, errors.New("injected transport failure")
}

// TestAllocFailsClosedWhenSchedulerUnreachable: a transport failure on
// the allocation round trip must surface as the CUDA out-of-memory
// error — never a locally granted allocation the scheduler doesn't know
// about.
func TestAllocFailsClosedWhenSchedulerUnreachable(t *testing.T) {
	r := newRig(t, mib(512))
	mod := New(r.rt, downCaller{}, 100)
	_, err := mod.Malloc(mib(64))
	if !errors.Is(err, cuda.ErrorMemoryAllocation) {
		t.Fatalf("err = %v, want cudaErrorMemoryAllocation", err)
	}
	// Nothing was allocated on the device behind the scheduler's back.
	if used := r.dev.Used(); used != 0 {
		t.Fatalf("device used = %v after failed alloc", used)
	}
	mod.mu.Lock()
	tracked := len(mod.allocs)
	mod.mu.Unlock()
	if tracked != 0 {
		t.Fatalf("%d allocations tracked after failure", tracked)
	}
}

// TestReplayStateRestoresUsage: after the scheduler loses all state (a
// restart), replaying the wrapper's live allocations rebuilds the
// accounting; replaying against a scheduler that never lost it is a
// no-op.
func TestReplayStateRestoresUsage(t *testing.T) {
	r := newRig(t, mib(512))
	if _, err := r.mod.Malloc(mib(100)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.mod.Malloc(mib(50)); err != nil {
		t.Fatal(err)
	}
	usedBefore := infoUsed(t, r.st, r.id)

	// Replay against the same, still-intact scheduler: idempotent.
	if err := r.mod.ReplayState(context.Background(), r.spy); err != nil {
		t.Fatal(err)
	}
	if got := infoUsed(t, r.st, r.id); got != usedBefore {
		t.Fatalf("used changed across idempotent replay: %v -> %v", usedBefore, got)
	}

	// A fresh core standing in for a restarted scheduler: the replay
	// rebuilds the usage from the wrapper's tracked allocations.
	st2 := core.MustNew(core.Config{Capacity: 5 * mib(1024)})
	hub2 := inproc.NewHub(st2)
	if _, err := hub2.Register(r.id, mib(512)); err != nil {
		t.Fatal(err)
	}
	if err := r.mod.ReplayState(context.Background(), hub2.Caller(r.id)); err != nil {
		t.Fatal(err)
	}
	if got := infoUsed(t, st2, r.id); got != usedBefore {
		t.Fatalf("restored used = %v, want %v (allocs + context overhead)", got, usedBefore)
	}
	if err := st2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestReplayStateForgetsFreedAllocs: freed memory must not be replayed.
func TestReplayStateForgetsFreedAllocs(t *testing.T) {
	r := newRig(t, mib(512))
	ptr, err := r.mod.Malloc(mib(100))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.mod.Malloc(mib(30)); err != nil {
		t.Fatal(err)
	}
	if err := r.mod.Free(ptr); err != nil {
		t.Fatal(err)
	}
	r.mod.Flush()

	st2 := core.MustNew(core.Config{Capacity: 5 * mib(1024)})
	hub2 := inproc.NewHub(st2)
	if _, err := hub2.Register(r.id, mib(512)); err != nil {
		t.Fatal(err)
	}
	if err := r.mod.ReplayState(context.Background(), hub2.Caller(r.id)); err != nil {
		t.Fatal(err)
	}
	want := mib(30) + core.DefaultContextOverhead
	if got := infoUsed(t, st2, r.id); got != want {
		t.Fatalf("restored used = %v, want %v (the freed 100MiB must not replay)", got, want)
	}
}

// TestReplayStateFailsClosedOverLimit: a replay the scheduler cannot
// honor (restored usage above the container's limit) is an error, not a
// silent partial restore.
func TestReplayStateFailsClosedOverLimit(t *testing.T) {
	r := newRig(t, mib(512))
	if _, err := r.mod.Malloc(mib(400)); err != nil {
		t.Fatal(err)
	}
	st2 := core.MustNew(core.Config{Capacity: 5 * mib(1024)})
	hub2 := inproc.NewHub(st2)
	if _, err := hub2.Register(r.id, mib(100)); err != nil { // shrunken limit
		t.Fatal(err)
	}
	if err := r.mod.ReplayState(context.Background(), hub2.Caller(r.id)); err == nil {
		t.Fatal("replay over limit succeeded")
	}
}

// TestStartHeartbeats: heartbeats flow until stopped.
func TestStartHeartbeats(t *testing.T) {
	r := newRig(t, mib(512))
	stop := r.mod.StartHeartbeats(2 * time.Millisecond)
	deadline := time.Now().Add(3 * time.Second)
	for len(r.spy.byType(protocol.TypeHeartbeat)) < 3 {
		if time.Now().After(deadline) {
			t.Fatal("heartbeats never flowed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	stop()
	n := len(r.spy.byType(protocol.TypeHeartbeat))
	time.Sleep(20 * time.Millisecond)
	if got := len(r.spy.byType(protocol.TypeHeartbeat)); got != n {
		t.Fatalf("heartbeats kept flowing after stop: %d -> %d", n, got)
	}
}

func infoUsed(t *testing.T, st *core.State, id core.ContainerID) bytesize.Size {
	t.Helper()
	info, err := st.Info(id)
	if err != nil {
		t.Fatal(err)
	}
	return info.Used
}
