package wrapper

import (
	"testing"

	"convgpu/internal/bytesize"
	"convgpu/internal/core"
	"convgpu/internal/cuda"
	"convgpu/internal/gpu"
	"convgpu/internal/inproc"
)

func TestStreamPassThrough(t *testing.T) {
	r := newRig(t, mib(1024))
	s, err := r.mod.StreamCreate()
	if err != nil {
		t.Fatal(err)
	}
	ptr, err := r.mod.Malloc(mib(32))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.mod.MemcpyAsync(ptr, mib(32), cuda.MemcpyHostToDevice, s); err != nil {
		t.Fatal(err)
	}
	if err := r.mod.LaunchKernel(cuda.Kernel{Name: "k", Duration: 0}, s); err != nil {
		t.Fatal(err)
	}
	start, err := r.mod.EventCreate()
	if err != nil {
		t.Fatal(err)
	}
	end, err := r.mod.EventCreate()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.mod.EventRecord(start, s); err != nil {
		t.Fatal(err)
	}
	if err := r.mod.EventRecord(end, s); err != nil {
		t.Fatal(err)
	}
	if err := r.mod.StreamSynchronize(s); err != nil {
		t.Fatal(err)
	}
	if err := r.mod.EventSynchronize(end); err != nil {
		t.Fatal(err)
	}
	if _, err := r.mod.EventElapsed(start, end); err != nil {
		t.Fatal(err)
	}
	if err := r.mod.StreamDestroy(s); err != nil {
		t.Fatal(err)
	}
	// None of the stream traffic reached the scheduler: only the one
	// Malloc did (alloc + confirm).
	if n := len(r.spy.sent); n != 2 {
		t.Fatalf("scheduler saw %d messages, want 2 (alloc+confirm only)", n)
	}
}

// nonStreamAPI is a cuda.API without the stream surface.
type nonStreamAPI struct{ cuda.API }

func TestStreamsOnNonStreamInner(t *testing.T) {
	dev := gpu.New(gpu.K20m())
	st := core.MustNew(core.Config{Capacity: 5 * bytesize.GiB})
	hub := inproc.NewHub(st)
	if _, err := hub.Register("x", bytesize.GiB); err != nil {
		t.Fatal(err)
	}
	mod := New(nonStreamAPI{cuda.NewRuntime(dev, 1)}, hub.Caller("x"), 1)
	if _, err := mod.StreamCreate(); err != cuda.ErrorInvalidValue {
		t.Fatalf("StreamCreate on non-stream inner: %v", err)
	}
	if err := mod.StreamDestroy(1); err != cuda.ErrorInvalidValue {
		t.Fatalf("StreamDestroy: %v", err)
	}
	if err := mod.StreamSynchronize(0); err != cuda.ErrorInvalidValue {
		t.Fatalf("StreamSynchronize: %v", err)
	}
	if err := mod.MemcpyAsync(0, 1, cuda.MemcpyHostToDevice, 0); err != cuda.ErrorInvalidValue {
		t.Fatalf("MemcpyAsync: %v", err)
	}
	if _, err := mod.EventCreate(); err != cuda.ErrorInvalidValue {
		t.Fatalf("EventCreate: %v", err)
	}
	if err := mod.EventRecord(nil, 0); err != cuda.ErrorInvalidValue {
		t.Fatalf("EventRecord: %v", err)
	}
	if err := mod.EventSynchronize(nil); err != cuda.ErrorInvalidValue {
		t.Fatalf("EventSynchronize: %v", err)
	}
	if _, err := mod.EventElapsed(nil, nil); err != cuda.ErrorInvalidValue {
		t.Fatalf("EventElapsed: %v", err)
	}
}
