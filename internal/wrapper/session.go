package wrapper

import (
	"context"
	"fmt"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/cuda"
	"convgpu/internal/protocol"
)

// ReplayState re-establishes this process's scheduler session over c:
// an attach announcing the PID, then one restore per live allocation so
// a scheduler that lost its accounting (restart) re-charges them, and
// one that merely lost the connection treats each as an idempotent
// no-op. The wrapper's Reconnector runs this as its OnReconnect hook —
// c is the freshly dialed transport, deliberately passed explicitly so
// the replay never recurses into the reconnecting Caller it is fixing.
//
// An error means the session could not be rebuilt (e.g. the restored
// usage no longer fits the container's limit); the caller must treat
// the connection as unusable rather than run unaccounted.
func (m *Module) ReplayState(ctx context.Context, c Caller) error {
	resp, err := c.Call(ctx, &protocol.Message{Type: protocol.TypeAttach, PID: m.pid})
	if err != nil {
		return fmt.Errorf("wrapper: attach: %w", err)
	}
	if !resp.OK {
		aerr := fmt.Errorf("wrapper: attach refused: %s", resp.Error)
		protocol.ReleaseMessage(resp)
		return aerr
	}
	m.mu.Lock()
	m.device = resp.Device
	m.mu.Unlock()
	protocol.ReleaseMessage(resp)

	m.mu.Lock()
	allocs := make(map[cuda.DevPtr]bytesize.Size, len(m.allocs))
	for ptr, size := range m.allocs {
		allocs[ptr] = size
	}
	m.mu.Unlock()
	for ptr, size := range allocs {
		resp, err := c.Call(ctx, &protocol.Message{
			Type: protocol.TypeRestore, PID: m.pid, Addr: uint64(ptr), Size: int64(size),
		})
		if err != nil {
			return fmt.Errorf("wrapper: restore %#x: %w", uint64(ptr), err)
		}
		if !resp.OK {
			rerr := fmt.Errorf("wrapper: restore %#x refused: %s", uint64(ptr), resp.Error)
			protocol.ReleaseMessage(resp)
			return rerr
		}
		protocol.ReleaseMessage(resp)
	}
	return nil
}

// StartHeartbeats sends a heartbeat every interval so the daemon's
// session lease sees the process alive even when it goes long stretches
// without allocating. The returned stop function ends the loop and
// waits for it to exit; the loop also ends with the module's context.
// Heartbeat failures are ignored here — a broken transport surfaces on
// the next real call, and the reconnecting transport heals itself.
func (m *Module) StartHeartbeats(interval time.Duration) (stop func()) {
	ctx, cancel := context.WithCancel(m.ctx)
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				if resp, err := m.sched.Call(ctx, &protocol.Message{
					Type: protocol.TypeHeartbeat, PID: m.pid,
				}); err == nil {
					protocol.ReleaseMessage(resp)
				}
			}
		}
	}()
	return func() {
		cancel()
		<-done
	}
}

// Device reports the GPU index the scheduler assigned this container,
// as announced in the last attach response. Zero until the first
// ReplayState completes — which is also the single-device answer.
func (m *Module) Device() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.device
}
