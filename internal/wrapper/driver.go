package wrapper

import (
	"context"
	"fmt"
	"sync"

	"convgpu/internal/bytesize"
	"convgpu/internal/cuda"
	"convgpu/internal/protocol"
)

// DriverModule is the wrapper's Driver-API coverage. The paper (§III-C)
// highlights that LD_PRELOAD interposition "can cover both CUDA Driver
// API and Runtime API" — unlike the full-reimplementation approaches
// (GViM, vCUDA, rCUDA) that only mirror one interface. DriverModule
// interposes on cuMemAlloc, cuMemFree, cuMemGetInfo and cuCtxDestroy;
// everything else passes through to the real driver.
type DriverModule struct {
	inner cuda.DriverAPI
	sched Caller
	pid   int

	reports sync.WaitGroup

	mu       sync.Mutex
	reported bool // context teardown already reported
}

// NewDriver wraps a process's Driver API.
func NewDriver(inner cuda.DriverAPI, sched Caller, pid int) *DriverModule {
	return &DriverModule{inner: inner, sched: sched, pid: pid}
}

// Init implements cuda.DriverAPI (pass-through).
func (m *DriverModule) Init(flags uint) error { return m.inner.Init(flags) }

// DeviceGet implements cuda.DriverAPI (pass-through).
func (m *DriverModule) DeviceGet(ordinal int) (cuda.DeviceHandle, error) {
	return m.inner.DeviceGet(ordinal)
}

// DeviceTotalMem implements cuda.DriverAPI (intercepted): the container
// sees its limit as the device size, consistent with cudaMemGetInfo.
func (m *DriverModule) DeviceTotalMem(dev cuda.DeviceHandle) (bytesize.Size, error) {
	if _, err := m.inner.DeviceTotalMem(dev); err != nil {
		return 0, err
	}
	_, total, err := m.MemGetInfo()
	return total, err
}

// CtxCreate implements cuda.DriverAPI (pass-through; the context's
// memory overhead is accounted by the scheduler on the first
// allocation, as in the Runtime path).
func (m *DriverModule) CtxCreate(dev cuda.DeviceHandle) error {
	return m.inner.CtxCreate(dev)
}

// CtxDestroy implements cuda.DriverAPI (intercepted): destroying the
// context releases every allocation the process holds, so the scheduler
// is told the process is done — the Driver-API analogue of
// __cudaUnregisterFatBinary.
func (m *DriverModule) CtxDestroy() error {
	err := m.inner.CtxDestroy()
	if err != nil {
		return err
	}
	m.reports.Wait()
	m.mu.Lock()
	already := m.reported
	m.reported = true
	m.mu.Unlock()
	if !already {
		if _, serr := m.sched.Call(context.Background(), &protocol.Message{
			Type: protocol.TypeProcExit, PID: m.pid,
		}); serr != nil {
			return fmt.Errorf("wrapper: report ctx destroy: %w", serr)
		}
	}
	return nil
}

// MemAlloc implements cuda.DriverAPI (intercepted): same
// request/confirm/abort protocol as the Runtime path.
func (m *DriverModule) MemAlloc(size bytesize.Size) (cuda.DevPtr, error) {
	if size <= 0 {
		return 0, cuda.CUDAErrorInvalidValue
	}
	resp, err := m.sched.Call(context.Background(), &protocol.Message{
		Type: protocol.TypeAlloc, PID: m.pid, Size: int64(size), API: "cuMemAlloc",
	})
	if err != nil {
		return 0, fmt.Errorf("wrapper: scheduler unreachable: %w", err)
	}
	if !resp.OK || resp.Decision == protocol.DecisionReject {
		return 0, cuda.CUDAErrorOutOfMemory
	}
	ptr, err := m.inner.MemAlloc(size)
	if err != nil {
		if _, aerr := m.sched.Call(context.Background(), &protocol.Message{
			Type: protocol.TypeAbort, PID: m.pid, Size: int64(size),
		}); aerr != nil {
			return 0, fmt.Errorf("wrapper: abort after failed cuMemAlloc: %w", aerr)
		}
		return 0, err
	}
	if _, err := m.sched.Call(context.Background(), &protocol.Message{
		Type: protocol.TypeConfirm, PID: m.pid, Size: int64(size), Addr: uint64(ptr),
	}); err != nil {
		return ptr, fmt.Errorf("wrapper: confirm: %w", err)
	}
	return ptr, nil
}

// MemFree implements cuda.DriverAPI (intercepted, async report like
// cudaFree).
func (m *DriverModule) MemFree(ptr cuda.DevPtr) error {
	if err := m.inner.MemFree(ptr); err != nil {
		return err
	}
	m.reports.Add(1)
	go func() {
		defer m.reports.Done()
		m.sched.Call(context.Background(), &protocol.Message{
			Type: protocol.TypeFree, PID: m.pid, Addr: uint64(ptr),
		})
	}()
	return nil
}

// Flush waits for in-flight free reports (tests/benchmarks).
func (m *DriverModule) Flush() { m.reports.Wait() }

// MemGetInfo implements cuda.DriverAPI (intercepted): the virtualized
// per-container view, answered by the scheduler.
func (m *DriverModule) MemGetInfo() (free, total bytesize.Size, err error) {
	// The real driver call validates context state first.
	if _, _, err := m.inner.MemGetInfo(); err != nil {
		return 0, 0, err
	}
	resp, err := m.sched.Call(context.Background(), &protocol.Message{
		Type: protocol.TypeMemInfo, PID: m.pid,
	})
	if err != nil {
		return 0, 0, fmt.Errorf("wrapper: meminfo: %w", err)
	}
	if !resp.OK {
		return 0, 0, fmt.Errorf("wrapper: meminfo: %s", resp.Error)
	}
	return bytesize.Size(resp.Free), bytesize.Size(resp.Total), nil
}

// MemcpyHtoD implements cuda.DriverAPI (pass-through).
func (m *DriverModule) MemcpyHtoD(dst cuda.DevPtr, size bytesize.Size) error {
	return m.inner.MemcpyHtoD(dst, size)
}

// MemcpyDtoH implements cuda.DriverAPI (pass-through).
func (m *DriverModule) MemcpyDtoH(src cuda.DevPtr, size bytesize.Size) error {
	return m.inner.MemcpyDtoH(src, size)
}

// LaunchKernel implements cuda.DriverAPI (pass-through).
func (m *DriverModule) LaunchKernel(k cuda.Kernel, stream int) error {
	return m.inner.LaunchKernel(k, stream)
}

// CtxSynchronize implements cuda.DriverAPI (pass-through).
func (m *DriverModule) CtxSynchronize() error { return m.inner.CtxSynchronize() }

var _ cuda.DriverAPI = (*DriverModule)(nil)
