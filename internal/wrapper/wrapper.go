// Package wrapper implements ConVGPU's CUDA wrapper API module — the
// libgpushare.so shared library of the paper (§III-C), recast as a Go
// interposition layer.
//
// In the paper the module is injected into every container through the
// LD_PRELOAD environment variable, overriding the function symbols of a
// subset of the CUDA API (Table II) while leaving every other entry
// point untouched. Here the same seam is the cuda.API interface: Module
// wraps an inner cuda.API and replaces exactly the Table II calls —
// allocation APIs, cudaFree, cudaMemGetInfo, and
// __cudaUnregisterFatBinary — forwarding the rest verbatim.
//
// For each intercepted allocation the module:
//
//  1. adjusts the requested size to what the device will actually
//     consume: pitched rows are padded to the device pitch alignment
//     (retrieved once via cudaGetDeviceProperties, which is why the
//     paper's first cudaMallocPitch is ~2x slower), and managed memory
//     is rounded up to 128 MiB granularity;
//  2. asks the GPU memory scheduler whether the size is available — the
//     call blocks while the scheduler pauses the container;
//  3. performs the real allocation only after a positive response, and
//  4. reports the resulting device address back so the scheduler can
//     track the container's usage.
//
// cudaMemGetInfo never touches the device: the scheduler already knows
// the container's virtualized view, which is why the paper measures it
// *faster* with ConVGPU than without.
package wrapper

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"convgpu/internal/bytesize"
	"convgpu/internal/cuda"
	"convgpu/internal/errs"
	"convgpu/internal/gpu"
	"convgpu/internal/protocol"
)

// ModuleFileName is the wrapper module's file name — libgpushare.so in
// the paper. The scheduler daemon copies a module file under this name
// into every per-container directory, and the container runtime treats
// an LD_PRELOAD entry naming it as the injection signal.
const ModuleFileName = "libgpushare.so"

// SocketFileName is the per-container scheduler socket's file name,
// created by the daemon next to the module copy.
const SocketFileName = "gpushare.sock"

// Caller sends one request to the GPU memory scheduler and returns its
// response. *ipc.Client implements it over a UNIX socket; the benchmark
// harness also provides an in-process implementation to isolate
// transport cost.
//
// Ownership: the returned response belongs to the caller, which may
// hand it back to the message pool (protocol.ReleaseMessage) once its
// fields are consumed — implementations must not retain it.
type Caller interface {
	Call(ctx context.Context, m *protocol.Message) (*protocol.Message, error)
}

// Module is the wrapper, bound to one process inside one container.
type Module struct {
	inner cuda.API
	sched Caller
	pid   int
	ctx   context.Context

	// reports tracks in-flight asynchronous notifications (free
	// reports); UnregisterFatBinary waits for them so the process-exit
	// message never overtakes a free.
	reports sync.WaitGroup

	mu        sync.Mutex
	propsOnce bool
	props     gpu.Properties
	exited    bool
	// device is the GPU index the scheduler assigned this container,
	// captured from the attach response (ReplayState). Allocation and
	// meminfo traffic is already device-bound server-side; the wrapper
	// records it so the process can pin its CUDA context to the right
	// device before the first real allocation.
	device int
	// allocs tracks the process's live device allocations (address →
	// adjusted size) so the module can replay them to a restarted
	// scheduler (ReplayState) instead of silently holding unaccounted
	// memory.
	allocs map[cuda.DevPtr]bytesize.Size
}

// Option configures a Module.
type Option func(*Module)

// WithContext bounds the process's lifetime: when ctx is cancelled (the
// container is being stopped — Docker would SIGKILL the process), a
// suspended allocation unblocks with an error instead of waiting
// forever. Without it, suspension can outlive any attempt to stop the
// container, since the close signal only fires on exit.
func WithContext(ctx context.Context) Option {
	return func(m *Module) { m.ctx = ctx }
}

// New builds a wrapper module around the process's real CUDA runtime.
func New(inner cuda.API, sched Caller, pid int, opts ...Option) *Module {
	m := &Module{
		inner:  inner,
		sched:  sched,
		pid:    pid,
		ctx:    context.Background(),
		allocs: make(map[cuda.DevPtr]bytesize.Size),
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// deviceProps retrieves and caches device properties (pitch alignment,
// managed granularity) via the original cudaGetDeviceProperties, on
// first use — the paper's observed first-call penalty for
// cudaMallocPitch.
func (m *Module) deviceProps() (gpu.Properties, error) {
	m.mu.Lock()
	cached := m.propsOnce
	props := m.props
	m.mu.Unlock()
	if cached {
		return props, nil
	}
	p, err := m.inner.GetDeviceProperties()
	if err != nil {
		return gpu.Properties{}, err
	}
	m.mu.Lock()
	m.props = p
	m.propsOnce = true
	m.mu.Unlock()
	return p, nil
}

// requestAlloc runs the scheduler round trip for an adjusted size and,
// on acceptance, invokes doAlloc; it then confirms or aborts.
func (m *Module) requestAlloc(api string, adjusted bytesize.Size, doAlloc func() (cuda.DevPtr, error)) (cuda.DevPtr, error) {
	if adjusted <= 0 {
		return 0, cuda.ErrorInvalidValue
	}
	if err := m.ctx.Err(); err != nil {
		// The process is already being torn down: charge nothing.
		return 0, fmt.Errorf("wrapper: process terminated: %w", err)
	}
	// The request — and with it a possible suspension — is bounded by
	// the process's lifetime context, as is everything after acceptance:
	// once the process is torn down, the connection-drop and lease
	// handling on the daemon side reclaims whatever a cut-short confirm
	// or abort left behind.
	resp, err := m.sched.Call(m.ctx, &protocol.Message{
		Type: protocol.TypeAlloc,
		PID:  m.pid,
		Size: int64(adjusted),
		API:  api,
	})
	if err != nil {
		if cerr := m.ctx.Err(); cerr != nil {
			if errors.Is(cerr, context.DeadlineExceeded) {
				// The caller bounded the wait and the scheduler never
				// granted the suspended allocation in time.
				return 0, fmt.Errorf("wrapper: %w (%v)", errs.ErrSuspendedTimeout, err)
			}
			return 0, fmt.Errorf("wrapper: process terminated while allocation was suspended: %w", err)
		}
		// Fail closed: no reachable scheduler means no grant. The user
		// program sees the failure an exhausted GPU would produce — never
		// a locally-approved allocation the scheduler knows nothing about.
		return 0, fmt.Errorf("wrapper: scheduler unreachable (%v): %w: %w", err, errs.ErrDaemonUnavailable, cuda.ErrorMemoryAllocation)
	}
	rejected := resp.OK && resp.Decision == protocol.DecisionReject
	failed := !resp.OK
	sentinel := protocol.ErrFromCode(resp.Code)
	protocol.ReleaseMessage(resp) // response fields fully consumed above
	if rejected {
		// The scheduler denied the allocation: the user program sees the
		// same failure an exhausted GPU would produce, and errors.Is can
		// still distinguish the scheduler's verdict from a device OOM.
		return 0, fmt.Errorf("wrapper: %w: %w", errs.ErrRejected, cuda.ErrorMemoryAllocation)
	}
	if failed {
		// An error response (unknown container, daemon shutting down, ...)
		// also fails closed; the wire code, when present, is surfaced as
		// its sentinel.
		if sentinel != nil {
			return 0, fmt.Errorf("wrapper: allocation refused: %w: %w", sentinel, cuda.ErrorMemoryAllocation)
		}
		return 0, fmt.Errorf("wrapper: allocation refused: %w", cuda.ErrorMemoryAllocation)
	}
	ptr, err := doAlloc()
	if err != nil {
		// Accepted but the device failed (e.g. fragmentation): hand the
		// charge back.
		if _, aerr := m.sched.Call(m.ctx, &protocol.Message{
			Type: protocol.TypeAbort, PID: m.pid, Size: int64(adjusted),
		}); aerr != nil {
			return 0, fmt.Errorf("wrapper: abort after failed alloc: %w", aerr)
		}
		return 0, err
	}
	m.mu.Lock()
	m.allocs[ptr] = adjusted
	m.mu.Unlock()
	resp, err = m.sched.Call(m.ctx, &protocol.Message{
		Type: protocol.TypeConfirm, PID: m.pid, Size: int64(adjusted), Addr: uint64(ptr),
	})
	if err != nil {
		return ptr, fmt.Errorf("wrapper: confirm: %w", err)
	}
	if !resp.OK {
		// The allocation itself succeeded; a refused confirm means the
		// scheduler's view diverged (a middleware bug, not a user-program
		// condition), so it must be loud.
		cerr := fmt.Errorf("wrapper: confirm refused: %s", resp.Error)
		protocol.ReleaseMessage(resp)
		return ptr, cerr
	}
	protocol.ReleaseMessage(resp)
	return ptr, nil
}

// Malloc implements cuda.API (intercepted).
func (m *Module) Malloc(size bytesize.Size) (cuda.DevPtr, error) {
	return m.requestAlloc("cudaMalloc", size, func() (cuda.DevPtr, error) {
		return m.inner.Malloc(size)
	})
}

// MallocManaged implements cuda.API (intercepted). The accounted size is
// rounded up to the device's managed granularity — cudaMallocManaged
// consumes multiples of 128 MiB (paper §III-C).
func (m *Module) MallocManaged(size bytesize.Size) (cuda.DevPtr, error) {
	if size <= 0 {
		return 0, cuda.ErrorInvalidValue
	}
	props, err := m.deviceProps()
	if err != nil {
		return 0, err
	}
	adjusted := size.RoundUp(props.ManagedGranularity)
	return m.requestAlloc("cudaMallocManaged", adjusted, func() (cuda.DevPtr, error) {
		return m.inner.MallocManaged(size)
	})
}

// MallocPitch implements cuda.API (intercepted). The accounted size uses
// the pitched row width, which requires the device pitch alignment — the
// wrapper retrieves it with cudaGetDeviceProperties on the first call.
func (m *Module) MallocPitch(width, height bytesize.Size) (cuda.DevPtr, bytesize.Size, error) {
	if width <= 0 || height <= 0 {
		return 0, 0, cuda.ErrorInvalidValue
	}
	props, err := m.deviceProps()
	if err != nil {
		return 0, 0, err
	}
	pitch := width.RoundUp(props.TexturePitchAlignment)
	adjusted := pitch * height
	var gotPitch bytesize.Size
	ptr, err := m.requestAlloc("cudaMallocPitch", adjusted, func() (cuda.DevPtr, error) {
		p, realPitch, err := m.inner.MallocPitch(width, height)
		gotPitch = realPitch
		return p, err
	})
	if err != nil {
		return 0, 0, err
	}
	return ptr, gotPitch, nil
}

// Malloc3D implements cuda.API (intercepted): pitched accounting over
// height*depth rows.
func (m *Module) Malloc3D(extent cuda.Extent) (cuda.PitchedPtr, error) {
	if extent.Width <= 0 || extent.Height <= 0 || extent.Depth <= 0 {
		return cuda.PitchedPtr{}, cuda.ErrorInvalidValue
	}
	props, err := m.deviceProps()
	if err != nil {
		return cuda.PitchedPtr{}, err
	}
	pitch := extent.Width.RoundUp(props.TexturePitchAlignment)
	adjusted := pitch * bytesize.Size(extent.Height*extent.Depth)
	var out cuda.PitchedPtr
	_, err = m.requestAlloc("cudaMalloc3D", adjusted, func() (cuda.DevPtr, error) {
		pp, err := m.inner.Malloc3D(extent)
		out = pp
		return pp.Ptr, err
	})
	if err != nil {
		return cuda.PitchedPtr{}, err
	}
	return out, nil
}

// Free implements cuda.API (intercepted): the real deallocation happens
// first, then the address is reported to the scheduler. The report is
// fire-and-forget — the user program "will get the result of
// deallocation from the wrapper module" (paper §III-C) without waiting
// for the scheduler, which is why the paper's cudaFree response time
// with ConVGPU (0.032 ms) is below even the raw allocation cost.
func (m *Module) Free(ptr cuda.DevPtr) error {
	if err := m.inner.Free(ptr); err != nil {
		return err
	}
	m.mu.Lock()
	delete(m.allocs, ptr)
	m.mu.Unlock()
	m.reports.Add(1)
	go func() {
		defer m.reports.Done()
		resp, err := m.sched.Call(m.ctx, &protocol.Message{
			Type: protocol.TypeFree, PID: m.pid, Addr: uint64(ptr),
		})
		if err == nil {
			protocol.ReleaseMessage(resp)
		}
	}()
	return nil
}

// Flush blocks until every in-flight asynchronous report has been
// acknowledged by the scheduler. Tests and benchmarks use it to observe
// a settled scheduler state.
func (m *Module) Flush() { m.reports.Wait() }

// MemGetInfo implements cuda.API (intercepted): answered entirely from
// the scheduler's per-container accounting; the original CUDA API is
// never called, and the container sees only its own memory slice.
func (m *Module) MemGetInfo() (free, total bytesize.Size, err error) {
	resp, err := m.sched.Call(m.ctx, &protocol.Message{
		Type: protocol.TypeMemInfo, PID: m.pid,
	})
	if err != nil {
		return 0, 0, fmt.Errorf("wrapper: meminfo: %w", err)
	}
	if !resp.OK {
		merr := fmt.Errorf("wrapper: meminfo: %s", resp.Error)
		protocol.ReleaseMessage(resp)
		return 0, 0, merr
	}
	free, total = bytesize.Size(resp.Free), bytesize.Size(resp.Total)
	protocol.ReleaseMessage(resp)
	return free, total, nil
}

// GetDeviceProperties implements cuda.API (pass-through, but cached so
// the wrapper's own pitch lookups are free after the first call).
func (m *Module) GetDeviceProperties() (gpu.Properties, error) {
	return m.deviceProps()
}

// Memcpy implements cuda.API (pass-through; not in Table II).
func (m *Module) Memcpy(devPtr cuda.DevPtr, size bytesize.Size, kind cuda.MemcpyKind) error {
	return m.inner.Memcpy(devPtr, size, kind)
}

// LaunchKernel implements cuda.API (pass-through; not in Table II).
func (m *Module) LaunchKernel(k cuda.Kernel, stream int) error {
	return m.inner.LaunchKernel(k, stream)
}

// DeviceSynchronize implements cuda.API (pass-through; not in Table II).
func (m *Module) DeviceSynchronize() error {
	return m.inner.DeviceSynchronize()
}

// UnregisterFatBinary implements cuda.API (intercepted): after the real
// teardown, the scheduler is told the process exited so it releases all
// memory the process still held — programs that never free are cleaned
// up here (paper §III-D).
func (m *Module) UnregisterFatBinary() error {
	m.mu.Lock()
	if m.exited {
		m.mu.Unlock()
		return nil
	}
	m.exited = true
	m.mu.Unlock()
	// Drain async reports first: the exit message must not overtake a
	// free still in flight.
	m.reports.Wait()
	m.mu.Lock()
	m.allocs = make(map[cuda.DevPtr]bytesize.Size)
	m.mu.Unlock()
	err := m.inner.UnregisterFatBinary()
	if resp, serr := m.sched.Call(m.ctx, &protocol.Message{
		Type: protocol.TypeProcExit, PID: m.pid,
	}); serr != nil {
		if err == nil {
			err = fmt.Errorf("wrapper: report procexit: %w", serr)
		}
	} else {
		protocol.ReleaseMessage(resp)
	}
	return err
}

// InterceptedAPIs lists the CUDA entry points the wrapper module covers,
// exactly the paper's Table II.
func InterceptedAPIs() []string {
	return []string{
		"cudaMalloc",
		"cudaMallocManaged",
		"cudaMallocPitch",
		"cudaMalloc3D",
		"cudaFree",
		"cudaMemGetInfo",
		"cudaGetDeviceProperties",
		"__cudaUnregisterFatBinary",
	}
}

var _ cuda.API = (*Module)(nil)
