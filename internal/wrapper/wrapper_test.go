package wrapper

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/core"
	"convgpu/internal/cuda"
	"convgpu/internal/errs"
	"convgpu/internal/gpu"
	"convgpu/internal/inproc"
	"convgpu/internal/protocol"
)

func mib(n int) bytesize.Size { return bytesize.Size(n) * bytesize.MiB }

// rig wires a wrapper to a real core via the in-process transport and a
// real simulated device, standing in for one container with one process.
type rig struct {
	dev  *gpu.Device
	st   *core.State
	hub  *inproc.Hub
	mod  *Module
	rt   *cuda.Runtime
	spy  *spyCaller
	id   core.ContainerID
	tHan *testing.T
}

// spyCaller records messages on their way to the scheduler.
type spyCaller struct {
	inner Caller
	mu    sync.Mutex
	sent  []protocol.Message
}

func (s *spyCaller) Call(ctx context.Context, m *protocol.Message) (*protocol.Message, error) {
	s.mu.Lock()
	s.sent = append(s.sent, *m)
	s.mu.Unlock()
	return s.inner.Call(ctx, m)
}

func (s *spyCaller) byType(t protocol.Type) []protocol.Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []protocol.Message
	for _, m := range s.sent {
		if m.Type == t {
			out = append(out, m)
		}
	}
	return out
}

func newRig(t *testing.T, limit bytesize.Size) *rig {
	t.Helper()
	dev := gpu.New(gpu.K20m())
	st := core.MustNew(core.Config{Capacity: 5 * bytesize.GiB})
	hub := inproc.NewHub(st)
	id := core.ContainerID("c1")
	if _, err := hub.Register(id, limit); err != nil {
		t.Fatal(err)
	}
	spy := &spyCaller{inner: hub.Caller(id)}
	rt := cuda.NewRuntime(dev, 100)
	mod := New(rt, spy, 100)
	return &rig{dev: dev, st: st, hub: hub, mod: mod, rt: rt, spy: spy, id: id, tHan: t}
}

func TestInterceptedAPIsMatchTableII(t *testing.T) {
	want := map[string]bool{
		"cudaMalloc":                true,
		"cudaMallocManaged":         true,
		"cudaMallocPitch":           true,
		"cudaMalloc3D":              true,
		"cudaFree":                  true,
		"cudaMemGetInfo":            true,
		"cudaGetDeviceProperties":   true,
		"__cudaUnregisterFatBinary": true,
	}
	got := InterceptedAPIs()
	if len(got) != len(want) {
		t.Fatalf("InterceptedAPIs() has %d entries, want %d (Table II)", len(got), len(want))
	}
	for _, api := range got {
		if !want[api] {
			t.Errorf("unexpected intercepted API %q", api)
		}
	}
}

func TestMallocAcceptedAndTracked(t *testing.T) {
	r := newRig(t, mib(1024))
	ptr, err := r.mod.Malloc(mib(100))
	if err != nil {
		t.Fatal(err)
	}
	// Device really allocated.
	if size, pid, ok := r.dev.Lookup(uint64(ptr)); !ok || size != mib(100) || pid != 100 {
		t.Fatalf("device Lookup = (%v,%v,%v)", size, pid, ok)
	}
	// Scheduler saw alloc + confirm with the same address.
	allocs := r.spy.byType(protocol.TypeAlloc)
	confirms := r.spy.byType(protocol.TypeConfirm)
	if len(allocs) != 1 || len(confirms) != 1 {
		t.Fatalf("messages: %d allocs, %d confirms", len(allocs), len(confirms))
	}
	if allocs[0].API != "cudaMalloc" || allocs[0].Size != int64(mib(100)) {
		t.Fatalf("alloc msg = %+v", allocs[0])
	}
	if confirms[0].Addr != uint64(ptr) {
		t.Fatalf("confirm addr = %#x, want %#x", confirms[0].Addr, ptr)
	}
	// Core usage includes the allocation + context overhead.
	info, err := r.st.Info(r.id)
	if err != nil {
		t.Fatal(err)
	}
	if info.Used != mib(100)+core.DefaultContextOverhead {
		t.Fatalf("core used = %v", info.Used)
	}
}

func TestMallocRejectedOverLimit(t *testing.T) {
	r := newRig(t, mib(128))
	// 128 + 66 overhead > 128 limit: scheduler rejects; user sees the
	// CUDA OOM error (tagged with the reject sentinel); nothing reaches
	// the device.
	_, err := r.mod.Malloc(mib(128))
	if !errors.Is(err, cuda.ErrorMemoryAllocation) {
		t.Fatalf("err = %v, want cudaErrorMemoryAllocation", err)
	}
	if !errors.Is(err, errs.ErrRejected) {
		t.Fatalf("err = %v, want errs.ErrRejected", err)
	}
	if r.dev.Used() != 0 {
		t.Fatalf("device used = %v after reject", r.dev.Used())
	}
	if len(r.spy.byType(protocol.TypeConfirm)) != 0 {
		t.Fatal("confirm sent for rejected alloc")
	}
}

func TestMallocInvalidSizeShortCircuits(t *testing.T) {
	r := newRig(t, mib(128))
	if _, err := r.mod.Malloc(0); err != cuda.ErrorInvalidValue {
		t.Fatalf("Malloc(0) err = %v", err)
	}
	if len(r.spy.sent) != 0 {
		t.Fatal("invalid size reached the scheduler")
	}
}

func TestMallocPitchAdjustsSize(t *testing.T) {
	r := newRig(t, mib(1024))
	ptr, pitch, err := r.mod.MallocPitch(100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if pitch != 512 {
		t.Fatalf("pitch = %v, want 512", pitch)
	}
	if ptr == 0 {
		t.Fatal("null pitched pointer")
	}
	allocs := r.spy.byType(protocol.TypeAlloc)
	if len(allocs) != 1 || allocs[0].Size != int64(512*1000) {
		t.Fatalf("accounted pitched size = %d, want %d", allocs[0].Size, 512*1000)
	}
}

func TestMallocManagedRoundsTo128MiB(t *testing.T) {
	r := newRig(t, mib(1024))
	if _, err := r.mod.MallocManaged(mib(1)); err != nil {
		t.Fatal(err)
	}
	allocs := r.spy.byType(protocol.TypeAlloc)
	if len(allocs) != 1 || allocs[0].Size != int64(mib(128)) {
		t.Fatalf("accounted managed size = %d, want 128MiB", allocs[0].Size)
	}
}

func TestMalloc3DAccountsPitchedRows(t *testing.T) {
	r := newRig(t, mib(1024))
	pp, err := r.mod.Malloc3D(cuda.Extent{Width: 100, Height: 10, Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if pp.Pitch != 512 {
		t.Fatalf("pitch = %v", pp.Pitch)
	}
	allocs := r.spy.byType(protocol.TypeAlloc)
	if allocs[0].Size != int64(512*40) {
		t.Fatalf("accounted 3D size = %d, want %d", allocs[0].Size, 512*40)
	}
}

func TestFirstPitchCallFetchesProperties(t *testing.T) {
	r := newRig(t, mib(1024))
	// Count properties fetches indirectly: wrap the runtime with a
	// counting API.
	counter := &countingAPI{API: r.rt}
	mod := New(counter, r.spy.inner, 100)
	if _, _, err := mod.MallocPitch(100, 10); err != nil {
		t.Fatal(err)
	}
	if counter.props != 1 {
		t.Fatalf("first pitch fetched properties %d times, want 1", counter.props)
	}
	if _, _, err := mod.MallocPitch(100, 10); err != nil {
		t.Fatal(err)
	}
	if counter.props != 1 {
		t.Fatalf("second pitch re-fetched properties (%d total)", counter.props)
	}
}

type countingAPI struct {
	cuda.API
	props int
}

func (c *countingAPI) GetDeviceProperties() (gpu.Properties, error) {
	c.props++
	return c.API.GetDeviceProperties()
}

func TestFreeReportsToScheduler(t *testing.T) {
	r := newRig(t, mib(1024))
	ptr, err := r.mod.Malloc(mib(50))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.mod.Free(ptr); err != nil {
		t.Fatal(err)
	}
	r.mod.Flush() // free reports are fire-and-forget; settle first
	frees := r.spy.byType(protocol.TypeFree)
	if len(frees) != 1 || frees[0].Addr != uint64(ptr) {
		t.Fatalf("free messages = %+v", frees)
	}
	info, _ := r.st.Info(r.id)
	if info.Used != core.DefaultContextOverhead {
		t.Fatalf("core used after free = %v, want just the context overhead", info.Used)
	}
	// Freeing a bogus pointer fails locally and is not reported.
	if err := r.mod.Free(ptr); err != cuda.ErrorInvalidDevicePointer {
		t.Fatalf("double free err = %v", err)
	}
	if len(r.spy.byType(protocol.TypeFree)) != 1 {
		t.Fatal("failed free was reported to the scheduler")
	}
}

func TestMemGetInfoVirtualizedAndDeviceFree(t *testing.T) {
	r := newRig(t, mib(1024))
	free, total, err := r.mod.MemGetInfo()
	if err != nil {
		t.Fatal(err)
	}
	if total != mib(1024) || free != mib(1024) {
		t.Fatalf("MemGetInfo = (%v,%v), want the container's 1 GiB view", free, total)
	}
	if _, err := r.mod.Malloc(mib(100)); err != nil {
		t.Fatal(err)
	}
	free, total, _ = r.mod.MemGetInfo()
	if total != mib(1024) || free != mib(1024)-mib(100)-core.DefaultContextOverhead {
		t.Fatalf("MemGetInfo after alloc = (%v,%v)", free, total)
	}
	// The raw device view is different — the wrapper hides it.
	devFree, devTotal := r.dev.MemInfo()
	if devTotal == total {
		t.Fatalf("device total %v leaked through the wrapper", devTotal)
	}
	_ = devFree
}

func TestUnregisterFatBinaryCleansUp(t *testing.T) {
	r := newRig(t, mib(1024))
	if _, err := r.mod.Malloc(mib(200)); err != nil {
		t.Fatal(err) // leaked deliberately
	}
	if err := r.mod.UnregisterFatBinary(); err != nil {
		t.Fatal(err)
	}
	if r.dev.Used() != 0 {
		t.Fatalf("device used = %v after unregister", r.dev.Used())
	}
	info, _ := r.st.Info(r.id)
	if info.Used != 0 {
		t.Fatalf("core used = %v after unregister", info.Used)
	}
	// Idempotent.
	if err := r.mod.UnregisterFatBinary(); err != nil {
		t.Fatal(err)
	}
	if n := len(r.spy.byType(protocol.TypeProcExit)); n != 1 {
		t.Fatalf("procexit sent %d times, want 1", n)
	}
}

func TestPassThroughAPIs(t *testing.T) {
	r := newRig(t, mib(1024))
	ptr, err := r.mod.Malloc(mib(10))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.mod.Memcpy(ptr, mib(10), cuda.MemcpyHostToDevice); err != nil {
		t.Fatal(err)
	}
	if err := r.mod.LaunchKernel(cuda.Kernel{Name: "k", Duration: 0}, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.mod.DeviceSynchronize(); err != nil {
		t.Fatal(err)
	}
	// None of those touched the scheduler.
	for _, typ := range []protocol.Type{protocol.TypeAlloc, protocol.TypeConfirm} {
		if n := len(r.spy.byType(typ)); n != 1 {
			t.Fatalf("%s count = %d, want only the Malloc's", typ, n)
		}
	}
}

func TestAbortOnDeviceFailure(t *testing.T) {
	// The scheduler accepts (capacity 5 GiB) but the device is
	// artificially small: the real allocation fails, and the wrapper
	// hands the charge back via abort.
	dev := gpu.New(gpu.Properties{
		Name: "tiny", TotalGlobalMem: mib(100),
		TexturePitchAlignment: 512, ManagedGranularity: mib(128),
		ConcurrentKernels: 32, ContextOverhead: mib(1),
	})
	st := core.MustNew(core.Config{Capacity: 5 * bytesize.GiB, ContextOverhead: 1})
	hub := inproc.NewHub(st)
	if _, err := hub.Register("c1", bytesize.GiB); err != nil {
		t.Fatal(err)
	}
	mod := New(cuda.NewRuntime(dev, 7), hub.Caller("c1"), 7)
	if _, err := mod.Malloc(mib(500)); err != cuda.ErrorMemoryAllocation {
		t.Fatalf("err = %v, want cudaErrorMemoryAllocation from the device", err)
	}
	info, _ := st.Info("c1")
	if info.Used != 1 { // only the overhead byte stayed charged
		t.Fatalf("core used after aborted alloc = %v", info.Used)
	}
}

func TestSuspensionBlocksMallocUntilResume(t *testing.T) {
	dev := gpu.New(gpu.K20m())
	st := core.MustNew(core.Config{Capacity: mib(1000), ContextOverhead: 1})
	hub := inproc.NewHub(st)
	if _, err := hub.Register("big", mib(700)); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Register("small", mib(600)); err != nil {
		t.Fatal(err)
	}
	modBig := New(cuda.NewRuntime(dev, 1), hub.Caller("big"), 1)
	modSmall := New(cuda.NewRuntime(dev, 2), hub.Caller("small"), 2)
	if _, err := modBig.Malloc(mib(600)); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		_, err := modSmall.Malloc(mib(500)) // grant 300: suspends
		got <- err
	}()
	select {
	case err := <-got:
		t.Fatalf("suspended Malloc returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if _, err := hub.Close("big"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("resumed Malloc failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Malloc never resumed")
	}
	info, _ := st.Info("small")
	if info.Used != mib(500)+1 {
		t.Fatalf("small used = %v", info.Used)
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
