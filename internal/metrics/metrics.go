// Package metrics provides the statistics and table rendering the
// experiment harness uses to report results in the shape of the paper's
// tables (Table IV/V: algorithm rows x container-count columns) and
// figures.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Summary describes a sample of measurements.
type Summary struct {
	N        int
	Mean     float64
	Std      float64 // sample standard deviation
	StdErr   float64
	Min, Max float64
}

// Summarize computes summary statistics. An empty sample yields zeros.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
		s.StdErr = s.Std / math.Sqrt(float64(s.N))
	}
	return s
}

// Mean is the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 { return Summarize(xs).Mean }

// MeanDuration averages durations.
func MeanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// Seconds converts durations to float seconds for summarizing.
func Seconds(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Seconds()
	}
	return out
}

// Table is a labelled grid of numbers, rendered like the paper's tables.
type Table struct {
	// Title is printed above the table.
	Title string
	// ColHeader labels the column dimension (e.g. "Number of Containers").
	ColHeader string
	// Cols are the column labels (e.g. "4", "6", ... "38").
	Cols []string
	// Rows hold one labelled series each (e.g. "FIFO (sec)").
	Rows []Row
}

// Row is one labelled series.
type Row struct {
	Label string
	Cells []float64
}

// AddRow appends a series; the cell count should match Cols.
func (t *Table) AddRow(label string, cells []float64) {
	t.Rows = append(t.Rows, Row{Label: label, Cells: cells})
}

// Render writes an aligned text table.
func (t *Table) Render(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	if t.ColHeader != "" {
		if _, err := fmt.Fprintf(w, "  (%s)\n", t.ColHeader); err != nil {
			return err
		}
	}
	labelW := 0
	for _, r := range t.Rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	colW := make([]int, len(t.Cols))
	cells := make([][]string, len(t.Rows))
	for i, r := range t.Rows {
		cells[i] = make([]string, len(r.Cells))
		for j, v := range r.Cells {
			cells[i][j] = formatCell(v)
		}
	}
	for j, c := range t.Cols {
		colW[j] = len(c)
		for i := range cells {
			if j < len(cells[i]) && len(cells[i][j]) > colW[j] {
				colW[j] = len(cells[i][j])
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s", labelW, "")
	for j, c := range t.Cols {
		fmt.Fprintf(&b, "  %*s", colW[j], c)
	}
	b.WriteByte('\n')
	for i, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", labelW, r.Label)
		for j := range t.Cols {
			cell := ""
			if j < len(cells[i]) {
				cell = cells[i][j]
			}
			fmt.Fprintf(&b, "  %*s", colW[j], cell)
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values with a header row.
func (t *Table) CSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("series")
	for _, c := range t.Cols {
		b.WriteByte(',')
		b.WriteString(c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(r.Label)
		for j := range t.Cols {
			b.WriteByte(',')
			if j < len(r.Cells) {
				b.WriteString(formatCell(r.Cells[j]))
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func formatCell(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v != math.Trunc(v) || math.Abs(v) < 1000:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// Bar renders a simple horizontal ASCII bar chart for figure-style
// output (Fig. 4/5/6 are bar charts in the paper).
type Bar struct {
	Title string
	Unit  string
	Items []BarItem
	// Width is the maximum bar width in characters (default 50).
	Width int
}

// BarItem is one bar.
type BarItem struct {
	Label string
	Value float64
}

// Add appends a bar.
func (b *Bar) Add(label string, v float64) {
	b.Items = append(b.Items, BarItem{label, v})
}

// Render writes the chart.
func (b *Bar) Render(w io.Writer) error {
	width := b.Width
	if width <= 0 {
		width = 50
	}
	if b.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", b.Title); err != nil {
			return err
		}
	}
	labelW, max := 0, 0.0
	for _, it := range b.Items {
		if len(it.Label) > labelW {
			labelW = len(it.Label)
		}
		if it.Value > max {
			max = it.Value
		}
	}
	for _, it := range b.Items {
		n := 0
		if max > 0 {
			n = int(math.Round(it.Value / max * float64(width)))
		}
		if _, err := fmt.Fprintf(w, "%-*s | %s %.4g %s\n", labelW, it.Label, strings.Repeat("#", n), it.Value, b.Unit); err != nil {
			return err
		}
	}
	return nil
}

// Percentile returns the p-quantile (0..1) of xs by linear
// interpolation; xs need not be sorted.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[len(s)-1]
	}
	pos := p * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}
