package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || !almost(s.Mean, 5) {
		t.Fatalf("summary = %+v", s)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	// Sample std of this classic dataset is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); !almost(s.Std, want) {
		t.Fatalf("std = %v, want %v", s.Std, want)
	}
	if want := math.Sqrt(32.0/7.0) / math.Sqrt(8); !almost(s.StdErr, want) {
		t.Fatalf("stderr = %v, want %v", s.StdErr, want)
	}
}

func TestSummarizeEdge(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	if s := Summarize([]float64{3}); s.N != 1 || s.Mean != 3 || s.Std != 0 {
		t.Fatalf("singleton summary = %+v", s)
	}
}

func TestMeanDuration(t *testing.T) {
	if MeanDuration(nil) != 0 {
		t.Fatal("empty MeanDuration != 0")
	}
	got := MeanDuration([]time.Duration{time.Second, 3 * time.Second})
	if got != 2*time.Second {
		t.Fatalf("MeanDuration = %v", got)
	}
}

func TestSeconds(t *testing.T) {
	got := Seconds([]time.Duration{1500 * time.Millisecond})
	if len(got) != 1 || !almost(got[0], 1.5) {
		t.Fatalf("Seconds = %v", got)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "T", ColHeader: "N", Cols: []string{"4", "6"}}
	tab.AddRow("FIFO (sec)", []float64{67.6, 134.1})
	tab.AddRow("BF (sec)", []float64{68.2, 134.0})
	var b strings.Builder
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"T\n", "FIFO (sec)", "BF (sec)", "67.6", "134.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Cols: []string{"4", "6"}}
	tab.AddRow("FIFO", []float64{1, 2})
	var b strings.Builder
	if err := tab.CSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "series,4,6" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "FIFO,1.0,2.0" {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestTableRaggedRows(t *testing.T) {
	tab := &Table{Cols: []string{"a", "b", "c"}}
	tab.AddRow("short", []float64{1})
	var b strings.Builder
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	if err := tab.CSV(&b); err != nil {
		t.Fatal(err)
	}
}

func TestBarRender(t *testing.T) {
	bar := &Bar{Title: "Fig", Unit: "ms", Width: 10}
	bar.Add("with", 0.082)
	bar.Add("without", 0.035)
	var b strings.Builder
	if err := bar.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "with") || !strings.Contains(out, "0.082 ms") {
		t.Fatalf("bar output:\n%s", out)
	}
	// The larger value gets the full width.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if !strings.Contains(lines[1], strings.Repeat("#", 10)) {
		t.Fatalf("max bar not full width:\n%s", out)
	}
}

func TestBarEmptyAndZero(t *testing.T) {
	bar := &Bar{}
	var b strings.Builder
	if err := bar.Render(&b); err != nil {
		t.Fatal(err)
	}
	bar.Add("zero", 0)
	if err := bar.Render(&b); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5}, {-1, 1}, {2, 4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile != 0")
	}
}
