package sim

import (
	"testing"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/core"
	"convgpu/internal/workload"
)

func singleTrace(typeName string) []workload.TraceEntry {
	ct, err := workload.TypeByName(typeName)
	if err != nil {
		panic(err)
	}
	return []workload.TraceEntry{{Seq: 0, Type: ct, Arrival: 0}}
}

func TestRunSingleContainer(t *testing.T) {
	res, err := Run(singleTrace("nano"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Containers) != 1 || !res.Containers[0].Completed {
		t.Fatalf("result = %+v", res)
	}
	// nano: 100ms startup + 5s kernel + 2 copies of 62 MiB at 6 GiB/s
	// (~20 ms). FinishTime a touch above 5.1s.
	if res.FinishTime < 5*time.Second || res.FinishTime > 6*time.Second {
		t.Fatalf("FinishTime = %v, want ~5.1s", res.FinishTime)
	}
	if res.AvgSuspended != 0 || res.SuspendedCount != 0 {
		t.Fatalf("uncontended run had suspensions: %+v", res)
	}
	if res.Stalled {
		t.Fatal("single container stalled")
	}
}

func TestRunUncontendedManySmall(t *testing.T) {
	// Ten nanos spaced 5s apart never contend on a 5 GiB GPU: no
	// suspensions; finish = last arrival + runtime.
	trace := make([]workload.TraceEntry, 10)
	ct, _ := workload.TypeByName("nano")
	for i := range trace {
		trace[i] = workload.TraceEntry{Seq: i, Type: ct, Arrival: time.Duration(i) * 5 * time.Second}
	}
	res, err := Run(trace, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SuspendedCount != 0 {
		t.Fatalf("suspensions on uncontended run: %d", res.SuspendedCount)
	}
	if res.FinishTime < 50*time.Second {
		t.Fatalf("FinishTime = %v, want > last arrival at 45s + 5s run", res.FinishTime)
	}
}

func TestRunContentionSuspends(t *testing.T) {
	// Two xlarge (4096 MiB) on a 5 GiB GPU arriving together: the second
	// must wait for the first to finish.
	ct, _ := workload.TypeByName("xlarge")
	trace := []workload.TraceEntry{
		{Seq: 0, Type: ct, Arrival: 0},
		{Seq: 1, Type: ct, Arrival: time.Second},
	}
	res, err := Run(trace, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SuspendedCount != 1 {
		t.Fatalf("SuspendedCount = %d, want 1", res.SuspendedCount)
	}
	second := res.Containers[1]
	if !second.Completed {
		t.Fatal("second container never completed")
	}
	// First runs ~45s+copies; second waits roughly that minus 1s arrival
	// offset and its own startup.
	if second.Suspended < 40*time.Second {
		t.Fatalf("second suspended %v, want ~44s", second.Suspended)
	}
	// Serial execution: finish beyond 90s.
	if res.FinishTime < 90*time.Second {
		t.Fatalf("FinishTime = %v, want ~92s", res.FinishTime)
	}
	if res.Stalled {
		t.Fatal("run stalled")
	}
}

func TestRunAllAlgorithmsOnHeavyTrace(t *testing.T) {
	trace := workload.GenerateTrace(30, workload.DefaultSpacing, 99)
	for _, alg := range core.AlgorithmNames() {
		res, err := Run(trace, Config{Algorithm: alg, AlgSeed: 1})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.Stalled {
			t.Logf("%s: run stalled (pathological partial grants)", alg)
			continue
		}
		for i, c := range res.Containers {
			if !c.Completed {
				t.Errorf("%s: container %d never completed", alg, i)
			}
		}
		if res.FinishTime <= 0 {
			t.Errorf("%s: FinishTime = %v", alg, res.FinishTime)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	trace := workload.GenerateTrace(20, workload.DefaultSpacing, 7)
	a, err := Run(trace, Config{Algorithm: "random", AlgSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(trace, Config{Algorithm: "random", AlgSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.FinishTime != b.FinishTime || a.AvgSuspended != b.AvgSuspended {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestRunBadAlgorithm(t *testing.T) {
	if _, err := Run(singleTrace("nano"), Config{Algorithm: "lru"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestRunRejectsOversizedType(t *testing.T) {
	ct := workload.ContainerType{Index: 0, Name: "huge", GPUMemory: 6 * bytesize.GiB}
	_, err := Run([]workload.TraceEntry{{Type: ct}}, Config{})
	if err == nil {
		t.Fatal("oversized container type accepted")
	}
}

func TestSweepSmall(t *testing.T) {
	s := DefaultSweep()
	s.Counts = []int{4, 8}
	s.Reps = 2
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range s.Algorithms {
		for _, n := range s.Counts {
			cell, ok := res.Cells[alg][n]
			if !ok {
				t.Fatalf("missing cell %s/%d", alg, n)
			}
			if cell.FinishTime <= 0 {
				t.Errorf("cell %s/%d FinishTime = %v", alg, n, cell.FinishTime)
			}
		}
	}
	// More containers take longer for every algorithm.
	for _, alg := range s.Algorithms {
		if res.Cells[alg][8].FinishTime <= res.Cells[alg][4].FinishTime {
			t.Errorf("%s: 8 containers (%v) not slower than 4 (%v)",
				alg, res.Cells[alg][8].FinishTime, res.Cells[alg][4].FinishTime)
		}
	}
	// Tables render with the right shape.
	ft := res.FinishTable()
	if len(ft.Cols) != 2 || len(ft.Rows) != 4 {
		t.Fatalf("finish table shape = %dx%d", len(ft.Rows), len(ft.Cols))
	}
	st := res.SuspendTable()
	if len(st.Cols) != 2 || len(st.Rows) != 4 {
		t.Fatalf("suspend table shape = %dx%d", len(st.Rows), len(st.Cols))
	}
}

func TestSuspendedTimeGrowsWithLoad(t *testing.T) {
	s := Sweep{Counts: []int{6, 30}, Algorithms: []string{"fifo"}, Reps: 3, BaseSeed: 1, Spacing: workload.DefaultSpacing}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	lo := res.Cells["fifo"][6].AvgSuspended
	hi := res.Cells["fifo"][30].AvgSuspended
	if hi <= lo {
		t.Fatalf("suspension at 30 containers (%v) not above 6 (%v)", hi, lo)
	}
}
