package sim

import (
	"testing"

	"convgpu/internal/bytesize"
	"convgpu/internal/clock"
	"convgpu/internal/core"
	"convgpu/internal/model"
	"convgpu/internal/workload"
)

// TestSimulationHistoryStructurallySafe replays a contended Table III
// trace under every algorithm with the structural history checker
// attached: whatever schedule the discrete-event loop produces, the
// core's event stream must respect conservation, ticket discipline and
// per-container FIFO, and must end fully drained — the simulator runs
// every container to completion.
func TestSimulationHistoryStructurallySafe(t *testing.T) {
	const capacity = 5 * bytesize.GiB
	trace := workload.GenerateTrace(24, workload.DefaultSpacing/4, 7)
	for _, algName := range core.AlgorithmNames() {
		algName := algName
		t.Run(algName, func(t *testing.T) {
			alg, err := core.NewAlgorithm(algName, 11)
			if err != nil {
				t.Fatal(err)
			}
			clk := clock.NewManual()
			st, err := core.New(core.Config{Capacity: capacity, Algorithm: alg, Clock: clk})
			if err != nil {
				t.Fatal(err)
			}
			hist := &model.History{}
			st.SetObserver(hist.Observer())
			res, err := RunWith(trace, st, clk, Config{Capacity: capacity, Algorithm: algName})
			if err != nil {
				t.Fatal(err)
			}
			if res.Stalled {
				t.Fatal("run stalled")
			}
			if res.SuspendedCount == 0 {
				t.Fatal("trace produced no suspensions; the history check is vacuous")
			}
			if hist.Len() == 0 {
				t.Fatal("observer captured no events")
			}
			if err := hist.CheckDrained(func(int) bytesize.Size { return capacity }); err != nil {
				t.Fatalf("simulation history violates structural invariants: %v", err)
			}
		})
	}
}
