// Package sim is the discrete-event simulator that replays the paper's
// multi-container scheduling experiments (Section IV-C, Figures 7/8,
// Tables IV/V) against the real scheduler core in virtual time.
//
// The paper ran each configuration on hardware: containers arriving
// every five seconds, each running the sample program (allocate the
// type's maximum GPU memory, copy in, complement kernel, copy out) for
// 5–45 s, with 4–38 containers per run, four algorithms, six
// repetitions. That is hours of wall clock; here the identical event
// sequence — arrivals, allocation requests, suspensions, admissions,
// completions, close signals — executes against core.State with a
// virtual clock, so a full sweep runs in milliseconds while exercising
// the same scheduling decisions.
package sim

import (
	"container/heap"
	"context"
	"fmt"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/clock"
	"convgpu/internal/core"
	"convgpu/internal/metrics"
	"convgpu/internal/workload"
)

// Config parameterizes one simulated run.
type Config struct {
	// Capacity is the schedulable GPU memory (default: the K20m's 5 GiB).
	// For RunWith over a multi-device backend it is only the utilization
	// denominator and should be set to the aggregate capacity.
	Capacity bytesize.Size
	// Algorithm names the redistribution algorithm (default "fifo").
	Algorithm string
	// WakeFactory, when non-nil, resolves Algorithm instead of
	// core.NewAlgorithm — the hook that lets a sweep run registry-only
	// wake policies (fairshare, quota, priority) the core does not know
	// by name. It is called with the algorithm name and the run's seed.
	WakeFactory func(name string, seed int64) (core.Algorithm, error)
	// AlgSeed seeds the Random algorithm.
	AlgSeed int64
	// PCIeBandwidth models host<->device copy speed for the sample
	// program's two transfers (default 6 GiB/s, the K20m testbed).
	PCIeBandwidth int64
	// ContextOverhead is the per-process charge (default 66 MiB).
	ContextOverhead bytesize.Size
	// StartupDelay is the time between container start and its first
	// allocation call (CUDA init); default 100 ms.
	StartupDelay time.Duration
	// PersistentGrants selects the non-reclaiming grant semantics
	// (core.Config.PersistentGrants) for the ablation benches.
	PersistentGrants bool
	// FaultTolerant enables the rescue pass of the authors' prior
	// study [10] (core.Config.FaultTolerant).
	FaultTolerant bool
}

func (c Config) withDefaults() Config {
	if c.Capacity == 0 {
		c.Capacity = 5 * bytesize.GiB
	}
	if c.Algorithm == "" {
		c.Algorithm = core.AlgFIFO
	}
	if c.PCIeBandwidth == 0 {
		c.PCIeBandwidth = 6 << 30
	}
	if c.ContextOverhead == 0 {
		c.ContextOverhead = core.DefaultContextOverhead
	}
	if c.StartupDelay == 0 {
		c.StartupDelay = 100 * time.Millisecond
	}
	return c
}

// ContainerResult describes one container's simulated life.
type ContainerResult struct {
	ID        core.ContainerID
	Type      string
	Arrival   time.Duration // offset from run start
	Finished  time.Duration // offset from run start; 0 if never finished
	Suspended time.Duration // total time its allocation was paused
	Completed bool
}

// Result describes one simulated run.
type Result struct {
	// FinishTime is when the last container completed, from run start —
	// the paper's "finished time of all containers".
	FinishTime time.Duration
	// AvgSuspended averages suspension across all containers (including
	// never-suspended ones), the paper's Fig. 8 metric.
	AvgSuspended time.Duration
	// MaxSuspended is the worst per-container suspension.
	MaxSuspended time.Duration
	// SuspendedCount is how many containers were ever suspended.
	SuspendedCount int
	// AvgUtilization is the time-averaged fraction of schedulable GPU
	// memory in use over the run — the quantity behind the paper's
	// explanation that Best-Fit wins because it "maximizes the GPU
	// memory throughput".
	AvgUtilization float64
	// Stalled reports that the run wedged: suspended containers remained
	// with no event able to release them (the deadlock the unmanaged
	// system risks; with the paper's algorithms it indicates pathological
	// partial grants).
	Stalled bool
	// Containers holds per-container detail in arrival order.
	Containers []ContainerResult
	// SuspendedByType averages suspension per Table III type — the
	// starvation profile: which sizes wait under a given algorithm.
	SuspendedByType map[string]time.Duration
}

type eventKind int

const (
	evArrive eventKind = iota
	evAllocate
	evFinish
)

type event struct {
	at   time.Time
	seq  int // FIFO tie-break
	kind eventKind
	idx  int // container index in the trace
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

type simContainer struct {
	id       core.ContainerID
	entry    workload.TraceEntry
	ticket   core.Ticket
	waiting  bool
	finished bool
	result   ContainerResult
}

// Backend is the scheduler surface the simulator drives. core.State
// implements it directly; the multi-GPU and cluster extensions adapt
// their schedulers to it so the same event loop replays their sweeps.
type Backend interface {
	Register(id core.ContainerID, limit bytesize.Size) (bytesize.Size, error)
	RequestAlloc(id core.ContainerID, pid int, size bytesize.Size) (core.AllocResult, error)
	ConfirmAlloc(id core.ContainerID, pid int, addr uint64, size bytesize.Size) error
	ProcessExit(id core.ContainerID, pid int) (bytesize.Size, core.Update, error)
	Close(id core.ContainerID) (bytesize.Size, core.Update, error)
	Info(id core.ContainerID) (core.ContainerInfo, error)
	TotalUsed() bytesize.Size
	CheckInvariants() error
}

// Run replays a trace against a fresh single-GPU scheduler.
func Run(trace []workload.TraceEntry, cfg Config) (Result, error) {
	return RunContext(context.Background(), trace, cfg)
}

// RunContext is Run with cancellation: the context is checked between
// simulated events, so a caller's deadline bounds even a pathological
// run (virtual time never blocks, but huge traces still cost real CPU).
func RunContext(ctx context.Context, trace []workload.TraceEntry, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	newAlg := cfg.WakeFactory
	if newAlg == nil {
		newAlg = core.NewAlgorithm
	}
	alg, err := newAlg(cfg.Algorithm, cfg.AlgSeed)
	if err != nil {
		return Result{}, err
	}
	clk := clock.NewManual()
	st, err := core.New(core.Config{
		Capacity:         cfg.Capacity,
		ContextOverhead:  cfg.ContextOverhead,
		Algorithm:        alg,
		Clock:            clk,
		PersistentGrants: cfg.PersistentGrants,
		FaultTolerant:    cfg.FaultTolerant,
	})
	if err != nil {
		return Result{}, err
	}
	return RunWithContext(ctx, trace, st, clk, cfg)
}

// RunWith replays a trace against an existing backend whose schedulers
// share the given manual clock.
func RunWith(trace []workload.TraceEntry, st Backend, clk *clock.Manual, cfg Config) (Result, error) {
	return RunWithContext(context.Background(), trace, st, clk, cfg)
}

// RunWithContext is RunWith with cancellation, checked between events.
func RunWithContext(ctx context.Context, trace []workload.TraceEntry, st Backend, clk *clock.Manual, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	start := clk.Now()
	containers := make([]*simContainer, len(trace))
	// Suspended containers are keyed by id: tickets are only unique per
	// core.State, and multi-GPU/cluster backends hold several.
	byID := make(map[core.ContainerID]int)
	var events eventHeap
	seq := 0
	push := func(at time.Time, kind eventKind, idx int) {
		seq++
		heap.Push(&events, event{at: at, seq: seq, kind: kind, idx: idx})
	}
	for i, e := range trace {
		containers[i] = &simContainer{
			id:    core.ContainerID(fmt.Sprintf("c%03d-%s", i, e.Type.Name)),
			entry: e,
			result: ContainerResult{
				Type:    e.Type.Name,
				Arrival: e.Arrival,
			},
		}
		containers[i].result.ID = containers[i].id
		push(start.Add(e.Arrival), evArrive, i)
	}

	// runtime computes how long a container computes once its allocation
	// succeeded: the complement kernel plus two PCIe transfers.
	runtime := func(ct workload.ContainerType) time.Duration {
		copies := 2 * time.Duration(int64(ct.AllocSize())*int64(time.Second)/cfg.PCIeBandwidth)
		return ct.SampleDuration() + copies
	}

	var nextAddr uint64 = 0x1000
	admit := func(u core.Update) {
		now := clk.Now()
		for _, a := range u.Admitted {
			idx, ok := byID[a.Container]
			if !ok || containers[idx].ticket != a.Ticket {
				continue
			}
			delete(byID, a.Container)
			sc := containers[idx]
			sc.waiting = false
			// The wrapper performs the real allocation and confirms.
			nextAddr += 0x10
			if err := st.ConfirmAlloc(sc.id, pidOf(idx), nextAddr, sc.entry.Type.AllocSize()); err != nil {
				panic(fmt.Sprintf("sim: confirm after admit: %v", err))
			}
			push(now.Add(runtime(sc.entry.Type)), evFinish, idx)
		}
		for _, c := range u.Cancelled {
			if idx, ok := byID[c.Container]; ok && containers[idx].ticket == c.Ticket {
				delete(byID, c.Container)
			}
		}
	}

	// Utilization integral: Σ used(t) dt, sampled between events.
	var usedIntegral float64 // byte-seconds
	prevTime := start
	prevUsed := st.TotalUsed()

	for events.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return Result{}, fmt.Errorf("sim: cancelled at %v: %w", clk.Since(start), err)
		}
		e := heap.Pop(&events).(event)
		if dt := e.at.Sub(prevTime); dt > 0 {
			usedIntegral += float64(prevUsed) * dt.Seconds()
		}
		clk.AdvanceTo(e.at)
		sc := containers[e.idx]
		switch e.kind {
		case evArrive:
			// nvidia-docker registers the creation-time request, then the
			// container starts and, after CUDA init, allocates.
			if _, err := st.Register(sc.id, sc.entry.Type.GPUMemory); err != nil {
				return Result{}, fmt.Errorf("sim: register %s: %w", sc.id, err)
			}
			push(e.at.Add(cfg.StartupDelay), evAllocate, e.idx)
		case evAllocate:
			res, err := st.RequestAlloc(sc.id, pidOf(e.idx), sc.entry.Type.AllocSize())
			if err != nil {
				return Result{}, fmt.Errorf("sim: alloc %s: %w", sc.id, err)
			}
			switch res.Decision {
			case core.Accept:
				nextAddr += 0x10
				if err := st.ConfirmAlloc(sc.id, pidOf(e.idx), nextAddr, sc.entry.Type.AllocSize()); err != nil {
					return Result{}, err
				}
				push(e.at.Add(runtime(sc.entry.Type)), evFinish, e.idx)
			case core.Suspend:
				sc.ticket = res.Ticket
				sc.waiting = true
				byID[sc.id] = e.idx
			case core.Reject:
				return Result{}, fmt.Errorf("sim: %s rejected its own creation-time request", sc.id)
			}
		case evFinish:
			// The program exits (implicit __cudaUnregisterFatBinary
			// releases everything), then Docker unmounts the dummy volume
			// and the plugin closes the container.
			info, err := st.Info(sc.id)
			if err != nil {
				return Result{}, err
			}
			sc.result.Suspended = info.SuspendedTotal
			if _, u, err := st.ProcessExit(sc.id, pidOf(e.idx)); err != nil {
				return Result{}, err
			} else {
				admit(u)
			}
			if _, u, err := st.Close(sc.id); err != nil {
				return Result{}, err
			} else {
				admit(u)
			}
			sc.finished = true
			sc.result.Completed = true
			sc.result.Finished = clk.Since(start)
		}
		if err := st.CheckInvariants(); err != nil {
			return Result{}, fmt.Errorf("sim: after event at %v: %w", clk.Since(start), err)
		}
		prevTime = clk.Now()
		prevUsed = st.TotalUsed()
	}

	// Assemble the result.
	var res Result
	var suspended []time.Duration
	for _, sc := range containers {
		if !sc.finished {
			// Wedged container: capture its open suspension interval.
			if info, err := st.Info(sc.id); err == nil {
				sc.result.Suspended = info.SuspendedTotal
			}
			res.Stalled = true
		}
		if sc.result.Finished > res.FinishTime {
			res.FinishTime = sc.result.Finished
		}
		if sc.result.Suspended > res.MaxSuspended {
			res.MaxSuspended = sc.result.Suspended
		}
		if sc.result.Suspended > 0 {
			res.SuspendedCount++
		}
		suspended = append(suspended, sc.result.Suspended)
		res.Containers = append(res.Containers, sc.result)
	}
	res.AvgSuspended = metrics.MeanDuration(suspended)
	if span := clk.Since(start).Seconds(); span > 0 && cfg.Capacity > 0 {
		res.AvgUtilization = usedIntegral / (float64(cfg.Capacity) * span)
	}
	byType := map[string][]time.Duration{}
	for _, c := range res.Containers {
		byType[c.Type] = append(byType[c.Type], c.Suspended)
	}
	res.SuspendedByType = make(map[string]time.Duration, len(byType))
	for typ, ds := range byType {
		res.SuspendedByType[typ] = metrics.MeanDuration(ds)
	}
	return res, nil
}

// pidOf derives the (unique) simulated host pid of a container's single
// process.
func pidOf(idx int) int { return 10000 + idx }

// Sweep runs the paper's full Fig. 7/8 parameter sweep: for every
// container count and every algorithm, `reps` runs with distinct trace
// seeds (the same seed set across algorithms, as in the paper where all
// four algorithms face comparable random loads), averaging finish and
// suspension times.
type Sweep struct {
	// Counts are the container counts (paper: 4,6,...,38).
	Counts []int
	// Algorithms are algorithm names (paper: fifo, bestfit, recentuse,
	// random).
	Algorithms []string
	// Reps is the repetitions per cell (paper: 6).
	Reps int
	// BaseSeed derives per-rep trace seeds.
	BaseSeed int64
	// Spacing is the arrival spacing (paper: 5 s).
	Spacing time.Duration
	// Config is the per-run configuration (capacity etc.).
	Config Config
}

// DefaultSweep returns the paper's sweep dimensions.
func DefaultSweep() Sweep {
	var counts []int
	for n := 4; n <= 38; n += 2 {
		counts = append(counts, n)
	}
	return Sweep{
		Counts:     counts,
		Algorithms: core.AlgorithmNames(),
		Reps:       6,
		BaseSeed:   20170712,
		Spacing:    workload.DefaultSpacing,
	}
}

// Cell is one (algorithm, count) aggregate.
type Cell struct {
	Algorithm    string
	Count        int
	FinishTime   time.Duration // mean over reps
	AvgSuspended time.Duration // mean over reps
	Utilization  float64       // mean time-averaged memory utilization
	Stalls       int           // runs that wedged
}

// SweepResult holds all cells plus the dimensions for table building.
type SweepResult struct {
	Sweep Sweep
	Cells map[string]map[int]Cell // algorithm -> count -> cell
}

// Run executes the sweep.
func (s Sweep) Run() (*SweepResult, error) {
	if s.Reps <= 0 {
		s.Reps = 1
	}
	if s.Spacing == 0 {
		s.Spacing = workload.DefaultSpacing
	}
	out := &SweepResult{Sweep: s, Cells: make(map[string]map[int]Cell)}
	for _, alg := range s.Algorithms {
		out.Cells[alg] = make(map[int]Cell)
	}
	for _, n := range s.Counts {
		for rep := 0; rep < s.Reps; rep++ {
			seed := s.BaseSeed + int64(n)*1000 + int64(rep)
			trace := workload.GenerateTrace(n, s.Spacing, seed)
			for _, alg := range s.Algorithms {
				cfg := s.Config
				cfg.Algorithm = alg
				cfg.AlgSeed = seed
				r, err := Run(trace, cfg)
				if err != nil {
					return nil, fmt.Errorf("sim: n=%d rep=%d alg=%s: %w", n, rep, alg, err)
				}
				cell := out.Cells[alg][n]
				cell.Algorithm = alg
				cell.Count = n
				cell.FinishTime += r.FinishTime / time.Duration(s.Reps)
				cell.AvgSuspended += r.AvgSuspended / time.Duration(s.Reps)
				cell.Utilization += r.AvgUtilization / float64(s.Reps)
				if r.Stalled {
					cell.Stalls++
				}
				out.Cells[alg][n] = cell
			}
		}
	}
	return out, nil
}

// FinishTable renders the sweep as the paper's Table IV.
func (r *SweepResult) FinishTable() *metrics.Table {
	return r.table("Table IV: finished time of given number of containers (sec)", "sec", func(c Cell) float64 {
		return c.FinishTime.Seconds()
	})
}

// SuspendTable renders the sweep as the paper's Table V.
func (r *SweepResult) SuspendTable() *metrics.Table {
	return r.table("Table V: average suspended time of given number of containers (sec)", "sec", func(c Cell) float64 {
		return c.AvgSuspended.Seconds()
	})
}

// UtilizationTable renders the measured time-averaged memory
// utilization (%) — the quantity behind the paper's throughput
// explanation of Best-Fit's win.
func (r *SweepResult) UtilizationTable() *metrics.Table {
	return r.table("Measured GPU memory utilization (%), time-averaged per run", "%", func(c Cell) float64 {
		return c.Utilization * 100
	})
}

func (r *SweepResult) table(title, unit string, value func(Cell) float64) *metrics.Table {
	t := &metrics.Table{Title: title, ColHeader: "Number of Containers"}
	for _, n := range r.Sweep.Counts {
		t.Cols = append(t.Cols, fmt.Sprintf("%d", n))
	}
	labels := map[string]string{
		core.AlgFIFO:      "FIFO",
		core.AlgBestFit:   "BF",
		core.AlgRecentUse: "RU",
		core.AlgRandom:    "Rand",
	}
	for _, alg := range r.Sweep.Algorithms {
		var cells []float64
		for _, n := range r.Sweep.Counts {
			cells = append(cells, value(r.Cells[alg][n]))
		}
		label := labels[alg]
		if label == "" {
			label = alg
		}
		t.AddRow(fmt.Sprintf("%s (%s)", label, unit), cells)
	}
	return t
}
