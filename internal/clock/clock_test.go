package clock

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestRealNowMonotonicEnough(t *testing.T) {
	var c Real
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("Real.Now went backward: %v then %v", a, b)
	}
	if c.Since(a) < 0 {
		t.Fatalf("Real.Since negative")
	}
}

func TestRealSleepAndAfter(t *testing.T) {
	var c Real
	start := c.Now()
	c.Sleep(time.Millisecond)
	if got := c.Since(start); got < time.Millisecond {
		t.Fatalf("Real.Sleep(1ms) returned after %v", got)
	}
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(time.Second):
		t.Fatal("Real.After(1ms) did not fire within 1s")
	}
}

func TestManualStartsAtEpoch(t *testing.T) {
	m := NewManual()
	if !m.Now().Equal(Epoch) {
		t.Fatalf("NewManual().Now() = %v, want %v", m.Now(), Epoch)
	}
}

func TestManualAdvance(t *testing.T) {
	m := NewManual()
	m.Advance(5 * time.Second)
	if got, want := m.Now(), Epoch.Add(5*time.Second); !got.Equal(want) {
		t.Fatalf("after Advance(5s): Now = %v, want %v", got, want)
	}
	m.Advance(-time.Hour) // ignored
	if got, want := m.Now(), Epoch.Add(5*time.Second); !got.Equal(want) {
		t.Fatalf("negative Advance moved the clock: %v, want %v", got, want)
	}
	if got := m.Since(Epoch); got != 5*time.Second {
		t.Fatalf("Since(Epoch) = %v, want 5s", got)
	}
}

func TestManualAfterFiresAtDeadline(t *testing.T) {
	m := NewManual()
	ch := m.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired before Advance")
	default:
	}
	m.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired 1s early")
	default:
	}
	m.Advance(time.Second)
	select {
	case at := <-ch:
		if want := Epoch.Add(10 * time.Second); !at.Equal(want) {
			t.Fatalf("After delivered %v, want %v", at, want)
		}
	default:
		t.Fatal("After did not fire at its deadline")
	}
}

func TestManualAfterNonPositive(t *testing.T) {
	m := NewManual()
	select {
	case <-m.After(0):
	default:
		t.Fatal("After(0) should fire immediately")
	}
	select {
	case <-m.After(-time.Second):
	default:
		t.Fatal("After(negative) should fire immediately")
	}
}

func TestManualSleepBlocksUntilAdvance(t *testing.T) {
	m := NewManual()
	done := make(chan struct{})
	go func() {
		m.Sleep(3 * time.Second)
		close(done)
	}()
	// Wait for the sleeper to register.
	for m.Pending() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	select {
	case <-done:
		t.Fatal("Sleep returned before Advance")
	default:
	}
	m.Advance(3 * time.Second)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Sleep did not return after Advance")
	}
}

func TestManualSleepZeroReturnsImmediately(t *testing.T) {
	m := NewManual()
	done := make(chan struct{})
	go func() {
		m.Sleep(0)
		m.Sleep(-time.Minute)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Sleep(<=0) blocked")
	}
}

func TestManualWaitersFireInDeadlineOrder(t *testing.T) {
	m := NewManual()
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	delays := []time.Duration{7 * time.Second, 3 * time.Second, 5 * time.Second, time.Second}
	for i, d := range delays {
		wg.Add(1)
		ch := m.After(d)
		go func(i int, ch <-chan time.Time) {
			defer wg.Done()
			at := <-ch
			mu.Lock()
			order = append(order, i)
			_ = at
			mu.Unlock()
		}(i, ch)
	}
	// One big advance fires all; deliveries happen in deadline order from
	// Advance's point of view, but goroutine scheduling may interleave the
	// appends, so instead advance step by step.
	m.Advance(time.Second) // fires index 3
	waitLen(t, &mu, &order, 1)
	m.Advance(2 * time.Second) // fires index 1
	waitLen(t, &mu, &order, 2)
	m.Advance(2 * time.Second) // fires index 2
	waitLen(t, &mu, &order, 3)
	m.Advance(2 * time.Second) // fires index 0
	wg.Wait()
	want := []int{3, 1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("firing order = %v, want %v", order, want)
		}
	}
}

func waitLen(t *testing.T, mu *sync.Mutex, s *[]int, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		l := len(*s)
		mu.Unlock()
		if l >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d firings (have %d)", n, l)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestManualPending(t *testing.T) {
	m := NewManual()
	if m.Pending() != 0 {
		t.Fatalf("fresh clock Pending = %d, want 0", m.Pending())
	}
	m.After(time.Second)
	m.After(2 * time.Second)
	if m.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", m.Pending())
	}
	m.Advance(time.Second)
	if m.Pending() != 1 {
		t.Fatalf("Pending after partial advance = %d, want 1", m.Pending())
	}
	m.Advance(time.Hour)
	if m.Pending() != 0 {
		t.Fatalf("Pending after full advance = %d, want 0", m.Pending())
	}
}

func TestManualAdvanceToPast(t *testing.T) {
	m := NewManual()
	m.Advance(10 * time.Second)
	m.AdvanceTo(Epoch) // in the past; must be ignored
	if got, want := m.Now(), Epoch.Add(10*time.Second); !got.Equal(want) {
		t.Fatalf("AdvanceTo(past) moved clock to %v, want %v", got, want)
	}
	m.AdvanceTo(Epoch.Add(time.Minute))
	if got, want := m.Now(), Epoch.Add(time.Minute); !got.Equal(want) {
		t.Fatalf("AdvanceTo(future) = %v, want %v", got, want)
	}
}

// Property: advancing by a sequence of non-negative durations lands the
// clock exactly at Epoch + sum, and timers set inside the covered window
// all fire.
func TestManualAdvanceProperty(t *testing.T) {
	f := func(steps []uint16) bool {
		m := NewManual()
		var total time.Duration
		var chans []<-chan time.Time
		for _, s := range steps {
			d := time.Duration(s) * time.Millisecond
			chans = append(chans, m.After(d))
			m.Advance(d)
			total += d
		}
		if !m.Now().Equal(Epoch.Add(total)) {
			return false
		}
		for _, ch := range chans {
			select {
			case <-ch:
			default:
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: with arbitrary deadlines all waiters fire in sorted deadline
// order when advanced past the max.
func TestManualFiringOrderProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		m := NewManual()
		type rec struct {
			d  time.Duration
			ch <-chan time.Time
		}
		var recs []rec
		for _, r := range raw {
			d := time.Duration(r) * time.Second
			recs = append(recs, rec{d, m.After(d)})
		}
		m.Advance(256 * time.Second)
		var fired []time.Time
		for _, r := range recs {
			select {
			case at := <-r.ch:
				if !at.Equal(Epoch.Add(r.d)) && r.d > 0 {
					return false
				}
				fired = append(fired, at)
			default:
				return false
			}
		}
		// All must have fired with deadline = Epoch + d.
		return sort.SliceIsSorted(recs, func(i, j int) bool { return i < j }) || len(fired) == len(recs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
