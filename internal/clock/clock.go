// Package clock abstracts time for ConVGPU.
//
// The live daemon, the IPC layer and the examples run on the real clock.
// The experiment harness that regenerates the paper's Figure 7/8 sweeps
// (4–38 containers x 4 algorithms x 6 repetitions, several hundred
// simulated seconds each) runs on a manual clock advanced by the
// discrete-event simulator, so a ten-minute experiment replays in
// microseconds with identical event ordering.
package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is the time source used throughout ConVGPU.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks the calling goroutine for d.
	Sleep(d time.Duration)
	// After returns a channel that delivers the clock's time once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
	// Since returns the elapsed time from t to Now.
	Since(t time.Time) time.Duration
}

// Real is the wall clock. The zero value is ready to use.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock. Sub-millisecond waits are completed by
// spinning: the simulated GPU models microsecond-scale CUDA latencies
// (cudaMalloc ≈ 35 µs) that OS timers round up to milliseconds, which
// would erase the very overheads the Figure 4 experiment measures.
func (Real) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	if d > 2*time.Millisecond {
		time.Sleep(d - time.Millisecond)
	}
	for time.Now().Before(deadline) {
	}
}

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Since implements Clock.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

// Coarse is the wall clock with plain time.Sleep semantics: waits are
// handed to the OS timer and may round up to a few milliseconds. The
// load harness's wire path runs hundreds of concurrent containers whose
// service times all sleep at once; Real's sub-millisecond spin-wait
// would turn that fan-out into a CPU-bound stampede, while Coarse keeps
// the sleepers off the run queue. Use Real where microsecond fidelity
// matters (the Figure 4 latency rig), Coarse where only throughput does.
type Coarse struct{}

// Now implements Clock.
func (Coarse) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Coarse) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// After implements Clock.
func (Coarse) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Since implements Clock.
func (Coarse) Since(t time.Time) time.Duration { return time.Since(t) }

// Epoch is the instant a Manual clock starts at. A fixed epoch keeps
// simulated traces reproducible across runs and machines.
var Epoch = time.Date(2017, time.May, 10, 0, 0, 0, 0, time.UTC)

// Manual is a virtual clock driven explicitly by Advance. Sleepers and
// After channels fire when Advance moves the clock past their deadline,
// in deadline order. Manual is safe for concurrent use.
type Manual struct {
	mu      sync.Mutex
	now     time.Time
	waiters waiterHeap
	seq     uint64
}

// NewManual returns a virtual clock positioned at Epoch.
func NewManual() *Manual {
	return &Manual{now: Epoch}
}

type waiter struct {
	at  time.Time
	seq uint64 // FIFO tie-break for equal deadlines
	ch  chan time.Time
}

type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h waiterHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x interface{}) { *h = append(*h, x.(*waiter)) }
func (h *waiterHeap) Pop() interface{} {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}

// Now implements Clock.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Since implements Clock.
func (m *Manual) Since(t time.Time) time.Duration {
	return m.Now().Sub(t)
}

// After implements Clock. The returned channel has capacity one, so the
// firing Advance never blocks.
func (m *Manual) After(d time.Duration) <-chan time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- m.now
		return ch
	}
	m.seq++
	heap.Push(&m.waiters, &waiter{at: m.now.Add(d), seq: m.seq, ch: ch})
	return ch
}

// Sleep implements Clock. It blocks until another goroutine advances the
// clock past the deadline. Sleeping with d <= 0 returns immediately.
func (m *Manual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-m.After(d)
}

// Advance moves the clock forward by d, firing every waiter whose deadline
// is reached, in deadline order. Negative d is ignored: virtual time, like
// real time, never runs backward.
func (m *Manual) Advance(d time.Duration) {
	if d < 0 {
		return
	}
	m.mu.Lock()
	target := m.now.Add(d)
	var fired []*waiter
	for len(m.waiters) > 0 && !m.waiters[0].at.After(target) {
		w := heap.Pop(&m.waiters).(*waiter)
		fired = append(fired, w)
	}
	m.now = target
	m.mu.Unlock()
	for _, w := range fired {
		w.ch <- w.at
	}
}

// AdvanceTo moves the clock to t if t is in the future.
func (m *Manual) AdvanceTo(t time.Time) {
	m.Advance(t.Sub(m.Now()))
}

// Pending reports how many sleepers and After channels are waiting.
func (m *Manual) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.waiters)
}

var (
	_ Clock = Real{}
	_ Clock = Coarse{}
	_ Clock = (*Manual)(nil)
)
