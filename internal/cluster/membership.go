package cluster

import (
	"fmt"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/core"
	"convgpu/internal/errs"
)

// This file is the cluster's node failure domain layer: a membership
// view (up / suspect / down / draining) driven by health probes on the
// injected clock, manual drain/revive admin verbs, and the failover
// path that migrates a dead node's containers — and every one of their
// parked tickets — onto surviving nodes.

var (
	_ core.Membership     = (*Cluster)(nil)
	_ core.FailoverSource = (*Cluster)(nil)
)

// State reports one node's membership state.
func (c *Cluster) State(node int) (core.NodeState, error) {
	if err := c.checkNode(node); err != nil {
		return 0, err
	}
	c.nodeMu.Lock()
	defer c.nodeMu.Unlock()
	return c.states[node], nil
}

// NodeStatuses implements core.Membership.
func (c *Cluster) NodeStatuses() []core.NodeStatus {
	infos := c.Nodes()
	c.nodeMu.Lock()
	defer c.nodeMu.Unlock()
	out := make([]core.NodeStatus, len(infos))
	for i, n := range infos {
		out[i] = core.NodeStatus{
			Index:      n.Index,
			Name:       n.Name,
			State:      c.states[i].String(),
			Containers: n.Containers,
			Capacity:   c.cfg.CapacityPerGPU * bytesize.Size(c.cfg.GPUsPerNode),
			Free:       n.TotalFree,
			Failovers:  c.failovers[i],
		}
	}
	return out
}

// Drain implements core.Membership: the node refuses new registrations
// while existing grants complete. Draining a down node is an error —
// there is nothing left to drain.
func (c *Cluster) Drain(node int) error {
	if err := c.checkNode(node); err != nil {
		return err
	}
	c.nodeMu.Lock()
	defer c.nodeMu.Unlock()
	if c.states[node] == core.NodeDown {
		return fmt.Errorf("cluster: cannot drain node %d: %w", node, errs.ErrNodeDown)
	}
	c.states[node] = core.NodeDraining
	return nil
}

// Revive implements core.Membership: returns a drained or down node to
// service. A down node's slot already holds a fresh, empty scheduler
// (installed at failover), so revival simply re-opens it for placement.
func (c *Cluster) Revive(node int) error {
	if err := c.checkNode(node); err != nil {
		return err
	}
	c.nodeMu.Lock()
	defer c.nodeMu.Unlock()
	c.states[node] = core.NodeUp
	return nil
}

// OnFailover implements core.FailoverSource. fn is called synchronously
// under the registration lock with each failover's report.
func (c *Cluster) OnFailover(fn func(core.FailoverReport)) {
	c.nodeMu.Lock()
	c.onFailover = fn
	c.nodeMu.Unlock()
}

// checkNode validates a node index.
func (c *Cluster) checkNode(node int) error {
	if node < 0 || node >= c.NumMembers() {
		return fmt.Errorf("cluster: unknown node %d (%d nodes)", node, c.NumMembers())
	}
	return nil
}

// eligible reports whether node accepts new registrations (up or
// suspect — a suspect node still serves until the down threshold).
func (c *Cluster) eligible(node int) bool {
	c.nodeMu.Lock()
	defer c.nodeMu.Unlock()
	return c.states[node] == core.NodeUp || c.states[node] == core.NodeSuspect
}

// eligibleNodes returns the strategy's node view with ineligible nodes'
// capacities zeroed out. The slice keeps its full length and original
// Index fields — the strategies index into it by NodeInfo.Index, so it
// must never be filtered, only neutralized.
func (c *Cluster) eligibleNodes() ([]NodeInfo, bool) {
	nodes := c.Nodes()
	any := false
	c.nodeMu.Lock()
	for i := range nodes {
		switch c.states[i] {
		case core.NodeUp, core.NodeSuspect:
			any = true
		default:
			nodes[i].MaxDeviceCapacity = 0
			nodes[i].MaxDevicePool = 0
			nodes[i].TotalFree = 0
		}
	}
	c.nodeMu.Unlock()
	return nodes, any
}

// FailNode declares node dead and fails it over: every container placed
// there is re-registered (in container-ID order) on a strategy-chosen
// surviving node with a clean seat — its device allocations died with
// the node — and each of its parked tickets is re-queued (in park
// order) through the ordinary suspend machinery, admitted immediately
// if the survivor has room, or evicted when no surviving node can hold
// the container's limit. The dead slot is refilled with a fresh, empty
// scheduler built from the same seed, so a later revival starts the
// node exactly as it first booted.
//
// The returned report accounts for every pre-kill parked ticket exactly
// once (migrated, admitted, or evicted) — the no-ticket-lost invariant
// the model harness asserts mechanically.
func (c *Cluster) FailNode(node int) (core.FailoverReport, error) {
	if err := c.checkNode(node); err != nil {
		return core.FailoverReport{}, err
	}
	c.regMu.Lock()
	defer c.regMu.Unlock()
	start := c.clk.Now()

	c.nodeMu.Lock()
	if c.states[node] == core.NodeDown {
		c.nodeMu.Unlock()
		return core.FailoverReport{}, fmt.Errorf("cluster: node %d already down: %w", node, errs.ErrNodeDown)
	}
	c.states[node] = core.NodeDown
	c.failovers[node]++
	fn := c.onFailover
	c.nodeMu.Unlock()

	// Capture the dying containers' registrations and parked requests
	// before the member is replaced. PlacementsOn sorts by ID, which is
	// the deterministic order the model oracle mirrors.
	type dying struct {
		id      core.ContainerID
		limit   bytesize.Size
		tenant  core.Tenant
		pending []core.PendingRequest
	}
	old := c.Member(node)
	ids := c.PlacementsOn(node)
	doomed := make([]dying, 0, len(ids))
	for _, id := range ids {
		info, err := old.Info(id)
		if err != nil {
			continue
		}
		pend, _ := old.PendingRequests(id)
		doomed = append(doomed, dying{id: id, limit: info.Limit, tenant: info.TenantDef, pending: pend})
	}

	// Install the replacement before re-placing anything, so migration
	// targets never include the dead member's capacity.
	fresh, err := c.newMember(node)
	if err != nil {
		return core.FailoverReport{}, fmt.Errorf("cluster: rebuilding node %d: %w", node, err)
	}
	c.ReplaceMember(node, fresh, ids)

	report := core.FailoverReport{Node: node}
	for _, d := range doomed {
		move := core.ContainerMove{ID: d.id, Limit: d.limit, Tenant: d.tenant, From: node, To: -1}
		target := -1
		if nodes, any := c.eligibleNodes(); any {
			if n := c.strategy.Place(d.limit, nodes); n >= 0 && n < c.NumMembers() && c.eligible(n) {
				target = n
			}
		}
		if target >= 0 {
			granted, err := c.Member(target).RegisterTenant(d.id, d.limit, d.tenant)
			if err != nil {
				target = -1
			} else {
				c.SetPlacement(d.id, target)
				move.To, move.Granted = target, granted
			}
		}
		if target < 0 {
			move.Evicted = true
			for _, p := range d.pending {
				move.Tickets = append(move.Tickets, core.TicketMove{
					OldTicket: p.Ticket, PID: p.PID, Size: p.Size, Outcome: core.TicketEvicted,
				})
			}
			report.Moves = append(report.Moves, move)
			continue
		}
		for _, p := range d.pending {
			tm := core.TicketMove{OldTicket: p.Ticket, PID: p.PID, Size: p.Size}
			res, err := c.Member(target).RequestAlloc(d.id, p.PID, p.Size)
			switch {
			case err != nil || res.Decision == core.Reject:
				// Cannot happen for a request that was parked under the
				// same limit, but account for it observably regardless.
				tm.Outcome = core.TicketEvicted
			case res.Decision == core.Accept:
				tm.Outcome = core.TicketAdmitted
			default:
				tm.Outcome = core.TicketMigrated
				tm.NewTicket = res.Ticket
			}
			move.Tickets = append(move.Tickets, tm)
		}
		report.Moves = append(report.Moves, move)
	}
	report.Elapsed = c.clk.Since(start)
	if fn != nil {
		fn(report)
	}
	return report, nil
}

// HealthConfig parameterizes the probe loop.
type HealthConfig struct {
	// Interval is the probe period (required, > 0).
	Interval time.Duration
	// SuspectAfter is how many consecutive probe failures mark a node
	// suspect (default 1).
	SuspectAfter int
	// DownAfter is how many consecutive probe failures declare a node
	// down and trigger failover (default 3).
	DownAfter int
	// Probe checks one node's health; nil treats every node as healthy
	// (the loop then only auto-revives nodes whose probes recover).
	Probe func(node int) error
	// OnTransition, when set, observes every state change the loop
	// makes (obs wiring, logs).
	OnTransition func(node int, from, to core.NodeState)
}

// StartHealth launches the health-probe loop on the cluster's clock.
// On DownAfter consecutive probe failures the node is failed over; a
// probe succeeding against a down node revives it (flapping restart:
// the node came back empty, which is exactly what its fresh slot
// holds). Draining nodes are left alone — drain is a manual verb and
// only Revive clears it. Returns an error if a loop is already running.
func (c *Cluster) StartHealth(hc HealthConfig) error {
	if hc.Interval <= 0 {
		return fmt.Errorf("cluster: health interval must be positive, got %v", hc.Interval)
	}
	if hc.SuspectAfter <= 0 {
		hc.SuspectAfter = 1
	}
	if hc.DownAfter <= 0 {
		hc.DownAfter = 3
	}
	c.healthMu.Lock()
	defer c.healthMu.Unlock()
	if c.healthStop != nil {
		return fmt.Errorf("cluster: health loop already running")
	}
	c.healthStop = make(chan struct{})
	c.healthDone = make(chan struct{})
	go c.healthLoop(hc, c.healthStop, c.healthDone)
	return nil
}

// StopHealth stops the probe loop and waits for it to wind down (the
// goroutine-leak checks in the chaos suite rely on this being
// synchronous). Safe to call when no loop is running.
func (c *Cluster) StopHealth() {
	c.healthMu.Lock()
	stop, done := c.healthStop, c.healthDone
	c.healthStop, c.healthDone = nil, nil
	c.healthMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

func (c *Cluster) healthLoop(hc HealthConfig, stop, done chan struct{}) {
	defer close(done)
	fails := make([]int, c.NumMembers())
	for {
		select {
		case <-stop:
			return
		case <-c.clk.After(hc.Interval):
		}
		for i := 0; i < c.NumMembers(); i++ {
			c.nodeMu.Lock()
			state := c.states[i]
			c.nodeMu.Unlock()
			if state == core.NodeDraining {
				continue
			}
			var err error
			if hc.Probe != nil {
				err = hc.Probe(i)
			}
			if err == nil {
				fails[i] = 0
				switch state {
				case core.NodeSuspect:
					c.transition(i, state, core.NodeUp, hc.OnTransition)
				case core.NodeDown:
					// Flapping restart: the node answers probes again.
					// Its slot holds a fresh scheduler, so revival is
					// exactly a clean boot.
					c.transition(i, state, core.NodeUp, hc.OnTransition)
				}
				continue
			}
			if state == core.NodeDown {
				continue
			}
			fails[i]++
			switch {
			case fails[i] >= hc.DownAfter:
				if _, err := c.FailNode(i); err == nil && hc.OnTransition != nil {
					hc.OnTransition(i, state, core.NodeDown)
				}
			case fails[i] >= hc.SuspectAfter && state == core.NodeUp:
				c.transition(i, state, core.NodeSuspect, hc.OnTransition)
			}
		}
	}
}

// transition flips one node's state and notifies the observer.
func (c *Cluster) transition(node int, from, to core.NodeState, notify func(int, core.NodeState, core.NodeState)) {
	c.nodeMu.Lock()
	// Re-check under the lock: a concurrent admin verb wins.
	if c.states[node] != from {
		c.nodeMu.Unlock()
		return
	}
	c.states[node] = to
	c.nodeMu.Unlock()
	if notify != nil {
		notify(node, from, to)
	}
}
