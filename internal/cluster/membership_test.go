package cluster

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"convgpu/internal/bytesize"
	"convgpu/internal/clock"
	"convgpu/internal/core"
	"convgpu/internal/errs"
)

func newMembershipCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	if cfg.Nodes == 0 {
		cfg.Nodes = 2
	}
	if cfg.GPUsPerNode == 0 {
		cfg.GPUsPerNode = 1
	}
	if cfg.CapacityPerGPU == 0 {
		cfg.CapacityPerGPU = mib(500)
	}
	if cfg.ContextOverhead == 0 {
		cfg.ContextOverhead = 1
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustNode(t *testing.T, c *Cluster, id core.ContainerID, want int) {
	t.Helper()
	node, _, err := c.NodePlacement(id)
	if err != nil {
		t.Fatalf("NodePlacement(%s): %v", id, err)
	}
	if node != want {
		t.Fatalf("%s placed on node %d, want %d", id, node, want)
	}
}

func TestDrainRefusesNewRegistrationsExistingComplete(t *testing.T) {
	c := newMembershipCluster(t, Config{})
	if _, err := c.Register("c0", mib(100)); err != nil {
		t.Fatal(err)
	}
	n0, _, err := c.NodePlacement("c0")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Drain(n0); err != nil {
		t.Fatal(err)
	}
	if st, _ := c.State(n0); st != core.NodeDraining {
		t.Fatalf("state after drain = %v, want draining", st)
	}

	// New registrations avoid the draining node.
	if _, err := c.Register("c1", mib(100)); err != nil {
		t.Fatal(err)
	}
	mustNode(t, c, "c1", 1-n0)

	// The draining node's existing grant still completes: alloc, free,
	// and close all work.
	res, err := c.RequestAlloc("c0", 1, mib(50))
	if err != nil || res.Decision != core.Accept {
		t.Fatalf("alloc on draining node: %v (decision %v), want accept", err, res.Decision)
	}
	if err := c.ConfirmAlloc("c0", 1, 0x1000, mib(50)); err != nil {
		t.Fatalf("confirm on draining node: %v", err)
	}
	if _, _, err := c.Free("c0", 1, 0x1000); err != nil {
		t.Fatalf("free on draining node: %v", err)
	}
	if _, _, err := c.Close("c0"); err != nil {
		t.Fatalf("close on draining node: %v", err)
	}

	// With every node refusing work, admission fails closed.
	if err := c.Drain(1 - n0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register("c2", mib(100)); !errors.Is(err, errs.ErrDaemonUnavailable) {
		t.Fatalf("register with all nodes draining = %v, want ErrDaemonUnavailable", err)
	}

	// Revive re-opens the node for placement.
	if err := c.Revive(n0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register("c2", mib(100)); err != nil {
		t.Fatalf("register after revive: %v", err)
	}
	mustNode(t, c, "c2", n0)
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDrainAndFailOnDownNode(t *testing.T) {
	c := newMembershipCluster(t, Config{})
	if _, err := c.FailNode(0); err != nil {
		t.Fatal(err)
	}
	if st, _ := c.State(0); st != core.NodeDown {
		t.Fatalf("state after FailNode = %v, want down", st)
	}
	if err := c.Drain(0); !errors.Is(err, errs.ErrNodeDown) {
		t.Fatalf("drain of down node = %v, want ErrNodeDown", err)
	}
	if _, err := c.FailNode(0); !errors.Is(err, errs.ErrNodeDown) {
		t.Fatalf("second FailNode = %v, want ErrNodeDown", err)
	}
	if err := c.Revive(0); err != nil {
		t.Fatal(err)
	}
	if st, _ := c.State(0); st != core.NodeUp {
		t.Fatalf("state after revive = %v, want up", st)
	}
	if err := c.Drain(0); err != nil {
		t.Fatalf("drain of revived node: %v", err)
	}
}

func TestMembershipRejectsUnknownNodes(t *testing.T) {
	c := newMembershipCluster(t, Config{})
	if _, err := c.State(5); err == nil {
		t.Error("State(5) accepted")
	}
	if err := c.Drain(-1); err == nil {
		t.Error("Drain(-1) accepted")
	}
	if err := c.Revive(2); err == nil {
		t.Error("Revive(2) accepted")
	}
	if _, err := c.FailNode(9); err == nil {
		t.Error("FailNode(9) accepted")
	}
}

// TestFailNodeMigratesContainersAndTickets pins the failover path end to
// end on a deterministic layout: two 450 MiB containers share node 0
// (the second with a partial grant and a parked request), and killing
// the node must migrate both — with the parked ticket re-queued on the
// survivor under a fresh ticket — while the report accounts for every
// pre-kill ticket exactly once.
func TestFailNodeMigratesContainersAndTickets(t *testing.T) {
	c := newMembershipCluster(t, Config{})
	// Spread: c0 → node 0 (tie, first), c1 → node 1 (fewer containers),
	// c2 → node 0 (1-1 tie, equal free, first).
	for _, id := range []core.ContainerID{"c0", "c1", "c2"} {
		if _, err := c.Register(id, mib(450)); err != nil {
			t.Fatal(err)
		}
	}
	mustNode(t, c, "c0", 0)
	mustNode(t, c, "c1", 1)
	mustNode(t, c, "c2", 0)

	// c2's grant is the 50 MiB node 0 had left, so this request parks.
	res, err := c.RequestAlloc("c2", 1, mib(200))
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != core.Suspend {
		t.Fatalf("overcommitted alloc decision = %v, want suspend", res.Decision)
	}
	oldTicket := res.Ticket

	var hooked core.FailoverReport
	hookCalled := false
	c.OnFailover(func(rep core.FailoverReport) { hooked, hookCalled = rep, true })

	rep, err := c.FailNode(0)
	if err != nil {
		t.Fatal(err)
	}
	if !hookCalled {
		t.Fatal("OnFailover hook not called")
	}
	if hooked.Node != rep.Node || len(hooked.Moves) != len(rep.Moves) {
		t.Fatalf("hook saw a different report: %+v vs %+v", hooked, rep)
	}
	if rep.Node != 0 || len(rep.Moves) != 2 {
		t.Fatalf("report = %+v, want node 0 with 2 moves", rep)
	}
	// Moves come in container-ID order.
	if rep.Moves[0].ID != "c0" || rep.Moves[1].ID != "c2" {
		t.Fatalf("move order = %s, %s; want c0, c2", rep.Moves[0].ID, rep.Moves[1].ID)
	}
	for _, mv := range rep.Moves {
		if mv.Evicted || mv.From != 0 || mv.To != 1 {
			t.Fatalf("move %s = %+v, want migration 0 → 1", mv.ID, mv)
		}
	}
	if n := len(rep.Moves[0].Tickets); n != 0 {
		t.Fatalf("c0 had no parked tickets, report has %d", n)
	}
	tks := rep.Moves[1].Tickets
	if len(tks) != 1 {
		t.Fatalf("c2 ticket moves = %+v, want exactly one", tks)
	}
	tm := tks[0]
	if tm.OldTicket != oldTicket || tm.PID != 1 || tm.Size != mib(200) {
		t.Fatalf("ticket move %+v does not match parked request (ticket %d, pid 1, 200 MiB)", tm, oldTicket)
	}
	if tm.Outcome != core.TicketMigrated || tm.NewTicket == 0 {
		t.Fatalf("ticket move %+v, want migrated with a fresh ticket", tm)
	}

	mustNode(t, c, "c0", 1)
	mustNode(t, c, "c2", 1)
	if sts := c.NodeStatuses(); sts[0].State != "down" || sts[0].Failovers != 1 {
		t.Fatalf("node 0 status after failover = %+v", sts[0])
	}
	// The migrated parked request is live on the survivor under its new
	// ticket.
	pend, err := c.PendingRequests("c2")
	if err != nil {
		t.Fatal(err)
	}
	if len(pend) != 1 || pend[0].Ticket != tm.NewTicket {
		t.Fatalf("survivor pending = %+v, want the migrated ticket %d", pend, tm.NewTicket)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFailNodeEvictsWithoutSurvivor pins the other failover outcome: no
// eligible node can take the containers, so they are evicted and every
// parked ticket is observably marked evicted — and with the whole
// cluster out of service, admission fails closed.
func TestFailNodeEvictsWithoutSurvivor(t *testing.T) {
	c := newMembershipCluster(t, Config{})
	// Drain node 1 up front: both containers are forced onto node 0, and
	// the later failover has nowhere to migrate.
	if err := c.Drain(1); err != nil {
		t.Fatal(err)
	}
	for _, id := range []core.ContainerID{"c0", "c2"} {
		if _, err := c.Register(id, mib(450)); err != nil {
			t.Fatal(err)
		}
	}
	mustNode(t, c, "c0", 0)
	mustNode(t, c, "c2", 0)
	res, err := c.RequestAlloc("c2", 1, mib(200))
	if err != nil || res.Decision != core.Suspend {
		t.Fatalf("setup alloc: %v (decision %v), want suspend", err, res.Decision)
	}
	rep, err := c.FailNode(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Moves) != 2 {
		t.Fatalf("report = %+v, want 2 moves", rep)
	}
	for _, mv := range rep.Moves {
		if !mv.Evicted || mv.To != -1 {
			t.Fatalf("move %s = %+v, want eviction", mv.ID, mv)
		}
	}
	tks := rep.Moves[1].Tickets
	if len(tks) != 1 || tks[0].Outcome != core.TicketEvicted || tks[0].OldTicket != res.Ticket {
		t.Fatalf("evicted ticket moves = %+v, want the parked ticket marked evicted", tks)
	}
	if _, _, err := c.NodePlacement("c0"); err == nil {
		t.Fatal("evicted container still placed")
	}

	// Down + draining: no eligible node, fail closed.
	if _, err := c.Register("c3", mib(100)); !errors.Is(err, errs.ErrDaemonUnavailable) {
		t.Fatalf("register with no eligible node = %v, want ErrDaemonUnavailable", err)
	}
	if err := c.Revive(1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register("c3", mib(100)); err != nil {
		t.Fatalf("register after revive: %v", err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// tickHealth advances the manual clock through n probe rounds, waiting
// each time for the health loop to re-arm its timer — which also means
// the previous round's probes have fully run.
func tickHealth(t *testing.T, clk *clock.Manual, interval time.Duration, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		waitArmed(t, clk)
		clk.Advance(interval)
	}
	waitArmed(t, clk)
}

func waitArmed(t *testing.T, clk *clock.Manual) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for clk.Pending() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("health loop never armed its probe timer")
		}
		runtime.Gosched()
	}
}

// TestHealthLoopTransitions drives the probe loop on the manual clock
// through the full state machine: up → suspect → down (with failover),
// then probe recovery → auto-revival, with draining nodes left alone.
func TestHealthLoopTransitions(t *testing.T) {
	clk := clock.NewManual()
	c := newMembershipCluster(t, Config{Clock: clk})
	if _, err := c.Register("c0", mib(100)); err != nil {
		t.Fatal(err)
	}
	mustNode(t, c, "c0", 0)

	var mu sync.Mutex
	failing := map[int]bool{}
	probed := map[int]int{}
	var transitions []string
	hc := HealthConfig{
		Interval:     time.Second,
		SuspectAfter: 1,
		DownAfter:    3,
		Probe: func(node int) error {
			mu.Lock()
			defer mu.Unlock()
			probed[node]++
			if failing[node] {
				return errors.New("injected probe failure")
			}
			return nil
		},
		OnTransition: func(node int, from, to core.NodeState) {
			mu.Lock()
			defer mu.Unlock()
			transitions = append(transitions, from.String()+"->"+to.String())
		},
	}
	if err := c.StartHealth(hc); err != nil {
		t.Fatal(err)
	}
	defer c.StopHealth()
	if err := c.StartHealth(hc); err == nil {
		t.Fatal("second StartHealth accepted")
	}

	// Healthy rounds keep every node up.
	tickHealth(t, clk, hc.Interval, 2)
	if st, _ := c.State(0); st != core.NodeUp {
		t.Fatalf("state after healthy probes = %v, want up", st)
	}

	// One failed probe: suspect (SuspectAfter=1) but still serving.
	mu.Lock()
	failing[0] = true
	mu.Unlock()
	tickHealth(t, clk, hc.Interval, 1)
	if st, _ := c.State(0); st != core.NodeSuspect {
		t.Fatalf("state after 1 failed probe = %v, want suspect", st)
	}
	if _, err := c.Register("c1", mib(100)); err != nil {
		t.Fatalf("suspect node cluster refused registration: %v", err)
	}

	// Two more: DownAfter=3 reached, node failed over.
	tickHealth(t, clk, hc.Interval, 2)
	if st, _ := c.State(0); st != core.NodeDown {
		t.Fatalf("state after 3 failed probes = %v, want down", st)
	}
	if node, _, err := c.NodePlacement("c0"); err != nil || node != 1 {
		t.Fatalf("c0 after failover on node %d (%v), want migrated to 1", node, err)
	}

	// Probes recover: flapping restart, the fresh slot is revived.
	mu.Lock()
	failing[0] = false
	mu.Unlock()
	tickHealth(t, clk, hc.Interval, 1)
	if st, _ := c.State(0); st != core.NodeUp {
		t.Fatalf("state after probe recovery = %v, want up", st)
	}

	// Draining nodes are never probed and never transition.
	if err := c.Drain(1); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	failing[1] = true
	before := probed[1]
	mu.Unlock()
	tickHealth(t, clk, hc.Interval, 4)
	if st, _ := c.State(1); st != core.NodeDraining {
		t.Fatalf("draining node transitioned to %v under failed probes", st)
	}
	mu.Lock()
	after := probed[1]
	mu.Unlock()
	if after != before {
		t.Fatalf("draining node was probed %d times", after-before)
	}

	c.StopHealth()
	c.StopHealth() // idempotent
	if err := c.StartHealth(HealthConfig{}); err == nil {
		t.Fatal("StartHealth without interval accepted")
	}

	mu.Lock()
	got := append([]string(nil), transitions...)
	mu.Unlock()
	want := []string{"up->suspect", "suspect->down", "down->up"}
	if len(got) != len(want) {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", got, want)
		}
	}
}

func TestNodeStatusesFields(t *testing.T) {
	c := newMembershipCluster(t, Config{Nodes: 2, GPUsPerNode: 2, CapacityPerGPU: mib(500)})
	if _, err := c.Register("c0", mib(100)); err != nil {
		t.Fatal(err)
	}
	sts := c.NodeStatuses()
	if len(sts) != 2 {
		t.Fatalf("NodeStatuses len = %d, want 2", len(sts))
	}
	total := 0
	for i, st := range sts {
		if st.Index != i {
			t.Errorf("status %d has index %d", i, st.Index)
		}
		if st.Name == "" {
			t.Errorf("status %d has no name", i)
		}
		if st.State != "up" {
			t.Errorf("status %d state = %q, want up", i, st.State)
		}
		if st.Capacity != mib(1000) {
			t.Errorf("status %d capacity = %v, want 1000 MiB", i, st.Capacity)
		}
		if st.Failovers != 0 {
			t.Errorf("status %d failovers = %d, want 0", i, st.Failovers)
		}
		total += st.Containers
	}
	if total != 1 {
		t.Errorf("container total across statuses = %d, want 1", total)
	}
	free := bytesize.Size(0)
	for _, st := range sts {
		free += st.Free
	}
	if want := mib(2000) - mib(100); free != want {
		t.Errorf("free across statuses = %v, want %v", free, want)
	}
}
